// Regenerates paper Table III: semi-synthetic ML-100K experiment with
// varying ρ (the observed-sparsity / r→o-correlation knob of Step 2).
// For each ρ, each method trains on one realization of the pipeline and
// is scored by MSE/MAE against the true conversion probabilities η and by
// NDCG@50 against realized conversions — the paper's three metric blocks.

#include <iostream>
#include <map>

#include "baselines/registry.h"
#include "bench_common.h"
#include "experiments/evaluator.h"
#include "synth/movielens_like.h"
#include "util/stopwatch.h"

namespace dtrec {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  DatasetProfile profile;
  profile.train.epochs = 10;
  profile.train.batch_size = 2048;
  profile.train.max_steps_per_epoch = 120;
  profile.train.embedding_dim = 8;
  size_t seeds_unused = 1;
  bench::ApplyArgs(args, &profile, &seeds_unused);

  const std::vector<double> rhos = {0.5, 0.75, 1.0, 1.25, 1.5};
  const std::vector<std::string> methods = SemiSyntheticMethodNames();

  // metric -> method -> per-rho values.
  std::map<std::string, std::map<std::string, std::vector<double>>> cells;

  Stopwatch total;
  for (double rho : rhos) {
    SemiSyntheticConfig world_config;
    world_config.rho = rho;
    world_config.epsilon = 0.3;
    world_config.seed = 7;
    const SemiSyntheticData world =
        MovieLensLikeGenerator(world_config).Generate();
    DTREC_LOG(INFO) << "rho=" << rho << " " << world.dataset.DebugString();

    for (const std::string& name : methods) {
      TrainConfig tc = TuneForMethod(name, profile.train);
      tc.seed = 91;
      auto trainer = std::move(MakeTrainer(name, tc).value());
      const Status st = trainer->Fit(world.dataset);
      DTREC_CHECK(st.ok()) << name << ": " << st.ToString();
      const SemiSyntheticMetrics metrics =
          EvaluateSemiSynthetic(*trainer, world);
      cells["MSE"][name].push_back(metrics.mse);
      cells["MAE"][name].push_back(metrics.mae);
      cells["N@50"][name].push_back(metrics.ndcg_at_50);
    }
  }

  for (const char* metric : {"MSE", "MAE", "N@50"}) {
    TableWriter table(StrFormat(
        "Table III (%s): semi-synthetic ML-100K with varying rho", metric));
    std::vector<std::string> header{"Method"};
    for (double rho : rhos) header.push_back(StrFormat("rho=%.2f", rho));
    table.SetHeader(header);
    for (const std::string& name : methods) {
      std::vector<std::string> row{name};
      for (double v : cells[metric][name]) {
        row.push_back(FormatDouble(v, 4));
      }
      table.AddRow(row);
    }
    bench::Emit(table, StrFormat("table3_semisynthetic_%s.csv", metric));
  }

  std::cout << "Expected shape (paper Table III): DT-IPS/DT-DR lowest "
               "MSE/MAE for rho >= 0.75, margin growing with rho; all "
               "methods' N@50 close, DT slightly ahead.\n";
  std::cout << "[total " << FormatDouble(total.ElapsedSeconds(), 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
