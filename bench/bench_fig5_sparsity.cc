// Regenerates paper Figure 5: AUC and training time as the observed data
// sparsity varies, on the Coat-shaped dataset. Sparsity is controlled by
// shifting the generator's base selection logit; each level reports the
// methods' unbiased-test AUC and wall-clock training time.

#include <iostream>

#include "baselines/registry.h"
#include "bench_common.h"
#include "experiments/evaluator.h"
#include "synth/coat_like.h"
#include "util/stopwatch.h"

namespace dtrec {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  DatasetProfile profile = DefaultProfile(DatasetKind::kCoat);
  size_t seeds_unused = 1;
  bench::ApplyArgs(args, &profile, &seeds_unused);

  // Base-logit shifts spanning ~2.5%..20% observed density.
  const std::vector<double> logit_shifts = {-1.5, -0.75, 0.0, 0.75, 1.5};
  const std::vector<std::string> methods = {"MF", "DR-JL", "ESCM2-DR",
                                            "DT-IPS", "DT-DR"};

  TableWriter auc_table(
      "Figure 5 (AUC vs sparsity): Coat-shaped dataset");
  TableWriter time_table(
      "Figure 5 (training seconds vs sparsity): Coat-shaped dataset");
  std::vector<std::string> header{"Method"};
  std::vector<double> densities;
  std::vector<RatingDataset> datasets;
  for (double shift : logit_shifts) {
    MnarGeneratorConfig config = CoatLikeConfig(17);
    config.base_logit += shift;
    datasets.push_back(MnarGenerator(config).Generate().dataset);
    densities.push_back(datasets.back().TrainDensity());
    header.push_back(StrFormat("density=%.3f", densities.back()));
  }
  auc_table.SetHeader(header);
  time_table.SetHeader(header);

  for (const std::string& name : methods) {
    std::vector<std::string> auc_row{name}, time_row{name};
    for (const RatingDataset& dataset : datasets) {
      TrainConfig tc = TuneForMethod(name, profile.train);
      tc.seed = 83;
      auto trainer = std::move(MakeTrainer(name, tc).value());
      Stopwatch watch;
      DTREC_CHECK(trainer->Fit(dataset).ok());
      time_row.push_back(FormatDouble(watch.ElapsedSeconds(), 2));
      auc_row.push_back(FormatDouble(
          EvaluateRanking(*trainer, dataset, profile.ranking_k).auc, 3));
    }
    auc_table.AddRow(auc_row);
    time_table.AddRow(time_row);
  }

  bench::Emit(auc_table, "fig5_sparsity_auc.csv");
  bench::Emit(time_table, "fig5_sparsity_time.csv");
  std::cout << "Expected shape (paper Fig. 5): AUC rises with density for "
               "every method with DT on top; DT runtimes stay within ~2x "
               "of the baselines at every sparsity level.\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
