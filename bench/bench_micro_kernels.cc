// google-benchmark microbenchmarks for the numeric kernels that dominate
// dtrec training time, plus two design-choice ablations from DESIGN.md:
//  - the Gram-identity regularization kernel vs the naive |U|×|I| product,
//  - the autograd tape vs hand-derived analytic gradients for an IPS step.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "core/disentangled_embeddings.h"
#include "core/losses.h"
#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dtrec {
namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = Matrix::RandomNormal(n, 8, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(n, 8, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(a, b));
  }
}
BENCHMARK(BM_MatMulTransB)->Arg(256)->Arg(1024);

void BM_SigmoidMat(benchmark::State& state) {
  Rng rng(3);
  const Matrix a = Matrix::RandomNormal(1024, 64, 2.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmoidMat(a));
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_SigmoidMat);

void BM_RegularizationNaive(benchmark::State& state) {
  Rng rng(4);
  DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
      943, 1682, 8, 4, 0.1, 0.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularizationLossNaive(emb));
  }
}
BENCHMARK(BM_RegularizationNaive);

void BM_RegularizationGram(benchmark::State& state) {
  Rng rng(4);
  DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
      943, 1682, 8, 4, 0.1, 0.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularizationLossGram(emb));
  }
}
BENCHMARK(BM_RegularizationGram);

/// One IPS training step via the autograd tape.
void BM_IpsStepTape(benchmark::State& state) {
  const size_t batch = 2048, m = 943, n = 1682, dim = 8;
  Rng rng(5);
  Matrix p = Matrix::RandomNormal(m, dim, 0.1, &rng);
  Matrix q = Matrix::RandomNormal(n, dim, 0.1, &rng);
  std::vector<size_t> users(batch), items(batch);
  Matrix labels(batch, 1), weights(batch, 1);
  for (size_t i = 0; i < batch; ++i) {
    users[i] = rng.UniformIndex(m);
    items[i] = rng.UniformIndex(n);
    labels(i, 0) = rng.Bernoulli(0.5);
    weights(i, 0) = rng.Bernoulli(0.1) ? 10.0 / batch : 0.0;
  }
  for (auto _ : state) {
    ag::Tape tape;
    ag::Var vp = tape.Leaf(p);
    ag::Var vq = tape.Leaf(q);
    ag::Var probs = ag::Sigmoid(ag::RowwiseDot(ag::GatherRows(vp, users),
                                               ag::GatherRows(vq, items)));
    ag::Var e = ag::Square(ag::Sub(tape.Constant(labels), probs));
    ag::Var loss = ag::WeightedSumElems(e, weights);
    tape.Backward(loss);
    benchmark::DoNotOptimize(tape.GradOf(vp));
  }
}
BENCHMARK(BM_IpsStepTape);

/// The same IPS step with hand-derived analytic gradients (no tape).
void BM_IpsStepAnalytic(benchmark::State& state) {
  const size_t batch = 2048, m = 943, n = 1682, dim = 8;
  Rng rng(5);
  Matrix p = Matrix::RandomNormal(m, dim, 0.1, &rng);
  Matrix q = Matrix::RandomNormal(n, dim, 0.1, &rng);
  std::vector<size_t> users(batch), items(batch);
  Matrix labels(batch, 1), weights(batch, 1);
  for (size_t i = 0; i < batch; ++i) {
    users[i] = rng.UniformIndex(m);
    items[i] = rng.UniformIndex(n);
    labels(i, 0) = rng.Bernoulli(0.5);
    weights(i, 0) = rng.Bernoulli(0.1) ? 10.0 / batch : 0.0;
  }
  Matrix grad_p(m, dim), grad_q(n, dim);
  for (auto _ : state) {
    grad_p.SetZero();
    grad_q.SetZero();
    for (size_t i = 0; i < batch; ++i) {
      if (weights(i, 0) == 0.0) continue;
      const double* pu = p.row(users[i]);
      const double* qi = q.row(items[i]);
      double score = 0.0;
      for (size_t d = 0; d < dim; ++d) score += pu[d] * qi[d];
      const double prob = Sigmoid(score);
      const double dloss = weights(i, 0) * 2.0 * (prob - labels(i, 0)) *
                           prob * (1.0 - prob);
      double* gp = grad_p.row(users[i]);
      double* gq = grad_q.row(items[i]);
      for (size_t d = 0; d < dim; ++d) {
        gp[d] += dloss * qi[d];
        gq[d] += dloss * pu[d];
      }
    }
    benchmark::DoNotOptimize(grad_p);
  }
}
BENCHMARK(BM_IpsStepAnalytic);

void BM_GatherScatter(benchmark::State& state) {
  Rng rng(6);
  const Matrix table = Matrix::RandomNormal(2000, 16, 1.0, &rng);
  std::vector<size_t> rows(4096);
  for (auto& r : rows) r = rng.UniformIndex(2000);
  Matrix accum(2000, 16);
  for (auto _ : state) {
    const Matrix gathered = GatherRows(table, rows);
    ScatterAddRows(&accum, rows, gathered);
    benchmark::DoNotOptimize(accum);
  }
}
BENCHMARK(BM_GatherScatter);

}  // namespace
}  // namespace dtrec

BENCHMARK_MAIN();
