// Microbenchmarks for the numeric kernels that dominate dtrec training
// time, in two layers:
//
//  1. A deterministic blocked-vs-naive kernel sweep that times the packed
//     GEMM / row-dot kernels against the reference triple loops and writes
//     a schema-versioned BENCH_kernels.json (GFLOP/s, ns/op, speedup per
//     shape, build flavor stamped). This is the perf-trajectory record the
//     `bench-smoke` CTest leg regenerates and validates on every run.
//  2. The pre-existing google-benchmark suite (matmul wrappers, the
//     Gram-identity regularization ablation, tape-vs-analytic IPS step).
//
// Modes:
//   bench_micro_kernels                 sweep + JSON + google-benchmark
//   bench_micro_kernels --smoke         short sweep + JSON, skip gbench
//   bench_micro_kernels --json=PATH     override the JSON output path
//   bench_micro_kernels --validate=P    schema-check an existing JSON, exit

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "bench_common.h"
#include "core/disentangled_embeddings.h"
#include "core/losses.h"
#include "serve/serving_model.h"
#include "serve/topk_scorer.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/atomic_file.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace dtrec {
namespace {

// ----------------------------------------------------------------- sweep

/// Times `fn` with an adaptive repetition count sized so the measured
/// window is ~`target_seconds` long; returns nanoseconds per call.
double TimeNs(const std::function<void()>& fn, double target_seconds) {
  Stopwatch warm;
  fn();
  const double first = warm.ElapsedSeconds();
  size_t reps = 3;
  if (first > 0.0 && first < target_seconds) {
    reps = std::min<size_t>(
        1u << 20, std::max<size_t>(3, static_cast<size_t>(target_seconds /
                                                          first)));
  }
  Stopwatch timed;
  for (size_t r = 0; r < reps; ++r) fn();
  return timed.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
}

struct SweepShape {
  const char* kernel;  // "gemm", "gemm_trans_a", "gemm_trans_b", "row_dot"
  size_t m, k, n;
};

/// Runs blocked and naive variants of each kernel shape, returning paired
/// rows (blocked first, carrying speedup_vs_naive).
std::vector<bench::KernelBenchResult> RunKernelSweep(bool smoke) {
  const double target = smoke ? 0.005 : 0.1;
  std::vector<SweepShape> shapes = {
      {"gemm", 256, 64, 256},  // the headline shape (ISSUE acceptance)
      {"gemm", 64, 64, 64},
      {"row_dot", 1682, 32, 1},     // serving: items × one user vector
      {"row_dot_i8", 1682, 32, 1},  // same shape through the int8 kernel
  };
  if (!smoke) {
    shapes.push_back({"gemm", 128, 128, 128});
    shapes.push_back({"gemm", 256, 256, 256});
    shapes.push_back({"gemm_trans_a", 64, 256, 64});
    shapes.push_back({"gemm_trans_b", 943, 8, 1682});  // full predict matrix
  }

  std::vector<bench::KernelBenchResult> results;
  Rng rng(42);
  for (const SweepShape& s : shapes) {
    const std::string kernel = s.kernel;
    std::function<void()> blocked, naive;
    double flops = 2.0 * s.m * s.k * s.n;

    // Operands sized for the storage layout of each variant; the C buffer
    // is shared (the kernels accumulate, which is harmless for timing).
    Matrix a, b;
    Matrix c(s.m, std::max<size_t>(s.n, 1));
    std::vector<double> y(s.m);
    std::vector<int8_t> qa, qb;
    std::vector<int32_t> qy(s.m);
    if (kernel == "gemm") {
      a = Matrix::RandomNormal(s.m, s.k, 1.0, &rng);
      b = Matrix::RandomNormal(s.k, s.n, 1.0, &rng);
      blocked = [&, s] {
        kernels::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c.data(),
                      s.n);
        benchmark::DoNotOptimize(c.data());
      };
      naive = [&, s] {
        kernels::naive::Gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                             c.data(), s.n);
        benchmark::DoNotOptimize(c.data());
      };
    } else if (kernel == "gemm_trans_a") {
      a = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
      b = Matrix::RandomNormal(s.k, s.n, 1.0, &rng);
      blocked = [&, s] {
        kernels::GemmTransA(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n,
                            c.data(), s.n);
        benchmark::DoNotOptimize(c.data());
      };
      naive = [&, s] {
        kernels::naive::GemmTransA(s.m, s.n, s.k, a.data(), s.m, b.data(),
                                   s.n, c.data(), s.n);
        benchmark::DoNotOptimize(c.data());
      };
    } else if (kernel == "gemm_trans_b") {
      a = Matrix::RandomNormal(s.m, s.k, 1.0, &rng);
      b = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);
      blocked = [&, s] {
        kernels::GemmTransB(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k,
                            c.data(), s.n);
        benchmark::DoNotOptimize(c.data());
      };
      naive = [&, s] {
        kernels::naive::GemmTransB(s.m, s.n, s.k, a.data(), s.k, b.data(),
                                   s.k, c.data(), s.n);
        benchmark::DoNotOptimize(c.data());
      };
    } else if (kernel == "row_dot_i8") {
      // The quantized-sweep kernel: m int8 rows against one int8 vector,
      // "blocked" = SIMD pmaddwd path, "naive" = scalar reference.
      qa.resize(s.m * s.k);
      qb.resize(s.k);
      for (auto& v : qa) {
        v = static_cast<int8_t>(
            static_cast<int>(rng.UniformIndex(255)) - 127);
      }
      for (auto& v : qb) {
        v = static_cast<int8_t>(
            static_cast<int>(rng.UniformIndex(255)) - 127);
      }
      flops = 2.0 * s.m * s.k;
      blocked = [&, s] {
        kernels::QuantizedRowDot(s.m, s.k, qa.data(), s.k, qb.data(),
                                 qy.data());
        benchmark::DoNotOptimize(qy.data());
      };
      naive = [&, s] {
        kernels::naive::QuantizedRowDot(s.m, s.k, qa.data(), s.k, qb.data(),
                                        qy.data());
        benchmark::DoNotOptimize(qy.data());
      };
    } else {  // row_dot: m rows of length k against one broadcast vector
      a = Matrix::RandomNormal(s.m, s.k, 1.0, &rng);
      b = Matrix::RandomNormal(1, s.k, 1.0, &rng);
      flops = 2.0 * s.m * s.k;
      blocked = [&, s] {
        kernels::BatchedRowDot(s.m, s.k, a.data(), s.k, b.data(), 0,
                               y.data());
        benchmark::DoNotOptimize(y.data());
      };
      naive = [&, s] {
        kernels::naive::BatchedRowDot(s.m, s.k, a.data(), s.k, b.data(), 0,
                                      y.data());
        benchmark::DoNotOptimize(y.data());
      };
    }

    const double naive_ns = TimeNs(naive, target);
    const double blocked_ns = TimeNs(blocked, target);

    bench::KernelBenchResult nr;
    nr.kernel = kernel;
    nr.variant = "naive";
    nr.m = s.m;
    nr.k = s.k;
    nr.n = s.n;
    nr.ns_per_op = naive_ns;
    nr.gflops = flops / naive_ns;  // flops/ns == GFLOP/s
    nr.speedup_vs_naive = 1.0;

    bench::KernelBenchResult br = nr;
    br.variant = "blocked";
    br.ns_per_op = blocked_ns;
    br.gflops = flops / blocked_ns;
    br.speedup_vs_naive = naive_ns / blocked_ns;

    results.push_back(br);
    results.push_back(nr);

    std::printf("%-14s %4zux%-4zu * %4zux%-4zu  blocked %8.2f GF/s  "
                "naive %8.2f GF/s  speedup %5.2fx\n",
                kernel.c_str(), s.m, s.k, s.k, s.n, br.gflops, nr.gflops,
                br.speedup_vs_naive);
  }
  return results;
}

/// Serving top-K sweep rows: ScoreFresh in dense / pruned / quantized
/// mode over a popularity-skewed synthetic catalogue, plus recall@K of
/// each mode measured against BruteForceTopK. `m`/`k`/`n` carry
/// items/dim/K; ns_per_op is one full per-user top-K; gflops is the
/// *dense-equivalent* rate (2·items·dim per request), so a sub-linear
/// sweep shows up as a higher effective rate at the same recall.
std::vector<bench::KernelBenchResult> RunTopKSweep(bool smoke) {
  const double target = smoke ? 0.005 : 0.1;
  const size_t users = 64;
  const size_t items = smoke ? 4096 : 30000;
  const size_t dim = 32;
  const size_t topk = 10;
  Rng rng(97);
  Matrix p = Matrix::RandomNormal(users, dim, 1.0, &rng);
  Matrix q = Matrix::RandomNormal(items, dim, 1.0, &rng);
  // Long-tail catalogue: item norms decay as (1+i)^-0.5, the shape real
  // catalogues have after debiased training concentrates mass on a head.
  // This is what gives the norm-bound sweep a head to exit after; the
  // quantized sweep's win (8× less memory traffic) is shape-independent.
  std::vector<double> popularity(items);
  for (size_t i = 0; i < items; ++i) {
    const double scale = std::pow(1.0 + static_cast<double>(i), -0.5);
    double* row = q.row(i);
    for (size_t d = 0; d < dim; ++d) row[d] *= scale;
    popularity[i] = static_cast<double>(items - i);
  }
  Result<serve::ServingModel> built = serve::ServingModel::FromFactors(
      std::move(p), std::move(q), Matrix(), Matrix(), std::move(popularity));
  DTREC_CHECK(built.ok()) << built.status();
  const serve::ServingModel& model = built.value();

  std::vector<bench::KernelBenchResult> results;
  double dense_ns = 0.0;
  const double flops = 2.0 * static_cast<double>(items) * dim;
  for (const serve::TopKMode mode :
       {serve::TopKMode::kDense, serve::TopKMode::kPruned,
        serve::TopKMode::kQuantized}) {
    serve::ScoreCacheConfig config;
    config.capacity = 0;  // time the sweep, not the cache
    config.mode = mode;
    serve::TopKScorer scorer(config);
    size_t next_user = 0;
    const double ns = TimeNs(
        [&] {
          std::vector<serve::ScoredItem> slate =
              scorer.ScoreFresh(model, next_user, topk);
          benchmark::DoNotOptimize(slate.data());
          next_user = (next_user + 1) % users;
        },
        target);
    if (mode == serve::TopKMode::kDense) dense_ns = ns;

    // Recall@K against the brute-force oracle over a sample of users.
    const size_t sample = std::min<size_t>(users, 16);
    size_t matched = 0;
    for (size_t u = 0; u < sample; ++u) {
      const std::vector<serve::ScoredItem> got =
          scorer.ScoreFresh(model, u, topk);
      const std::vector<serve::ScoredItem> want =
          serve::BruteForceTopK(model, u, topk);
      for (const serve::ScoredItem& w : want) {
        for (const serve::ScoredItem& g : got) {
          if (g.item == w.item) {
            ++matched;
            break;
          }
        }
      }
    }

    bench::KernelBenchResult r;
    r.kernel = "topk";
    r.variant = serve::TopKModeName(mode);
    r.m = items;
    r.k = dim;
    r.n = topk;
    r.ns_per_op = ns;
    r.gflops = flops / ns;
    r.speedup_vs_naive = dense_ns / ns;
    r.recall_at_k =
        static_cast<double>(matched) / static_cast<double>(sample * topk);
    results.push_back(r);

    std::printf("%-14s %5zu items x dim %-3zu K=%-3zu  %9.1f ns/user  "
                "%8.2f GF/s-eq  vs-dense %5.2fx  recall %.4f\n",
                ("topk/" + std::string(r.variant)).c_str(), items, dim, topk,
                ns, r.gflops, r.speedup_vs_naive, r.recall_at_k);
  }
  return results;
}

int ValidateFile(const std::string& path) {
  std::string content;
  if (const Status read = ReadFile(path, &content); !read.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 read.ToString().c_str());
    return 1;
  }
  const Status st = bench::ValidateKernelBenchJson(content);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: schema validation FAILED: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("%s: schema %s OK\n", path.c_str(), bench::kKernelBenchSchema);
  return 0;
}

// ------------------------------------------------- google-benchmark suite
//
// Design-choice ablations from DESIGN.md: the Gram-identity regularization
// kernel vs the naive |U|×|I| product, and the autograd tape vs
// hand-derived analytic gradients for an IPS step.

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::RandomNormal(n, n, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(n, n, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128)->Arg(256);

/// The raw blocked kernel vs its naive reference on the headline shape, so
/// `--benchmark_filter=Gemm` reproduces the JSON speedup interactively.
void BM_GemmBlocked(benchmark::State& state) {
  Rng rng(7);
  const Matrix a = Matrix::RandomNormal(256, 64, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(64, 256, 1.0, &rng);
  Matrix c(256, 256);
  for (auto _ : state) {
    kernels::Gemm(256, 256, 64, a.data(), 64, b.data(), 256, c.data(), 256);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 64 * 256);
}
BENCHMARK(BM_GemmBlocked);

void BM_GemmNaive(benchmark::State& state) {
  Rng rng(7);
  const Matrix a = Matrix::RandomNormal(256, 64, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(64, 256, 1.0, &rng);
  Matrix c(256, 256);
  for (auto _ : state) {
    kernels::naive::Gemm(256, 256, 64, a.data(), 64, b.data(), 256, c.data(),
                         256);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 64 * 256);
}
BENCHMARK(BM_GemmNaive);

void BM_MatMulTransB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = Matrix::RandomNormal(n, 8, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(n, 8, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(a, b));
  }
}
BENCHMARK(BM_MatMulTransB)->Arg(256)->Arg(1024);

void BM_SigmoidMat(benchmark::State& state) {
  Rng rng(3);
  const Matrix a = Matrix::RandomNormal(1024, 64, 2.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmoidMat(a));
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_SigmoidMat);

void BM_RegularizationNaive(benchmark::State& state) {
  Rng rng(4);
  DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
      943, 1682, 8, 4, 0.1, 0.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularizationLossNaive(emb));
  }
}
BENCHMARK(BM_RegularizationNaive);

void BM_RegularizationGram(benchmark::State& state) {
  Rng rng(4);
  DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
      943, 1682, 8, 4, 0.1, 0.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegularizationLossGram(emb));
  }
}
BENCHMARK(BM_RegularizationGram);

/// One IPS training step via the autograd tape.
void BM_IpsStepTape(benchmark::State& state) {
  const size_t batch = 2048, m = 943, n = 1682, dim = 8;
  Rng rng(5);
  Matrix p = Matrix::RandomNormal(m, dim, 0.1, &rng);
  Matrix q = Matrix::RandomNormal(n, dim, 0.1, &rng);
  std::vector<size_t> users(batch), items(batch);
  Matrix labels(batch, 1), weights(batch, 1);
  for (size_t i = 0; i < batch; ++i) {
    users[i] = rng.UniformIndex(m);
    items[i] = rng.UniformIndex(n);
    labels(i, 0) = rng.Bernoulli(0.5);
    weights(i, 0) = rng.Bernoulli(0.1) ? 10.0 / batch : 0.0;
  }
  for (auto _ : state) {
    ag::Tape tape;
    ag::Var vp = tape.Leaf(p);
    ag::Var vq = tape.Leaf(q);
    ag::Var probs = ag::Sigmoid(ag::RowwiseDot(ag::GatherRows(vp, users),
                                               ag::GatherRows(vq, items)));
    ag::Var e = ag::Square(ag::Sub(tape.Constant(labels), probs));
    ag::Var loss = ag::WeightedSumElems(e, weights);
    tape.Backward(loss);
    benchmark::DoNotOptimize(tape.GradOf(vp));
  }
}
BENCHMARK(BM_IpsStepTape);

/// The same IPS step with hand-derived analytic gradients (no tape).
void BM_IpsStepAnalytic(benchmark::State& state) {
  const size_t batch = 2048, m = 943, n = 1682, dim = 8;
  Rng rng(5);
  Matrix p = Matrix::RandomNormal(m, dim, 0.1, &rng);
  Matrix q = Matrix::RandomNormal(n, dim, 0.1, &rng);
  std::vector<size_t> users(batch), items(batch);
  Matrix labels(batch, 1), weights(batch, 1);
  for (size_t i = 0; i < batch; ++i) {
    users[i] = rng.UniformIndex(m);
    items[i] = rng.UniformIndex(n);
    labels(i, 0) = rng.Bernoulli(0.5);
    weights(i, 0) = rng.Bernoulli(0.1) ? 10.0 / batch : 0.0;
  }
  Matrix grad_p(m, dim), grad_q(n, dim);
  for (auto _ : state) {
    grad_p.SetZero();
    grad_q.SetZero();
    for (size_t i = 0; i < batch; ++i) {
      if (weights(i, 0) == 0.0) continue;
      const double* pu = p.row(users[i]);
      const double* qi = q.row(items[i]);
      double score = 0.0;
      for (size_t d = 0; d < dim; ++d) score += pu[d] * qi[d];
      const double prob = Sigmoid(score);
      const double dloss = weights(i, 0) * 2.0 * (prob - labels(i, 0)) *
                           prob * (1.0 - prob);
      double* gp = grad_p.row(users[i]);
      double* gq = grad_q.row(items[i]);
      for (size_t d = 0; d < dim; ++d) {
        gp[d] += dloss * qi[d];
        gq[d] += dloss * pu[d];
      }
    }
    benchmark::DoNotOptimize(grad_p);
  }
}
BENCHMARK(BM_IpsStepAnalytic);

void BM_GatherScatter(benchmark::State& state) {
  Rng rng(6);
  const Matrix table = Matrix::RandomNormal(2000, 16, 1.0, &rng);
  std::vector<size_t> rows(4096);
  for (auto& r : rows) r = rng.UniformIndex(2000);
  Matrix accum(2000, 16);
  for (auto _ : state) {
    const Matrix gathered = GatherRows(table, rows);
    ScatterAddRows(&accum, rows, gathered);
    benchmark::DoNotOptimize(accum);
  }
}
BENCHMARK(BM_GatherScatter);

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_kernels.json";
  std::vector<char*> gbench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--validate=", 0) == 0) {
      return ValidateFile(arg.substr(11));
    } else {
      gbench_args.push_back(argv[i]);
    }
  }

  std::vector<bench::KernelBenchResult> results = RunKernelSweep(smoke);
  const std::vector<bench::KernelBenchResult> topk_rows = RunTopKSweep(smoke);
  results.insert(results.end(), topk_rows.begin(), topk_rows.end());
  if (const Status write =
          WriteFileAtomic(json_path, bench::KernelResultsToJson(results));
      !write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                 write.ToString().c_str());
    return 1;
  }
  std::printf("[json written to %s]\n", json_path.c_str());
  if (smoke) return 0;

  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                             gbench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Main(argc, argv); }
