// Regenerates paper Table V: ablation of the disentangling loss (β) and
// the regularization loss (γ) for DT-IPS and DT-DR on the three datasets.
// Four switch combinations per method; the paper's ordering is
//   both on > only-β > only-γ > both off.

#include <iostream>

#include "baselines/registry.h"
#include "bench_common.h"
#include "experiments/evaluator.h"
#include "synth/coat_like.h"
#include "synth/kuairec_like.h"
#include "synth/yahoo_like.h"

namespace dtrec {
namespace {

struct Combo {
  bool use_beta;
  bool use_gamma;
};

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);

  const Combo combos[] = {{false, false}, {false, true},
                          {true, false},  {true, true}};

  for (DatasetKind kind : {DatasetKind::kCoat, DatasetKind::kYahoo,
                           DatasetKind::kKuaiRec}) {
    DatasetProfile profile = DefaultProfile(kind);
    size_t seeds = 2;
    bench::ApplyArgs(args, &profile, &seeds);

    // One dataset realization per seed, shared across combos.
    std::vector<RatingDataset> datasets;
    for (uint64_t seed : bench::MakeSeeds(seeds)) {
      switch (kind) {
        case DatasetKind::kCoat:
          datasets.push_back(MakeCoatLike(seed).dataset);
          break;
        case DatasetKind::kYahoo:
          datasets.push_back(
              MakeYahooLike(seed, profile.dataset_scale).dataset);
          break;
        case DatasetKind::kKuaiRec:
          datasets.push_back(
              MakeKuaiRecLike(seed, profile.dataset_scale).dataset);
          break;
      }
    }

    TableWriter table(StrFormat(
        "Table V (%s): DT ablation over beta (disentangle) and gamma "
        "(regularize), mean over %zu seeds",
        DatasetKindName(kind), seeds));
    table.SetHeader({"Method", "beta", "gamma", "AUC",
                     StrFormat("N@%zu", profile.ranking_k),
                     StrFormat("R@%zu", profile.ranking_k)});

    for (const char* method : {"DT-IPS", "DT-DR"}) {
      for (const Combo& combo : combos) {
        double auc = 0.0, ndcg = 0.0, recall = 0.0;
        for (size_t s = 0; s < datasets.size(); ++s) {
          TrainConfig tc = TuneForMethod(method, profile.train);
          if (!combo.use_beta) tc.beta = 0.0;
          if (!combo.use_gamma) tc.gamma = 0.0;
          tc.seed = 311 + s;
          auto trainer = std::move(MakeTrainer(method, tc).value());
          DTREC_CHECK(trainer->Fit(datasets[s]).ok());
          const RankingMetrics metrics =
              EvaluateRanking(*trainer, datasets[s], profile.ranking_k);
          auc += metrics.auc;
          ndcg += metrics.ndcg_at_k;
          recall += metrics.recall_at_k;
        }
        const double inv = 1.0 / static_cast<double>(datasets.size());
        table.AddRow({method, combo.use_beta ? "on" : "off",
                      combo.use_gamma ? "on" : "off",
                      FormatDouble(auc * inv, 3),
                      FormatDouble(ndcg * inv, 3),
                      FormatDouble(recall * inv, 3)});
      }
    }
    bench::Emit(table,
                StrFormat("table5_ablation_%s.csv", DatasetKindName(kind)));
  }

  std::cout << "Expected shape (paper Table V): both-on best; beta-only "
               "second; gamma-only third; both-off worst.\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
