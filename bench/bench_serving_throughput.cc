// Serving load generator: sweeps the worker-pool size over a coat-like
// model and reports QPS + tail latency per thread count, plus cache and
// degraded-fallback rates. The hot path measured is the full request
// path: registry acquire → score-cache lookup → blocked top-K scoring.
//
//   bench_serving_throughput [key=value ...]
//
// keys (defaults): threads=1,4,8  requests=20000  k=10  dim=16
//                  cache=1024  deadline_ms=-1  users=290  items=300
//                  unique_users=0 (0 → all users; smaller → hotter cache)
//                  topk_mode=dense (comma list of dense|pruned|quantized —
//                  the thread sweep reruns per mode, so pruned-vs-dense
//                  throughput is one run: topk_mode=dense,pruned)
//                  trace-out= profile-out= (arm request tracing / attach
//                  the SIGPROF profiler for the whole sweep and write the
//                  artifacts — this is the DESIGN.md §5k overhead
//                  protocol: fixed-load QPS here is far less noisy than
//                  the replay's SLO capacity search)
//
// The bench keeps ServerConfig::max_queue at its unbounded default so
// every request is admitted and the numbers measure the scoring path,
// not the load shedder; a bounded run (max_queue > 0) sheds overflow to
// the inline popularity slate and reports it as shed= in the stats line,
// which deflates tail latency rather than measuring it.
//
// Writes bench_results/serving_throughput.csv.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "serve/model_registry.h"
#include "serve/recommend_server.h"
#include "serve/topk_scorer.h"
#include "synth/coat_like.h"
#include "tensor/matrix.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace dtrec {
namespace {

struct Args {
  std::vector<size_t> threads = {1, 4, 8};
  size_t requests = 20000;
  size_t k = 10;
  size_t dim = 16;
  size_t cache = 1024;
  double deadline_ms = -1.0;
  size_t users = 290;  // coat shape
  size_t items = 300;
  size_t unique_users = 0;
  uint64_t seed = 42;
  std::vector<serve::TopKMode> modes = {serve::TopKMode::kDense};
  std::string trace_out;
  std::string profile_out;
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "usage: %s [key=value ...]\n", argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "threads") {
      args.threads.clear();
      for (const std::string& part : Split(value, ',')) {
        args.threads.push_back(std::strtoul(part.c_str(), nullptr, 10));
      }
    } else if (key == "requests") {
      args.requests = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "k") {
      args.k = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "dim") {
      args.dim = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "cache") {
      args.cache = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "deadline_ms") {
      args.deadline_ms = std::strtod(value.c_str(), nullptr);
    } else if (key == "users") {
      args.users = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "items") {
      args.items = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "unique_users") {
      args.unique_users = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      args.seed = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "trace-out") {
      args.trace_out = value;
    } else if (key == "profile-out") {
      args.profile_out = value;
    } else if (key == "topk_mode") {
      args.modes.clear();
      for (const std::string& part : Split(value, ',')) {
        serve::TopKMode mode;
        if (!serve::ParseTopKMode(part, &mode)) {
          std::fprintf(stderr,
                       "topk_mode must be dense, pruned or quantized "
                       "(got '%s')\n",
                       part.c_str());
          std::exit(2);
        }
        args.modes.push_back(mode);
      }
    } else {
      std::fprintf(stderr, "unknown key '%s'\n", key.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Coat-shaped serving model: random factors at the coat-like scale with
/// the real generator's item popularity counts (so the degraded fallback
/// ranking is realistic). Random factors score identically in cost to
/// trained ones; throughput does not care about AUC.
serve::ServingModel MakeModel(const Args& args) {
  Rng rng(args.seed);
  const SimulatedData world = MakeCoatLike(args.seed);
  const std::vector<size_t> counts = world.dataset.ItemCounts();
  std::vector<double> popularity(args.items, 0.0);
  for (size_t i = 0; i < args.items && i < counts.size(); ++i) {
    popularity[i] = static_cast<double>(counts[i]);
  }
  auto model = serve::ServingModel::FromFactors(
      Matrix::RandomNormal(args.users, args.dim, 0.1, &rng),
      Matrix::RandomNormal(args.items, args.dim, 0.1, &rng), Matrix(),
      Matrix(), std::move(popularity));
  DTREC_CHECK(model.ok()) << model.status();
  return std::move(model).value();
}

struct SweepPoint {
  size_t threads = 0;
  double qps = 0.0;
  serve::ServerStats stats;
};

SweepPoint RunSweep(const serve::ModelRegistry& registry, const Args& args,
                    size_t threads, serve::TopKMode mode) {
  serve::ServerConfig config;
  config.num_threads = threads;
  config.default_k = args.k;
  config.default_deadline_ms = args.deadline_ms;
  config.cache.capacity = args.cache;
  config.cache.mode = mode;
  serve::RecommendServer server(&registry, config);

  const size_t user_pool =
      args.unique_users > 0 ? std::min(args.unique_users, args.users)
                            : args.users;
  Rng traffic(args.seed + threads);

  // Warm-up (not measured): JIT-free C++, but first touches fault pages
  // in and the cache starts cold.
  for (size_t r = 0; r < std::min<size_t>(args.requests / 10, 500); ++r) {
    server.Recommend({.user = traffic.UniformIndex(user_pool)});
  }
  server.ResetStats();

  const Stopwatch watch;
  std::vector<std::future<serve::Recommendation>> futures;
  futures.reserve(args.requests);
  for (size_t r = 0; r < args.requests; ++r) {
    futures.push_back(
        server.Submit({.user = traffic.UniformIndex(user_pool)}));
  }
  for (auto& future : futures) future.get();
  const double elapsed = watch.ElapsedSeconds();

  SweepPoint point;
  point.threads = threads;
  point.qps = args.requests / elapsed;
  point.stats = server.Snapshot();
  return point;
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  serve::ModelRegistry registry;
  registry.Publish(MakeModel(args));

  // Diagnosis-layer attach (the §5k overhead protocol runs this bench
  // with and without these keys and compares fixed-load QPS).
  if (!args.trace_out.empty()) obs::EnableTracing();
  bool profiling = false;
  if (!args.profile_out.empty()) {
    obs::ProfilerOptions prof_options;
    prof_options.interval_us = 2000;  // match the replay's attach
    if (const Status st = obs::StartProfiler(prof_options); st.ok()) {
      profiling = true;
    } else {
      std::printf("profiler not attached: %s\n", st.ToString().c_str());
    }
  }

  TableWriter table(StrFormat(
      "serving throughput: %zu requests/point, %zux%zu model dim %zu, "
      "k=%zu, cache=%zu",
      args.requests, args.users, args.items, args.dim, args.k, args.cache));
  table.SetHeader({"mode", "threads", "qps", "score_p50_us", "score_p95_us",
                   "score_p99_us", "total_p50_us", "total_p95_us",
                   "total_p99_us", "cache_hit_pct", "degraded_pct"});

  for (const serve::TopKMode mode : args.modes) {
    double single_thread_qps = 0.0;
    for (size_t threads : args.threads) {
      const SweepPoint point = RunSweep(registry, args, threads, mode);
      if (threads == 1) single_thread_qps = point.qps;
      std::printf("mode=%s threads=%zu: %.0f QPS, total p99 %.0fus (%s)\n",
                  serve::TopKModeName(mode), point.threads, point.qps,
                  point.stats.total_us.p99_us, point.stats.Summary().c_str());
      table.AddRow({serve::TopKModeName(mode),
                    StrFormat("%zu", point.threads),
                    FormatDouble(point.qps, 0),
                    FormatDouble(point.stats.score_us.p50_us, 1),
                    FormatDouble(point.stats.score_us.p95_us, 1),
                    FormatDouble(point.stats.score_us.p99_us, 1),
                    FormatDouble(point.stats.total_us.p50_us, 1),
                    FormatDouble(point.stats.total_us.p95_us, 1),
                    FormatDouble(point.stats.total_us.p99_us, 1),
                    FormatDouble(100.0 * point.stats.cache_hit_rate(), 1),
                    FormatDouble(100.0 * point.stats.degraded_rate(), 1)});
      if (threads > 1 && single_thread_qps > 0.0) {
        std::printf("  speedup vs 1 thread: %.2fx (hardware threads: %u)\n",
                    point.qps / single_thread_qps,
                    std::thread::hardware_concurrency());
      }
    }
  }

  if (profiling) {
    if (const Status st = obs::StopProfiler(); !st.ok()) {
      std::fprintf(stderr, "profiler stop: %s\n", st.ToString().c_str());
    }
    const obs::ProfileReport report = obs::CollectProfile();
    if (const Status st =
            WriteFileAtomic(args.profile_out, obs::CollapsedStacks(report));
        !st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", args.profile_out.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("profile: %llu samples, %zu distinct stacks -> %s\n",
                static_cast<unsigned long long>(report.samples),
                report.stacks.size(), args.profile_out.c_str());
  }
  if (!args.trace_out.empty()) {
    obs::DisableTracing();
    if (const Status st = obs::WriteTraceJson(args.trace_out); !st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", args.trace_out.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("trace -> %s\n", args.trace_out.c_str());
  }

  table.RenderConsole(std::cout);
  std::printf("\n");
  (void)std::system("mkdir -p bench_results");
  const Status st = table.WriteCsvFile("bench_results/serving_throughput.csv");
  if (st.ok()) {
    std::printf("[csv written to bench_results/serving_throughput.csv]\n");
  } else {
    std::fprintf(stderr, "[csv write failed: %s]\n", st.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Main(argc, argv); }
