// Regenerates paper Table IV: the full method comparison on the three
// simulated real-world datasets (Coat-, Yahoo!R3-, and KuaiRec-shaped),
// training on the biased MNAR split and evaluating AUC / NDCG@K /
// Recall@K on the unbiased split, with ± std over seeds and a paired
// t-test of the proposed DT methods against the best baseline ("*").
//
// Defaults keep the suite laptop-sized: seeds=3 and scaled-down Yahoo/
// KuaiRec worlds. Full-paper settings: seeds=10 scale=1.0 (hours).

#include <iostream>

#include "baselines/registry.h"
#include "bench_common.h"
#include "experiments/runner.h"
#include "synth/coat_like.h"
#include "synth/kuairec_like.h"
#include "synth/yahoo_like.h"
#include "util/stopwatch.h"

namespace dtrec {
namespace {

DatasetFactory FactoryFor(DatasetKind kind, double scale) {
  switch (kind) {
    case DatasetKind::kCoat:
      return [](uint64_t seed) { return MakeCoatLike(seed).dataset; };
    case DatasetKind::kYahoo:
      return [scale](uint64_t seed) {
        return MakeYahooLike(seed, scale).dataset;
      };
    case DatasetKind::kKuaiRec:
      return [scale](uint64_t seed) {
        return MakeKuaiRecLike(seed, scale).dataset;
      };
  }
  DTREC_CHECK(false);
  return {};
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  Stopwatch total;

  for (DatasetKind kind : {DatasetKind::kCoat, DatasetKind::kYahoo,
                           DatasetKind::kKuaiRec}) {
    DatasetProfile profile = DefaultProfile(kind);
    size_t seeds = 3;
    bench::ApplyArgs(args, &profile, &seeds);

    DTREC_LOG(INFO) << "=== " << DatasetKindName(kind) << " ("
                    << seeds << " seeds) ===";
    const std::vector<MethodResult> results = RunComparison(
        AllMethodNames(), FactoryFor(kind, profile.dataset_scale), profile,
        bench::MakeSeeds(seeds), /*quiet=*/true);

    TableWriter table = MakeComparisonTable(
        StrFormat("Table IV (%s): AUC / N@%zu / R@%zu, mean±std over %zu "
                  "seeds; * = p<=0.05 vs best baseline",
                  DatasetKindName(kind), profile.ranking_k,
                  profile.ranking_k, seeds),
        profile.ranking_k, results);
    bench::Emit(table, StrFormat("table4_%s.csv", DatasetKindName(kind)));
  }

  std::cout << "Expected shape (paper Table IV): debiasing methods beat "
               "naive MF; DR variants generally beat IPS variants; DT-IPS "
               "and DT-DR rank first or second on each dataset.\n";
  std::cout << "[total " << FormatDouble(total.ElapsedSeconds(), 1)
            << "s]\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
