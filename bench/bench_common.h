#ifndef DTREC_BENCH_BENCH_COMMON_H_
#define DTREC_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure regeneration binaries.
//
// Every bench accepts "key=value" overrides on the command line (see
// dtrec::ApplyOverride for the keys, plus "seeds=N" handled here) so the
// full-scale paper settings are one flag away from the laptop defaults,
// and writes its CSV next to the binary under bench_results/.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/config.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace dtrec::bench {

struct BenchArgs {
  DatasetProfile profile;  // benches overwrite with their dataset default
  size_t seeds = 3;
  bool have_profile_overrides = false;
  std::vector<std::pair<std::string, std::string>> raw;
};

/// Parses key=value arguments; unknown keys abort with a usage message.
inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "usage: %s [key=value ...]\n", argv[0]);
      std::exit(2);
    }
    args.raw.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return args;
}

/// Applies parsed overrides onto `profile`; "seeds" is consumed here.
inline void ApplyArgs(const BenchArgs& args, DatasetProfile* profile,
                      size_t* seeds) {
  for (const auto& [key, value] : args.raw) {
    if (key == "seeds") {
      *seeds = static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
      continue;
    }
    const Status st = ApplyOverride(key, value, profile);
    if (!st.ok()) {
      std::fprintf(stderr, "bad override %s=%s: %s\n", key.c_str(),
                   value.c_str(), st.ToString().c_str());
      std::exit(2);
    }
  }
}

/// Prints the table and writes its CSV under bench_results/.
inline void Emit(const TableWriter& table, const std::string& csv_name) {
  table.RenderConsole(std::cout);
  std::cout << "\n";
  const std::string dir = "bench_results";
  (void)std::system(("mkdir -p " + dir).c_str());
  const std::string path = dir + "/" + csv_name;
  const Status st = table.WriteCsvFile(path);
  if (st.ok()) {
    std::cout << "[csv written to " << path << "]\n";
  } else {
    std::cerr << "[csv write failed: " << st.ToString() << "]\n";
  }
}

inline std::vector<uint64_t> MakeSeeds(size_t n) {
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < n; ++i) seeds.push_back(1000 + 17 * i);
  return seeds;
}

// ------------------------------------------------------------------------
// Perf-trajectory JSON (the BENCH_*.json files).
//
// Machine-readable kernel timings so the repo has a recorded baseline to
// regress against: one file per bench family, schema-versioned, build
// flavor stamped (numbers from a guarded or sanitized build must never be
// compared against a Release baseline). The emitter and the structural
// validator live together so the `bench-smoke` CTest leg can round-trip
// what it wrote.

// v2: adds the serving top-K sweep rows (variants dense / pruned /
// quantized) and a mandatory recall@K column so the speed/recall tradeoff
// of the sub-linear paths is pinned alongside their timings. The
// validator requires the exact tag, so a stale v1 document is rejected.
inline constexpr const char* kKernelBenchSchema = "dtrec-bench-kernels-v2";

/// One timed kernel configuration. `speedup_vs_naive` is 1.0 for the
/// naive reference rows themselves (and for the dense top-K baseline);
/// `recall_at_k` is 1.0 for every exact kernel and measured against
/// BruteForceTopK for the approximate sweeps.
struct KernelBenchResult {
  std::string kernel;   ///< e.g. "gemm", "row_dot", "row_dot_i8", "topk"
  std::string variant;  ///< "blocked"/"naive" or "dense"/"pruned"/"quantized"
  size_t m = 0, k = 0, n = 0;
  double ns_per_op = 0.0;  ///< nanoseconds per kernel invocation
  double gflops = 0.0;     ///< 2·m·k·n (or 2·m·k) / time
  double speedup_vs_naive = 1.0;
  double recall_at_k = 1.0;  ///< fraction of the oracle top-K returned
};

/// Build flavor stamp. The macros are injected by bench/CMakeLists.txt;
/// the fallbacks keep the header usable from any translation unit.
inline std::string BuildFlavorJson() {
#ifdef DTREC_BENCH_BUILD_TYPE
  const char* build_type = DTREC_BENCH_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
#ifdef DTREC_BENCH_SANITIZE
  const char* sanitize = DTREC_BENCH_SANITIZE;
#else
  const char* sanitize = "";
#endif
#ifdef DTREC_NUMERIC_CHECKS
  const bool numeric_checks = true;
#else
  const bool numeric_checks = false;
#endif
#ifdef DTREC_FAILPOINTS_ENABLED
  const bool failpoints = true;
#else
  const bool failpoints = false;
#endif
  std::string out = "{";
  out += "\"build_type\": \"" + std::string(build_type) + "\", ";
  out += "\"sanitizers\": \"" + std::string(*sanitize ? sanitize : "none") +
         "\", ";
  out += std::string("\"numeric_checks\": ") +
         (numeric_checks ? "true" : "false") + ", ";
  out += std::string("\"failpoints\": ") + (failpoints ? "true" : "false");
  out += "}";
  return out;
}

inline std::string KernelResultsToJson(
    const std::vector<KernelBenchResult>& results) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"" + std::string(kKernelBenchSchema) + "\",\n";
  out += "  \"build\": " + BuildFlavorJson() + ",\n";
  out += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelBenchResult& r = results[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                  "\"m\": %zu, \"k\": %zu, \"n\": %zu, "
                  "\"ns_per_op\": %.1f, \"gflops\": %.3f, "
                  "\"speedup_vs_naive\": %.3f, \"recall_at_k\": %.4f}%s\n",
                  r.kernel.c_str(), r.variant.c_str(), r.m, r.k, r.n,
                  r.ns_per_op, r.gflops, r.speedup_vs_naive, r.recall_at_k,
                  i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

namespace json_internal {

/// Minimal recursive-descent JSON checker: verifies well-formedness and
/// lets the schema validator walk the document. Values are left as raw
/// token text; only the structure the validator needs is materialized.
struct JsonCursor {
  const std::string& s;
  size_t i = 0;
  bool ok = true;

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
  std::string ParseString() {
    if (!Eat('"')) return "";
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out += s[i++];
    }
    if (!Eat('"')) ok = false;
    return out;
  }
  double ParseNumber() {
    SkipWs();
    char* end = nullptr;
    const double v = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) {
      ok = false;
      return 0.0;
    }
    i = static_cast<size_t>(end - s.c_str());
    return v;
  }
  void SkipValue();  // forward-declared, mutually recursive

  /// Parses an object into key -> raw value handled by `fn(key)`; the
  /// callback must consume the value via the cursor.
  template <typename Fn>
  void ParseObject(Fn&& fn) {
    if (!Eat('{')) return;
    if (Peek('}')) {
      Eat('}');
      return;
    }
    while (ok) {
      const std::string key = ParseString();
      if (!Eat(':')) return;
      fn(key);
      if (Peek(',')) {
        Eat(',');
        continue;
      }
      Eat('}');
      return;
    }
  }
};

inline void JsonCursor::SkipValue() {
  SkipWs();
  if (i >= s.size()) {
    ok = false;
    return;
  }
  const char c = s[i];
  if (c == '"') {
    ParseString();
  } else if (c == '{') {
    ParseObject([this](const std::string&) { SkipValue(); });
  } else if (c == '[') {
    Eat('[');
    if (Peek(']')) {
      Eat(']');
      return;
    }
    while (ok) {
      SkipValue();
      if (Peek(',')) {
        Eat(',');
        continue;
      }
      Eat(']');
      return;
    }
  } else if (s.compare(i, 4, "true") == 0) {
    i += 4;
  } else if (s.compare(i, 5, "false") == 0) {
    i += 5;
  } else if (s.compare(i, 4, "null") == 0) {
    i += 4;
  } else {
    ParseNumber();
  }
}

}  // namespace json_internal

/// Structural schema validation of a BENCH_kernels.json document: schema
/// tag (exact v2 match — v1 files fail here), build stamp with the four
/// flavor fields, and a non-empty results array whose entries carry the
/// kernel/variant strings, the three shape dims, positive timings, and a
/// recall@K in [0, 1]. Returns OK or a message naming the first
/// violation.
inline Status ValidateKernelBenchJson(const std::string& content) {
  using json_internal::JsonCursor;
  JsonCursor cur{content};
  std::string schema;
  bool saw_build = false;
  std::vector<std::string> build_keys;
  size_t num_results = 0;
  std::string error;

  cur.ParseObject([&](const std::string& key) {
    if (key == "schema") {
      schema = cur.ParseString();
    } else if (key == "build") {
      saw_build = true;
      cur.ParseObject([&](const std::string& bk) {
        build_keys.push_back(bk);
        cur.SkipValue();
      });
    } else if (key == "results") {
      if (!cur.Eat('[')) return;
      if (cur.Peek(']')) {
        cur.Eat(']');
        return;
      }
      while (cur.ok) {
        bool has_kernel = false, has_variant = false;
        size_t dims = 0;
        double ns = -1.0, gflops = -1.0, recall = -1.0;
        cur.ParseObject([&](const std::string& rk) {
          if (rk == "kernel") {
            has_kernel = !cur.ParseString().empty();
          } else if (rk == "variant") {
            const std::string v = cur.ParseString();
            has_variant = v == "blocked" || v == "naive" || v == "dense" ||
                          v == "pruned" || v == "quantized";
          } else if (rk == "m" || rk == "k" || rk == "n") {
            if (cur.ParseNumber() >= 0.0) ++dims;
          } else if (rk == "ns_per_op") {
            ns = cur.ParseNumber();
          } else if (rk == "gflops") {
            gflops = cur.ParseNumber();
          } else if (rk == "recall_at_k") {
            recall = cur.ParseNumber();
          } else {
            cur.SkipValue();
          }
        });
        if (!(has_kernel && has_variant && dims == 3 && ns > 0.0 &&
              gflops >= 0.0 && recall >= 0.0 && recall <= 1.0)) {
          if (error.empty()) {
            error = "results[" + std::to_string(num_results) +
                    "] missing kernel/variant/m/k/n/recall_at_k or "
                    "non-positive timing";
          }
        }
        ++num_results;
        if (cur.Peek(',')) {
          cur.Eat(',');
          continue;
        }
        cur.Eat(']');
        return;
      }
    } else {
      cur.SkipValue();
    }
  });

  if (!cur.ok) return Status::InvalidArgument("malformed JSON");
  if (!error.empty()) return Status::InvalidArgument(error);
  if (schema != kKernelBenchSchema) {
    return Status::InvalidArgument("schema tag is '" + schema +
                                   "', expected '" + kKernelBenchSchema +
                                   "'");
  }
  if (!saw_build) return Status::InvalidArgument("missing build stamp");
  for (const char* required :
       {"build_type", "sanitizers", "numeric_checks", "failpoints"}) {
    bool found = false;
    for (const std::string& k : build_keys) found |= k == required;
    if (!found) {
      return Status::InvalidArgument(std::string("build stamp missing '") +
                                     required + "'");
    }
  }
  if (num_results == 0) {
    return Status::InvalidArgument("results array is empty");
  }
  return Status::OK();
}

}  // namespace dtrec::bench

#endif  // DTREC_BENCH_BENCH_COMMON_H_
