#ifndef DTREC_BENCH_BENCH_COMMON_H_
#define DTREC_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure regeneration binaries.
//
// Every bench accepts "key=value" overrides on the command line (see
// dtrec::ApplyOverride for the keys, plus "seeds=N" handled here) so the
// full-scale paper settings are one flag away from the laptop defaults,
// and writes its CSV next to the binary under bench_results/.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/config.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace dtrec::bench {

struct BenchArgs {
  DatasetProfile profile;  // benches overwrite with their dataset default
  size_t seeds = 3;
  bool have_profile_overrides = false;
  std::vector<std::pair<std::string, std::string>> raw;
};

/// Parses key=value arguments; unknown keys abort with a usage message.
inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "usage: %s [key=value ...]\n", argv[0]);
      std::exit(2);
    }
    args.raw.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return args;
}

/// Applies parsed overrides onto `profile`; "seeds" is consumed here.
inline void ApplyArgs(const BenchArgs& args, DatasetProfile* profile,
                      size_t* seeds) {
  for (const auto& [key, value] : args.raw) {
    if (key == "seeds") {
      *seeds = static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
      continue;
    }
    const Status st = ApplyOverride(key, value, profile);
    if (!st.ok()) {
      std::fprintf(stderr, "bad override %s=%s: %s\n", key.c_str(),
                   value.c_str(), st.ToString().c_str());
      std::exit(2);
    }
  }
}

/// Prints the table and writes its CSV under bench_results/.
inline void Emit(const TableWriter& table, const std::string& csv_name) {
  table.RenderConsole(std::cout);
  std::cout << "\n";
  const std::string dir = "bench_results";
  (void)std::system(("mkdir -p " + dir).c_str());
  const std::string path = dir + "/" + csv_name;
  const Status st = table.WriteCsvFile(path);
  if (st.ok()) {
    std::cout << "[csv written to " << path << "]\n";
  } else {
    std::cerr << "[csv write failed: " << st.ToString() << "]\n";
  }
}

inline std::vector<uint64_t> MakeSeeds(size_t n) {
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < n; ++i) seeds.push_back(1000 + 17 * i);
  return seeds;
}

}  // namespace dtrec::bench

#endif  // DTREC_BENCH_BENCH_COMMON_H_
