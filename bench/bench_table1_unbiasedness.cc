// Regenerates paper Table I: unbiasedness (✓/×) of the MCAR, MAR, and MNAR
// propensities under each missing-data mechanism, demonstrated numerically
// with oracle propensities on a fully-known world (Lemmas 1–2).
//
// For every (mechanism, propensity) pair we Monte-Carlo the IPS estimator
// over observation realizations and report its bias against the ideal
// loss; |bias| within a few Monte-Carlo standard errors prints ✓.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "experiments/oracle_bias.h"
#include "synth/mnar_generator.h"
#include "util/random.h"

namespace dtrec {
namespace {

struct WorldSlice {
  Matrix errors;
  Matrix mnar, mar, mcar;  // oracle propensities of the three families
};

WorldSlice BuildWorld(MissingMechanism mechanism, uint64_t seed) {
  MnarGeneratorConfig config;
  config.num_users = 120;
  config.num_items = 120;
  config.mechanism = mechanism;
  config.base_logit = -1.2;
  config.feature_coef = 1.0;
  config.rating_coef = 1.1;
  config.seed = seed;
  const SimulatedData data = MnarGenerator(config).Generate();

  WorldSlice world;
  world.errors = Matrix(config.num_users, config.num_items);
  for (size_t u = 0; u < config.num_users; ++u) {
    for (size_t i = 0; i < config.num_items; ++i) {
      const double diff = data.oracle.label(u, i) - 0.4;
      world.errors(u, i) = diff * diff;
    }
  }
  world.mnar = data.oracle.mnar_propensity;
  world.mar = data.oracle.mar_propensity;
  world.mcar = Matrix(config.num_users, config.num_items,
                      data.oracle.mcar_propensity);
  return world;
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  size_t trials = 400;
  for (const auto& [key, value] : args.raw) {
    if (key == "trials") trials = std::strtoul(value.c_str(), nullptr, 10);
  }

  TableWriter table(
      "Table I: unbiasedness of MCAR/MAR/MNAR propensities per mechanism "
      "(IPS estimator, oracle propensities)");
  table.SetHeader({"Propensity", "MCAR data", "MAR data", "MNAR data"});

  const char* prop_names[] = {"MCAR propensity P(o=1)",
                              "MAR propensity P(o=1|x)",
                              "MNAR propensity P(o=1|x,r)"};
  const MissingMechanism mechanisms[] = {MissingMechanism::kMcar,
                                         MissingMechanism::kMar,
                                         MissingMechanism::kMnar};

  for (int prop = 0; prop < 3; ++prop) {
    std::vector<std::string> row{prop_names[prop]};
    for (int mech = 0; mech < 3; ++mech) {
      const WorldSlice world = BuildWorld(mechanisms[mech], 11 + mech);
      const Matrix& weighting =
          prop == 0 ? world.mcar : (prop == 1 ? world.mar : world.mnar);
      Rng rng(100 + 10 * prop + mech);
      const BiasReport report =
          MonteCarloBias(EstimatorKind::kIps, world.errors, world.errors,
                         world.mnar, weighting, trials, &rng);
      const bool unbiased =
          std::fabs(report.bias) < 4.0 * report.std_error + 1e-4;
      row.push_back(StrFormat("%s (bias=%+.4f)", unbiased ? "ok" : "BIASED",
                              report.bias));
    }
    table.AddRow(row);
  }

  bench::Emit(table, "table1_unbiasedness.csv");
  std::cout << "Expected pattern (paper Table I): row 1 ok only under "
               "MCAR; row 2 ok under MCAR+MAR; row 3 ok everywhere.\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
