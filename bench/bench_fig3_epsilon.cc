// Regenerates paper Figure 3: MSE and MAE of the IPS- and DR-family
// estimators on the semi-synthetic pipeline as the noise hyper-parameter
// ε of Eq. (11) varies. As ε grows, η compresses toward 1 and user-item
// heterogeneity shrinks, so every method's error falls; DT-IPS/DT-DR stay
// below the baselines throughout.

#include <iostream>
#include <map>

#include "baselines/registry.h"
#include "bench_common.h"
#include "experiments/evaluator.h"
#include "synth/movielens_like.h"

namespace dtrec {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  DatasetProfile profile;
  profile.train.epochs = 10;
  profile.train.batch_size = 2048;
  profile.train.max_steps_per_epoch = 120;
  profile.train.embedding_dim = 8;
  size_t seeds_unused = 1;
  bench::ApplyArgs(args, &profile, &seeds_unused);

  const std::vector<double> epsilons = {0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<std::string> methods = {"MF",     "IPS",   "DR",
                                            "DT-IPS", "DT-DR"};

  std::map<std::string, std::map<std::string, std::vector<double>>> series;
  for (double eps : epsilons) {
    SemiSyntheticConfig world_config;
    world_config.epsilon = eps;
    world_config.rho = 1.0;
    world_config.seed = 13;
    const SemiSyntheticData world =
        MovieLensLikeGenerator(world_config).Generate();
    for (const std::string& name : methods) {
      TrainConfig tc = TuneForMethod(name, profile.train);
      tc.seed = 37;
      auto trainer = std::move(MakeTrainer(name, tc).value());
      DTREC_CHECK(trainer->Fit(world.dataset).ok());
      const SemiSyntheticMetrics metrics =
          EvaluateSemiSynthetic(*trainer, world);
      series["MSE"][name].push_back(metrics.mse);
      series["MAE"][name].push_back(metrics.mae);
    }
  }

  for (const char* metric : {"MSE", "MAE"}) {
    TableWriter table(
        StrFormat("Figure 3 (%s vs epsilon): semi-synthetic ML-100K",
                  metric));
    std::vector<std::string> header{"Method"};
    for (double eps : epsilons) header.push_back(StrFormat("eps=%.1f", eps));
    table.SetHeader(header);
    for (const std::string& name : methods) {
      std::vector<std::string> row{name};
      for (double v : series[metric][name]) row.push_back(FormatDouble(v, 4));
      table.AddRow(row);
    }
    bench::Emit(table, StrFormat("fig3_epsilon_%s.csv", metric));
  }

  std::cout << "Expected shape (paper Fig. 3): every curve decreases with "
               "epsilon; DT-IPS/DT-DR sit below IPS/DR at each point.\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
