// Regenerates paper Table VI: parameter counts, wall-clock training time,
// and per-sample inference latency of the multi-task family and the
// proposed methods on each dataset. Also reports the regularization-loss
// kernel ablation the paper's efficiency discussion motivates: evaluating
// ‖P'Q'ᵀ‖_F² naively (materializing the |U|×|I| product, the paper's
// costly formulation) vs via the Gram identity used by dtrec.

#include <iostream>

#include "baselines/registry.h"
#include "bench_common.h"
#include "core/disentangled_embeddings.h"
#include "core/losses.h"
#include "experiments/evaluator.h"
#include "synth/coat_like.h"
#include "synth/kuairec_like.h"
#include "synth/yahoo_like.h"
#include "util/failpoint.h"
#include "util/numeric_guard.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace dtrec {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);

  // Timing numbers from a guarded build are not comparable: every tensor
  // op re-scans its output for non-finite values. Say so up front.
  if (kNumericChecksEnabled) {
    std::cout << "build flavor: DTREC_NUMERIC_CHECKS=ON — guarded build; "
                 "do NOT report these timings\n";
  } else {
    std::cout << "build flavor: DTREC_NUMERIC_CHECKS=OFF — timings are "
                 "reportable\n";
  }
  // Same story for fault injection: each compiled-in failpoint site is an
  // atomic load on the training hot path. Reportable numbers come from a
  // -DDTREC_FAILPOINTS=OFF build.
#if DTREC_FAILPOINTS_ENABLED
  std::cout << "build flavor: DTREC_FAILPOINTS=ON — failpoint sites "
               "compiled in; do NOT report these timings\n";
#else
  std::cout << "build flavor: DTREC_FAILPOINTS=OFF — failpoint sites "
               "compiled out\n";
#endif
  // Trace spans default ON: each unarmed DTREC_TRACE_SPAN site is one
  // relaxed atomic load per scope entry (no recording unless armed).
  // Reported efficiency numbers come from a -DDTREC_TRACING=OFF build,
  // where every site compiles to nothing.
#if defined(DTREC_TRACING_ENABLED)
  std::cout << "build flavor: DTREC_TRACING=ON — trace-span sites "
               "compiled in (unarmed: one relaxed load each); prefer a "
               "-DDTREC_TRACING=OFF build for reported timings\n";
#else
  std::cout << "build flavor: DTREC_TRACING=OFF — trace-span sites "
               "compiled out\n";
#endif

  const std::vector<std::string> methods = {
      "ESMM",      "IPS",      "Multi-IPS", "ESCM2-IPS", "DT-IPS",
      "DR-JL",     "Multi-DR", "ESCM2-DR",  "DT-DR"};

  for (DatasetKind kind : {DatasetKind::kCoat, DatasetKind::kYahoo,
                           DatasetKind::kKuaiRec}) {
    DatasetProfile profile = DefaultProfile(kind);
    size_t seeds_unused = 1;
    bench::ApplyArgs(args, &profile, &seeds_unused);

    RatingDataset dataset;
    switch (kind) {
      case DatasetKind::kCoat:
        dataset = MakeCoatLike(601).dataset;
        break;
      case DatasetKind::kYahoo:
        dataset = MakeYahooLike(601, profile.dataset_scale).dataset;
        break;
      case DatasetKind::kKuaiRec:
        dataset = MakeKuaiRecLike(601, profile.dataset_scale).dataset;
        break;
    }

    TableWriter table(StrFormat(
        "Table VI (%s): parameters, training time, inference latency",
        DatasetKindName(kind)));
    table.SetHeader({"Method", "Parameters", "Training (s)",
                     "Inference (ms/sample)"});
    for (const std::string& name : methods) {
      TrainConfig tc = TuneForMethod(name, profile.train);
      tc.seed = 71;
      auto trainer = std::move(MakeTrainer(name, tc).value());
      Stopwatch watch;
      DTREC_CHECK(trainer->Fit(dataset).ok());
      const double train_s = watch.ElapsedSeconds();
      const double infer_ms =
          MeasureInferenceMillisPerSample(*trainer, dataset);
      table.AddRow({name, StrFormat("%.2e",
                                    static_cast<double>(
                                        trainer->NumParameters())),
                    FormatDouble(train_s, 2), FormatDouble(infer_ms, 5)});
    }
    bench::Emit(table, StrFormat("table6_efficiency_%s.csv",
                                 DatasetKindName(kind)));
  }

  // Kernel ablation: the F-norm regularization computed naively vs via
  // the Gram identity, at ML-100K scale (943×1682, K=8, A=4).
  {
    Rng rng(9);
    DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
        943, 1682, 8, 4, 0.1, 0.0, &rng);
    Stopwatch naive_watch;
    double naive_value = 0.0;
    for (int i = 0; i < 5; ++i) naive_value = RegularizationLossNaive(emb);
    const double naive_ms = naive_watch.ElapsedMillis() / 5.0;
    Stopwatch gram_watch;
    double gram_value = 0.0;
    for (int i = 0; i < 200; ++i) gram_value = RegularizationLossGram(emb);
    const double gram_ms = gram_watch.ElapsedMillis() / 200.0;

    TableWriter table(
        "Table VI addendum: F-norm regularization kernel ablation "
        "(943x1682, K=8)");
    table.SetHeader({"Kernel", "Value", "ms/eval", "Speedup"});
    table.AddRow({"naive |U|x|I| product", FormatDouble(naive_value, 4),
                  FormatDouble(naive_ms, 3), "1.0x"});
    table.AddRow({"Gram identity", FormatDouble(gram_value, 4),
                  FormatDouble(gram_ms, 3),
                  StrFormat("%.0fx", naive_ms / gram_ms)});
    bench::Emit(table, "table6_kernel_ablation.csv");
  }

  std::cout << "Expected shape (paper Table VI): DT-IPS has the fewest "
               "parameters of the IPS family; DT-DR fewer than DR-JL; DT "
               "training time is within ~2x of the multi-task baselines "
               "(here less, thanks to the Gram-identity kernel).\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
