// Traffic-replay load harness: drives the serving stack (admission
// controller → worker pool → breaker-guarded TopKScorer) to saturation
// with realistic traffic shapes and emits a schema-stamped
// BENCH_serving.json capacity record.
//
// Phases (each resets server stats, then reports its own percentiles):
//
//   capacity          closed-loop Zipf traffic on the sync path: per-core
//                     users/sec while the p99 meets the SLO — the number
//                     the CI gate enforces on Release builds.
//   diurnal_burst     paced Submit() alternating peak/trough request
//                     bursts (a compressed diurnal curve) against the
//                     admission controller's token bucket.
//   cold_flood        every request a previously-unseen user id: worst
//                     case for the score cache (hit rate → 0).
//   deadline_mix      80% generous / 20% already-tight deadlines: the
//                     tight cohort must degrade, the generous must not.
//   saturation_flood  unpaced Submit() far beyond capacity with a bounded
//                     queue + depth cap: measures the shed rate and that
//                     sheds stay O(1)-cheap under overload.
//
//   bench_traffic_replay [--smoke] [--json=PATH] [--trace-out=PATH]
//                        [--profile-out=PATH] [--alerts-out=PATH]
//                        [key=value ...]
//   bench_traffic_replay --validate=PATH     schema-check a JSON, exit
//   bench_traffic_replay --gate=PATH         validate + enforce the
//       per-core SLO-throughput floor (Release/unsanitized builds only;
//       other flavors validate and pass)
//
// keys (defaults): users=2000 items=2000 dim=32 k=10 cache=4096
//                  threads=0 (0 → hardware) requests=30000 slo_ms=5
//                  zipf=1.1 seed=42 floor=0 (0 → built-in gate floor)
//
// Telemetry: `--trace-out` arms span recording and writes the Chrome
// trace JSON; `--profile-out` attaches the SIGPROF sampling profiler and
// writes collapsed stacks there (plus dtrec-profile-v1 JSON at
// PATH.json); `--alerts-out` streams the watchdog's dtrec-alerts-v1
// JSONL. A telemetry watchdog always runs across the phases and GATES the
// result both ways: any alert during warmup/capacity fails the run, and
// the saturation flood must trip the shed_spike rule. With --trace-out
// the run also proves the exemplar loop end-to-end: the capacity phase's
// p99-bucket exemplar trace id must resolve to span events in the flushed
// trace (strict under --smoke, where the rings cannot wrap).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/telemetry_validate.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "serve/model_registry.h"
#include "serve/recommend_server.h"
#include "tensor/matrix.h"
#include "util/atomic_file.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace dtrec {
namespace {

constexpr const char* kServingBenchSchema = "dtrec-bench-serving-v1";

/// Default per-core users/sec floor the --gate mode enforces on Release
/// unsanitized builds. The 1-core CI container measures ~80k/s on the
/// smoke shape (2000 items, dim 32, warm cache); 4x headroom absorbs
/// noisy-neighbor variance without letting a real regression through.
constexpr double kDefaultPerCoreFloor = 20000.0;

struct Args {
  size_t users = 2000;
  size_t items = 2000;
  size_t dim = 32;
  size_t k = 10;
  size_t cache = 4096;
  size_t threads = 0;  // 0 → hardware_concurrency
  size_t requests = 30000;
  double slo_ms = 5.0;
  double zipf = 1.1;
  uint64_t seed = 42;
  double floor = 0.0;  // 0 → kDefaultPerCoreFloor
  bool smoke = false;
  std::string json_path = "BENCH_serving.json";
  std::string trace_out;    // arms tracing; Chrome trace JSON path
  std::string profile_out;  // collapsed stacks path (+ PATH.json report)
  std::string alerts_out;   // dtrec-alerts-v1 JSONL path
};

/// True for the build flavor whose numbers are comparable to the recorded
/// Release baseline. Sanitized/debug flavors keep the watchdog armed but
/// scale the latency-burn threshold so only the *shape* of the alerts is
/// gated there, not Release-grade latency.
bool ReleaseUnsanitizedBuild() {
#ifdef DTREC_BENCH_BUILD_TYPE
  const bool release = std::string(DTREC_BENCH_BUILD_TYPE) == "Release";
#else
  const bool release = false;
#endif
#ifdef DTREC_BENCH_SANITIZE
  const bool unsanitized = std::string(DTREC_BENCH_SANITIZE).empty();
#else
  const bool unsanitized = true;
#endif
  return release && unsanitized;
}

size_t ResolveThreads(const Args& args) {
  if (args.threads > 0) return args.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Zipf(s) sampler over [0, n) via the precomputed CDF — O(log n) per
/// draw, exact for any exponent. Rank r has probability ∝ 1/(r+1)^s, so
/// user 0 is the hottest.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent) : cdf_(n) {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
      cdf_[r] = total;
    }
    for (size_t r = 0; r < n; ++r) cdf_[r] /= total;
  }

  size_t Sample(Rng* rng) const {
    const double u = rng->Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

serve::ServingModel MakeModel(const Args& args) {
  Rng rng(args.seed);
  std::vector<double> popularity(args.items);
  for (size_t i = 0; i < args.items; ++i) {
    popularity[i] = static_cast<double>(args.items - i);
  }
  auto model = serve::ServingModel::FromFactors(
      Matrix::RandomNormal(args.users, args.dim, 0.1, &rng),
      Matrix::RandomNormal(args.items, args.dim, 0.1, &rng), Matrix(),
      Matrix(), std::move(popularity));
  DTREC_CHECK(model.ok()) << model.status();
  return std::move(model).value();
}

struct PhaseResult {
  std::string phase;
  size_t requests = 0;
  double elapsed_s = 0.0;
  serve::ServerStats stats;

  double shed_rate() const { return stats.shed_rate(); }
  double degraded_rate() const { return stats.degraded_rate(); }
};

/// Closed-loop capacity probe: `threads` generator threads each running
/// sync Recommend() back-to-back with Zipf users. Closed-loop means the
/// offered rate self-limits to the service rate — this measures capacity,
/// not queueing.
PhaseResult RunCapacity(serve::RecommendServer* server,
                        const ZipfSampler& zipf, const Args& args,
                        size_t threads, size_t requests) {
  server->ResetStats();
  PhaseResult result;
  result.phase = "capacity";
  result.requests = requests;
  const Stopwatch watch;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(args.seed + 1000 * (t + 1));
      const size_t quota = requests / threads + (t < requests % threads);
      for (size_t r = 0; r < quota; ++r) {
        server->Recommend({.user = zipf.Sample(&rng), .k = args.k});
      }
    });
  }
  for (std::thread& w : workers) w.join();
  result.elapsed_s = watch.ElapsedSeconds();
  result.stats = server->Snapshot();
  return result;
}

/// Paced diurnal pattern: alternating peak bursts (burst_size submits
/// back-to-back) and troughs (drain + idle beat). The admission token
/// bucket sees a spiky arrival process instead of the closed loop's
/// smooth one.
PhaseResult RunDiurnalBurst(serve::RecommendServer* server,
                            const ZipfSampler& zipf, const Args& args,
                            size_t requests) {
  server->ResetStats();
  PhaseResult result;
  result.phase = "diurnal_burst";
  result.requests = requests;
  Rng rng(args.seed + 7);
  const size_t burst = std::max<size_t>(requests / 20, 1);
  const Stopwatch watch;
  size_t sent = 0;
  std::vector<std::future<serve::Recommendation>> in_flight;
  bool peak = true;
  while (sent < requests) {
    const size_t now = std::min(peak ? burst : burst / 4, requests - sent);
    for (size_t r = 0; r < now; ++r) {
      in_flight.push_back(
          server->Submit({.user = zipf.Sample(&rng), .k = args.k}));
    }
    sent += now;
    // Trough: drain everything (the "night"); peak leaves the backlog up.
    if (!peak) {
      for (auto& f : in_flight) f.get();
      in_flight.clear();
    }
    peak = !peak;
  }
  for (auto& f : in_flight) f.get();
  result.elapsed_s = watch.ElapsedSeconds();
  result.stats = server->Snapshot();
  return result;
}

/// Cold-user flood: strictly fresh user ids against a cold cache — every
/// request a compulsory miss, the worst case for the caching layer and
/// the closest analogue of a cache-busting crawler. Runs on its own
/// server so the warm Zipf head from earlier phases can't leak in, and
/// caps at one request per user so ids never wrap into hits.
PhaseResult RunColdFlood(serve::RecommendServer* server, const Args& args,
                         size_t requests) {
  server->ResetStats();
  PhaseResult result;
  result.phase = "cold_flood";
  requests = std::min(requests, args.users);
  result.requests = requests;
  const Stopwatch watch;
  for (size_t r = 0; r < requests; ++r) {
    server->Recommend({.user = r, .k = args.k});
  }
  result.elapsed_s = watch.ElapsedSeconds();
  result.stats = server->Snapshot();
  return result;
}

/// Deadline mix: 80% generous (the SLO), 20% born-expired (0 ms). The
/// expired cohort must resolve on the popularity rung without dragging
/// the generous cohort's latency along.
PhaseResult RunDeadlineMix(serve::RecommendServer* server,
                           const ZipfSampler& zipf, const Args& args,
                           size_t requests) {
  server->ResetStats();
  PhaseResult result;
  result.phase = "deadline_mix";
  result.requests = requests;
  Rng rng(args.seed + 13);
  const Stopwatch watch;
  for (size_t r = 0; r < requests; ++r) {
    const bool tight = rng.Uniform() < 0.2;
    server->Recommend({.user = zipf.Sample(&rng),
                       .k = args.k,
                       .deadline_ms = tight ? 0.0 : args.slo_ms});
  }
  result.elapsed_s = watch.ElapsedSeconds();
  result.stats = server->Snapshot();
  return result;
}

/// Unpaced flood through Submit() against a bounded queue and depth cap:
/// offered load far beyond capacity. The interesting numbers are the shed
/// rate (must be high — the queue is protecting itself) and that the
/// flood completes quickly (sheds are O(1)).
PhaseResult RunSaturationFlood(serve::RecommendServer* server,
                               const ZipfSampler& zipf, const Args& args,
                               size_t requests) {
  server->ResetStats();
  PhaseResult result;
  result.phase = "saturation_flood";
  result.requests = requests;
  Rng rng(args.seed + 29);
  const Stopwatch watch;
  std::vector<std::future<serve::Recommendation>> futures;
  futures.reserve(requests);
  for (size_t r = 0; r < requests; ++r) {
    futures.push_back(
        server->Submit({.user = zipf.Sample(&rng), .k = args.k}));
  }
  for (auto& f : futures) f.get();
  result.elapsed_s = watch.ElapsedSeconds();
  result.stats = server->Snapshot();
  return result;
}

std::string PhaseJson(const PhaseResult& r) {
  return StrFormat(
      "    {\"phase\": \"%s\", \"requests\": %zu, \"elapsed_s\": %.4f, "
      "\"users_per_sec\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"p999_us\": %.1f, \"shed_rate\": %.4f, \"degraded_rate\": %.4f, "
      "\"cache_hit_rate\": %.4f, \"deadline_miss\": %llu, "
      "\"queue_shed\": %llu, \"breaker_open\": %llu}",
      r.phase.c_str(), r.requests, r.elapsed_s,
      r.elapsed_s > 0 ? r.requests / r.elapsed_s : 0.0,
      r.stats.total_us.p50_us, r.stats.total_us.p99_us,
      r.stats.total_us.p999_us, r.shed_rate(), r.degraded_rate(),
      r.stats.cache_hit_rate(),
      static_cast<unsigned long long>(r.stats.deadline_miss),
      static_cast<unsigned long long>(r.stats.queue_shed),
      static_cast<unsigned long long>(r.stats.breaker_open));
}

int RunValidate(const std::string& path, bool gate, double floor) {
  std::string content;
  if (Status st = ReadFile(path, &content); !st.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  obs::ServingBenchGateInputs inputs;
  if (Status st = obs::ValidateServingBenchJson(content, &inputs);
      !st.ok()) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("%s: valid %s (%zu phases, build %s/%s)\n", path.c_str(),
              kServingBenchSchema, inputs.num_phases,
              inputs.build_type.c_str(), inputs.sanitizers.c_str());
  if (!gate) return 0;

  // The gate holds only Release unsanitized runs to the floor — the
  // stamp comes from the document, so a sanitized or Debug JSON can
  // never fail (or pass) the Release bar by accident. Unarmed failpoint
  // sites cost one relaxed atomic load each; the floor's headroom
  // absorbs that, so failpoint builds (the CI default) are still gated.
  if (inputs.build_type != "Release" || inputs.sanitizers != "none") {
    std::printf("gate skipped: build %s/%s is not a Release baseline\n",
                inputs.build_type.c_str(), inputs.sanitizers.c_str());
    return 0;
  }
  if (inputs.per_core_users_per_sec_at_slo < floor) {
    std::fprintf(stderr,
                 "gate FAILED: %.0f per-core users/sec at p99<=%.1fms SLO "
                 "is below the floor %.0f (capacity p99 %.0fus)\n",
                 inputs.per_core_users_per_sec_at_slo, inputs.slo_ms, floor,
                 inputs.capacity_p99_us);
    return 1;
  }
  std::printf("gate ok: %.0f per-core users/sec at SLO (floor %.0f)\n",
              inputs.per_core_users_per_sec_at_slo, floor);
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  std::string validate_path, gate_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(7);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      args.trace_out = arg.substr(12);
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      args.profile_out = arg.substr(14);
    } else if (arg.rfind("--alerts-out=", 0) == 0) {
      args.alerts_out = arg.substr(13);
    } else if (arg.rfind("--validate=", 0) == 0) {
      validate_path = arg.substr(11);
    } else if (arg.rfind("--gate=", 0) == 0) {
      gate_path = arg.substr(7);
    } else {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr,
                     "usage: %s [--smoke] [--json=PATH] [--trace-out=PATH] "
                     "[--profile-out=PATH] [--alerts-out=PATH] "
                     "[--validate=PATH] [--gate=PATH] [key=value]\n",
                     argv[0]);
        return 2;
      }
      const std::string key = arg.substr(0, eq);
      const double value = std::strtod(arg.c_str() + eq + 1, nullptr);
      if (key == "users") {
        args.users = static_cast<size_t>(value);
      } else if (key == "items") {
        args.items = static_cast<size_t>(value);
      } else if (key == "dim") {
        args.dim = static_cast<size_t>(value);
      } else if (key == "k") {
        args.k = static_cast<size_t>(value);
      } else if (key == "cache") {
        args.cache = static_cast<size_t>(value);
      } else if (key == "threads") {
        args.threads = static_cast<size_t>(value);
      } else if (key == "requests") {
        args.requests = static_cast<size_t>(value);
      } else if (key == "slo_ms") {
        args.slo_ms = value;
      } else if (key == "zipf") {
        args.zipf = value;
      } else if (key == "seed") {
        args.seed = static_cast<uint64_t>(value);
      } else if (key == "floor") {
        args.floor = value;
      } else {
        std::fprintf(stderr, "unknown key '%s'\n", key.c_str());
        return 2;
      }
    }
  }
  const double floor = args.floor > 0 ? args.floor : kDefaultPerCoreFloor;
  if (!validate_path.empty()) {
    return RunValidate(validate_path, /*gate=*/false, floor);
  }
  if (!gate_path.empty()) return RunValidate(gate_path, /*gate=*/true, floor);

  if (args.smoke) {
    args.requests = std::min<size_t>(args.requests, 6000);
  }
  const size_t threads = ResolveThreads(args);

  serve::ModelRegistry registry;
  registry.Publish(MakeModel(args));
  const ZipfSampler zipf(args.users, args.zipf);

  obs::MetricsRegistry metrics;
  serve::ServerConfig config;
  config.num_threads = threads;
  config.default_k = args.k;
  config.default_deadline_ms = -1;  // phases set deadlines per request
  config.cache.capacity = args.cache;
  config.metrics = &metrics;
  config.metrics_prefix = "replay";
  serve::RecommendServer server(&registry, config);

  if (!args.trace_out.empty()) obs::EnableTracing();

  // Attach the sampling profiler across every phase. NotSupported (the
  // sanitized builds compile the profiler out) downgrades to a note: the
  // bench still runs, the profile artifacts are simply absent.
  bool profiling = false;
  if (!args.profile_out.empty()) {
    obs::ProfilerOptions prof_options;
    // Library default (2 ms of CPU between samples): one signal per ~1k
    // requests at capacity, which keeps the profiler inside the §5k
    // overhead budget while a full replay still collects dozens of
    // scoring-frame samples.
    prof_options.interval_us = 2000;
    if (const Status st = obs::StartProfiler(prof_options); st.ok()) {
      profiling = true;
    } else {
      std::printf("profiler not attached: %s\n", st.ToString().c_str());
    }
  }

  // The watchdog rules gated below. The p99 burn threshold is the SLO on
  // the Release flavor and 100x that elsewhere — sanitizer slowdowns are
  // not latency regressions, but the alert plumbing must still prove out.
  const double burn_threshold_us =
      args.slo_ms * 1e3 * (ReleaseUnsanitizedBuild() ? 1.0 : 100.0);
  const std::string rules_text = StrFormat(
      "p99_slo_burn: p99:replay.total_us, 0.25, %.1f, above\n"
      "shed_spike: rate:replay_flood.rung_shed/replay_flood.requests, "
      "0.25, 0.25, above\n"
      "breaker_storm: delta:replay.breaker.scorer.open_transitions, "
      "0.25, 5, above\n",
      burn_threshold_us);
  std::vector<obs::WatchRule> rules;
  if (const Status st = obs::ParseWatchdogRules(rules_text, &rules);
      !st.ok()) {
    std::fprintf(stderr, "watchdog rules: %s\n", st.ToString().c_str());
    return 1;
  }
  obs::Watchdog::Options watch_options;
  watch_options.alerts_path = args.alerts_out;
  obs::Watchdog watchdog(&metrics, std::move(rules), watch_options);
  watchdog.SetContext("warmup");
  watchdog.Poll();  // prime every rule's window before traffic starts
  if (const Status st = watchdog.Start(0.25); !st.ok()) {
    std::fprintf(stderr, "watchdog: %s\n", st.ToString().c_str());
    return 1;
  }

  // Warm-up: touch every page and let the hot Zipf head fill the cache.
  {
    Rng rng(args.seed);
    for (size_t r = 0; r < std::min<size_t>(args.requests / 10, 2000); ++r) {
      server.Recommend({.user = zipf.Sample(&rng), .k = args.k});
    }
  }

  std::vector<PhaseResult> phases;
  watchdog.SetContext("capacity");
  phases.push_back(
      RunCapacity(&server, zipf, args, threads, args.requests));
  watchdog.ForceEvaluate();

  // The capacity phase's tail exemplar, captured before the next phase's
  // ResetStats clears the histogram: the trace id of the worst request in
  // the p99 bucket, resolved against the flushed trace below.
  const obs::Histogram::Exemplar tail_exemplar = obs::Histogram::ExemplarNear(
      metrics.GetHistogram("replay.total_us")->TakeSnapshot(), 0.99);

  watchdog.SetContext("diurnal_burst");
  phases.push_back(RunDiurnalBurst(&server, zipf, args, args.requests / 3));
  watchdog.ForceEvaluate();
  watchdog.SetContext("cold_flood");
  {
    serve::ServerConfig cold_config = config;
    cold_config.metrics_prefix = "replay_cold";
    serve::RecommendServer cold_server(&registry, cold_config);
    phases.push_back(RunColdFlood(&cold_server, args, args.requests / 3));
  }
  watchdog.ForceEvaluate();
  watchdog.SetContext("deadline_mix");
  phases.push_back(RunDeadlineMix(&server, zipf, args, args.requests / 3));
  watchdog.ForceEvaluate();

  // The flood gets its own server with a tight queue + admission depth
  // cap: the point is refusal behavior, not scoring throughput.
  serve::ServerConfig flood_config = config;
  flood_config.metrics_prefix = "replay_flood";
  flood_config.max_queue = 2 * threads;
  flood_config.admission.max_queue_depth = 2 * threads;
  flood_config.default_deadline_ms = args.slo_ms;
  watchdog.SetContext("saturation_flood");
  {
    serve::RecommendServer flood_server(&registry, flood_config);
    phases.push_back(
        RunSaturationFlood(&flood_server, zipf, args, args.requests));
    watchdog.ForceEvaluate();
    const serve::ServerStats flood = flood_server.Snapshot();
    std::printf("flood: %s\n", flood.Summary().c_str());
  }
  watchdog.Stop();

  int telemetry_rc = 0;

  // Alert gate, both directions: steady-state phases must be silent and
  // the overload phase must be loud.
  size_t quiet_phase_alerts = 0;
  size_t flood_shed_alerts = 0;
  for (const obs::AlertEvent& alert : watchdog.alerts()) {
    std::printf("alert: %s\n", obs::AlertJsonLine(alert).c_str());
    if (alert.context == "warmup" || alert.context == "capacity") {
      ++quiet_phase_alerts;
    }
    if (alert.rule == "shed_spike" && alert.context == "saturation_flood") {
      ++flood_shed_alerts;
    }
  }
  if (quiet_phase_alerts > 0) {
    std::fprintf(stderr,
                 "watchdog gate FAILED: %zu alert(s) during warmup/capacity "
                 "(want 0)\n",
                 quiet_phase_alerts);
    telemetry_rc = 1;
  }
  if (flood_shed_alerts == 0) {
    std::fprintf(stderr, "watchdog gate FAILED: saturation_flood did not "
                         "trip shed_spike\n");
    telemetry_rc = 1;
  }
  if (telemetry_rc == 0) {
    std::printf("watchdog gate ok: capacity alert-free, shed_spike fired "
                "%zu time(s) under flood\n",
                flood_shed_alerts);
  }

  if (profiling) {
    if (const Status st = obs::StopProfiler(); !st.ok()) {
      std::fprintf(stderr, "profiler stop: %s\n", st.ToString().c_str());
    }
    const obs::ProfileReport report = obs::CollectProfile();
    if (const Status st =
            WriteFileAtomic(args.profile_out, obs::CollapsedStacks(report));
        !st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", args.profile_out.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    if (const Status st = WriteFileAtomic(args.profile_out + ".json",
                                          obs::ProfileJson(report));
        !st.ok()) {
      std::fprintf(stderr, "cannot write %s.json: %s\n",
                   args.profile_out.c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("profile: %llu samples (%llu dropped), %zu distinct stacks "
                "-> %s\n",
                static_cast<unsigned long long>(report.samples),
                static_cast<unsigned long long>(report.dropped),
                report.stacks.size(), args.profile_out.c_str());
    // Self-check: the serving hot path is the scoring sweep, so the top
    // stacks of a saturating run must contain a scoring frame.
    bool scoring_frame = false;
    const size_t top = std::min<size_t>(report.stacks.size(), 10);
    for (size_t s = 0; s < top && !scoring_frame; ++s) {
      for (const std::string& frame : report.stacks[s].frames) {
        if (frame.find("Score") != std::string::npos ||
            frame.find("TopK") != std::string::npos ||
            frame.find("RowDot") != std::string::npos ||
            frame.find("Sweep") != std::string::npos ||
            frame.find("Recommend") != std::string::npos ||
            frame.find("kernel") != std::string::npos) {
          scoring_frame = true;
          break;
        }
      }
    }
    if (report.samples == 0 || !scoring_frame) {
      std::fprintf(stderr, "profile gate FAILED: %s\n",
                   report.samples == 0
                       ? "no samples collected"
                       : "no scoring frame in the top stacks");
      telemetry_rc = 1;
    }
  }

  if (tail_exemplar.valid()) {
    std::printf("capacity p99 exemplar: trace %s, %.1fus\n",
                obs::FormatTraceId(tail_exemplar.trace_id).c_str(),
                tail_exemplar.value());
  }
  if (!args.trace_out.empty()) {
    if (const Status st = obs::WriteTraceJson(args.trace_out); !st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", args.trace_out.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    // Close the exemplar loop: the p99 exemplar's trace id must resolve
    // to span events in the flushed trace. Strict only under --smoke,
    // where the per-thread rings cannot have wrapped past the capacity
    // phase; a full run may legitimately evict those spans.
    std::string trace_content;
    size_t num_events = 0;
    std::set<std::string> span_names;
    std::map<std::string, size_t> id_events;
    Status st = ReadFile(args.trace_out, &trace_content);
    if (st.ok()) {
      st = obs::ValidateTraceJson(trace_content, &num_events, &span_names,
                                  &id_events);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "trace %s: %s\n", args.trace_out.c_str(),
                   st.ToString().c_str());
      telemetry_rc = 1;
    } else {
      const auto it =
          tail_exemplar.valid()
              ? id_events.find(obs::FormatTraceId(tail_exemplar.trace_id))
              : id_events.end();
      if (it != id_events.end()) {
        std::printf("exemplar gate ok: trace %s resolves to %zu span "
                    "event(s) in %s\n",
                    it->first.c_str(), it->second, args.trace_out.c_str());
      } else if (args.smoke) {
        std::fprintf(stderr, "exemplar gate FAILED: capacity p99 exemplar "
                             "not found in the flushed trace\n");
        telemetry_rc = 1;
      } else {
        std::printf("exemplar note: p99 exemplar spans evicted from the "
                    "ring (full-length run)\n");
      }
    }
  }

  const PhaseResult& capacity = phases[0];
  const bool slo_ok =
      capacity.stats.total_us.p99_us <= args.slo_ms * 1e3;
  const double per_core =
      capacity.elapsed_s > 0
          ? capacity.requests / capacity.elapsed_s / threads
          : 0.0;
  const double per_core_at_slo = slo_ok ? per_core : 0.0;
  const uint64_t breaker_transitions =
      server.scorer_breaker().open_transitions() +
      server.cache_breaker().open_transitions();

  for (const PhaseResult& phase : phases) {
    std::printf("%-16s %6zu req in %6.3fs  p50=%7.1fus p99=%7.1fus "
                "p999=%7.1fus shed=%4.1f%% degraded=%4.1f%% hit=%4.1f%%\n",
                phase.phase.c_str(), phase.requests, phase.elapsed_s,
                phase.stats.total_us.p50_us, phase.stats.total_us.p99_us,
                phase.stats.total_us.p999_us, 100.0 * phase.shed_rate(),
                100.0 * phase.degraded_rate(),
                100.0 * phase.stats.cache_hit_rate());
  }
  std::printf("capacity: %.0f users/sec/core (%zu threads), p99 %s the "
              "%.1fms SLO\n",
              per_core, threads, slo_ok ? "meets" : "MISSES", args.slo_ms);

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"" + std::string(kServingBenchSchema) + "\",\n";
  json += "  \"build\": " + bench::BuildFlavorJson() + ",\n";
  json += StrFormat(
      "  \"config\": {\"users\": %zu, \"items\": %zu, \"dim\": %zu, "
      "\"k\": %zu, \"cache\": %zu, \"threads\": %zu, \"requests\": %zu, "
      "\"slo_ms\": %.2f, \"zipf\": %.2f, \"seed\": %llu},\n",
      args.users, args.items, args.dim, args.k, args.cache, threads,
      args.requests, args.slo_ms, args.zipf,
      static_cast<unsigned long long>(args.seed));
  json += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    json += PhaseJson(phases[i]);
    json += i + 1 < phases.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"summary\": {\"per_core_users_per_sec_at_slo\": %.1f, "
      "\"slo_ok\": %s, \"capacity_p99_us\": %.1f, "
      "\"saturation_shed_rate\": %.4f, \"breaker_open_transitions\": %llu, "
      "\"capacity_cache_hit_rate\": %.4f}\n",
      per_core_at_slo, slo_ok ? "true" : "false",
      capacity.stats.total_us.p99_us, phases.back().shed_rate(),
      static_cast<unsigned long long>(breaker_transitions),
      capacity.stats.cache_hit_rate());
  json += "}\n";

  if (Status st = WriteFileAtomic(args.json_path, json); !st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", args.json_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("[json written to %s]\n", args.json_path.c_str());
  return telemetry_rc;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Main(argc, argv); }
