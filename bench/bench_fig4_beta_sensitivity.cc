// Regenerates paper Figure 4: sensitivity of DT to the disentangling
// weight β on the Yahoo- and KuaiRec-shaped datasets.
//   (a)/(b): AUC and NDCG@K as β sweeps over {0, 1e-6 .. 1e-1} — the
//            paper's inverted-U with the optimum at moderate β.
//   (c)/(d): the disentangling-loss scale per training epoch for several
//            β — larger β converges faster/lower.

#include <iostream>

#include "bench_common.h"
#include "core/dt_ips.h"
#include "experiments/evaluator.h"
#include "synth/kuairec_like.h"
#include "synth/yahoo_like.h"

namespace dtrec {
namespace {

RatingDataset MakeDataset(DatasetKind kind, double scale, uint64_t seed) {
  if (kind == DatasetKind::kYahoo) return MakeYahooLike(seed, scale).dataset;
  return MakeKuaiRecLike(seed, scale).dataset;
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);

  const std::vector<double> betas = {0.0,  1e-6, 1e-5, 1e-4,
                                     1e-3, 1e-2, 1e-1};

  for (DatasetKind kind : {DatasetKind::kYahoo, DatasetKind::kKuaiRec}) {
    DatasetProfile profile = DefaultProfile(kind);
    size_t seeds_unused = 1;
    bench::ApplyArgs(args, &profile, &seeds_unused);
    const RatingDataset dataset =
        MakeDataset(kind, profile.dataset_scale, 401);

    // (a)/(b): prediction quality vs beta.
    TableWriter sweep(StrFormat(
        "Figure 4a/4b (%s): DT-IPS prediction quality vs beta",
        DatasetKindName(kind)));
    sweep.SetHeader({"beta", "AUC", StrFormat("N@%zu", profile.ranking_k)});
    for (double beta : betas) {
      TrainConfig tc = TuneForMethod("DT-IPS", profile.train);
      tc.beta = beta;
      tc.seed = 55;
      DtIpsTrainer trainer(tc);
      DTREC_CHECK(trainer.Fit(dataset).ok());
      const RankingMetrics metrics =
          EvaluateRanking(trainer, dataset, profile.ranking_k);
      sweep.AddRow({StrFormat("%.0e", beta), FormatDouble(metrics.auc, 4),
                    FormatDouble(metrics.ndcg_at_k, 4)});
    }
    bench::Emit(sweep, StrFormat("fig4ab_beta_%s.csv",
                                 DatasetKindName(kind)));

    // (c)/(d): disentangling-loss scale per epoch for three betas.
    TableWriter curves(StrFormat(
        "Figure 4c/4d (%s): disentangling-loss scale per epoch",
        DatasetKindName(kind)));
    std::vector<std::string> header{"epoch"};
    const std::vector<double> curve_betas = {1e-5, 1e-3, 1e-1};
    for (double beta : curve_betas) {
      header.push_back(StrFormat("beta=%.0e", beta));
    }
    curves.SetHeader(header);

    std::vector<std::vector<double>> histories;
    for (double beta : curve_betas) {
      TrainConfig tc = TuneForMethod("DT-IPS", profile.train);
      tc.beta = beta;
      tc.seed = 55;
      DtIpsTrainer trainer(tc);
      DTREC_CHECK(trainer.Fit(dataset).ok());
      histories.push_back(trainer.normalized_disentangle_history());
    }
    for (size_t epoch = 0; epoch < histories[0].size(); ++epoch) {
      std::vector<std::string> row{StrFormat("%zu", epoch + 1)};
      for (const auto& history : histories) {
        row.push_back(FormatDouble(history[epoch], 6));
      }
      curves.AddRow(row);
    }
    bench::Emit(curves, StrFormat("fig4cd_disentangle_%s.csv",
                                  DatasetKindName(kind)));
  }

  std::cout << "Expected shape (paper Fig. 4): quality peaks at moderate "
               "beta (1e-5..1e-4) and degrades at the extremes; the "
               "disentangle-loss curves fall with epochs, faster for "
               "larger beta.\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
