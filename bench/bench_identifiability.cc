// Regenerates the paper's identifiability analysis (Example 1, Lemma 3,
// Theorem 1) numerically:
//   1. Example 1: two distinct (propensity, outcome) models produce the
//      same observed-data density at every rating value.
//   2. Theorem 1: under the separable-logistic mechanism, fitting the
//      observed-data likelihood WITH the auxiliary variable recovers the
//      generating parameters, while WITHOUT it two starting points land
//      on (near-)equal likelihood with very different rating effects.

#include <iostream>

#include "bench_common.h"
#include "core/identifiability.h"
#include "util/random.h"

namespace dtrec {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  size_t n = 40000;
  for (const auto& [key, value] : args.raw) {
    if (key == "n") n = std::strtoul(value.c_str(), nullptr, 10);
  }

  // ---- Example 1 ----------------------------------------------------
  TableWriter example1("Example 1: two models, one observed density");
  example1.SetHeader({"r", "P1(o=1|r)", "P2(o=1|r)", "P1(o=1,r|x)",
                      "P2(o=1,r|x)"});
  for (double r : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    example1.AddRow(
        {FormatDouble(r, 1),
         FormatDouble(Example1Propensity(Example1ModelA(), r), 5),
         FormatDouble(Example1Propensity(Example1ModelB(), r), 5),
         FormatDouble(Example1ObservedDensity(Example1ModelA(), r), 6),
         FormatDouble(Example1ObservedDensity(Example1ModelB(), r), 6)});
  }
  bench::Emit(example1, "identifiability_example1.csv");
  std::cout << "Columns 2-3 differ everywhere, columns 4-5 agree "
               "everywhere: the MNAR propensity is NOT identified by the "
               "observed data.\n\n";

  // ---- Theorem 1 ----------------------------------------------------
  SeparableLogisticParams truth;
  truth.alpha0 = -1.0;
  truth.alpha1 = 1.5;
  truth.beta1 = 1.2;
  truth.eta = 0.4;
  Rng rng(17);
  const auto samples = SimulateSeparableLogistic(truth, n, &rng);

  SeparableLogisticParams init_a;  // optimistic start
  init_a.alpha0 = -1.0;
  init_a.alpha1 = 0.5;
  init_a.beta1 = 2.0;
  init_a.eta = 0.3;
  SeparableLogisticParams init_b;  // adversarial start (flipped effect)
  init_b.alpha0 = 0.0;
  init_b.alpha1 = 0.5;
  init_b.beta1 = -2.0;
  init_b.eta = 0.7;

  TableWriter fits(StrFormat(
      "Theorem 1: observed-likelihood fits, n=%zu, truth: a0=-1.0 a1=1.5 "
      "b1=1.2 eta=0.40",
      n));
  fits.SetHeader({"Model", "Init", "alpha0", "alpha1", "beta1", "eta",
                  "NLL"});
  for (bool use_aux : {true, false}) {
    int init_index = 0;
    for (const auto& init : {init_a, init_b}) {
      const auto fit =
          FitSeparableLogistic(samples, use_aux, init, 20000, 0.8);
      DTREC_CHECK(fit.ok());
      const auto& p = fit.value();
      fits.AddRow({use_aux ? "with z (identified)" : "without z",
                   init_index == 0 ? "A" : "B", FormatDouble(p.alpha0, 3),
                   FormatDouble(p.alpha1, 3), FormatDouble(p.beta1, 3),
                   FormatDouble(p.eta, 3),
                   FormatDouble(ObservedDataNll(p, samples, use_aux), 5)});
      ++init_index;
    }
  }
  bench::Emit(fits, "identifiability_theorem1.csv");
  std::cout << "Expected shape: the two 'with z' rows agree with each "
               "other and with the truth; the two 'without z' rows have "
               "(near-)equal NLL yet disagree on beta1/eta — Example 1's "
               "ambiguity realized.\n";
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
