// Regenerates paper Table II: relative embedding / hidden-layer parameter
// sizes and training-loss inventory of each method family, with ESMM as
// the 1× reference — computed by instantiating the real trainers at a
// fixed dataset shape and counting their parameters.

#include <iostream>

#include "baselines/registry.h"
#include "bench_common.h"
#include "models/param_count.h"
#include "synth/coat_like.h"

namespace dtrec {
namespace {

int Run(int argc, char** argv) {
  (void)bench::ParseArgs(argc, argv);

  TrainConfig config;
  config.epochs = 1;  // a single throwaway epoch to materialize the models
  config.max_steps_per_epoch = 1;
  config.batch_size = 64;
  config.embedding_dim = 8;
  const SimulatedData world = MakeCoatLike(1);

  // Methods in the paper's Table II, ESMM first as reference.
  const std::vector<std::string> methods = {
      "ESMM",      "IPS",      "Multi-IPS", "ESCM2-IPS", "DT-IPS",
      "DR-JL",     "Multi-DR", "ESCM2-DR",  "DT-DR"};

  ParamBudget reference;
  TableWriter table(
      "Table II: parameter sizes (relative to ESMM) and training losses");
  table.SetHeader({"Method", "Embedding", "Hidden layer", "Propensity loss",
                   "CTCVR loss", "Disentangle loss", "Total params"});

  for (const std::string& name : methods) {
    auto trainer = std::move(
        MakeTrainer(name, TuneForMethod(name, config)).value());
    const Status st = trainer->Fit(world.dataset);
    DTREC_CHECK(st.ok()) << name << ": " << st.ToString();
    const ParamBudget budget = trainer->Budget();
    if (name == "ESMM") reference = budget;
    const LossInventory losses = trainer->Losses();
    table.AddRow({name,
                  RelativeSize(budget.embedding_params,
                               reference.embedding_params),
                  RelativeSize(budget.hidden_params + budget.other_params,
                               reference.hidden_params +
                                   reference.other_params),
                  losses.propensity_loss ? "yes" : "no",
                  losses.ctcvr_loss ? "yes" : "no",
                  losses.disentangle_loss ? "yes" : "no",
                  StrFormat("%zu", budget.total())});
  }

  bench::Emit(table, "table2_params.csv");
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Run(argc, argv); }
