#include <gtest/gtest.h>

#include <cmath>

#include "synth/coat_like.h"
#include "synth/kuairec_like.h"
#include "synth/mnar_generator.h"
#include "synth/movielens_like.h"
#include "synth/yahoo_like.h"
#include "util/random.h"

namespace dtrec {
namespace {

TEST(StarProbabilityTest, SumsToOne) {
  for (double score : {0.5, 2.0, 3.0, 4.5, 7.0}) {
    double total = 0.0;
    for (int k = 1; k <= 5; ++k) total += StarProbability(score, k, 0.8);
    EXPECT_NEAR(total, 1.0, 1e-12) << "score " << score;
  }
}

TEST(StarProbabilityTest, PeaksAtNearestStar) {
  // Score 2.0 should put the most mass on star 2.
  double best = 0.0;
  int best_star = 0;
  for (int k = 1; k <= 5; ++k) {
    const double p = StarProbability(2.0, k, 0.5);
    if (p > best) {
      best = p;
      best_star = k;
    }
  }
  EXPECT_EQ(best_star, 2);
}

TEST(MnarGeneratorTest, ConfigValidation) {
  MnarGeneratorConfig config;
  config.num_users = 0;
  EXPECT_FALSE(MnarGenerator(config).ValidateConfig().ok());
  config = MnarGeneratorConfig();
  config.rating_noise = 0.0;
  EXPECT_FALSE(MnarGenerator(config).ValidateConfig().ok());
  config = MnarGeneratorConfig();
  config.test_per_user = config.num_items + 1;
  EXPECT_FALSE(MnarGenerator(config).ValidateConfig().ok());
  EXPECT_TRUE(MnarGenerator(MnarGeneratorConfig()).ValidateConfig().ok());
}

TEST(MnarGeneratorTest, DeterministicGivenSeed) {
  MnarGeneratorConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.seed = 99;
  const SimulatedData a = MnarGenerator(config).Generate();
  const SimulatedData b = MnarGenerator(config).Generate();
  EXPECT_EQ(a.dataset.train().size(), b.dataset.train().size());
  EXPECT_TRUE(a.oracle.label == b.oracle.label);
}

TEST(MnarGeneratorTest, McarPropensityIsConstant) {
  MnarGeneratorConfig config;
  config.num_users = 30;
  config.num_items = 30;
  config.mechanism = MissingMechanism::kMcar;
  const SimulatedData data = MnarGenerator(config).Generate();
  const Matrix& p = data.oracle.mnar_propensity;
  EXPECT_NEAR(p.Min(), p.Max(), 1e-12);
  EXPECT_NEAR(p.Mean(), data.oracle.mcar_propensity, 1e-12);
}

TEST(MnarGeneratorTest, MarPropensityIgnoresRealizedRating) {
  MnarGeneratorConfig config;
  config.num_users = 30;
  config.num_items = 30;
  config.mechanism = MissingMechanism::kMar;
  const SimulatedData data = MnarGenerator(config).Generate();
  // Under MAR the "MNAR" propensity equals the MAR propensity everywhere.
  EXPECT_TRUE(data.oracle.mnar_propensity.AllClose(
      data.oracle.mar_propensity, 1e-12, 0.0));
}

TEST(MnarGeneratorTest, MnarPropensityDependsOnRating) {
  MnarGeneratorConfig config;
  config.num_users = 40;
  config.num_items = 40;
  config.mechanism = MissingMechanism::kMnar;
  config.rating_coef = 1.2;
  const SimulatedData data = MnarGenerator(config).Generate();
  // Cells with higher realized ratings must have (weakly) higher MNAR
  // propensities than the MAR average when the rating is above 3, lower
  // when below — check the aggregate correlation is positive.
  double cov = 0.0;
  const Matrix& rating = data.oracle.star_rating;
  const Matrix diff = [&] {
    Matrix d(rating.rows(), rating.cols());
    for (size_t i = 0; i < d.size(); ++i) {
      d.at_flat(i) = data.oracle.mnar_propensity.at_flat(i) -
                     data.oracle.mar_propensity.at_flat(i);
    }
    return d;
  }();
  for (size_t i = 0; i < rating.size(); ++i) {
    cov += (rating.at_flat(i) - 3.0) * diff.at_flat(i);
  }
  EXPECT_GT(cov, 0.0);
}

TEST(MnarGeneratorTest, MarPropensityIsRatingMarginalOfMnar) {
  // By construction p_MAR(x) = Σ_k P(star=k|x)·σ(base + coef·(k−3)).
  // Verify on a handful of cells by recomputing the marginal directly.
  MnarGeneratorConfig config;
  config.num_users = 10;
  config.num_items = 10;
  config.test_per_user = 5;
  config.mechanism = MissingMechanism::kMnar;
  const SimulatedData data = MnarGenerator(config).Generate();
  Rng rng(5);
  // Empirically: average of realized MNAR propensities over rating draws
  // approximates the MAR propensity. Use the analytic star distribution.
  for (size_t u = 0; u < 3; ++u) {
    for (size_t i = 0; i < 3; ++i) {
      const double s = data.oracle.star_score(u, i);
      double manual = 0.0;
      for (int k = 1; k <= 5; ++k) {
        // Reconstruct the selection logit for star k.
        const double base =
            config.base_logit +
            config.feature_coef * (s - config.rating_mean) +
            config.aux_coef * data.oracle.aux_score(u, i);
        manual += StarProbability(s, k, config.rating_noise) /
                  (1.0 + std::exp(-(base + config.rating_coef * (k - 3))));
      }
      EXPECT_NEAR(manual, data.oracle.mar_propensity(u, i), 1e-9);
    }
  }
}

TEST(MnarGeneratorTest, ObservedCountMatchesPropensityMass) {
  MnarGeneratorConfig config;
  config.num_users = 80;
  config.num_items = 80;
  const SimulatedData data = MnarGenerator(config).Generate();
  const double expected = data.oracle.mnar_propensity.Sum();
  const double actual = static_cast<double>(data.dataset.train().size());
  // Divides by the summed oracle propensity mass (≈ thousands of cells),
  // not by a per-example propensity; no clipping applies.
  // dtrec-analyze: allow(propensity-taint)
  EXPECT_NEAR(actual / expected, 1.0, 0.15);
}

TEST(MnarGeneratorTest, TestSplitIsPerUserMcar) {
  MnarGeneratorConfig config;
  config.num_users = 25;
  config.num_items = 40;
  config.test_per_user = 6;
  const SimulatedData data = MnarGenerator(config).Generate();
  EXPECT_EQ(data.dataset.test().size(), 25u * 6u);
  EXPECT_TRUE(data.dataset.Validate().ok());
}

TEST(SampleObservationMaskTest, MatchesPropensities) {
  Matrix p(50, 50, 0.3);
  Rng rng(77);
  const Matrix mask = SampleObservationMask(p, &rng);
  EXPECT_NEAR(mask.Mean(), 0.3, 0.03);
  for (size_t i = 0; i < mask.size(); ++i) {
    EXPECT_TRUE(mask.at_flat(i) == 0.0 || mask.at_flat(i) == 1.0);
  }
}

// -------------------------------------------------------------- MovieLens

TEST(StandardizeToEtaTest, Formula) {
  EXPECT_DOUBLE_EQ(StandardizeToEta(5.0, 0.0, 5.0, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(StandardizeToEta(0.0, 0.0, 5.0, 0.2), 0.2);
  EXPECT_DOUBLE_EQ(StandardizeToEta(2.5, 0.0, 5.0, 0.0), 0.5);
}

TEST(MovieLensLikeTest, ConfigValidation) {
  SemiSyntheticConfig config;
  config.epsilon = 1.5;
  EXPECT_FALSE(MovieLensLikeGenerator(config).ValidateConfig().ok());
  config = SemiSyntheticConfig();
  config.rho = 0.0;
  EXPECT_FALSE(MovieLensLikeGenerator(config).ValidateConfig().ok());
  EXPECT_TRUE(
      MovieLensLikeGenerator(SemiSyntheticConfig()).ValidateConfig().ok());
}

SemiSyntheticConfig TinyMlConfig() {
  SemiSyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.epsilon = 0.3;
  config.rho = 1.0;
  config.seed = 5;
  return config;
}

TEST(MovieLensLikeTest, EtaRangeAndPropensityFormula) {
  const SemiSyntheticData data =
      MovieLensLikeGenerator(TinyMlConfig()).Generate();
  EXPECT_GE(data.eta.Min(), 0.3 - 1e-12);
  EXPECT_LE(data.eta.Max(), 1.0 + 1e-12);
  for (size_t i = 0; i < data.eta.size(); i += 37) {
    const double expected = std::pow(std::exp2(data.eta.at_flat(i)) - 1.0,
                                     1.0);
    EXPECT_NEAR(data.propensity.at_flat(i), expected, 1e-12);
  }
}

TEST(MovieLensLikeTest, HigherRhoMeansSparser) {
  SemiSyntheticConfig config = TinyMlConfig();
  config.rho = 0.5;
  const auto dense = MovieLensLikeGenerator(config).Generate();
  config.rho = 1.5;
  const auto sparse = MovieLensLikeGenerator(config).Generate();
  EXPECT_GT(dense.dataset.train().size(), sparse.dataset.train().size());
}

TEST(MovieLensLikeTest, TrainSetMatchesObservationMask) {
  const SemiSyntheticData data =
      MovieLensLikeGenerator(TinyMlConfig()).Generate();
  EXPECT_NEAR(static_cast<double>(data.dataset.train().size()),
              data.observation.Sum(), 0.5);
  for (const auto& t : data.dataset.train()) {
    EXPECT_DOUBLE_EQ(data.observation(t.user, t.item), 1.0);
    EXPECT_DOUBLE_EQ(data.conversion(t.user, t.item), t.rating);
  }
}

TEST(MovieLensLikeTest, TeacherModeRuns) {
  SemiSyntheticConfig config = TinyMlConfig();
  config.fit_teacher = true;
  config.teacher_observed = 2000;
  config.teacher_epochs = 3;
  const SemiSyntheticData data =
      MovieLensLikeGenerator(config).Generate();
  EXPECT_TRUE(data.dataset.Validate().ok());
  EXPECT_GE(data.eta.Min(), config.epsilon - 1e-12);
}

// ----------------------------------------------------------- preset shapes

TEST(CoatLikeTest, ShapeAndProtocol) {
  const SimulatedData data = MakeCoatLike(3);
  EXPECT_EQ(data.dataset.num_users(), 290u);
  EXPECT_EQ(data.dataset.num_items(), 300u);
  EXPECT_EQ(data.dataset.test().size(), 290u * 16u);
  // ~24 MNAR ratings per user (generous tolerance: world is random).
  const double per_user = static_cast<double>(data.dataset.train().size()) /
                          290.0;
  EXPECT_GT(per_user, 12.0);
  EXPECT_LT(per_user, 48.0);
  // Labels are binary.
  for (const auto& t : data.dataset.train()) {
    EXPECT_TRUE(t.rating == 0.0 || t.rating == 1.0);
  }
}

TEST(YahooLikeTest, ScaleControlsUsers) {
  const auto config_small = YahooLikeConfig(1, 0.05);
  const auto config_large = YahooLikeConfig(1, 0.2);
  EXPECT_EQ(config_small.num_items, 1000u);
  EXPECT_GT(config_large.num_users, config_small.num_users);
}

TEST(KuaiRecLikeTest, ConfigValidationAndShape) {
  KuaiRecLikeConfig bad;
  bad.scale = 0.0;
  EXPECT_FALSE(ValidateKuaiRecConfig(bad).ok());
  bad = KuaiRecLikeConfig();
  bad.test_user_fraction = 0.0;
  EXPECT_FALSE(ValidateKuaiRecConfig(bad).ok());

  KuaiRecLikeConfig config;
  config.scale = 0.02;
  config.seed = 9;
  config.keep_oracle = true;
  const KuaiRecLikeData data = MakeKuaiRecLike(config);
  EXPECT_TRUE(data.dataset.Validate().ok());
  EXPECT_GT(data.dataset.TrainDensity(), 0.03);
  EXPECT_LT(data.dataset.TrainDensity(), 0.6);
  // Dense fully-observed test block.
  const size_t test_users = static_cast<size_t>(
      config.test_user_fraction *
      static_cast<double>(data.dataset.num_users()));
  const size_t test_items = static_cast<size_t>(
      config.test_item_fraction *
      static_cast<double>(data.dataset.num_items()));
  EXPECT_EQ(data.dataset.test().size(), test_users * test_items);
  // Binarization at watch ratio 1.0.
  for (size_t i = 0; i < 100; ++i) {
    const auto& t = data.dataset.test()[i];
    const double expected =
        data.watch_ratio(t.user, t.item) >= 1.0 ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(t.rating, expected);
  }
}

}  // namespace
}  // namespace dtrec
