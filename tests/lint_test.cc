#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace dtrec::lint {
namespace {

std::vector<std::string> RulesIn(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  const std::vector<std::string> rules = RulesIn(findings);
  return static_cast<size_t>(std::count(rules.begin(), rules.end(), rule));
}

// ------------------------------------------------------- classification

TEST(LintClassifyTest, HeadersGetCanonicalGuardName) {
  const FileKind k = ClassifyPath("src/util/math_util.h");
  EXPECT_TRUE(k.is_header);
  EXPECT_FALSE(k.is_test);
  EXPECT_EQ(k.expected_guard, "DTREC_UTIL_MATH_UTIL_H_");
  // Outside src/ the full path is kept.
  EXPECT_EQ(ClassifyPath("tools/lint/lint.h").expected_guard,
            "DTREC_TOOLS_LINT_LINT_H_");
}

TEST(LintClassifyTest, TestFilesRecognizedByDirAndStem) {
  EXPECT_TRUE(ClassifyPath("tests/util_test.cc").is_test);
  EXPECT_TRUE(ClassifyPath("src/foo/bar_test.cc").is_test);
  EXPECT_FALSE(ClassifyPath("src/foo/bar.cc").is_test);
}

// ------------------------------------------------ fixture with violations

// One small fixture exercising every rule; the expected findings are
// asserted individually below.
const char kFixture[] = R"FIX(
double Bad(double x, double p_hat, double inv_prop) {
  double a = x / p_hat;
  a /= propensity_score(x);
  a += x / inv_prop;
  int r = rand();
  double* leak = new double[4];
  float f = 1.5f;
  return a + r + *leak + f;
}
)FIX";

TEST(LintRulesTest, FixtureTriggersEveryExpectedRule) {
  const auto findings = LintContent("src/foo/fixture.cc", kFixture);
  EXPECT_EQ(CountRule(findings, "propensity-division"), 3u);
  EXPECT_EQ(CountRule(findings, "banned-rand"), 1u);
  EXPECT_EQ(CountRule(findings, "naked-new"), 1u);
  EXPECT_EQ(CountRule(findings, "float-literal"), 1u);
  // Findings carry the path and a 1-based line.
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/foo/fixture.cc");
    EXPECT_GT(f.line, 0u);
    EXPECT_FALSE(f.message.empty());
  }
}

TEST(LintRulesTest, TestFilesMayUseNakedNew) {
  const auto findings = LintContent("tests/fixture_test.cc", kFixture);
  EXPECT_EQ(CountRule(findings, "naked-new"), 0u);
  // The numeric rules still apply in tests.
  EXPECT_EQ(CountRule(findings, "propensity-division"), 3u);
  EXPECT_EQ(CountRule(findings, "banned-rand"), 1u);
}

TEST(LintRulesTest, BlessedHelpersPass) {
  const char* kClean = R"FIX(
double Good(double x, double p_hat) {
  double a = x / ClipPropensity(p_hat, 1e-6);
  double b = x * SafeInverse(p_hat);
  double c = x / SoftClip(p_hat);
  return a + b + c;
}
)FIX";
  const auto findings = LintContent("src/foo/clean.cc", kClean);
  EXPECT_EQ(CountRule(findings, "propensity-division"), 0u);
}

TEST(LintRulesTest, CommentsAndStringsAreNotCode) {
  const char* kDisguised = R"FIX(
// double a = x / p_hat; rand(); new int;
/* a /= propensity; 1.0f */
const char* s = "x / p_hat rand() 1.5f";
const char* r = R"(y / propensity new)";
)FIX";
  const auto findings = LintContent("src/foo/disguised.cc", kDisguised);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(LintRulesTest, IncludeLinesDoNotFeedIdentifierRules) {
  const char* kIncludes = R"FIX(
#include "propensity/propensity.h"
#include <random>
)FIX";
  const auto findings = LintContent("src/foo/inc.cc", kIncludes);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(LintRulesTest, RawOfstreamFlaggedOutsideAtomicFile) {
  const char* kWriter = R"FIX(
void Dump(const std::string& path) {
  std::ofstream out(path);
  out << "hello";
}
)FIX";
  // Flagged in ordinary non-test code...
  EXPECT_EQ(CountRule(LintContent("src/foo/dump.cc", kWriter),
                      "raw-ofstream-write"),
            1u);
  // ...exempt inside the crash-atomic writer itself and in tests...
  EXPECT_EQ(CountRule(LintContent("src/util/atomic_file.cc", kWriter),
                      "raw-ofstream-write"),
            0u);
  EXPECT_EQ(CountRule(LintContent("tests/dump_test.cc", kWriter),
                      "raw-ofstream-write"),
            0u);
  // ...and silenced by the usual allow-comment.
  const char* kAllowed = R"FIX(
void Dump(const std::string& path) {
  std::ofstream out(path);  // dtrec-lint: allow(raw-ofstream-write)
}
)FIX";
  EXPECT_EQ(CountRule(LintContent("src/foo/dump.cc", kAllowed),
                      "raw-ofstream-write"),
            0u);
}

TEST(LintRulesTest, RawStderrFlaggedOnlyInLibraryCode) {
  const char* kLogger = R"FIX(
void Warn(const char* msg) {
  std::cerr << msg;
  std::fprintf(stderr, "%s\n", msg);
}
)FIX";
  // Library code must route through DTREC_LOG: one finding per raw use.
  EXPECT_EQ(CountRule(LintContent("src/foo/warn.cc", kLogger),
                      "raw-stderr-logging"),
            2u);
  // The logging backend itself is the blessed stderr writer...
  EXPECT_EQ(CountRule(LintContent("src/util/logging.cc", kLogger),
                      "raw-stderr-logging"),
            0u);
  // ...CLI mains under tools/ talk to their user directly...
  EXPECT_EQ(CountRule(LintContent("tools/dtrec_cli.cc", kLogger),
                      "raw-stderr-logging"),
            0u);
  // ...and tests are out of scope too.
  EXPECT_EQ(CountRule(LintContent("tests/warn_test.cc", kLogger),
                      "raw-stderr-logging"),
            0u);
  // `cerr` inside comments or strings is not code.
  const char* kInert = R"FIX(
// std::cerr is banned here; see lint.h
const char* kHelp = "errors go to stderr";
)FIX";
  EXPECT_EQ(CountRule(LintContent("src/foo/help.cc", kInert),
                      "raw-stderr-logging"),
            0u);
  // The usual allow-comment escape hatch works.
  const char* kAllowed = R"FIX(
void Warn(const char* msg) {
  std::cerr << msg;  // dtrec-lint: allow(raw-stderr-logging)
}
)FIX";
  EXPECT_EQ(CountRule(LintContent("src/foo/warn.cc", kAllowed),
                      "raw-stderr-logging"),
            0u);
}

// ------------------------------------------------- signal-safe regions

TEST(LintSignalSafeTest, BannedIdentifiersFlaggedInsideTheRegionOnly) {
  const char* kHandler = R"FIX(
void PrimeOutside() {
  std::printf("allocating and printing out here is fine\n");
}
void Handler(int sig) {
  // dtrec-signal-safe-region-begin
  const int saved_errno = errno;
  std::printf("sampling\n");
  g_ring[g_cursor].store(1, std::memory_order_relaxed);
  errno = saved_errno;
  // dtrec-signal-safe-region-end
}
void FlushAfter() {
  std::string symbolized = Demangle();
}
)FIX";
  const auto findings = LintContent("src/obs/handler.cc", kHandler);
  ASSERT_EQ(CountRule(findings, "signal-unsafe-in-handler"), 1u)
      << FindingsToJson(findings);
  for (const Finding& f : findings) {
    if (f.rule != "signal-unsafe-in-handler") continue;
    EXPECT_EQ(f.line, 8u);  // the printf inside the region
    EXPECT_NE(f.message.find("printf"), std::string::npos);
  }
}

TEST(LintSignalSafeTest, SafeVocabularyPasses) {
  // errno, relaxed atomics on preallocated slots, backtrace(): the whole
  // allowed surface of the profiler's handler.
  const char* kClean = R"FIX(
void Handler(int sig) {
  // dtrec-signal-safe-region-begin
  const int saved_errno = errno;
  const size_t slot = g_state.cursor.fetch_add(1, std::memory_order_relaxed);
  if (slot < g_state.max_samples) {
    g_state.ring[slot].depth = backtrace(g_state.ring[slot].frames, 48);
    g_state.ring[slot].ready.store(true, std::memory_order_release);
  } else {
    g_state.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  errno = saved_errno;
  // dtrec-signal-safe-region-end
}
)FIX";
  const auto findings = LintContent("src/obs/handler.cc", kClean);
  EXPECT_EQ(CountRule(findings, "signal-unsafe-in-handler"), 0u)
      << FindingsToJson(findings);
}

TEST(LintSignalSafeTest, EveryBannedCategoryIsCaught) {
  // One representative per category: allocation, lock, stdio, container
  // construction, symbolization.
  const char* kDirty = R"FIX(
void Handler(int sig) {
  // dtrec-signal-safe-region-begin
  void* p = malloc(8);
  std::lock_guard<std::mutex> lock(g_mu);
  fprintf(g_log, "tick\n");
  std::vector<int> frames;
  dladdr(p, &info);
  // dtrec-signal-safe-region-end
}
)FIX";
  const auto findings = LintContent("src/obs/handler.cc", kDirty);
  // lock_guard + mutex count separately on their shared line.
  EXPECT_GE(CountRule(findings, "signal-unsafe-in-handler"), 5u)
      << FindingsToJson(findings);
}

TEST(LintSignalSafeTest, UnterminatedRegionIsItselfAFinding) {
  const char* kOpenEnded =
      "void Handler(int sig) {\n"
      "  // dtrec-signal-safe-region-begin\n"
      "  errno = 0;\n"
      "}\n";
  const auto findings = LintContent("src/obs/handler.cc", kOpenEnded);
  ASSERT_EQ(CountRule(findings, "signal-unsafe-in-handler"), 1u);
  EXPECT_EQ(findings[0].line, 2u);  // anchored at the dangling begin
  EXPECT_NE(findings[0].message.find("without a matching"),
            std::string::npos);
}

TEST(LintSignalSafeTest, ProseMentionOfTheMarkerDoesNotOpenARegion) {
  // Documentation (like lint.h's own rule table) talks about the marker
  // without being one; only an exact standalone marker comment counts.
  const char* kProse = R"FIX(
// The dtrec-signal-safe-region-begin marker brackets handler code; see
// lint.h. Everything below is ordinary code:
void Flush() {
  std::string s = "uses banned identifiers freely";
  std::printf("%s\n", s.c_str());
}
)FIX";
  const auto findings = LintContent("src/obs/doc.cc", kProse);
  EXPECT_EQ(CountRule(findings, "signal-unsafe-in-handler"), 0u)
      << FindingsToJson(findings);
}

TEST(LintSignalSafeTest, AllowCommentSuppresses) {
  const char* kAllowed = R"FIX(
void Handler(int sig) {
  // dtrec-signal-safe-region-begin
  // dtrec-lint: allow(signal-unsafe-in-handler)
  debug_only_printf("%d\n", printf_arena);
  errno = 0;
  // dtrec-signal-safe-region-end
}
)FIX";
  // (identifiers containing but not equal to banned names never match;
  // this fixture's suppressed line uses a real banned name below)
  const char* kAllowedReal =
      "void Handler(int sig) {\n"
      "  // dtrec-signal-safe-region-begin\n"
      "  printf(\"x\");  // dtrec-lint: allow(signal-unsafe-in-handler)\n"
      "  // dtrec-signal-safe-region-end\n"
      "}\n";
  EXPECT_EQ(CountRule(LintContent("src/obs/handler.cc", kAllowed),
                      "signal-unsafe-in-handler"),
            0u);
  EXPECT_EQ(CountRule(LintContent("src/obs/handler.cc", kAllowedReal),
                      "signal-unsafe-in-handler"),
            0u);
}

// ------------------------------------------------------------- suppression

TEST(LintSuppressionTest, TrailingAllowSilencesThatLine) {
  const char* kSrc =
      "double F(double x, double p_hat) {\n"
      "  return x / p_hat;  // dtrec-lint: allow(propensity-division)\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/a.cc", kSrc).empty());
}

TEST(LintSuppressionTest, StandaloneAllowCoversNextLine) {
  const char* kSrc =
      "double F(double x, double p_hat) {\n"
      "  // dtrec-lint: allow(propensity-division)\n"
      "  return x / p_hat;\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/a.cc", kSrc).empty());
}

TEST(LintSuppressionTest, AllowAllAndMultiRuleLists) {
  const char* kSrc =
      "int* G() {\n"
      "  // dtrec-lint: allow(naked-new, banned-rand)\n"
      "  return new int(rand());\n"
      "}\n"
      "int* H() {\n"
      "  // dtrec-lint: allow(all)\n"
      "  return new int(rand());\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/a.cc", kSrc).empty());
}

TEST(LintSuppressionTest, AllowDoesNotLeakBeyondNextLine) {
  const char* kSrc =
      "double F(double x, double p_hat) {\n"
      "  // dtrec-lint: allow(propensity-division)\n"
      "  double a = x / p_hat;\n"
      "  double b = x / p_hat;\n"  // two lines below the allow: still flagged
      "  return a + b;\n"
      "}\n";
  const auto findings = LintContent("src/a.cc", kSrc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintSuppressionTest, UnknownRuleNameIsItselfAFinding) {
  const char* kSrc = "// dtrec-lint: allow(no-such-rule)\nint x = 0;\n";
  const auto findings = LintContent("src/a.cc", kSrc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lint-usage");
}

// ----------------------------------------------- shared stripper hardening
// The stripper lives in tools/analysis/lexer.cc; these regressions pin
// the lint-visible behavior for the constructs that used to confuse it.

TEST(LintStripperTest, EncodingPrefixedRawStringsAreNotCode) {
  // u8R/LR/uR/UR prefixes open raw strings just like plain R.
  const char* kSrc =
      "const char* a = u8R\"(x / p_hat rand())\";\n"
      "const wchar_t* b = LR\"sep(y / propensity new)sep\";\n"
      "const char16_t* c = uR\"(z / inv_p)\";\n";
  EXPECT_TRUE(LintContent("src/foo/raw.cc", kSrc).empty());
}

TEST(LintStripperTest, HexDigitSeparatorsDoNotOpenCharLiterals) {
  // 0xFF'FF: the quote follows a letter, but it is still a separator; if
  // mistaken for a char literal the rest of the file would be swallowed
  // and the rand() call below missed.
  const char* kSrc =
      "int mask = 0xFF'FF;\n"
      "int bin = 0b1010'1010;\n"
      "int big = 1'000'000;\n"
      "int r = rand();\n";
  const auto findings = LintContent("src/foo/sep.cc", kSrc);
  EXPECT_EQ(CountRule(findings, "banned-rand"), 1u);
}

TEST(LintStripperTest, BackslashContinuationExtendsLineComments) {
  // The spliced line is still comment text, not code.
  const char* kSrc =
      "// this comment continues \\\n"
      "rand(); int x = new_value / p_hat_total;\n"
      "int y = 0;\n";
  EXPECT_TRUE(LintContent("src/foo/cont.cc", kSrc).empty())
      << FindingsToJson(LintContent("src/foo/cont.cc", kSrc));
}

TEST(LintStripperTest, EscapedNewlineInStringKeepsLineNumbers) {
  // A string containing \<newline> must not desynchronize line counting:
  // the finding below it has to land on line 3.
  const char* kSrc =
      "const char* s = \"splice \\\n"
      "tail\";\n"
      "int r = rand();\n";
  const auto findings = LintContent("src/foo/splice.cc", kSrc);
  ASSERT_EQ(CountRule(findings, "banned-rand"), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

// ------------------------------------------------------ header-only rules

TEST(LintHeaderTest, CanonicalGuardAccepted) {
  const char* kHeader =
      "#ifndef DTREC_FOO_BAR_H_\n"
      "#define DTREC_FOO_BAR_H_\n"
      "int F();\n"
      "#endif  // DTREC_FOO_BAR_H_\n";
  EXPECT_TRUE(LintContent("src/foo/bar.h", kHeader).empty());
}

TEST(LintHeaderTest, WrongOrMissingGuardFlagged) {
  const char* kWrong =
      "#ifndef WRONG_GUARD_H\n"
      "#define WRONG_GUARD_H\n"
      "#endif\n";
  EXPECT_EQ(CountRule(LintContent("src/foo/bar.h", kWrong), "include-guard"),
            1u);
  EXPECT_EQ(CountRule(LintContent("src/foo/bar.h", "int F();\n"),
                      "include-guard"),
            1u);
}

TEST(LintHeaderTest, PragmaOnceBanned) {
  const char* kPragma = "#pragma once\nint F();\n";
  const auto findings = LintContent("src/foo/bar.h", kPragma);
  EXPECT_GE(CountRule(findings, "include-guard"), 1u);
}

TEST(LintIncludeHygieneTest, ViolationsFlagged) {
  const char* kSrc =
      "#include \"src/util/math_util.h\"\n"
      "#include \"../util/math_util.h\"\n"
      "#include <util/random.h>\n"
      "#include <vector>\n"
      "#include \"util/random.h\"\n"
      "#include <gtest/gtest.h>\n";
  const auto findings = LintContent("src/foo/inc.cc", kSrc);
  EXPECT_EQ(CountRule(findings, "include-hygiene"), 3u);
}

// ------------------------------------------------------------ float rule

TEST(LintFloatTest, OnlySuffixedLiteralsFlagged) {
  const char* kSrc =
      "double a = 1.0;\n"
      "double b = 1.0f;\n"
      "double c = .5F;\n"
      "double d = 2e3f;\n"
      "int e = 0xFF;\n"
      "int f2 = 10;\n"
      "double g = 1e-6;\n";
  const auto findings = LintContent("src/foo/f.cc", kSrc);
  EXPECT_EQ(CountRule(findings, "float-literal"), 3u);
  EXPECT_EQ(findings[0].line, 2u);
}

// ----------------------------------------------------------- clang-tidy

TEST(LintClangTidyTest, GoodConfigPasses) {
  const char* kGood =
      "Checks: 'bugprone-*'\n"
      "WarningsAsErrors: 'bugprone-*'\n"
      "HeaderFilterRegex: 'src/.*'\n";
  EXPECT_TRUE(LintClangTidyConfig(".clang-tidy", kGood).empty());
}

TEST(LintClangTidyTest, MissingKeysFlagged) {
  const auto findings =
      LintClangTidyConfig(".clang-tidy", "Checks: 'bugprone-*'\n");
  EXPECT_EQ(CountRule(findings, "clang-tidy-config"), 2u);
  EXPECT_EQ(CountRule(LintClangTidyConfig(".clang-tidy", "  \n"),
                      "clang-tidy-config"),
            1u);
}

// ----------------------------------------------------------------- report

TEST(LintReportTest, JsonShapeAndEscaping) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "banned-rand", "uses \"rand\""}};
  const std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("uses \\\"rand\\\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"dtrec-lint-v1\""), std::string::npos);
  EXPECT_EQ(FindingsToJson({}),
            "{\"schema\": \"dtrec-lint-v1\", \"count\": 0, \"findings\": "
            "[]}\n");
}

TEST(LintReportTest, KnownRulesCoverEmittedRules) {
  const auto& known = KnownRules();
  for (const char* rule :
       {"propensity-division", "banned-rand", "naked-new", "include-guard",
        "include-hygiene", "float-literal", "raw-ofstream-write",
        "raw-stderr-logging", "signal-unsafe-in-handler", "lint-usage"}) {
    EXPECT_NE(std::find(known.begin(), known.end(), rule), known.end())
        << rule;
  }
}

}  // namespace
}  // namespace dtrec::lint
