#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/layering.h"
#include "analysis/lexer.h"
#include "analysis/locks.h"
#include "analysis/taint.h"

namespace dtrec::analysis {
namespace {

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::vector<Finding> Analyze(const std::string& path, const std::string& src,
                             const std::string& paired = "") {
  return AnalyzeFile(path, src, paired).findings;
}

// ------------------------------------------------------------------- lexer

TEST(LexerTest, TokensCarryPositions) {
  const auto tokens = Lex("a = b;\n  cc->dd();\n");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].col, 1u);
  EXPECT_EQ(tokens[4].text, "cc");
  EXPECT_EQ(tokens[4].line, 2u);
  EXPECT_EQ(tokens[4].col, 3u);
  EXPECT_EQ(tokens[5].text, "->");  // multi-char punctuator, one token
}

TEST(LexerTest, MaximalMunchPunctuators) {
  const auto tokens = Lex("a <<= b >>= c != d :: e /= f");
  std::vector<std::string> puncts;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts,
            (std::vector<std::string>{"<<=", ">>=", "!=", "::", "/="}));
}

TEST(LexerTest, NumbersKeepSeparatorsAndExponents) {
  const auto tokens = Lex("x = 1'000'000 + 1e-6 + 0xFF'FF;");
  std::vector<std::string> nums;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kNumber) nums.push_back(t.text);
  }
  EXPECT_EQ(nums, (std::vector<std::string>{"1'000'000", "1e-6", "0xFF'FF"}));
}

TEST(StripperTest, RawStringPrefixes) {
  const std::string src =
      "a = u8R\"(not / code)\"; b = LR\"sep(still)sep\"; c = 1;";
  const StripResult strip = StripSource(src);
  EXPECT_EQ(strip.code.find('/'), std::string::npos);
  EXPECT_NE(strip.code.find("c = 1"), std::string::npos);
}

TEST(StripperTest, CharLiteralVsDigitSeparator) {
  const StripResult strip = StripSource("int a = 0xAB'CD; char c = 'x';");
  // The separator survives into the code; the char literal body does not.
  EXPECT_NE(strip.code.find("0xAB'CD"), std::string::npos);
  EXPECT_EQ(strip.code.find('x', strip.code.find("c =")), std::string::npos);
}

TEST(StripperTest, SplicedLineCommentStaysComment) {
  const StripResult strip = StripSource("// one \\\ntwo\nint x;\n");
  EXPECT_EQ(strip.code.find("two"), std::string::npos);
  EXPECT_NE(strip.code.find("int x"), std::string::npos);
  // Comment text is collected for both source lines.
  ASSERT_GE(strip.comments.size(), 1u);
  EXPECT_NE(strip.comments[0].find("one"), std::string::npos);
}

TEST(StripperTest, NewlinesSurviveEverything) {
  const std::string src =
      "\"str \\\n tail\"\n/* block\ncomment */\nR\"(raw\nbody)\"\n";
  const StripResult strip = StripSource(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(strip.code.begin(), strip.code.end(), '\n'));
}

// ------------------------------------------------------------------- taint

TEST(TaintTest, DirectDivisionBySource) {
  const char* kSrc = R"(
double F(double x, double p_hat) {
  return x / p_hat;
}
)";
  const auto findings = Analyze("src/core/f.cc", kSrc);
  ASSERT_EQ(CountRule(findings, "propensity-taint"), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(TaintTest, AliasPropagatesTaint) {
  // The lint-level rule only matches the divisor's head identifier; the
  // dataflow pass follows the assignment w = p_hat.
  const char* kSrc = R"(
double F(double x, double p_hat) {
  double w = p_hat;
  return x / w;
}
)";
  const auto findings = Analyze("src/core/f.cc", kSrc);
  ASSERT_EQ(CountRule(findings, "propensity-taint"), 1u);
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_NE(findings[0].message.find("tainted via 'p_hat'"),
            std::string::npos);
}

TEST(TaintTest, SanitizedAssignmentCleanses) {
  const char* kSrc = R"(
double F(double x, double p_hat) {
  double w = ClipPropensity(p_hat, 1e-6);
  return x / w;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/core/f.cc", kSrc), "propensity-taint"),
            0u);
}

TEST(TaintTest, ReclippingAVariableClearsItsTaint) {
  const char* kSrc = R"(
double F(double x, double w, double p_hat) {
  w = p_hat;
  w = ClipPropensity(w, 1e-6);
  return x / w;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/core/f.cc", kSrc), "propensity-taint"),
            0u);
}

TEST(TaintTest, SanitizerCallInDivisorIsClean) {
  const char* kSrc = R"(
double F(double x, double p_hat) {
  double a = x / ClipPropensity(p_hat, 1e-6);
  double b = x * SafeInverse(p_hat);
  double c = x / SoftClip(p_hat);
  return a + b + c;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/core/f.cc", kSrc), "propensity-taint"),
            0u);
}

TEST(TaintTest, LogAndPowSinks) {
  const char* kSrc = R"(
double F(double p_hat, double q) {
  double a = std::log(p_hat);
  double b = std::pow(p_hat, 2.0);
  double c = std::log(q);
  double d = std::pow(2.0, q);
  return a + b + c + d;
}
)";
  const auto findings = Analyze("src/core/f.cc", kSrc);
  EXPECT_EQ(CountRule(findings, "propensity-taint"), 2u);
}

TEST(TaintTest, HelperReturnIsCaughtViaLexicon) {
  // A call result flows through an assignment to a lexicon-named variable
  // (PredictPropensity itself matches the lexicon, so the call expression
  // carries taint too).
  const char* kSrc = R"(
double F(const Model& m, double x, size_t u, size_t i) {
  double prop = m.PredictPropensity(u, i);
  return x / prop;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/core/f.cc", kSrc), "propensity-taint"),
            1u);
}

TEST(TaintTest, ContainerLoadsAreTainted) {
  const char* kSrc = R"(
double Sum(const std::vector<double>& eval_propensities, double x) {
  double s = 0.0;
  for (size_t i = 0; i < eval_propensities.size(); ++i) {
    s += x / eval_propensities[i];
  }
  return s;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/core/f.cc", kSrc), "propensity-taint"),
            1u);
}

TEST(TaintTest, StateResetsBetweenFunctions) {
  // w is tainted in F; the fresh w in G must not inherit it.
  const char* kSrc = R"(
double F(double p_hat) {
  double w = p_hat;
  return w;
}
double G(double x, double w) {
  return x / w;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/core/f.cc", kSrc), "propensity-taint"),
            0u);
}

TEST(TaintTest, ControlFlowBracesDoNotResetState) {
  const char* kSrc = R"(
double F(double x, double p_hat, bool flip) {
  double w = p_hat;
  if (flip) {
    return x / w;
  }
  while (x > 0) {
    x -= 1.0 / w;
  }
  return x;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/core/f.cc", kSrc), "propensity-taint"),
            2u);
}

TEST(TaintTest, CleanRateMathIsNotFlagged) {
  // False-positive guard: ordinary ratios with no propensity in sight.
  const char* kSrc = R"(
double Rate(uint64_t fired, uint64_t total, double sum, size_t n) {
  double r = total == 0 ? 0.0 : static_cast<double>(fired) / total;
  double mean = sum / static_cast<double>(n);
  return r + mean;
}
)";
  EXPECT_TRUE(Analyze("src/core/f.cc", kSrc).empty());
}

TEST(TaintTest, LintAllowCommentAlsoSilencesTaint) {
  // An audited dtrec-lint: allow(propensity-division) site stays silent
  // under the stronger rule — one escape hatch, not two.
  const char* kSrc =
      "double F(double x, double p_hat) {\n"
      "  return x / p_hat;  // dtrec-lint: allow(propensity-division)\n"
      "}\n";
  EXPECT_TRUE(Analyze("src/core/f.cc", kSrc).empty());
  const char* kOwnTag =
      "double F(double x, double p_hat) {\n"
      "  return x / p_hat;  // dtrec-analyze: allow(propensity-taint)\n"
      "}\n";
  EXPECT_TRUE(Analyze("src/core/f.cc", kOwnTag).empty());
}

TEST(TaintTest, UnknownRuleInAllowIsUsageFinding) {
  const auto findings = Analyze(
      "src/core/f.cc", "// dtrec-analyze: allow(no-such-rule)\nint x = 0;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "analyze-usage");
}

// ---------------------------------------------------------------- layering

std::map<std::string, std::vector<IncludeSite>> IncludeMap(
    std::initializer_list<std::pair<std::string, std::vector<IncludeSite>>>
        entries) {
  std::map<std::string, std::vector<IncludeSite>> m;
  for (const auto& [file, sites] : entries) m[file] = sites;
  return m;
}

TEST(LayeringTest, ModuleTable) {
  EXPECT_EQ(ModuleRank("util"), 0);
  EXPECT_EQ(ModuleRank("tensor"), 1);
  EXPECT_EQ(ModuleRank("core"), 3);
  EXPECT_EQ(ModuleRank("serve"), 5);
  EXPECT_EQ(ModuleRank("nonsense"), -1);
  EXPECT_EQ(ModuleOfPath("src/core/ips.cc"), "core");
  EXPECT_EQ(ModuleOfPath("tools/lint/lint.cc"), "");
  EXPECT_EQ(ModuleOfPath("tests/core_test.cc"), "");
  EXPECT_EQ(ModuleOfInclude("obs/metrics.h"), "obs");
  EXPECT_EQ(ModuleOfInclude("vector"), "");
}

TEST(LayeringTest, UpwardIncludeFlagged) {
  const auto m = IncludeMap({
      {"src/util/math_util.h", {{5, "obs/prop_stats.h", true}}},
      {"src/obs/prop_stats.h", {}},
  });
  const auto findings = AnalyzeLayering(m, {});
  ASSERT_EQ(CountRule(findings, "layering-upward"), 1u);
  EXPECT_EQ(findings[0].file, "src/util/math_util.h");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LayeringTest, DownwardAndExemptIncludesPass) {
  const auto m = IncludeMap({
      {"src/serve/topk_scorer.cc", {{3, "util/status.h", true}}},
      {"tests/serve_test.cc", {{4, "serve/topk_scorer.h", true}}},
      {"src/util/status.h", {{2, "vector", false}}},
  });
  EXPECT_TRUE(AnalyzeLayering(m, {}).empty());
}

TEST(LayeringTest, BaselinedEdgeSuppressed) {
  const auto m = IncludeMap({
      {"src/util/math_util.h", {{5, "obs/prop_stats.h", true}}},
  });
  EXPECT_TRUE(AnalyzeLayering(m, {{"util", "obs"}}).empty());
}

TEST(LayeringTest, SameRankCycleDetected) {
  // core ↔ propensity are both layer 3: no upward edge, but a cycle.
  const auto m = IncludeMap({
      {"src/core/a.h", {{2, "propensity/b.h", true}}},
      {"src/propensity/b.h", {{2, "core/c.h", true}}},
      {"src/core/c.h", {}},
  });
  const auto findings = AnalyzeLayering(m, {});
  EXPECT_EQ(CountRule(findings, "layering-upward"), 0u);
  ASSERT_EQ(CountRule(findings, "layering-cycle"), 1u);
  const Finding& cycle = *std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "layering-cycle"; });
  EXPECT_NE(cycle.message.find("core -> propensity -> core"),
            std::string::npos);
}

TEST(LayeringTest, BaseliningOneEdgeBreaksTheCycle) {
  const auto m = IncludeMap({
      {"src/core/a.h", {{2, "baselines/b.h", true}}},
      {"src/baselines/b.h", {{2, "core/a.h", true}}},
  });
  // Unbaselined: upward core→baselines plus the module cycle plus the
  // file-level include cycle.
  const auto raw = AnalyzeLayering(m, {});
  EXPECT_EQ(CountRule(raw, "layering-upward"), 1u);
  EXPECT_EQ(CountRule(raw, "layering-cycle"), 1u);
  EXPECT_EQ(CountRule(raw, "include-cycle"), 1u);
  // Baselining the upward module edge silences the module-level findings;
  // the concrete file loop is still real and still reported.
  const auto baselined = AnalyzeLayering(m, {{"core", "baselines"}});
  EXPECT_EQ(CountRule(baselined, "layering-upward"), 0u);
  EXPECT_EQ(CountRule(baselined, "layering-cycle"), 0u);
  EXPECT_EQ(CountRule(baselined, "include-cycle"), 1u);
}

TEST(LayeringTest, FileIncludeCycleAcrossThreeFiles) {
  const auto m = IncludeMap({
      {"src/core/a.h", {{1, "core/b.h", true}}},
      {"src/core/b.h", {{1, "core/c.h", true}}},
      {"src/core/c.h", {{1, "core/a.h", true}}},
  });
  const auto findings = AnalyzeLayering(m, {});
  ASSERT_EQ(CountRule(findings, "include-cycle"), 1u);
  EXPECT_NE(findings[0].message.find("src/core/a.h"), std::string::npos);
}

// ------------------------------------------------------------------- locks

TEST(LockTest, AnnotationExtraction) {
  const auto tokens = Lex(StripSource(R"(
struct S {
  std::mutex mu_;
  std::map<int, int> table_ DTREC_GUARDED_BY(mu_);
  int free_ = 0;
};
)").code);
  const LockAnnotations ann = ExtractLockAnnotations(tokens);
  ASSERT_EQ(ann.guarded.size(), 1u);
  EXPECT_EQ(ann.guarded.at("table_"), "mu_");
}

TEST(LockTest, UnlockedAccessFlagged) {
  const char* kSrc = R"(
struct S {
  std::mutex mu_;
  int table_ DTREC_GUARDED_BY(mu_);
  void Bad() { table_ = 1; }
  void Good() {
    std::lock_guard<std::mutex> lock(mu_);
    table_ = 2;
  }
};
)";
  const auto findings = Analyze("src/serve/s.h", kSrc);
  ASSERT_EQ(CountRule(findings, "lock-discipline"), 1u);
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LockTest, LockReleasesAtScopeExit) {
  const char* kSrc = R"(
struct S {
  std::mutex mu_;
  int table_ DTREC_GUARDED_BY(mu_);
  void F() {
    {
      std::scoped_lock lock(mu_);
      table_ = 1;
    }
    table_ = 2;
  }
};
)";
  const auto findings = Analyze("src/serve/s.h", kSrc);
  ASSERT_EQ(CountRule(findings, "lock-discipline"), 1u);
  EXPECT_EQ(findings[0].line, 10u);
}

TEST(LockTest, WrongMutexDoesNotCount) {
  const char* kSrc = R"(
struct S {
  std::mutex mu_;
  std::mutex other_mu_;
  int table_ DTREC_GUARDED_BY(mu_);
  void F() {
    std::lock_guard<std::mutex> lock(other_mu_);
    table_ = 1;
  }
};
)";
  EXPECT_EQ(CountRule(Analyze("src/serve/s.h", kSrc), "lock-discipline"),
            1u);
}

TEST(LockTest, RequiresAnnotationSatisfiesTheChecker) {
  const char* kSrc = R"(
struct S {
  std::mutex mu_;
  int table_ DTREC_GUARDED_BY(mu_);
  void Locked() DTREC_REQUIRES(mu_) { table_ = 1; }
};
)";
  EXPECT_EQ(CountRule(Analyze("src/serve/s.h", kSrc), "lock-discipline"),
            0u);
}

TEST(LockTest, MemberExpressionLocksMatchByName) {
  // buffer->mu and state.mu name the same mutexes the annotations do.
  const char* kSrc = R"(
struct Buffer {
  std::mutex mu;
  int events DTREC_GUARDED_BY(mu);
};
void Flush(Buffer* buffer) {
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events = 0;
}
)";
  EXPECT_EQ(CountRule(Analyze("src/obs/b.cc", kSrc), "lock-discipline"), 0u);
}

TEST(LockTest, LambdaInsideLockedScopeInheritsTheLock) {
  const char* kSrc = R"(
struct S {
  std::mutex mu_;
  bool stop_ DTREC_GUARDED_BY(mu_);
  void Wait(std::condition_variable& cv) {
    std::unique_lock<std::mutex> lock(mu_);
    cv.wait(lock, [&] { return stop_; });
  }
};
)";
  EXPECT_EQ(CountRule(Analyze("src/serve/s.h", kSrc), "lock-discipline"),
            0u);
}

TEST(LockTest, HeaderAnnotationsGovernTheCcFile) {
  const char* kHeader = R"(
struct S {
  std::mutex mu_;
  int table_ DTREC_GUARDED_BY(mu_);
  void F();
};
)";
  const char* kCc = R"(
void S::F() { table_ = 1; }
)";
  const auto findings = Analyze("src/serve/s.cc", kCc, kHeader);
  ASSERT_EQ(CountRule(findings, "lock-discipline"), 1u);
  EXPECT_EQ(findings[0].file, "src/serve/s.cc");
}

// ---------------------------------------------------------------- baseline

TEST(BaselineTest, ParsesEdgesAndFindings) {
  const Baseline b = ParseBaseline(
      "# comment\n"
      "\n"
      "edge util obs -- clip counters\n"
      "finding lock-discipline src/obs/trace.cc -- name aliasing\n");
  EXPECT_TRUE(b.errors.empty());
  EXPECT_EQ(b.edges.count({"util", "obs"}), 1u);
  EXPECT_EQ(b.findings.count({"lock-discipline", "src/obs/trace.cc"}), 1u);
}

TEST(BaselineTest, MalformedLinesReported) {
  const Baseline b = ParseBaseline(
      "edge util obs\n"                  // no justification
      "edge util -- why\n"               // missing module
      "wedge util obs -- why\n"          // unknown kind
      "edge util obs extra -- why\n");   // trailing token
  EXPECT_EQ(b.errors.size(), 4u);
}

TEST(BaselineTest, ApplyDropsMatchingFindings) {
  Baseline b;
  b.findings.emplace("lock-discipline", "src/obs/trace.cc");
  std::vector<Finding> in = {
      {"src/obs/trace.cc", 10, "lock-discipline", "m"},
      {"src/obs/trace.cc", 11, "propensity-taint", "m"},
      {"src/serve/s.cc", 12, "lock-discipline", "m"},
  };
  size_t suppressed = 0;
  const auto kept = ApplyBaseline(b, std::move(in), &suppressed);
  EXPECT_EQ(suppressed, 1u);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].rule, "propensity-taint");
  EXPECT_EQ(kept[1].file, "src/serve/s.cc");
}

// ----------------------------------------------------------------- reports

TEST(ReportTest, JsonShape) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "propensity-taint", "uses \"p\""}};
  const std::string json = FindingsToJson(findings, 2);
  EXPECT_NE(json.find("\"schema\": \"dtrec-analyze-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed_baseline\": 2"), std::string::npos);
  EXPECT_NE(json.find("uses \\\"p\\\""), std::string::npos);
  EXPECT_EQ(FindingsToJson({}, 0),
            "{\"schema\": \"dtrec-analyze-v1\", \"count\": 0, "
            "\"suppressed_baseline\": 0, \"findings\": []}\n");
}

TEST(ReportTest, SarifRoundTripsThroughValidator) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "propensity-taint", "raw division"},
      {"src/b.h", 7, "layering-upward", "bad include"},
  };
  const std::string sarif = FindingsToSarif(findings);
  EXPECT_EQ(ValidateSarif(sarif), "") << sarif;
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"dtrec_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  // Empty runs validate too (the shipped-tree case).
  EXPECT_EQ(ValidateSarif(FindingsToSarif({})), "");
}

TEST(ReportTest, ValidatorRejectsStructuralProblems) {
  EXPECT_NE(ValidateSarif("{}"), "");
  EXPECT_NE(ValidateSarif("{\"version\": \"2.1.0\"}"), "");
  EXPECT_NE(ValidateSarif("not json at all"), "");
  // A result whose ruleId was never declared must fail.
  std::string sarif = FindingsToSarif(
      {{"src/a.cc", 3, "propensity-taint", "m"}});
  const size_t pos = sarif.find("\"ruleId\": \"propensity-taint\"");
  ASSERT_NE(pos, std::string::npos);
  sarif.replace(pos, 31, "\"ruleId\": \"undeclared-rule-x\"");
  EXPECT_NE(ValidateSarif(sarif), "");
  // startLine 0 must fail.
  std::string zero = FindingsToSarif({{"src/a.cc", 0, "include-cycle", "m"}});
  EXPECT_NE(ValidateSarif(zero), "");
}

TEST(ReportTest, HashContentIsStableFnv1a) {
  EXPECT_EQ(HashContent(""), 14695981039346656037ULL);
  EXPECT_NE(HashContent("a"), HashContent("b"));
  EXPECT_EQ(HashContent("abc"), HashContent("abc"));
}

TEST(ReportTest, KnownRulesCoverEmittedRules) {
  const auto& known = KnownRules();
  for (const char* rule :
       {"propensity-taint", "layering-upward", "layering-cycle",
        "include-cycle", "lock-discipline", "analyze-usage"}) {
    EXPECT_NE(std::find(known.begin(), known.end(), rule), known.end())
        << rule;
  }
}

// ------------------------------------------------------- whole-file driver

TEST(AnalyzeFileTest, IncludesExtractedWithKindAndLine) {
  const char* kSrc =
      "#include \"util/status.h\"\n"
      "#include <vector>\n"
      "// #include \"commented/out.h\"\n";
  const FileAnalysis fa = AnalyzeFile("src/core/f.cc", kSrc, "");
  ASSERT_EQ(fa.includes.size(), 2u);
  EXPECT_EQ(fa.includes[0].path, "util/status.h");
  EXPECT_TRUE(fa.includes[0].quoted);
  EXPECT_EQ(fa.includes[0].line, 1u);
  EXPECT_EQ(fa.includes[1].path, "vector");
  EXPECT_FALSE(fa.includes[1].quoted);
}

TEST(AnalyzeFileTest, FindingsAreSortedByLine) {
  const char* kSrc = R"(
struct S {
  std::mutex mu_;
  int t_ DTREC_GUARDED_BY(mu_);
  void A() { t_ = 1; }
};
double F(double x, double p_hat) { return x / p_hat; }
)";
  const auto findings = Analyze("src/serve/s.h", kSrc);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_LT(findings[0].line, findings[1].line);
}

}  // namespace
}  // namespace dtrec::analysis
