#include <gtest/gtest.h>

#include "propensity/logistic_propensity.h"
#include "propensity/mf_propensity.h"
#include "propensity/popularity_propensity.h"
#include "propensity/propensity.h"
#include "util/random.h"

namespace dtrec {
namespace {

TEST(ClipPropensityTest, Bounds) {
  EXPECT_DOUBLE_EQ(ClipPropensity(0.001, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(ClipPropensity(0.5, 0.05), 0.5);
  EXPECT_DOUBLE_EQ(ClipPropensity(1.7, 0.05), 1.0);
}

RatingDataset MakeBiasedDataset(size_t m, size_t n, uint64_t seed,
                                double base_rate = 0.2) {
  RatingDataset ds(m, n);
  Rng rng(seed);
  for (uint32_t u = 0; u < m; ++u) {
    // First half of the users are twice as active.
    const double user_boost = u < m / 2 ? 2.0 : 1.0;
    for (uint32_t i = 0; i < n; ++i) {
      const double item_boost = i < n / 2 ? 1.5 : 0.5;
      if (rng.Bernoulli(base_rate * user_boost * item_boost / 2.0)) {
        ds.AddTrain(u, i, rng.Bernoulli(0.6) ? 1.0 : 0.0);
      }
    }
  }
  for (uint32_t u = 0; u < m; ++u) {
    ds.AddTest(u, u % n, rng.Bernoulli(0.4) ? 1.0 : 0.0);
  }
  return ds;
}

TEST(ConstantPropensityTest, EqualsDensity) {
  RatingDataset ds = MakeBiasedDataset(40, 40, 1);
  ConstantPropensity model;
  ASSERT_TRUE(model.Fit(ds).ok());
  EXPECT_DOUBLE_EQ(model.Propensity(0, 0), ds.TrainDensity());
  EXPECT_DOUBLE_EQ(model.Propensity(39, 39), ds.TrainDensity());
  // PropensityGivenRating defaults to the rating-free value.
  EXPECT_DOUBLE_EQ(model.PropensityGivenRating(0, 0, 1.0),
                   model.Propensity(0, 0));
}

TEST(PopularityPropensityTest, ReflectsActivity) {
  RatingDataset ds = MakeBiasedDataset(60, 60, 2);
  PopularityPropensity model;
  ASSERT_TRUE(model.Fit(ds).ok());
  // Active user (front half) × popular item should exceed inactive user ×
  // unpopular item.
  EXPECT_GT(model.Propensity(0, 0), model.Propensity(59, 59));
  // All propensities valid.
  for (size_t u = 0; u < 60; u += 7) {
    for (size_t i = 0; i < 60; i += 11) {
      const double p = model.Propensity(u, i);
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(PopularityPropensityTest, RejectsNegativeSmoothing) {
  PopularityPropensity model(-1.0);
  RatingDataset ds = MakeBiasedDataset(10, 10, 3);
  EXPECT_FALSE(model.Fit(ds).ok());
}

TEST(NaiveBayesPropensityTest, RequiresUnbiasedSlice) {
  RatingDataset ds(5, 5);
  ds.AddTrain(0, 0, 1.0);
  NaiveBayesPropensity model;
  EXPECT_EQ(model.Fit(ds).code(), StatusCode::kFailedPrecondition);
}

TEST(NaiveBayesPropensityTest, RequiresBinaryRatings) {
  RatingDataset ds(5, 5);
  ds.AddTrain(0, 0, 3.5);
  ds.AddTest(0, 1, 1.0);
  NaiveBayesPropensity model;
  EXPECT_EQ(model.Fit(ds).code(), StatusCode::kInvalidArgument);
}

TEST(NaiveBayesPropensityTest, RecoversRatingDependence) {
  // World: P(o=1|r=1) = 0.4, P(o=1|r=0) = 0.1, P(r=1) = 0.5.
  RatingDataset ds(200, 200);
  Rng rng(5);
  for (uint32_t u = 0; u < 200; ++u) {
    for (uint32_t i = 0; i < 200; ++i) {
      const bool r = rng.Bernoulli(0.5);
      if (rng.Bernoulli(r ? 0.4 : 0.1)) {
        ds.AddTrain(u, i, r ? 1.0 : 0.0);
      }
    }
    // MCAR test slice records the true marginal.
    ds.AddTest(u, u % 200, rng.Bernoulli(0.5) ? 1.0 : 0.0);
  }
  NaiveBayesPropensity model;
  ASSERT_TRUE(model.Fit(ds).ok());
  EXPECT_NEAR(model.PropensityGivenRating(0, 0, 1.0), 0.4, 0.05);
  EXPECT_NEAR(model.PropensityGivenRating(0, 0, 0.0), 0.1, 0.05);
}

TEST(LogisticPropensityTest, LearnsUserItemPattern) {
  RatingDataset ds = MakeBiasedDataset(60, 60, 7, 0.3);
  LogisticPropensityConfig config;
  config.epochs = 6;
  config.seed = 11;
  LogisticPropensity model(config);
  ASSERT_TRUE(model.Fit(ds).ok());
  // Average propensity approximates density.
  double total = 0.0;
  for (size_t u = 0; u < 60; ++u) {
    for (size_t i = 0; i < 60; ++i) total += model.Propensity(u, i);
  }
  EXPECT_NEAR(total / 3600.0, ds.TrainDensity(), 0.05);
  // Learned ordering follows the true activity pattern: active user &
  // popular item vs inactive user & unpopular item.
  EXPECT_GT(model.Propensity(1, 1), model.Propensity(58, 58));
}

TEST(MfPropensityTest, LearnsObservationPattern) {
  RatingDataset ds = MakeBiasedDataset(60, 60, 9, 0.3);
  MfPropensityConfig config;
  config.dim = 4;
  config.epochs = 6;
  config.seed = 3;
  MfPropensity model(config);
  ASSERT_TRUE(model.Fit(ds).ok());
  double total = 0.0;
  for (size_t u = 0; u < 60; ++u) {
    for (size_t i = 0; i < 60; ++i) total += model.Propensity(u, i);
  }
  EXPECT_NEAR(total / 3600.0, ds.TrainDensity(), 0.06);
  EXPECT_GT(model.Propensity(1, 1), model.Propensity(58, 58));
  EXPECT_GT(model.NumParameters(), 0u);
}

TEST(MfPropensityTest, RejectsBadConfigAndDataset) {
  MfPropensityConfig config;
  config.dim = 0;
  MfPropensity model(config);
  RatingDataset ds = MakeBiasedDataset(10, 10, 11);
  EXPECT_FALSE(model.Fit(ds).ok());
  MfPropensity ok_model;
  RatingDataset empty(3, 3);
  EXPECT_FALSE(ok_model.Fit(empty).ok());
}

TEST(LogisticPropensityTest, FitRejectsInvalidDataset) {
  RatingDataset empty(5, 5);
  LogisticPropensity model;
  EXPECT_FALSE(model.Fit(empty).ok());
}

}  // namespace
}  // namespace dtrec
