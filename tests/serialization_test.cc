#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/checkpoint.h"
#include "core/disentangled_embeddings.h"
#include "models/mf_model.h"
#include "tensor/serialization.h"
#include "util/random.h"

namespace dtrec {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(MatrixSerializationTest, StreamRoundTrip) {
  Rng rng(3);
  const Matrix original = Matrix::RandomNormal(7, 5, 1.3, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(original, &buffer).ok());
  auto loaded = LoadMatrix(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded.value() == original);
}

TEST(MatrixSerializationTest, FileRoundTrip) {
  Rng rng(5);
  const Matrix original = Matrix::RandomNormal(3, 9, 0.5, &rng);
  const std::string path = TempPath("matrix.bin");
  ASSERT_TRUE(SaveMatrixFile(original, path).ok());
  auto loaded = LoadMatrixFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value() == original);
}

TEST(MatrixSerializationTest, EmptyMatrix) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(Matrix(), &buffer).ok());
  auto loaded = LoadMatrix(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
}

TEST(MatrixSerializationTest, RejectsBadMagic) {
  std::stringstream buffer("NOPE....garbage");
  EXPECT_FALSE(LoadMatrix(&buffer).ok());
}

TEST(MatrixSerializationTest, RejectsTruncatedPayload) {
  Rng rng(7);
  const Matrix original = Matrix::RandomNormal(4, 4, 1.0, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(original, &buffer).ok());
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 10);  // chop the tail
  std::stringstream truncated(bytes);
  EXPECT_FALSE(LoadMatrix(&truncated).ok());
}

TEST(MatrixSerializationTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadMatrixFile("/no/such/matrix.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, MfModelRoundTrip) {
  MfModelConfig config;
  config.num_users = 10;
  config.num_items = 12;
  config.dim = 4;
  config.use_bias = true;
  config.seed = 11;
  const MfModel original(config);
  const std::string path = TempPath("mf.ckpt");
  ASSERT_TRUE(SaveMfModel(original, path).ok());

  config.seed = 999;  // different init — must be overwritten by the load
  MfModel restored(config);
  ASSERT_TRUE(LoadMfModel(path, &restored).ok());
  for (size_t u = 0; u < 10; ++u) {
    for (size_t i = 0; i < 12; ++i) {
      EXPECT_DOUBLE_EQ(restored.Score(u, i), original.Score(u, i));
    }
  }
}

TEST(CheckpointTest, MfModelShapeMismatchRejected) {
  MfModelConfig config;
  config.num_users = 10;
  config.num_items = 12;
  config.dim = 4;
  const MfModel original(config);
  const std::string path = TempPath("mf_shape.ckpt");
  ASSERT_TRUE(SaveMfModel(original, path).ok());

  config.dim = 8;  // wrong shape
  MfModel wrong(config);
  EXPECT_EQ(LoadMfModel(path, &wrong).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, DisentangledEmbeddingsRoundTrip) {
  Rng rng(13);
  DisentangledEmbeddings original = DisentangledEmbeddings::Create(
      8, 9, 6, 4, 0.2, -1.0, &rng, /*use_rating_bias=*/true);
  const std::string path = TempPath("dt.ckpt");
  ASSERT_TRUE(SaveDisentangledEmbeddings(original, path).ok());

  Rng rng2(999);
  DisentangledEmbeddings restored = DisentangledEmbeddings::Create(
      8, 9, 6, 4, 0.2, 0.0, &rng2, /*use_rating_bias=*/true);
  ASSERT_TRUE(LoadDisentangledEmbeddings(path, &restored).ok());
  for (size_t u = 0; u < 8; ++u) {
    for (size_t i = 0; i < 9; ++i) {
      EXPECT_DOUBLE_EQ(restored.RatingLogit(u, i),
                       original.RatingLogit(u, i));
      EXPECT_DOUBLE_EQ(restored.PropensityLogit(u, i),
                       original.PropensityLogit(u, i));
    }
  }
}

TEST(CheckpointTest, TrailingBytesRejected) {
  MfModelConfig config;
  config.num_users = 4;
  config.num_items = 4;
  config.dim = 2;
  const MfModel model(config);
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(SaveMfModel(model, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  MfModel restored(config);
  EXPECT_EQ(LoadMfModel(path, &restored).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dtrec
