#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "core/checkpoint.h"
#include "core/disentangled_embeddings.h"
#include "core/train_checkpoint.h"
#include "models/mf_model.h"
#include "optim/sgd.h"
#include "tensor/serialization.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/random.h"

namespace dtrec {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(MatrixSerializationTest, StreamRoundTrip) {
  Rng rng(3);
  const Matrix original = Matrix::RandomNormal(7, 5, 1.3, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(original, &buffer).ok());
  auto loaded = LoadMatrix(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded.value() == original);
}

TEST(MatrixSerializationTest, FileRoundTrip) {
  Rng rng(5);
  const Matrix original = Matrix::RandomNormal(3, 9, 0.5, &rng);
  const std::string path = TempPath("matrix.bin");
  ASSERT_TRUE(SaveMatrixFile(original, path).ok());
  auto loaded = LoadMatrixFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value() == original);
}

TEST(MatrixSerializationTest, EmptyMatrix) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(Matrix(), &buffer).ok());
  auto loaded = LoadMatrix(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
}

TEST(MatrixSerializationTest, RejectsBadMagic) {
  std::stringstream buffer("NOPE....garbage");
  EXPECT_FALSE(LoadMatrix(&buffer).ok());
}

TEST(MatrixSerializationTest, RejectsTruncatedPayload) {
  Rng rng(7);
  const Matrix original = Matrix::RandomNormal(4, 4, 1.0, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(original, &buffer).ok());
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 10);  // chop the tail
  std::stringstream truncated(bytes);
  EXPECT_FALSE(LoadMatrix(&truncated).ok());
}

TEST(MatrixSerializationTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadMatrixFile("/no/such/matrix.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, MfModelRoundTrip) {
  MfModelConfig config;
  config.num_users = 10;
  config.num_items = 12;
  config.dim = 4;
  config.use_bias = true;
  config.seed = 11;
  const MfModel original(config);
  const std::string path = TempPath("mf.ckpt");
  ASSERT_TRUE(SaveMfModel(original, path).ok());

  config.seed = 999;  // different init — must be overwritten by the load
  MfModel restored(config);
  ASSERT_TRUE(LoadMfModel(path, &restored).ok());
  for (size_t u = 0; u < 10; ++u) {
    for (size_t i = 0; i < 12; ++i) {
      EXPECT_DOUBLE_EQ(restored.Score(u, i), original.Score(u, i));
    }
  }
}

TEST(CheckpointTest, MfModelShapeMismatchRejected) {
  MfModelConfig config;
  config.num_users = 10;
  config.num_items = 12;
  config.dim = 4;
  const MfModel original(config);
  const std::string path = TempPath("mf_shape.ckpt");
  ASSERT_TRUE(SaveMfModel(original, path).ok());

  config.dim = 8;  // wrong shape
  MfModel wrong(config);
  EXPECT_EQ(LoadMfModel(path, &wrong).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, DisentangledEmbeddingsRoundTrip) {
  Rng rng(13);
  DisentangledEmbeddings original = DisentangledEmbeddings::Create(
      8, 9, 6, 4, 0.2, -1.0, &rng, /*use_rating_bias=*/true);
  const std::string path = TempPath("dt.ckpt");
  ASSERT_TRUE(SaveDisentangledEmbeddings(original, path).ok());

  Rng rng2(999);
  DisentangledEmbeddings restored = DisentangledEmbeddings::Create(
      8, 9, 6, 4, 0.2, 0.0, &rng2, /*use_rating_bias=*/true);
  ASSERT_TRUE(LoadDisentangledEmbeddings(path, &restored).ok());
  for (size_t u = 0; u < 8; ++u) {
    for (size_t i = 0; i < 9; ++i) {
      EXPECT_DOUBLE_EQ(restored.RatingLogit(u, i),
                       original.RatingLogit(u, i));
      EXPECT_DOUBLE_EQ(restored.PropensityLogit(u, i),
                       original.PropensityLogit(u, i));
    }
  }
}

TEST(CheckpointTest, TrailingBytesRejected) {
  MfModelConfig config;
  config.num_users = 4;
  config.num_items = 4;
  config.dim = 2;
  const MfModel model(config);
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(SaveMfModel(model, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  MfModel restored(config);
  EXPECT_EQ(LoadMfModel(path, &restored).code(),
            StatusCode::kInvalidArgument);
}

TEST(MatrixSerializationTest, RejectsOldFormatVersion) {
  // A v1 file (no checksum) must be refused by version, not misparsed.
  // Re-stamp the version field of a valid v2 file and fix up the CRC so
  // the rejection is attributable to the version check alone.
  Rng rng(3);
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(Matrix::RandomNormal(3, 3, 1.0, &rng), &buffer).ok());
  std::string bytes = buffer.str();
  const uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof(v1));  // after "DTRM"
  const uint32_t crc = Crc32(
      std::string_view(bytes.data(), bytes.size() - sizeof(uint32_t)));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  std::stringstream patched(bytes);
  const Status st = LoadMatrix(&patched).status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("version"), std::string::npos);
}

// ----------------------------------------------------- corruption fuzz
//
// The robustness contract for everything we persist: *any* prefix
// truncation and *any* single-byte corruption of a file must come back
// as a non-OK Status — never a crash, never a silently-wrong load.

std::string SerializedMatrixBytes() {
  Rng rng(29);
  std::stringstream buffer;
  EXPECT_TRUE(SaveMatrix(Matrix::RandomNormal(6, 5, 1.1, &rng), &buffer).ok());
  return buffer.str();
}

TEST(CorruptionFuzzTest, MatrixEveryPrefixTruncationRejected) {
  const std::string bytes = SerializedMatrixBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream truncated(bytes.substr(0, len));
    EXPECT_FALSE(LoadMatrix(&truncated).ok())
        << "truncation to " << len << " of " << bytes.size()
        << " bytes was accepted";
  }
}

TEST(CorruptionFuzzTest, MatrixEveryByteFlipRejected) {
  const std::string bytes = SerializedMatrixBytes();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] ^= static_cast<char>(0xFF);
    std::stringstream corrupted(mutated);
    EXPECT_FALSE(LoadMatrix(&corrupted).ok())
        << "flip at byte " << pos << " of " << bytes.size()
        << " was accepted";
  }
}

/// A small but fully-featured train checkpoint: two parameter matrices,
/// a momentum SGD optimizer with one materialized velocity slot, RNG
/// states with the cached-normal half populated.
struct FuzzCheckpoint {
  FuzzCheckpoint() : opt(0.1, /*momentum=*/0.9) {
    MfModelConfig config;
    config.num_users = 6;
    config.num_items = 4;
    config.dim = 3;
    config.use_bias = false;
    config.seed = 31;
    model = MfModel(config);
    const Matrix grad = Matrix::Constant(6, 3, 0.01);
    opt.Step(model.Params()[0], grad);  // creates the velocity slot
  }
  std::vector<CheckpointGroup> Groups() {
    return {CheckpointGroup{model.Params(), &opt}};
  }
  MfModel model;
  Sgd opt;
};

std::string SerializedCheckpointBytes() {
  FuzzCheckpoint fixture;
  TrainState state;
  state.method = "FUZZ";
  state.next_epoch = 3;
  Rng rng(7);
  (void)rng.Normal();
  state.trainer_rng = rng.state();
  state.sampler_rng = Rng(11).state();
  const std::string path = TempPath("fuzz_source.ckpt");
  EXPECT_TRUE(SaveTrainCheckpoint(path, state, fixture.Groups()).ok());
  std::string bytes;
  EXPECT_TRUE(ReadFile(path, &bytes).ok());
  EXPECT_GT(bytes.size(), 0u);
  return bytes;
}

Status LoadMutatedCheckpoint(const std::string& bytes) {
  const std::string path = TempPath("fuzz_mutant.ckpt");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  FuzzCheckpoint target;
  TrainState state;
  return LoadTrainCheckpoint(path, &state, target.Groups());
}

TEST(CorruptionFuzzTest, CheckpointEveryPrefixTruncationRejected) {
  const std::string bytes = SerializedCheckpointBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(LoadMutatedCheckpoint(bytes.substr(0, len)).ok())
        << "truncation to " << len << " of " << bytes.size()
        << " bytes was accepted";
  }
}

TEST(CorruptionFuzzTest, CheckpointEveryByteFlipRejected) {
  const std::string bytes = SerializedCheckpointBytes();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] ^= static_cast<char>(0xFF);
    EXPECT_FALSE(LoadMutatedCheckpoint(mutated).ok())
        << "flip at byte " << pos << " of " << bytes.size()
        << " was accepted";
  }
}

}  // namespace
}  // namespace dtrec
