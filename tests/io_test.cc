#include <gtest/gtest.h>

#include <fstream>

#include "data/io.h"
#include "synth/coat_like.h"

namespace dtrec {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(RatingsCsvTest, RoundTrip) {
  const std::vector<RatingTriple> triples{
      {0, 5, 1.0}, {3, 2, 0.0}, {7, 7, 4.5}};
  const std::string path = TempPath("ratings_roundtrip.csv");
  ASSERT_TRUE(WriteRatingsCsv(triples, path).ok());
  auto loaded = ReadRatingsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value()[0].user, 0u);
  EXPECT_EQ(loaded.value()[0].item, 5u);
  EXPECT_DOUBLE_EQ(loaded.value()[2].rating, 4.5);
}

TEST(RatingsCsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadRatingsCsv("/nonexistent/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(RatingsCsvTest, RejectsBadHeader) {
  const std::string path = TempPath("bad_header.csv");
  std::ofstream(path) << "u,i,r\n1,2,3\n";
  EXPECT_EQ(ReadRatingsCsv(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RatingsCsvTest, RejectsMalformedRows) {
  const std::string path = TempPath("bad_rows.csv");
  std::ofstream(path) << "user,item,rating\n1,2\n";
  const auto result = ReadRatingsCsv(path);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);

  std::ofstream(path) << "user,item,rating\nabc,2,3\n";
  EXPECT_FALSE(ReadRatingsCsv(path).ok());

  std::ofstream(path) << "user,item,rating\n1,2,xyz\n";
  EXPECT_FALSE(ReadRatingsCsv(path).ok());
}

TEST(RatingsCsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank_lines.csv");
  std::ofstream(path) << "user,item,rating\n1,2,3\n\n4,5,0.5\n";
  auto loaded = ReadRatingsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  const RatingDataset original = MakeCoatLike(9).dataset;
  const std::string prefix = TempPath("coat_ds");
  ASSERT_TRUE(SaveDataset(original, prefix).ok());
  auto loaded = LoadDataset(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().num_users(), original.num_users());
  EXPECT_EQ(loaded.value().num_items(), original.num_items());
  ASSERT_EQ(loaded.value().train().size(), original.train().size());
  ASSERT_EQ(loaded.value().test().size(), original.test().size());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded.value().train()[i].user, original.train()[i].user);
    EXPECT_EQ(loaded.value().train()[i].item, original.train()[i].item);
    EXPECT_DOUBLE_EQ(loaded.value().train()[i].rating,
                     original.train()[i].rating);
  }
}

TEST(DatasetIoTest, SaveRejectsInvalidDataset) {
  RatingDataset empty(3, 3);
  EXPECT_FALSE(SaveDataset(empty, TempPath("invalid_ds")).ok());
}

TEST(DatasetIoTest, LoadRejectsMissingMeta) {
  EXPECT_EQ(LoadDataset(TempPath("never_written")).status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetIoTest, LoadRejectsBadMeta) {
  const std::string prefix = TempPath("bad_meta");
  std::ofstream(prefix + ".meta") << "justonefield\n";
  EXPECT_EQ(LoadDataset(prefix).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, LoadValidatesIds) {
  // Train references user 99 but meta says 5 users.
  const std::string prefix = TempPath("oob_ids");
  std::ofstream(prefix + ".meta") << "5,5\n";
  std::ofstream(prefix + ".train.csv") << "user,item,rating\n99,0,1\n";
  std::ofstream(prefix + ".test.csv") << "user,item,rating\n0,0,1\n";
  EXPECT_EQ(LoadDataset(prefix).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dtrec
