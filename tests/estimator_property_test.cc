#include <gtest/gtest.h>

#include <cmath>

#include "experiments/oracle_bias.h"
#include "obs/prop_stats.h"
#include "synth/mnar_generator.h"
#include "util/random.h"

namespace dtrec {
namespace {

/// World fixture: a fully-known MCAR/MAR/MNAR world plus a fixed (bad but
/// fixed) prediction model whose errors the estimators must average.
struct World {
  Matrix errors;            // e_ui of the fixed prediction model
  Matrix imputed_exact;     // ê = e (perfect imputation)
  Matrix imputed_wrong;     // ê badly misspecified
  Matrix mnar_propensity;   // truth
  Matrix mar_propensity;    // E[truth | x]
  Matrix mcar_propensity;   // constant matrix
};

World MakeWorld(MissingMechanism mechanism, uint64_t seed) {
  MnarGeneratorConfig config;
  config.num_users = 60;
  config.num_items = 60;
  config.mechanism = mechanism;
  config.base_logit = -1.2;
  config.feature_coef = 1.0;
  config.rating_coef = 1.1;
  config.seed = seed;
  const SimulatedData data = MnarGenerator(config).Generate();

  World world;
  const size_t m = config.num_users, n = config.num_items;
  world.errors = Matrix(m, n);
  // Fixed prediction model: constant 0.4, so the error (label − 0.4)²
  // is a deterministic function of the label — the situation in which
  // selection bias distorts the estimate maximally.
  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      const double diff = data.oracle.label(u, i) - 0.4;
      world.errors(u, i) = diff * diff;
    }
  }
  world.imputed_exact = world.errors;
  world.imputed_wrong = Matrix(m, n, 0.05);
  world.mnar_propensity = data.oracle.mnar_propensity;
  world.mar_propensity = data.oracle.mar_propensity;
  world.mcar_propensity =
      Matrix(m, n, data.oracle.mcar_propensity);
  return world;
}

constexpr size_t kTrials = 200;

double AbsBias(EstimatorKind kind, const World& world,
               const Matrix& weighting, const Matrix* imputed = nullptr,
               uint64_t seed = 99) {
  Rng rng(seed);
  const Matrix& imp = imputed != nullptr ? *imputed : world.imputed_wrong;
  const BiasReport report =
      MonteCarloBias(kind, world.errors, imp, world.mnar_propensity,
                     weighting, kTrials, &rng);
  return std::fabs(report.bias);
}

// Tolerance: a few Monte-Carlo standard errors of the mean estimate.
constexpr double kTol = 3e-3;

// ---------------------------------------------------- Lemma 1 (MCAR/MAR)

TEST(EstimatorBiasTest, NaiveUnbiasedUnderMcar) {
  const World world = MakeWorld(MissingMechanism::kMcar, 1);
  EXPECT_LT(AbsBias(EstimatorKind::kNaive, world, world.mcar_propensity),
            kTol);
}

TEST(EstimatorBiasTest, IpsWithMarPropensityUnbiasedUnderMar) {
  const World world = MakeWorld(MissingMechanism::kMar, 2);
  EXPECT_LT(AbsBias(EstimatorKind::kIps, world, world.mar_propensity),
            kTol);
}

TEST(EstimatorBiasTest, NaiveBiasedUnderMar) {
  const World world = MakeWorld(MissingMechanism::kMar, 3);
  EXPECT_GT(AbsBias(EstimatorKind::kNaive, world, world.mar_propensity),
            5 * kTol);
}

TEST(EstimatorBiasTest, DrWithExactImputationUnbiasedUnderMar) {
  const World world = MakeWorld(MissingMechanism::kMar, 4);
  // Propensity deliberately wrong (constant), imputation exact: DR's
  // double robustness carries it.
  EXPECT_LT(AbsBias(EstimatorKind::kDr, world, world.mcar_propensity,
                    &world.imputed_exact),
            kTol);
}

// --------------------------------------------------- Lemma 2(a): MNAR bias

TEST(EstimatorBiasTest, NaiveBiasedUnderMnar) {
  const World world = MakeWorld(MissingMechanism::kMnar, 5);
  EXPECT_GT(AbsBias(EstimatorKind::kNaive, world, world.mnar_propensity),
            5 * kTol);
}

TEST(EstimatorBiasTest, IpsWithMarPropensityBiasedUnderMnar) {
  // The paper's central negative result: even the ORACLE MAR propensity
  // P(o=1|x) leaves the IPS estimator biased when data are MNAR.
  const World world = MakeWorld(MissingMechanism::kMnar, 6);
  EXPECT_GT(AbsBias(EstimatorKind::kIps, world, world.mar_propensity),
            5 * kTol);
}

TEST(EstimatorBiasTest, DrWithMarPropensityAndWrongImputationBiasedUnderMnar) {
  const World world = MakeWorld(MissingMechanism::kMnar, 7);
  EXPECT_GT(AbsBias(EstimatorKind::kDr, world, world.mar_propensity,
                    &world.imputed_wrong),
            5 * kTol);
}

// ------------------------------------------------ Lemma 2(b): MNAR rescue

TEST(EstimatorBiasTest, IpsWithMnarPropensityUnbiasedUnderMnar) {
  const World world = MakeWorld(MissingMechanism::kMnar, 8);
  EXPECT_LT(AbsBias(EstimatorKind::kIps, world, world.mnar_propensity),
            kTol);
}

TEST(EstimatorBiasTest, DrWithMnarPropensityUnbiasedUnderMnar) {
  const World world = MakeWorld(MissingMechanism::kMnar, 9);
  EXPECT_LT(AbsBias(EstimatorKind::kDr, world, world.mnar_propensity,
                    &world.imputed_wrong),
            kTol);
}

TEST(EstimatorBiasTest, DrWithExactImputationUnbiasedUnderMnar) {
  const World world = MakeWorld(MissingMechanism::kMnar, 10);
  EXPECT_LT(AbsBias(EstimatorKind::kDr, world, world.mar_propensity,
                    &world.imputed_exact),
            kTol);
}

// --------------------------------------------------------- Table I matrix

struct TableCase {
  MissingMechanism mechanism;
  int weighting;  // 0 = MCAR prop, 1 = MAR prop, 2 = MNAR prop
  bool unbiased;  // the ✓/× of Table I
};

class TableOneTest : public ::testing::TestWithParam<TableCase> {};

TEST_P(TableOneTest, IpsBiasMatchesTableOne) {
  const TableCase& tc = GetParam();
  const World world = MakeWorld(tc.mechanism, 40 + tc.weighting);
  const Matrix& weighting = tc.weighting == 0   ? world.mcar_propensity
                            : tc.weighting == 1 ? world.mar_propensity
                                                : world.mnar_propensity;
  const double bias = AbsBias(EstimatorKind::kIps, world, weighting);
  if (tc.unbiased) {
    EXPECT_LT(bias, kTol);
  } else {
    EXPECT_GT(bias, 5 * kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, TableOneTest,
    ::testing::Values(
        // MCAR data: every propensity family is correct (column 1).
        TableCase{MissingMechanism::kMcar, 0, true},
        TableCase{MissingMechanism::kMcar, 1, true},
        TableCase{MissingMechanism::kMcar, 2, true},
        // MAR data: MCAR propensity fails, MAR/MNAR succeed (column 2).
        TableCase{MissingMechanism::kMar, 0, false},
        TableCase{MissingMechanism::kMar, 1, true},
        TableCase{MissingMechanism::kMar, 2, true},
        // MNAR data: only the MNAR propensity is unbiased (column 3).
        TableCase{MissingMechanism::kMnar, 0, false},
        TableCase{MissingMechanism::kMnar, 1, false},
        TableCase{MissingMechanism::kMnar, 2, true}));

// Basic estimator sanity.
TEST(EstimatorTest, HandComputedValues) {
  Matrix e{{1.0, 3.0}};
  Matrix o{{1.0, 0.0}};
  Matrix p{{0.5, 0.5}};
  Matrix imp{{2.0, 2.0}};
  EXPECT_DOUBLE_EQ(IdealLoss(e), 2.0);
  EXPECT_DOUBLE_EQ(NaiveEstimate(e, o), 1.0);
  EXPECT_DOUBLE_EQ(IpsEstimate(e, o, p), (1.0 / 0.5) / 2.0);
  // DR: imputed mean 2 + correction (1−2)/0.5 / 2 = 2 − 1 = 1.
  EXPECT_DOUBLE_EQ(DrEstimate(e, imp, o, p), 1.0);
  EXPECT_DOUBLE_EQ(NaiveEstimate(e, Matrix{{0.0, 0.0}}), 0.0);
}

// Regression for the raw-division audit: a degenerate p ≈ 0 must produce a
// finite estimate governed by the kEstimatorPropensityFloor clip, never an
// inf/NaN leaking into the bias tables. (Before the clip was added here,
// p = 0 made IpsEstimate divide by zero outright.)
TEST(EstimatorTest, NearZeroPropensityIsClippedToFiniteEstimate) {
  Matrix e{{1.0, 4.0}};
  Matrix o{{1.0, 1.0}};
  Matrix p{{1e-12, 1.0}};  // far below the 1e-6 floor
  const double ips = IpsEstimate(e, o, p);
  ASSERT_TRUE(std::isfinite(ips));
  // Floored at 1e-6: (1.0/1e-6 + 4.0/1.0) / 2. (The divisor here is the
  // clip floor itself, not a propensity estimate.)
  // dtrec-lint: allow(propensity-division)
  const double expected = 0.5 * (1.0 / kEstimatorPropensityFloor + 4.0);
  EXPECT_DOUBLE_EQ(ips, expected);

  Matrix imp{{0.0, 0.0}};
  const double dr = DrEstimate(e, imp, o, p);
  ASSERT_TRUE(std::isfinite(dr));
  EXPECT_DOUBLE_EQ(dr, expected);

  // Exact zero — the fully degenerate case — is clipped the same way.
  Matrix p_zero{{0.0, 1.0}};
  EXPECT_TRUE(std::isfinite(IpsEstimate(e, o, p_zero)));
  EXPECT_DOUBLE_EQ(IpsEstimate(e, o, p_zero), expected);
}

// The process-wide clip counters (obs/prop_stats.h) are the observable
// behind the "propensity.clip" metrics and the per-epoch clip_rate in the
// training event stream. Tests in this binary share the counters, so each
// assertion works on a snapshot delta rather than absolute values.
TEST(PropensityClipRateTest, OraclePropensityNeverFiresTheClip) {
  const World world = MakeWorld(MissingMechanism::kMnar, 7);
  Matrix o(world.errors.rows(), world.errors.cols());
  for (size_t i = 0; i < o.size(); ++i) o.at_flat(i) = 1.0;
  const obs::PropensityClipSnapshot before = obs::GetPropensityClipSnapshot();
  const double ips = IpsEstimate(world.errors, o, world.mnar_propensity);
  const obs::PropensityClipSnapshot delta =
      obs::GetPropensityClipSnapshot().DeltaSince(before);
  ASSERT_TRUE(std::isfinite(ips));
  // Every cell passed through ClipPropensity, but the oracle propensities
  // all live far above the 1e-6 floor: zero clips fired.
  EXPECT_GE(delta.total, o.size());
  EXPECT_EQ(delta.fired, 0u);
  EXPECT_DOUBLE_EQ(delta.rate(), 0.0);
}

TEST(PropensityClipRateTest, CollapsedPropensityFiresTheClip) {
  Matrix e{{1.0, 4.0}};
  Matrix o{{1.0, 1.0}};
  Matrix p{{1e-12, 1.0}};  // first entry far below the 1e-6 floor
  const obs::PropensityClipSnapshot before = obs::GetPropensityClipSnapshot();
  const double ips = IpsEstimate(e, o, p);
  const obs::PropensityClipSnapshot delta =
      obs::GetPropensityClipSnapshot().DeltaSince(before);
  ASSERT_TRUE(std::isfinite(ips));
  EXPECT_GE(delta.total, 2u);
  EXPECT_GE(delta.fired, 1u);
  EXPECT_GT(delta.rate(), 0.0);
}

}  // namespace
}  // namespace dtrec
