#include <gtest/gtest.h>

#include <cmath>

#include "core/identifiability.h"
#include "util/random.h"

namespace dtrec {
namespace {

TEST(Example1Test, ModelsAreDistinct) {
  const Example1Model a = Example1ModelA();
  const Example1Model b = Example1ModelB();
  // Different propensities and different outcome models...
  EXPECT_NE(Example1Propensity(a, 2.5), Example1Propensity(b, 2.5));
  EXPECT_NE(Example1OutcomeDensity(a, 2.5),
            Example1OutcomeDensity(b, 2.5));
}

TEST(Example1Test, ObservedDensitiesCoincideEverywhere) {
  // ...yet the observed-data density is IDENTICAL (the paper's Eq. 6):
  // the MNAR propensity is unidentifiable from observed data alone.
  const Example1Model a = Example1ModelA();
  const Example1Model b = Example1ModelB();
  for (double r = -4.0; r <= 8.0; r += 0.1) {
    const double da = Example1ObservedDensity(a, r);
    const double db = Example1ObservedDensity(b, r);
    EXPECT_NEAR(da, db, 1e-12 + 1e-9 * db) << "r = " << r;
  }
}

TEST(Example1Test, AlgebraicIdentityBehindTheExample) {
  // σ(−4+2r)·φ(r−1) = σ(4−2r)·φ(r−3) reduces to
  // exp(2r−4)+1 = 1+exp(2r−4); spot-check the two factors' ratio.
  for (double r : {0.0, 1.7, 3.0, 5.2}) {
    // Closed-form oracle propensities, bounded away from zero by design.
    // dtrec-lint: allow(propensity-division)
    const double ratio_prop = Example1Propensity(Example1ModelA(), r) /
                              Example1Propensity(Example1ModelB(), r);
    const double ratio_out =
        Example1OutcomeDensity(Example1ModelB(), r) /
        Example1OutcomeDensity(Example1ModelA(), r);
    EXPECT_NEAR(ratio_prop, ratio_out, 1e-9 * ratio_out);
  }
}

// ------------------------------------------------- separable logistic fits

SeparableLogisticParams TrueParams() {
  SeparableLogisticParams p;
  p.alpha0 = -1.0;
  p.alpha1 = 1.5;
  p.beta1 = 1.2;
  p.eta = 0.4;
  return p;
}

TEST(SeparableLogisticTest, SimulationMatchesMoments) {
  Rng rng(3);
  const auto samples = SimulateSeparableLogistic(TrueParams(), 50000, &rng);
  // P(r=1) among *observed* exceeds η (positives are over-selected when
  // β₁ > 0): the MNAR signature.
  double obs = 0.0, obs_pos = 0.0;
  for (const auto& s : samples) {
    if (s.observed) {
      obs += 1.0;
      obs_pos += s.rating;
    }
  }
  EXPECT_GT(obs_pos / obs, 0.45);  // vs true η = 0.4
}

TEST(SeparableLogisticTest, NllRejectsEmpty) {
  EXPECT_FALSE(FitSeparableLogistic({}, true, TrueParams()).ok());
  SeparableLogisticParams bad = TrueParams();
  bad.eta = 0.0;
  std::vector<MnarSample> one(1);
  EXPECT_FALSE(FitSeparableLogistic(one, true, bad).ok());
}

TEST(SeparableLogisticTest, TrueParamsMinimizeNll) {
  Rng rng(7);
  const auto samples = SimulateSeparableLogistic(TrueParams(), 30000, &rng);
  const double nll_true = ObservedDataNll(TrueParams(), samples, true);
  SeparableLogisticParams off = TrueParams();
  off.beta1 = -1.2;
  off.eta = 0.7;
  EXPECT_LT(nll_true, ObservedDataNll(off, samples, true));
}

TEST(SeparableLogisticTest, WithAuxiliaryTheFitRecoversTruth) {
  // Theorem 1: with the auxiliary variable, the observed-data likelihood
  // identifies (α₀, α₁, β₁, η).
  Rng rng(11);
  const auto samples = SimulateSeparableLogistic(TrueParams(), 40000, &rng);
  SeparableLogisticParams init;
  init.alpha0 = 0.0;
  init.alpha1 = 0.5;
  init.beta1 = 0.0;
  init.eta = 0.5;
  const auto fit =
      FitSeparableLogistic(samples, /*use_aux=*/true, init, 6000, 0.5);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().beta1, 1.2, 0.25);
  EXPECT_NEAR(fit.value().alpha1, 1.5, 0.25);
  EXPECT_NEAR(fit.value().eta, 0.4, 0.05);
}

TEST(SeparableLogisticTest, WithoutAuxiliaryDistinctSolutionsTie) {
  // Without z the likelihood cannot distinguish "high η, negative β₁"
  // from "low η, positive β₁" (Example 1's ambiguity): two fits from
  // opposite starting points reach (near-)equal NLL with different
  // parameters.
  Rng rng(13);
  const auto samples = SimulateSeparableLogistic(TrueParams(), 40000, &rng);

  SeparableLogisticParams init_pos;
  init_pos.alpha0 = -1.0;
  init_pos.beta1 = 2.0;
  init_pos.eta = 0.3;
  SeparableLogisticParams init_neg;
  init_neg.alpha0 = 0.0;
  init_neg.beta1 = -2.0;
  init_neg.eta = 0.7;

  const auto fit_pos =
      FitSeparableLogistic(samples, /*use_aux=*/false, init_pos, 6000, 0.5);
  const auto fit_neg =
      FitSeparableLogistic(samples, /*use_aux=*/false, init_neg, 6000, 0.5);
  ASSERT_TRUE(fit_pos.ok());
  ASSERT_TRUE(fit_neg.ok());

  const double nll_pos = ObservedDataNll(fit_pos.value(), samples, false);
  const double nll_neg = ObservedDataNll(fit_neg.value(), samples, false);
  // Both are (near-)optimal...
  EXPECT_NEAR(nll_pos, nll_neg, 5e-3);
  // ...but the recovered rating effects disagree substantially — the
  // estimand is not identified.
  EXPECT_GT(std::fabs(fit_pos.value().beta1 - fit_neg.value().beta1), 0.5);
}

TEST(SeparableLogisticTest, DeterministicSimulation) {
  Rng rng1(5), rng2(5);
  const auto a = SimulateSeparableLogistic(TrueParams(), 100, &rng1);
  const auto b = SimulateSeparableLogistic(TrueParams(), 100, &rng2);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].observed, b[i].observed);
    EXPECT_EQ(a[i].rating, b[i].rating);
    EXPECT_DOUBLE_EQ(a[i].z, b[i].z);
  }
}

}  // namespace
}  // namespace dtrec
