#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/rating_dataset.h"
#include "data/samplers.h"
#include "data/splits.h"
#include "util/random.h"

namespace dtrec {
namespace {

RatingDataset SmallDataset() {
  RatingDataset ds(3, 4);
  ds.AddTrain(0, 0, 5.0);
  ds.AddTrain(0, 1, 2.0);
  ds.AddTrain(1, 2, 4.0);
  ds.AddTrain(2, 3, 1.0);
  ds.AddTest(0, 3, 3.0);
  ds.AddTest(1, 0, 4.0);
  return ds;
}

TEST(RatingDatasetTest, BasicAccessors) {
  RatingDataset ds = SmallDataset();
  EXPECT_EQ(ds.num_users(), 3u);
  EXPECT_EQ(ds.num_items(), 4u);
  EXPECT_EQ(ds.train().size(), 4u);
  EXPECT_EQ(ds.test().size(), 2u);
  EXPECT_NEAR(ds.TrainDensity(), 4.0 / 12.0, 1e-12);
}

TEST(RatingDatasetTest, Counts) {
  RatingDataset ds = SmallDataset();
  const auto user_counts = ds.UserCounts();
  EXPECT_EQ(user_counts[0], 2u);
  EXPECT_EQ(user_counts[1], 1u);
  EXPECT_EQ(user_counts[2], 1u);
  const auto item_counts = ds.ItemCounts();
  EXPECT_EQ(item_counts[0], 1u);
  EXPECT_EQ(item_counts[3], 1u);
}

TEST(RatingDatasetTest, BinarizeAppliesToBothSplits) {
  RatingDataset ds = SmallDataset();
  ds.BinarizeRatings(3.0);
  EXPECT_DOUBLE_EQ(ds.train()[0].rating, 1.0);  // 5 -> 1
  EXPECT_DOUBLE_EQ(ds.train()[1].rating, 0.0);  // 2 -> 0
  EXPECT_DOUBLE_EQ(ds.test()[0].rating, 1.0);   // 3 -> 1
}

TEST(RatingDatasetTest, ValidateCatchesBadIds) {
  RatingDataset ds(2, 2);
  ds.AddTrain(0, 0, 1.0);
  EXPECT_TRUE(ds.Validate().ok());
  ds.AddTrain(5, 0, 1.0);
  const Status st = ds.Validate();
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(RatingDatasetTest, ValidateCatchesEmptyAndNonFinite) {
  RatingDataset empty(2, 2);
  EXPECT_EQ(empty.Validate().code(), StatusCode::kFailedPrecondition);

  RatingDataset zero_dims;
  EXPECT_EQ(zero_dims.Validate().code(), StatusCode::kInvalidArgument);

  RatingDataset nan_ds(2, 2);
  nan_ds.AddTrain(0, 0, std::nan(""));
  EXPECT_EQ(nan_ds.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(RatingDatasetTest, DebugString) {
  EXPECT_EQ(SmallDataset().DebugString(),
            "RatingDataset(users=3, items=4, train=4, test=2)");
}

// ----------------------------------------------------------------- splits

TEST(SplitsTest, RandomSplitSizesAndContents) {
  RatingDataset ds = SmallDataset();
  Rng rng(3);
  auto [first, second] = RandomSplit(ds.train(), 0.5, &rng);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(second.size(), 2u);
  // Union preserves multiset of items.
  std::multiset<uint32_t> items;
  for (const auto& t : first) items.insert(t.item);
  for (const auto& t : second) items.insert(t.item);
  EXPECT_EQ(items.size(), 4u);
}

TEST(SplitsTest, PerUserHoldout) {
  std::vector<RatingTriple> triples;
  for (uint32_t i = 0; i < 10; ++i) triples.push_back({0, i, 1.0});
  triples.push_back({1, 0, 1.0});  // user 1 has only one rating
  Rng rng(5);
  auto [kept, held] = PerUserHoldout(triples, 2, 3, &rng);
  EXPECT_EQ(held.size(), 3u);
  EXPECT_EQ(kept.size(), 8u);
  for (const auto& t : held) EXPECT_EQ(t.user, 0u);
}

TEST(SplitsTest, MakeValidationSplitRejectsBadFraction) {
  RatingDataset ds = SmallDataset();
  Rng rng(7);
  EXPECT_FALSE(MakeValidationSplit(ds, 0.0, &rng).ok());
  EXPECT_FALSE(MakeValidationSplit(ds, 1.0, &rng).ok());
  // Too small train split.
  EXPECT_EQ(MakeValidationSplit(ds, 0.5, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SplitsTest, MakeValidationSplitWorks) {
  RatingDataset ds(5, 10);
  for (uint32_t u = 0; u < 5; ++u) {
    for (uint32_t i = 0; i < 10; ++i) ds.AddTrain(u, i, 1.0);
  }
  Rng rng(9);
  auto result = MakeValidationSplit(ds, 0.2, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().train().size(), 40u);
  EXPECT_EQ(result.value().test().size(), 10u);
}

// ---------------------------------------------------------------- samplers

TEST(ObservedBatchSamplerTest, CoversEpochExactlyOnce) {
  RatingDataset ds(10, 10);
  for (uint32_t i = 0; i < 25; ++i) ds.AddTrain(i % 10, i % 7, 1.0);
  ObservedBatchSampler sampler(ds, 8, 42);
  EXPECT_EQ(sampler.batches_per_epoch(), 4u);
  Batch batch;
  size_t total = 0;
  while (sampler.NextBatch(&batch)) {
    total += batch.size();
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch.observed(i, 0), 1.0);
    }
  }
  EXPECT_EQ(total, 25u);
  // Next epoch restarts.
  sampler.NewEpoch();
  EXPECT_TRUE(sampler.NextBatch(&batch));
}

TEST(FullMatrixBatchSamplerTest, LookupAndLabels) {
  RatingDataset ds(4, 5);
  ds.AddTrain(1, 2, 1.0);
  ds.AddTrain(3, 0, 0.0);
  FullMatrixBatchSampler sampler(ds, 11);
  double r = -1.0;
  EXPECT_TRUE(sampler.Lookup(1, 2, &r));
  EXPECT_DOUBLE_EQ(r, 1.0);
  EXPECT_FALSE(sampler.Lookup(0, 0, &r));

  const Batch batch = sampler.Sample(256);
  EXPECT_EQ(batch.size(), 256u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_LT(batch.users[i], 4u);
    EXPECT_LT(batch.items[i], 5u);
    if (batch.observed(i, 0) == 0.0) {
      EXPECT_DOUBLE_EQ(batch.ratings(i, 0), 0.0);
    }
  }
}

TEST(FullMatrixBatchSamplerTest, ObservedRateMatchesDensity) {
  RatingDataset ds(20, 20);
  Rng rng(13);
  for (uint32_t u = 0; u < 20; ++u) {
    for (uint32_t i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.25)) ds.AddTrain(u, i, 1.0);
    }
  }
  FullMatrixBatchSampler sampler(ds, 17);
  double observed = 0.0;
  const size_t n = 20000;
  const Batch batch = sampler.Sample(n);
  for (size_t i = 0; i < n; ++i) observed += batch.observed(i, 0);
  EXPECT_NEAR(observed / static_cast<double>(n), ds.TrainDensity(), 0.02);
}

TEST(MakeFullObservedBatchTest, AllTrainTriples) {
  RatingDataset ds = SmallDataset();
  const Batch batch = MakeFullObservedBatch(ds);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_DOUBLE_EQ(batch.ratings(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(batch.observed.Sum(), 4.0);
}

}  // namespace
}  // namespace dtrec
