#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/telemetry_validate.h"
#include "serve/model_registry.h"
#include "serve/recommend_server.h"
#include "serve/server_stats.h"
#include "serve/serving_model.h"
#include "serve/topk_scorer.h"
#include "tensor/matrix.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dtrec::serve {
namespace {

// --------------------------------------------------------------- helpers

/// Random serving model with `users`×`items` factors of width `dim`;
/// popularity decreases with item id, so the fallback ranking is
/// 0, 1, 2, … deterministically.
ServingModel RandomModel(size_t users, size_t items, size_t dim,
                         uint64_t seed, bool with_bias = false) {
  Rng rng(seed);
  Matrix user_bias, item_bias;
  if (with_bias) {
    user_bias = Matrix::RandomNormal(users, 1, 0.5, &rng);
    item_bias = Matrix::RandomNormal(items, 1, 0.5, &rng);
  }
  std::vector<double> popularity(items);
  for (size_t i = 0; i < items; ++i) {
    popularity[i] = static_cast<double>(items - i);  // item 0 most popular
  }
  auto model = ServingModel::FromFactors(
      Matrix::RandomNormal(users, dim, 1.0, &rng),
      Matrix::RandomNormal(items, dim, 1.0, &rng), std::move(user_bias),
      std::move(item_bias), std::move(popularity));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

/// A model whose every score identifies its build parameter: all user
/// factors 1, all item factors `value`, dim `dim` → score = dim·value
/// for every (u, i). Used to detect torn models / stale cache slates.
ServingModel ConstantModel(size_t users, size_t items, size_t dim,
                           double value) {
  std::vector<double> popularity(items, 1.0);
  auto model = ServingModel::FromFactors(
      Matrix::Constant(users, dim, 1.0), Matrix::Constant(items, dim, value),
      Matrix(), Matrix(), std::move(popularity));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1);
      }));
    }
    pool.Shutdown();  // must run everything already queued
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  bool ran = false;
  EXPECT_TRUE(pool.Submit([&ran] { ran = true; }));
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, WaitIdleThenReuse) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
  ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, BoundedQueueRefusesWhenFull) {
  // One worker pinned on a gated task, queue capacity 1: the first extra
  // submit queues, the second must be refused — deterministically.
  ThreadPool pool(1, /*max_queue=*/1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> picked_up;
  ASSERT_TRUE(pool.Submit([opened, &picked_up] {
    picked_up.set_value();
    opened.wait();
  }));
  picked_up.get_future().wait();  // worker is busy, queue is empty

  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));   // fills the queue
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));  // refused
  EXPECT_EQ(pool.pending(), 1u);

  gate.set_value();
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);  // the refused task never ran
  EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));  // usable again
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 2);
}

// ----------------------------------------------------------- TopKScorer

TEST(TopKScorerTest, MatchesBruteForceArgsort) {
  const ServingModel model = RandomModel(40, 157, 12, /*seed=*/7,
                                         /*with_bias=*/true);
  TopKScorer scorer(ScoreCacheConfig{.capacity = 0});  // no cache
  for (size_t user = 0; user < model.num_users(); user += 3) {
    for (size_t k : {1u, 5u, 10u, 157u, 400u}) {
      const auto fast = scorer.TopK(model, user, k);
      const auto slow = BruteForceTopK(model, user, k);
      ASSERT_EQ(fast.size(), slow.size()) << "user " << user << " k " << k;
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i].item, slow[i].item)
            << "user " << user << " k " << k << " rank " << i;
        EXPECT_DOUBLE_EQ(fast[i].score, slow[i].score);
      }
    }
  }
}

TEST(TopKScorerTest, TiesBreakByItemId) {
  // All-equal scores: top-K must be items 0..K-1 in order.
  const ServingModel model = ConstantModel(3, 50, 4, 0.5);
  TopKScorer scorer;
  const auto slate = scorer.TopK(model, 0, 10);
  ASSERT_EQ(slate.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(slate[i].item, i);
}

TEST(TopKScorerTest, CacheHitOnRepeatAndPrefixReuse) {
  const ServingModel model = RandomModel(10, 80, 8, 21);
  TopKScorer scorer(ScoreCacheConfig{.capacity = 8});
  bool hit = true;
  const auto first = scorer.TopK(model, 4, 20, &hit);
  EXPECT_FALSE(hit);
  const auto again = scorer.TopK(model, 4, 20, &hit);
  EXPECT_TRUE(hit);
  ASSERT_EQ(first.size(), again.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].item, again[i].item);
  }
  // Smaller K is a prefix of the cached slate — still a hit.
  const auto prefix = scorer.TopK(model, 4, 5, &hit);
  EXPECT_TRUE(hit);
  ASSERT_EQ(prefix.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(prefix[i].item, first[i].item);
  // Larger K cannot be served from a shorter slate.
  scorer.TopK(model, 4, 40, &hit);
  EXPECT_FALSE(hit);
}

TEST(TopKScorerTest, LruEvictsLeastRecentUser) {
  const ServingModel model = RandomModel(10, 30, 4, 3);
  TopKScorer scorer(ScoreCacheConfig{.capacity = 2});
  bool hit = false;
  scorer.TopK(model, 0, 5, &hit);  // cache: {0}
  scorer.TopK(model, 1, 5, &hit);  // cache: {1, 0}
  scorer.TopK(model, 0, 5, &hit);  // touch 0 → {0, 1}
  EXPECT_TRUE(hit);
  scorer.TopK(model, 2, 5, &hit);  // evicts 1 → {2, 0}
  scorer.TopK(model, 0, 5, &hit);
  EXPECT_TRUE(hit);
  scorer.TopK(model, 1, 5, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(scorer.cache_size(), 2u);
}

TEST(TopKScorerTest, GenerationMismatchBypassesStaleEntry) {
  // Same user, two models with different generations: the slate cached
  // under generation 1 must not be served for the generation-2 model even
  // without an InvalidateAll() call.
  ModelRegistry registry;
  registry.Publish(ConstantModel(4, 20, 4, 1.0));
  auto gen1 = registry.Acquire();
  registry.Publish(ConstantModel(4, 20, 4, 2.0));
  auto gen2 = registry.Acquire();

  TopKScorer scorer;
  bool hit = false;
  const auto old_slate = scorer.TopK(*gen1, 0, 3, &hit);
  EXPECT_FALSE(hit);
  EXPECT_DOUBLE_EQ(old_slate[0].score, 4.0);  // dim·1
  const auto new_slate = scorer.TopK(*gen2, 0, 3, &hit);
  EXPECT_FALSE(hit) << "stale generation must miss";
  EXPECT_DOUBLE_EQ(new_slate[0].score, 8.0);  // dim·2
}

// ------------------------------------------- sub-linear top-K sweeps

// Equivalence fixtures: each one stresses a different hazard of the
// pruned early-exit (exact ties, all-negative scores, a zero-norm user,
// bias-dominated ranking). The contract under test is *bit-identity*:
// EXPECT_EQ on the raw doubles, not EXPECT_DOUBLE_EQ.

/// 101 items sharing 5 distinct factor rows → every score is exactly tied
/// with ~20 other items, so ordering is decided purely by the id
/// tie-break and a premature bound-exit would drop tied items.
ServingModel TieHeavyModel() {
  Rng rng(71);
  const size_t users = 6, items = 101, dim = 4;
  const Matrix base = Matrix::RandomNormal(5, dim, 1.0, &rng);
  Matrix q(items, dim);
  for (size_t i = 0; i < items; ++i) {
    for (size_t d = 0; d < dim; ++d) q(i, d) = base(i % 5, d);
  }
  auto model = ServingModel::FromFactors(
      Matrix::RandomNormal(users, dim, 1.0, &rng), std::move(q), Matrix(),
      Matrix(), std::vector<double>(items, 1.0));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

/// Constant item bias of −5 pushes every score negative: the norm bound
/// ‖p‖·‖q‖ is then far above every real score, and the suffix-bias term
/// must carry the early exit.
ServingModel NegativeScoreModel() {
  Rng rng(72);
  const size_t users = 5, items = 90, dim = 6;
  auto model = ServingModel::FromFactors(
      Matrix::RandomNormal(users, dim, 0.3, &rng),
      Matrix::RandomNormal(items, dim, 0.3, &rng), Matrix(),
      Matrix::Constant(items, 1, -5.0), std::vector<double>(items, 1.0));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

/// User 0's factor row is all zeros (‖p‖ = 0 collapses the norm bound to
/// the bias term alone); item bias decides the whole ranking.
ServingModel ZeroNormUserModel() {
  Rng rng(73);
  const size_t users = 4, items = 75, dim = 6;
  Matrix p = Matrix::RandomNormal(users, dim, 1.0, &rng);
  for (size_t d = 0; d < dim; ++d) p(0, d) = 0.0;
  auto model = ServingModel::FromFactors(
      std::move(p), Matrix::RandomNormal(items, dim, 1.0, &rng),
      Matrix::RandomNormal(users, 1, 0.5, &rng),
      Matrix::RandomNormal(items, 1, 1.0, &rng),
      std::vector<double>(items, 1.0));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

/// Tiny factors (0.01 scale) under a large item bias (σ = 5): ranking is
/// decided almost entirely by the bias, the term the norm-order sweep is
/// *not* sorted by.
ServingModel BiasDominatedModel() {
  Rng rng(74);
  const size_t users = 5, items = 120, dim = 8;
  auto model = ServingModel::FromFactors(
      Matrix::RandomNormal(users, dim, 0.01, &rng),
      Matrix::RandomNormal(items, dim, 0.01, &rng),
      Matrix::RandomNormal(users, 1, 0.5, &rng),
      Matrix::RandomNormal(items, 1, 5.0, &rng),
      std::vector<double>(items, 1.0));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

/// Asserts `mode` reproduces BruteForceTopK bit-for-bit (items and raw
/// double scores) for every user at a spread of K values.
void ExpectBitIdenticalTopK(const ServingModel& model, TopKMode mode,
                            size_t sweep_shard_items = 32768) {
  ScoreCacheConfig config;
  config.capacity = 0;
  config.mode = mode;
  config.sweep_shard_items = sweep_shard_items;
  TopKScorer scorer(config);
  const size_t n = model.num_items();
  for (size_t user = 0; user < model.num_users(); ++user) {
    for (const size_t k : {size_t{1}, size_t{3}, size_t{10}, n, n + 9}) {
      const auto got = scorer.ScoreFresh(model, user, k);
      const auto want = BruteForceTopK(model, user, k);
      ASSERT_EQ(got.size(), want.size())
          << TopKModeName(mode) << " user " << user << " k " << k;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].item, want[i].item)
            << TopKModeName(mode) << " user " << user << " k " << k
            << " rank " << i;
        ASSERT_EQ(got[i].score, want[i].score)  // bit-identical, not NEAR
            << TopKModeName(mode) << " user " << user << " k " << k
            << " rank " << i;
      }
    }
  }
}

TEST(SubLinearTopKTest, PrunedIsBitIdenticalAcrossEquivalenceFixtures) {
  ExpectBitIdenticalTopK(TieHeavyModel(), TopKMode::kPruned);
  ExpectBitIdenticalTopK(NegativeScoreModel(), TopKMode::kPruned);
  ExpectBitIdenticalTopK(ZeroNormUserModel(), TopKMode::kPruned);
  ExpectBitIdenticalTopK(BiasDominatedModel(), TopKMode::kPruned);
}

TEST(SubLinearTopKTest, PrunedIsBitIdenticalOnRandomBiasedModels) {
  ExpectBitIdenticalTopK(RandomModel(40, 157, 12, 7, /*with_bias=*/true),
                         TopKMode::kPruned);
  ExpectBitIdenticalTopK(RandomModel(20, 128, 16, 8, /*with_bias=*/false),
                         TopKMode::kPruned);
}

TEST(SubLinearTopKTest, ShardedDenseSweepIsBitIdentical) {
  // Shard far smaller than the catalogue (8 items, and a deliberately
  // unaligned 9 → rounded down to 8) so many shard boundaries are
  // crossed; every boundary must land on a BatchedRowDot group boundary.
  ExpectBitIdenticalTopK(RandomModel(12, 157, 12, 9, /*with_bias=*/true),
                         TopKMode::kDense, /*sweep_shard_items=*/8);
  ExpectBitIdenticalTopK(TieHeavyModel(), TopKMode::kDense,
                         /*sweep_shard_items=*/9);
}

TEST(SubLinearTopKTest, SweepScoreMatchesScoreAllItemsBitForBit) {
  // The primitive behind both sub-linear paths: per-item re-scoring must
  // reproduce the dense kernel's accumulation (body-group vs ragged-tail
  // order, fused bias add) exactly, including across the tail boundary.
  for (const size_t items : {size_t{157}, size_t{160}}) {  // tail of 1, 0
    const ServingModel model =
        RandomModel(6, items, 12, 41, /*with_bias=*/true);
    std::vector<double> dense;
    for (size_t user = 0; user < model.num_users(); ++user) {
      model.ScoreAllItems(user, &dense);
      for (size_t i = 0; i < items; ++i) {
        ASSERT_EQ(model.SweepScore(user, i), dense[i])
            << "items " << items << " user " << user << " item " << i;
      }
    }
  }
}

TEST(SubLinearTopKTest, QuantizedRecallIsPerfectOnCommittedFixtures) {
  // The rerank returns exact doubles, so whenever the true top-K survives
  // the int8 shortlist the slate must equal the oracle's exactly. These
  // fixtures are the committed synthetic models the bench also pins
  // recall@K = 1.0 on.
  const size_t k = 10;
  ScoreCacheConfig config;
  config.capacity = 0;
  config.mode = TopKMode::kQuantized;
  for (const ServingModel& model :
       {RandomModel(20, 300, 16, 42), RandomModel(20, 300, 16, 43),
        NegativeScoreModel(), ZeroNormUserModel(), BiasDominatedModel()}) {
    TopKScorer scorer(config);
    for (size_t user = 0; user < model.num_users(); ++user) {
      const auto got = scorer.ScoreFresh(model, user, k);
      const auto want = BruteForceTopK(model, user, k);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].item, want[i].item) << "user " << user << " rank "
                                             << i;
        ASSERT_EQ(got[i].score, want[i].score);
      }
    }
  }
}

TEST(SubLinearTopKTest, ModesAgreeThroughTheFullTopKPath) {
  // Same slates through TopK() (cache enabled) as through ScoreFresh —
  // the cache stores whatever the mode computed, tagged by generation.
  const ServingModel model = RandomModel(10, 200, 8, 55, /*with_bias=*/true);
  for (const TopKMode mode : {TopKMode::kPruned, TopKMode::kQuantized}) {
    ScoreCacheConfig config;
    config.capacity = 16;
    config.mode = mode;
    TopKScorer scorer(config);
    bool hit = true;
    const auto cold = scorer.TopK(model, 3, 12, &hit);
    EXPECT_FALSE(hit);
    const auto warm = scorer.TopK(model, 3, 12, &hit);
    EXPECT_TRUE(hit);
    ASSERT_EQ(cold.size(), warm.size());
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(cold[i].item, warm[i].item);
      EXPECT_EQ(cold[i].score, warm[i].score);
    }
  }
}

// ------------------------------------------------- hot-path bug fixes

TEST(TopKScorerTest, ScoreScratchShrinksAfterCatalogueShrinks) {
  // A hot swap from a large to a small catalogue must not strand the big
  // scratch on the worker thread: capacity policy is "shrink when > 2×
  // the live need".
  const ServingModel big = RandomModel(4, 5000, 8, 31);
  const ServingModel small = RandomModel(4, 64, 8, 32);
  TopKScorer scorer(ScoreCacheConfig{.capacity = 0});
  scorer.ScoreFresh(big, 0, 10);
  EXPECT_GE(TopKScorer::ScratchCapacityForTesting(), 5000u);
  scorer.ScoreFresh(small, 0, 10);
  EXPECT_LE(TopKScorer::ScratchCapacityForTesting(), 128u);
  // And the shrunken scratch still scores correctly.
  const auto got = scorer.ScoreFresh(small, 1, 5);
  const auto want = BruteForceTopK(small, 1, 5);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item);
  }
}

TEST(TopKScorerTest, ZeroKIsNeverACacheHitAndLeavesLruUntouched) {
  const ServingModel model = RandomModel(6, 30, 4, 33);
  TopKScorer scorer(ScoreCacheConfig{.capacity = 2});
  bool hit = true;
  scorer.TopK(model, 0, 5, &hit);  // cache: {0}
  scorer.TopK(model, 1, 5, &hit);  // cache: {1, 0}

  // k == 0 used to report a hit whenever *any* entry existed for the user
  // (slate.size() < 0 is never true), inflating the hit rate the SLO gate
  // reads, and its lookup refreshed the user's LRU slot as a side effect.
  const auto empty = scorer.TopK(model, 0, 0, &hit);
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(hit);
  std::vector<ScoredItem> out;
  EXPECT_FALSE(scorer.CachedSlate(model.generation(), 0, 0, &out));
  EXPECT_EQ(scorer.cache_size(), 2u);

  // Had the k=0 lookup spliced user 0 to the LRU front, user 1 would now
  // be the eviction victim. Inserting user 2 must evict user 0 instead.
  scorer.TopK(model, 2, 5, &hit);  // evicts 0 → {2, 1}
  scorer.TopK(model, 1, 5, &hit);
  EXPECT_TRUE(hit) << "user 1 must survive the k=0 lookup";
  scorer.TopK(model, 0, 5, &hit);
  EXPECT_FALSE(hit) << "user 0 must have been the LRU victim";
}

TEST(ServingModelTest, OversizedCatalogueIsRejected) {
  // ScoredItem::item and the sweep orders are uint32: FromFactors must
  // reject catalogues that would silently wrap instead of truncating.
  EXPECT_TRUE(ServingModel::ValidateCatalogueSize(0).ok());
  EXPECT_TRUE(ServingModel::ValidateCatalogueSize(1u << 20).ok());
  EXPECT_TRUE(
      ServingModel::ValidateCatalogueSize(ServingModel::kMaxCatalogueItems)
          .ok());
  const Status st = ServingModel::ValidateCatalogueSize(
      ServingModel::kMaxCatalogueItems + 1);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ServingModelTest, FusedBiasPassMatchesPointScore) {
  // ScoreAllItems folds user+item bias in one pass; Score() remains the
  // sequential reference. They agree to rounding (the fused pass adds
  // (ub + bi) as one term), and bit-exactly when either bias is absent.
  const ServingModel biased = RandomModel(8, 60, 8, 61, /*with_bias=*/true);
  std::vector<double> scores;
  for (size_t u = 0; u < biased.num_users(); ++u) {
    biased.ScoreAllItems(u, &scores);
    for (size_t i = 0; i < biased.num_items(); ++i) {
      EXPECT_NEAR(scores[i], biased.Score(u, i), 1e-12);
    }
  }
  const ServingModel plain = RandomModel(8, 60, 8, 62, /*with_bias=*/false);
  for (size_t u = 0; u < plain.num_users(); ++u) {
    plain.ScoreAllItems(u, &scores);
    for (size_t i = 0; i < plain.num_items(); ++i) {
      EXPECT_EQ(scores[i], plain.SweepScore(u, i));
    }
  }
}

// -------------------------------------------------------- ModelRegistry

TEST(ModelRegistryTest, PublishAssignsMonotonicGenerations) {
  ModelRegistry registry;
  EXPECT_EQ(registry.generation(), 0u);
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.Publish(ConstantModel(2, 4, 2, 1.0)), 1u);
  EXPECT_EQ(registry.Publish(ConstantModel(2, 4, 2, 2.0)), 2u);
  auto model = registry.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->generation(), 2u);
  EXPECT_TRUE(model->IntegrityOk());
}

TEST(ModelRegistryTest, AcquiredModelSurvivesSwap) {
  ModelRegistry registry;
  registry.Publish(ConstantModel(2, 4, 2, 1.0));
  auto pinned = registry.Acquire();
  registry.Publish(ConstantModel(2, 4, 2, 9.0));
  EXPECT_EQ(pinned->generation(), 1u);
  EXPECT_DOUBLE_EQ(pinned->Score(0, 0), 2.0);  // still the old parameters
}

TEST(ModelRegistryTest, CheckpointRoundTripPublishes) {
  Rng rng(5);
  DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
      12, 17, 8, 6, 0.1, 0.0, &rng, /*use_rating_bias=*/false);
  const std::string path = ::testing::TempDir() + "serve_registry.ckpt";
  ASSERT_TRUE(SaveDisentangledEmbeddings(emb, path).ok());

  ModelRegistry registry;
  DisentangledShape shape;
  shape.num_users = 12;
  shape.num_items = 17;
  shape.total_dim = 8;
  shape.primary_dim = 6;
  uint64_t generation = 0;
  const Status st = registry.PublishDisentangledCheckpoint(
      path, shape, std::vector<double>(17, 1.0), &generation);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(generation, 1u);
  auto model = registry.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->num_users(), 12u);
  EXPECT_EQ(model->num_items(), 17u);
  EXPECT_EQ(model->dim(), 6u);
  // Serving scores == the trained rating head, bit for bit.
  for (size_t u = 0; u < 12; ++u) {
    for (size_t i = 0; i < 17; ++i) {
      EXPECT_DOUBLE_EQ(model->Score(u, i), emb.RatingLogit(u, i));
    }
  }
}

// ------------------------------------------------------ LatencyHistogram

TEST(LatencyHistogramTest, PercentilesAreOrderedAndInRange) {
  LatencyHistogram hist;
  for (int us = 1; us <= 1000; ++us) hist.Record(us);
  const auto s = hist.Summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.mean_us, 500.5, 1.0);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
  EXPECT_LE(s.p99_us, s.max_us * 1.25);
  // Geometric buckets have ≤25% width: percentile error is bounded.
  EXPECT_NEAR(s.p50_us, 500.0, 130.0);
  EXPECT_NEAR(s.p99_us, 990.0, 250.0);
  EXPECT_NEAR(s.max_us, 1000.0, 1e-6);
}

TEST(LatencyHistogramTest, EmptyAndReset) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Summarize().count, 0u);
  hist.Record(10.0);
  EXPECT_EQ(hist.Summarize().count, 1u);
  hist.Reset();
  EXPECT_EQ(hist.Summarize().count, 0u);
}

// ------------------------------------------------------ RecommendServer

ServerConfig TestConfig(size_t threads) {
  ServerConfig config;
  config.num_threads = threads;
  config.default_k = 5;
  config.default_deadline_ms = -1;  // no deadline unless a test asks
  config.cache.capacity = 64;
  return config;
}

TEST(RecommendServerTest, ServesExactSlatesConcurrently) {
  ModelRegistry registry;
  const ServingModel reference = RandomModel(30, 120, 8, 11);
  registry.Publish(RandomModel(30, 120, 8, 11));  // same seed → same params

  RecommendServer server(&registry, TestConfig(4));
  std::vector<std::future<Recommendation>> futures;
  for (size_t r = 0; r < 300; ++r) {
    futures.push_back(server.Submit({.user = r % 30, .k = 10}));
  }
  for (size_t r = 0; r < futures.size(); ++r) {
    const Recommendation rec = futures[r].get();
    EXPECT_FALSE(rec.degraded());
    const auto expected = BruteForceTopK(reference, r % 30, 10);
    ASSERT_EQ(rec.items.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(rec.items[i].item, expected[i].item);
    }
  }
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.requests, 300u);
  EXPECT_EQ(stats.degraded(), 0u);
  EXPECT_EQ(stats.rung_full + stats.rung_cached, 300u);
  // 30 distinct users each miss cold at least once; repeats hit. (Two
  // in-flight requests for the same user may both miss, so the split is
  // bounded, not exact.)
  EXPECT_GE(stats.cache_misses, 30u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 300u);
  EXPECT_GE(stats.cache_hits, 200u);
  EXPECT_EQ(stats.total_us.count, 300u);
  EXPECT_GT(stats.total_us.p99_us, 0.0);
}

#if defined(DTREC_TRACING_ENABLED)
TEST(RecommendServerTest, TraceHeadSamplingRecordsEveryNthRequest) {
  ModelRegistry registry;
  registry.Publish(RandomModel(10, 50, 8, 17));

  obs::MetricsRegistry metrics;
  ServerConfig config = TestConfig(1);
  config.metrics = &metrics;
  config.trace_sample_every = 2;
  RecommendServer server(&registry, config);

  obs::ClearTrace();
  obs::EnableTracing();
  for (size_t r = 0; r < 6; ++r) {
    server.Recommend({.user = r % 10, .k = 5});  // sync: sampling is the
  }                                              // server's, not the pool's
  obs::DisableTracing();

  size_t events = 0;
  std::set<std::string> names;
  std::map<std::string, size_t> id_events;
  const std::string json = obs::FlushTraceJson();
  ASSERT_TRUE(obs::ValidateTraceJson(json, &events, &names, &id_events).ok())
      << json;
  // Ticks 0, 2, 4 sample — exactly 3 of 6 requests leave span trees, and
  // each sampled request's events all resolve to its minted id
  // (serve_handle + serve_score + the rung annotation note).
  EXPECT_EQ(id_events.size(), 3u);
  EXPECT_EQ(names.count("serve_handle"), 1u);
  EXPECT_EQ(names.count("serve_score"), 1u);
  size_t tagged = 0;
  for (const auto& [id, n] : id_events) {
    EXPECT_GE(n, 3u) << id;
    tagged += n;
  }
  EXPECT_EQ(tagged, events);  // nothing recorded outside a sampled request
  obs::ClearTrace();
}
#endif  // DTREC_TRACING_ENABLED

TEST(RecommendServerTest, ZeroDeadlineDegradesDeterministically) {
  ModelRegistry registry;
  registry.Publish(RandomModel(10, 50, 8, 13));
  auto model = registry.Acquire();

  ServerConfig config = TestConfig(2);
  config.default_deadline_ms = 0.0;  // every request is born expired
  RecommendServer server(&registry, config);

  for (int round = 0; round < 20; ++round) {
    const Recommendation rec = server.Recommend({.user = 3, .k = 4});
    ASSERT_TRUE(rec.degraded());
    EXPECT_EQ(rec.rung, ServeRung::kPopularity);
    EXPECT_EQ(rec.reason, DegradeReason::kDeadlineMiss);
    ASSERT_EQ(rec.items.size(), 4u);
    const auto& ranking = model->popularity_ranking();
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(rec.items[i].item, ranking[i]);
      EXPECT_DOUBLE_EQ(rec.items[i].score, model->popularity(ranking[i]));
    }
  }
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.degraded(), 20u);
  EXPECT_EQ(stats.deadline_miss, 20u);
  EXPECT_EQ(stats.rung_popularity, 20u);
  EXPECT_DOUBLE_EQ(stats.degraded_rate(), 1.0);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
}

TEST(RecommendServerTest, FullQueueShedsWithEmptySlate) {
  ModelRegistry registry;
  registry.Publish(RandomModel(20, 2000, 16, 17));

  ServerConfig config = TestConfig(1);
  config.max_queue = 1;
  config.cache.capacity = 0;  // every pooled request runs a full pass
  RecommendServer server(&registry, config);

  // One worker, backlog cap 1: a burst of submissions far outpaces the
  // 2000-item scoring passes, so most of the burst must shed. Shed
  // responses come back immediately with an empty slate (the bottom
  // ladder rung is an O(1) refusal, not a popularity fallback).
  std::vector<std::future<Recommendation>> futures;
  for (size_t r = 0; r < 64; ++r) {
    futures.push_back(server.Submit({.user = r % 20, .k = 5}));
  }
  size_t shed_count = 0;
  for (auto& future : futures) {
    const Recommendation rec = future.get();
    if (rec.shed()) {
      ++shed_count;
      EXPECT_TRUE(rec.degraded());
      EXPECT_EQ(rec.rung, ServeRung::kShed);
      EXPECT_EQ(rec.reason, DegradeReason::kQueueShed);
      EXPECT_TRUE(rec.items.empty());
    } else {
      ASSERT_EQ(rec.items.size(), 5u);
    }
  }
  EXPECT_GT(shed_count, 0u);

  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_EQ(stats.rung_shed, shed_count);
  EXPECT_EQ(stats.queue_shed, shed_count);
  EXPECT_GE(stats.degraded(), stats.rung_shed);  // shed ⊆ degraded
  EXPECT_NE(stats.Summary().find("shed="), std::string::npos);

  server.ResetStats();
  EXPECT_EQ(server.Snapshot().rung_shed, 0u);
}

TEST(RecommendServerTest, AdmissionRateLimitShedsExcessTraffic) {
  ModelRegistry registry;
  registry.Publish(RandomModel(10, 40, 4, 23));

  ServerConfig config = TestConfig(2);
  config.admission.rate_per_s = 100.0;
  config.admission.burst = 8.0;
  RecommendServer server(&registry, config);

  std::vector<std::future<Recommendation>> futures;
  for (size_t r = 0; r < 40; ++r) {
    futures.push_back(server.Submit({.user = r % 10, .k = 3}));
  }
  size_t shed = 0;
  for (auto& future : futures) {
    if (future.get().shed()) ++shed;
  }
  // The bucket starts full (burst 8) and refills at 100/s; the burst of
  // 40 submits lands in well under a second, so at least 40 - 8 - (slack
  // for refill during the loop) requests must shed.
  EXPECT_GE(shed, 24u);
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.queue_shed, shed);
  EXPECT_GE(server.admission().rejected_rate(), shed);
}

TEST(RecommendServerTest, PerRequestDeadlineOverridesDefault) {
  ModelRegistry registry;
  registry.Publish(RandomModel(10, 50, 8, 13));
  RecommendServer server(&registry, TestConfig(1));
  const Recommendation expired =
      server.Recommend({.user = 1, .k = 3, .deadline_ms = 0.0});
  EXPECT_TRUE(expired.degraded());
  const Recommendation fine =
      server.Recommend({.user = 1, .k = 3, .deadline_ms = 1e6});
  EXPECT_FALSE(fine.degraded());
}

TEST(RecommendServerTest, HotSwapNeverServesTornModelUnderLoad) {
  constexpr size_t kDim = 8;
  constexpr size_t kItems = 60;
  ModelRegistry registry;
  registry.Publish(ConstantModel(16, kItems, kDim, 1.0));

  ServerConfig config = TestConfig(4);
  RecommendServer server(&registry, config);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(900 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Recommendation rec =
            server.Recommend({.user = rng.UniformIndex(16), .k = 5});
        served.fetch_add(1, std::memory_order_relaxed);
        // Every score of generation g's model is kDim·g: the slate tells
        // us exactly which generation produced it. A torn model or a
        // stale cache slate shows up as a mismatched score.
        for (const ScoredItem& item : rec.items) {
          if (item.score != static_cast<double>(kDim) * rec.generation) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  uint64_t last_generation = 1;
  for (int swap = 2; swap <= 12; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    last_generation = registry.Publish(
        ConstantModel(16, kItems, kDim, static_cast<double>(swap)));
    auto model = registry.Acquire();
    EXPECT_TRUE(model->IntegrityOk());  // generation tag head == tail
    EXPECT_EQ(model->generation(), last_generation);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(served.load(), 0u);
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.generation, last_generation);
  EXPECT_EQ(stats.requests, served.load());
}

TEST(RecommendServerTest, SwapInvalidatesCacheEntries) {
  ModelRegistry registry;
  registry.Publish(ConstantModel(8, 30, 4, 1.0));
  RecommendServer server(&registry, TestConfig(2));

  Recommendation rec = server.Recommend({.user = 2, .k = 3});
  EXPECT_FALSE(rec.cache_hit);
  EXPECT_DOUBLE_EQ(rec.items[0].score, 4.0);
  rec = server.Recommend({.user = 2, .k = 3});
  EXPECT_TRUE(rec.cache_hit);

  registry.Publish(ConstantModel(8, 30, 4, 3.0));
  rec = server.Recommend({.user = 2, .k = 3});
  EXPECT_FALSE(rec.cache_hit) << "swap must invalidate the cached slate";
  EXPECT_DOUBLE_EQ(rec.items[0].score, 12.0);
  EXPECT_EQ(rec.generation, 2u);
  EXPECT_EQ(server.Snapshot().model_swaps, 1u);
}

TEST(RecommendServerTest, ResetStatsClearsCounters) {
  ModelRegistry registry;
  registry.Publish(RandomModel(5, 20, 4, 2));
  RecommendServer server(&registry, TestConfig(1));
  server.Recommend({.user = 0});
  EXPECT_EQ(server.Snapshot().requests, 1u);
  server.ResetStats();
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.total_us.count, 0u);
}

TEST(RecommendServerTest, StatsLiveInTheMetricsRegistry) {
  // ServerStats is now a view over obs::MetricsRegistry counters — the
  // same numbers must be visible through the registry's export path
  // (names under the configured prefix), not just via Snapshot().
  obs::MetricsRegistry metrics;
  ModelRegistry registry;
  registry.Publish(RandomModel(6, 24, 4, 3));
  ServerConfig config = TestConfig(2);
  config.metrics = &metrics;
  config.metrics_prefix = "serve_parity";
  RecommendServer server(&registry, config);
  for (size_t r = 0; r < 40; ++r) server.Recommend({.user = r % 6});

  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.requests, 40u);
  EXPECT_EQ(metrics.GetCounter("serve_parity.requests")->Value(),
            stats.requests);
  EXPECT_EQ(metrics.GetCounter("serve_parity.cache_hits")->Value(),
            stats.cache_hits);
  EXPECT_EQ(metrics.GetCounter("serve_parity.cache_misses")->Value(),
            stats.cache_misses);
  EXPECT_EQ(metrics.GetHistogram("serve_parity.total_us")->Summarize().count,
            stats.total_us.count);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("serve_parity.generation")->Value(), 1.0);

  const std::string json = metrics.DumpJson();
  EXPECT_TRUE(obs::ValidateMetricsJson(json).ok());
  EXPECT_NE(json.find("\"serve_parity.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"serve_parity.total_us\""), std::string::npos);
}

TEST(RecommendServerTest, StatsDumpThreadStartsAndStopsCleanly) {
  obs::MetricsRegistry metrics;
  ModelRegistry registry;
  registry.Publish(RandomModel(5, 20, 4, 2));
  ServerConfig config = TestConfig(1);
  config.metrics = &metrics;
  config.metrics_prefix = "serve_dump";
  config.stats_dump_period_s = 0.01;
  {
    RecommendServer server(&registry, config);
    server.Recommend({.user = 0});
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(server.Snapshot().requests, 1u);
  }  // destructor must join the dump thread without hanging
}

}  // namespace
}  // namespace dtrec::serve
