#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/tape.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace dtrec {
namespace {

/// Builds the loss graph on `tape`, creating one leaf per entry of
/// `params` (pushed into `leaves` in order).
using GraphBuilder = std::function<ag::Var(
    ag::Tape* tape, std::vector<ag::Var>* leaves,
    const std::vector<Matrix>& params)>;

/// Verifies every analytic leaf gradient against central differences.
void CheckGradients(const GraphBuilder& builder, std::vector<Matrix> params,
                    double tol = 2e-6) {
  // Analytic gradients.
  ag::Tape tape;
  std::vector<ag::Var> leaves;
  ag::Var loss = builder(&tape, &leaves, params);
  ASSERT_EQ(leaves.size(), params.size());
  tape.Backward(loss);

  for (size_t i = 0; i < params.size(); ++i) {
    auto loss_value = [&]() {
      ag::Tape fresh;
      std::vector<ag::Var> fresh_leaves;
      return builder(&fresh, &fresh_leaves, params).value()(0, 0);
    };
    const Matrix numeric =
        ag::NumericalGradient(loss_value, &params[i], 1e-5);
    const double err =
        ag::RelativeGradError(tape.GradOf(leaves[i]), numeric);
    EXPECT_LT(err, tol) << "param " << i << " gradient mismatch";
  }
}

Matrix RandomMat(size_t r, size_t c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return Matrix::RandomNormal(r, c, scale, &rng);
}

// -------------------------------------------------------------- Tape basics

TEST(TapeTest, LeafHoldsValueAndZeroGrad) {
  ag::Tape tape;
  ag::Var v = tape.Leaf(Matrix{{1, 2}});
  EXPECT_TRUE((v.value() == Matrix{{1, 2}}));
  EXPECT_DOUBLE_EQ(v.grad()(0, 0), 0.0);
}

TEST(TapeTest, BackwardSeedsLossGradient) {
  ag::Tape tape;
  ag::Var v = tape.Leaf(Matrix{{3}});
  ag::Var loss = ag::Sum(v);
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(loss.grad()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(v.grad()(0, 0), 1.0);
}

TEST(TapeTest, UnreachableBranchGetsNoGradient) {
  ag::Tape tape;
  ag::Var a = tape.Leaf(Matrix{{1}});
  ag::Var b = tape.Leaf(Matrix{{2}});
  ag::Var unused = ag::Scale(b, 10.0);  // separate head, not in loss
  ag::Var loss = ag::Sum(a);
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(b.grad()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(unused.grad()(0, 0), 0.0);
}

TEST(TapeTest, ResetInvalidatesNodes) {
  ag::Tape tape;
  tape.Leaf(Matrix{{1}});
  EXPECT_EQ(tape.num_nodes(), 1u);
  tape.Reset();
  EXPECT_EQ(tape.num_nodes(), 0u);
}

TEST(TapeTest, DetachBlocksGradient) {
  ag::Tape tape;
  ag::Var a = tape.Leaf(Matrix{{2}});
  ag::Var d = ag::Detach(ag::Scale(a, 3.0));
  ag::Var loss = ag::Sum(ag::Mul(d, a));  // loss = 6a via detached const
  tape.Backward(loss);
  // d(loss)/da = d.value = 6 (no flow through the detached path).
  EXPECT_DOUBLE_EQ(a.grad()(0, 0), 6.0);
}

TEST(TapeTest, GradientAccumulatesOverReuse) {
  ag::Tape tape;
  ag::Var a = tape.Leaf(Matrix{{3}});
  ag::Var loss = ag::Sum(ag::Add(a, a));
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(a.grad()(0, 0), 2.0);
}

// ------------------------------------------------------ per-op grad checks

TEST(GradCheckTest, AddSubMul) {
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        leaves->push_back(t->Leaf(p[1]));
        ag::Var x = (*leaves)[0], y = (*leaves)[1];
        return ag::Sum(ag::Mul(ag::Add(x, y), ag::Sub(x, y)));
      },
      {RandomMat(3, 4, 1), RandomMat(3, 4, 2)});
}

TEST(GradCheckTest, DivAndDivScalar) {
  Matrix denom = RandomMat(2, 3, 3);
  for (size_t i = 0; i < denom.size(); ++i) {
    denom.at_flat(i) = 1.5 + std::fabs(denom.at_flat(i));
  }
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        leaves->push_back(t->Leaf(p[1]));
        ag::Var quotient = ag::Div((*leaves)[0], (*leaves)[1]);
        ag::Var denom_sum = ag::AddScalar(ag::Sum((*leaves)[1]), 20.0);
        return ag::Sum(ag::DivScalar(quotient, denom_sum));
      },
      {RandomMat(2, 3, 4), denom});
}

TEST(GradCheckTest, MatMulAndTranspose) {
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        leaves->push_back(t->Leaf(p[1]));
        ag::Var prod = ag::MatMul((*leaves)[0], (*leaves)[1]);
        return ag::Sum(ag::MatMul(prod, ag::Transpose(prod)));
      },
      {RandomMat(3, 4, 5, 0.5), RandomMat(4, 2, 6, 0.5)});
}

TEST(GradCheckTest, UnaryOps) {
  Matrix positive = RandomMat(3, 3, 7);
  for (size_t i = 0; i < positive.size(); ++i) {
    positive.at_flat(i) = 0.5 + std::fabs(positive.at_flat(i));
  }
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        ag::Var x = (*leaves)[0];
        ag::Var term = ag::Add(ag::Sigmoid(x), ag::Exp(ag::Scale(x, -0.5)));
        term = ag::Add(term, ag::Log(x));
        term = ag::Add(term, ag::Square(x));
        return ag::Mean(term);
      },
      {positive});
}

TEST(GradCheckTest, ReluSubgradient) {
  // Entries away from 0 so the subgradient is well-defined for FD.
  Matrix x{{1.0, -2.0, 0.5, -0.25}};
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        return ag::Sum(ag::Relu((*leaves)[0]));
      },
      {x});
}

TEST(GradCheckTest, FrobeniusAndWeightedSum) {
  const Matrix w = RandomMat(3, 2, 8);
  CheckGradients(
      [w](ag::Tape* t, std::vector<ag::Var>* leaves,
          const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        ag::Var x = (*leaves)[0];
        return ag::Add(ag::FrobeniusSq(x), ag::WeightedSumElems(x, w));
      },
      {RandomMat(3, 2, 9)});
}

TEST(GradCheckTest, GatherRowsWithDuplicates) {
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        ag::Var g = ag::GatherRows((*leaves)[0], {0, 2, 2, 1});
        return ag::Sum(ag::Square(g));
      },
      {RandomMat(3, 4, 10)});
}

TEST(GradCheckTest, HConcatAndRowwiseDot) {
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        leaves->push_back(t->Leaf(p[1]));
        ag::Var cat = ag::HConcat((*leaves)[0], (*leaves)[1]);
        return ag::Sum(ag::RowwiseDot(cat, cat));
      },
      {RandomMat(4, 2, 11), RandomMat(4, 3, 12)});
}

TEST(GradCheckTest, AddRowBroadcast) {
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        leaves->push_back(t->Leaf(p[1]));
        return ag::Sum(
            ag::Square(ag::AddRowBroadcast((*leaves)[0], (*leaves)[1])));
      },
      {RandomMat(5, 3, 13), RandomMat(1, 3, 14)});
}

TEST(GradCheckTest, MulConstAndScaleAddScalar) {
  const Matrix m = RandomMat(2, 2, 15);
  CheckGradients(
      [m](ag::Tape* t, std::vector<ag::Var>* leaves,
          const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        ag::Var x = ag::AddScalar(ag::Scale((*leaves)[0], 1.7), -0.3);
        return ag::Sum(ag::MulConst(x, m));
      },
      {RandomMat(2, 2, 16)});
}

TEST(GradCheckTest, SigmoidBceSumMatchesCompositeAndGradient) {
  Rng rng(17);
  Matrix logits = Matrix::RandomNormal(4, 1, 2.0, &rng);
  Matrix targets(4, 1);
  for (size_t i = 0; i < 4; ++i) targets(i, 0) = rng.Bernoulli(0.5);
  Matrix weights(4, 1, 0.25);

  // Value equals the composite −Σ w·[y·logσ + (1−y)·log(1−σ)].
  ag::Tape tape;
  ag::Var l = tape.Leaf(logits);
  ag::Var bce = ag::SigmoidBceSum(l, targets, weights);
  double expected = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    const double p = 1.0 / (1.0 + std::exp(-logits(i, 0)));
    expected -= 0.25 * (targets(i, 0) * std::log(p) +
                        (1 - targets(i, 0)) * std::log(1 - p));
  }
  EXPECT_NEAR(bce.value()(0, 0), expected, 1e-10);

  CheckGradients(
      [targets, weights](ag::Tape* t, std::vector<ag::Var>* leaves,
                         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        return ag::SigmoidBceSum((*leaves)[0], targets, weights);
      },
      {logits});
}

TEST(GradCheckTest, GramFrobeniusSqMatchesNaiveValueAndGradient) {
  Matrix a = RandomMat(6, 3, 18, 0.7);
  Matrix b = RandomMat(5, 3, 19, 0.7);
  ag::Tape tape;
  ag::Var va = tape.Leaf(a);
  ag::Var vb = tape.Leaf(b);
  ag::Var gram = ag::GramFrobeniusSq(va, vb);
  const double naive = MatMulTransB(a, b).FrobeniusNormSquared();
  EXPECT_NEAR(gram.value()(0, 0), naive, 1e-9 * (1.0 + naive));

  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        leaves->push_back(t->Leaf(p[1]));
        return ag::GramFrobeniusSq((*leaves)[0], (*leaves)[1]);
      },
      {a, b});
}

// A realistic composite: the full DT-IPS-style step graph.
TEST(GradCheckTest, CompositeMfLossGraph) {
  const std::vector<size_t> users{0, 1, 1, 2};
  const std::vector<size_t> items{1, 0, 2, 1};
  Matrix labels{{1}, {0}, {1}, {0}};
  Matrix weights{{0.5}, {0.0}, {2.0}, {0.25}};
  CheckGradients(
      [&](ag::Tape* t, std::vector<ag::Var>* leaves,
          const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));  // P
        leaves->push_back(t->Leaf(p[1]));  // Q
        ag::Var pu = ag::GatherRows((*leaves)[0], users);
        ag::Var qi = ag::GatherRows((*leaves)[1], items);
        ag::Var probs = ag::Sigmoid(ag::RowwiseDot(pu, qi));
        ag::Var e = ag::Square(ag::Sub(t->Constant(labels), probs));
        ag::Var ips = ag::WeightedSumElems(e, weights);
        ag::Var ortho = ag::FrobeniusSq(
            ag::MatMul(ag::Transpose((*leaves)[0]), (*leaves)[1]));
        return ag::Add(ips, ag::Scale(ortho, 1e-3));
      },
      {RandomMat(3, 3, 20, 0.5), RandomMat(3, 3, 21, 0.5)});
}

// ----------------------------------------------- parameterized shape sweep

class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, GradientHoldsAcrossShapes) {
  const auto [m, k, n] = GetParam();
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        leaves->push_back(t->Leaf(p[1]));
        return ag::Sum(ag::MatMul((*leaves)[0], (*leaves)[1]));
      },
      {RandomMat(m, k, 100 + m, 0.5), RandomMat(k, n, 200 + n, 0.5)});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 3),
                      std::make_tuple(4, 1, 4), std::make_tuple(3, 7, 2),
                      std::make_tuple(6, 2, 6)));

TEST(GradCheckTest, SameVarUsedTwiceInOneOp) {
  // Mul(a, a) must accumulate both partials into the single parent.
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        return ag::Sum(ag::Mul((*leaves)[0], (*leaves)[0]));
      },
      {RandomMat(3, 3, 30)});
}

TEST(GradCheckTest, DeepChainGraph) {
  // 40 chained ops: exercises the reverse sweep over a long tape.
  CheckGradients(
      [](ag::Tape* t, std::vector<ag::Var>* leaves,
         const std::vector<Matrix>& p) {
        leaves->push_back(t->Leaf(p[0]));
        ag::Var x = (*leaves)[0];
        for (int i = 0; i < 40; ++i) {
          x = ag::AddScalar(ag::Scale(ag::Sigmoid(x), 1.1), -0.05);
        }
        return ag::Mean(x);
      },
      {RandomMat(2, 3, 31)},
      /*tol=*/5e-5);
}

TEST(TapeTest, ConstantReceivesNoBackwardCall) {
  ag::Tape tape;
  ag::Var c = tape.Constant(Matrix{{2.0}});
  ag::Var a = tape.Leaf(Matrix{{3.0}});
  ag::Var loss = ag::Sum(ag::Mul(a, c));
  tape.Backward(loss);
  EXPECT_DOUBLE_EQ(a.grad()(0, 0), 2.0);
}

TEST(NumericalGradientTest, QuadraticExact) {
  Matrix x{{2.0, -1.0}};
  auto f = [&]() { return x(0, 0) * x(0, 0) + 3.0 * x(0, 1); };
  Matrix g = ag::NumericalGradient(f, &x);
  EXPECT_NEAR(g(0, 0), 4.0, 1e-6);
  EXPECT_NEAR(g(0, 1), 3.0, 1e-6);
  // x restored after probing.
  EXPECT_DOUBLE_EQ(x(0, 0), 2.0);
}

}  // namespace
}  // namespace dtrec
