#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/checkpoint.h"
#include "core/train_checkpoint.h"
#include "experiments/runner.h"
#include "models/mf_model.h"
#include "synth/mnar_generator.h"
#include "tensor/matrix.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace dtrec {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return;
  while (dirent* entry = ::readdir(dir)) {
    const std::string child_name = entry->d_name;
    if (child_name == "." || child_name == "..") continue;
    const std::string child = path + "/" + child_name;
    if (::unlink(child.c_str()) != 0) RemoveTree(child);
  }
  ::closedir(dir);
  ::rmdir(path.c_str());
}

std::string MakeTempDir(const std::string& name) {
  const std::string dir = TempPath(name);
  // Checkpoints left by a previous run of this binary must not leak in:
  // resume=true would pick up a *completed* checkpoint and skip training.
  RemoveTree(dir);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Every test disarms everything on exit so a failing EXPECT cannot leak
/// an armed site into the next test.
class FaultInjectionTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

RatingDataset SmallDataset(uint64_t seed) {
  MnarGeneratorConfig config;
  config.num_users = 40;
  config.num_items = 40;
  config.base_logit = -1.4;
  config.test_per_user = 8;
  config.seed = seed;
  return MnarGenerator(config).Generate().dataset;
}

TrainConfig SmallConfig() {
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 256;
  config.max_steps_per_epoch = 6;
  config.embedding_dim = 6;
  config.disentangle_dim = 3;
  config.seed = 977;
  return config;
}

// ---------------------------------------------------------------- specs

TEST_F(FaultInjectionTest, SpecStringGrammar) {
  ASSERT_TRUE(failpoint::ArmFromString(
                  "a/site=abort@2*1; b/site=error:disk gone; "
                  "c/site=truncate:16; d/site=flip:7")
                  .ok());
  const std::vector<std::string> armed = failpoint::ArmedSites();
  EXPECT_EQ(armed.size(), 4u);
  EXPECT_TRUE(failpoint::AnyArmed());

  // skip=2, max_hits=1: evaluations 1-2 pass, 3 fires, 4+ pass again.
  EXPECT_NO_THROW(failpoint::internal::Hit("a/site"));
  EXPECT_NO_THROW(failpoint::internal::Hit("a/site"));
  EXPECT_THROW(failpoint::internal::Hit("a/site"), failpoint::FailpointAbort);
  EXPECT_NO_THROW(failpoint::internal::Hit("a/site"));
  EXPECT_EQ(failpoint::HitCount("a/site"), 4);

  const Status injected = failpoint::internal::HitStatus("b/site");
  EXPECT_EQ(injected.code(), StatusCode::kInternal);
  EXPECT_NE(injected.ToString().find("disk gone"), std::string::npos);

  std::string payload(64, 'x');
  failpoint::internal::HitMutate("c/site", payload);
  EXPECT_EQ(payload.size(), 16u);
  payload.assign(64, 'x');
  failpoint::internal::HitMutate("d/site", payload);
  EXPECT_NE(payload[7], 'x');

  failpoint::DisarmAll();
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_EQ(failpoint::HitCount("a/site"), 0);
}

TEST_F(FaultInjectionTest, MalformedSpecArmsNothing) {
  // Parse errors are atomic: the valid first entry must not get armed when
  // a later entry is malformed.
  EXPECT_FALSE(failpoint::ArmFromString("ok/site=abort; bad=bogus").ok());
  EXPECT_FALSE(failpoint::ArmFromString("=abort").ok());
  EXPECT_FALSE(failpoint::ArmFromString("x/site=truncate:abc").ok());
  EXPECT_FALSE(failpoint::ArmFromString("x/site=abort@x").ok());
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FaultInjectionTest, UnarmedSitesAreFree) {
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_NO_THROW(failpoint::internal::Hit("never/armed"));
  EXPECT_TRUE(failpoint::internal::HitStatus("never/armed").ok());
}

// --------------------------------------------- atomic write: old or new

MfModel TestModel(uint64_t seed) {
  MfModelConfig config;
  config.num_users = 7;
  config.num_items = 5;
  config.dim = 4;
  config.seed = seed;
  return MfModel(config);
}

/// Loads `path` and asserts it equals either `old_model` or `new_model`
/// bit for bit — the core "never a torn file" invariant.
void ExpectOldOrNew(const std::string& path, const MfModel& old_model,
                    const MfModel& new_model) {
  MfModel loaded = TestModel(3);
  ASSERT_TRUE(LoadMfModel(path, &loaded).ok());
  const bool is_old = loaded.p() == old_model.p() && loaded.q() == old_model.q();
  const bool is_new = loaded.p() == new_model.p() && loaded.q() == new_model.q();
  EXPECT_TRUE(is_old || is_new) << "torn checkpoint at " << path;
}

TEST_F(FaultInjectionTest, KillDuringSaveLeavesOldOrNewNeverTorn) {
  const MfModel old_model = TestModel(1);
  const MfModel new_model = TestModel(2);

  // Abort sites along the save path, in write order. Before the rename the
  // old file must survive; after it the new one must be complete.
  const struct {
    const char* site;
    bool expect_new;
  } kSites[] = {
      {"checkpoint/before_commit", false},
      {"atomic_file/after_write", false},
      {"atomic_file/after_rename", true},
  };
  for (const auto& [site, expect_new] : kSites) {
    SCOPED_TRACE(site);
    const std::string path = TempPath(std::string("oldnew_") + site[0]);
    ASSERT_TRUE(SaveMfModel(old_model, path).ok());

    failpoint::Arm(site, failpoint::Spec{});
    EXPECT_THROW((void)SaveMfModel(new_model, path),
                 failpoint::FailpointAbort);
    failpoint::DisarmAll();

    ExpectOldOrNew(path, old_model, new_model);
    MfModel loaded = TestModel(3);
    ASSERT_TRUE(LoadMfModel(path, &loaded).ok());
    const bool got_new = loaded.p() == new_model.p();
    EXPECT_EQ(got_new, expect_new);
  }
}

TEST_F(FaultInjectionTest, InjectedIoErrorSurfacesAndKeepsOldFile) {
  const MfModel old_model = TestModel(1);
  const MfModel new_model = TestModel(2);
  const std::string path = TempPath("io_error.ckpt");
  ASSERT_TRUE(SaveMfModel(old_model, path).ok());

  failpoint::Spec spec;
  spec.action = failpoint::Action::kError;
  spec.message = "simulated ENOSPC";
  failpoint::Arm("atomic_file/before_write", spec);
  const Status st = SaveMfModel(new_model, path);
  failpoint::DisarmAll();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("simulated ENOSPC"), std::string::npos);

  MfModel loaded = TestModel(3);
  ASSERT_TRUE(LoadMfModel(path, &loaded).ok());
  EXPECT_TRUE(loaded.p() == old_model.p());
}

TEST_F(FaultInjectionTest, PayloadCorruptionIsCaughtByChecksumAtLoad) {
  const MfModel model = TestModel(1);

  failpoint::Spec flip;
  flip.action = failpoint::Action::kFlip;
  flip.arg = 40;  // lands inside the double payload
  failpoint::Arm("atomic_file/payload", flip);
  const std::string flip_path = TempPath("flip.ckpt");
  ASSERT_TRUE(SaveMfModel(model, flip_path).ok());
  failpoint::DisarmAll();
  MfModel loaded = TestModel(3);
  const Status flip_st = LoadMfModel(flip_path, &loaded);
  EXPECT_FALSE(flip_st.ok());
  EXPECT_NE(flip_st.ToString().find("checksum"), std::string::npos);

  failpoint::Spec truncate;
  truncate.action = failpoint::Action::kTruncate;
  truncate.arg = 25;
  failpoint::Arm("atomic_file/payload", truncate);
  const std::string trunc_path = TempPath("trunc.ckpt");
  ASSERT_TRUE(SaveMfModel(model, trunc_path).ok());
  failpoint::DisarmAll();
  EXPECT_FALSE(LoadMfModel(trunc_path, &loaded).ok());
}

// ------------------------------------------------- crash-equivalence

/// Trains `method` uninterrupted, then again with a simulated SIGKILL at
/// `kill_site` (skipping `kill_skip` evaluations), resumes in a *fresh*
/// trainer instance (as a restarted process would), and requires the
/// resumed parameters to be bit-identical to the uninterrupted run.
void RunCrashEquivalence(const std::string& method,
                         const std::string& kill_site, int kill_skip,
                         const std::string& dir_name) {
  const RatingDataset dataset = SmallDataset(11);
  const TrainConfig config = SmallConfig();

  auto reference = std::move(MakeTrainer(method, config).value());
  ASSERT_TRUE(reference->Fit(dataset).ok());
  const Matrix want =
      reference->PredictFullMatrix(dataset.num_users(), dataset.num_items());

  const std::string dir = MakeTempDir(dir_name);
  FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;

  auto victim = std::move(MakeTrainer(method, config).value());
  failpoint::Spec kill;
  kill.skip = kill_skip;
  failpoint::Arm(kill_site, kill);
  EXPECT_THROW((void)victim->Fit(dataset, options),
               failpoint::FailpointAbort);
  failpoint::DisarmAll();

  // The interrupted run must have left a loadable (never torn) checkpoint.
  auto survivor = std::move(MakeTrainer(method, config).value());
  FitOptions resume = options;
  resume.resume = true;
  ASSERT_TRUE(survivor->Fit(dataset, resume).ok());

  const Matrix got =
      survivor->PredictFullMatrix(dataset.num_users(), dataset.num_items());
  EXPECT_TRUE(got == want)
      << method << " resumed after a kill at " << kill_site
      << " did not reproduce the uninterrupted parameters";
}

TEST_F(FaultInjectionTest, DtIpsResumeIsBitIdentical) {
  RunCrashEquivalence("DT-IPS", "train/epoch_begin", 3, "ce_dtips");
}

TEST_F(FaultInjectionTest, DtDrResumeIsBitIdentical) {
  // DT-DR exercises the multi-group checkpoint (imputation model + its own
  // optimizer slots travel in a second CheckpointGroup).
  RunCrashEquivalence("DT-DR", "train/epoch_begin", 4, "ce_dtdr");
}

TEST_F(FaultInjectionTest, MrResumeIsBitIdentical) {
  RunCrashEquivalence("MR", "train/epoch_begin", 2, "ce_mr");
}

TEST_F(FaultInjectionTest, KillInsideCheckpointSaveStillResumes) {
  // Dying *while writing* the epoch-3 checkpoint leaves epoch-2's file
  // intact (atomic write), so resume restarts from epoch 2 and must still
  // converge to the identical parameters.
  RunCrashEquivalence("DT-IPS", "checkpoint/after_header", 2, "ce_save");
}

TEST_F(FaultInjectionTest, ResumeAfterCompletionIsANoOp) {
  const RatingDataset dataset = SmallDataset(5);
  const std::string dir = MakeTempDir("ce_done");
  FitOptions options;
  options.checkpoint_dir = dir;

  auto first = std::move(MakeTrainer("DT-IPS", SmallConfig()).value());
  ASSERT_TRUE(first->Fit(dataset, options).ok());
  const Matrix want =
      first->PredictFullMatrix(dataset.num_users(), dataset.num_items());

  // The finished checkpoint records next_epoch == epochs: the resumed run
  // enters the loop with nothing left to do and reproduces the parameters.
  auto second = std::move(MakeTrainer("DT-IPS", SmallConfig()).value());
  FitOptions resume = options;
  resume.resume = true;
  ASSERT_TRUE(second->Fit(dataset, resume).ok());
  EXPECT_TRUE(second->PredictFullMatrix(dataset.num_users(),
                                        dataset.num_items()) == want);
}

TEST_F(FaultInjectionTest, ResumeRejectsForeignAndCorruptCheckpoints) {
  const RatingDataset dataset = SmallDataset(5);
  const std::string dir = MakeTempDir("ce_reject");
  FitOptions options;
  options.checkpoint_dir = dir;

  auto mf = std::move(MakeTrainer("MF", SmallConfig()).value());
  ASSERT_TRUE(mf->Fit(dataset, options).ok());

  // Another method's checkpoint must be refused, not silently loaded.
  auto ips = std::move(MakeTrainer("IPS", SmallConfig()).value());
  FitOptions resume = options;
  resume.resume = true;
  const Status foreign = ips->Fit(dataset, resume);
  EXPECT_EQ(foreign.code(), StatusCode::kFailedPrecondition);

  // A corrupt checkpoint must surface as an error, not train from scratch.
  const std::string ckpt = dir + "/train_state.ckpt";
  std::string contents;
  ASSERT_TRUE(ReadFile(ckpt, &contents).ok());
  contents[contents.size() / 2] ^= static_cast<char>(0xFF);
  ASSERT_TRUE(WriteFileAtomic(ckpt, contents).ok());
  auto mf2 = std::move(MakeTrainer("MF", SmallConfig()).value());
  EXPECT_FALSE(mf2->Fit(dataset, resume).ok());
}

TEST_F(FaultInjectionTest, SweepRetriesThroughSimulatedCrash) {
  DatasetProfile profile;
  profile.train = SmallConfig();
  profile.ranking_k = 5;
  auto factory = [](uint64_t seed) { return SmallDataset(seed); };

  ComparisonOptions plain;
  plain.quiet = true;
  const std::vector<MethodResult> want =
      RunComparison({"DT-IPS"}, factory, profile, {1, 2}, plain);
  ASSERT_EQ(want.size(), 1u);

  ComparisonOptions crashy = plain;
  crashy.checkpoint_root = MakeTempDir("sweep_root");
  crashy.max_retries = 2;
  // One simulated SIGKILL somewhere in the middle of the two-seed sweep;
  // the runner retries with resume and the results must be unchanged.
  failpoint::Spec kill;
  kill.skip = 7;
  kill.max_hits = 1;
  failpoint::Arm("train/epoch_begin", kill);
  const std::vector<MethodResult> got =
      RunComparison({"DT-IPS"}, factory, profile, {1, 2}, crashy);
  EXPECT_GT(failpoint::HitCount("train/epoch_begin"), 7);  // it did fire
  failpoint::DisarmAll();

  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].auc_samples.size(), want[0].auc_samples.size());
  for (size_t i = 0; i < want[0].auc_samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[0].auc_samples[i], want[0].auc_samples[i]);
  }
}

TEST_F(FaultInjectionTest, RngStateRoundTrip) {
  Rng rng(123);
  (void)rng.Normal();  // populate the cached-normal half of the state
  const Rng::State state = rng.state();
  std::vector<double> want;
  for (int i = 0; i < 8; ++i) want.push_back(rng.Normal());

  Rng other(999);
  other.set_state(state);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(other.Normal(), want[i]);
}

}  // namespace
}  // namespace dtrec
