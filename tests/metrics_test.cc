#include <gtest/gtest.h>

#include <cmath>

#include "metrics/pointwise.h"
#include "metrics/ranking.h"
#include "metrics/stats.h"
#include "metrics/ttest.h"

namespace dtrec {
namespace {

// -------------------------------------------------------------- pointwise

TEST(PointwiseTest, MseMaeHandComputed) {
  Matrix pred{{1.0, 2.0}};
  Matrix target{{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(MeanSquaredError(pred, target), (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(pred, target), (1.0 + 2.0) / 2.0);
}

TEST(PointwiseTest, VectorOverloads) {
  EXPECT_DOUBLE_EQ(MeanSquaredError(std::vector<double>{1, 3},
                                    std::vector<double>{1, 1}),
                   2.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(std::vector<double>{1, 3},
                                     std::vector<double>{1, 1}),
                   1.0);
}

TEST(PointwiseTest, MaskedMse) {
  Matrix pred{{1.0, 5.0}};
  Matrix target{{0.0, 0.0}};
  Matrix mask{{1.0, 0.0}};
  EXPECT_DOUBLE_EQ(MaskedMeanSquaredError(pred, target, mask), 1.0);
}

TEST(PointwiseTest, BceAndEce) {
  const std::vector<double> prob{0.9, 0.1};
  const std::vector<double> label{1.0, 0.0};
  EXPECT_NEAR(MeanBinaryCrossEntropy(prob, label), -std::log(0.9), 1e-12);

  // Perfectly calibrated predictions -> ECE 0 within a bin.
  const std::vector<double> p2{0.25, 0.25, 0.25, 0.25};
  const std::vector<double> l2{1, 0, 0, 0};
  EXPECT_NEAR(ExpectedCalibrationError(p2, l2, 4), 0.0, 1e-12);
  // Fully miscalibrated.
  const std::vector<double> p3{0.99, 0.99};
  const std::vector<double> l3{0, 0};
  EXPECT_NEAR(ExpectedCalibrationError(p3, l3, 10), 0.99, 1e-12);
}

// ---------------------------------------------------------------- ranking

TEST(AucTest, PerfectAndInverted) {
  EXPECT_DOUBLE_EQ(GlobalAuc({0.1, 0.9}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(GlobalAuc({0.9, 0.1}, {0.0, 1.0}), 0.0);
}

TEST(AucTest, TiesCountHalf) {
  EXPECT_DOUBLE_EQ(GlobalAuc({0.5, 0.5}, {0.0, 1.0}), 0.5);
  // 1 pos vs 2 neg, one tie: (1 + 0.5)/2.
  EXPECT_DOUBLE_EQ(GlobalAuc({0.5, 0.2, 0.5}, {1.0, 0.0, 0.0}), 0.75);
}

TEST(AucTest, HandComputed) {
  // scores pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won = (0.8>0.6, 0.8>0.2,
  // 0.4<0.6, 0.4>0.2) = 3 of 4.
  EXPECT_DOUBLE_EQ(GlobalAuc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, DegenerateInputReturnsNaNInsteadOfAborting) {
  // Regression: the seed CHECK-aborted on all-positive / all-negative
  // labels, so one degenerate test split killed a whole RunComparison.
  EXPECT_TRUE(std::isnan(GlobalAuc({0.1, 0.9}, {1.0, 1.0})));
  EXPECT_TRUE(std::isnan(GlobalAuc({0.1, 0.9}, {0.0, 0.0})));
  EXPECT_TRUE(std::isnan(GlobalAuc({0.5}, {1.0})));
}

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(NdcgAtK({0.9, 0.8, 0.1}, {1, 1, 0}, 2), 1.0);
}

TEST(NdcgTest, HandComputed) {
  // One positive ranked 2nd of 3, K=3: DCG = 1/log2(3), IDCG = 1.
  EXPECT_NEAR(NdcgAtK({0.9, 0.8, 0.1}, {0, 1, 0}, 3),
              1.0 / std::log2(3.0), 1e-12);
}

TEST(NdcgTest, NoPositivesGivesZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({0.9, 0.1}, {0, 0}, 2), 0.0);
}

TEST(RecallTest, HandComputed) {
  // 2 positives, K=1, best positive ranked first: 1/min(1,2) = 1.
  EXPECT_DOUBLE_EQ(RecallAtK({0.9, 0.8, 0.1}, {1, 1, 0}, 1), 1.0);
  // positive ranked last, K=1 -> 0.
  EXPECT_DOUBLE_EQ(RecallAtK({0.9, 0.8, 0.1}, {0, 0, 1}, 1), 0.0);
  // 2 positives, 1 in top-2: 1/min(2,2) = 0.5.
  EXPECT_DOUBLE_EQ(RecallAtK({0.9, 0.8, 0.7, 0.1}, {1, 0, 0, 1}, 2), 0.5);
}

TEST(RankingMetricsTest, GroupsByUser) {
  std::vector<RatingTriple> test{
      {0, 0, 1.0}, {0, 1, 0.0},  // user 0: pos scored higher
      {1, 0, 0.0}, {1, 1, 1.0},  // user 1: pos scored lower
      {2, 0, 0.0}, {2, 1, 0.0},  // user 2: no positives (skipped)
  };
  const std::vector<double> pred{0.9, 0.2, 0.8, 0.3, 0.5, 0.5};
  // Labels are pre-binarized {0, 1}, so the relevance cut is 0.5.
  const RankingMetrics m =
      ComputeRankingMetrics(test, pred, 1, /*positive_threshold=*/0.5);
  EXPECT_EQ(m.users_scored, 2u);
  EXPECT_EQ(m.users_skipped, 1u);
  EXPECT_DOUBLE_EQ(m.recall_at_k, 0.5);  // user0: 1, user1: 0
  // AUC over all: pos scores {0.9, 0.3}, negs {0.2, 0.8, 0.5, 0.5}.
  // wins: 0.9 beats all 4; 0.3 beats 0.2 only -> 5/8.
  EXPECT_DOUBLE_EQ(m.auc, 5.0 / 8.0);
}

TEST(RankingMetricsTest, FiveStarRatingsUseThresholdNotHalf) {
  // Regression: the seed pushed raw 1–5 star ratings into the binary
  // `> 0.5` helpers, making every triple "positive" (and CHECK-aborting
  // the AUC). With the explicit threshold, only ratings >= 4 count.
  std::vector<RatingTriple> test{
      {0, 0, 5.0}, {0, 1, 2.0},  // user 0: the 5-star ranked first
      {1, 0, 4.0}, {1, 1, 3.0},  // user 1: the 4-star ranked second
  };
  const std::vector<double> pred{0.9, 0.2, 0.3, 0.8};
  const RankingMetrics m =
      ComputeRankingMetrics(test, pred, 1, /*positive_threshold=*/4.0);
  EXPECT_EQ(m.users_scored, 2u);
  EXPECT_EQ(m.users_skipped, 0u);
  // Positives {0.9, 0.3} vs negatives {0.2, 0.8}: wins = (0.9>0.2,
  // 0.9>0.8, 0.3>0.2, 0.3<0.8) = 3 of 4.
  EXPECT_DOUBLE_EQ(m.auc, 0.75);
  EXPECT_DOUBLE_EQ(m.recall_at_k, 0.5);  // user0 hit, user1 miss
}

TEST(RankingMetricsTest, DegenerateSplitYieldsNaNAucAndSkipCounts) {
  // All-negative split: no abort; AUC is NaN, every user is counted as
  // skipped, and the rank metrics default to zero.
  std::vector<RatingTriple> test{{0, 0, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}};
  const std::vector<double> pred{0.4, 0.6, 0.5};
  const RankingMetrics m =
      ComputeRankingMetrics(test, pred, 1, /*positive_threshold=*/4.0);
  EXPECT_TRUE(std::isnan(m.auc));
  EXPECT_EQ(m.users_scored, 0u);
  EXPECT_EQ(m.users_skipped, 2u);
  EXPECT_DOUBLE_EQ(m.ndcg_at_k, 0.0);
  EXPECT_DOUBLE_EQ(m.recall_at_k, 0.0);
}

TEST(AveragePrecisionTest, HandComputed) {
  // positives ranked 1st and 3rd of 4, K=4:
  // AP = (1/1 + 2/3)/2 = 0.8333...
  EXPECT_NEAR(AveragePrecisionAtK({0.9, 0.5, 0.4, 0.1}, {1, 0, 1, 0}, 4),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({0.9, 0.1}, {0, 0}, 2), 0.0);
  // K=1 with the positive on top: AP=1.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({0.9, 0.1}, {1, 0}, 1), 1.0);
}

TEST(ReciprocalRankTest, HandComputed) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({0.9, 0.5, 0.1}, {0, 0, 1}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({0.9, 0.5}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({0.9, 0.5}, {0, 0}), 0.0);
}

TEST(CatalogCoverageTest, CountsDistinctTopKItems) {
  // Two users, K=1: user 0's top item is item 7, user 1's top is item 7
  // as well -> coverage 1/10.
  std::vector<RatingTriple> test{
      {0, 7, 1.0}, {0, 2, 0.0}, {1, 7, 1.0}, {1, 3, 0.0}};
  const std::vector<double> pred{0.9, 0.1, 0.8, 0.2};
  EXPECT_DOUBLE_EQ(CatalogCoverageAtK(test, pred, 1, 10), 0.1);
  // K=2 covers items {7,2,3} -> 0.3.
  EXPECT_DOUBLE_EQ(CatalogCoverageAtK(test, pred, 2, 10), 0.3);
}

// ------------------------------------------------------------------ stats

TEST(StatsTest, MeanStdHandComputed) {
  const MeanStd ms = ComputeMeanStd({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_DOUBLE_EQ(ms.std, 1.0);
  EXPECT_EQ(ms.n, 3u);
  EXPECT_EQ(ms.ToString(2), "2.00±1.00");
}

TEST(StatsTest, EmptyAndSingle) {
  EXPECT_EQ(ComputeMeanStd({}).n, 0u);
  const MeanStd single = ComputeMeanStd({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
}

TEST(RunningStatTest, MatchesBatchComputation) {
  RunningStat stat;
  const std::vector<double> values{1.5, -2.0, 4.0, 0.0, 3.5};
  for (double v : values) stat.Add(v);
  const MeanStd batch = ComputeMeanStd(values);
  EXPECT_NEAR(stat.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(stat.stddev(), batch.std, 1e-12);
  EXPECT_EQ(stat.count(), 5u);
}

// ------------------------------------------------------------------ ttest

TEST(IncompleteBetaTest, KnownValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.37), 0.37, 1e-10);
  // I_x(2,2) = 3x² − 2x³.
  const double x = 0.4;
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, x),
              3 * x * x - 2 * x * x * x, 1e-10);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(StudentTCdfTest, SymmetryAndTableValues) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  // Classic table: t=2.447 at dof=6 is the 97.5th percentile.
  EXPECT_NEAR(StudentTCdf(2.447, 6.0), 0.975, 5e-4);
  // t=1.812 at dof=10 is the 95th percentile.
  EXPECT_NEAR(StudentTCdf(1.812, 10.0), 0.95, 5e-4);
  EXPECT_NEAR(StudentTCdf(-2.447, 6.0), 0.025, 5e-4);
}

TEST(PairedTTestTest, SizeAndCountErrors) {
  EXPECT_FALSE(PairedTTest({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(PairedTTest({1.0}, {1.0}).ok());
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {1.0, 2.0}).ok());  // zero diffs
}

TEST(PairedTTestTest, ConstantNonzeroDifference) {
  const auto res = PairedTTest({2.0, 3.0, 4.0}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(res.value().p_two_sided, 0.0);
  EXPECT_TRUE(res.value().significant());
}

TEST(PairedTTestTest, HandComputedStatistic) {
  // diffs = {1, 2, 3}: mean 2, sd 1, t = 2/(1/√3) = 2√3 ≈ 3.464, dof 2.
  const auto res = PairedTTest({2.0, 4.0, 6.0}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res.value().t_statistic, 2.0 * std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(res.value().degrees_of_freedom, 2.0, 1e-12);
  // p (two-sided) for t=3.464, dof 2 ≈ 0.0742 — not significant at 0.05.
  EXPECT_NEAR(res.value().p_two_sided, 0.0742, 2e-3);
  EXPECT_FALSE(res.value().significant());
}

TEST(PairedTTestTest, ClearSeparationIsSignificant) {
  const auto res = PairedTTest({0.74, 0.75, 0.73, 0.74, 0.75},
                               {0.70, 0.71, 0.70, 0.69, 0.70});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().significant());
  EXPECT_LT(res.value().p_one_sided, 0.01);
}

}  // namespace
}  // namespace dtrec
