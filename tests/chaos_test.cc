// Chaos suite: every serve-path failpoint armed during multi-threaded
// traffic replay. Exists only on -DDTREC_FAILPOINTS=ON builds (see
// tests/CMakeLists.txt) and runs in the TSan CI leg: the properties under
// test are exactly the ones a racing fault can break —
//
//   * no deadlock: every Submit() future resolves even while admission,
//     scoring, cache fills, and model swaps are all failing;
//   * exactly one ladder rung per request, with the (rung, reason, slate)
//     triple internally consistent;
//   * no torn stats: a client-side tally of responses reconciles with the
//     server's counters to the unit, and the ladder invariants hold;
//   * breaker ledgers reconcile with the injected fault counts: each
//     armed site's fires (clamp(hits − skip, 0, max) — the registry
//     counts under one lock) equal the guarded breaker's RecordFailure
//     total.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/recommend_server.h"
#include "serve/server_stats.h"
#include "tensor/matrix.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace dtrec::serve {
namespace {

ServingModel HealthyModel(size_t users, size_t items, size_t dim,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<double> popularity(items);
  for (size_t i = 0; i < items; ++i) {
    popularity[i] = static_cast<double>(items - i);
  }
  auto model = ServingModel::FromFactors(
      Matrix::RandomNormal(users, dim, 1.0, &rng),
      Matrix::RandomNormal(items, dim, 1.0, &rng), Matrix(), Matrix(),
      std::move(popularity));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

/// Exact fires of an armed site: the registry evaluates under one lock,
/// so every evaluation past `skip` fires until `max_hits` is exhausted.
uint64_t Fired(int hits, int skip, int max_hits) {
  const int past_skip = std::max(hits - skip, 0);
  return static_cast<uint64_t>(
      max_hits >= 0 ? std::min(past_skip, max_hits) : past_skip);
}

/// Disarms everything even when an ASSERT aborts a test body early — a
/// leaked armed site would poison every later test in the process.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

/// Client-side response tally, compared against the server's own counters
/// to detect torn stats under concurrent fault unwinding.
struct Tally {
  uint64_t full = 0;
  uint64_t cached = 0;
  uint64_t popularity = 0;
  uint64_t shed = 0;

  void Count(const Recommendation& rec) {
    switch (rec.rung) {
      case ServeRung::kFullTopK:
        ++full;
        break;
      case ServeRung::kCachedSlate:
        ++cached;
        break;
      case ServeRung::kPopularity:
        ++popularity;
        break;
      case ServeRung::kShed:
        ++shed;
        break;
    }
  }

  void Merge(const Tally& other) {
    full += other.full;
    cached += other.cached;
    popularity += other.popularity;
    shed += other.shed;
  }
};

/// Every response must sit on exactly one rung with a consistent
/// (rung, reason, slate) triple. `deadline_disabled` sharpens the
/// popularity case: with no deadline, the only legal reason is the
/// breaker/scoring path.
void CheckLadderTriple(const Recommendation& rec, bool deadline_disabled) {
  switch (rec.rung) {
    case ServeRung::kFullTopK:
    case ServeRung::kCachedSlate:
      EXPECT_EQ(rec.reason, DegradeReason::kNone);
      EXPECT_FALSE(rec.items.empty());
      EXPECT_FALSE(rec.shed());
      EXPECT_FALSE(rec.degraded());
      break;
    case ServeRung::kPopularity:
      if (deadline_disabled) {
        EXPECT_EQ(rec.reason, DegradeReason::kBreakerOpen);
      } else {
        EXPECT_TRUE(rec.reason == DegradeReason::kBreakerOpen ||
                    rec.reason == DegradeReason::kDeadlineMiss);
      }
      EXPECT_FALSE(rec.items.empty());
      EXPECT_TRUE(rec.degraded());
      EXPECT_FALSE(rec.shed());
      break;
    case ServeRung::kShed:
      EXPECT_EQ(rec.reason, DegradeReason::kQueueShed);
      EXPECT_TRUE(rec.items.empty());
      EXPECT_TRUE(rec.shed());
      break;
  }
}

void CheckStatsInvariants(const ServerStats& stats) {
  EXPECT_EQ(stats.requests, stats.rung_full + stats.rung_cached +
                                stats.rung_popularity + stats.rung_shed);
  EXPECT_EQ(stats.rung_popularity, stats.deadline_miss + stats.breaker_open);
  EXPECT_EQ(stats.rung_shed, stats.queue_shed);
}

// The chaos ladder comparisons below lean on numeric rung order.
static_assert(ServeRung::kFullTopK < ServeRung::kCachedSlate &&
                  ServeRung::kCachedSlate < ServeRung::kPopularity &&
                  ServeRung::kPopularity < ServeRung::kShed,
              "ladder order must be numeric order");

// ----------------------------------------------------------- fault storm

/// The headline storm: all four serve failpoints armed at once, client
/// threads replaying traffic through Submit() while a swapper thread
/// publishes (and has rejected) new model generations. Parameterised on
/// the top-K sweep so the pruned early-exit path faces the same faults
/// as the dense one (the mode only changes how a fresh slate is scored —
/// every ladder/breaker invariant must hold identically).
void RunAllFailpointsStorm(TopKMode mode) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 300;
  constexpr uint64_t kRequests = kClients * kPerClient;
  constexpr int kAdmitSkip = 50, kAdmitMax = 100;
  constexpr int kScoreSkip = 40, kScoreMax = 60;
  constexpr int kFillSkip = 30, kFillMax = 80;
  constexpr int kSwapSkip = 2, kSwapMax = 10;

  failpoint::Spec abort_spec;
  abort_spec.action = failpoint::Action::kAbort;
  abort_spec.skip = kAdmitSkip;
  abort_spec.max_hits = kAdmitMax;
  failpoint::Arm("serve/queue_admit", abort_spec);
  abort_spec.skip = kScoreSkip;
  abort_spec.max_hits = kScoreMax;
  failpoint::Arm("serve/score", abort_spec);
  abort_spec.skip = kFillSkip;
  abort_spec.max_hits = kFillMax;
  failpoint::Arm("serve/cache_fill", abort_spec);
  failpoint::Spec swap_spec;
  swap_spec.action = failpoint::Action::kError;
  swap_spec.message = "injected swap probe failure";
  swap_spec.skip = kSwapSkip;
  swap_spec.max_hits = kSwapMax;
  failpoint::Arm("serve/swap", swap_spec);

  obs::MetricsRegistry metrics;
  ModelRegistry registry(&metrics, "chaos.registry");
  registry.Publish(HealthyModel(64, 128, 8, /*seed=*/1));

  ServerConfig config;
  config.num_threads = 3;
  config.default_k = 10;
  config.default_deadline_ms = -1;  // reasons come from faults alone
  config.cache.capacity = 256;
  config.cache.mode = mode;
  config.metrics = &metrics;
  config.metrics_prefix = "chaos.serve";
  RecommendServer server(&registry, config);

  std::atomic<bool> stop_swapping{false};
  uint64_t swap_attempts = 0;
  std::thread swapper([&] {
    for (uint64_t seed = 2; !stop_swapping.load(); ++seed) {
      (void)registry.TryPublish(HealthyModel(64, 128, 8, seed));
      ++swap_attempts;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> clients;
  std::vector<Tally> tallies(kClients);
  std::atomic<uint64_t> resolved{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      for (int r = 0; r < kPerClient; ++r) {
        Recommendation rec =
            server.Submit({.user = rng.UniformIndex(64)}).get();
        CheckLadderTriple(rec, /*deadline_disabled=*/true);
        tallies[c].Count(rec);
        resolved.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_swapping.store(true);
  swapper.join();

  // No deadlock / lost futures: every submitted request came back.
  EXPECT_EQ(resolved.load(), kRequests);

  // Read the fault ledgers before TearDown disarms (and zeroes) them.
  const uint64_t admit_fired = Fired(failpoint::HitCount("serve/queue_admit"),
                                     kAdmitSkip, kAdmitMax);
  const uint64_t score_fired =
      Fired(failpoint::HitCount("serve/score"), kScoreSkip, kScoreMax);
  const uint64_t fill_fired = Fired(failpoint::HitCount("serve/cache_fill"),
                                    kFillSkip, kFillMax);
  const uint64_t swap_fired =
      Fired(failpoint::HitCount("serve/swap"), kSwapSkip, kSwapMax);

  // Torn-stats check: the client-side tally matches the server's counters
  // to the unit, and the ladder invariants hold.
  Tally total;
  for (const Tally& t : tallies) total.Merge(t);
  const ServerStats stats = server.Snapshot();
  CheckStatsInvariants(stats);
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.rung_full, total.full);
  EXPECT_EQ(stats.rung_cached, total.cached);
  EXPECT_EQ(stats.rung_popularity, total.popularity);
  EXPECT_EQ(stats.rung_shed, total.shed);
  EXPECT_EQ(stats.deadline_miss, 0u);

  // Breaker ledgers reconcile exactly with the injected fault counts:
  // admission is unconfigured and the pool queue unbounded, so the only
  // shed source is the armed failpoint; every score/fill abort is charged
  // to its breaker once; every injected probe error is one swap-breaker
  // failure (the swapper only offers models that would otherwise pass).
  EXPECT_EQ(stats.queue_shed, admit_fired);
  EXPECT_EQ(server.scorer_breaker().failures(), score_fired);
  EXPECT_EQ(server.cache_breaker().failures(), fill_fired);
  EXPECT_EQ(registry.swap_breaker().failures(), swap_fired);
  EXPECT_GT(swap_attempts, 0u);

  // The storm was actually a storm: each injected fault class fired.
  EXPECT_GT(admit_fired, 0u);
  EXPECT_GT(score_fired, 0u);
  EXPECT_GT(swap_fired, 0u);
}

TEST_F(ChaosTest, AllServeFailpointsArmedDuringConcurrentReplay) {
  RunAllFailpointsStorm(TopKMode::kDense);
}

TEST_F(ChaosTest, FailpointStormLadderIsModeAgnosticUnderPrunedTopK) {
  RunAllFailpointsStorm(TopKMode::kPruned);
}

// ----------------------------------------------- deterministic ladder walk

/// Single-threaded, fake-clock walk of the scorer-breaker ladder: faults
/// burn the retry, trip the breaker, traffic degrades in ladder order,
/// and the half-open probe restores full service once the fault clears.
TEST_F(ChaosTest, ScorerBreakerTripsThenRecoversInLadderOrder) {
  auto now = std::make_shared<std::atomic<double>>(0.0);

  obs::MetricsRegistry metrics;
  ModelRegistry registry(&metrics, "chaosdet.registry");
  registry.Publish(HealthyModel(8, 32, 4, /*seed=*/1));

  ServerConfig config;
  config.num_threads = 1;
  config.default_deadline_ms = -1;
  config.cache.capacity = 0;  // isolate the scorer path
  config.breaker.failure_threshold = 2;
  config.breaker.initial_backoff_ms = 100.0;
  config.breaker_clock = [now] { return now->load(); };
  config.metrics = &metrics;
  config.metrics_prefix = "chaosdet.serve";
  RecommendServer server(&registry, config);

  failpoint::Spec abort_spec;
  abort_spec.action = failpoint::Action::kAbort;
  failpoint::Arm("serve/score", abort_spec);

  // Request 1: fault → budgeted retry → fault again → breaker trips at
  // the threshold and the request lands on the popularity rung.
  Recommendation rec = server.Recommend({.user = 0});
  EXPECT_EQ(rec.rung, ServeRung::kPopularity);
  EXPECT_EQ(rec.reason, DegradeReason::kBreakerOpen);
  EXPECT_EQ(failpoint::HitCount("serve/score"), 2);
  EXPECT_EQ(server.scorer_breaker().state(), CircuitBreaker::State::kOpen);

  // Requests 2–4: breaker open → popularity fallback without ever
  // touching the scorer (the failpoint hit count stays frozen).
  for (int r = 0; r < 3; ++r) {
    rec = server.Recommend({.user = 1});
    EXPECT_EQ(rec.rung, ServeRung::kPopularity);
    EXPECT_EQ(rec.reason, DegradeReason::kBreakerOpen);
  }
  EXPECT_EQ(failpoint::HitCount("serve/score"), 2);

  const ServerStats mid = server.Snapshot();
  CheckStatsInvariants(mid);
  EXPECT_EQ(mid.rung_popularity, 4u);
  EXPECT_EQ(mid.breaker_open, 4u);
  EXPECT_EQ(mid.retries, 1u);
  EXPECT_EQ(server.scorer_breaker().failures(), 2u);

  // Fault clears, backoff elapses: the half-open probe succeeds and full
  // top-K service resumes — the ladder is walked back up.
  failpoint::DisarmAll();
  now->store(100e3 + 1.0);
  rec = server.Recommend({.user = 2});
  EXPECT_EQ(rec.rung, ServeRung::kFullTopK);
  EXPECT_EQ(rec.reason, DegradeReason::kNone);
  EXPECT_EQ(server.scorer_breaker().state(), CircuitBreaker::State::kClosed);
}

// --------------------------------------------------------- per-site drills

TEST_F(ChaosTest, QueueAdmitFaultShedsEveryRequestWithoutWork) {
  obs::MetricsRegistry metrics;
  ModelRegistry registry(&metrics, "chaosq.registry");
  registry.Publish(HealthyModel(8, 32, 4, /*seed=*/1));

  ServerConfig config;
  config.num_threads = 2;
  config.metrics = &metrics;
  config.metrics_prefix = "chaosq.serve";
  RecommendServer server(&registry, config);

  failpoint::Spec abort_spec;
  abort_spec.action = failpoint::Action::kAbort;
  failpoint::Arm("serve/queue_admit", abort_spec);

  for (int r = 0; r < 100; ++r) {
    Recommendation rec = server.Submit({.user = 0}).get();
    EXPECT_EQ(rec.rung, ServeRung::kShed);
    EXPECT_EQ(rec.reason, DegradeReason::kQueueShed);
    EXPECT_TRUE(rec.items.empty());
  }
  EXPECT_EQ(failpoint::HitCount("serve/queue_admit"), 100);

  const ServerStats stats = server.Snapshot();
  CheckStatsInvariants(stats);
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_EQ(stats.rung_shed, 100u);
  EXPECT_EQ(stats.queue_shed, 100u);
  EXPECT_EQ(stats.rung_full, 0u) << "shed requests must not reach scoring";
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
}

TEST_F(ChaosTest, CacheFillFaultsAreInvisibleToClients) {
  obs::MetricsRegistry metrics;
  ModelRegistry registry(&metrics, "chaosc.registry");
  registry.Publish(HealthyModel(32, 32, 4, /*seed=*/1));

  ServerConfig config;
  config.num_threads = 1;
  config.default_deadline_ms = -1;
  config.cache.capacity = 64;
  config.metrics = &metrics;
  config.metrics_prefix = "chaosc.serve";
  RecommendServer server(&registry, config);

  failpoint::Spec abort_spec;
  abort_spec.action = failpoint::Action::kAbort;
  failpoint::Arm("serve/cache_fill", abort_spec);

  // Distinct users: every request misses the cache, scores fresh, and
  // fails the fill — the response stays full top-K, only the cache
  // dependency is charged.
  for (size_t u = 0; u < 32; ++u) {
    Recommendation rec = server.Recommend({.user = u});
    EXPECT_EQ(rec.rung, ServeRung::kFullTopK);
    EXPECT_EQ(rec.reason, DegradeReason::kNone);
    EXPECT_FALSE(rec.items.empty());
  }

  const uint64_t fill_fired =
      Fired(failpoint::HitCount("serve/cache_fill"), 0, -1);
  const ServerStats stats = server.Snapshot();
  CheckStatsInvariants(stats);
  EXPECT_EQ(stats.rung_full, 32u);
  EXPECT_EQ(stats.cache_hits, 0u) << "aborted fills must not be committed";
  EXPECT_EQ(server.cache_breaker().failures(), fill_fired);
  EXPECT_GT(fill_fired, 0u);
  // Fill failures eventually open the cache breaker; once open, requests
  // skip the cache entirely (no lookup, no fill) yet still serve full
  // slates — degraded cache, undegraded responses.
  if (server.cache_breaker().state() == CircuitBreaker::State::kOpen) {
    const uint64_t frozen = static_cast<uint64_t>(
        failpoint::HitCount("serve/cache_fill"));
    Recommendation rec = server.Recommend({.user = 0});
    EXPECT_EQ(rec.rung, ServeRung::kFullTopK);
    EXPECT_EQ(static_cast<uint64_t>(failpoint::HitCount("serve/cache_fill")),
              frozen);
  }
}

TEST_F(ChaosTest, SwapFaultRejectsCandidateAndRollbackRestoresService) {
  obs::MetricsRegistry metrics;
  ModelRegistry registry(&metrics, "chaoss.registry");
  registry.Publish(HealthyModel(8, 32, 4, /*seed=*/1));
  registry.Publish(HealthyModel(8, 32, 4, /*seed=*/2));
  const uint64_t live_gen = registry.generation();

  failpoint::Spec error_spec;
  error_spec.action = failpoint::Action::kError;
  error_spec.message = "injected probe failure";
  failpoint::Arm("serve/swap", error_spec);

  // Injected probe failures reject the candidate and leave the live
  // generation serving.
  EXPECT_FALSE(registry.TryPublish(HealthyModel(8, 32, 4, 3)).ok());
  EXPECT_EQ(registry.generation(), live_gen);
  EXPECT_EQ(registry.swap_breaker().failures(), 1u);

  // Rollback bypasses probe and breaker (the previous model already
  // passed): it succeeds even while the swap failpoint is armed.
  uint64_t rollback_gen = 0;
  ASSERT_TRUE(registry.RollbackToPrevious(&rollback_gen).ok());
  EXPECT_GT(rollback_gen, live_gen);
  EXPECT_EQ(registry.Acquire()->generation(), rollback_gen);
}

}  // namespace
}  // namespace dtrec::serve
