#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "experiments/evaluator.h"
#include "experiments/runner.h"
#include "synth/coat_like.h"
#include "synth/movielens_like.h"

namespace dtrec {
namespace {

TrainConfig FastConfig() {
  TrainConfig config;
  config.epochs = 5;
  config.batch_size = 1024;
  config.max_steps_per_epoch = 20;
  config.embedding_dim = 6;
  config.disentangle_dim = 3;
  return config;
}

TEST(IntegrationTest, SemiSyntheticPipelineEndToEnd) {
  SemiSyntheticConfig world_config;
  world_config.num_users = 80;
  world_config.num_items = 100;
  world_config.rho = 1.25;
  world_config.seed = 21;
  const SemiSyntheticData world =
      MovieLensLikeGenerator(world_config).Generate();
  ASSERT_TRUE(world.dataset.Validate().ok());

  auto mf = std::move(MakeTrainer("MF", FastConfig()).value());
  auto dt = std::move(MakeTrainer("DT-DR", FastConfig()).value());
  ASSERT_TRUE(mf->Fit(world.dataset).ok());
  ASSERT_TRUE(dt->Fit(world.dataset).ok());

  const SemiSyntheticMetrics mf_metrics = EvaluateSemiSynthetic(*mf, world);
  const SemiSyntheticMetrics dt_metrics = EvaluateSemiSynthetic(*dt, world);
  // Both produce sane MSE against η ∈ [ε, 1] — far below the trivial 1.0.
  EXPECT_LT(mf_metrics.mse, 0.3);
  EXPECT_LT(dt_metrics.mse, 0.3);
  EXPECT_GT(dt_metrics.ndcg_at_50, 0.3);
}

TEST(IntegrationTest, RunComparisonProducesPairedResults) {
  DatasetProfile profile;
  profile.train = FastConfig();
  profile.ranking_k = 5;

  auto factory = [](uint64_t seed) {
    MnarGeneratorConfig config;
    config.num_users = 50;
    config.num_items = 60;
    config.base_logit = -1.6;
    config.test_per_user = 10;
    config.seed = seed;
    return MnarGenerator(config).Generate().dataset;
  };

  const std::vector<MethodResult> results = RunComparison(
      {"MF", "IPS", "DT-IPS"}, factory, profile, {1, 2, 3}, /*quiet=*/true);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& res : results) {
    EXPECT_EQ(res.auc_samples.size(), 3u);
    EXPECT_GT(res.auc.mean, 0.5);
    EXPECT_GT(res.parameters, 0u);
    EXPECT_GT(res.train_seconds, 0.0);
  }

  TableWriter table = MakeComparisonTable("test", 5, results);
  EXPECT_EQ(table.num_rows(), 3u);
  std::ostringstream os;
  table.RenderConsole(os);
  EXPECT_NE(os.str().find("DT-IPS"), std::string::npos);
}

TEST(IntegrationTest, CoatLikeTrainEvalRoundTrip) {
  const SimulatedData world = MakeCoatLike(77);
  TrainConfig config = FastConfig();
  config.epochs = 6;
  config.embedding_dim = 8;
  config.disentangle_dim = 0;
  auto trainer = std::move(MakeTrainer("DR-JL", config).value());
  ASSERT_TRUE(trainer->Fit(world.dataset).ok());
  const RankingMetrics metrics = EvaluateRanking(*trainer, world.dataset, 5);
  EXPECT_GT(metrics.auc, 0.5);
  EXPECT_GT(metrics.users_scored, 100u);
  EXPECT_GE(metrics.recall_at_k, 0.0);
  EXPECT_LE(metrics.recall_at_k, 1.0);

  const double infer_ms =
      MeasureInferenceMillisPerSample(*trainer, world.dataset);
  EXPECT_GT(infer_ms, 0.0);
  EXPECT_LT(infer_ms, 10.0);
}

TEST(IntegrationTest, ProfilesAndOverrides) {
  DatasetProfile profile = DefaultProfile(DatasetKind::kKuaiRec);
  EXPECT_EQ(profile.ranking_k, 50u);
  ASSERT_TRUE(ApplyOverride("epochs", "3", &profile).ok());
  EXPECT_EQ(profile.train.epochs, 3u);
  ASSERT_TRUE(ApplyOverride("scale", "0.05", &profile).ok());
  EXPECT_DOUBLE_EQ(profile.dataset_scale, 0.05);
  EXPECT_FALSE(ApplyOverride("bogus", "1", &profile).ok());
  EXPECT_FALSE(ApplyOverride("epochs", "abc", &profile).ok());
  EXPECT_FALSE(ApplyOverride("epochs", "1", nullptr).ok());
}

TEST(IntegrationTest, MethodTuningAdjustsKnobs) {
  TrainConfig base;
  base.beta = 0.0;
  const TrainConfig dt = TuneForMethod("DT-DR", base);
  EXPECT_GT(dt.beta, 0.0);
  const TrainConfig cvib = TuneForMethod("CVIB", base);
  EXPECT_DOUBLE_EQ(cvib.alpha, 0.1);
  const TrainConfig plain = TuneForMethod("IPS", base);
  EXPECT_DOUBLE_EQ(plain.beta, 0.0);
}

}  // namespace
}  // namespace dtrec
