#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/telemetry_validate.h"
#include "obs/watchdog.h"
#include "util/atomic_file.h"

namespace dtrec {
namespace {

using obs::AlertEvent;
using obs::AlertJsonLine;
using obs::ParseWatchdogRules;
using obs::WatchRule;
using obs::Watchdog;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A deterministic clock the tests advance by hand. The watchdog copies
// the std::function, so the shared state lives behind a pointer.
struct FakeClock {
  std::shared_ptr<double> now = std::make_shared<double>(0.0);
  Watchdog::ClockFn fn() const {
    auto held = now;
    return [held] { return *held; };
  }
  void Advance(double s) { *now += s; }
};

Watchdog::Options WithClock(const FakeClock& clock,
                            const std::string& alerts_path = "") {
  Watchdog::Options options;
  options.clock = clock.fn();
  options.alerts_path = alerts_path;
  return options;
}

// ------------------------------------------------------------- parsing

TEST(WatchdogParseTest, EveryKindAndDriftParse) {
  std::vector<WatchRule> rules;
  const Status st = ParseWatchdogRules(
      "# comment line\n"
      "\n"
      "burn: p99:serve.total_us, 1, 5000, above   # trailing comment\n"
      "shed: rate:serve.shed/serve.requests, 0.5, 0.25, above\n"
      "storm: delta:serve.breaker.open_transitions, 2, 5, above\n"
      "depth: value:serve.queue_depth, 1, 100, above\n"
      "creep: drift:rate:clip.fired/clip.total, 1, 0.05, above\n"
      "dry: delta:serve.requests, 5, 1, below\n",
      &rules);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(rules.size(), 6u);

  EXPECT_EQ(rules[0].name, "burn");
  EXPECT_EQ(rules[0].kind, WatchRule::Kind::kHistogramStat);
  EXPECT_EQ(rules[0].stat, "p99");
  EXPECT_EQ(rules[0].metric_a, "serve.total_us");
  EXPECT_FALSE(rules[0].drift);
  EXPECT_DOUBLE_EQ(rules[0].window_s, 1.0);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 5000.0);
  EXPECT_EQ(rules[0].direction, WatchRule::Direction::kAbove);

  EXPECT_EQ(rules[1].kind, WatchRule::Kind::kCounterRate);
  EXPECT_EQ(rules[1].metric_a, "serve.shed");
  EXPECT_EQ(rules[1].metric_b, "serve.requests");

  EXPECT_EQ(rules[2].kind, WatchRule::Kind::kCounterDelta);
  EXPECT_EQ(rules[3].kind, WatchRule::Kind::kGaugeValue);

  EXPECT_TRUE(rules[4].drift);
  EXPECT_EQ(rules[4].kind, WatchRule::Kind::kCounterRate);
  EXPECT_EQ(rules[4].expr, "rate:clip.fired/clip.total");  // sans drift:

  EXPECT_EQ(rules[5].direction, WatchRule::Direction::kBelow);
}

TEST(WatchdogParseTest, EmptyTextIsAValidEmptyRuleSet) {
  std::vector<WatchRule> rules = {WatchRule{}};
  ASSERT_TRUE(ParseWatchdogRules("# only comments\n\n", &rules).ok());
  EXPECT_TRUE(rules.empty());  // cleared, not appended to
}

TEST(WatchdogParseTest, ErrorsNameTheOffendingLine) {
  std::vector<WatchRule> rules;
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"ok: delta:a, 1, 1, above\nbad line without colon, 1, 1, above\n",
       "line 2"},
      {"r: delta:a, 1, 1\n", "line 1"},                 // missing direction
      {"r: delta:a, 1, 1, sideways\n", "'above' or 'below'"},
      {"r: delta:a, -1, 1, above\n", "window_s"},
      {"r: delta:a, 1, not_a_number, above\n", "threshold"},
      {"r: p42:a, 1, 1, above\n", "unknown metric kind"},
      {"r: rate:only_numerator, 1, 1, above\n", "rate:"},
      {"r: nometric, 1, 1, above\n", "<kind>:<name>"},
  };
  for (const Case& c : cases) {
    const Status st = ParseWatchdogRules(c.text, &rules);
    ASSERT_FALSE(st.ok()) << c.text;
    EXPECT_NE(st.message().find(c.needle), std::string::npos)
        << "want '" << c.needle << "' in: " << st.ToString();
  }
}

// ------------------------------------------------------- alert records

TEST(WatchdogAlertJsonTest, LineRoundTripsThroughTheValidator) {
  AlertEvent event;
  event.rule = "shed_spike";
  event.expr = "rate:serve.shed/serve.requests";
  event.context = "saturation_flood";
  event.direction = "above";
  event.value = 0.82;
  event.threshold = 0.25;
  event.window_s = 0.5;
  event.has_baseline = false;
  event.at_s = 12.5;
  const std::string line = AlertJsonLine(event) + "\n";
  size_t records = 0;
  std::set<std::string> rule_names;
  std::set<std::string> contexts;
  const Status st =
      obs::ValidateAlertsJsonl(line, &records, &rule_names, &contexts);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << line;
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(rule_names.count("shed_spike"), 1u);
  EXPECT_EQ(contexts.count("saturation_flood"), 1u);
  EXPECT_NE(line.find("\"baseline\": null"), std::string::npos);

  // With a baseline the null becomes a number, still valid.
  event.has_baseline = true;
  event.baseline = 0.01;
  const std::string drift_line = AlertJsonLine(event) + "\n";
  EXPECT_TRUE(obs::ValidateAlertsJsonl(drift_line).ok()) << drift_line;
  EXPECT_NE(drift_line.find("\"baseline\": 0.01"), std::string::npos);
}

TEST(WatchdogAlertJsonTest, EmptyStreamIsValid) {
  size_t records = 7;
  ASSERT_TRUE(obs::ValidateAlertsJsonl("", &records).ok());
  EXPECT_EQ(records, 0u);
}

// ----------------------------------------------------------- evaluation

std::vector<WatchRule> MustParse(const std::string& text) {
  std::vector<WatchRule> rules;
  const Status st = ParseWatchdogRules(text, &rules);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return rules;
}

TEST(WatchdogEvalTest, FirstPollPrimesWithoutAlerting) {
  obs::MetricsRegistry registry;
  registry.GetCounter("w.requests")->Increment(1000);
  FakeClock clock;
  Watchdog dog(&registry,
               MustParse("big: delta:w.requests, 1, 1, above\n"),
               WithClock(clock));
  // All 1000 increments predate the first poll: priming must swallow
  // them, not alert on history.
  EXPECT_EQ(dog.Poll(), 0u);
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 0u);  // nothing moved inside the window
  registry.GetCounter("w.requests")->Increment(5);
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 1u);
  EXPECT_EQ(dog.fired_count("big"), 1u);
  ASSERT_EQ(dog.alerts().size(), 1u);
  EXPECT_DOUBLE_EQ(dog.alerts()[0].value, 5.0);
}

TEST(WatchdogEvalTest, WindowGatesPollButNotForceEvaluate) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("w.count");
  FakeClock clock;
  Watchdog dog(&registry, MustParse("r: delta:w.count, 10, 0.5, above\n"),
               WithClock(clock));
  dog.Poll();  // prime
  c->Increment(3);
  clock.Advance(1.0);           // well inside the 10 s window
  EXPECT_EQ(dog.Poll(), 0u);    // window not elapsed: skipped
  EXPECT_EQ(dog.ForceEvaluate(), 1u);  // forced: evaluates now
}

TEST(WatchdogEvalTest, BothDirectionsFire) {
  obs::MetricsRegistry registry;
  registry.GetGauge("w.depth")->Set(50.0);
  FakeClock clock;
  Watchdog dog(&registry,
               MustParse("high: value:w.depth, 1, 40, above\n"
                         "low: value:w.depth, 1, 60, below\n"),
               WithClock(clock));
  dog.Poll();  // prime
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 2u);  // 50 > 40 and 50 < 60
  EXPECT_EQ(dog.fired_count("high"), 1u);
  EXPECT_EQ(dog.fired_count("low"), 1u);
  EXPECT_EQ(dog.fired_count(), 2u);

  // At the threshold exactly, neither fires (strict comparison).
  registry.GetGauge("w.depth")->Set(40.0);
  clock.Advance(1.0);
  Watchdog at(&registry, MustParse("edge: value:w.depth, 1, 40, above\n"),
              WithClock(clock));
  at.Poll();
  clock.Advance(1.0);
  EXPECT_EQ(at.Poll(), 0u);
}

TEST(WatchdogEvalTest, HistogramStatUsesTheWindowDeltaOnly) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("w.lat");
  // A slow pre-history that must not leak into the windowed p99.
  for (int i = 0; i < 100; ++i) h->Record(9000.0);
  FakeClock clock;
  Watchdog dog(&registry, MustParse("burn: p99:w.lat, 1, 5000, above\n"),
               WithClock(clock));
  dog.Poll();  // prime: swallows the slow history
  for (int i = 0; i < 100; ++i) h->Record(10.0);
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 0u);  // the window itself was fast
  for (int i = 0; i < 100; ++i) h->Record(8000.0);
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 1u);
  ASSERT_EQ(dog.alerts().size(), 1u);
  EXPECT_GT(dog.alerts()[0].value, 5000.0);
}

TEST(WatchdogEvalTest, NoSignalWindowsAreSkippedNotAlerted) {
  obs::MetricsRegistry registry;
  registry.GetHistogram("w.lat");
  registry.GetCounter("w.shed");
  registry.GetCounter("w.requests");
  FakeClock clock;
  // Both rules point "below", which is exactly where a no-signal window
  // would false-positive if it evaluated as zero.
  Watchdog dog(&registry,
               MustParse("lat_floor: p50:w.lat, 1, 100, below\n"
                         "shed_rate: rate:w.shed/w.requests, 1, 2, below\n"),
               WithClock(clock));
  dog.Poll();  // prime
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 0u);  // empty histogram + unmoved denominator
  // Once there is signal, the below rules do fire.
  registry.GetHistogram("w.lat")->Record(5.0);
  registry.GetCounter("w.requests")->Increment(10);
  registry.GetCounter("w.shed")->Increment(1);
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 2u);
}

TEST(WatchdogEvalTest, CounterResetReprimesInsteadOfWrapping) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("w.count");
  c->Increment(100);
  FakeClock clock;
  // "below 50" would fire on a wrapped/negative delta if reset handling
  // were broken.
  Watchdog dog(&registry, MustParse("drop: delta:w.count, 1, 50, below\n"),
               WithClock(clock));
  dog.Poll();  // prime at 100
  c->Reset();
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 0u);  // re-primed at 0, no alert
  c->Increment(10);
  clock.Advance(1.0);
  EXPECT_EQ(dog.Poll(), 1u);  // an honest small delta now fires
  EXPECT_DOUBLE_EQ(dog.alerts()[0].value, 10.0);
}

TEST(WatchdogEvalTest, DriftComparesAgainstTrailingBaseline) {
  obs::MetricsRegistry registry;
  obs::Counter* fired = registry.GetCounter("w.clip.fired");
  obs::Counter* total = registry.GetCounter("w.clip.total");
  FakeClock clock;
  Watchdog dog(
      &registry,
      MustParse("creep: drift:rate:w.clip.fired/w.clip.total, 1, 0.05, "
                "above\n"),
      WithClock(clock));
  dog.Poll();  // prime

  // Three steady windows at 1% clip rate: the first is baseline-only and
  // the rest sit on the baseline, so nothing fires.
  for (int w = 0; w < 3; ++w) {
    total->Increment(1000);
    fired->Increment(10);
    clock.Advance(1.0);
    EXPECT_EQ(dog.Poll(), 0u) << "steady window " << w;
  }

  // A window at 21% is +0.20 over the trailing 1% baseline: fires, and
  // the alert's value is the deviation with the baseline attached.
  total->Increment(1000);
  fired->Increment(210);
  clock.Advance(1.0);
  ASSERT_EQ(dog.Poll(), 1u);
  const AlertEvent alert = dog.alerts()[0];
  EXPECT_TRUE(alert.has_baseline);
  EXPECT_NEAR(alert.baseline, 0.01, 1e-9);
  EXPECT_NEAR(alert.value, 0.20, 1e-9);
  EXPECT_NE(AlertJsonLine(alert).find("\"baseline\": 0.01"),
            std::string::npos);
}

TEST(WatchdogEvalTest, ContextTagsAlerts) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("w.count");
  FakeClock clock;
  Watchdog dog(&registry, MustParse("r: delta:w.count, 1, 0.5, above\n"),
               WithClock(clock));
  dog.SetContext("capacity");
  dog.Poll();  // prime
  c->Increment(1);
  clock.Advance(1.0);
  ASSERT_EQ(dog.Poll(), 1u);
  dog.SetContext("saturation_flood");
  c->Increment(1);
  clock.Advance(1.0);
  ASSERT_EQ(dog.Poll(), 1u);
  ASSERT_EQ(dog.alerts().size(), 2u);
  EXPECT_EQ(dog.alerts()[0].context, "capacity");
  EXPECT_EQ(dog.alerts()[1].context, "saturation_flood");
}

// ------------------------------------------------------------ JSONL sink

TEST(WatchdogSinkTest, AlertFreeRunLeavesAValidEmptyArtifact) {
  const std::string path = TempPath("watchdog_test_empty.jsonl");
  {
    obs::MetricsRegistry registry;
    FakeClock clock;
    Watchdog dog(&registry, MustParse(""), WithClock(clock, path));
    dog.Poll();
  }
  std::string content;
  ASSERT_TRUE(ReadFile(path, &content).ok());
  size_t records = 99;
  ASSERT_TRUE(obs::ValidateAlertsJsonl(content, &records).ok());
  EXPECT_EQ(records, 0u);
  std::remove(path.c_str());
}

TEST(WatchdogSinkTest, FiredAlertsStreamToDiskAndTruncateOnReopen) {
  const std::string path = TempPath("watchdog_test_alerts.jsonl");
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("w.count");
  {
    FakeClock clock;
    Watchdog dog(&registry, MustParse("r: delta:w.count, 1, 0.5, above\n"),
                 WithClock(clock, path));
    dog.SetContext("phase_a");
    dog.Poll();  // prime
    c->Increment(2);
    clock.Advance(1.0);
    ASSERT_EQ(dog.Poll(), 1u);
  }
  std::string content;
  ASSERT_TRUE(ReadFile(path, &content).ok());
  size_t records = 0;
  std::set<std::string> rule_names;
  std::set<std::string> contexts;
  ASSERT_TRUE(
      obs::ValidateAlertsJsonl(content, &records, &rule_names, &contexts)
          .ok())
      << content;
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(rule_names.count("r"), 1u);
  EXPECT_EQ(contexts.count("phase_a"), 1u);

  // A fresh watchdog on the same path truncates: stale alerts from a
  // previous run must not survive into the new artifact.
  {
    obs::MetricsRegistry registry2;
    FakeClock clock;
    Watchdog dog(&registry2, MustParse(""), WithClock(clock, path));
  }
  ASSERT_TRUE(ReadFile(path, &content).ok());
  ASSERT_TRUE(obs::ValidateAlertsJsonl(content, &records).ok());
  EXPECT_EQ(records, 0u);
  std::remove(path.c_str());
}

// ------------------------------------------------------- periodic thread

TEST(WatchdogThreadTest, StartPollsInBackgroundAndStopJoins) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("w.count");
  c->Increment(100);
  // Real clock here: the periodic thread sleeps in real time. A 1 ms
  // period with an always-armed gauge rule fires within any sane
  // scheduling latency.
  Watchdog dog(&registry,
               MustParse("r: delta:w.count, 0.001, 0.5, above\n"));
  ASSERT_TRUE(dog.Start(0.001).ok());
  EXPECT_FALSE(dog.Start(0.001).ok());  // double-start refused
  // Wait for the prime pass, then feed it a delta to alert on.
  for (int i = 0; i < 2000 && dog.fired_count() == 0; ++i) {
    c->Increment(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  dog.Stop();
  EXPECT_GE(dog.fired_count(), 1u);
  const size_t after_stop = dog.fired_count();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(dog.fired_count(), after_stop);  // thread really stopped
  // Stop() is idempotent and a stopped watchdog can restart.
  dog.Stop();
  ASSERT_TRUE(dog.Start(0.001).ok());
  dog.Stop();
}

}  // namespace
}  // namespace dtrec
