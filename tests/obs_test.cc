#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/prop_stats.h"
#include "obs/telemetry_validate.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/math_util.h"

namespace dtrec {
namespace {

using obs::Histogram;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogramTest, PercentilesAreOrderedAndBracketTheData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
  EXPECT_LE(s.p99_us, s.max_us);
  // Geometric buckets guarantee ≤25% relative error on any percentile.
  EXPECT_NEAR(s.p50_us, 500.0, 150.0);
  EXPECT_NEAR(s.p95_us, 950.0, 250.0);
  EXPECT_NEAR(s.max_us, 1000.0, 1.0);
}

TEST(ObsHistogramTest, MeanIsExactNotBucketed) {
  Histogram h;
  h.Record(10.0);
  h.Record(20.0);
  h.Record(30.0);
  // The mean comes from the true sum (milli-resolution), not bucket
  // midpoints, and count/sum come from one snapshot so they cannot tear.
  EXPECT_NEAR(h.Summarize().mean_us, 20.0, 1e-3);
}

TEST(ObsHistogramTest, SnapshotDeltaSinceIsolatesAnInterval) {
  Histogram h;
  h.Record(5.0);
  const Histogram::Snapshot before = h.TakeSnapshot();
  h.Record(100.0);
  h.Record(200.0);
  const Histogram::Snapshot delta = h.TakeSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.count, 2u);
  const Histogram::Summary s = Histogram::Summarize(delta);
  EXPECT_EQ(s.count, 2u);
  EXPECT_NEAR(s.mean_us, 150.0, 1e-3);
}

TEST(ObsHistogramTest, MergeFoldsCountsSumAndMax) {
  Histogram a, b;
  a.Record(10.0);
  b.Record(30.0);
  b.Record(50.0);
  a.Merge(b);
  const Histogram::Summary s = a.Summarize();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.mean_us, 30.0, 1e-3);
  EXPECT_NEAR(s.max_us, 50.0, 1e-3);
  // The source histogram is unchanged.
  EXPECT_EQ(b.Summarize().count, 2u);
}

TEST(ObsHistogramTest, ResetZeroesEverything) {
  Histogram h;
  h.Record(42.0);
  h.Reset();
  const Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_us, 0.0);
  EXPECT_EQ(s.max_us, 0.0);
}

TEST(ObsHistogramTest, ConcurrentRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(1.0 + i % 100);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.Summarize().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Exemplars: per-bucket links from a latency bucket back to the trace id
// of the worst recent sample that landed there.

TEST(ObsExemplarTest, CapturedAndFoundNearTheTailPercentile) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  h.Record(5000.0, /*exemplar_trace_id=*/0xABCull);
  const Histogram::Exemplar ex = Histogram::ExemplarNear(h.TakeSnapshot(),
                                                         0.99);
  ASSERT_TRUE(ex.valid());
  EXPECT_EQ(ex.trace_id, 0xABCull);
  EXPECT_NEAR(ex.value(), 5000.0, 1e-3);
}

TEST(ObsExemplarTest, EmptyOrIdLessSnapshotsHaveNoExemplar) {
  Histogram h;
  EXPECT_FALSE(Histogram::ExemplarNear(h.TakeSnapshot(), 0.99).valid());
  h.Record(10.0);  // no trace id offered
  EXPECT_FALSE(Histogram::ExemplarNear(h.TakeSnapshot(), 0.99).valid());
}

TEST(ObsExemplarTest, TiesAdmitTheNewerSampleWorseValuesDisplace) {
  Histogram h;
  h.Record(10.0, 0xAull);
  h.Record(10.0, 0xBull);  // same bucket, same value: newer id wins
  Histogram::Exemplar ex = Histogram::ExemplarNear(h.TakeSnapshot(), 0.5);
  EXPECT_EQ(ex.trace_id, 0xBull);
  h.Record(11.0, 0xCull);  // same bucket (10 and 11 share it), worse value
  ex = Histogram::ExemplarNear(h.TakeSnapshot(), 0.5);
  EXPECT_EQ(ex.trace_id, 0xCull);
  // A smaller sample in the same bucket must not displace the maximum.
  h.Record(10.0, 0xDull);
  ex = Histogram::ExemplarNear(h.TakeSnapshot(), 0.5);
  EXPECT_EQ(ex.trace_id, 0xCull);
}

TEST(ObsExemplarTest, DeltaSinceDropsExemplarsOfUntouchedBuckets) {
  Histogram h;
  h.Record(1000.0, 0xAAull);  // pre-window slow request
  const Histogram::Snapshot before = h.TakeSnapshot();
  h.Record(2.0, 0xBBull);  // the only sample inside the window
  const Histogram::Snapshot delta = h.TakeSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.count, 1u);
  // The stale 1000 µs exemplar is gone — its bucket did not move in the
  // interval — so exactly one bucket carries an exemplar: 0xBB's.
  size_t valid = 0;
  for (const Histogram::Exemplar& e : delta.exemplars) {
    if (e.valid()) {
      ++valid;
      EXPECT_EQ(e.trace_id, 0xBBull);
    }
  }
  EXPECT_EQ(valid, 1u);
  EXPECT_EQ(Histogram::ExemplarNear(delta, 0.999).trace_id, 0xBBull);
}

TEST(ObsExemplarTest, MergeKeepsTheWorsePerBucketAndFillsEmptySlots) {
  Histogram a, b;
  a.Record(10.0, 0xAull);
  b.Record(11.0, 0xBull);   // same bucket as 10.0, worse value
  b.Record(500.0, 0xCull);  // bucket a has never seen
  a.Merge(b);
  const Histogram::Snapshot snap = a.TakeSnapshot();
  EXPECT_EQ(Histogram::ExemplarNear(snap, 0.2).trace_id, 0xBull);
  EXPECT_EQ(Histogram::ExemplarNear(snap, 0.99).trace_id, 0xCull);
  EXPECT_EQ(snap.count, 3u);
}

TEST(ObsExemplarTest, ResetClearsExemplars) {
  Histogram h;
  h.Record(10.0, 0xAull);
  h.Reset();
  h.Record(10.0);  // repopulate the bucket without an id
  EXPECT_FALSE(Histogram::ExemplarNear(h.TakeSnapshot(), 0.5).valid());
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsMetricsTest, CounterAndGaugeBasics) {
  obs::Counter c;
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.Value(), 5u);
  c.Set(17);
  EXPECT_EQ(c.Value(), 17u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);

  obs::Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
}

TEST(ObsMetricsTest, RegistryReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* c1 = registry.GetCounter("test.requests");
  c1->Increment(3);
  // Registering more metrics must not invalidate c1 (std::map nodes).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("test.filler." + std::to_string(i));
  }
  obs::Counter* c2 = registry.GetCounter("test.requests");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c2->Value(), 3u);
}

TEST(ObsMetricsTest, ConcurrentRegistrationAndIncrement) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // All threads race to register the same names, then hammer them.
      obs::Counter* counter = registry.GetCounter("race.counter");
      obs::Histogram* hist = registry.GetHistogram("race.hist");
      obs::Gauge* gauge = registry.GetGauge("race.gauge");
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        hist->Record(1.0 + i % 16);
        gauge->Set(static_cast<double>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("race.counter")->Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.GetHistogram("race.hist")->Summarize().count,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ObsMetricsTest, DumpJsonIsStructurallyValid) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(7);
  registry.GetGauge("a.gauge")->Set(1.5);
  registry.GetHistogram("a.lat")->Record(12.0);
  const std::string json = registry.DumpJson();
  EXPECT_TRUE(obs::ValidateMetricsJson(json).ok())
      << obs::ValidateMetricsJson(json).ToString() << "\n"
      << json;
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"a.lat\""), std::string::npos);
}

TEST(ObsMetricsTest, DumpTextListsEveryMetric) {
  obs::MetricsRegistry registry;
  registry.GetCounter("t.count")->Increment();
  registry.GetGauge("t.gauge")->Set(3.0);
  registry.GetHistogram("t.hist")->Record(1.0);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("t.count"), std::string::npos);
  EXPECT_NE(text.find("t.gauge"), std::string::npos);
  EXPECT_NE(text.find("t.hist"), std::string::npos);
}

TEST(ObsMetricsTest, DumpPrometheusSanitizesNamesAndKeepsOriginalsInHelp) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.requests")->Increment(7);
  registry.GetCounter("9lives")->Increment(1);      // leading digit
  registry.GetGauge("queue depth/now")->Set(2.5);   // space and slash
  const std::string prom = registry.DumpPrometheus();
  // Dots, spaces, slashes → underscores; a leading digit gets a prefix.
  EXPECT_NE(prom.find("# TYPE serve_requests counter"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("serve_requests 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE _9lives counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE queue_depth_now gauge"), std::string::npos);
  EXPECT_NE(prom.find("queue_depth_now 2.5"), std::string::npos);
  // The HELP line preserves the original (unsanitized) name.
  EXPECT_NE(prom.find("# HELP serve_requests serve.requests"),
            std::string::npos);
  // No un-sanitized sample names leak through.
  EXPECT_EQ(prom.find("serve.requests 7"), std::string::npos);
}

TEST(ObsMetricsTest, DumpPrometheusEscapesHelpText) {
  obs::MetricsRegistry registry;
  registry.GetCounter("weird\\name")->Increment(1);
  const std::string prom = registry.DumpPrometheus();
  // '\' in the original name becomes "\\" on the HELP line, and the
  // sample name itself is fully sanitized.
  EXPECT_NE(prom.find("# HELP weird_name weird\\\\name"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("\nweird_name 1\n"), std::string::npos);
}

TEST(ObsMetricsTest, DumpPrometheusExpandsHistogramsCumulatively) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("lat.us");
  h->Record(1.0);   // bucket 0 (le="1")
  h->Record(10.0);  // a later bucket
  const std::string prom = registry.DumpPrometheus();
  EXPECT_NE(prom.find("# TYPE lat_us histogram"), std::string::npos) << prom;
  // Cumulative buckets: the first bucket holds 1, +Inf holds the total.
  EXPECT_NE(prom.find("lat_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_count 2"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_sum 11"), std::string::npos);
  // Cumulative counts never decrease along the le= series.
  uint64_t prev = 0;
  size_t pos = 0;
  while ((pos = prom.find("lat_us_bucket{le=", pos)) != std::string::npos) {
    const size_t space = prom.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    const uint64_t cum = std::stoull(prom.substr(space + 2));
    EXPECT_GE(cum, prev);
    prev = cum;
    pos = space;
  }
  EXPECT_EQ(prev, 2u);
}

TEST(ObsMetricsTest, ResetAllZeroesCountersAndHistogramsKeepsGauges) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("r.count");
  obs::Histogram* h = registry.GetHistogram("r.hist");
  obs::Gauge* g = registry.GetGauge("r.gauge");
  c->Increment(9);
  h->Record(5.0);
  g->Set(11.0);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Summarize().count, 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 11.0);
}

TEST(ObsMetricsTest, PublishPropensityClipStatsMirrorsCounters) {
  // Drive the process-wide counters a known amount, then check the
  // registry mirror moves with them (absolute values are shared across
  // the test binary, so assert on the published total >= fired).
  obs::RecordPropensityClip(/*fired=*/true);
  obs::RecordPropensityClip(/*fired=*/false);
  obs::MetricsRegistry registry;
  obs::PublishPropensityClipStats(&registry);
  const uint64_t total = registry.GetCounter("propensity.clip.total")->Value();
  const uint64_t fired = registry.GetCounter("propensity.clip.fired")->Value();
  EXPECT_GE(total, 2u);
  EXPECT_GE(fired, 1u);
  EXPECT_GE(total, fired);
  EXPECT_TRUE(obs::ValidateMetricsJson(registry.DumpJson()).ok());
}

// ---------------------------------------------------------------------------
// Propensity clip counters feeding from the numeric helpers

TEST(ObsPropStatsTest, SafeInverseCountsFloorHits) {
  const obs::PropensityClipSnapshot before = obs::GetPropensityClipSnapshot();
  EXPECT_DOUBLE_EQ(SafeInverse(0.5), 2.0);
  EXPECT_DOUBLE_EQ(SafeInverse(0.0), 1e12);  // floored at 1e-12
  const obs::PropensityClipSnapshot delta =
      obs::GetPropensityClipSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.total, 2u);
  EXPECT_EQ(delta.fired, 1u);
  EXPECT_DOUBLE_EQ(delta.rate(), 0.5);
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(ObsTraceTest, DisabledByDefaultAndRecordsNothing) {
  obs::ClearTrace();
  ASSERT_FALSE(obs::TracingEnabled());
  { obs::TraceSpan span("should_not_record"); }
  const std::string json = obs::FlushTraceJson();
  size_t events = 0;
  ASSERT_TRUE(obs::ValidateTraceJson(json, &events).ok());
  EXPECT_EQ(events, 0u);
}

TEST(ObsTraceTest, RecordedSpansFlushAsValidChromeTrace) {
  obs::ClearTrace();
  obs::EnableTracing();
  {
    obs::TraceSpan outer("outer_stage");
    obs::TraceSpan inner("inner_stage");
  }
  obs::DisableTracing();
  const std::string json = obs::FlushTraceJson();
  size_t events = 0;
  std::set<std::string> names;
  const Status st = obs::ValidateTraceJson(json, &events, &names);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << json;
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(names.count("outer_stage"), 1u);
  EXPECT_EQ(names.count("inner_stage"), 1u);
  obs::ClearTrace();
}

TEST(ObsTraceTest, SpanConstructedWhileDisabledStaysInert) {
  obs::ClearTrace();
  {
    obs::TraceSpan span("born_disabled");
    // Arming mid-span must not record it: its begin timestamp was never
    // taken, so recording it would fabricate a duration.
    obs::EnableTracing();
  }
  obs::DisableTracing();
  size_t events = 0;
  ASSERT_TRUE(obs::ValidateTraceJson(obs::FlushTraceJson(), &events).ok());
  EXPECT_EQ(events, 0u);
  obs::ClearTrace();
}

TEST(ObsTraceTest, ConcurrentSpansFromManyThreadsFlushCleanly) {
  obs::ClearTrace();
  obs::EnableTracing();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan span("worker_span");
      }
    });
  }
  // Flush concurrently with the recorders — must stay valid JSON.
  const std::string mid_flight = obs::FlushTraceJson();
  EXPECT_TRUE(obs::ValidateTraceJson(mid_flight).ok());
  for (auto& thread : threads) thread.join();
  obs::DisableTracing();
  size_t events = 0;
  std::set<std::string> names;
  ASSERT_TRUE(
      obs::ValidateTraceJson(obs::FlushTraceJson(), &events, &names).ok());
  EXPECT_EQ(events, static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(names.count("worker_span"), 1u);
  obs::ClearTrace();
}

#if defined(DTREC_TRACING_ENABLED)
TEST(ObsTraceTest, MacroRecordsUnderItsName) {
  obs::ClearTrace();
  obs::EnableTracing();
  { DTREC_TRACE_SPAN("macro_span"); }
  obs::DisableTracing();
  std::set<std::string> names;
  ASSERT_TRUE(
      obs::ValidateTraceJson(obs::FlushTraceJson(), nullptr, &names).ok());
  EXPECT_EQ(names.count("macro_span"), 1u);
  obs::ClearTrace();
}
#endif

TEST(ObsTraceTest, WriteTraceJsonCommitsALoadableFile) {
  obs::ClearTrace();
  obs::EnableTracing();
  { obs::TraceSpan span("to_disk"); }
  obs::DisableTracing();
  const std::string path = TempPath("obs_test_trace.json");
  ASSERT_TRUE(obs::WriteTraceJson(path).ok());
  std::string content;
  ASSERT_TRUE(ReadFile(path, &content).ok());
  std::set<std::string> names;
  ASSERT_TRUE(obs::ValidateTraceJson(content, nullptr, &names).ok());
  EXPECT_EQ(names.count("to_disk"), 1u);
  obs::ClearTrace();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Request identity: trace ids threaded through spans and exemplars

TEST(ObsTraceIdTest, NewTraceIdsAreNonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = obs::NewTraceId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);
  // Canonical rendering: 0x + 16 hex digits, zero-padded.
  EXPECT_EQ(obs::FormatTraceId(0xABCull), "0x0000000000000abc");
}

TEST(ObsTraceIdTest, TraceContextInstallsAndRestoresNested) {
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  {
    obs::TraceContext outer;
    EXPECT_EQ(obs::CurrentTraceId(), outer.id());
    {
      obs::TraceContext inner(42);
      EXPECT_EQ(obs::CurrentTraceId(), 42u);
    }
    EXPECT_EQ(obs::CurrentTraceId(), outer.id());
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
}

TEST(ObsTraceIdTest, SpansRecordedInContextCarryTheIdInArgs) {
  obs::ClearTrace();
  obs::EnableTracing();
  uint64_t id = 0;
  {
    obs::TraceContext ctx;
    id = ctx.id();
    obs::TraceSpan span("traced_stage");
    obs::TraceNote("traced_note");
  }
  { obs::TraceSpan span("anonymous_stage"); }  // outside any context
  obs::DisableTracing();
  size_t events = 0;
  std::set<std::string> names;
  std::map<std::string, size_t> id_events;
  const std::string json = obs::FlushTraceJson();
  ASSERT_TRUE(obs::ValidateTraceJson(json, &events, &names, &id_events).ok())
      << json;
  EXPECT_EQ(events, 3u);
  EXPECT_EQ(names.count("traced_note"), 1u);
  // Both in-context events resolve to the request's id; the span recorded
  // outside a context carries none.
  EXPECT_EQ(id_events[obs::FormatTraceId(id)], 2u);
  size_t tagged = 0;
  for (const auto& [key, n] : id_events) tagged += n;
  EXPECT_EQ(tagged, 2u);
  obs::ClearTrace();
}

TEST(ObsTraceIdTest, SampleScopeSuppressesRecordingAndExemplarIdentity) {
  obs::ClearTrace();
  obs::EnableTracing();
  obs::TraceContext ctx(0xABCu);
  {
    // Sampled-out: no spans, no notes, and no exemplar identity — the
    // histogram must not capture an id whose span tree was never recorded.
    obs::TraceSampleScope out(false);
    EXPECT_FALSE(obs::TracingEnabled());
    EXPECT_EQ(obs::CurrentTraceId(), 0u);
    obs::TraceNote("suppressed_note");
    { obs::TraceSpan span("suppressed_stage"); }
    {
      // A nested sampled scope re-arms (each scope is its own verdict).
      obs::TraceSampleScope in(true);
      EXPECT_TRUE(obs::TracingEnabled());
      EXPECT_EQ(obs::CurrentTraceId(), 0xABCu);
      obs::TraceNote("nested_sampled_note");
    }
    EXPECT_EQ(obs::CurrentTraceId(), 0u);
  }
  // Scope exit restores the default (record everything) verdict.
  EXPECT_TRUE(obs::TracingEnabled());
  EXPECT_EQ(obs::CurrentTraceId(), 0xABCu);
  obs::TraceNote("kept_note");
  obs::DisableTracing();

  size_t events = 0;
  std::set<std::string> names;
  std::map<std::string, size_t> id_events;
  const std::string json = obs::FlushTraceJson();
  ASSERT_TRUE(obs::ValidateTraceJson(json, &events, &names, &id_events).ok())
      << json;
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(names.count("kept_note"), 1u);
  EXPECT_EQ(names.count("nested_sampled_note"), 1u);
  EXPECT_EQ(names.count("suppressed_note"), 0u);
  EXPECT_EQ(names.count("suppressed_stage"), 0u);
  EXPECT_EQ(id_events[obs::FormatTraceId(0xABCu)], 2u);
  obs::ClearTrace();
}

TEST(ObsTraceIdTest, RingWraparoundKeepsJsonWellFormed) {
  // Overflow one thread's ring (64Ki events) and make sure the flush is
  // still valid Chrome JSON that reports the overwritten events as
  // dropped instead of truncating mid-array.
  obs::ClearTrace();
  obs::EnableTracing();
  constexpr size_t kRing = size_t{1} << 16;
  constexpr size_t kOverflow = 1000;
  obs::TraceContext ctx;
  for (size_t i = 0; i < kRing + kOverflow; ++i) {
    obs::TraceNote("wrap_note");
  }
  obs::DisableTracing();
  const std::string json = obs::FlushTraceJson();
  size_t events = 0;
  std::set<std::string> names;
  std::map<std::string, size_t> id_events;
  const Status st = obs::ValidateTraceJson(json, &events, &names, &id_events);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(events, kRing);  // ring capacity, newest kept
  EXPECT_EQ(names.count("wrap_note"), 1u);
  // Survivors still resolve to the request id even after wraparound.
  EXPECT_EQ(id_events[obs::FormatTraceId(ctx.id())], kRing);
  const size_t dropped_pos = json.find("\"droppedEvents\": ");
  ASSERT_NE(dropped_pos, std::string::npos);
  EXPECT_EQ(std::stoull(json.substr(
                dropped_pos + std::string("\"droppedEvents\": ").size())),
            kOverflow);
  obs::ClearTrace();
}

// ---------------------------------------------------------------------------
// Sampling profiler (compiled out under sanitizers; the availability flag
// is the contract either way)

TEST(ObsProfilerTest, StartStopCollectRoundTripWhenAvailable) {
  if (!obs::ProfilerAvailable()) {
    // Sanitized build: Start must decline politely, not crash.
    EXPECT_FALSE(obs::StartProfiler().ok());
    EXPECT_FALSE(obs::ProfilerRunning());
    const obs::ProfileReport empty = obs::CollectProfile();
    EXPECT_EQ(empty.samples, 0u);
    return;
  }
  obs::ProfilerOptions options;
  options.interval_us = 500;
  ASSERT_TRUE(obs::StartProfiler(options).ok());
  EXPECT_TRUE(obs::ProfilerRunning());
  EXPECT_FALSE(obs::StartProfiler(options).ok());  // one per process
  // Burn CPU so ITIMER_PROF actually fires a few times.
  volatile double sink = 0.0;
  for (int i = 0; i < 50'000'000 && sink < 1e18; ++i) {
    sink += static_cast<double>(i) * 1.000001;
  }
  ASSERT_TRUE(obs::StopProfiler().ok());
  EXPECT_FALSE(obs::ProfilerRunning());
  const obs::ProfileReport report = obs::CollectProfile();
  EXPECT_EQ(report.interval_us, 500u);
  EXPECT_GT(report.samples, 0u);
  ASSERT_FALSE(report.stacks.empty());
  // Most-frequent-first ordering and a parsable JSON rendering.
  for (size_t i = 1; i < report.stacks.size(); ++i) {
    EXPECT_GE(report.stacks[i - 1].count, report.stacks[i].count);
  }
  const std::string json = obs::ProfileJson(report);
  size_t samples = 0;
  std::set<std::string> frames;
  const Status st = obs::ValidateProfileJson(json, &samples, &frames);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << json;
  EXPECT_EQ(samples, report.samples);
  EXPECT_FALSE(frames.empty());
  // Collapsed output: one "frame;frame;... count" line per non-empty
  // stack, flamegraph.pl-loadable.
  const std::string collapsed = obs::CollapsedStacks(report);
  EXPECT_FALSE(collapsed.empty());
  const size_t lines = static_cast<size_t>(
      std::count(collapsed.begin(), collapsed.end(), '\n'));
  EXPECT_GE(lines, 1u);
  EXPECT_LE(lines, report.stacks.size());
}

// ---------------------------------------------------------------------------
// Training event stream

obs::TrainEvent MakeEvent(uint64_t epoch) {
  obs::TrainEvent event;
  event.method = "DT-DR";
  event.epoch = epoch;
  event.steps = 43;
  event.wall_seconds = 0.5;
  event.learning_rate = 0.05;
  event.losses = {{"total", 0.48}, {"propensity_bce", 0.21}};
  event.grad_norm = 1.9;
  event.clip_total = 1000;
  event.clip_fired = 3;
  event.clip_rate = 0.003;
  event.rng_cursor = 0x9e3779b97f4a7c15ull;
  return event;
}

TEST(ObsEventLogTest, SingleLineValidates) {
  const std::string line = TrainEventToJsonLine(MakeEvent(0));
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  size_t records = 0;
  std::set<std::string> loss_keys;
  const Status st = obs::ValidateTrainEventsJsonl(line, &records, &loss_keys);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << line;
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(loss_keys.count("total"), 1u);
  EXPECT_EQ(loss_keys.count("propensity_bce"), 1u);
}

TEST(ObsEventLogTest, FileRoundTripAndAppendMode) {
  const std::string path = TempPath("obs_test_events.jsonl");
  std::remove(path.c_str());
  {
    obs::TrainEventLog log;
    ASSERT_TRUE(log.Open(path, /*append=*/false).ok());
    ASSERT_TRUE(log.is_open());
    ASSERT_TRUE(log.Append(MakeEvent(0)).ok());
    ASSERT_TRUE(log.Append(MakeEvent(1)).ok());
  }
  {
    // Resume path: append keeps the first run's records.
    obs::TrainEventLog log;
    ASSERT_TRUE(log.Open(path, /*append=*/true).ok());
    ASSERT_TRUE(log.Append(MakeEvent(2)).ok());
  }
  std::string content;
  ASSERT_TRUE(ReadFile(path, &content).ok());
  size_t records = 0;
  ASSERT_TRUE(obs::ValidateTrainEventsJsonl(content, &records).ok());
  EXPECT_EQ(records, 3u);

  // A fresh (non-append) open truncates.
  {
    obs::TrainEventLog log;
    ASSERT_TRUE(log.Open(path, /*append=*/false).ok());
    ASSERT_TRUE(log.Append(MakeEvent(0)).ok());
  }
  ASSERT_TRUE(ReadFile(path, &content).ok());
  ASSERT_TRUE(obs::ValidateTrainEventsJsonl(content, &records).ok());
  EXPECT_EQ(records, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Validator negative cases — a malformed artifact must fail, not pass.

TEST(ObsValidatorTest, RejectsMalformedArtifacts) {
  // Trace: not JSON / missing traceEvents / event without a name.
  EXPECT_FALSE(obs::ValidateTraceJson("not json").ok());
  EXPECT_FALSE(obs::ValidateTraceJson("{}").ok());
  EXPECT_FALSE(obs::ValidateTraceJson(
                   R"({"traceEvents": [{"ph": "X", "ts": 0, "dur": 1,)"
                   R"( "pid": 1, "tid": 1}]})")
                   .ok());

  // Events: empty stream, wrong schema, torn final line.
  EXPECT_FALSE(obs::ValidateTrainEventsJsonl("").ok());
  EXPECT_FALSE(
      obs::ValidateTrainEventsJsonl(R"({"schema": "wrong-schema"})" "\n")
          .ok());
  std::string torn = TrainEventToJsonLine(MakeEvent(0));
  torn += torn.substr(0, torn.size() / 2);  // second record cut mid-line
  EXPECT_FALSE(obs::ValidateTrainEventsJsonl(torn).ok());

  // Metrics: wrong schema / missing sections.
  EXPECT_FALSE(obs::ValidateMetricsJson(R"({"schema": "nope"})").ok());
  EXPECT_FALSE(
      obs::ValidateMetricsJson(R"({"schema": "dtrec-metrics-v1"})").ok());
}

}  // namespace
}  // namespace dtrec
