#include <gtest/gtest.h>

#include "diagnostics/mnar_diagnostics.h"
#include "synth/coat_like.h"
#include "synth/mnar_generator.h"

namespace dtrec {
namespace {

TEST(TwoProportionZTest, ValidatesInputs) {
  EXPECT_FALSE(TwoProportionZTest(1, 0, 1, 10).ok());
  EXPECT_FALSE(TwoProportionZTest(11, 10, 1, 10).ok());
  EXPECT_FALSE(TwoProportionZTest(-1, 10, 1, 10).ok());
  // All successes on both sides: zero pooled variance.
  EXPECT_FALSE(TwoProportionZTest(10, 10, 10, 10).ok());
}

TEST(TwoProportionZTest, EqualProportionsNotSignificant) {
  const auto result = TwoProportionZTest(50, 100, 50, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().z, 0.0, 1e-12);
  EXPECT_NEAR(result.value().p_value, 1.0, 1e-12);
}

TEST(TwoProportionZTest, HandComputedStatistic) {
  // p1 = 0.6 (n=100), p2 = 0.4 (n=100): pooled 0.5,
  // z = 0.2 / sqrt(0.25·0.02) ≈ 2.828.
  const auto result = TwoProportionZTest(60, 100, 40, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().z, 2.8284, 1e-3);
  EXPECT_LT(result.value().p_value, 0.01);
}

TEST(TwoProportionZTest, SignOfZFollowsDirection) {
  const auto result = TwoProportionZTest(30, 100, 60, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().z, 0.0);
}

TEST(DiagnoseSelectionBiasTest, RequirementsEnforced) {
  RatingDataset no_test(4, 4);
  no_test.AddTrain(0, 0, 1.0);
  EXPECT_EQ(DiagnoseSelectionBias(no_test).status().code(),
            StatusCode::kFailedPrecondition);

  RatingDataset not_binary(4, 4);
  not_binary.AddTrain(0, 0, 3.5);
  not_binary.AddTest(0, 1, 1.0);
  EXPECT_EQ(DiagnoseSelectionBias(not_binary).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiagnoseSelectionBiasTest, DetectsMnarWorld) {
  // Default generator: positives over-selected (rating_coef > 0), so the
  // observed positive rate exceeds the unbiased one.
  const SimulatedData world = MakeCoatLike(3);
  const auto diagnosis = DiagnoseSelectionBias(world.dataset);
  ASSERT_TRUE(diagnosis.ok()) << diagnosis.status();
  EXPECT_TRUE(diagnosis.value().selection_bias_detected);
  EXPECT_GT(diagnosis.value().observed_positive_rate,
            diagnosis.value().unbiased_positive_rate);
  EXPECT_NE(diagnosis.value().Summary().find("SELECTION BIAS"),
            std::string::npos);
}

TEST(DiagnoseSelectionBiasTest, CleanOnMcarWorld) {
  MnarGeneratorConfig config;
  config.num_users = 150;
  config.num_items = 150;
  config.mechanism = MissingMechanism::kMcar;
  config.base_logit = -1.5;
  config.seed = 21;
  const SimulatedData world = MnarGenerator(config).Generate();
  const auto diagnosis = DiagnoseSelectionBias(world.dataset, 0.01);
  ASSERT_TRUE(diagnosis.ok());
  // Under MCAR the rates match up to sampling noise; at alpha=0.01 a
  // false positive is unlikely for this fixed seed.
  EXPECT_FALSE(diagnosis.value().selection_bias_detected);
}

TEST(DiagnoseSelectionBiasTest, MarWorldWithRatingLinkedFeatures) {
  // MAR selection driven by features that also drive ratings still shifts
  // the observed rating distribution — the diagnostic flags any coupling
  // between selection and ratings, whatever the mechanism label.
  MnarGeneratorConfig config;
  config.num_users = 200;
  config.num_items = 200;
  config.mechanism = MissingMechanism::kMar;
  config.feature_coef = 1.2;
  config.seed = 5;
  const SimulatedData world = MnarGenerator(config).Generate();
  const auto diagnosis = DiagnoseSelectionBias(world.dataset);
  ASSERT_TRUE(diagnosis.ok());
  EXPECT_TRUE(diagnosis.value().selection_bias_detected);
}

}  // namespace
}  // namespace dtrec
