#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace dtrec {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m.at_flat(1), 9.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(id.Sum(), 3.0);
}

TEST(MatrixTest, RandomFactoriesDeterministic) {
  Rng rng1(5), rng2(5);
  Matrix a = Matrix::RandomNormal(4, 4, 1.0, &rng1);
  Matrix b = Matrix::RandomNormal(4, 4, 1.0, &rng2);
  EXPECT_TRUE(a == b);
  Matrix u = Matrix::RandomUniform(4, 4, -1.0, 1.0, &rng1);
  EXPECT_GE(u.Min(), -1.0);
  EXPECT_LT(u.Max(), 1.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.Transposed() == m);
}

TEST(MatrixTest, RowCopyAndColBlock) {
  Matrix m{{1, 2, 3, 4}, {5, 6, 7, 8}};
  Matrix row = m.RowCopy(1);
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_DOUBLE_EQ(row(0, 3), 8.0);
  Matrix block = m.ColBlock(1, 3);
  EXPECT_EQ(block.cols(), 2u);
  EXPECT_DOUBLE_EQ(block(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(block(1, 1), 7.0);
}

TEST(MatrixTest, SetColBlockRoundTrip) {
  Matrix m(2, 4);
  Matrix block{{1, 2}, {3, 4}};
  m.SetColBlock(2, block);
  EXPECT_DOUBLE_EQ(m(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_TRUE(m.ColBlock(2, 4) == block);
}

TEST(MatrixTest, Reductions) {
  Matrix m{{1, -2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.Mean(), 1.5);
  EXPECT_DOUBLE_EQ(m.Min(), -2.0);
  EXPECT_DOUBLE_EQ(m.Max(), 4.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 1 + 4 + 9 + 16);
}

TEST(MatrixTest, AllCloseAndNonFinite) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0 + 1e-10, 2.0}};
  EXPECT_TRUE(a.AllClose(b));
  Matrix c{{1.1, 2.0}};
  EXPECT_FALSE(a.AllClose(c));
  EXPECT_FALSE(a.AllClose(Matrix(2, 1)));
  EXPECT_FALSE(a.HasNonFinite());
  c(0, 0) = std::nan("");
  EXPECT_TRUE(c.HasNonFinite());
}

TEST(MatrixTest, DebugStringTruncates) {
  Matrix m(10, 20, 1.0);
  const std::string s = m.DebugString(2, 3);
  EXPECT_NE(s.find("10x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ------------------------------------------------------------------- Ops

TEST(OpsTest, MatMulHandComputed) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = MatMul(a, b);
  EXPECT_TRUE((c == Matrix{{19, 22}, {43, 50}}));
}

TEST(OpsTest, MatMulIdentity) {
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(5, 5, 1.0, &rng);
  EXPECT_TRUE(MatMul(a, Matrix::Identity(5)).AllClose(a));
  EXPECT_TRUE(MatMul(Matrix::Identity(5), a).AllClose(a));
}

TEST(OpsTest, TransposedMatMulsAgreeWithNaive) {
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(4, 6, 1.0, &rng);
  Matrix b = Matrix::RandomNormal(4, 3, 1.0, &rng);
  EXPECT_TRUE(MatMulTransA(a, b).AllClose(MatMul(a.Transposed(), b)));
  Matrix c = Matrix::RandomNormal(5, 6, 1.0, &rng);
  EXPECT_TRUE(MatMulTransB(a, c).AllClose(MatMul(a, c.Transposed())));
}

TEST(OpsTest, ElementwiseOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {2, 2}};
  EXPECT_TRUE((Add(a, b) == Matrix{{3, 4}, {5, 6}}));
  EXPECT_TRUE((Sub(a, b) == Matrix{{-1, 0}, {1, 2}}));
  EXPECT_TRUE((Hadamard(a, b) == Matrix{{2, 4}, {6, 8}}));
  EXPECT_TRUE((Divide(a, b) == Matrix{{0.5, 1}, {1.5, 2}}));
  EXPECT_TRUE((Scale(a, 2.0) == Matrix{{2, 4}, {6, 8}}));
}

TEST(OpsTest, InPlaceOps) {
  Matrix a{{1, 1}};
  Matrix b{{2, 3}};
  AddScaledInPlace(&a, b, 0.5);
  EXPECT_TRUE((a == Matrix{{2, 2.5}}));
  ScaleInPlace(&a, 2.0);
  EXPECT_TRUE((a == Matrix{{4, 5}}));
}

TEST(OpsTest, MapAndSigmoid) {
  Matrix a{{0, 1}};
  Matrix doubled = Map(a, [](double x) { return 2 * x; });
  EXPECT_TRUE((doubled == Matrix{{0, 2}}));
  Matrix s = SigmoidMat(a);
  EXPECT_DOUBLE_EQ(s(0, 0), 0.5);
  EXPECT_NEAR(s(0, 1), 1.0 / (1.0 + std::exp(-1.0)), 1e-15);
}

TEST(OpsTest, DotsAndSums) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{1, 0, 1}, {0, 1, 0}};
  EXPECT_DOUBLE_EQ(RowDot(a, 0, b, 0), 4.0);
  EXPECT_DOUBLE_EQ(RowDot(a, 1, b, 1), 5.0);
  EXPECT_DOUBLE_EQ(FlatDot(a, b), 4.0 + 5.0);
  EXPECT_TRUE((ColSums(a) == Matrix{{5, 7, 9}}));
  EXPECT_TRUE((RowSums(a) == Matrix{{6}, {15}}));
}

TEST(OpsTest, HConcat) {
  Matrix a{{1}, {2}};
  Matrix b{{3, 4}, {5, 6}};
  Matrix c = HConcat(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_TRUE((c == Matrix{{1, 3, 4}, {2, 5, 6}}));
}

TEST(OpsTest, GatherAndScatter) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix g = GatherRows(a, {2, 0, 2});
  EXPECT_TRUE((g == Matrix{{5, 6}, {1, 2}, {5, 6}}));

  Matrix accum(3, 2);
  Matrix grad{{1, 1}, {2, 2}, {10, 10}};
  ScatterAddRows(&accum, {2, 0, 2}, grad);
  // Row 2 receives the 1st and 3rd gradient rows.
  EXPECT_TRUE((accum == Matrix{{2, 2}, {0, 0}, {11, 11}}));
}

}  // namespace
}  // namespace dtrec
