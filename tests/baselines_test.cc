#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dr.h"
#include "baselines/ips.h"
#include "baselines/mf_naive.h"
#include "baselines/mr.h"
#include "baselines/registry.h"
#include "experiments/evaluator.h"
#include "synth/mnar_generator.h"

namespace dtrec {
namespace {

TrainConfig TinyConfig(uint64_t seed = 77) {
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 512;
  config.max_steps_per_epoch = 15;
  config.embedding_dim = 4;
  config.learning_rate = 0.05;
  config.seed = seed;
  return config;
}

SimulatedData TinyWorld(uint64_t seed = 5) {
  MnarGeneratorConfig config;
  config.num_users = 50;
  config.num_items = 60;
  config.base_logit = -1.6;
  config.test_per_user = 10;
  config.seed = seed;
  return MnarGenerator(config).Generate();
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  const auto result = MakeTrainer("NoSuchMethod", TinyConfig());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, AllNamesConstructible) {
  for (const std::string& name : AllMethodNames()) {
    const auto result = MakeTrainer(name, TinyConfig());
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.value()->name(), name);
  }
}

TEST(RegistryTest, SemiSyntheticSubsetIsSubset) {
  const auto all = AllMethodNames();
  for (const std::string& name : SemiSyntheticMethodNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

// Every method trains on a tiny MNAR world and emits valid probabilities.
class AllMethodsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMethodsTest, FitsAndPredictsProbabilities) {
  const SimulatedData world = TinyWorld();
  auto trainer_or = MakeTrainer(GetParam(), TinyConfig());
  ASSERT_TRUE(trainer_or.ok());
  auto trainer = std::move(trainer_or).value();
  ASSERT_TRUE(trainer->Fit(world.dataset).ok()) << GetParam();

  for (size_t u = 0; u < 50; u += 9) {
    for (size_t i = 0; i < 60; i += 13) {
      const double p = trainer->Predict(u, i);
      EXPECT_TRUE(std::isfinite(p)) << GetParam();
      EXPECT_GE(p, 0.0) << GetParam();
      EXPECT_LE(p, 1.0) << GetParam();
    }
  }
  EXPECT_GT(trainer->NumParameters(), 0u);
  EXPECT_GT(trainer->Budget().total(), 0u);
}

TEST_P(AllMethodsTest, BeatsCoinFlipAuc) {
  const SimulatedData world = TinyWorld(31);
  TrainConfig config = TinyConfig(92);
  config.epochs = 10;
  config.embedding_dim = 8;
  auto trainer = std::move(MakeTrainer(GetParam(), config).value());
  ASSERT_TRUE(trainer->Fit(world.dataset).ok());
  const RankingMetrics metrics =
      EvaluateRanking(*trainer, world.dataset, 5);
  EXPECT_GT(metrics.auc, 0.52) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Everything, AllMethodsTest, ::testing::ValuesIn(AllMethodNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(TrainerBaseTest, FitIsReentrant) {
  // Fitting the same trainer twice (different datasets) must fully reset
  // model and optimizer state.
  MfNaiveTrainer trainer(TinyConfig());
  const SimulatedData first = TinyWorld(61);
  ASSERT_TRUE(trainer.Fit(first.dataset).ok());
  const double before = trainer.Predict(0, 0);
  const SimulatedData second = TinyWorld(62);
  ASSERT_TRUE(trainer.Fit(second.dataset).ok());
  const double after = trainer.Predict(0, 0);
  EXPECT_TRUE(std::isfinite(before));
  EXPECT_TRUE(std::isfinite(after));
  // Same trainer refit on the same data reproduces itself (determinism).
  MfNaiveTrainer twin(TinyConfig());
  ASSERT_TRUE(twin.Fit(second.dataset).ok());
  EXPECT_DOUBLE_EQ(twin.Predict(0, 0), after);
}

TEST(ExtensionMethodsTest, DtMrdrTrainsAndPredicts) {
  const SimulatedData world = TinyWorld(51);
  for (const std::string& name : ExtensionMethodNames()) {
    auto trainer = std::move(MakeTrainer(name, TinyConfig()).value());
    ASSERT_TRUE(trainer->Fit(world.dataset).ok()) << name;
    const double p = trainer->Predict(1, 1);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MfNaiveTest, FitRejectsInvalidDataset) {
  RatingDataset empty(3, 3);
  MfNaiveTrainer trainer(TinyConfig());
  EXPECT_FALSE(trainer.Fit(empty).ok());
}

TEST(MfNaiveTest, ReducesObservedError) {
  const SimulatedData world = TinyWorld(8);
  TrainConfig config = TinyConfig();
  config.epochs = 10;
  MfNaiveTrainer trainer(config);
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  // Observed squared error after training is far below the 0.25 a constant
  // 0.5 predictor would give.
  double total = 0.0;
  for (const auto& t : world.dataset.train()) {
    const double diff = trainer.Predict(t.user, t.item) - t.rating;
    total += diff * diff;
  }
  EXPECT_LT(total / static_cast<double>(world.dataset.train().size()),
            0.24);
}

TEST(IpsTest, OraclePropensityOverrideIsUsed) {
  const SimulatedData world = TinyWorld(12);
  IpsTrainer trainer(TinyConfig());
  size_t calls = 0;
  trainer.set_propensity_fn(
      [&world, &calls](size_t u, size_t i, double) {
        ++calls;
        return world.oracle.mnar_propensity(u, i);
      });
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  EXPECT_GT(calls, 0u);
}

TEST(IpsTest, MfPropensityVariantTrains) {
  const SimulatedData world = TinyWorld(14);
  TrainConfig config = TinyConfig();
  config.mf_propensity = true;
  IpsTrainer trainer(config);
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  // The MF propensity's own tables are counted: 2x an identity model.
  TrainConfig plain = TinyConfig();
  IpsTrainer baseline(plain);
  ASSERT_TRUE(baseline.Fit(world.dataset).ok());
  EXPECT_GT(trainer.NumParameters(), baseline.NumParameters());
}

TEST(DrTest, TargetingDeltaStaysFinite) {
  const SimulatedData world = TinyWorld(21);
  auto trainer = std::move(MakeTrainer("TDR-JL", TinyConfig()).value());
  ASSERT_TRUE(trainer->Fit(world.dataset).ok());
}

TEST(DrTest, ParameterCountsDoubleVsIps) {
  TrainConfig config = TinyConfig();
  config.use_bias = true;  // count the full MF head incl. biases
  const SimulatedData world = TinyWorld(23);
  auto ips = std::move(MakeTrainer("IPS", config).value());
  auto dr = std::move(MakeTrainer("DR-JL", config).value());
  ASSERT_TRUE(ips->Fit(world.dataset).ok());
  ASSERT_TRUE(dr->Fit(world.dataset).ok());
  // The DR family carries a second (imputation) MF on top of IPS's
  // prediction MF + logistic propensity: one extra MF of tables+biases.
  const size_t one_mf = 50 * 4 + 60 * 4 + 50 + 60;  // tables + biases
  EXPECT_EQ(dr->NumParameters(), ips->NumParameters() + one_mf);
  EXPECT_GT(dr->NumParameters(), ips->NumParameters());
}

TEST(MrTest, MixtureStaysOnSimplex) {
  const SimulatedData world = TinyWorld(29);
  MrTrainer trainer(TinyConfig());
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  const auto mix = trainer.PropensityMixture();
  ASSERT_EQ(mix.size(), 3u);
  double total = 0.0;
  for (double w : mix) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TrainerBaseTest, LrDecayStillTrains) {
  const SimulatedData world = TinyWorld(41);
  TrainConfig config = TinyConfig();
  config.lr_decay = 0.5;  // aggressive inverse-time decay
  config.epochs = 8;
  MfNaiveTrainer trainer(config);
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  double total = 0.0;
  for (const auto& t : world.dataset.train()) {
    const double diff = trainer.Predict(t.user, t.item) - t.rating;
    total += diff * diff;
  }
  EXPECT_LT(total / static_cast<double>(world.dataset.train().size()),
            0.25);
}

TEST(LossInventoryTest, MatchesTable2Structure) {
  TrainConfig config = TinyConfig();
  EXPECT_TRUE(MakeTrainer("ESMM", config).value()->Losses().ctcvr_loss);
  EXPECT_TRUE(
      MakeTrainer("DT-IPS", config).value()->Losses().disentangle_loss);
  EXPECT_TRUE(
      MakeTrainer("DT-IPS", config).value()->Losses().propensity_loss);
  EXPECT_FALSE(MakeTrainer("IPS", config).value()->Losses().ctcvr_loss);
  EXPECT_FALSE(
      MakeTrainer("DR-JL", config).value()->Losses().disentangle_loss);
}

}  // namespace
}  // namespace dtrec
