#include <gtest/gtest.h>

#include <cmath>

#include "optim/adagrad.h"
#include "optim/adam.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "optim/sgd.h"

namespace dtrec {
namespace {

TEST(SgdTest, PlainStepMath) {
  Sgd opt(0.1);
  Matrix param{{1.0, 2.0}};
  Matrix grad{{10.0, -10.0}};
  opt.Step(&param, grad);
  EXPECT_DOUBLE_EQ(param(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(param(0, 1), 3.0);
}

TEST(SgdTest, WeightDecayShrinksParams) {
  Sgd opt(0.1, 0.0, /*weight_decay=*/1.0);
  Matrix param{{1.0}};
  Matrix zero_grad{{0.0}};
  opt.Step(&param, zero_grad);
  EXPECT_DOUBLE_EQ(param(0, 0), 0.9);
}

TEST(SgdTest, MomentumAccumulates) {
  Sgd opt(1.0, 0.5);
  Matrix param{{0.0}};
  Matrix grad{{1.0}};
  opt.Step(&param, grad);  // v=1, p=-1
  EXPECT_DOUBLE_EQ(param(0, 0), -1.0);
  opt.Step(&param, grad);  // v=1.5, p=-2.5
  EXPECT_DOUBLE_EQ(param(0, 0), -2.5);
  opt.Reset();
  opt.Step(&param, grad);  // momentum state cleared: v=1
  EXPECT_DOUBLE_EQ(param(0, 0), -3.5);
}

TEST(AdamTest, FirstStepIsSignedLearningRate) {
  Adam opt(0.001);
  Matrix param{{1.0, 1.0}};
  Matrix grad{{0.5, -3.0}};
  opt.Step(&param, grad);
  // After bias correction the first Adam step is ≈ lr·sign(g).
  EXPECT_NEAR(param(0, 0), 1.0 - 0.001, 1e-6);
  EXPECT_NEAR(param(0, 1), 1.0 + 0.001, 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam opt(0.1);
  Matrix x{{5.0, -3.0}};
  for (int i = 0; i < 500; ++i) {
    Matrix grad{{2.0 * x(0, 0), 2.0 * x(0, 1)}};  // f = x²+y²
    opt.Step(&x, grad);
  }
  EXPECT_NEAR(x(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(x(0, 1), 0.0, 1e-2);
}

TEST(AdamTest, SeparateSlotsPerParameter) {
  Adam opt(0.1);
  Matrix a{{1.0}}, b{{1.0}};
  Matrix big{{100.0}}, small{{0.001}};
  opt.Step(&a, big);
  opt.Step(&b, small);
  // Both move by ≈ lr on the first step regardless of gradient scale
  // (per-parameter second-moment slots).
  EXPECT_NEAR(a(0, 0), 0.9, 1e-3);
  EXPECT_NEAR(b(0, 0), 0.9, 1e-3);
}

TEST(AdaGradTest, StepShrinksWithAccumulatedGradient) {
  AdaGrad opt(1.0);
  Matrix x{{0.0}};
  Matrix grad{{1.0}};
  opt.Step(&x, grad);
  const double first_step = -x(0, 0);
  EXPECT_NEAR(first_step, 1.0, 1e-6);
  const double before = x(0, 0);
  opt.Step(&x, grad);
  const double second_step = before - x(0, 0);
  EXPECT_LT(second_step, first_step);
  EXPECT_NEAR(second_step, 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(MakeOptimizerTest, BuildsEachKind) {
  EXPECT_EQ(MakeOptimizer(OptimizerKind::kSgd, 0.1)->name(), "sgd");
  EXPECT_EQ(MakeOptimizer(OptimizerKind::kAdam, 0.1)->name(), "adam");
  EXPECT_EQ(MakeOptimizer(OptimizerKind::kAdaGrad, 0.1)->name(), "adagrad");
}

TEST(ClipGradNormTest, ClipsOnlyWhenAboveThreshold) {
  Matrix g1{{3.0}}, g2{{4.0}};  // joint norm 5
  const double norm = ClipGradNorm({&g1, &g2}, 10.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_DOUBLE_EQ(g1(0, 0), 3.0);  // untouched

  const double norm2 = ClipGradNorm({&g1, &g2}, 1.0);
  EXPECT_DOUBLE_EQ(norm2, 5.0);
  EXPECT_NEAR(std::sqrt(g1.FrobeniusNormSquared() +
                        g2.FrobeniusNormSquared()),
              1.0, 1e-12);
}

TEST(LrScheduleTest, Constant) {
  ConstantLr lr(0.05);
  EXPECT_DOUBLE_EQ(lr.LearningRate(0), 0.05);
  EXPECT_DOUBLE_EQ(lr.LearningRate(1000), 0.05);
}

TEST(LrScheduleTest, ExponentialDecay) {
  ExponentialDecayLr lr(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(lr.LearningRate(0), 1.0);
  EXPECT_NEAR(lr.LearningRate(10), 0.5, 1e-12);
  EXPECT_NEAR(lr.LearningRate(20), 0.25, 1e-12);
}

TEST(LrScheduleTest, InverseTimeDecay) {
  InverseTimeDecayLr lr(1.0, 0.1);
  EXPECT_DOUBLE_EQ(lr.LearningRate(0), 1.0);
  EXPECT_NEAR(lr.LearningRate(10), 0.5, 1e-12);
}

TEST(OptimizerTest, LearningRateMutable) {
  Sgd opt(0.1);
  opt.set_learning_rate(0.2);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.2);
  Matrix p{{0.0}};
  Matrix g{{1.0}};
  opt.Step(&p, g);
  EXPECT_DOUBLE_EQ(p(0, 0), -0.2);
}

}  // namespace
}  // namespace dtrec
