#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "util/math_util.h"
#include "util/numeric_guard.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace dtrec {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "NotFound: missing");
}

Status FailsThenPropagates() {
  DTREC_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

#ifndef NDEBUG
TEST(ResultDeathTest, ValueOnErrorDies) {
  // All three value() overloads guard against reading an error Result.
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH((void)r.value(), "value\\(\\) called on error Result");
  const Result<int>& cr = r;
  EXPECT_DEATH((void)cr.value(), "value\\(\\) called on error Result");
  EXPECT_DEATH((void)std::move(r).value(),
               "value\\(\\) called on error Result");
}
#endif

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.3f", 1.23456), "1.235");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, FormatDoubleAndStartsWith) {
  EXPECT_EQ(FormatDouble(0.123456, 4), "0.1235");
  EXPECT_TRUE(StartsWith("DT-IPS", "DT-"));
  EXPECT_FALSE(StartsWith("IPS", "DT-"));
  EXPECT_FALSE(StartsWith("D", "DT-"));
}

// ---------------------------------------------------------------- MathUtil

TEST(MathUtilTest, SigmoidStableAndCorrect) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(-800.0), 0.0, 1e-12);  // no overflow
  EXPECT_NEAR(Sigmoid(800.0), 1.0, 1e-12);
}

TEST(MathUtilTest, LogitInvertsSigmoid) {
  for (double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(Sigmoid(Logit(p)), p, 1e-12);
  }
}

TEST(MathUtilTest, Log1pExpMatchesNaiveInSafeRange) {
  for (double x : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(Log1pExp(x), std::log1p(std::exp(x)), 1e-12);
  }
  EXPECT_NEAR(Log1pExp(1000.0), 1000.0, 1e-9);  // no overflow
}

TEST(MathUtilTest, BinaryCrossEntropyClampsProbabilities) {
  EXPECT_NEAR(BinaryCrossEntropy(1.0, 0.5), std::log(2.0), 1e-12);
  EXPECT_TRUE(std::isfinite(BinaryCrossEntropy(1.0, 0.0)));
  EXPECT_TRUE(std::isfinite(BinaryCrossEntropy(0.0, 1.0)));
}

TEST(MathUtilTest, NormalPdfPeak) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.0), NormalPdf(-1.0), 1e-15);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.UniformUint64(10), 10u);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

// ---------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), watch.ElapsedSeconds());
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

// ---------------------------------------------------------------- Tables

TEST(TableWriterTest, ConsoleRendering) {
  TableWriter table("Demo");
  table.SetHeader({"Method", "AUC"});
  table.AddRow({"MF", "0.70"});
  table.AddRow({"DT-DR", "0.74"});
  std::ostringstream os;
  table.RenderConsole(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("DT-DR"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableWriterTest, CsvEscaping) {
  TableWriter table("T");
  table.SetHeader({"a", "b"});
  table.AddRow({"x,y", "he said \"hi\""});
  std::ostringstream os;
  table.RenderCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TableWriterTest, WriteCsvFileFailsOnBadPath) {
  TableWriter table("T");
  table.SetHeader({"a"});
  const Status st = table.WriteCsvFile("/nonexistent_dir_xyz/out.csv");
  EXPECT_FALSE(st.ok());
  // Routed through WriteFileAtomic, which reports the failed mkstemp/open
  // syscall as an internal error (not a caller-argument problem).
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(TableWriterTest, WriteCsvFileRoundTrip) {
  TableWriter table("T");
  table.SetHeader({"k", "v"});
  table.AddRow({"x", "1"});
  const std::string path = testing::TempDir() + "/dtrec_table.csv";
  ASSERT_TRUE(table.WriteCsvFile(path).ok());
}

// --------------------------------------------------------- NumericGuard

/// Minimal stand-in satisfying the MatLike shape the guards expect, so
/// util_test does not grow a dependency on tensor/.
struct TinyMat {
  std::vector<double> v;
  size_t r = 1;
  size_t size() const { return v.size(); }
  double at_flat(size_t i) const { return v[i]; }
  size_t rows() const { return r; }
  size_t cols() const { return r == 0 ? 0 : v.size() / r; }
};

TEST(NumericGuardTest, FlagMatchesBuildConfig) {
#ifdef DTREC_NUMERIC_CHECKS
  EXPECT_TRUE(kNumericChecksEnabled);
#else
  EXPECT_FALSE(kNumericChecksEnabled);
#endif
}

TEST(NumericGuardTest, FirstNonFiniteLocatesBadEntry) {
  const TinyMat ok{{1.0, -2.5, 0.0}, 1};
  EXPECT_EQ(numeric_internal::FirstNonFinite(ok), ok.size());
  const TinyMat bad{{1.0, std::nan(""), 3.0}, 1};
  EXPECT_EQ(numeric_internal::FirstNonFinite(bad), 1u);
  const TinyMat inf{{1.0, 2.0, HUGE_VAL}, 1};
  EXPECT_EQ(numeric_internal::FirstNonFinite(inf), 2u);
}

TEST(NumericGuardTest, WellFormedValuesPassInEveryBuild) {
  // These must be silent no-ops whether or not checks are compiled in.
  const TinyMat m{{0.0, 1.0, -3.5, 2.0}, 2};
  const TinyMat same_shape{{9.0, 9.0, 9.0, 9.0}, 2};
  DTREC_ASSERT_FINITE(m, "util_test");
  DTREC_ASSERT_FINITE_VAL(42.0, "util_test");
  DTREC_ASSERT_PROPENSITY(0.5);
  DTREC_ASSERT_PROPENSITY(1.0);
  DTREC_ASSERT_SHAPE(m, same_shape);
}

#ifdef DTREC_NUMERIC_CHECKS

TEST(NumericGuardDeathTest, NonFiniteMatrixAbortsNamingTheOp) {
  const TinyMat bad{{1.0, std::nan(""), 3.0}, 1};
  EXPECT_DEATH(DTREC_ASSERT_FINITE(bad, "UnitTestOp"),
               "numeric check failed.*UnitTestOp.*flat index 1");
}

TEST(NumericGuardDeathTest, NonFiniteScalarAborts) {
  EXPECT_DEATH(DTREC_ASSERT_FINITE_VAL(std::nan(""), "ScalarOp"), "ScalarOp");
}

TEST(NumericGuardDeathTest, PropensityOutsideUnitIntervalAborts) {
  EXPECT_DEATH(DTREC_ASSERT_PROPENSITY(0.0), "outside \\(0, 1\\]");
  EXPECT_DEATH(DTREC_ASSERT_PROPENSITY(1.5), "outside \\(0, 1\\]");
  EXPECT_DEATH(DTREC_ASSERT_PROPENSITY(std::nan("")), "outside \\(0, 1\\]");
}

TEST(NumericGuardDeathTest, ShapeMismatchAborts) {
  const TinyMat a{{1.0, 2.0}, 1};
  const TinyMat b{{1.0, 2.0, 3.0}, 1};
  EXPECT_DEATH(DTREC_ASSERT_SHAPE(a, b), "shape mismatch");
}

#else  // !DTREC_NUMERIC_CHECKS

TEST(NumericGuardTest, NoOpBuildNeverEvaluatesArguments) {
  int evals = 0;
  auto poisoned = [&evals]() {
    ++evals;
    return TinyMat{{std::nan("")}, 1};
  };
  // In an unchecked build the macros expand to unevaluated sizeof, so the
  // call below must not run and the NaN must not be inspected.
  DTREC_ASSERT_FINITE(poisoned(), "unused");
  DTREC_ASSERT_FINITE_VAL((++evals, std::nan("")), "unused");
  DTREC_ASSERT_PROPENSITY((++evals, -1.0));
  EXPECT_EQ(evals, 0);
}

#endif  // DTREC_NUMERIC_CHECKS

}  // namespace
}  // namespace dtrec
