#include <gtest/gtest.h>

#include <cmath>

#include "core/disentangled_embeddings.h"
#include "core/dt_dr.h"
#include "core/dt_ips.h"
#include "core/losses.h"
#include "experiments/evaluator.h"
#include "synth/mnar_generator.h"
#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dtrec {
namespace {

DisentangledEmbeddings SmallEmb(uint64_t seed = 4) {
  Rng rng(seed);
  return DisentangledEmbeddings::Create(12, 15, 6, 2, 0.3, -1.0, &rng);
}

TEST(DisentangledEmbeddingsTest, ShapesAndCounts) {
  DisentangledEmbeddings emb = SmallEmb();
  EXPECT_EQ(emb.primary_dim(), 2u);
  EXPECT_EQ(emb.auxiliary_dim(), 4u);
  EXPECT_EQ(emb.total_dim(), 6u);
  EXPECT_EQ(emb.NumParameters(),
            12u * 6u + 15u * 6u + 6u + 1u);
  EXPECT_EQ(emb.Params().size(), 6u);
}

TEST(DisentangledEmbeddingsTest, RatingLogitUsesPrimaryBlockOnly) {
  DisentangledEmbeddings emb = SmallEmb();
  const double expected = RowDot(emb.p_primary, 3, emb.q_primary, 7);
  EXPECT_DOUBLE_EQ(emb.RatingLogit(3, 7), expected);
  // Mutating the auxiliary block must not change the rating logit.
  emb.p_auxiliary(3, 0) += 100.0;
  EXPECT_DOUBLE_EQ(emb.RatingLogit(3, 7), expected);
}

TEST(DisentangledEmbeddingsTest, PropensityLogitUsesFullEmbedding) {
  DisentangledEmbeddings emb = SmallEmb();
  const double before = emb.PropensityLogit(3, 7);
  emb.p_auxiliary(3, 0) += 1.0;
  EXPECT_NE(emb.PropensityLogit(3, 7), before);
}

TEST(DisentangledEmbeddingsTest, GraphMatchesScalarForward) {
  DisentangledEmbeddings emb = SmallEmb();
  ag::Tape tape;
  const std::vector<size_t> users{0, 5, 11};
  const std::vector<size_t> items{14, 2, 7};
  DisentangledGraph graph =
      BuildDisentangledGraph(&tape, emb, users, items);
  for (size_t i = 0; i < users.size(); ++i) {
    EXPECT_NEAR(graph.rating_logits.value()(i, 0),
                emb.RatingLogit(users[i], items[i]), 1e-12);
    EXPECT_NEAR(graph.prop_logits.value()(i, 0),
                emb.PropensityLogit(users[i], items[i]), 1e-12);
  }
}

TEST(CoreLossesTest, GramEqualsNaiveRegularization) {
  DisentangledEmbeddings emb = SmallEmb(9);
  const double naive = RegularizationLossNaive(emb);
  const double gram = RegularizationLossGram(emb);
  EXPECT_NEAR(gram, naive, 1e-9 * (1.0 + naive));
}

TEST(CoreLossesTest, DisentangleLossValueMatchesGraph) {
  DisentangledEmbeddings emb = SmallEmb(10);
  ag::Tape tape;
  DisentangledGraph graph = BuildDisentangledGraph(&tape, emb, {0}, {0});
  // The graph losses are the paper's F-norms normalized by table sizes
  // (12 users, 15 items here) — see core/losses.h.
  const double user_raw =
      MatMulTransA(emb.p_primary, emb.p_auxiliary).FrobeniusNormSquared();
  const double item_raw =
      MatMulTransA(emb.q_primary, emb.q_auxiliary).FrobeniusNormSquared();
  EXPECT_NEAR(DisentangleLoss(graph).value()(0, 0),
              user_raw / 12.0 + item_raw / 15.0, 1e-9);
  EXPECT_NEAR(RegularizationLoss(graph).value()(0, 0),
              RegularizationLossGram(emb) / (12.0 * 15.0), 1e-9);
}

TEST(CoreLossesTest, DisentangleLossZeroForOrthogonalBlocks) {
  DisentangledEmbeddings emb = SmallEmb();
  // Make P″, Q″ exactly zero: outer products vanish.
  emb.p_auxiliary.SetZero();
  emb.q_auxiliary.SetZero();
  EXPECT_DOUBLE_EQ(emb.DisentangleLossValue(), 0.0);
}

// ------------------------------------------------------------- DT training

TrainConfig DtConfig(uint64_t seed = 55) {
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 512;
  config.max_steps_per_epoch = 20;
  config.embedding_dim = 6;
  config.disentangle_dim = 3;
  config.learning_rate = 0.05;
  config.alpha = 1.0;
  config.beta = 1e-3;
  config.gamma = 1e-5;
  config.seed = seed;
  return config;
}

SimulatedData DtWorld(uint64_t seed = 3) {
  MnarGeneratorConfig config;
  config.num_users = 60;
  config.num_items = 70;
  config.base_logit = -1.8;
  config.test_per_user = 12;
  config.seed = seed;
  return MnarGenerator(config).Generate();
}

TEST(DtIpsTest, RejectsBadDisentangleDim) {
  TrainConfig config = DtConfig();
  config.disentangle_dim = config.embedding_dim;  // no auxiliary block
  DtIpsTrainer trainer(config);
  EXPECT_FALSE(trainer.Fit(DtWorld().dataset).ok());
}

TEST(DtIpsTest, TrainsAndRecordsDisentangleHistory) {
  TrainConfig config = DtConfig();
  config.beta = 5e-2;  // strong disentangling so the recorded loss falls
  DtIpsTrainer trainer(config);
  const SimulatedData world = DtWorld();
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  ASSERT_EQ(trainer.disentangle_history().size(), 6u);
  ASSERT_EQ(trainer.normalized_disentangle_history().size(), 6u);
  // The (scale-invariant) disentangling must shrink over training — the
  // Figure 4c/4d trend. (The raw F-norm can transiently grow while the
  // embeddings themselves grow from their small init.)
  EXPECT_LT(trainer.normalized_disentangle_history().back(),
            trainer.normalized_disentangle_history().front());
  // Valid probabilities everywhere.
  const double p = trainer.Predict(0, 0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(DtIpsTest, LargerBetaDrivesBlocksMoreOrthogonal) {
  const SimulatedData world = DtWorld(17);
  TrainConfig weak = DtConfig(91);
  weak.beta = 0.0;
  TrainConfig strong = DtConfig(91);
  strong.beta = 1e-1;
  DtIpsTrainer weak_trainer(weak), strong_trainer(strong);
  ASSERT_TRUE(weak_trainer.Fit(world.dataset).ok());
  ASSERT_TRUE(strong_trainer.Fit(world.dataset).ok());
  EXPECT_LT(strong_trainer.embeddings().DisentangleLossValue(),
            weak_trainer.embeddings().DisentangleLossValue());
}

TEST(DtIpsTest, PropensityEstimatesTrackOracle) {
  const SimulatedData world = DtWorld(23);
  TrainConfig config = DtConfig(101);
  config.epochs = 10;
  DtIpsTrainer trainer(config);
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  // The learned MNAR propensity should correlate positively with the true
  // one across cells.
  double mean_est = 0.0, mean_true = 0.0;
  const size_t m = world.dataset.num_users(), n = world.dataset.num_items();
  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      mean_est += trainer.PropensityEstimate(u, i);
      mean_true += world.oracle.mnar_propensity(u, i);
    }
  }
  mean_est /= static_cast<double>(m * n);
  mean_true /= static_cast<double>(m * n);
  double cov = 0.0, var_e = 0.0, var_t = 0.0;
  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      const double de = trainer.PropensityEstimate(u, i) - mean_est;
      const double dt = world.oracle.mnar_propensity(u, i) - mean_true;
      cov += de * dt;
      var_e += de * de;
      var_t += dt * dt;
    }
  }
  // Variance of propensity estimates, not an inverse weight — clipping
  // the denominator here would bias the correlation being tested.
  // dtrec-analyze: allow(propensity-taint)
  const double corr = cov / std::sqrt(var_e * var_t);
  EXPECT_GT(corr, 0.2);
  // And the average estimate matches the marginal rate.
  EXPECT_NEAR(mean_est, world.dataset.TrainDensity(), 0.1);
}

TEST(DtIpsTest, GlmPropensityAblationTrains) {
  // dt_mlp_propensity=false falls back to the per-dimension GLM head.
  TrainConfig config = DtConfig(71);
  config.dt_mlp_propensity = false;
  DtIpsTrainer trainer(config);
  const SimulatedData world = DtWorld(41);
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  const double p = trainer.PropensityEstimate(2, 3);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // GLM path excludes the tower parameters.
  TrainConfig with_mlp = DtConfig(71);
  DtIpsTrainer mlp_trainer(with_mlp);
  ASSERT_TRUE(mlp_trainer.Fit(world.dataset).ok());
  EXPECT_GT(mlp_trainer.NumParameters(), trainer.NumParameters());
}

TEST(DtDrTest, HasImputationModelParams) {
  const SimulatedData world = DtWorld(31);
  DtIpsTrainer ips(DtConfig(7));
  DtDrTrainer dr(DtConfig(7));
  ASSERT_TRUE(ips.Fit(world.dataset).ok());
  ASSERT_TRUE(dr.Fit(world.dataset).ok());
  EXPECT_GT(dr.NumParameters(), ips.NumParameters());
  EXPECT_GT(dr.Budget().embedding_params, ips.Budget().embedding_params);
}

TEST(DtDrTest, TrainsToValidProbabilities) {
  DtDrTrainer trainer(DtConfig(13));
  const SimulatedData world = DtWorld(37);
  ASSERT_TRUE(trainer.Fit(world.dataset).ok());
  const RankingMetrics metrics =
      EvaluateRanking(trainer, world.dataset, 5);
  EXPECT_GT(metrics.auc, 0.5);
}

TEST(DtTest, AblationOrderOnMnarWorld) {
  // With both losses on, DT-IPS should do at least as well as with both
  // off (averaged over a few worlds to damp noise) — the Table V trend.
  double with_both = 0.0, without = 0.0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    const SimulatedData world = DtWorld(seed);
    TrainConfig on = DtConfig(200 + seed);
    TrainConfig off = DtConfig(200 + seed);
    off.beta = 0.0;
    off.gamma = 0.0;
    DtIpsTrainer trainer_on(on), trainer_off(off);
    ASSERT_TRUE(trainer_on.Fit(world.dataset).ok());
    ASSERT_TRUE(trainer_off.Fit(world.dataset).ok());
    with_both += EvaluateRanking(trainer_on, world.dataset, 5).auc;
    without += EvaluateRanking(trainer_off, world.dataset, 5).auc;
  }
  EXPECT_GT(with_both, without - 0.03);
}

}  // namespace
}  // namespace dtrec
