#include <gtest/gtest.h>

#include <cmath>

#include "models/embedding_table.h"
#include "models/mf_model.h"
#include "models/mlp.h"
#include "models/param_count.h"
#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dtrec {
namespace {

TEST(EmbeddingTableTest, CreateAndCount) {
  Rng rng(1);
  EmbeddingTable table = EmbeddingTable::Create(10, 4, 0.1, &rng);
  EXPECT_EQ(table.rows(), 10u);
  EXPECT_EQ(table.dim(), 4u);
  EXPECT_EQ(table.num_parameters(), 40u);
}

MfModelConfig SmallConfig(bool bias) {
  MfModelConfig config;
  config.num_users = 6;
  config.num_items = 8;
  config.dim = 3;
  config.use_bias = bias;
  config.seed = 42;
  return config;
}

TEST(MfModelTest, ScoreMatchesManualDot) {
  MfModel model(SmallConfig(false));
  const double expected = RowDot(model.p(), 2, model.q(), 5);
  EXPECT_DOUBLE_EQ(model.Score(2, 5), expected);
  EXPECT_DOUBLE_EQ(model.PredictProbability(2, 5), Sigmoid(expected));
}

TEST(MfModelTest, BiasTermsAdd) {
  MfModel model(SmallConfig(true));
  // Bias starts at 0 so score matches the dot.
  EXPECT_DOUBLE_EQ(model.Score(1, 1), RowDot(model.p(), 1, model.q(), 1));
  EXPECT_EQ(model.Params().size(), 4u);
  EXPECT_EQ(model.NumParameters(), 6u * 3u + 8u * 3u + 6u + 8u);
}

TEST(MfModelTest, FullProbabilityMatrixConsistent) {
  MfModel model(SmallConfig(false));
  const Matrix full = model.FullProbabilityMatrix();
  EXPECT_EQ(full.rows(), 6u);
  EXPECT_EQ(full.cols(), 8u);
  for (size_t u = 0; u < 6; ++u) {
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(full(u, i), model.PredictProbability(u, i), 1e-12);
    }
  }
}

TEST(MfModelTest, BatchLogitsMatchScalarScores) {
  MfModel model(SmallConfig(true));
  ag::Tape tape;
  const auto leaves = model.MakeLeaves(&tape);
  const std::vector<size_t> users{0, 3, 5};
  const std::vector<size_t> items{7, 2, 0};
  ag::Var logits = model.BatchLogits(&tape, leaves, users, items);
  for (size_t i = 0; i < users.size(); ++i) {
    EXPECT_NEAR(logits.value()(i, 0), model.Score(users[i], items[i]),
                1e-12);
  }
}

TEST(MlpHeadTest, ForwardConsistency) {
  Rng rng(3);
  MlpHead head(4, 5, 0.5, &rng);
  EXPECT_EQ(head.input_dim(), 4u);
  EXPECT_EQ(head.hidden_dim(), 5u);
  EXPECT_EQ(head.NumParameters(), 4u * 5u + 5u + 5u + 1u);

  Matrix input = Matrix::RandomNormal(3, 4, 1.0, &rng);
  // Autograd forward equals the plain per-row forward.
  ag::Tape tape;
  const auto leaves = head.MakeLeaves(&tape);
  ag::Var batch_out = head.Forward(leaves, tape.Leaf(input));
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(batch_out.value()(r, 0), head.Forward(input.RowCopy(r)),
                1e-12);
  }
}

TEST(MlpHeadTest, TrainableOnXorLikeTask) {
  Rng rng(7);
  MlpHead head(2, 8, 0.7, &rng);
  // Simple separable task: logit should learn sign of x0.
  Matrix inputs(64, 2);
  Matrix labels(64, 1);
  for (size_t i = 0; i < 64; ++i) {
    inputs(i, 0) = rng.Normal();
    inputs(i, 1) = rng.Normal();
    labels(i, 0) = inputs(i, 0) > 0 ? 1.0 : 0.0;
  }
  const Matrix w(64, 1, 1.0 / 64.0);
  for (int step = 0; step < 300; ++step) {
    ag::Tape tape;
    const auto leaves = head.MakeLeaves(&tape);
    ag::Var out = head.Forward(leaves, tape.Constant(inputs));
    ag::Var loss = ag::SigmoidBceSum(out, labels, w);
    tape.Backward(loss);
    auto params = head.Params();
    for (size_t i = 0; i < leaves.size(); ++i) {
      AddScaledInPlace(params[i], tape.GradOf(leaves[i]), -0.5);
    }
  }
  // Training fits: accuracy > 90%.
  size_t correct = 0;
  for (size_t i = 0; i < 64; ++i) {
    const double logit = head.Forward(inputs.RowCopy(i));
    correct += ((logit > 0) == (labels(i, 0) > 0.5)) ? 1 : 0;
  }
  EXPECT_GT(correct, 57u);
}

TEST(ParamCountTest, BudgetTotals) {
  ParamBudget budget;
  budget.embedding_params = 100;
  budget.hidden_params = 20;
  budget.other_params = 3;
  EXPECT_EQ(budget.total(), 123u);
}

TEST(ParamCountTest, RelativeSizeRounding) {
  EXPECT_EQ(RelativeSize(100, 100), "1x");
  EXPECT_EQ(RelativeSize(210, 100), "2x");
  EXPECT_EQ(RelativeSize(150, 100), "1.5x");
  EXPECT_EQ(RelativeSize(300, 100), "3x");
  EXPECT_EQ(RelativeSize(10, 0), "n/a");
}

}  // namespace
}  // namespace dtrec
