#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/numeric_guard.h"
#include "util/random.h"

namespace dtrec {
namespace {

// Equivalence suite: the blocked, packed-panel kernels must match the
// naive triple-loop references bit-for-bit modulo summation order, over
// shapes chosen to hit every packing edge case — single rows/columns,
// sizes that are not multiples of the micro/cache tiles, exact tile
// boundaries and boundaries ± 1, and empty operands.

Matrix BlockedMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  kernels::Gemm(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), b.data(),
                b.cols(), c.data(), c.cols());
  return c;
}

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  kernels::naive::Gemm(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.data(), c.cols());
  return c;
}

struct Shape {
  size_t m, k, n;
};

std::vector<Shape> EdgeShapes() {
  using kernels::kKc;
  using kernels::kMc;
  using kernels::kMr;
  using kernels::kNc;
  using kernels::kNr;
  return {
      {1, 1, 1},
      {1, 7, 1},
      {1, 13, 9},           // single output row
      {9, 13, 1},           // single output column
      {3, 1, 5},            // inner dim 1
      {kMr, 5, kNr},        // exactly one micro-tile
      {kMr - 1, 5, kNr - 1},
      {kMr + 1, 5, kNr + 1},
      {2 * kMr + 3, 17, 3 * kNr + 5},  // ragged micro-tiles
      {kMc, 8, kNr},        // exactly one A cache panel
      {kMc + 1, kKc + 1, kNr + 3},     // cache-panel boundary + 1
      {7, kKc, 11},         // exactly one k block
      {5, 2 * kKc + 1, 9},  // k spans three blocks, ragged
      {3, 4, kNc},          // exactly one B cache panel
      {3, 4, kNc + 1},
      {65, 129, 65},        // odd sizes above every tile
  };
}

TEST(KernelsTest, GemmMatchesNaiveOnEdgeShapes) {
  Rng rng(11);
  for (const Shape& s : EdgeShapes()) {
    const Matrix a = Matrix::RandomNormal(s.m, s.k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.n, 1.0, &rng);
    EXPECT_TRUE(BlockedMatMul(a, b).AllClose(NaiveMatMul(a, b), 1e-12, 1e-12))
        << "shape " << s.m << "x" << s.k << " * " << s.k << "x" << s.n;
  }
}

TEST(KernelsTest, GemmTransAMatchesNaive) {
  Rng rng(12);
  for (const Shape& s : EdgeShapes()) {
    // A stored k×m, logical op Aᵀ·B.
    const Matrix a = Matrix::RandomNormal(s.k, s.m, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.n, 1.0, &rng);
    Matrix blocked(s.m, s.n), naive(s.m, s.n);
    kernels::GemmTransA(s.m, s.n, s.k, a.data(), a.cols(), b.data(), b.cols(),
                        blocked.data(), blocked.cols());
    kernels::naive::GemmTransA(s.m, s.n, s.k, a.data(), a.cols(), b.data(),
                               b.cols(), naive.data(), naive.cols());
    EXPECT_TRUE(blocked.AllClose(naive, 1e-12, 1e-12))
        << "shape m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(KernelsTest, GemmTransBMatchesNaive) {
  Rng rng(13);
  for (const Shape& s : EdgeShapes()) {
    const Matrix a = Matrix::RandomNormal(s.m, s.k, 1.0, &rng);
    const Matrix b = Matrix::RandomNormal(s.n, s.k, 1.0, &rng);  // n×k
    Matrix blocked(s.m, s.n), naive(s.m, s.n);
    kernels::GemmTransB(s.m, s.n, s.k, a.data(), a.cols(), b.data(), b.cols(),
                        blocked.data(), blocked.cols());
    kernels::naive::GemmTransB(s.m, s.n, s.k, a.data(), a.cols(), b.data(),
                               b.cols(), naive.data(), naive.cols());
    EXPECT_TRUE(blocked.AllClose(naive, 1e-12, 1e-12))
        << "shape m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(KernelsTest, EmptyOperandsAreNoOps) {
  // Any zero dimension must leave C untouched and not read the operands.
  Matrix c(3, 3, 7.0);
  kernels::Gemm(3, 3, 0, nullptr, 0, nullptr, 0, c.data(), 3);
  kernels::Gemm(0, 3, 3, nullptr, 3, nullptr, 3, c.data(), 3);
  kernels::Gemm(3, 0, 3, nullptr, 3, nullptr, 0, c.data(), 0);
  EXPECT_TRUE(c == Matrix(3, 3, 7.0));
  kernels::BatchedRowDot(0, 5, nullptr, 5, nullptr, 5, nullptr);
}

TEST(KernelsTest, GemmAccumulatesIntoC) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c(2, 2, 100.0);
  kernels::Gemm(2, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2);
  EXPECT_TRUE((c == Matrix{{119, 122}, {143, 150}}));
}

TEST(KernelsTest, BatchedRowDotMatchesNaive) {
  Rng rng(14);
  for (size_t m : {size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{63}}) {
    for (size_t k : {size_t{1}, size_t{3}, size_t{8}, size_t{17}}) {
      const Matrix a = Matrix::RandomNormal(m, k, 1.0, &rng);
      const Matrix b = Matrix::RandomNormal(m, k, 1.0, &rng);
      std::vector<double> fast(m), ref(m);
      kernels::BatchedRowDot(m, k, a.data(), k, b.data(), k, fast.data());
      kernels::naive::BatchedRowDot(m, k, a.data(), k, b.data(), k,
                                    ref.data());
      for (size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(fast[i], ref[i], 1e-12) << "m=" << m << " k=" << k;
      }
    }
  }
}

TEST(KernelsTest, BatchedRowDotBroadcastsWithZeroStride) {
  // ldb = 0: one user vector against every item row (ScoreAllItems).
  Rng rng(15);
  const Matrix items = Matrix::RandomNormal(37, 12, 1.0, &rng);
  const Matrix user = Matrix::RandomNormal(1, 12, 1.0, &rng);
  std::vector<double> scores(37);
  kernels::BatchedRowDot(37, 12, items.data(), 12, user.data(), 0,
                         scores.data());
  for (size_t i = 0; i < 37; ++i) {
    EXPECT_NEAR(scores[i], RowDot(items, i, user, 0), 1e-12);
  }
}

TEST(KernelsTest, QuantizedRowDotMatchesNaiveExactly) {
  // Integer arithmetic: the SIMD and scalar paths must agree bit-for-bit
  // (EXPECT_EQ, no tolerance), including at the int8 extremes and across
  // every SIMD-width boundary of k.
  Rng rng(17);
  for (size_t m : {size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{63}}) {
    for (size_t k : {size_t{1}, size_t{7}, size_t{8}, size_t{15}, size_t{16},
                     size_t{17}, size_t{33}}) {
      std::vector<int8_t> a(m * k), b(k);
      for (int8_t& v : a) {
        v = static_cast<int8_t>(static_cast<int>(rng.UniformIndex(255)) - 127);
      }
      for (int8_t& v : b) {
        v = static_cast<int8_t>(static_cast<int>(rng.UniformIndex(255)) - 127);
      }
      // Plant the extremes so saturation bugs in the widening path show.
      a[0] = -127;
      b[0] = 127;
      std::vector<int32_t> fast(m), ref(m);
      kernels::QuantizedRowDot(m, k, a.data(), k, b.data(), fast.data());
      kernels::naive::QuantizedRowDot(m, k, a.data(), k, b.data(),
                                      ref.data());
      for (size_t i = 0; i < m; ++i) {
        EXPECT_EQ(fast[i], ref[i]) << "m=" << m << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(KernelsTest, BatchedRowDotLanesArePositionIndependent) {
  // Pins the bit-identity contract the serving sweeps rely on: a body
  // row's value (i < m − m%4) depends only on its own data — re-scoring
  // it through a 4-row call over its aligned group reproduces the exact
  // bits — and a ragged-tail row equals a 1-row call. EXPECT_EQ on raw
  // doubles: if the compiler ever specializes the body and tail loops
  // with different FP contraction for small m, this is the alarm.
  Rng rng(18);
  for (size_t m : {size_t{4}, size_t{5}, size_t{6}, size_t{7}, size_t{11},
                   size_t{12}}) {
    for (size_t k : {size_t{1}, size_t{8}, size_t{17}}) {
      const Matrix a = Matrix::RandomNormal(m, k, 1.0, &rng);
      const Matrix b = Matrix::RandomNormal(1, k, 1.0, &rng);
      std::vector<double> batched(m);
      kernels::BatchedRowDot(m, k, a.data(), k, b.data(), 0, batched.data());
      const size_t tail_begin = m - m % 4;
      for (size_t g = 0; g < tail_begin; g += 4) {
        double lanes[4];
        kernels::BatchedRowDot(4, k, a.row(g), k, b.data(), 0, lanes);
        for (size_t lane = 0; lane < 4; ++lane) {
          EXPECT_EQ(batched[g + lane], lanes[lane])
              << "m=" << m << " k=" << k << " row " << g + lane;
        }
      }
      for (size_t i = tail_begin; i < m; ++i) {
        double solo;
        kernels::BatchedRowDot(1, k, a.row(i), k, b.data(), 0, &solo);
        EXPECT_EQ(batched[i], solo) << "m=" << m << " k=" << k << " row "
                                    << i;
      }
    }
  }
}

// ------------------------------------------------------ NaN propagation
//
// Regression for the seed's `aik == 0.0` sparsity skip in MatMul /
// MatMulTransA: skipping the inner loop when a is zero turned 0·NaN into
// 0, so a NaN planted in `b` vanished whenever its partner entries in `a`
// were zero — defeating the DTREC_ASSERT_FINITE contract downstream.

TEST(KernelsNaNTest, GemmPropagatesNaNThroughZeroRows) {
  Matrix a(3, 4);  // all zeros — the seed kernel skipped every product
  Matrix b(4, 2, 1.0);
  b(2, 1) = std::nan("");
  Matrix c(3, 2);
  kernels::Gemm(3, 2, 4, a.data(), 4, b.data(), 2, c.data(), 2);
  EXPECT_TRUE(c.HasNonFinite());
  // Column 0 never meets the NaN; column 1 must be NaN in every row.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isnan(c(i, 1))) << "row " << i;
    EXPECT_FALSE(std::isnan(c(i, 0))) << "row " << i;
  }
}

TEST(KernelsNaNTest, GemmTransAPropagatesNaNThroughZeroRows) {
  Matrix a(4, 3);  // k×m, all zeros
  Matrix b(4, 2, 1.0);
  b(1, 0) = std::numeric_limits<double>::infinity();
  Matrix c(3, 2);
  kernels::GemmTransA(3, 2, 4, a.data(), 3, b.data(), 2, c.data(), 2);
  EXPECT_TRUE(c.HasNonFinite());
}

#ifdef DTREC_NUMERIC_CHECKS

TEST(KernelsNaNDeathTest, MatMulGuardSeesNaNDespiteZeroOperand) {
  // End-to-end through the tensor op: the post-hoc whole-matrix guard
  // must fire even though every entry of `a` is zero.
  Matrix a(2, 2);
  Matrix b(2, 2, 1.0);
  b(0, 0) = std::nan("");
  EXPECT_DEATH((void)MatMul(a, b), "numeric check failed.*MatMul");
}

#else  // !DTREC_NUMERIC_CHECKS

TEST(KernelsNaNTest, MatMulSurfacesNaNDespiteZeroOperand) {
  Matrix a(2, 2);
  Matrix b(2, 2, 1.0);
  b(0, 0) = std::nan("");
  EXPECT_TRUE(MatMul(a, b).HasNonFinite());
  EXPECT_TRUE(MatMulTransA(a, b).HasNonFinite());
}

#endif  // DTREC_NUMERIC_CHECKS

// Tensor-level wrappers stay consistent with each other after the reroute.
TEST(KernelsTest, TensorOpsAgreeWithExplicitTransposes) {
  Rng rng(16);
  const Matrix a = Matrix::RandomNormal(9, 6, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(9, 5, 1.0, &rng);
  EXPECT_TRUE(MatMulTransA(a, b).AllClose(MatMul(a.Transposed(), b)));
  const Matrix c = Matrix::RandomNormal(7, 6, 1.0, &rng);
  EXPECT_TRUE(MatMulTransB(a, c).AllClose(MatMul(a, c.Transposed())));
  const Matrix d = Matrix::RandomNormal(9, 6, 1.0, &rng);
  const Matrix rd = RowwiseDot(a, d);
  for (size_t r = 0; r < a.rows(); ++r) {
    EXPECT_NEAR(rd(r, 0), RowDot(a, r, d, r), 1e-12);
  }
}

}  // namespace
}  // namespace dtrec
