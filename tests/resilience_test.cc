// Unit tests for the serving-resilience primitives: CircuitBreaker state
// machine + exponential backoff (driven by a fake clock, no sleeping),
// AdmissionController token bucket / depth cap, RetryBudget, and the
// ModelRegistry publish-probe / rollback path. The multi-threaded
// fault-storm coverage lives in chaos_test.cc; this file pins down the
// single-threaded protocol contracts those storms rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission_controller.h"
#include "serve/circuit_breaker.h"
#include "serve/model_registry.h"
#include "serve/serving_model.h"
#include "tensor/matrix.h"
#include "util/random.h"

namespace dtrec::serve {
namespace {

// --------------------------------------------------------------- helpers

/// Hand-cranked monotonic clock: tests advance time explicitly instead of
/// sleeping, so backoff schedules are asserted exactly.
class FakeClock {
 public:
  CircuitBreaker::ClockFn Fn() {
    auto now = now_;
    return [now] { return now->load(); };
  }
  void AdvanceMicros(double us) { now_->fetch_add(us); }

 private:
  std::shared_ptr<std::atomic<double>> now_ =
      std::make_shared<std::atomic<double>>(0.0);
};

ServingModel HealthyModel(size_t users = 8, size_t items = 16,
                          size_t dim = 4, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> popularity(items);
  for (size_t i = 0; i < items; ++i) {
    popularity[i] = static_cast<double>(items - i);
  }
  auto model = ServingModel::FromFactors(
      Matrix::RandomNormal(users, dim, 1.0, &rng),
      Matrix::RandomNormal(items, dim, 1.0, &rng), Matrix(), Matrix(),
      std::move(popularity));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

/// A candidate that scores NaN everywhere — the diverged-trainer
/// checkpoint SanityProbe exists to catch.
ServingModel NaNModel(size_t users = 8, size_t items = 16, size_t dim = 4) {
  std::vector<double> popularity(items, 1.0);
  auto model = ServingModel::FromFactors(
      Matrix::Constant(users, dim, std::nan("")),
      Matrix::Constant(items, dim, 1.0), Matrix(), Matrix(),
      std::move(popularity));
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

// ---------------------------------------------------------- CircuitBreaker

CircuitBreakerConfig TightBreaker() {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.initial_backoff_ms = 100.0;
  config.backoff_multiplier = 2.0;
  config.max_backoff_ms = 400.0;
  return config;
}

TEST(CircuitBreakerTest, OpensOnlyOnConsecutiveFailures) {
  FakeClock clock;
  CircuitBreaker breaker("b", TightBreaker(), nullptr, clock.Fn());

  // A success between failures resets the streak: 2 + success + 2 ≠ trip.
  for (int i = 0; i < 2; ++i) breaker.RecordFailure();
  breaker.RecordSuccess();
  for (int i = 0; i < 2; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // third consecutive → trip
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.open_transitions(), 1u);
  EXPECT_EQ(breaker.failures(), 5u);
  EXPECT_EQ(breaker.rejected(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  FakeClock clock;
  CircuitBreaker breaker("b", TightBreaker(), nullptr, clock.Fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  EXPECT_FALSE(breaker.Allow());  // backoff not elapsed
  clock.AdvanceMicros(100e3);
  EXPECT_TRUE(breaker.Allow());  // the one probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // probe in flight: everyone else rejected
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, FailedProbeDoublesBackoffUpToCap) {
  FakeClock clock;
  CircuitBreaker breaker("b", TightBreaker(), nullptr, clock.Fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();

  // Failed probes: backoff 100ms → 200ms → 400ms → 400ms (capped).
  for (double backoff_ms : {100.0, 200.0, 400.0, 400.0}) {
    clock.AdvanceMicros(backoff_ms * 1e3 - 1.0);
    EXPECT_FALSE(breaker.Allow()) << "backoff " << backoff_ms;
    clock.AdvanceMicros(1.0);
    ASSERT_TRUE(breaker.Allow()) << "backoff " << backoff_ms;
    breaker.RecordFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  }
  EXPECT_EQ(breaker.open_transitions(), 5u);  // initial trip + 4 re-opens

  // A successful probe resets the schedule to the initial backoff.
  clock.AdvanceMicros(400e3);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceMicros(100e3);
  EXPECT_TRUE(breaker.Allow()) << "backoff should have reset to 100ms";
}

TEST(CircuitBreakerTest, ForceCloseRestoresServiceAndKeepsCounters) {
  FakeClock clock;
  CircuitBreaker breaker("b", TightBreaker(), nullptr, clock.Fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  ASSERT_FALSE(breaker.Allow());
  breaker.ForceClose();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.open_transitions(), 1u);  // history preserved
}

TEST(CircuitBreakerTest, ExportsStateAndCountersToRegistry) {
  FakeClock clock;
  obs::MetricsRegistry metrics;
  CircuitBreaker breaker("dep", TightBreaker(), &metrics, clock.Fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  (void)breaker.Allow();  // rejected while open
  const std::string dump = metrics.DumpText();
  EXPECT_NE(dump.find("dep.state"), std::string::npos) << dump;
  EXPECT_NE(dump.find("dep.open_transitions"), std::string::npos);
  EXPECT_NE(dump.find("dep.failures"), std::string::npos);
  EXPECT_NE(dump.find("dep.rejected"), std::string::npos);
}

// ------------------------------------------------------ AdmissionController

TEST(AdmissionControllerTest, DepthRejectionDoesNotConsumeTokens) {
  FakeClock clock;
  AdmissionConfig config;
  config.rate_per_s = 1.0;
  config.burst = 1.0;
  config.max_queue_depth = 2;
  AdmissionController admission(config, nullptr, "adm", clock.Fn());

  EXPECT_EQ(admission.TryAdmit(2), AdmissionController::Decision::kRejectDepth);
  EXPECT_DOUBLE_EQ(admission.tokens(), 1.0);  // depth check spent nothing
  EXPECT_EQ(admission.TryAdmit(0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.TryAdmit(0), AdmissionController::Decision::kRejectRate);
  EXPECT_EQ(admission.admitted(), 1u);
  EXPECT_EQ(admission.rejected_depth(), 1u);
  EXPECT_EQ(admission.rejected_rate(), 1u);
}

TEST(AdmissionControllerTest, TokenBucketRefillsAtConfiguredRate) {
  FakeClock clock;
  AdmissionConfig config;
  config.rate_per_s = 1000.0;
  config.burst = 5.0;
  AdmissionController admission(config, nullptr, "adm", clock.Fn());

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(admission.TryAdmit(0), AdmissionController::Decision::kAdmit);
  }
  EXPECT_EQ(admission.TryAdmit(0), AdmissionController::Decision::kRejectRate);
  clock.AdvanceMicros(2000.0);  // 2ms at 1000/s → 2 tokens
  EXPECT_EQ(admission.TryAdmit(0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.TryAdmit(0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.TryAdmit(0), AdmissionController::Decision::kRejectRate);
  clock.AdvanceMicros(3600e6);  // an hour refills to burst, not beyond
  EXPECT_DOUBLE_EQ(admission.tokens(), 5.0);
}

TEST(AdmissionControllerTest, AllZeroConfigAdmitsEverything) {
  AdmissionController admission(AdmissionConfig{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(admission.TryAdmit(1000000),
              AdmissionController::Decision::kAdmit);
  }
  EXPECT_EQ(admission.admitted(), 100u);
}

// ------------------------------------------------------------- RetryBudget

TEST(RetryBudgetTest, BurstBoundsConsecutiveRetries) {
  RetryBudgetConfig config;
  config.per_request_deposit = 0.1;
  config.burst = 3.0;
  RetryBudget budget(config);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // drained: retry storm stops here
}

TEST(RetryBudgetTest, CompletedRequestsRefillTheBudget) {
  RetryBudgetConfig config;
  // 0.25 is exact in binary, so the deposit arithmetic has no rounding
  // slop: four completed requests earn exactly one retry.
  config.per_request_deposit = 0.25;
  config.burst = 3.0;
  RetryBudget budget(config);
  while (budget.TryAcquire()) {
  }
  for (int i = 0; i < 3; ++i) budget.RecordRequest();
  EXPECT_FALSE(budget.TryAcquire());  // 0.75 tokens: not yet a whole retry
  budget.RecordRequest();
  EXPECT_TRUE(budget.TryAcquire());  // the 4th request earned one
  EXPECT_FALSE(budget.TryAcquire());
}

// ----------------------------------------------- ModelRegistry resilience

TEST(ModelRegistryResilienceTest, SanityProbeRejectsNaNCandidate) {
  EXPECT_TRUE(ModelRegistry::SanityProbe(HealthyModel()).ok());
  const Status bad = ModelRegistry::SanityProbe(NaNModel());
  EXPECT_FALSE(bad.ok());
}

TEST(ModelRegistryResilienceTest, RejectedCandidateKeepsLiveModelServing) {
  ModelRegistry registry;
  registry.Publish(HealthyModel());
  const uint64_t live = registry.generation();
  auto pinned = registry.Acquire();

  EXPECT_FALSE(registry.TryPublish(NaNModel()).ok());
  EXPECT_EQ(registry.generation(), live) << "rejected publish bumped gen";
  EXPECT_EQ(registry.Acquire().get(), pinned.get());
  EXPECT_EQ(registry.swap_breaker().failures(), 1u);
}

TEST(ModelRegistryResilienceTest, RepeatedBadCandidatesOpenSwapBreaker) {
  FakeClock clock;
  CircuitBreakerConfig breaker = TightBreaker();
  ModelRegistry registry(nullptr, "registry", breaker, clock.Fn());
  registry.Publish(HealthyModel());

  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(registry.TryPublish(NaNModel()).ok());
  }
  ASSERT_EQ(registry.swap_breaker().state(), CircuitBreaker::State::kOpen);
  // Open breaker fails fast — even a healthy candidate is refused until
  // the backoff elapses and a half-open probe publish succeeds.
  EXPECT_FALSE(registry.TryPublish(HealthyModel(8, 16, 4, 2)).ok());
  clock.AdvanceMicros(100e3);
  EXPECT_TRUE(registry.TryPublish(HealthyModel(8, 16, 4, 3)).ok());
  EXPECT_EQ(registry.swap_breaker().state(),
            CircuitBreaker::State::kClosed);
}

TEST(ModelRegistryResilienceTest, RollbackRestoresPreviousUnderFreshGen) {
  ModelRegistry registry;
  registry.Publish(HealthyModel(8, 16, 4, /*seed=*/1));
  auto first = registry.Acquire();
  registry.Publish(HealthyModel(8, 16, 4, /*seed=*/2));
  auto second = registry.Acquire();
  const uint64_t second_gen = registry.generation();

  uint64_t rollback_gen = 0;
  ASSERT_TRUE(registry.RollbackToPrevious(&rollback_gen).ok());
  EXPECT_GT(rollback_gen, second_gen) << "rollback must mint a fresh gen";
  // Same parameters as the first model, republished — not the same object
  // (the previous stays pinnable for its in-flight requests).
  auto rolled = registry.Acquire();
  EXPECT_NE(rolled.get(), first.get());
  EXPECT_DOUBLE_EQ(rolled->Score(0, 0), first->Score(0, 0));
  EXPECT_EQ(rolled->generation(), rollback_gen);

  // Consecutive rollbacks toggle between the last two models.
  ASSERT_TRUE(registry.RollbackToPrevious().ok());
  EXPECT_DOUBLE_EQ(registry.Acquire()->Score(0, 0), second->Score(0, 0));
}

TEST(ModelRegistryResilienceTest, RollbackWithoutHistoryFails) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.RollbackToPrevious().ok());  // nothing published
  registry.Publish(HealthyModel());
  EXPECT_FALSE(registry.RollbackToPrevious().ok());  // no *previous* yet
}

}  // namespace
}  // namespace dtrec::serve
