# Empty dependencies file for propensity_test.
# This may be replaced when dependencies are built.
