file(REMOVE_RECURSE
  "CMakeFiles/propensity_test.dir/propensity_test.cc.o"
  "CMakeFiles/propensity_test.dir/propensity_test.cc.o.d"
  "propensity_test"
  "propensity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propensity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
