# Empty compiler generated dependencies file for identifiability_test.
# This may be replaced when dependencies are built.
