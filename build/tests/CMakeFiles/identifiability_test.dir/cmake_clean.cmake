file(REMOVE_RECURSE
  "CMakeFiles/identifiability_test.dir/identifiability_test.cc.o"
  "CMakeFiles/identifiability_test.dir/identifiability_test.cc.o.d"
  "identifiability_test"
  "identifiability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identifiability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
