file(REMOVE_RECURSE
  "CMakeFiles/estimator_property_test.dir/estimator_property_test.cc.o"
  "CMakeFiles/estimator_property_test.dir/estimator_property_test.cc.o.d"
  "estimator_property_test"
  "estimator_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
