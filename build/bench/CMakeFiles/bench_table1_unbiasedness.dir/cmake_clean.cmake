file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_unbiasedness.dir/bench_table1_unbiasedness.cc.o"
  "CMakeFiles/bench_table1_unbiasedness.dir/bench_table1_unbiasedness.cc.o.d"
  "bench_table1_unbiasedness"
  "bench_table1_unbiasedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_unbiasedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
