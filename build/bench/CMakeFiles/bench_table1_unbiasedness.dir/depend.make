# Empty dependencies file for bench_table1_unbiasedness.
# This may be replaced when dependencies are built.
