# Empty compiler generated dependencies file for bench_fig5_sparsity.
# This may be replaced when dependencies are built.
