# Empty dependencies file for bench_fig4_beta_sensitivity.
# This may be replaced when dependencies are built.
