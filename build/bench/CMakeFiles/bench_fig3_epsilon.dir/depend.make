# Empty dependencies file for bench_fig3_epsilon.
# This may be replaced when dependencies are built.
