file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_semisynthetic.dir/bench_table3_semisynthetic.cc.o"
  "CMakeFiles/bench_table3_semisynthetic.dir/bench_table3_semisynthetic.cc.o.d"
  "bench_table3_semisynthetic"
  "bench_table3_semisynthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_semisynthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
