file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_realworld.dir/bench_table4_realworld.cc.o"
  "CMakeFiles/bench_table4_realworld.dir/bench_table4_realworld.cc.o.d"
  "bench_table4_realworld"
  "bench_table4_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
