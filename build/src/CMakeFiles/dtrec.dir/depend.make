# Empty dependencies file for dtrec.
# This may be replaced when dependencies are built.
