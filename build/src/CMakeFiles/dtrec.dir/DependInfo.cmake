
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/grad_check.cc" "src/CMakeFiles/dtrec.dir/autograd/grad_check.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/autograd/grad_check.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/dtrec.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/tape.cc" "src/CMakeFiles/dtrec.dir/autograd/tape.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/autograd/tape.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/dtrec.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/autograd/variable.cc.o.d"
  "/root/repo/src/baselines/cvib.cc" "src/CMakeFiles/dtrec.dir/baselines/cvib.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/cvib.cc.o.d"
  "/root/repo/src/baselines/dib.cc" "src/CMakeFiles/dtrec.dir/baselines/dib.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/dib.cc.o.d"
  "/root/repo/src/baselines/dr.cc" "src/CMakeFiles/dtrec.dir/baselines/dr.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/dr.cc.o.d"
  "/root/repo/src/baselines/dr_bias_mse.cc" "src/CMakeFiles/dtrec.dir/baselines/dr_bias_mse.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/dr_bias_mse.cc.o.d"
  "/root/repo/src/baselines/dr_jl.cc" "src/CMakeFiles/dtrec.dir/baselines/dr_jl.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/dr_jl.cc.o.d"
  "/root/repo/src/baselines/dr_v2.cc" "src/CMakeFiles/dtrec.dir/baselines/dr_v2.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/dr_v2.cc.o.d"
  "/root/repo/src/baselines/escm2.cc" "src/CMakeFiles/dtrec.dir/baselines/escm2.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/escm2.cc.o.d"
  "/root/repo/src/baselines/esmm.cc" "src/CMakeFiles/dtrec.dir/baselines/esmm.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/esmm.cc.o.d"
  "/root/repo/src/baselines/ips.cc" "src/CMakeFiles/dtrec.dir/baselines/ips.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/ips.cc.o.d"
  "/root/repo/src/baselines/ips_v2.cc" "src/CMakeFiles/dtrec.dir/baselines/ips_v2.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/ips_v2.cc.o.d"
  "/root/repo/src/baselines/mf_naive.cc" "src/CMakeFiles/dtrec.dir/baselines/mf_naive.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/mf_naive.cc.o.d"
  "/root/repo/src/baselines/mr.cc" "src/CMakeFiles/dtrec.dir/baselines/mr.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/mr.cc.o.d"
  "/root/repo/src/baselines/mrdr_jl.cc" "src/CMakeFiles/dtrec.dir/baselines/mrdr_jl.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/mrdr_jl.cc.o.d"
  "/root/repo/src/baselines/multi_ips_dr.cc" "src/CMakeFiles/dtrec.dir/baselines/multi_ips_dr.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/multi_ips_dr.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/dtrec.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/snips.cc" "src/CMakeFiles/dtrec.dir/baselines/snips.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/snips.cc.o.d"
  "/root/repo/src/baselines/stable_dr.cc" "src/CMakeFiles/dtrec.dir/baselines/stable_dr.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/stable_dr.cc.o.d"
  "/root/repo/src/baselines/tdr.cc" "src/CMakeFiles/dtrec.dir/baselines/tdr.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/tdr.cc.o.d"
  "/root/repo/src/baselines/tower_base.cc" "src/CMakeFiles/dtrec.dir/baselines/tower_base.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/tower_base.cc.o.d"
  "/root/repo/src/baselines/trainer_base.cc" "src/CMakeFiles/dtrec.dir/baselines/trainer_base.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/baselines/trainer_base.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/CMakeFiles/dtrec.dir/core/checkpoint.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/core/checkpoint.cc.o.d"
  "/root/repo/src/core/disentangled_embeddings.cc" "src/CMakeFiles/dtrec.dir/core/disentangled_embeddings.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/core/disentangled_embeddings.cc.o.d"
  "/root/repo/src/core/dt_dr.cc" "src/CMakeFiles/dtrec.dir/core/dt_dr.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/core/dt_dr.cc.o.d"
  "/root/repo/src/core/dt_ips.cc" "src/CMakeFiles/dtrec.dir/core/dt_ips.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/core/dt_ips.cc.o.d"
  "/root/repo/src/core/identifiability.cc" "src/CMakeFiles/dtrec.dir/core/identifiability.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/core/identifiability.cc.o.d"
  "/root/repo/src/core/losses.cc" "src/CMakeFiles/dtrec.dir/core/losses.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/core/losses.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/dtrec.dir/data/io.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/data/io.cc.o.d"
  "/root/repo/src/data/rating_dataset.cc" "src/CMakeFiles/dtrec.dir/data/rating_dataset.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/data/rating_dataset.cc.o.d"
  "/root/repo/src/data/samplers.cc" "src/CMakeFiles/dtrec.dir/data/samplers.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/data/samplers.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/CMakeFiles/dtrec.dir/data/splits.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/data/splits.cc.o.d"
  "/root/repo/src/diagnostics/mnar_diagnostics.cc" "src/CMakeFiles/dtrec.dir/diagnostics/mnar_diagnostics.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/diagnostics/mnar_diagnostics.cc.o.d"
  "/root/repo/src/experiments/config.cc" "src/CMakeFiles/dtrec.dir/experiments/config.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/experiments/config.cc.o.d"
  "/root/repo/src/experiments/evaluator.cc" "src/CMakeFiles/dtrec.dir/experiments/evaluator.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/experiments/evaluator.cc.o.d"
  "/root/repo/src/experiments/oracle_bias.cc" "src/CMakeFiles/dtrec.dir/experiments/oracle_bias.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/experiments/oracle_bias.cc.o.d"
  "/root/repo/src/experiments/runner.cc" "src/CMakeFiles/dtrec.dir/experiments/runner.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/experiments/runner.cc.o.d"
  "/root/repo/src/metrics/pointwise.cc" "src/CMakeFiles/dtrec.dir/metrics/pointwise.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/metrics/pointwise.cc.o.d"
  "/root/repo/src/metrics/ranking.cc" "src/CMakeFiles/dtrec.dir/metrics/ranking.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/metrics/ranking.cc.o.d"
  "/root/repo/src/metrics/stats.cc" "src/CMakeFiles/dtrec.dir/metrics/stats.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/metrics/stats.cc.o.d"
  "/root/repo/src/metrics/ttest.cc" "src/CMakeFiles/dtrec.dir/metrics/ttest.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/metrics/ttest.cc.o.d"
  "/root/repo/src/models/embedding_table.cc" "src/CMakeFiles/dtrec.dir/models/embedding_table.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/models/embedding_table.cc.o.d"
  "/root/repo/src/models/mf_model.cc" "src/CMakeFiles/dtrec.dir/models/mf_model.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/models/mf_model.cc.o.d"
  "/root/repo/src/models/mlp.cc" "src/CMakeFiles/dtrec.dir/models/mlp.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/models/mlp.cc.o.d"
  "/root/repo/src/models/param_count.cc" "src/CMakeFiles/dtrec.dir/models/param_count.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/models/param_count.cc.o.d"
  "/root/repo/src/optim/adagrad.cc" "src/CMakeFiles/dtrec.dir/optim/adagrad.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/optim/adagrad.cc.o.d"
  "/root/repo/src/optim/adam.cc" "src/CMakeFiles/dtrec.dir/optim/adam.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/optim/adam.cc.o.d"
  "/root/repo/src/optim/lr_schedule.cc" "src/CMakeFiles/dtrec.dir/optim/lr_schedule.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/optim/lr_schedule.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/dtrec.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/optim/sgd.cc" "src/CMakeFiles/dtrec.dir/optim/sgd.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/optim/sgd.cc.o.d"
  "/root/repo/src/propensity/logistic_propensity.cc" "src/CMakeFiles/dtrec.dir/propensity/logistic_propensity.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/propensity/logistic_propensity.cc.o.d"
  "/root/repo/src/propensity/mf_propensity.cc" "src/CMakeFiles/dtrec.dir/propensity/mf_propensity.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/propensity/mf_propensity.cc.o.d"
  "/root/repo/src/propensity/popularity_propensity.cc" "src/CMakeFiles/dtrec.dir/propensity/popularity_propensity.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/propensity/popularity_propensity.cc.o.d"
  "/root/repo/src/propensity/propensity.cc" "src/CMakeFiles/dtrec.dir/propensity/propensity.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/propensity/propensity.cc.o.d"
  "/root/repo/src/synth/coat_like.cc" "src/CMakeFiles/dtrec.dir/synth/coat_like.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/synth/coat_like.cc.o.d"
  "/root/repo/src/synth/kuairec_like.cc" "src/CMakeFiles/dtrec.dir/synth/kuairec_like.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/synth/kuairec_like.cc.o.d"
  "/root/repo/src/synth/mnar_generator.cc" "src/CMakeFiles/dtrec.dir/synth/mnar_generator.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/synth/mnar_generator.cc.o.d"
  "/root/repo/src/synth/movielens_like.cc" "src/CMakeFiles/dtrec.dir/synth/movielens_like.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/synth/movielens_like.cc.o.d"
  "/root/repo/src/synth/yahoo_like.cc" "src/CMakeFiles/dtrec.dir/synth/yahoo_like.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/synth/yahoo_like.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/dtrec.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/dtrec.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/serialization.cc" "src/CMakeFiles/dtrec.dir/tensor/serialization.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/tensor/serialization.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/dtrec.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/dtrec.dir/util/random.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/dtrec.dir/util/status.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/dtrec.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/dtrec.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_writer.cc" "src/CMakeFiles/dtrec.dir/util/table_writer.cc.o" "gcc" "src/CMakeFiles/dtrec.dir/util/table_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
