file(REMOVE_RECURSE
  "libdtrec.a"
)
