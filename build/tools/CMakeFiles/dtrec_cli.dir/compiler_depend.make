# Empty compiler generated dependencies file for dtrec_cli.
# This may be replaced when dependencies are built.
