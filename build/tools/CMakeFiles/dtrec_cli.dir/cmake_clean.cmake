file(REMOVE_RECURSE
  "CMakeFiles/dtrec_cli.dir/dtrec_cli.cc.o"
  "CMakeFiles/dtrec_cli.dir/dtrec_cli.cc.o.d"
  "dtrec_cli"
  "dtrec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtrec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
