# Empty dependencies file for propensity_oracle_study.
# This may be replaced when dependencies are built.
