file(REMOVE_RECURSE
  "CMakeFiles/propensity_oracle_study.dir/propensity_oracle_study.cpp.o"
  "CMakeFiles/propensity_oracle_study.dir/propensity_oracle_study.cpp.o.d"
  "propensity_oracle_study"
  "propensity_oracle_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propensity_oracle_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
