# Empty dependencies file for identifiability_demo.
# This may be replaced when dependencies are built.
