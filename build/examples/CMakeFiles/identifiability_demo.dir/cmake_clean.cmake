file(REMOVE_RECURSE
  "CMakeFiles/identifiability_demo.dir/identifiability_demo.cpp.o"
  "CMakeFiles/identifiability_demo.dir/identifiability_demo.cpp.o.d"
  "identifiability_demo"
  "identifiability_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identifiability_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
