file(REMOVE_RECURSE
  "CMakeFiles/semi_synthetic_pipeline.dir/semi_synthetic_pipeline.cpp.o"
  "CMakeFiles/semi_synthetic_pipeline.dir/semi_synthetic_pipeline.cpp.o.d"
  "semi_synthetic_pipeline"
  "semi_synthetic_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semi_synthetic_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
