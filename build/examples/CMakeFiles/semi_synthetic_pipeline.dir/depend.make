# Empty dependencies file for semi_synthetic_pipeline.
# This may be replaced when dependencies are built.
