// dtrec_lint — walks the dtrec tree and enforces project idioms; see
// tools/lint/lint.h for the rule catalogue and suppression syntax.
//
// Usage:
//   dtrec_lint [--root=DIR] [--report=FILE] [--no-clang-tidy] [path...]
//
// Paths are root-relative files or directories to scan (default: src
// tools bench tests). Exit code 0 = clean, 1 = findings, 2 = I/O or
// usage error. --report writes the machine-readable JSON findings list.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string RelForwardSlash(const fs::path& path, const fs::path& root) {
  std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report_path;
  bool check_clang_tidy = true;
  std::vector<std::string> scan_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--no-clang-tidy") {
      check_clang_tidy = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dtrec_lint [--root=DIR] [--report=FILE] "
                   "[--no-clang-tidy] [path...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dtrec_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      scan_paths.push_back(arg);
    }
  }
  if (scan_paths.empty()) scan_paths = {"src", "tools", "bench", "tests"};

  const fs::path root_path(root);
  if (!fs::exists(root_path)) {
    std::cerr << "dtrec_lint: root '" << root << "' does not exist\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& p : scan_paths) {
    const fs::path full = root_path / p;
    if (fs::is_regular_file(full)) {
      files.push_back(full);
    } else if (fs::is_directory(full)) {
      for (const auto& entry : fs::recursive_directory_iterator(full)) {
        if (entry.is_regular_file() && HasLintableExtension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      std::cerr << "dtrec_lint: path '" << full.string()
                << "' is neither a file nor a directory\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<dtrec::lint::Finding> findings;
  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content)) {
      std::cerr << "dtrec_lint: cannot read '" << file.string() << "'\n";
      return 2;
    }
    const std::string rel = RelForwardSlash(file, root_path);
    auto file_findings = dtrec::lint::LintContent(rel, content);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  if (check_clang_tidy) {
    const fs::path tidy = root_path / ".clang-tidy";
    std::string content;
    if (!ReadFile(tidy, &content)) {
      findings.push_back({".clang-tidy", 1, "clang-tidy-config",
                          ".clang-tidy is missing from the repo root"});
    } else {
      auto tidy_findings =
          dtrec::lint::LintClangTidyConfig(".clang-tidy", content);
      findings.insert(findings.end(), tidy_findings.begin(),
                      tidy_findings.end());
    }
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "dtrec_lint: " << findings.size() << " finding(s) in "
            << files.size() << " file(s) scanned\n";

  if (!report_path.empty()) {
    // The findings report is derived output; losing it to a crash only
    // means re-running the linter.
    std::ofstream out(report_path, std::ios::binary);  // dtrec-lint: allow(raw-ofstream-write)
    if (!out) {
      std::cerr << "dtrec_lint: cannot write report '" << report_path << "'\n";
      return 2;
    }
    out << dtrec::lint::FindingsToJson(findings);
  }
  return findings.empty() ? 0 : 1;
}
