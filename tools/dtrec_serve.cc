// dtrec_serve: stand up the serving subsystem end to end — train a DT-DR
// model on a coat-like world (or hot-load an existing checkpoint), publish
// it to a ModelRegistry, fan synthetic RecommendRequests across the worker
// pool, optionally hot-swap a retrained checkpoint mid-stream, and print
// the ServerStats latency/counter table.
//
//   dtrec_serve [key=value ...]
//
// keys:
//   requests=2000     number of synthetic requests to serve
//   threads=4         worker pool size
//   k=10              slate size
//   deadline_ms=50    per-request deadline (0 = degrade everything, -1 = off)
//   cache=1024        score-cache capacity in users (0 disables)
//   topk_mode=dense   scoring sweep: dense | pruned | quantized
//   sweep_shard=32768 item-shard size for the blocked scoring sweeps
//   swap_mid_run=1    retrain + hot-swap a second checkpoint halfway
//   epochs=10 dim=16 seed=42   training knobs
//   ckpt=<path>       checkpoint to load instead of training from scratch
//                     (shape must match dim=; written there after training
//                     otherwise)
//   stats_every_s=0   period of the background stats-dump log line
//                     (0 disables the dump thread)
//   max_queue=0       worker-queue bound; excess requests shed (0 = off)
//   admit_rate=0      admission token-bucket rate per second (0 = off)
//   admit_burst=0     admission token-bucket burst capacity
//   admit_depth=0     admission queue-depth shed threshold (0 = off)
//   metrics_format=json   --metrics-out format: json | text | prometheus
//
// flags (telemetry, see src/obs/):
//   --metrics-out <path>   dump the metrics registry on exit (format per
//                          metrics_format=; prometheus is the text
//                          exposition a scraper ingests directly)
//   --trace-out <path>     arm DTREC_TRACE_SPAN recording and write a
//                          Chrome trace_event JSON on exit
//   --profile-out <path>   attach the SIGPROF sampling profiler for the
//                          serve loop; collapsed stacks land at <path>,
//                          the dtrec-profile-v1 JSON at <path>.json
//   --alerts-out <path>    run the telemetry watchdog during the serve
//                          loop, streaming dtrec-alerts-v1 JSONL
//   --watch-rules <path>   watchdog rules file (obs/watchdog.h grammar);
//                          default: shed-rate spike, scorer-breaker
//                          transition storm, propensity-clip drift

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/dt_dr.h"
#include "data/rating_dataset.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "serve/model_registry.h"
#include "serve/recommend_server.h"
#include "synth/coat_like.h"
#include "util/atomic_file.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace dtrec {
namespace {

using serve::DisentangledShape;
using serve::ModelRegistry;
using serve::Recommendation;
using serve::RecommendRequest;
using serve::RecommendServer;
using serve::ServerConfig;
using serve::ServerStats;

using ArgMap = std::map<std::string, std::string>;

double GetNum(const ArgMap& args, const std::string& key, double fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback
                          : std::strtod(it->second.c_str(), nullptr);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Trains DT-DR on `dataset` and checkpoints it to `path`.
Status TrainAndCheckpoint(const RatingDataset& dataset,
                          const TrainConfig& config,
                          const std::string& path) {
  DtDrTrainer trainer(config);
  DTREC_RETURN_IF_ERROR(trainer.Fit(dataset));
  return SaveDisentangledEmbeddings(trainer.embeddings(), path);
}

void AddStageRow(TableWriter* table, const std::string& stage,
                 const serve::LatencyHistogram::Summary& s) {
  table->AddRow({stage, StrFormat("%llu", (unsigned long long)s.count),
                 FormatDouble(s.mean_us, 1), FormatDouble(s.p50_us, 1),
                 FormatDouble(s.p95_us, 1), FormatDouble(s.p99_us, 1),
                 FormatDouble(s.max_us, 1)});
}

/// Default watchdog rules for the serve loop: overload symptoms (shed
/// spike, breaker-transition storm) plus the paper's propensity-clip
/// drift, evaluated over half-second windows.
constexpr const char* kDefaultServeWatchRules =
    "shed_spike: rate:serve.rung_shed/serve.requests, 0.5, 0.25, above\n"
    "breaker_storm: delta:serve.breaker.scorer.open_transitions, "
    "0.5, 5, above\n"
    "clip_drift: drift:rate:propensity.clip.fired/propensity.clip.total, "
    "0.5, 0.05, above\n";

int Main(int argc, char** argv) {
  ArgMap args;
  std::string metrics_out, trace_out, profile_out, alerts_out, watch_rules;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Telemetry flags first; everything else must be key=value.
    auto take_value = [&](const std::string& name,
                          std::string* value) -> bool {
      if (arg == name && i + 1 < argc) {
        *value = argv[++i];
        return true;
      }
      if (arg.rfind(name + "=", 0) == 0) {
        *value = arg.substr(name.size() + 1);
        return true;
      }
      return false;
    };
    if (take_value("--metrics-out", &metrics_out) ||
        take_value("--trace-out", &trace_out) ||
        take_value("--profile-out", &profile_out) ||
        take_value("--alerts-out", &alerts_out) ||
        take_value("--watch-rules", &watch_rules)) {
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [--metrics-out <path>] [--trace-out <path>] "
                   "[--profile-out <path>] [--alerts-out <path>] "
                   "[--watch-rules <path>] [key=value ...]\n",
                   argv[0]);
      return 2;
    }
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  if (!trace_out.empty()) obs::EnableTracing();
  const std::string metrics_format =
      args.count("metrics_format") ? args.at("metrics_format") : "json";
  if (metrics_format != "json" && metrics_format != "text" &&
      metrics_format != "prometheus") {
    std::fprintf(stderr,
                 "error: metrics_format must be json, text or prometheus "
                 "(got \"%s\")\n",
                 metrics_format.c_str());
    return 2;
  }
  args.erase("metrics_format");

  const size_t requests = static_cast<size_t>(GetNum(args, "requests", 2000));
  const size_t threads = static_cast<size_t>(GetNum(args, "threads", 4));
  const size_t k = static_cast<size_t>(GetNum(args, "k", 10));
  const double deadline_ms = GetNum(args, "deadline_ms", 50.0);
  const size_t cache = static_cast<size_t>(GetNum(args, "cache", 1024));
  const bool swap_mid_run = GetNum(args, "swap_mid_run", 1) != 0;
  const uint64_t seed = static_cast<uint64_t>(GetNum(args, "seed", 42));

  TrainConfig config;
  config.epochs = static_cast<size_t>(GetNum(args, "epochs", 10));
  config.embedding_dim = static_cast<size_t>(GetNum(args, "dim", 16));
  config.seed = seed;

  // --- train or load ---------------------------------------------------
  const SimulatedData world = MakeCoatLike(seed);
  const RatingDataset& dataset = world.dataset;
  std::string ckpt = args.count("ckpt") ? args.at("ckpt")
                                        : "/tmp/dtrec_serve_dtdr.ckpt";
  if (!args.count("ckpt")) {
    std::printf("training DT-DR on %s ...\n",
                dataset.DebugString().c_str());
    const Stopwatch train_watch;
    if (Status st = TrainAndCheckpoint(dataset, config, ckpt); !st.ok()) {
      return Fail(st);
    }
    std::printf("trained + checkpointed in %.1fs -> %s\n",
                train_watch.ElapsedSeconds(), ckpt.c_str());
  }

  // --- publish ---------------------------------------------------------
  ModelRegistry registry;
  DisentangledShape shape;
  shape.num_users = dataset.num_users();
  shape.num_items = dataset.num_items();
  shape.total_dim = config.embedding_dim;
  const std::vector<size_t> item_counts = dataset.ItemCounts();
  std::vector<double> popularity(item_counts.begin(), item_counts.end());
  if (Status st = registry.PublishDisentangledCheckpoint(ckpt, shape,
                                                         popularity);
      !st.ok()) {
    return Fail(st);
  }
  std::printf("published generation %llu (%zu users x %zu items, dim %zu)\n",
              (unsigned long long)registry.generation(), shape.num_users,
              shape.num_items, (3 * shape.total_dim) / 4);

  // --- serve -----------------------------------------------------------
  ServerConfig server_config;
  server_config.num_threads = threads;
  server_config.default_k = k;
  server_config.default_deadline_ms = deadline_ms;
  server_config.cache.capacity = cache;
  if (args.count("topk_mode") &&
      !serve::ParseTopKMode(args.at("topk_mode"),
                            &server_config.cache.mode)) {
    std::fprintf(stderr,
                 "error: topk_mode must be dense, pruned or quantized "
                 "(got \"%s\")\n",
                 args.at("topk_mode").c_str());
    return 2;
  }
  if (args.count("sweep_shard")) {
    server_config.cache.sweep_shard_items =
        static_cast<size_t>(GetNum(args, "sweep_shard", 32768));
  }
  server_config.stats_dump_period_s = GetNum(args, "stats_every_s", 0.0);
  // Overload-resilience knobs (all default off — an unconfigured run
  // admits everything): bounded worker queue, token-bucket admission
  // rate, and admission queue-depth cap. Excess traffic is shed with an
  // empty slate instead of queueing without bound.
  server_config.max_queue =
      static_cast<size_t>(GetNum(args, "max_queue", 0));
  server_config.admission.rate_per_s = GetNum(args, "admit_rate", 0.0);
  server_config.admission.burst = GetNum(args, "admit_burst", 0.0);
  server_config.admission.max_queue_depth =
      static_cast<size_t>(GetNum(args, "admit_depth", 0));
  RecommendServer server(&registry, server_config);

  bool profiling = false;
  if (!profile_out.empty()) {
    if (Status st = obs::StartProfiler(); st.ok()) {
      profiling = true;
    } else {
      std::fprintf(stderr, "profiler not attached: %s\n",
                   st.ToString().c_str());
    }
  }
  std::unique_ptr<obs::Watchdog> watchdog;
  if (!alerts_out.empty() || !watch_rules.empty()) {
    std::string rules_text = kDefaultServeWatchRules;
    if (!watch_rules.empty()) {
      if (Status st = ReadFile(watch_rules, &rules_text); !st.ok()) {
        return Fail(st);
      }
    }
    std::vector<obs::WatchRule> rules;
    if (Status st = obs::ParseWatchdogRules(rules_text, &rules); !st.ok()) {
      return Fail(st);
    }
    obs::Watchdog::Options watch_options;
    watch_options.alerts_path = alerts_out;
    watchdog = std::make_unique<obs::Watchdog>(&obs::GlobalMetrics(),
                                               std::move(rules),
                                               watch_options);
    watchdog->SetContext("serve");
    watchdog->Poll();  // prime the windows before traffic starts
    if (Status st = watchdog->Start(0.5); !st.ok()) return Fail(st);
  }

  std::printf("serving %zu requests on %zu threads (k=%zu, deadline=%gms, "
              "cache=%zu users, topk=%s)...\n",
              requests, threads, k, deadline_ms, cache,
              serve::TopKModeName(server_config.cache.mode));
  Rng traffic_rng(seed + 1);
  const Stopwatch serve_watch;
  std::vector<std::future<Recommendation>> futures;
  futures.reserve(requests);
  for (size_t r = 0; r < requests; ++r) {
    if (swap_mid_run && r == requests / 2) {
      // Hot reload: retrain with a fresh seed and republish. In-flight
      // requests keep their pinned model; later ones pick up gen 2.
      TrainConfig retrain = config;
      retrain.seed = seed + 7;
      retrain.epochs = std::max<size_t>(config.epochs / 2, 1);
      if (Status st = TrainAndCheckpoint(dataset, retrain, ckpt); !st.ok()) {
        return Fail(st);
      }
      if (Status st = registry.PublishDisentangledCheckpoint(ckpt, shape,
                                                             popularity);
          !st.ok()) {
        return Fail(st);
      }
      std::printf("hot-swapped to generation %llu at request %zu\n",
                  (unsigned long long)registry.generation(), r);
    }
    futures.push_back(
        server.Submit({.user = traffic_rng.UniformIndex(shape.num_users)}));
  }
  size_t served = 0, shed = 0, torn = 0;
  for (auto& future : futures) {
    const Recommendation rec = future.get();
    if (rec.shed()) {
      ++shed;  // refused by admission/queue: empty slate is the contract
    } else if (rec.items.empty()) {
      ++torn;  // a non-shed response must always carry a slate
    } else {
      ++served;
    }
  }
  const double elapsed = serve_watch.ElapsedSeconds();
  const double qps = requests / elapsed;

  if (watchdog != nullptr) {
    watchdog->ForceEvaluate();
    watchdog->Stop();
    std::printf("watchdog: %zu alert(s) -> %s\n", watchdog->fired_count(),
                alerts_out.empty() ? "(memory only)" : alerts_out.c_str());
  }
  if (profiling) {
    if (Status st = obs::StopProfiler(); !st.ok()) {
      std::fprintf(stderr, "profiler stop: %s\n", st.ToString().c_str());
    }
    const obs::ProfileReport report = obs::CollectProfile();
    if (Status st = WriteFileAtomic(profile_out,
                                    obs::CollapsedStacks(report));
        !st.ok()) {
      return Fail(st);
    }
    if (Status st = WriteFileAtomic(profile_out + ".json",
                                    obs::ProfileJson(report));
        !st.ok()) {
      return Fail(st);
    }
    std::printf("profile: %llu samples, %zu stacks -> %s\n",
                static_cast<unsigned long long>(report.samples),
                report.stacks.size(), profile_out.c_str());
  }

  // --- report ----------------------------------------------------------
  const ServerStats stats = server.Snapshot();
  TableWriter table(StrFormat("dtrec_serve: %zu requests, %zu threads, "
                              "%.0f QPS",
                              requests, threads, qps));
  table.SetHeader({"stage", "count", "mean_us", "p50_us", "p95_us",
                   "p99_us", "max_us"});
  AddStageRow(&table, "queue", stats.queue_us);
  AddStageRow(&table, "score", stats.score_us);
  AddStageRow(&table, "total", stats.total_us);
  table.RenderConsole(std::cout);
  std::printf("\n%s\n", stats.Summary().c_str());

  if (!trace_out.empty()) {
    if (Status st = obs::WriteTraceJson(trace_out); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote trace -> %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::PublishPropensityClipStats(&obs::GlobalMetrics());
    std::string dump;
    if (metrics_format == "prometheus") {
      dump = obs::GlobalMetrics().DumpPrometheus();
    } else if (metrics_format == "text") {
      dump = obs::GlobalMetrics().DumpText();
    } else {
      dump = obs::GlobalMetrics().DumpJson();
    }
    if (Status st = WriteFileAtomic(metrics_out, dump); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote metrics (%s) -> %s\n", metrics_format.c_str(),
                metrics_out.c_str());
  }

  if (shed > 0) {
    std::printf("shed %zu/%zu requests (served %zu)\n", shed, requests,
                served);
  }
  if (torn > 0) {
    std::fprintf(stderr, "%zu/%zu non-shed responses had empty slates\n",
                 torn, requests);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Main(argc, argv); }
