#ifndef DTREC_TOOLS_LINT_LINT_H_
#define DTREC_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

// dtrec_lint — project-specific static checks for the dtrec tree.
//
// The linter is deliberately textual: it strips comments and string
// literals (via the shared lexical layer in tools/analysis/lexer.h, also
// used by dtrec_analyze), then pattern-matches the remaining code. That
// is enough to enforce the project idioms below without dragging in a
// real C++ frontend, and it keeps the binary dependency-free so the
// `lint` CTest label can run under any sanitizer configuration. Deeper
// checks that need dataflow or the include graph (propensity taint,
// layering, lock discipline) live in dtrec_analyze.
//
// Rules (each name below is valid inside an allow-comment, shown at the
// bottom of this block):
//
//   propensity-division  raw `/` or `/=` whose divisor head identifier
//                        looks like a propensity (`propensit*`, `p_hat*`,
//                        `inv_p*`) outside the blessed helpers
//                        ClipPropensity / SafeInverse / SoftClip
//   banned-rand          rand(), srand(), rand_r, drand48, lrand48,
//                        random_shuffle — use util/random.h (seeded Rng)
//   naked-new            `new` / `malloc` / `calloc` / `realloc` in
//                        non-test code — dtrec owns memory via value
//                        types and standard containers
//   include-guard        headers must open with the canonical
//                        `#ifndef DTREC_<PATH>_H_` pair; `#pragma once`
//                        is banned for consistency
//   include-hygiene      quoted includes are src/-relative (no leading
//                        `src/`, no `..`, no absolute paths); project
//                        headers must not be included with <angle>
//   float-literal        f-suffixed literals (1.0f) drift against the
//                        all-double numeric stack
//   raw-ofstream-write   `std::ofstream` in non-test code outside
//                        src/util/atomic_file.cc — durable files must go
//                        through WriteFileAtomic or a crash can leave a
//                        torn file; deliberately non-durable writers
//                        carry an allow-comment
//   raw-stderr-logging   `std::cerr` / `fprintf(stderr, ...)` inside src/
//                        (library code) outside src/util/logging.cc — the
//                        library reports through DTREC_LOG so severity,
//                        formatting and fatal handling stay uniform; CLI
//                        mains under tools/ may write stderr directly
//   signal-unsafe-in-handler
//                        inside a region bracketed by the
//                        `dtrec-signal-safe-region-begin` / `-end` marker
//                        comments (the profiler's SIGPROF handler), any
//                        identifier that allocates, locks, or touches
//                        stdio/iostreams is banned: malloc/free/new,
//                        mutex/lock_guard, printf/cout, string/vector
//                        construction, … — a signal handler that takes a
//                        lock the interrupted thread holds deadlocks, and
//                        one that allocates corrupts the heap. An opened
//                        region with no matching end marker is itself a
//                        finding.
//
// Known hazard with no textual rule (yet): size_t → uint32_t narrowing.
// Serving stores item ids as uint32_t (ScoredItem::item, the sweep
// orders), so a `static_cast<uint32_t>(i)` over a catalogue-sized loop
// silently wraps past 2³² items. A lexical linter cannot tell a
// narrowing cast from a benign one, so the bound is enforced at runtime
// instead: ServingModel::ValidateCatalogueSize rejects oversized
// catalogues at FromFactors time (see serving_model.h). If a dataflow
// pass ever lands in dtrec_analyze, "uint32 id narrowing outside a
// ValidateCatalogueSize-guarded scope" is the rule to add.
//
// A suppression comment applies to its own line and the line directly
// below it, so both trailing and standalone-comment-above styles work:
//
//   x = a / p_hat;  // dtrec-lint: allow(propensity-division)
//
//   // dtrec-lint: allow(naked-new)
//   auto* raw = new Widget;

namespace dtrec::lint {

struct Finding {
  std::string file;     // repo-relative path, forward slashes
  size_t line = 0;      // 1-based
  std::string rule;     // one of the rule names above
  std::string message;  // human-readable detail
};

struct FileKind {
  bool is_header = false;
  bool is_test = false;         // relaxes naked-new
  std::string expected_guard;   // empty → include-guard rule skipped
};

/// Classifies a repo-relative path ("src/util/math_util.h"). Test files
/// are anything under tests/ or whose stem ends in `_test`.
FileKind ClassifyPath(const std::string& rel_path);

/// Lints one file's content against every rule applicable to its kind.
/// Findings suppressed by allow-comments are dropped; an allow() naming
/// an unknown rule is itself reported as `lint-usage`.
std::vector<Finding> LintContent(const std::string& rel_path,
                                 const std::string& content);

/// Validates a .clang-tidy config body: must be non-empty and define the
/// `Checks:`, `WarningsAsErrors:` and `HeaderFilterRegex:` keys. Reported
/// under rule `clang-tidy-config`. (The clang-tidy binary itself is not a
/// build dependency; the lint CTest guarantees the config stays present
/// and well-formed for environments that do run it.)
std::vector<Finding> LintClangTidyConfig(const std::string& rel_path,
                                         const std::string& content);

/// Machine-readable report: {"schema": "dtrec-lint-v1", "count": N,
/// "findings": [{file,line,rule,message}...]}. Stable field order,
/// findings in input order.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// Names of all rules LintContent can emit (excludes clang-tidy-config).
const std::vector<std::string>& KnownRules();

}  // namespace dtrec::lint

#endif  // DTREC_TOOLS_LINT_LINT_H_
