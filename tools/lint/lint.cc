#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lexer.h"

namespace dtrec::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<size_t> LineStarts(const std::string& s) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

size_t LineOf(const std::vector<size_t>& starts, size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<size_t>(it - starts.begin());  // 1-based
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

// "#include <path>" / "#include \"path\"" → (delimiter, path); delimiter
// '\0' if the line is not an include directive.
std::pair<char, std::string> ParseInclude(const std::string& raw_line) {
  size_t i = 0;
  const size_t n = raw_line.size();
  while (i < n && IsSpace(raw_line[i])) ++i;
  if (i >= n || raw_line[i] != '#') return {'\0', ""};
  ++i;
  while (i < n && IsSpace(raw_line[i])) ++i;
  if (raw_line.compare(i, 7, "include") != 0) return {'\0', ""};
  i += 7;
  while (i < n && IsSpace(raw_line[i])) ++i;
  if (i >= n || (raw_line[i] != '<' && raw_line[i] != '"')) return {'\0', ""};
  const char open = raw_line[i];
  const char close = open == '<' ? '>' : '"';
  ++i;
  std::string path;
  while (i < n && raw_line[i] != close) path.push_back(raw_line[i++]);
  return {open, path};
}

// ---------------------------------------------------------------------------
// Individual rules. Each scans the scrubbed code (comments/strings blanked,
// include lines additionally blanked where noted) and appends findings.

void CheckPropensityDivision(const std::string& rel_path,
                             const std::string& code,
                             const std::vector<size_t>& starts,
                             std::vector<Finding>* findings) {
  static const std::set<std::string> kBlessed = {"clippropensity",
                                                 "safeinverse", "softclip"};
  const size_t n = code.size();
  for (size_t i = 0; i < n; ++i) {
    if (code[i] != '/') continue;
    if (i > 0 && code[i - 1] == '/') continue;
    size_t j = i + 1;
    if (j < n && code[j] == '=') ++j;  // compound "/=" counts too
    while (j < n && (IsSpace(code[j]) || code[j] == '(' || code[j] == ':' ||
                     code[j] == '*' || code[j] == '&')) {
      ++j;
    }
    if (j >= n || !IsIdentStart(code[j])) continue;
    const size_t id_begin = j;
    while (j < n && IsIdentChar(code[j])) ++j;
    const std::string id = code.substr(id_begin, j - id_begin);
    const std::string low = Lower(id);
    if (kBlessed.count(low)) continue;
    if (low.find("propensit") == std::string::npos &&
        low.find("p_hat") == std::string::npos &&
        low.find("inv_p") == std::string::npos) {
      continue;
    }
    findings->push_back(
        {rel_path, LineOf(starts, i), "propensity-division",
         "raw division by '" + id +
             "'; clip first (ClipPropensity) or use SafeInverse()"});
  }
}

void CheckIdentifierRules(const std::string& rel_path, const std::string& code,
                          const std::vector<size_t>& starts, bool is_test,
                          std::vector<Finding>* findings) {
  static const std::set<std::string> kBannedRand = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
      "random_shuffle"};
  static const std::set<std::string> kBannedAlloc = {"new", "malloc", "calloc",
                                                     "realloc"};
  const size_t n = code.size();
  size_t i = 0;
  while (i < n) {
    if (!IsIdentStart(code[i])) {
      ++i;
      continue;
    }
    const size_t begin = i;
    while (i < n && IsIdentChar(code[i])) ++i;
    const std::string id = code.substr(begin, i - begin);
    if (kBannedRand.count(id)) {
      findings->push_back({rel_path, LineOf(starts, begin), "banned-rand",
                           "'" + id +
                               "' is banned; use the seeded dtrec::Rng from "
                               "util/random.h"});
    } else if (!is_test && kBannedAlloc.count(id)) {
      findings->push_back(
          {rel_path, LineOf(starts, begin), "naked-new",
           "naked '" + id +
               "' in non-test code; use value types or standard containers"});
    }
  }
}

void CheckIncludeGuard(const std::string& rel_path,
                       const std::vector<std::string>& code_lines,
                       const std::string& expected,
                       std::vector<Finding>* findings) {
  std::vector<std::pair<size_t, std::string>> nonblank;  // (1-based line, text)
  for (size_t ln0 = 0; ln0 < code_lines.size(); ++ln0) {
    const std::string t = Trim(code_lines[ln0]);
    if (!t.empty()) nonblank.emplace_back(ln0 + 1, t);
    if (t.rfind("#pragma", 0) == 0 && t.find("once") != std::string::npos) {
      findings->push_back({rel_path, ln0 + 1, "include-guard",
                           "#pragma once is banned; use the canonical "
                           "#ifndef " +
                               expected + " guard"});
    }
  }
  const bool ok =
      nonblank.size() >= 2 && nonblank[0].second == "#ifndef " + expected &&
      nonblank[1].second == "#define " + expected;
  if (!ok) {
    findings->push_back({rel_path, nonblank.empty() ? 1 : nonblank[0].first,
                         "include-guard",
                         "header must open with '#ifndef " + expected +
                             "' / '#define " + expected + "'"});
  }
}

void CheckIncludeHygiene(const std::string& rel_path,
                         const std::vector<std::string>& raw_lines,
                         std::vector<Finding>* findings) {
  static const std::vector<std::string> kProjectPrefixes = {
      "src/",    "util/",        "tensor/", "autograd/",    "optim/",
      "data/",   "synth/",       "metrics/", "propensity/", "models/",
      "baselines/", "core/",     "experiments/", "io/",     "diagnostics/",
      "serve/",  "lint/",        "analysis/", "bench/",     "tests/",
      "tools/"};
  for (size_t ln0 = 0; ln0 < raw_lines.size(); ++ln0) {
    const auto [delim, path] = ParseInclude(raw_lines[ln0]);
    if (delim == '\0') continue;
    const size_t line = ln0 + 1;
    if (path.find("..") != std::string::npos) {
      findings->push_back({rel_path, line, "include-hygiene",
                           "include path '" + path + "' uses '..'"});
      continue;
    }
    if (!path.empty() && path.front() == '/') {
      findings->push_back({rel_path, line, "include-hygiene",
                           "absolute include path '" + path + "'"});
      continue;
    }
    if (delim == '"') {
      if (StartsWith(path, "src/")) {
        findings->push_back({rel_path, line, "include-hygiene",
                             "include paths are src/-relative; drop the "
                             "leading src/ from '" +
                                 path + "'"});
      }
    } else {
      for (const std::string& prefix : kProjectPrefixes) {
        if (StartsWith(path, prefix)) {
          findings->push_back({rel_path, line, "include-hygiene",
                               "project header '" + path +
                                   "' included with <>; use \"\" instead"});
          break;
        }
      }
    }
  }
}

void CheckRawOfstream(const std::string& rel_path, const std::string& code,
                      const std::vector<size_t>& starts,
                      std::vector<Finding>* findings) {
  // Durable files must be written through WriteFileAtomic (temp + fsync +
  // rename), or a crash can leave a torn file behind. The atomic writer
  // itself is the one blessed place that opens an output stream; scratch
  // writers elsewhere (console tables, lint reports) carry an explicit
  // allow-comment acknowledging they are not crash-safe.
  if (rel_path == "src/util/atomic_file.cc") return;
  const size_t n = code.size();
  size_t i = 0;
  while (i < n) {
    if (!IsIdentStart(code[i])) {
      ++i;
      continue;
    }
    const size_t begin = i;
    while (i < n && IsIdentChar(code[i])) ++i;
    if (code.substr(begin, i - begin) == "ofstream") {
      findings->push_back(
          {rel_path, LineOf(starts, begin), "raw-ofstream-write",
           "raw std::ofstream bypasses crash-atomic writes; use "
           "WriteFileAtomic (util/atomic_file.h) for anything durable"});
    }
  }
}

void CheckRawStderr(const std::string& rel_path, const std::string& code,
                    const std::vector<size_t>& starts,
                    std::vector<Finding>* findings) {
  // Library code logs through DTREC_LOG (util/logging.h) so every message
  // carries severity and a uniform prefix, and FATAL aborts consistently.
  // The logging backend is the one blessed place that touches the real
  // stderr stream; tools/ mains talk to their user directly and are out of
  // scope (the caller only runs this rule for src/).
  if (rel_path == "src/util/logging.cc") return;
  const size_t n = code.size();
  size_t i = 0;
  while (i < n) {
    if (!IsIdentStart(code[i])) {
      ++i;
      continue;
    }
    const size_t begin = i;
    while (i < n && IsIdentChar(code[i])) ++i;
    const std::string id = code.substr(begin, i - begin);
    if (id == "cerr" || id == "stderr") {
      findings->push_back(
          {rel_path, LineOf(starts, begin), "raw-stderr-logging",
           "raw '" + id +
               "' in library code; log through DTREC_LOG "
               "(util/logging.h) so severity and formatting stay uniform"});
    }
  }
}

void CheckFloatLiterals(const std::string& rel_path, const std::string& code,
                        const std::vector<size_t>& starts,
                        std::vector<Finding>* findings) {
  const size_t n = code.size();
  size_t i = 0;
  while (i < n) {
    const char c = code[i];
    const bool number_start =
        std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(code[i + 1])) != 0);
    if (!number_start) {
      ++i;
      continue;
    }
    const char prev = i > 0 ? code[i - 1] : ' ';
    const size_t begin = i;
    const bool hex =
        c == '0' && i + 1 < n && (code[i + 1] == 'x' || code[i + 1] == 'X');
    size_t j = i;
    while (j < n) {
      const char d = code[j];
      if (IsIdentChar(d) || d == '.' || d == '\'') {
        ++j;
        continue;
      }
      if ((d == '+' || d == '-') && j > begin &&
          (code[j - 1] == 'e' || code[j - 1] == 'E' || code[j - 1] == 'p' ||
           code[j - 1] == 'P')) {
        ++j;
        continue;
      }
      break;
    }
    const std::string token = code.substr(begin, j - begin);
    i = j;
    if (IsIdentChar(prev) || prev == '.') continue;  // inside an identifier
    if (hex) continue;
    if (!token.empty() && (token.back() == 'f' || token.back() == 'F')) {
      findings->push_back({rel_path, LineOf(starts, begin), "float-literal",
                           "float literal '" + token +
                               "' in double-precision code; drop the 'f' "
                               "suffix"});
    }
  }
}

void CheckSignalSafeRegions(const std::string& rel_path,
                            const std::vector<std::string>& comments,
                            const std::vector<std::string>& code_lines,
                            std::vector<Finding>* findings) {
  // Anything on this list either allocates, takes a lock, or buffers
  // through stdio — all deadlock/corruption hazards inside a signal
  // handler. The safe vocabulary (errno, backtrace, relaxed atomics on
  // preallocated slots) is deliberately NOT matched.
  static const std::set<std::string> kSignalUnsafe = {
      "malloc",        "calloc",      "realloc",     "free",
      "new",           "delete",      "printf",      "fprintf",
      "sprintf",       "snprintf",    "vsnprintf",   "vprintf",
      "puts",          "fputs",       "fwrite",      "fopen",
      "fclose",        "fflush",      "cout",        "cerr",
      "clog",          "mutex",       "lock_guard",  "unique_lock",
      "scoped_lock",   "shared_lock", "condition_variable",
      "string",        "vector",      "deque",       "map",
      "unordered_map", "make_shared", "make_unique", "backtrace_symbols",
      "dladdr",        "getenv",      "exit"};
  bool in_region = false;
  size_t region_begin_line = 0;  // 1-based
  for (size_t ln0 = 0; ln0 < comments.size(); ++ln0) {
    // Markers must be standalone comments (`// dtrec-signal-safe-region-
    // begin` on its own line) — prose that merely *mentions* a marker, like
    // the rule's own documentation, must not open a region.
    const std::string comment = Trim(comments[ln0]);
    if (comment == "dtrec-signal-safe-region-begin") {
      in_region = true;
      region_begin_line = ln0 + 1;
      continue;
    }
    if (comment == "dtrec-signal-safe-region-end") {
      in_region = false;
      continue;
    }
    if (!in_region || ln0 >= code_lines.size()) continue;
    const std::string& line = code_lines[ln0];
    const size_t n = line.size();
    size_t i = 0;
    while (i < n) {
      if (!IsIdentStart(line[i])) {
        ++i;
        continue;
      }
      const size_t begin = i;
      while (i < n && IsIdentChar(line[i])) ++i;
      const std::string id = line.substr(begin, i - begin);
      if (kSignalUnsafe.count(id)) {
        findings->push_back(
            {rel_path, ln0 + 1, "signal-unsafe-in-handler",
             "'" + id +
                 "' inside a dtrec-signal-safe region; signal handlers "
                 "may only touch errno, relaxed atomics on preallocated "
                 "slots, and backtrace()"});
      }
    }
  }
  if (in_region) {
    findings->push_back(
        {rel_path, region_begin_line, "signal-unsafe-in-handler",
         "dtrec-signal-safe-region-begin without a matching "
         "dtrec-signal-safe-region-end; the handler's extent must be "
         "explicit for this rule to hold"});
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

FileKind ClassifyPath(const std::string& rel_path) {
  FileKind kind;
  kind.is_header = EndsWith(rel_path, ".h");
  const size_t slash = rel_path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? rel_path : rel_path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  const std::string stem = dot == std::string::npos ? base : base.substr(0, dot);
  kind.is_test = StartsWith(rel_path, "tests/") || EndsWith(stem, "_test");
  if (kind.is_header) {
    std::string path = rel_path;
    if (StartsWith(path, "src/")) path = path.substr(4);
    std::string guard = "DTREC_";
    for (const char c : path) {
      guard.push_back(IsIdentChar(c) && c != '_'
                          ? static_cast<char>(
                                std::toupper(static_cast<unsigned char>(c)))
                          : '_');
    }
    guard.push_back('_');
    kind.expected_guard = guard;
  }
  return kind;
}

std::vector<Finding> LintContent(const std::string& rel_path,
                                 const std::string& content) {
  const FileKind kind = ClassifyPath(rel_path);
  // The shared stripper (tools/analysis/lexer.h) blanks comments and
  // literals while surviving raw strings, digit separators and line
  // continuations — dtrec_lint and dtrec_analyze see the same code.
  const analysis::StripResult scrub = analysis::StripSource(content);
  const std::vector<size_t> starts = LineStarts(content);
  const std::vector<std::string> raw_lines = SplitLines(content);
  std::vector<std::string> code_lines = SplitLines(scrub.code);

  // Blank include directives out of the scrubbed code so paths like
  // <propensity/propensity.h> never feed the identifier-based rules;
  // CheckIncludeHygiene sees the raw lines instead.
  std::string code = scrub.code;
  {
    size_t offset = 0;
    for (size_t ln0 = 0; ln0 < raw_lines.size(); ++ln0) {
      const size_t len = raw_lines[ln0].size();
      if (ParseInclude(raw_lines[ln0]).first != '\0') {
        for (size_t k = 0; k < len; ++k) code[offset + k] = ' ';
        code_lines[ln0].assign(len, ' ');
      }
      offset += len + 1;
    }
  }

  const analysis::AllowParse allows =
      analysis::ParseAllowComments("dtrec-lint:", scrub.comments, KnownRules());

  std::vector<Finding> raw;
  CheckPropensityDivision(rel_path, code, starts, &raw);
  CheckIdentifierRules(rel_path, code, starts, kind.is_test, &raw);
  if (kind.is_header && !kind.expected_guard.empty()) {
    CheckIncludeGuard(rel_path, code_lines, kind.expected_guard, &raw);
  }
  CheckIncludeHygiene(rel_path, raw_lines, &raw);
  CheckFloatLiterals(rel_path, code, starts, &raw);
  if (!kind.is_test) CheckRawOfstream(rel_path, code, starts, &raw);
  if (!kind.is_test && StartsWith(rel_path, "src/")) {
    CheckRawStderr(rel_path, code, starts, &raw);
  }
  CheckSignalSafeRegions(rel_path, scrub.comments, code_lines, &raw);

  std::vector<Finding> findings;
  for (Finding& f : raw) {
    if (!analysis::AllowCovers(allows, f.rule, f.line)) {
      findings.push_back(std::move(f));
    }
  }
  for (const auto& [line, rule] : allows.unknown) {
    findings.push_back({rel_path, line, "lint-usage",
                        "allow() names unknown rule '" + rule + "'"});
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> LintClangTidyConfig(const std::string& rel_path,
                                         const std::string& content) {
  std::vector<Finding> findings;
  if (Trim(content).empty()) {
    findings.push_back(
        {rel_path, 1, "clang-tidy-config", ".clang-tidy is empty"});
    return findings;
  }
  for (const std::string& key :
       {std::string("Checks:"), std::string("WarningsAsErrors:"),
        std::string("HeaderFilterRegex:")}) {
    bool found = false;
    for (const std::string& line : SplitLines(content)) {
      if (StartsWith(Trim(line), key)) {
        found = true;
        break;
      }
    }
    if (!found) {
      findings.push_back({rel_path, 1, "clang-tidy-config",
                          ".clang-tidy is missing the '" + key + "' key"});
    }
  }
  return findings;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\"schema\": \"dtrec-lint-v1\", \"count\": " << findings.size()
     << ", \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) os << ", ";
    os << "{\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
       << ", \"rule\": \"" << JsonEscape(f.rule) << "\", \"message\": \""
       << JsonEscape(f.message) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

const std::vector<std::string>& KnownRules() {
  static const std::vector<std::string> kRules = {
      "propensity-division",      "banned-rand",
      "naked-new",                "include-guard",
      "include-hygiene",          "float-literal",
      "raw-ofstream-write",       "raw-stderr-logging",
      "signal-unsafe-in-handler", "lint-usage"};
  return kRules;
}

}  // namespace dtrec::lint
