// dtrec_analyze — dataflow, layering and lock-discipline static analysis
// for the dtrec tree; see tools/analysis/analysis.h for the rule
// catalogue, suppression syntax and baseline grammar.
//
// Usage:
//   dtrec_analyze [--root=DIR] [--baseline=FILE] [--no-baseline]
//                 [--report=FILE] [--sarif=FILE] [--cache=FILE] [path...]
//   dtrec_analyze --validate-sarif=FILE
//
// Paths are root-relative files or directories to scan (default: src
// tools bench tests). The baseline defaults to
// <root>/tools/analysis/analyze_baseline.txt when present. --cache keeps
// per-file results keyed by content hash (own file + paired header/source
// sibling), so unchanged files are not re-analyzed across runs.
// --validate-sarif structurally checks a SARIF file and exits without
// scanning. Exit code 0 = clean/valid, 1 = findings/invalid, 2 = I/O or
// usage error. --report writes the dtrec-analyze-v1 JSON findings list;
// --sarif writes SARIF 2.1.0 for code-scanning upload.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/layering.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool HasAnalyzableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// The translation-unit sibling sharing the file's stem: foo.h for
/// foo.cc/foo.cpp and foo.cc (or foo.cpp) for foo.h. Empty if absent.
fs::path PairedFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  if (ext == ".h") {
    for (const char* sibling : {".cc", ".cpp"}) {
      fs::path p = path;
      p.replace_extension(sibling);
      if (fs::exists(p)) return p;
    }
    return {};
  }
  fs::path p = path;
  p.replace_extension(".h");
  return fs::exists(p) ? p : fs::path();
}

uint64_t CombineHash(uint64_t a, uint64_t b) {
  return (a ^ b) * 1099511628211ULL + 0x9e3779b97f4a7c15ULL;
}

std::string HexHash(uint64_t h) {
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

// ---------------------------------------------------------------- cache
// Text format, one record per file:
//   dtrec-analyze-cache-v1
//   file <rel_path> <hash-hex>
//   include <line> <0|1> <path>
//   finding <line> <rule> <message to end of line>
// Stale or unparseable caches are discarded wholesale — the cache is an
// accelerator, never a source of truth.

struct CacheEntry {
  std::string hash;
  dtrec::analysis::FileAnalysis analysis;
};

std::map<std::string, CacheEntry> LoadCache(const fs::path& path) {
  std::map<std::string, CacheEntry> cache;
  std::string content;
  if (!ReadFile(path, &content)) return cache;
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != "dtrec-analyze-cache-v1") {
    return cache;
  }
  std::string current;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "file") {
      std::string rel, hash;
      if (!(ls >> rel >> hash)) return {};
      current = rel;
      cache[current].hash = hash;
    } else if (kind == "include" && !current.empty()) {
      size_t ln = 0;
      int quoted = 0;
      std::string inc;
      if (!(ls >> ln >> quoted >> inc)) return {};
      cache[current].analysis.includes.push_back({ln, inc, quoted != 0});
    } else if (kind == "finding" && !current.empty()) {
      size_t ln = 0;
      std::string rule;
      if (!(ls >> ln >> rule)) return {};
      std::string message;
      std::getline(ls, message);
      if (!message.empty() && message.front() == ' ') message.erase(0, 1);
      cache[current].analysis.findings.push_back({current, ln, rule, message});
    } else {
      return {};
    }
  }
  return cache;
}

void StoreCache(const fs::path& path,
                const std::map<std::string, CacheEntry>& cache) {
  // The cache is derived state; losing it to a crash only costs a
  // re-analysis on the next run.
  std::ofstream out(path, std::ios::binary);  // dtrec-lint: allow(raw-ofstream-write)
  if (!out) return;
  out << "dtrec-analyze-cache-v1\n";
  for (const auto& [rel, entry] : cache) {
    out << "file " << rel << " " << entry.hash << "\n";
    for (const auto& site : entry.analysis.includes) {
      out << "include " << site.line << " " << (site.quoted ? 1 : 0) << " "
          << site.path << "\n";
    }
    for (const auto& f : entry.analysis.findings) {
      out << "finding " << f.line << " " << f.rule << " " << f.message
          << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool use_baseline = true;
  std::string report_path;
  std::string sarif_path;
  std::string cache_path;
  std::string validate_sarif_path;
  std::vector<std::string> scan_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--no-baseline") {
      use_baseline = false;
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--cache=", 0) == 0) {
      cache_path = arg.substr(8);
    } else if (arg.rfind("--validate-sarif=", 0) == 0) {
      validate_sarif_path = arg.substr(17);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dtrec_analyze [--root=DIR] [--baseline=FILE] "
                   "[--no-baseline] [--report=FILE] [--sarif=FILE] "
                   "[--cache=FILE] [path...]\n"
                   "       dtrec_analyze --validate-sarif=FILE\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dtrec_analyze: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      scan_paths.push_back(arg);
    }
  }

  if (!validate_sarif_path.empty()) {
    std::string content;
    if (!ReadFile(validate_sarif_path, &content)) {
      std::cerr << "dtrec_analyze: cannot read '" << validate_sarif_path
                << "'\n";
      return 2;
    }
    const std::string error = dtrec::analysis::ValidateSarif(content);
    if (!error.empty()) {
      std::cerr << "dtrec_analyze: invalid SARIF: " << error << "\n";
      return 1;
    }
    std::cout << "dtrec_analyze: SARIF OK\n";
    return 0;
  }

  if (scan_paths.empty()) scan_paths = {"src", "tools", "bench", "tests"};

  const fs::path root_path(root);
  if (!fs::exists(root_path)) {
    std::cerr << "dtrec_analyze: root '" << root << "' does not exist\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& p : scan_paths) {
    const fs::path full = root_path / p;
    if (fs::is_regular_file(full)) {
      files.push_back(full);
    } else if (fs::is_directory(full)) {
      for (const auto& entry : fs::recursive_directory_iterator(full)) {
        if (entry.is_regular_file() && HasAnalyzableExtension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      std::cerr << "dtrec_analyze: path '" << full.string()
                << "' is neither a file nor a directory\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Baseline: explicit flag, else the checked-in default when it exists.
  dtrec::analysis::Baseline baseline;
  if (use_baseline) {
    fs::path bp = baseline_path.empty()
                      ? root_path / "tools/analysis/analyze_baseline.txt"
                      : fs::path(baseline_path);
    std::string content;
    if (ReadFile(bp, &content)) {
      baseline = dtrec::analysis::ParseBaseline(content);
      if (!baseline.errors.empty()) {
        for (const std::string& e : baseline.errors) {
          std::cerr << "dtrec_analyze: " << bp.string() << ": " << e << "\n";
        }
        return 2;
      }
    } else if (!baseline_path.empty()) {
      std::cerr << "dtrec_analyze: cannot read baseline '" << bp.string()
                << "'\n";
      return 2;
    }
  }

  std::map<std::string, CacheEntry> cache;
  if (!cache_path.empty()) cache = LoadCache(cache_path);

  std::map<std::string, std::vector<dtrec::analysis::IncludeSite>>
      includes_by_file;
  std::vector<dtrec::analysis::Finding> findings;
  std::map<std::string, CacheEntry> new_cache;
  size_t cache_hits = 0;

  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content)) {
      std::cerr << "dtrec_analyze: cannot read '" << file.string() << "'\n";
      return 2;
    }
    std::string paired_content;
    const fs::path paired = PairedFile(file);
    if (!paired.empty()) ReadFile(paired, &paired_content);

    const std::string rel = fs::relative(file, root_path).generic_string();
    const std::string hash =
        HexHash(CombineHash(dtrec::analysis::HashContent(content),
                            dtrec::analysis::HashContent(paired_content)));

    dtrec::analysis::FileAnalysis analysis;
    const auto it = cache.find(rel);
    if (it != cache.end() && it->second.hash == hash) {
      analysis = it->second.analysis;
      ++cache_hits;
    } else {
      analysis = dtrec::analysis::AnalyzeFile(rel, content, paired_content);
    }
    new_cache[rel] = {hash, analysis};
    includes_by_file[rel] = analysis.includes;
    findings.insert(findings.end(), analysis.findings.begin(),
                    analysis.findings.end());
  }

  auto layering =
      dtrec::analysis::AnalyzeLayering(includes_by_file, baseline.edges);
  findings.insert(findings.end(), layering.begin(), layering.end());

  size_t suppressed = 0;
  findings = dtrec::analysis::ApplyBaseline(baseline, std::move(findings),
                                            &suppressed);
  std::sort(findings.begin(), findings.end(),
            [](const dtrec::analysis::Finding& a,
               const dtrec::analysis::Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "dtrec_analyze: " << findings.size() << " finding(s) in "
            << files.size() << " file(s) scanned (" << cache_hits
            << " cached, " << suppressed << " baselined)\n";

  if (!cache_path.empty()) StoreCache(cache_path, new_cache);

  if (!report_path.empty()) {
    // Derived output; re-running the analyzer recreates it.
    std::ofstream out(report_path, std::ios::binary);  // dtrec-lint: allow(raw-ofstream-write)
    if (!out) {
      std::cerr << "dtrec_analyze: cannot write report '" << report_path
                << "'\n";
      return 2;
    }
    out << dtrec::analysis::FindingsToJson(findings, suppressed);
  }
  if (!sarif_path.empty()) {
    // Derived output; re-running the analyzer recreates it.
    std::ofstream out(sarif_path, std::ios::binary);  // dtrec-lint: allow(raw-ofstream-write)
    if (!out) {
      std::cerr << "dtrec_analyze: cannot write SARIF '" << sarif_path
                << "'\n";
      return 2;
    }
    out << dtrec::analysis::FindingsToSarif(findings);
  }
  return findings.empty() ? 0 : 1;
}
