// dtrec command-line tool: generate datasets, diagnose selection bias,
// train/evaluate any registered method, and compare methods — without
// writing C++.
//
//   dtrec_cli generate <coat|yahoo|kuairec|ml100k> <prefix> [key=value...]
//   dtrec_cli diagnose <prefix>
//   dtrec_cli train <method> <prefix> [--resume <dir>]
//                   [--checkpoint-every <n>] [--metrics-out <path>]
//                   [--trace-out <path>] [--events-out <path>]
//                   [--profile-out <path>] [--alerts-out <path>]
//                   [--watch-rules <path>] [key=value...]
//   dtrec_cli compare <prefix> <method1,method2,...> [key=value...]
//   dtrec_cli validate [--trace <path>] [--events <path>]
//                      [--metrics <path>] [--serving-bench <path>]
//                      [--alerts <path>] [--profile <path>]
//                      [--require-spans <csv>] [--require-losses <csv>]
//                      [--require-alerts <csv>]
//   dtrec_cli bench-diff <old.json> <new.json> [--threshold <pct>]
//   dtrec_cli methods
//
// Recognized key=value pairs: seed, scale, epochs, dim, batch_size, lr,
// k, seeds (compare only).
//
// Telemetry (see src/obs/): `--trace-out` arms DTREC_TRACE_SPAN recording
// and writes a Chrome trace_event JSON loadable in chrome://tracing or
// Perfetto; `--events-out` streams one dtrec-train-events-v1 JSONL record
// per epoch; `--metrics-out` dumps the global metrics registry as JSON.
// `--profile-out` attaches the SIGPROF sampling profiler across Fit() and
// writes collapsed stacks there plus a dtrec-profile-v1 JSON at
// <path>.json. `--alerts-out` runs the telemetry watchdog during training
// and streams dtrec-alerts-v1 JSONL; rules come from `--watch-rules
// <path>` (see obs/watchdog.h for the grammar) or default to a
// propensity-clip-rate drift rule — the paper's failure mode surfacing as
// an alert, not a post-hoc diff. `validate` structurally checks artifacts
// produced by those flags and exits nonzero if any file is malformed or
// misses a required span/loss/alert. `bench-diff` compares two bench
// JSONs of the same schema row by row and exits nonzero when any metric
// regresses past the threshold (default 25%).
//
// `--resume <dir>` makes training crash-safe: a checkpoint is committed
// atomically into <dir> every `--checkpoint-every` epochs (default 1),
// and an existing checkpoint there is picked up and continued, so the
// same command line recovers from a kill. A run interrupted by an armed
// failpoint (DTREC_FAILPOINTS env) exits with code 3 — distinct from
// usage errors (2) and ordinary failures (1) — so crash-recovery
// harnesses can tell "re-run me" from "give up".

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "data/io.h"
#include "diagnostics/mnar_diagnostics.h"
#include "experiments/config.h"
#include "experiments/evaluator.h"
#include "experiments/runner.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/telemetry_validate.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "synth/coat_like.h"
#include "synth/kuairec_like.h"
#include "synth/movielens_like.h"
#include "synth/yahoo_like.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace dtrec {
namespace {

using ArgMap = std::map<std::string, std::string>;

/// Exit code for a training run killed mid-flight by an armed failpoint.
/// Restarting the identical command resumes from the last checkpoint.
constexpr int kExitInterrupted = 3;

/// Pulls `--resume <dir>` / `--resume=<dir>` and `--checkpoint-every <n>`
/// out of argv (consuming their values) before key=value parsing; the
/// flags return empty/default when absent.
struct TrainFlags {
  std::string resume_dir;
  size_t checkpoint_every = 1;
  std::string metrics_out;  ///< metrics-registry JSON dump path
  std::string trace_out;    ///< Chrome trace_event JSON path (arms tracing)
  std::string events_out;   ///< per-epoch JSONL event stream path
  std::string profile_out;  ///< collapsed-stack path (+ <path>.json report)
  std::string alerts_out;   ///< dtrec-alerts-v1 JSONL path (arms watchdog)
  std::string watch_rules;  ///< watchdog rules file; "" → default rules
};

/// Watchdog rules used by `train --alerts-out` when no --watch-rules file
/// is given: the propensity-clip rate drifting away from its own trailing
/// baseline is the propensity-identification failure mode showing up live.
constexpr const char* kDefaultTrainWatchRules =
    "clip_drift: drift:rate:propensity.clip.fired/propensity.clip.total, "
    "0.5, 0.05, above\n";

TrainFlags ExtractTrainFlags(int* argc, char** argv, int start) {
  TrainFlags flags;
  int out = start;
  for (int i = start; i < *argc; ++i) {
    const std::string arg = argv[i];
    auto take_value = [&](const std::string& name,
                          std::string* value) -> bool {
      if (arg == name && i + 1 < *argc) {
        *value = argv[++i];
        return true;
      }
      if (arg.rfind(name + "=", 0) == 0) {
        *value = arg.substr(name.size() + 1);
        return true;
      }
      return false;
    };
    std::string value;
    if (take_value("--resume", &value)) {
      flags.resume_dir = value;
    } else if (take_value("--checkpoint-every", &value)) {
      flags.checkpoint_every =
          std::max<size_t>(1, static_cast<size_t>(
                                  std::strtoull(value.c_str(), nullptr, 10)));
    } else if (take_value("--metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (take_value("--trace-out", &value)) {
      flags.trace_out = value;
    } else if (take_value("--events-out", &value)) {
      flags.events_out = value;
    } else if (take_value("--profile-out", &value)) {
      flags.profile_out = value;
    } else if (take_value("--alerts-out", &value)) {
      flags.alerts_out = value;
    } else if (take_value("--watch-rules", &value)) {
      flags.watch_rules = value;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return flags;
}

ArgMap ParseKeyValues(int argc, char** argv, int start) {
  ArgMap args;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "ignoring malformed argument '%s'\n",
                   arg.c_str());
      continue;
    }
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

double GetNum(const ArgMap& args, const std::string& key,
              double fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback : std::strtod(it->second.c_str(),
                                                   nullptr);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dtrec_cli generate <coat|yahoo|kuairec|ml100k> <prefix> [k=v...]\n"
      "  dtrec_cli diagnose <prefix>\n"
      "  dtrec_cli train <method> <prefix> [--resume <dir>]\n"
      "            [--checkpoint-every <n>] [--metrics-out <path>]\n"
      "            [--trace-out <path>] [--events-out <path>]\n"
      "            [--profile-out <path>] [--alerts-out <path>]\n"
      "            [--watch-rules <path>] [k=v...]\n"
      "  dtrec_cli compare <prefix> <m1,m2,...> [k=v...]\n"
      "  dtrec_cli validate [--trace <path>] [--events <path>]\n"
      "            [--metrics <path>] [--serving-bench <path>]\n"
      "            [--alerts <path>] [--profile <path>]\n"
      "            [--require-spans <csv>] [--require-losses <csv>]\n"
      "            [--require-alerts <csv>]\n"
      "  dtrec_cli bench-diff <old.json> <new.json> [--threshold <pct>]\n"
      "  dtrec_cli methods\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

TrainConfig ConfigFromArgs(const ArgMap& args) {
  TrainConfig config;
  config.epochs = static_cast<size_t>(GetNum(args, "epochs", 20));
  config.embedding_dim = static_cast<size_t>(GetNum(args, "dim", 8));
  config.batch_size = static_cast<size_t>(GetNum(args, "batch_size", 2048));
  config.learning_rate = GetNum(args, "lr", 0.05);
  config.seed = static_cast<uint64_t>(GetNum(args, "seed", 123));
  return config;
}

int RunGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string kind = argv[2];
  const std::string prefix = argv[3];
  const ArgMap args = ParseKeyValues(argc, argv, 4);
  const uint64_t seed = static_cast<uint64_t>(GetNum(args, "seed", 42));
  const double scale = GetNum(args, "scale", 0.1);

  RatingDataset dataset;
  if (kind == "coat") {
    dataset = MakeCoatLike(seed).dataset;
  } else if (kind == "yahoo") {
    dataset = MakeYahooLike(seed, scale).dataset;
  } else if (kind == "kuairec") {
    dataset = MakeKuaiRecLike(seed, scale).dataset;
  } else if (kind == "ml100k") {
    SemiSyntheticConfig config;
    config.seed = seed;
    config.rho = GetNum(args, "rho", 1.0);
    config.epsilon = GetNum(args, "epsilon", 0.3);
    dataset = MovieLensLikeGenerator(config).Generate().dataset;
  } else {
    std::fprintf(stderr, "unknown dataset kind '%s'\n", kind.c_str());
    return 2;
  }
  const Status st = SaveDataset(dataset, prefix);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s.{meta,train.csv,test.csv}: %s\n", prefix.c_str(),
              dataset.DebugString().c_str());
  return 0;
}

int RunDiagnose(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto dataset = LoadDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  auto diagnosis = DiagnoseSelectionBias(dataset.value());
  if (!diagnosis.ok()) return Fail(diagnosis.status());
  std::printf("%s\n", diagnosis.value().Summary().c_str());
  std::printf("density %.4f, %s\n", dataset.value().TrainDensity(),
              dataset.value().DebugString().c_str());
  return 0;
}

int RunTrain(int argc, char** argv) {
  const TrainFlags flags = ExtractTrainFlags(&argc, argv, 2);
  if (argc < 4) return Usage();
  const std::string method = argv[2];
  auto dataset = LoadDataset(argv[3]);
  if (!dataset.ok()) return Fail(dataset.status());
  const ArgMap args = ParseKeyValues(argc, argv, 4);
  const size_t k = static_cast<size_t>(GetNum(args, "k", 5));

  auto trainer_or =
      MakeTrainer(method, TuneForMethod(method, ConfigFromArgs(args)));
  if (!trainer_or.ok()) return Fail(trainer_or.status());
  auto trainer = std::move(trainer_or).value();

  FitOptions options;
  options.checkpoint_dir = flags.resume_dir;
  options.checkpoint_every = flags.checkpoint_every;
  options.resume = !flags.resume_dir.empty();
  options.events_path = flags.events_out;
  if (!flags.trace_out.empty()) obs::EnableTracing();

  bool profiling = false;
  if (!flags.profile_out.empty()) {
    if (const Status st = obs::StartProfiler(); st.ok()) {
      profiling = true;
    } else {
      std::fprintf(stderr, "profiler not attached: %s\n",
                   st.ToString().c_str());
    }
  }

  std::unique_ptr<obs::Watchdog> watchdog;
  if (!flags.alerts_out.empty() || !flags.watch_rules.empty()) {
    std::string rules_text = kDefaultTrainWatchRules;
    if (!flags.watch_rules.empty()) {
      if (const Status st = ReadFile(flags.watch_rules, &rules_text);
          !st.ok()) {
        return Fail(st);
      }
    }
    std::vector<obs::WatchRule> rules;
    if (const Status st = obs::ParseWatchdogRules(rules_text, &rules);
        !st.ok()) {
      return Fail(st);
    }
    obs::Watchdog::Options watch_options;
    watch_options.alerts_path = flags.alerts_out;
    watchdog = std::make_unique<obs::Watchdog>(
        &obs::GlobalMetrics(), std::move(rules), watch_options);
    watchdog->Poll();  // prime the windows before the first epoch
    if (const Status st = watchdog->Start(0.5); !st.ok()) return Fail(st);
  }
  if (!flags.resume_dir.empty()) {
    // Best-effort two-level mkdir -p; an unwritable dir still surfaces
    // as a Status from the first checkpoint save.
    const size_t slash = flags.resume_dir.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      ::mkdir(flags.resume_dir.substr(0, slash).c_str(), 0755);
    }
    ::mkdir(flags.resume_dir.c_str(), 0755);
  }
  Status st;
  try {
    st = trainer->Fit(dataset.value(), options);
  } catch (const failpoint::FailpointAbort& abort) {
    std::fprintf(stderr,
                 "interrupted: %s\nre-run the same command to resume from "
                 "%s\n",
                 abort.what(),
                 flags.resume_dir.empty() ? "scratch (no --resume dir)"
                                          : flags.resume_dir.c_str());
    return kExitInterrupted;
  }
  if (!st.ok()) return Fail(st);
  if (watchdog != nullptr) {
    // One deterministic final pass so a drift in the last epoch is not
    // lost to the periodic thread's timing, then stop the thread.
    watchdog->ForceEvaluate();
    watchdog->Stop();
    std::printf("watchdog: %zu alert(s)\n", watchdog->fired_count());
  }
  if (profiling) {
    if (const Status prof_st = obs::StopProfiler(); !prof_st.ok()) {
      std::fprintf(stderr, "profiler stop: %s\n",
                   prof_st.ToString().c_str());
    }
    const obs::ProfileReport report = obs::CollectProfile();
    if (const Status prof_st = WriteFileAtomic(
            flags.profile_out, obs::CollapsedStacks(report));
        !prof_st.ok()) {
      return Fail(prof_st);
    }
    if (const Status prof_st = WriteFileAtomic(flags.profile_out + ".json",
                                               obs::ProfileJson(report));
        !prof_st.ok()) {
      return Fail(prof_st);
    }
    std::printf("profile: %llu samples, %zu stacks -> %s\n",
                static_cast<unsigned long long>(report.samples),
                report.stacks.size(), flags.profile_out.c_str());
  }
  const RankingMetrics metrics =
      EvaluateRanking(*trainer, dataset.value(), k);
  std::printf("%s: AUC=%.4f NDCG@%zu=%.4f Recall@%zu=%.4f (%zu params)\n",
              method.c_str(), metrics.auc, k, metrics.ndcg_at_k, k,
              metrics.recall_at_k, trainer->NumParameters());
  if (!flags.trace_out.empty()) {
    const Status trace_st = obs::WriteTraceJson(flags.trace_out);
    if (!trace_st.ok()) return Fail(trace_st);
  }
  if (!flags.metrics_out.empty()) {
    obs::PublishPropensityClipStats(&obs::GlobalMetrics());
    const Status metrics_st =
        WriteFileAtomic(flags.metrics_out, obs::GlobalMetrics().DumpJson());
    if (!metrics_st.ok()) return Fail(metrics_st);
  }
  return 0;
}

/// `dtrec_cli validate`: structural check of the telemetry artifacts the
/// train command emits. Used by the CI telemetry smoke (tools/CMakeLists)
/// so a malformed trace/event stream fails the build, not a human reader.
int RunValidate(int argc, char** argv) {
  std::string trace_path, events_path, metrics_path, serving_bench_path;
  std::string alerts_path, profile_path;
  std::string require_spans, require_losses, require_alerts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto take_value = [&](const std::string& name,
                          std::string* value) -> bool {
      if (arg == name && i + 1 < argc) {
        *value = argv[++i];
        return true;
      }
      if (arg.rfind(name + "=", 0) == 0) {
        *value = arg.substr(name.size() + 1);
        return true;
      }
      return false;
    };
    if (!take_value("--trace", &trace_path) &&
        !take_value("--events", &events_path) &&
        !take_value("--metrics", &metrics_path) &&
        !take_value("--serving-bench", &serving_bench_path) &&
        !take_value("--alerts", &alerts_path) &&
        !take_value("--profile", &profile_path) &&
        !take_value("--require-spans", &require_spans) &&
        !take_value("--require-losses", &require_losses) &&
        !take_value("--require-alerts", &require_alerts)) {
      std::fprintf(stderr, "validate: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (trace_path.empty() && events_path.empty() && metrics_path.empty() &&
      serving_bench_path.empty() && alerts_path.empty() &&
      profile_path.empty()) {
    std::fprintf(stderr, "validate: nothing to validate\n");
    return Usage();
  }

  auto check_required = [](const std::string& csv,
                           const std::set<std::string>& found,
                           const char* what) -> bool {
    bool ok = true;
    for (const std::string& name : Split(csv, ',')) {
      if (name.empty()) continue;
      if (found.count(name) == 0) {
        std::fprintf(stderr, "validate: missing required %s '%s'\n", what,
                     name.c_str());
        ok = false;
      }
    }
    return ok;
  };

  bool ok = true;
  if (!trace_path.empty()) {
    std::string content;
    Status st = ReadFile(trace_path, &content);
    size_t num_events = 0;
    std::set<std::string> span_names;
    if (st.ok()) {
      st = obs::ValidateTraceJson(content, &num_events, &span_names);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "validate: trace %s: %s\n", trace_path.c_str(),
                   st.ToString().c_str());
      ok = false;
    } else {
      ok = check_required(require_spans, span_names, "span") && ok;
      std::printf("trace ok: %zu events, %zu distinct spans\n", num_events,
                  span_names.size());
    }
  }
  if (!events_path.empty()) {
    std::string content;
    Status st = ReadFile(events_path, &content);
    size_t num_records = 0;
    std::set<std::string> loss_keys;
    if (st.ok()) {
      st = obs::ValidateTrainEventsJsonl(content, &num_records, &loss_keys);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "validate: events %s: %s\n", events_path.c_str(),
                   st.ToString().c_str());
      ok = false;
    } else {
      ok = check_required(require_losses, loss_keys, "loss component") && ok;
      std::printf("events ok: %zu records, %zu loss components\n",
                  num_records, loss_keys.size());
    }
  }
  if (!metrics_path.empty()) {
    std::string content;
    Status st = ReadFile(metrics_path, &content);
    if (st.ok()) st = obs::ValidateMetricsJson(content);
    if (!st.ok()) {
      std::fprintf(stderr, "validate: metrics %s: %s\n",
                   metrics_path.c_str(), st.ToString().c_str());
      ok = false;
    } else {
      std::printf("metrics ok\n");
    }
  }
  if (!alerts_path.empty()) {
    std::string content;
    Status st = ReadFile(alerts_path, &content);
    size_t num_records = 0;
    std::set<std::string> rule_names, contexts;
    if (st.ok()) {
      st = obs::ValidateAlertsJsonl(content, &num_records, &rule_names,
                                    &contexts);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "validate: alerts %s: %s\n", alerts_path.c_str(),
                   st.ToString().c_str());
      ok = false;
    } else {
      ok = check_required(require_alerts, rule_names, "alert rule") && ok;
      std::printf("alerts ok: %zu records, %zu rules, %zu contexts\n",
                  num_records, rule_names.size(), contexts.size());
    }
  }
  if (!profile_path.empty()) {
    std::string content;
    Status st = ReadFile(profile_path, &content);
    size_t num_samples = 0;
    std::set<std::string> frame_names;
    if (st.ok()) {
      st = obs::ValidateProfileJson(content, &num_samples, &frame_names);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "validate: profile %s: %s\n",
                   profile_path.c_str(), st.ToString().c_str());
      ok = false;
    } else {
      std::printf("profile ok: %zu samples, %zu distinct frames\n",
                  num_samples, frame_names.size());
    }
  }
  if (!serving_bench_path.empty()) {
    std::string content;
    Status st = ReadFile(serving_bench_path, &content);
    obs::ServingBenchGateInputs inputs;
    if (st.ok()) st = obs::ValidateServingBenchJson(content, &inputs);
    if (!st.ok()) {
      std::fprintf(stderr, "validate: serving-bench %s: %s\n",
                   serving_bench_path.c_str(), st.ToString().c_str());
      ok = false;
    } else {
      std::printf("serving-bench ok: %zu phases, build %s/%s\n",
                  inputs.num_phases, inputs.build_type.c_str(),
                  inputs.sanitizers.c_str());
    }
  }
  return ok ? 0 : 1;
}

/// `dtrec_cli bench-diff old.json new.json [--threshold <pct>]`: row-wise
/// comparison of two bench JSONs of the same schema. Prints every row's
/// delta and exits 1 when any metric regresses past the threshold
/// (default 25% — wide enough to absorb container noise, tight enough to
/// catch a real cliff). Rows present on only one side are reported but
/// never fail the diff: new benches appearing is not a regression.
int RunBenchDiff(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold_pct = 25.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::strtod(arg.c_str() + 12, nullptr);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2 || threshold_pct <= 0.0) return Usage();

  std::string old_schema, new_schema;
  std::vector<obs::BenchDiffRow> old_rows, new_rows;
  for (int side = 0; side < 2; ++side) {
    std::string content;
    if (Status st = ReadFile(paths[side], &content); !st.ok()) {
      return Fail(st);
    }
    Status st = obs::ExtractBenchRows(content,
                                      side == 0 ? &old_schema : &new_schema,
                                      side == 0 ? &old_rows : &new_rows);
    if (!st.ok()) {
      std::fprintf(stderr, "bench-diff: %s: %s\n", paths[side].c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }
  if (old_schema != new_schema) {
    std::fprintf(stderr, "bench-diff: schema mismatch: %s vs %s\n",
                 old_schema.c_str(), new_schema.c_str());
    return 1;
  }

  std::map<std::string, obs::BenchDiffRow> old_by_name;
  for (const obs::BenchDiffRow& row : old_rows) old_by_name[row.name] = row;
  size_t regressions = 0, matched = 0;
  for (const obs::BenchDiffRow& row : new_rows) {
    const auto it = old_by_name.find(row.name);
    if (it == old_by_name.end()) {
      std::printf("%-48s %12s -> %12.4g  (new row)\n", row.name.c_str(),
                  "-", row.value);
      continue;
    }
    ++matched;
    const obs::BenchDiffRow& old_row = it->second;
    const double delta_pct =
        old_row.value != 0.0
            ? 100.0 * (row.value - old_row.value) / old_row.value
            : 0.0;
    // A regression is movement in the *bad* direction past the threshold:
    // throughput down, or latency up.
    const bool regressed = row.higher_is_better
                               ? delta_pct < -threshold_pct
                               : delta_pct > threshold_pct;
    if (regressed) ++regressions;
    std::printf("%-48s %12.4g -> %12.4g  %+7.1f%%%s\n", row.name.c_str(),
                old_row.value, row.value, delta_pct,
                regressed ? "  REGRESSION" : "");
    old_by_name.erase(it);
  }
  for (const auto& [name, row] : old_by_name) {
    std::printf("%-48s %12.4g -> %12s  (row removed)\n", name.c_str(),
                row.value, "-");
  }
  if (matched == 0) {
    std::fprintf(stderr, "bench-diff: no comparable rows between %s and "
                         "%s\n",
                 paths[0].c_str(), paths[1].c_str());
    return 1;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench-diff: %zu row(s) regressed more than %.1f%%\n",
                 regressions, threshold_pct);
    return 1;
  }
  std::printf("bench-diff ok: %zu rows within %.1f%% (%s)\n", matched,
              threshold_pct, old_schema.c_str());
  return 0;
}

int RunCompare(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto dataset = LoadDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  const std::vector<std::string> methods = Split(argv[3], ',');
  const ArgMap args = ParseKeyValues(argc, argv, 4);

  DatasetProfile profile;
  profile.train = ConfigFromArgs(args);
  profile.ranking_k = static_cast<size_t>(GetNum(args, "k", 5));
  const size_t seeds = static_cast<size_t>(GetNum(args, "seeds", 3));

  RatingDataset data = std::move(dataset).value();
  auto factory = [&data](uint64_t) { return data; };
  std::vector<uint64_t> seed_list;
  for (size_t i = 0; i < seeds; ++i) seed_list.push_back(100 + i);

  const auto results = RunComparison(methods, factory, profile, seed_list,
                                     /*quiet=*/true);
  MakeComparisonTable("comparison", profile.ranking_k, results)
      .RenderConsole(std::cout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return RunGenerate(argc, argv);
  if (command == "diagnose") return RunDiagnose(argc, argv);
  if (command == "train") return RunTrain(argc, argv);
  if (command == "compare") return RunCompare(argc, argv);
  if (command == "validate") return RunValidate(argc, argv);
  if (command == "bench-diff") return RunBenchDiff(argc, argv);
  if (command == "methods") {
    for (const std::string& name : AllMethodNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace dtrec

int main(int argc, char** argv) { return dtrec::Main(argc, argv); }
