#include "analysis/lexer.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace dtrec::analysis {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// True if the quote at s[i] opens a raw string literal: the maximal run
/// of identifier characters directly before it is exactly one of the raw
/// encoding prefixes (R, LR, uR, UR, u8R). An identifier butting against
/// the quote (e.g. a macro called FOOR"...") is not valid C++, so exact
/// prefix matching is safe.
bool OpensRawString(const std::string& s, size_t i) {
  size_t b = i;
  while (b > 0 && IsIdentChar(s[b - 1])) --b;
  const std::string prefix = s.substr(b, i - b);
  return prefix == "R" || prefix == "LR" || prefix == "uR" ||
         prefix == "UR" || prefix == "u8R";
}

/// True if the single quote at s[i] is a C++14 digit separator rather than
/// the start of a character literal: the maximal pp-number-ish run ending
/// at it (identifier chars, dots, earlier separators) starts with a digit
/// (covers 1'000'000, 0xFF'FF, 0b1010'1010) or a dot-digit (.5'0). A run
/// starting with a letter (u'a', L'x') is a char-literal encoding prefix.
bool IsDigitSeparator(const std::string& s, size_t i) {
  if (i == 0 || !IsIdentChar(s[i - 1])) return false;
  size_t b = i;
  while (b > 0 &&
         (IsIdentChar(s[b - 1]) || s[b - 1] == '\'' || s[b - 1] == '.')) {
    --b;
  }
  if (b >= i) return false;
  if (IsDigit(s[b])) return true;
  return s[b] == '.' && b + 1 < s.size() && IsDigit(s[b + 1]);
}

/// True if the newline at s[i] is spliced away by a backslash (optionally
/// through a \r), i.e. a line continuation.
bool ContinuesLine(const std::string& s, size_t i) {
  if (i == 0) return false;
  size_t j = i - 1;
  if (s[j] == '\r' && j > 0) --j;
  return s[j] == '\\';
}

}  // namespace

StripResult StripSource(const std::string& s) {
  StripResult out;
  out.code.assign(s.size(), ' ');
  size_t line = 0;
  auto comment_at = [&out](size_t ln) -> std::string& {
    if (out.comments.size() <= ln) out.comments.resize(ln + 1);
    return out.comments[ln];
  };

  enum State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = kCode;
  std::string raw_close;  // e.g. )delim" for the active raw string
  const size_t n = s.size();
  size_t i = 0;
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      out.code[i] = '\n';
      // A backslash directly before the newline splices the lines: the
      // comment (or literal) continues. Strings/chars keep their state
      // anyway; only the line comment needs the explicit check.
      if (st == kLineComment && !ContinuesLine(s, i)) st = kCode;
      ++line;
      ++i;
      continue;
    }
    switch (st) {
      case kCode: {
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
          st = kLineComment;
          i += 2;
          break;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '*') {
          st = kBlockComment;
          i += 2;
          break;
        }
        if (c == '"') {
          if (OpensRawString(s, i)) {
            size_t d = i + 1;
            while (d < n && s[d] != '(' && s[d] != '\n') ++d;
            raw_close = ")" + s.substr(i + 1, d - (i + 1)) + "\"";
            st = kRawString;
            i = d < n ? d + 1 : n;
          } else {
            st = kString;
            ++i;
          }
          break;
        }
        if (c == '\'') {
          if (IsDigitSeparator(s, i)) {
            out.code[i] = c;
            ++i;
          } else {
            st = kChar;
            ++i;
          }
          break;
        }
        out.code[i] = c;
        ++i;
        break;
      }
      case kLineComment:
        comment_at(line).push_back(c);
        ++i;
        break;
      case kBlockComment:
        if (c == '*' && i + 1 < n && s[i + 1] == '/') {
          st = kCode;
          i += 2;
        } else {
          comment_at(line).push_back(c);
          ++i;
        }
        break;
      case kString:
      case kChar: {
        const char close = st == kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          // Never consume a newline as the escaped character: the top of
          // the loop must see it so line accounting (and the spliced
          // continuation) stay exact.
          i += s[i + 1] == '\n' ? 1 : 2;
        } else {
          if (c == close) st = kCode;
          ++i;
        }
        break;
      }
      case kRawString:
        if (s.compare(i, raw_close.size(), raw_close) == 0) {
          st = kCode;
          i += raw_close.size();
        } else {
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<Token> Lex(const std::string& code) {
  // Two- and three-char punctuators, longest first (maximal munch).
  static const std::vector<std::string> kPuncts = {
      "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
      "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
      "%=",  "&=",  "|=",  "^=",
  };
  std::vector<Token> tokens;
  const size_t n = code.size();
  size_t line = 1;
  size_t line_start = 0;
  size_t i = 0;
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      line_start = ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    const size_t col = i - line_start + 1;
    if (IsIdentStart(c)) {
      const size_t b = i;
      while (i < n && IsIdentChar(code[i])) ++i;
      tokens.push_back({TokKind::kIdent, code.substr(b, i - b), line, col});
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(code[i + 1]))) {
      const size_t b = i;
      while (i < n) {
        const char d = code[i];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > b &&
            (code[i - 1] == 'e' || code[i - 1] == 'E' ||
             code[i - 1] == 'p' || code[i - 1] == 'P')) {
          ++i;
          continue;
        }
        break;
      }
      tokens.push_back({TokKind::kNumber, code.substr(b, i - b), line, col});
      continue;
    }
    bool matched = false;
    for (const std::string& p : kPuncts) {
      if (code.compare(i, p.size(), p) == 0) {
        tokens.push_back({TokKind::kPunct, p, line, col});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      tokens.push_back({TokKind::kPunct, std::string(1, c), line, col});
      ++i;
    }
  }
  return tokens;
}

AllowParse ParseAllowComments(const std::string& tag,
                              const std::vector<std::string>& comments,
                              const std::vector<std::string>& known_rules) {
  AllowParse out;
  for (size_t ln0 = 0; ln0 < comments.size(); ++ln0) {
    const std::string& text = comments[ln0];
    size_t pos = text.find(tag);
    while (pos != std::string::npos) {
      const size_t p = text.find("allow(", pos + tag.size());
      const size_t end =
          p == std::string::npos ? std::string::npos : text.find(')', p + 6);
      if (p == std::string::npos || end == std::string::npos) break;
      std::string inner = text.substr(p + 6, end - (p + 6));
      std::replace(inner.begin(), inner.end(), ',', ' ');
      std::istringstream iss(inner);
      std::string rule;
      while (iss >> rule) {
        if (rule != "all" &&
            std::find(known_rules.begin(), known_rules.end(), rule) ==
                known_rules.end()) {
          out.unknown.emplace_back(ln0 + 1, rule);
          continue;
        }
        out.by_line[ln0 + 1].insert(rule);
      }
      pos = text.find(tag, end);
    }
  }
  return out;
}

bool AllowCovers(const AllowParse& allows, const std::string& rule,
                 size_t line) {
  for (const size_t ln : {line, line > 0 ? line - 1 : 0}) {
    const auto it = allows.by_line.find(ln);
    if (it == allows.by_line.end()) continue;
    if (it->second.count(rule) != 0 || it->second.count("all") != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace dtrec::analysis
