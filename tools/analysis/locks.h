#ifndef DTREC_TOOLS_ANALYSIS_LOCKS_H_
#define DTREC_TOOLS_ANALYSIS_LOCKS_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/lexer.h"

// Lock-discipline checking (rule `lock-discipline`), the static
// complement to the TSan CI leg. Fields annotated with the no-op macro
// DTREC_GUARDED_BY(mu) (util/thread_annotations.h) may only be read or
// written inside a scope that constructed a std::lock_guard /
// unique_lock / scoped_lock naming that mutex, or inside a function
// declared with DTREC_REQUIRES(mu).
//
// The analysis is textual: mutex identity is the final identifier of the
// lock expression (`mu_`, `state.mu` and `buffer->mu` all name "mu_" /
// "mu"), scopes are brace-tracked, and a lock is considered held from its
// construction until the enclosing brace closes. A guard constructed
// conditionally or released early via unique_lock::unlock() is beyond
// this checker — that is what the TSan leg is for.

namespace dtrec::analysis {

struct LockAnnotations {
  /// field name → mutex name (the identifier inside DTREC_GUARDED_BY).
  std::map<std::string, std::string> guarded;
};

/// Collects DTREC_GUARDED_BY annotations from a token stream (the
/// annotated declaration's field is the identifier directly before the
/// macro).
LockAnnotations ExtractLockAnnotations(const std::vector<Token>& tokens);

/// Raw findings (not yet allow-filtered). `annotations` should merge the
/// file's own annotations with its paired header/source sibling's, since
/// fields declared in foo.h are used in foo.cc.
std::vector<Finding> AnalyzeLockDiscipline(const std::string& rel_path,
                                           const std::vector<Token>& tokens,
                                           const LockAnnotations& annotations);

}  // namespace dtrec::analysis

#endif  // DTREC_TOOLS_ANALYSIS_LOCKS_H_
