#ifndef DTREC_TOOLS_ANALYSIS_TAINT_H_
#define DTREC_TOOLS_ANALYSIS_TAINT_H_

#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/lexer.h"

// Propensity-taint dataflow (rule `propensity-taint`). Intra-function,
// flow-sensitive, over the token stream:
//
//   sources     identifiers matching the propensity lexicon (substring
//               match on propensit / p_hat / inv_p, case-insensitive) —
//               this covers variables, containers like eval_propensities,
//               and call results of Predict*Propensity / PropensityModel
//               helpers alike;
//   transfer    `x = expr` taints x when expr carries taint and cleanses
//               x otherwise (so re-clipping a variable clears it);
//               compound assignments only add taint; aliases
//               (`auto& w = p_hat`) propagate;
//   sanitizers  ClipPropensity / SafeInverse / SoftClip — a call's
//               argument span contributes no taint, and assigning from
//               one cleanses the target;
//   sinks       the divisor operand of `/` and `/=`, and the first
//               argument of std::log / std::pow.
//
// Taint state resets at every function-body open (a `{` whose preceding
// parenthesized list is not an if/for/while/switch/catch header), so
// state never leaks across functions. Lambda bodies share their enclosing
// function's state. Known approximations: taint entering a lambda by
// capture is tracked (same map), but taint returned *out* of helper
// functions defined in the same file is only caught via the lexicon.

namespace dtrec::analysis {

/// Raw findings (not yet allow-filtered); `tokens` from Lex() over the
/// stripped file.
std::vector<Finding> AnalyzePropensityTaint(const std::string& rel_path,
                                            const std::vector<Token>& tokens);

/// True if `identifier` matches the propensity lexicon.
bool MatchesPropensityLexicon(const std::string& identifier);

}  // namespace dtrec::analysis

#endif  // DTREC_TOOLS_ANALYSIS_TAINT_H_
