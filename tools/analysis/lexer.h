#ifndef DTREC_TOOLS_ANALYSIS_LEXER_H_
#define DTREC_TOOLS_ANALYSIS_LEXER_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

// Shared lexical layer for dtrec's static-analysis tools (dtrec_lint and
// dtrec_analyze). Two levels of service:
//
//   StripSource()  blanks comments and string/char literals out of a C++
//                  translation unit while preserving newlines (so byte
//                  offsets map back to source lines) and collecting
//                  per-line comment text for suppression parsing. Survives
//                  raw string literals R"delim(...)delim" (including the
//                  LR/uR/UR/u8R encoding prefixes), digit separators in
//                  any numeric base (1'000'000, 0xFF'FF), and backslash
//                  line continuations inside line comments and string
//                  literals.
//
//   Lex()          tokenizes stripped code into identifiers, numbers and
//                  punctuators with 1-based line/column positions —
//                  enough structure for the dataflow and lock-discipline
//                  passes without dragging in a real C++ frontend.
//
// Both linters' allow-comment suppressions are parsed here too, so the
// "covers its own line and the next" semantics stay identical across
// tools.

namespace dtrec::analysis {

struct StripResult {
  /// Same length as the input; comments and literal bodies replaced by
  /// spaces, newlines kept in place.
  std::string code;
  /// Comment text collected per 0-based source line.
  std::vector<std::string> comments;
};

StripResult StripSource(const std::string& content);

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  size_t line = 0;  ///< 1-based
  size_t col = 0;   ///< 1-based
};

/// Tokenizes stripped code (run StripSource first; literal bodies are
/// already blank). Multi-char punctuators (::, ->, /=, ==, ...) come out
/// as single tokens.
std::vector<Token> Lex(const std::string& stripped_code);

/// Per-line rule suppressions parsed from comments. An allowance covers
/// its own line and the line directly below it; "all" matches any rule.
struct AllowParse {
  std::map<size_t, std::set<std::string>> by_line;  ///< 1-based line → rules
  /// allow() entries naming rules outside `known_rules`: (1-based line,
  /// offending name). Callers report these under their usage rule.
  std::vector<std::pair<size_t, std::string>> unknown;
};

/// Scans `comments` (as produced by StripSource) for "<tag> allow(a, b)"
/// markers, e.g. tag = "dtrec-lint:" or "dtrec-analyze:".
AllowParse ParseAllowComments(const std::string& tag,
                              const std::vector<std::string>& comments,
                              const std::vector<std::string>& known_rules);

/// True if `rule` is allowed on `line` (1-based): an allowance on the line
/// itself or the line above covers it.
bool AllowCovers(const AllowParse& allows, const std::string& rule,
                 size_t line);

}  // namespace dtrec::analysis

#endif  // DTREC_TOOLS_ANALYSIS_LEXER_H_
