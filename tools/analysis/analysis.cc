#include "analysis/analysis.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "analysis/lexer.h"
#include "analysis/locks.h"
#include "analysis/taint.h"

namespace dtrec::analysis {
namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

/// "#include <path>" / "#include \"path\"" → (delimiter, path); '\0' if
/// the line is not an include directive.
std::pair<char, std::string> ParseIncludeLine(const std::string& raw_line) {
  size_t i = 0;
  const size_t n = raw_line.size();
  while (i < n && IsSpace(raw_line[i])) ++i;
  if (i >= n || raw_line[i] != '#') return {'\0', ""};
  ++i;
  while (i < n && IsSpace(raw_line[i])) ++i;
  if (raw_line.compare(i, 7, "include") != 0) return {'\0', ""};
  i += 7;
  while (i < n && IsSpace(raw_line[i])) ++i;
  if (i >= n || (raw_line[i] != '<' && raw_line[i] != '"')) return {'\0', ""};
  const char open = raw_line[i];
  const char close = open == '<' ? '>' : '"';
  ++i;
  std::string path;
  while (i < n && raw_line[i] != close) path.push_back(raw_line[i++]);
  return {open, path};
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const char* RuleShortDescription(const std::string& rule) {
  if (rule == "propensity-taint") {
    return "Unclipped propensity value reaches a division/log/pow sink";
  }
  if (rule == "layering-upward") {
    return "Include crosses the module DAG upward";
  }
  if (rule == "layering-cycle") return "Module dependency cycle";
  if (rule == "include-cycle") return "File-level include cycle";
  if (rule == "lock-discipline") {
    return "DTREC_GUARDED_BY field accessed without its mutex";
  }
  if (rule == "analyze-usage") {
    return "Malformed dtrec-analyze suppression comment";
  }
  return "dtrec_analyze finding";
}

/// Minimal recursive-descent JSON checker (same shape as the ones in
/// src/obs/telemetry_validate.cc and bench/bench_common.h, which tools/
/// deliberately does not depend on).
struct JsonCursor {
  const std::string& s;
  size_t i = 0;
  bool ok = true;

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
  bool AtEnd() {
    SkipWs();
    return i >= s.size();
  }
  std::string ParseString() {
    if (!Eat('"')) return "";
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out += s[i++];
    }
    if (!Eat('"')) ok = false;
    return out;
  }
  double ParseNumber() {
    SkipWs();
    char* end = nullptr;
    const double v = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) {
      ok = false;
      return 0.0;
    }
    i = static_cast<size_t>(end - s.c_str());
    return v;
  }
  void SkipValue();  // forward-declared, mutually recursive

  template <typename Fn>
  void ParseObject(Fn&& fn) {
    if (!Eat('{')) return;
    if (Peek('}')) {
      Eat('}');
      return;
    }
    while (ok) {
      const std::string key = ParseString();
      if (!Eat(':')) return;
      fn(key);
      if (Peek(',')) {
        Eat(',');
        continue;
      }
      Eat('}');
      return;
    }
  }
  template <typename Fn>
  void ParseArray(Fn&& fn) {
    if (!Eat('[')) return;
    if (Peek(']')) {
      Eat(']');
      return;
    }
    while (ok) {
      fn();
      if (Peek(',')) {
        Eat(',');
        continue;
      }
      Eat(']');
      return;
    }
  }
};

void JsonCursor::SkipValue() {
  SkipWs();
  if (i >= s.size()) {
    ok = false;
    return;
  }
  const char c = s[i];
  if (c == '"') {
    ParseString();
  } else if (c == '{') {
    ParseObject([this](const std::string&) { SkipValue(); });
  } else if (c == '[') {
    ParseArray([this] { SkipValue(); });
  } else if (s.compare(i, 4, "true") == 0) {
    i += 4;
  } else if (s.compare(i, 5, "false") == 0) {
    i += 5;
  } else if (s.compare(i, 4, "null") == 0) {
    i += 4;
  } else {
    ParseNumber();
  }
}

}  // namespace

const std::vector<std::string>& KnownRules() {
  static const std::vector<std::string> kRules = {
      "propensity-taint", "layering-upward", "layering-cycle",
      "include-cycle",    "lock-discipline", "analyze-usage"};
  return kRules;
}

FileAnalysis AnalyzeFile(const std::string& rel_path,
                         const std::string& content,
                         const std::string& paired_content) {
  FileAnalysis out;
  const StripResult strip = StripSource(content);
  const std::vector<Token> tokens = Lex(strip.code);

  // Includes come from the raw lines (the "path" part is a string literal
  // and is blanked in the stripped code), but the directive must survive
  // stripping — that keeps commented-out includes out of the graph.
  const std::vector<std::string> raw_lines = SplitLines(content);
  const std::vector<std::string> code_lines = SplitLines(strip.code);
  for (size_t ln0 = 0; ln0 < raw_lines.size(); ++ln0) {
    const auto [delim, path] = ParseIncludeLine(raw_lines[ln0]);
    if (delim == '\0' || path.empty()) continue;
    if (ln0 >= code_lines.size() || Trim(code_lines[ln0]).rfind('#', 0) != 0) {
      continue;
    }
    out.includes.push_back({ln0 + 1, path, delim == '"'});
  }

  std::vector<Finding> raw = AnalyzePropensityTaint(rel_path, tokens);

  LockAnnotations annotations = ExtractLockAnnotations(tokens);
  if (!paired_content.empty()) {
    const LockAnnotations paired =
        ExtractLockAnnotations(Lex(StripSource(paired_content).code));
    annotations.guarded.insert(paired.guarded.begin(), paired.guarded.end());
  }
  for (Finding& f : AnalyzeLockDiscipline(rel_path, tokens, annotations)) {
    raw.push_back(std::move(f));
  }

  const AllowParse allows =
      ParseAllowComments("dtrec-analyze:", strip.comments, KnownRules());
  // propensity-taint subsumes dtrec_lint's propensity-division: a site
  // that already carries the lint allowance is audited once, not twice.
  const AllowParse lint_allows = ParseAllowComments(
      "dtrec-lint:", strip.comments, {"propensity-division"});

  for (Finding& f : raw) {
    if (AllowCovers(allows, f.rule, f.line)) continue;
    if (f.rule == "propensity-taint" &&
        AllowCovers(lint_allows, "propensity-division", f.line)) {
      continue;
    }
    out.findings.push_back(std::move(f));
  }
  for (const auto& [line, rule] : allows.unknown) {
    out.findings.push_back({rel_path, line, "analyze-usage",
                            "allow() names unknown rule '" + rule + "'"});
  }
  std::stable_sort(
      out.findings.begin(), out.findings.end(),
      [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return out;
}

// ------------------------------------------------------------------ baseline

Baseline ParseBaseline(const std::string& content) {
  Baseline out;
  const std::vector<std::string> lines = SplitLines(content);
  for (size_t ln0 = 0; ln0 < lines.size(); ++ln0) {
    const std::string line = Trim(lines[ln0]);
    if (line.empty() || line[0] == '#') continue;
    const std::string where = "baseline line " + std::to_string(ln0 + 1);
    const size_t sep = line.find(" -- ");
    if (sep == std::string::npos || Trim(line.substr(sep + 4)).empty()) {
      out.errors.push_back(where + ": missing ' -- <justification>'");
      continue;
    }
    std::istringstream iss(line.substr(0, sep));
    std::string kind, a, b, extra;
    iss >> kind >> a >> b;
    if (iss >> extra || a.empty() || b.empty()) {
      out.errors.push_back(where + ": expected '" + kind +
                           " <arg> <arg> -- <justification>'");
      continue;
    }
    if (kind == "edge") {
      out.edges.emplace(a, b);
    } else if (kind == "finding") {
      out.findings.emplace(a, b);  // (rule, file)
    } else {
      out.errors.push_back(where + ": unknown entry kind '" + kind + "'");
    }
  }
  return out;
}

std::vector<Finding> ApplyBaseline(const Baseline& baseline,
                                   std::vector<Finding> findings,
                                   size_t* suppressed) {
  std::vector<Finding> kept;
  size_t dropped = 0;
  for (Finding& f : findings) {
    if (baseline.findings.count({f.rule, f.file}) != 0) {
      ++dropped;
      continue;
    }
    kept.push_back(std::move(f));
  }
  if (suppressed != nullptr) *suppressed = dropped;
  return kept;
}

// ------------------------------------------------------------------- reports

std::string FindingsToJson(const std::vector<Finding>& findings,
                           size_t suppressed_baseline) {
  std::ostringstream os;
  os << "{\"schema\": \"dtrec-analyze-v1\", \"count\": " << findings.size()
     << ", \"suppressed_baseline\": " << suppressed_baseline
     << ", \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) os << ", ";
    os << "{\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
       << ", \"rule\": \"" << JsonEscape(f.rule) << "\", \"message\": \""
       << JsonEscape(f.message) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"dtrec_analyze\",\n"
     << "          \"informationUri\": "
        "\"https://github.com/dtrec/dtrec\",\n"
     << "          \"version\": \"1.0.0\",\n"
     << "          \"rules\": [\n";
  const auto& rules = KnownRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    os << "            {\"id\": \"" << rules[i]
       << "\", \"shortDescription\": {\"text\": \""
       << JsonEscape(RuleShortDescription(rules[i])) << "\"}}"
       << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\"ruleId\": \"" << JsonEscape(f.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << JsonEscape(f.message)
       << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << JsonEscape(f.file)
       << "\", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": {\"startLine\": "
       << f.line << "}}}]}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

std::string ValidateSarif(const std::string& content) {
  JsonCursor cur{content};
  std::string version;
  size_t num_runs = 0;
  std::string error;
  auto fail = [&error](const std::string& msg) {
    if (error.empty()) error = msg;
  };

  cur.ParseObject([&](const std::string& key) {
    if (key == "version") {
      version = cur.ParseString();
      return;
    }
    if (key != "runs") {
      cur.SkipValue();
      return;
    }
    cur.ParseArray([&] {
      ++num_runs;
      std::string driver_name;
      std::set<std::string> declared_rules;
      size_t num_results = 0;
      cur.ParseObject([&](const std::string& rk) {
        if (rk == "tool") {
          cur.ParseObject([&](const std::string& tk) {
            if (tk != "driver") {
              cur.SkipValue();
              return;
            }
            cur.ParseObject([&](const std::string& dk) {
              if (dk == "name") {
                driver_name = cur.ParseString();
              } else if (dk == "rules") {
                cur.ParseArray([&] {
                  cur.ParseObject([&](const std::string& rrk) {
                    if (rrk == "id") {
                      declared_rules.insert(cur.ParseString());
                    } else {
                      cur.SkipValue();
                    }
                  });
                });
              } else {
                cur.SkipValue();
              }
            });
          });
          return;
        }
        if (rk != "results") {
          cur.SkipValue();
          return;
        }
        cur.ParseArray([&] {
          const std::string where =
              "results[" + std::to_string(num_results) + "]";
          ++num_results;
          std::string rule_id, message_text;
          std::string uri;
          double start_line = 0.0;
          bool saw_location = false;
          cur.ParseObject([&](const std::string& fk) {
            if (fk == "ruleId") {
              rule_id = cur.ParseString();
            } else if (fk == "message") {
              cur.ParseObject([&](const std::string& mk) {
                if (mk == "text") {
                  message_text = cur.ParseString();
                } else {
                  cur.SkipValue();
                }
              });
            } else if (fk == "locations") {
              cur.ParseArray([&] {
                saw_location = true;
                cur.ParseObject([&](const std::string& lk) {
                  if (lk != "physicalLocation") {
                    cur.SkipValue();
                    return;
                  }
                  cur.ParseObject([&](const std::string& pk) {
                    if (pk == "artifactLocation") {
                      cur.ParseObject([&](const std::string& ak) {
                        if (ak == "uri") {
                          uri = cur.ParseString();
                        } else {
                          cur.SkipValue();
                        }
                      });
                    } else if (pk == "region") {
                      cur.ParseObject([&](const std::string& gk) {
                        if (gk == "startLine") {
                          start_line = cur.ParseNumber();
                        } else {
                          cur.SkipValue();
                        }
                      });
                    } else {
                      cur.SkipValue();
                    }
                  });
                });
              });
            } else {
              cur.SkipValue();
            }
          });
          if (rule_id.empty()) {
            fail(where + " has no ruleId");
          } else if (declared_rules.count(rule_id) == 0) {
            fail(where + " ruleId '" + rule_id +
                 "' is not declared in tool.driver.rules");
          } else if (message_text.empty()) {
            fail(where + " has no message.text");
          } else if (!saw_location || uri.empty()) {
            fail(where +
                 " needs locations[0].physicalLocation.artifactLocation.uri");
          } else if (start_line < 1.0) {
            fail(where + " needs region.startLine >= 1");
          }
        });
      });
      if (driver_name.empty()) {
        fail("run has no tool.driver.name");
      } else if (driver_name != "dtrec_analyze") {
        fail("tool.driver.name is '" + driver_name +
             "', expected 'dtrec_analyze'");
      }
      if (declared_rules.empty()) fail("run declares no tool.driver.rules");
    });
  });

  if (!cur.ok || !cur.AtEnd()) return "malformed SARIF JSON";
  if (version != "2.1.0") {
    return "version is '" + version + "', expected '2.1.0'";
  }
  if (num_runs == 0) return "SARIF document has no runs";
  return error;
}

uint64_t HashContent(const std::string& content) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (const char c : content) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

}  // namespace dtrec::analysis
