#include "analysis/locks.h"

#include <utility>

namespace dtrec::analysis {
namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsLockType(const std::string& id) {
  return id == "lock_guard" || id == "unique_lock" || id == "scoped_lock";
}

/// Index one past the matching ')' / '}' for the opener at `open`, or
/// tokens.size() if unbalanced.
size_t SkipGroup(const std::vector<Token>& tokens, size_t open) {
  const std::string& o = tokens[open].text;
  const std::string close = o == "(" ? ")" : (o == "[" ? "]" : "}");
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == o) ++depth;
    if (tokens[i].text == close && --depth == 0) return i + 1;
  }
  return tokens.size();
}

/// Skips a template argument list starting at a `<` token; `>>` closes two
/// levels. Returns the index one past the closing token.
size_t SkipTemplateArgs(const std::vector<Token>& tokens, size_t i) {
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == "<") ++depth;
    if (tokens[i].text == ">") --depth;
    if (tokens[i].text == ">>") depth -= 2;
    if (depth <= 0 && (tokens[i].text == ">" || tokens[i].text == ">>")) {
      return i + 1;
    }
  }
  return tokens.size();
}

/// The last identifier of each top-level comma-separated argument inside
/// the group opened at `open` — `state.mu`, `buffer->mu` and `mu_` all
/// resolve to their final name segment.
std::vector<std::string> ArgMutexNames(const std::vector<Token>& tokens,
                                       size_t open) {
  std::vector<std::string> names;
  const size_t end = SkipGroup(tokens, open) - 1;
  int depth = 0;
  std::string last;
  for (size_t i = open + 1; i < end && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (t.text == "," && depth == 0) {
        if (!last.empty()) names.push_back(last);
        last.clear();
      }
      continue;
    }
    if (t.kind == TokKind::kIdent && depth == 0) last = t.text;
  }
  if (!last.empty()) names.push_back(last);
  return names;
}

}  // namespace

LockAnnotations ExtractLockAnnotations(const std::vector<Token>& tokens) {
  LockAnnotations out;
  for (size_t i = 1; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent ||
        tokens[i].text != "DTREC_GUARDED_BY" || !IsPunct(tokens[i + 1], "(")) {
      continue;
    }
    // The macro's own `#define DTREC_GUARDED_BY(mu)` is not a field.
    if (tokens[i - 1].kind != TokKind::kIdent ||
        tokens[i - 1].text == "define") {
      continue;
    }
    const std::vector<std::string> mus = ArgMutexNames(tokens, i + 1);
    if (mus.size() == 1) out.guarded[tokens[i - 1].text] = mus[0];
  }
  return out;
}

std::vector<Finding> AnalyzeLockDiscipline(const std::string& rel_path,
                                           const std::vector<Token>& tokens,
                                           const LockAnnotations& annotations) {
  std::vector<Finding> findings;
  if (annotations.guarded.empty()) return findings;

  int brace_depth = 0;
  // Held locks: (mutex name, brace depth at construction). A lock dies
  // when its enclosing scope closes, i.e. when brace_depth drops below
  // the construction depth.
  std::vector<std::pair<std::string, int>> held;
  // Mutexes named by a DTREC_REQUIRES(...) seen after a parameter list;
  // they become held when the function body's `{` opens, and are dropped
  // if a `;` ends the declaration first.
  std::vector<std::string> pending_requires;

  auto holds = [&held](const std::string& mu) {
    for (const auto& [name, depth] : held) {
      if (name == mu) return true;
    }
    return false;
  };

  const size_t n = tokens.size();
  for (size_t i = 0; i < n; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++brace_depth;
        for (const std::string& mu : pending_requires) {
          held.emplace_back(mu, brace_depth);
        }
        pending_requires.clear();
      } else if (t.text == "}") {
        --brace_depth;
        while (!held.empty() && held.back().second > brace_depth) {
          held.pop_back();
        }
      } else if (t.text == ";") {
        pending_requires.clear();
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    // Annotation macros: never treat their contents as accesses. A
    // REQUIRES annotation arms the pending set instead.
    if (t.text == "DTREC_GUARDED_BY" || t.text == "DTREC_REQUIRES") {
      if (i + 1 < n && IsPunct(tokens[i + 1], "(")) {
        if (t.text == "DTREC_REQUIRES") {
          for (std::string& mu : ArgMutexNames(tokens, i + 1)) {
            pending_requires.push_back(std::move(mu));
          }
        }
        i = SkipGroup(tokens, i + 1) - 1;
      }
      continue;
    }

    // Lock construction: std::lock_guard<std::mutex> l(mu_);, CTAD
    // (std::scoped_lock l(a, b);) and unnamed temporaries all land here.
    if (IsLockType(t.text)) {
      size_t j = i + 1;
      if (j < n && IsPunct(tokens[j], "<")) j = SkipTemplateArgs(tokens, j);
      if (j < n && tokens[j].kind == TokKind::kIdent) ++j;  // variable name
      if (j < n && (IsPunct(tokens[j], "(") || IsPunct(tokens[j], "{"))) {
        for (std::string& mu : ArgMutexNames(tokens, j)) {
          held.emplace_back(std::move(mu), brace_depth);
        }
        i = SkipGroup(tokens, j) - 1;
      }
      continue;
    }

    const auto guard = annotations.guarded.find(t.text);
    if (guard == annotations.guarded.end()) continue;
    // The declaration site itself (field name directly before the
    // annotation macro) is not an access.
    if (i + 1 < n && tokens[i + 1].kind == TokKind::kIdent &&
        tokens[i + 1].text == "DTREC_GUARDED_BY") {
      continue;
    }
    // Constructor member-init list: `: field_(expr)` / `, field_(expr)`.
    if (i > 0 && i + 1 < n && IsPunct(tokens[i + 1], "(") &&
        (IsPunct(tokens[i - 1], ":") || IsPunct(tokens[i - 1], ","))) {
      continue;
    }
    if (holds(guard->second)) continue;
    findings.push_back(
        {rel_path, t.line, "lock-discipline",
         "'" + t.text + "' is declared DTREC_GUARDED_BY(" + guard->second +
             ") but is accessed with no lock_guard/unique_lock/scoped_lock "
             "on '" + guard->second + "' in scope and no DTREC_REQUIRES on "
             "the enclosing function"});
  }
  return findings;
}

}  // namespace dtrec::analysis
