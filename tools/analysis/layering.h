#ifndef DTREC_TOOLS_ANALYSIS_LAYERING_H_
#define DTREC_TOOLS_ANALYSIS_LAYERING_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analysis.h"

// Layering-DAG enforcement over the include graph. The dtrec module order
// (lower may never include higher):
//
//   0  util
//   1  tensor
//   2  autograd, data
//   3  core, propensity, optim, metrics
//   4  baselines, models, synth, diagnostics
//   5  experiments, serve, obs
//
// Rules emitted:
//   layering-upward  an include site in module A pulling in module B with
//                    rank(B) > rank(A), unless the module edge (A, B) is
//                    recorded in the baseline;
//   layering-cycle   a dependency cycle between modules (catches
//                    same-rank cycles like core ↔ propensity that the
//                    rank check cannot see); baselined edges are excluded
//                    from the cycle graph;
//   include-cycle    a file-level include loop (a.h → b.h → a.h), which
//                    include guards silence but layering forbids.
//
// tools/, tests/, bench/ and examples/ are exempt as includers — they sit
// outside the layer stack and may reach anything.

namespace dtrec::analysis {

/// Rank in the table above, or -1 for unknown module names.
int ModuleRank(const std::string& module);

/// Module owning a repo-relative file path ("src/core/ips.cc" → "core"),
/// or "" for exempt/unranked locations (tools/, tests/, bench/, ...).
std::string ModuleOfPath(const std::string& rel_path);

/// Module targeted by a quoted include as written ("core/ips.h" →
/// "core"), or "" if the first path segment is not a ranked module.
std::string ModuleOfInclude(const std::string& include_path);

/// Runs all three graph checks over the whole-tree include map
/// (repo-relative file path → its include sites). `allowed_edges` are the
/// baselined (from-module, to-module) pairs.
std::vector<Finding> AnalyzeLayering(
    const std::map<std::string, std::vector<IncludeSite>>& includes_by_file,
    const std::set<std::pair<std::string, std::string>>& allowed_edges);

}  // namespace dtrec::analysis

#endif  // DTREC_TOOLS_ANALYSIS_LAYERING_H_
