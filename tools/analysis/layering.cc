#include "analysis/layering.h"

#include <algorithm>
#include <functional>

namespace dtrec::analysis {
namespace {

const std::map<std::string, int>& RankTable() {
  static const std::map<std::string, int> kRanks = {
      {"util", 0},        {"tensor", 1},    {"autograd", 2},
      {"data", 2},        {"core", 3},      {"propensity", 3},
      {"optim", 3},       {"metrics", 3},   {"baselines", 4},
      {"models", 4},      {"synth", 4},     {"diagnostics", 4},
      {"experiments", 5}, {"serve", 5},     {"obs", 5},
  };
  return kRanks;
}

std::string FirstSegment(const std::string& path) {
  const size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Rotates a cycle (first == last) so its smallest node leads — the
/// canonical form used to report each cycle exactly once.
std::vector<std::string> CanonicalCycle(std::vector<std::string> cycle) {
  cycle.pop_back();  // drop the duplicated head
  const auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::rotate(cycle.begin(), min_it, cycle.end());
  cycle.push_back(cycle.front());
  return cycle;
}

std::string JoinCycle(const std::vector<std::string>& cycle) {
  std::string out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out += " -> ";
    out += cycle[i];
  }
  return out;
}

}  // namespace

int ModuleRank(const std::string& module) {
  const auto it = RankTable().find(module);
  return it != RankTable().end() ? it->second : -1;
}

std::string ModuleOfPath(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) != 0) return "";
  const std::string module = FirstSegment(rel_path.substr(4));
  return ModuleRank(module) >= 0 ? module : "";
}

std::string ModuleOfInclude(const std::string& include_path) {
  const std::string module = FirstSegment(include_path);
  return ModuleRank(module) >= 0 ? module : "";
}

std::vector<Finding> AnalyzeLayering(
    const std::map<std::string, std::vector<IncludeSite>>& includes_by_file,
    const std::set<std::pair<std::string, std::string>>& allowed_edges) {
  std::vector<Finding> findings;

  // Module edge → first include site realizing it (for anchoring cycle
  // reports somewhere a human can look).
  struct Site {
    std::string file;
    size_t line;
  };
  std::map<std::pair<std::string, std::string>, Site> module_edges;

  for (const auto& [file, sites] : includes_by_file) {
    const std::string from = ModuleOfPath(file);
    if (from.empty()) continue;  // tools/tests/bench/examples are exempt
    for (const IncludeSite& site : sites) {
      if (!site.quoted) continue;
      const std::string to = ModuleOfInclude(site.path);
      if (to.empty() || to == from) continue;
      const auto edge = std::make_pair(from, to);
      const bool baselined = allowed_edges.count(edge) != 0;
      if (!baselined) {
        module_edges.emplace(edge, Site{file, site.line});
        if (ModuleRank(to) > ModuleRank(from)) {
          findings.push_back(
              {file, site.line, "layering-upward",
               "module '" + from + "' (layer " +
                   std::to_string(ModuleRank(from)) + ") includes '" +
                   site.path + "' from higher layer '" + to + "' (layer " +
                   std::to_string(ModuleRank(to)) +
                   "); invert the dependency or record a justified edge in "
                   "the baseline"});
        }
      }
    }
  }

  // Module-level cycle detection (colored DFS) over non-baselined edges.
  {
    std::map<std::string, std::vector<std::string>> graph;
    for (const auto& [edge, site] : module_edges) {
      graph[edge.first].push_back(edge.second);
    }
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;
    std::function<void(const std::string&)> dfs = [&](const std::string& u) {
      color[u] = 1;
      stack.push_back(u);
      for (const std::string& v : graph[u]) {
        if (color[v] == 1) {
          std::vector<std::string> cycle(
              std::find(stack.begin(), stack.end(), v), stack.end());
          cycle.push_back(v);
          cycle = CanonicalCycle(cycle);
          const std::string text = JoinCycle(cycle);
          if (reported.insert(text).second) {
            const Site& at = module_edges.at({u, v});
            findings.push_back(
                {at.file, at.line, "layering-cycle",
                 "module dependency cycle: " + text +
                     "; break the cycle or record a justified edge in the "
                     "baseline"});
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
      stack.pop_back();
      color[u] = 2;
    };
    for (const auto& [node, _] : graph) {
      if (color[node] == 0) dfs(node);
    }
  }

  // File-level include cycles. Includes resolve against the analyzed set:
  // "obs/foo.h" from a src file is "src/obs/foo.h"; tools headers live
  // under "tools/".
  {
    std::map<std::string, std::vector<std::pair<std::string, size_t>>> graph;
    for (const auto& [file, sites] : includes_by_file) {
      for (const IncludeSite& site : sites) {
        if (!site.quoted) continue;
        for (const std::string& prefix : {std::string("src/"),
                                          std::string("tools/"),
                                          std::string()}) {
          const std::string resolved = prefix + site.path;
          if (includes_by_file.count(resolved) != 0) {
            graph[file].emplace_back(resolved, site.line);
            break;
          }
        }
      }
    }
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::set<std::string> reported;
    std::function<void(const std::string&)> dfs = [&](const std::string& u) {
      color[u] = 1;
      stack.push_back(u);
      for (const auto& [v, line] : graph[u]) {
        if (color[v] == 1) {
          std::vector<std::string> cycle(
              std::find(stack.begin(), stack.end(), v), stack.end());
          cycle.push_back(v);
          cycle = CanonicalCycle(cycle);
          const std::string text = JoinCycle(cycle);
          if (reported.insert(text).second) {
            findings.push_back({u, line, "include-cycle",
                                "include cycle: " + text});
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
      stack.pop_back();
      color[u] = 2;
    };
    for (const auto& [node, _] : graph) {
      if (color[node] == 0) dfs(node);
    }
  }

  return findings;
}

}  // namespace dtrec::analysis
