#include "analysis/taint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace dtrec::analysis {
namespace {

const std::set<std::string>& Sanitizers() {
  static const std::set<std::string> kSanitizers = {
      "ClipPropensity", "SafeInverse", "SoftClip"};
  return kSanitizers;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Index of the token matching the opener at `open` ('(' ↔ ')', '[' ↔ ']',
/// '{' ↔ '}'), or tokens.size() if unbalanced.
size_t MatchForward(const std::vector<Token>& tokens, size_t open) {
  const std::string& o = tokens[open].text;
  const char* close = o == "(" ? ")" : (o == "[" ? "]" : "}");
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == o) ++depth;
    if (tokens[i].text == close && --depth == 0) return i;
  }
  return tokens.size();
}

size_t MatchBackward(const std::vector<Token>& tokens, size_t close) {
  const std::string& c = tokens[close].text;
  const char* open = c == ")" ? "(" : (c == "]" ? "[" : "{");
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == c) ++depth;
    if (tokens[i].text == open && --depth == 0) return i;
  }
  return 0;
}

/// Per-function taint state: explicit per-identifier verdicts layered over
/// the lexicon default. `origin` remembers which source identifier first
/// tainted a variable, for diagnostics.
struct TaintState {
  std::map<std::string, bool> explicit_state;
  std::map<std::string, std::string> origin;

  bool IsTainted(const std::string& id) const {
    const auto it = explicit_state.find(id);
    if (it != explicit_state.end()) return it->second;
    return MatchesPropensityLexicon(id);
  }
  std::string OriginOf(const std::string& id) const {
    const auto it = origin.find(id);
    return it != origin.end() ? it->second : id;
  }
};

/// Scans tokens[b, e) for taint. Sanitizer calls inside the span are
/// skipped wholesale (their results are clean by contract). On a hit,
/// returns the offending identifier via `who`.
bool SpanCarriesTaint(const std::vector<Token>& tokens, size_t b, size_t e,
                      const TaintState& state, std::string* who) {
  for (size_t i = b; i < e && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent) continue;
    if (Sanitizers().count(t.text) != 0 && i + 1 < e &&
        IsPunct(tokens[i + 1], "(")) {
      const size_t close = MatchForward(tokens, i + 1);
      i = close < e ? close : e;
      continue;
    }
    if (state.IsTainted(t.text)) {
      if (who != nullptr) *who = t.text;
      return true;
    }
  }
  return false;
}

/// The primary-expression operand starting at `j` (after a `/` or as a
/// call argument): either a parenthesized expression (span = its inside)
/// or an id-expression chain `a::b.c->d(...)[...]`. Returns [begin, end);
/// empty span for literals.
std::pair<size_t, size_t> ParseOperand(const std::vector<Token>& tokens,
                                       size_t j) {
  const size_t n = tokens.size();
  while (j < n && tokens[j].kind == TokKind::kPunct &&
         (tokens[j].text == "-" || tokens[j].text == "+" ||
          tokens[j].text == "*" || tokens[j].text == "&" ||
          tokens[j].text == "!")) {
    ++j;
  }
  if (j >= n) return {j, j};
  if (IsPunct(tokens[j], "(")) {
    const size_t close = MatchForward(tokens, j);
    return {j + 1, close};
  }
  if (tokens[j].kind != TokKind::kIdent) return {j, j};
  const size_t begin = j;
  ++j;
  while (j < n) {
    if (tokens[j].kind == TokKind::kPunct &&
        (tokens[j].text == "::" || tokens[j].text == "." ||
         tokens[j].text == "->") &&
        j + 1 < n && tokens[j + 1].kind == TokKind::kIdent) {
      j += 2;
      continue;
    }
    if (IsPunct(tokens[j], "(") || IsPunct(tokens[j], "[")) {
      j = MatchForward(tokens, j) + 1;
      continue;
    }
    break;
  }
  return {begin, j};
}

/// True if the `{` at index `i` opens a function (or constructor/lambda-
/// free method) body: the token run before it, skipping cv/ref/specifier
/// noise and a trailing DTREC_REQUIRES(...) annotation, ends in a `)`
/// whose matching `(` is *not* an if/for/while/switch/catch header and
/// not a lambda's parameter list. Taint state resets at these points.
bool OpensFunctionBody(const std::vector<Token>& tokens, size_t i) {
  static const std::set<std::string> kSkippable = {
      "const", "noexcept", "override", "final", "mutable", "&", "&&"};
  size_t j = i;
  while (j > 0) {
    const Token& prev = tokens[j - 1];
    if (kSkippable.count(prev.text) != 0) {
      --j;
      continue;
    }
    break;
  }
  if (j == 0 || !IsPunct(tokens[j - 1], ")")) return false;
  size_t open = MatchBackward(tokens, j - 1);
  // A DTREC_REQUIRES(...) annotation sits between the parameter list and
  // the body; hop over it to the signature's own `)`.
  if (open > 0 && IsIdent(tokens[open - 1], "DTREC_REQUIRES")) {
    size_t k = open - 1;
    while (k > 0) {
      const Token& prev = tokens[k - 1];
      if (kSkippable.count(prev.text) != 0) {
        --k;
        continue;
      }
      break;
    }
    if (k == 0 || !IsPunct(tokens[k - 1], ")")) return false;
    open = MatchBackward(tokens, k - 1);
  }
  if (open == 0) return false;
  const Token& before = tokens[open - 1];
  static const std::set<std::string> kControl = {"if",     "for",   "while",
                                                 "switch", "catch", "return"};
  if (before.kind == TokKind::kIdent && kControl.count(before.text) != 0) {
    return false;
  }
  if (IsPunct(before, "]")) return false;  // lambda: keep enclosing state
  return before.kind == TokKind::kIdent || IsPunct(before, ">");
}

}  // namespace

bool MatchesPropensityLexicon(const std::string& identifier) {
  const std::string low = Lower(identifier);
  if (Sanitizers().count(identifier) != 0) return false;
  return low.find("propensit") != std::string::npos ||
         low.find("p_hat") != std::string::npos ||
         low.find("inv_p") != std::string::npos;
}

std::vector<Finding> AnalyzePropensityTaint(const std::string& rel_path,
                                            const std::vector<Token>& tokens) {
  std::vector<Finding> findings;
  TaintState state;
  const size_t n = tokens.size();

  auto flag = [&](const Token& at, const std::string& sink,
                  const std::string& who) {
    std::string message = "'" + who + "' carries an unclipped propensity " +
                          "into " + sink;
    const std::string origin = state.OriginOf(who);
    if (origin != who) message += " (tainted via '" + origin + "')";
    message += "; clip first (ClipPropensity) or use SafeInverse()";
    findings.push_back({rel_path, at.line, "propensity-taint", message});
  };

  // Statement-wise walk. Statements end at depth-0 `;`, `{` or `}`
  // (depth = parens/brackets, so for-headers stay whole).
  size_t stmt_begin = 0;
  int nest = 0;  // () + [] nesting inside the current statement
  for (size_t i = 0; i < n; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokKind::kPunct &&
        (t.text == "(" || t.text == "[")) {
      ++nest;
      continue;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == ")" || t.text == "]")) {
      if (nest > 0) --nest;
      continue;
    }
    const bool ends_statement =
        t.kind == TokKind::kPunct &&
        ((t.text == ";" && nest == 0) || t.text == "{" || t.text == "}");
    if (!ends_statement) continue;

    const size_t b = stmt_begin;
    const size_t e = i;  // exclusive of the terminator
    stmt_begin = i + 1;
    nest = 0;

    if (IsPunct(t, "{") && OpensFunctionBody(tokens, i)) {
      state = TaintState();
    }

    // --- sinks ------------------------------------------------------
    int depth = 0;
    for (size_t j = b; j < e; ++j) {
      const Token& tok = tokens[j];
      if (tok.kind == TokKind::kPunct) {
        if (tok.text == "(" || tok.text == "[") ++depth;
        if (tok.text == ")" || tok.text == "]") --depth;
      }
      if (tok.kind == TokKind::kPunct &&
          (tok.text == "/" || tok.text == "/=")) {
        const auto [ob, oe] = ParseOperand(tokens, j + 1);
        std::string who;
        if (SpanCarriesTaint(tokens, ob, std::min(oe, e), state, &who)) {
          flag(tok, tok.text == "/" ? "'/'" : "'/='", who);
        }
        continue;
      }
      if (tok.kind == TokKind::kIdent &&
          (tok.text == "log" || tok.text == "pow") && j + 1 < e &&
          IsPunct(tokens[j + 1], "(")) {
        // First argument span: up to the call's matching ')' or its first
        // top-level ','.
        const size_t close = MatchForward(tokens, j + 1);
        size_t arg_end = close;
        int d = 0;
        for (size_t k = j + 2; k < close; ++k) {
          if (tokens[k].kind != TokKind::kPunct) continue;
          if (tokens[k].text == "(" || tokens[k].text == "[") ++d;
          if (tokens[k].text == ")" || tokens[k].text == "]") --d;
          if (tokens[k].text == "," && d == 0) {
            arg_end = k;
            break;
          }
        }
        std::string who;
        if (SpanCarriesTaint(tokens, j + 2, std::min(arg_end, e), state,
                             &who)) {
          flag(tok, "std::" + tok.text + "()", who);
        }
      }
    }

    // --- transfer ---------------------------------------------------
    // First depth-0 assignment operator in the statement.
    depth = 0;
    for (size_t j = b; j < e; ++j) {
      const Token& tok = tokens[j];
      if (tok.kind != TokKind::kPunct) continue;
      if (tok.text == "(" || tok.text == "[") ++depth;
      if (tok.text == ")" || tok.text == "]") --depth;
      if (depth != 0) continue;
      const bool plain = tok.text == "=";
      const bool compound = tok.text == "+=" || tok.text == "-=" ||
                            tok.text == "*=" || tok.text == "/=";
      if (!plain && !compound) continue;
      if (j == b) break;
      // Assignment target: the identifier before the operator; through a
      // closing `]`, the subscripted container (element writes taint the
      // whole container, conservatively).
      size_t lhs = j - 1;
      if (IsPunct(tokens[lhs], "]")) {
        const size_t open = MatchBackward(tokens, lhs);
        if (open == 0) break;
        lhs = open - 1;
      }
      // Through a closing `)` too: Matrix-style element writes m(i, j).
      if (IsPunct(tokens[lhs], ")")) {
        const size_t open = MatchBackward(tokens, lhs);
        if (open == 0) break;
        lhs = open - 1;
      }
      if (tokens[lhs].kind != TokKind::kIdent) break;
      std::string who;
      const bool rhs_tainted =
          SpanCarriesTaint(tokens, j + 1, e, state, &who);
      const std::string& target = tokens[lhs].text;
      if (plain) {
        state.explicit_state[target] = rhs_tainted;
        if (rhs_tainted) {
          state.origin[target] = state.OriginOf(who);
        } else {
          state.origin.erase(target);
        }
      } else if (rhs_tainted && tok.text != "/=") {
        state.explicit_state[target] = true;
        state.origin[target] = state.OriginOf(who);
      }
      break;
    }
  }
  return findings;
}

}  // namespace dtrec::analysis
