#ifndef DTREC_TOOLS_ANALYSIS_ANALYSIS_H_
#define DTREC_TOOLS_ANALYSIS_ANALYSIS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

// dtrec_analyze — dataflow / graph static analysis for the dtrec tree,
// one level up from dtrec_lint's textual rules. Three analyses share the
// lexer in analysis/lexer.h:
//
//   propensity-taint   intra-function dataflow: values that look like
//                      propensities (lexicon identifiers, results of
//                      Predict*Propensity-style calls, loads from
//                      *_propensities containers) are tracked through
//                      assignments and aliases into the hazardous sinks
//                      `/`, `/=`, std::log and std::pow; only
//                      ClipPropensity / SafeInverse / SoftClip clear the
//                      taint. Subsumes and strengthens dtrec_lint's
//                      propensity-division rule (which only matches the
//                      divisor's head identifier).
//   layering-upward    cross-file include-graph check of the module DAG
//     layering-cycle   util → tensor → {autograd, data} → {core,
//     include-cycle    propensity, optim, metrics} → {baselines, models,
//                      synth, diagnostics} → {experiments, serve, obs}:
//                      upward edges and cycles (module- or file-level)
//                      are rejected unless recorded in the baseline.
//   lock-discipline    fields annotated DTREC_GUARDED_BY(mu) (see
//                      util/thread_annotations.h) must only be touched
//                      inside a scope that constructs a lock_guard /
//                      unique_lock / scoped_lock on a mutex with that
//                      name, or inside a function annotated
//                      DTREC_REQUIRES(mu). Mutex identity is by name,
//                      not object — the static complement to the TSan
//                      CI leg, not a replacement for it.
//   analyze-usage      an allow-comment naming an unknown rule.
//
// Suppressions mirror dtrec_lint's: an `allow(rule)` comment carrying
// the `dtrec-analyze:` tag covers its own line and the next. Because propensity-taint subsumes the
// lint rule, an existing `dtrec-lint: allow(propensity-division)` comment
// also silences propensity-taint on its lines — one audited escape hatch
// per site, not two.
//
// Reports: JSON (schema "dtrec-analyze-v1") and SARIF 2.1.0 for GitHub
// code scanning. The checked-in baseline (tools/analysis/
// analyze_baseline.txt) records deliberate layering edges and findings,
// each with a one-line justification.

namespace dtrec::analysis {

struct Finding {
  std::string file;     // repo-relative path, forward slashes
  size_t line = 0;      // 1-based
  std::string rule;     // one of the rule names above
  std::string message;  // human-readable detail
};

/// Names of every rule the analyses can emit.
const std::vector<std::string>& KnownRules();

/// One #include directive: (1-based line, path as written). `quoted` is
/// false for <angle> includes (which never participate in layering).
struct IncludeSite {
  size_t line = 0;
  std::string path;
  bool quoted = false;
};

/// Everything the per-file pass extracts: quoted/angle includes (for the
/// layering graph) and the file-local findings from the taint and
/// lock-discipline analyses, already filtered through allow-comments.
/// This is the unit the incremental cache stores per content hash.
struct FileAnalysis {
  std::vector<IncludeSite> includes;
  std::vector<Finding> findings;
};

/// Runs the file-local analyses on `content`. `paired_content` is the
/// sibling translation unit sharing the file's stem ("foo.h" for
/// "foo.cc" and vice versa), or empty — DTREC_GUARDED_BY annotations
/// declared in a header govern uses in its .cc.
FileAnalysis AnalyzeFile(const std::string& rel_path,
                         const std::string& content,
                         const std::string& paired_content);

// ---------------------------------------------------------------- baseline

/// Parsed baseline file. Line grammar (one entry per line):
///   edge <from-module> <to-module> -- <justification>
///   finding <rule> <file> -- <justification>
/// '#' starts a comment; blank lines are skipped.
struct Baseline {
  std::set<std::pair<std::string, std::string>> edges;  // module from → to
  std::set<std::pair<std::string, std::string>> findings;  // rule → file
  std::vector<std::string> errors;  // malformed lines (message per line)
};

Baseline ParseBaseline(const std::string& content);

/// Drops findings matched by the baseline (rule + file for `finding`
/// entries; layering edges are excluded earlier, in the graph pass).
/// Returns the survivors; `suppressed`, when non-null, receives the count
/// of dropped findings.
std::vector<Finding> ApplyBaseline(const Baseline& baseline,
                                   std::vector<Finding> findings,
                                   size_t* suppressed = nullptr);

// ---------------------------------------------------------------- reports

/// {"schema": "dtrec-analyze-v1", "count": N, "suppressed_baseline": M,
///  "findings": [{file,line,rule,message}...]} — stable field order.
std::string FindingsToJson(const std::vector<Finding>& findings,
                           size_t suppressed_baseline);

/// SARIF 2.1.0 document for GitHub code scanning: one run, driver
/// "dtrec_analyze", every known rule declared, one result per finding
/// with a physicalLocation region at the finding's line.
std::string FindingsToSarif(const std::vector<Finding>& findings);

/// Structural validator for the SARIF emitter's output (and the `analyze`
/// CTest gate): version 2.1.0, ≥1 run with tool.driver.name and declared
/// rules, every result carrying a known ruleId, a message.text, and a
/// physicalLocation with artifactLocation.uri + region.startLine ≥ 1.
/// Returns "" on success, else a one-line description of the first
/// problem.
std::string ValidateSarif(const std::string& content);

/// FNV-1a 64-bit over `content` — the incremental cache's content hash
/// (hex). Deliberately local so the analysis library stays free of dtrec
/// library dependencies.
uint64_t HashContent(const std::string& content);

}  // namespace dtrec::analysis

#endif  // DTREC_TOOLS_ANALYSIS_ANALYSIS_H_
