// Production-flavored round trip: diagnose the raw log for selection
// bias, train DT-DR, checkpoint the learned parameters, reload them into
// a fresh parameter set (as a serving process would), and verify the
// restored model serves identical predictions.
//
//   $ ./examples/serving_demo [dir]

#include <cstdio>
#include <string>

#include "core/checkpoint.h"
#include "core/dt_dr.h"
#include "data/io.h"
#include "diagnostics/mnar_diagnostics.h"
#include "experiments/evaluator.h"
#include "synth/coat_like.h"
#include "util/random.h"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  // --- offline: ingest + diagnose ------------------------------------
  const dtrec::SimulatedData world = dtrec::MakeCoatLike(2024);
  const std::string prefix = dir + "/serving_demo_dataset";
  if (dtrec::Status st = dtrec::SaveDataset(world.dataset, prefix);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = dtrec::LoadDataset(prefix);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto diagnosis = dtrec::DiagnoseSelectionBias(dataset.value());
  if (diagnosis.ok()) {
    std::printf("diagnosis: %s\n", diagnosis.value().Summary().c_str());
  }

  // --- offline: train + checkpoint -----------------------------------
  dtrec::TrainConfig config;
  config.epochs = 15;
  config.embedding_dim = 16;
  config.beta = 1e-2;
  config.gamma = 1e-2;
  dtrec::DtDrTrainer trainer(config);
  if (dtrec::Status st = trainer.Fit(dataset.value()); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const dtrec::RankingMetrics metrics =
      dtrec::EvaluateRanking(trainer, dataset.value(), 5);
  std::printf("trained DT-DR: AUC=%.3f NDCG@5=%.3f\n", metrics.auc,
              metrics.ndcg_at_k);

  const std::string ckpt = dir + "/serving_demo_dtdr.ckpt";
  if (dtrec::Status st =
          dtrec::SaveDisentangledEmbeddings(trainer.embeddings(), ckpt);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", ckpt.c_str());

  // --- serving: restore into a fresh parameter set -------------------
  dtrec::Rng fresh_rng(999);
  dtrec::DisentangledEmbeddings serving =
      dtrec::DisentangledEmbeddings::Create(
          dataset.value().num_users(), dataset.value().num_items(),
          config.embedding_dim, (3 * config.embedding_dim) / 4, 0.1, 0.0,
          &fresh_rng, config.use_bias);
  if (dtrec::Status st = dtrec::LoadDisentangledEmbeddings(ckpt, &serving);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  double max_diff = 0.0;
  for (size_t u = 0; u < 50; ++u) {
    for (size_t i = 0; i < 50; ++i) {
      const double diff =
          serving.RatingLogit(u, i) - trainer.embeddings().RatingLogit(u, i);
      max_diff = std::max(max_diff, diff < 0 ? -diff : diff);
    }
  }
  std::printf("restored model max logit deviation: %.2e %s\n", max_diff,
              max_diff == 0.0 ? "(bit-exact)" : "");
  return max_diff == 0.0 ? 0 : 1;
}
