// Production-flavored round trip through the real serving path: diagnose
// the raw log for selection bias, train DT-DR, checkpoint the learned
// parameters, hot-load the checkpoint into a ModelRegistry (as a serving
// process would), and serve top-K slates through a RecommendServer —
// verifying the served scores are bit-exact against the trainer's rating
// head, and that the degraded popularity fallback engages on an expired
// deadline.
//
//   $ ./examples/serving_demo [dir]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/dt_dr.h"
#include "data/io.h"
#include "diagnostics/mnar_diagnostics.h"
#include "experiments/evaluator.h"
#include "serve/model_registry.h"
#include "serve/recommend_server.h"
#include "synth/coat_like.h"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  // --- offline: ingest + diagnose ------------------------------------
  const dtrec::SimulatedData world = dtrec::MakeCoatLike(2024);
  const std::string prefix = dir + "/serving_demo_dataset";
  if (dtrec::Status st = dtrec::SaveDataset(world.dataset, prefix);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = dtrec::LoadDataset(prefix);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto diagnosis = dtrec::DiagnoseSelectionBias(dataset.value());
  if (diagnosis.ok()) {
    std::printf("diagnosis: %s\n", diagnosis.value().Summary().c_str());
  }

  // --- offline: train + checkpoint -----------------------------------
  dtrec::TrainConfig config;
  config.epochs = 15;
  config.embedding_dim = 16;
  config.beta = 1e-2;
  config.gamma = 1e-2;
  dtrec::DtDrTrainer trainer(config);
  if (dtrec::Status st = trainer.Fit(dataset.value()); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const dtrec::RankingMetrics metrics =
      dtrec::EvaluateRanking(trainer, dataset.value(), 5);
  std::printf("trained DT-DR: AUC=%.3f NDCG@5=%.3f\n", metrics.auc,
              metrics.ndcg_at_k);

  const std::string ckpt = dir + "/serving_demo_dtdr.ckpt";
  if (dtrec::Status st =
          dtrec::SaveDisentangledEmbeddings(trainer.embeddings(), ckpt);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", ckpt.c_str());

  // --- serving: hot-load the checkpoint into the registry ------------
  dtrec::serve::ModelRegistry registry;
  dtrec::serve::DisentangledShape shape;
  shape.num_users = dataset.value().num_users();
  shape.num_items = dataset.value().num_items();
  shape.total_dim = config.embedding_dim;
  shape.primary_dim = (3 * config.embedding_dim) / 4;
  shape.use_bias = config.use_bias;
  const std::vector<size_t> counts = dataset.value().ItemCounts();
  if (dtrec::Status st = registry.PublishDisentangledCheckpoint(
          ckpt, shape, std::vector<double>(counts.begin(), counts.end()));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  dtrec::serve::ServerConfig server_config;
  server_config.num_threads = 2;
  server_config.default_k = 5;
  server_config.default_deadline_ms = 1000.0;
  dtrec::serve::RecommendServer server(&registry, server_config);

  // --- serve slates; verify against the trainer's rating head --------
  double max_diff = 0.0;
  for (size_t user = 0; user < 50; ++user) {
    const dtrec::serve::Recommendation rec =
        server.Submit({.user = user}).get();
    if (rec.degraded() || rec.items.size() != 5) {
      std::fprintf(stderr, "unexpected response for user %zu\n", user);
      return 1;
    }
    for (const dtrec::serve::ScoredItem& item : rec.items) {
      const double diff =
          item.score - trainer.embeddings().RatingLogit(user, item.item);
      max_diff = std::max(max_diff, diff < 0 ? -diff : diff);
    }
  }
  // The serving kernel blocks and unrolls the dot product, so it may
  // associate additions differently from the trainer's RatingLogit —
  // agreement to ~1e-12 is the round-trip contract, not bit-exactness.
  const bool scores_match = max_diff < 1e-12;
  std::printf("served 50 slates; max logit deviation vs trainer: %.2e %s\n",
              max_diff, scores_match ? "(round-trip ok)" : "(MISMATCH)");

  // --- degraded fallback: an already-expired deadline ----------------
  const dtrec::serve::Recommendation degraded =
      server.Recommend({.user = 0, .k = 5, .deadline_ms = 0.0});
  std::printf("0ms-deadline request degraded=%d (popularity slate: %u...)\n",
              degraded.degraded() ? 1 : 0,
              degraded.items.empty() ? 0u : degraded.items[0].item);

  const dtrec::serve::ServerStats stats = server.Snapshot();
  std::printf("server stats: %s\n", stats.Summary().c_str());
  return (scores_match && degraded.degraded()) ? 0 : 1;
}
