// Oracle-propensity study: why the MAR propensity is not enough.
//
// Builds a fully-known MNAR world, then trains THREE IPS recommenders
// that differ only in the propensity used for reweighting:
//   1. the learned MAR propensity σ(a_u + b_i + c)  (standard practice),
//   2. the oracle MAR propensity P(o=1 | x)          (Lemma 2a: biased),
//   3. the oracle MNAR propensity P(o=1 | x, r)      (Lemma 2b: unbiased).
// The gap between 2 and 3 is the paper's headline phenomenon: knowing the
// feature-conditional observation rate perfectly still leaves bias when
// the rating itself drives observation.
//
//   $ ./examples/propensity_oracle_study

#include <cstdio>

#include "baselines/ips.h"
#include "experiments/evaluator.h"
#include "synth/mnar_generator.h"

int main() {
  dtrec::MnarGeneratorConfig world_config;
  world_config.num_users = 200;
  world_config.num_items = 240;
  world_config.base_logit = -2.0;
  world_config.rating_coef = 1.0;  // strong r -> o channel (very MNAR)
  world_config.test_per_user = 14;
  world_config.seed = 5;
  const dtrec::SimulatedData world =
      dtrec::MnarGenerator(world_config).Generate();
  std::printf("world: %s\n\n", world.dataset.DebugString().c_str());

  dtrec::TrainConfig config;
  config.epochs = 20;
  config.batch_size = 1024;
  config.embedding_dim = 8;
  config.seed = 11;

  struct Variant {
    const char* label;
    bool use_oracle;
    bool use_rating;  // oracle MNAR vs oracle MAR
  };
  const Variant variants[] = {
      {"IPS + learned MAR propensity", false, false},
      {"IPS + ORACLE MAR propensity", true, false},
      {"IPS + ORACLE MNAR propensity", true, true},
  };

  for (const Variant& variant : variants) {
    dtrec::IpsTrainer trainer(config);
    if (variant.use_oracle) {
      const dtrec::Matrix& mar = world.oracle.mar_propensity;
      const dtrec::Matrix& mnar = world.oracle.mnar_propensity;
      const bool use_rating = variant.use_rating;
      trainer.set_propensity_fn(
          [&mar, &mnar, use_rating](size_t u, size_t i, double) {
            return use_rating ? mnar(u, i) : mar(u, i);
          });
    }
    const dtrec::Status st = trainer.Fit(world.dataset);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const dtrec::RankingMetrics metrics =
        dtrec::EvaluateRanking(trainer, world.dataset, 5);
    std::printf("%-32s AUC=%.3f  NDCG@5=%.3f\n", variant.label, metrics.auc,
                metrics.ndcg_at_k);
  }

  std::printf(
      "\nThe oracle MNAR propensity is what DT-IPS/DT-DR *learn* without\n"
      "oracle access, by disentangling an auxiliary embedding that makes\n"
      "the MNAR propensity identifiable (paper Section IV).\n");
  return 0;
}
