// Walk-through of the paper's semi-synthetic ML-100K pipeline (Section V):
// conversion probabilities η from standardized MF scores (Eq. 11), the
// MNAR observation channel p = (2^η − 1)^ρ, Bernoulli realization, and a
// post-click-conversion-style evaluation against the true η.
//
//   $ ./examples/semi_synthetic_pipeline [rho]

#include <cstdio>
#include <cstdlib>

#include "baselines/registry.h"
#include "experiments/config.h"
#include "experiments/evaluator.h"
#include "synth/movielens_like.h"

int main(int argc, char** argv) {
  const double rho = argc > 1 ? std::strtod(argv[1], nullptr) : 1.0;

  dtrec::SemiSyntheticConfig world_config;
  world_config.rho = rho;
  world_config.epsilon = 0.3;
  world_config.seed = 7;
  dtrec::MovieLensLikeGenerator generator(world_config);
  const dtrec::Status valid = generator.ValidateConfig();
  if (!valid.ok()) {
    std::fprintf(stderr, "bad config: %s\n", valid.ToString().c_str());
    return 1;
  }

  std::printf("Step 1-3: generating %zux%zu world with rho=%.2f...\n",
              world_config.num_users, world_config.num_items, rho);
  const dtrec::SemiSyntheticData world = generator.Generate();
  std::printf("  eta range [%.3f, %.3f], observed rate %.3f, mean "
              "conversion %.3f\n",
              world.eta.Min(), world.eta.Max(), world.observation.Mean(),
              world.conversion.Mean());
  std::printf("  corr(o, r) is strong by construction: rho couples the\n"
              "  observation probability to the conversion probability.\n\n");

  dtrec::TrainConfig config;
  config.epochs = 10;
  config.batch_size = 2048;
  config.max_steps_per_epoch = 120;
  config.embedding_dim = 8;

  std::printf("%-10s %8s %8s %8s\n", "method", "MSE", "MAE", "N@50");
  for (const char* method : {"MF", "IPS", "DR", "DT-IPS", "DT-DR"}) {
    auto trainer = std::move(
        dtrec::MakeTrainer(method, dtrec::TuneForMethod(method, config))
            .value());
    const dtrec::Status st = trainer->Fit(world.dataset);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", method, st.ToString().c_str());
      return 1;
    }
    const dtrec::SemiSyntheticMetrics metrics =
        dtrec::EvaluateSemiSynthetic(*trainer, world);
    std::printf("%-10s %8.4f %8.4f %8.4f\n", method, metrics.mse,
                metrics.mae, metrics.ndcg_at_50);
  }

  std::printf("\nTry rho=0.5 vs rho=1.5: the DT advantage grows with rho\n"
              "because the rating exerts a stronger pull on observation\n"
              "(paper Table III).\n");
  return 0;
}
