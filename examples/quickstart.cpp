// Quickstart: train the paper's proposed DT-DR debiased recommender on a
// Coat-shaped MNAR dataset and compare it against naive MF on the
// unbiased test slice.
//
//   $ ./examples/quickstart
//
// Walks through the full public API surface: dataset simulation, trainer
// construction via the registry, fitting, prediction, and evaluation.

#include <cstdio>

#include "baselines/registry.h"
#include "experiments/config.h"
#include "experiments/evaluator.h"
#include "synth/coat_like.h"

int main() {
  // 1. Simulate a Coat-shaped dataset: 290 users × 300 items, ~24 MNAR
  //    training ratings per user (users pick what they rate — the rating
  //    value itself drives observation), 16 MCAR test ratings per user.
  const dtrec::SimulatedData world = dtrec::MakeCoatLike(/*seed=*/42);
  std::printf("dataset: %s  (density %.1f%%)\n",
              world.dataset.DebugString().c_str(),
              100.0 * world.dataset.TrainDensity());

  // 2. Configure training. TrainConfig carries the shared knobs; DT's
  //    multi-task weights (alpha, beta, gamma) get method defaults via
  //    TuneForMethod.
  dtrec::TrainConfig config;
  config.epochs = 20;
  config.batch_size = 1024;
  config.embedding_dim = 8;
  config.seed = 7;

  for (const char* method : {"MF", "DT-DR"}) {
    auto trainer_or = dtrec::MakeTrainer(
        method, dtrec::TuneForMethod(method, config));
    if (!trainer_or.ok()) {
      std::fprintf(stderr, "%s\n", trainer_or.status().ToString().c_str());
      return 1;
    }
    auto trainer = std::move(trainer_or).value();

    // 3. Fit on the biased training split only.
    const dtrec::Status st = trainer->Fit(world.dataset);
    if (!st.ok()) {
      std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // 4. Evaluate on the unbiased slice.
    const dtrec::RankingMetrics metrics =
        dtrec::EvaluateRanking(*trainer, world.dataset, /*k=*/5);
    std::printf("%-6s  AUC=%.3f  NDCG@5=%.3f  Recall@5=%.3f  (%zu params)\n",
                method, metrics.auc, metrics.ndcg_at_k, metrics.recall_at_k,
                trainer->NumParameters());

    // 5. Point predictions are plain probabilities.
    std::printf("        P(user 3 likes item 17) = %.3f\n",
                trainer->Predict(3, 17));
  }

  std::printf(
      "\nDT-DR should beat naive MF on every ranking metric: the naive\n"
      "fit inherits the selection bias, the disentangled MNAR propensity\n"
      "corrects it.\n");
  return 0;
}
