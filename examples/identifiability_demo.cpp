// Identifiability demo: the paper's Example 1 and Theorem 1, hands-on.
//
//   $ ./examples/identifiability_demo
//
// Part 1 prints the two Example-1 models side by side: different MNAR
// propensities and outcome models, yet identical observed-data densities.
// Part 2 fits the separable-logistic world of Theorem 1 from observed
// data, with and without the auxiliary variable z.

#include <cstdio>

#include "core/identifiability.h"
#include "util/random.h"

int main() {
  using namespace dtrec;

  std::printf("== Part 1: Example 1 — unidentifiability ==\n");
  std::printf("%6s %14s %14s %16s %16s\n", "r", "P1(o=1|r)", "P2(o=1|r)",
              "P1(o=1,r|x)", "P2(o=1,r|x)");
  for (double r = 0.0; r <= 5.0; r += 1.0) {
    std::printf("%6.1f %14.6f %14.6f %16.8f %16.8f\n", r,
                Example1Propensity(Example1ModelA(), r),
                Example1Propensity(Example1ModelB(), r),
                Example1ObservedDensity(Example1ModelA(), r),
                Example1ObservedDensity(Example1ModelB(), r));
  }
  std::printf(
      "-> the observed columns coincide although the models differ:\n"
      "   maximizing observed likelihood cannot tell (a) from (b).\n\n");

  std::printf("== Part 2: Theorem 1 — identification via z ==\n");
  SeparableLogisticParams truth;
  truth.alpha0 = -1.0;
  truth.alpha1 = 1.5;
  truth.beta1 = 1.2;
  truth.eta = 0.4;
  Rng rng(17);
  const auto samples = SimulateSeparableLogistic(truth, 30000, &rng);
  std::printf("truth: alpha0=%.2f alpha1=%.2f beta1=%.2f eta=%.2f\n",
              truth.alpha0, truth.alpha1, truth.beta1, truth.eta);

  SeparableLogisticParams init_a{-1.0, 0.5, 2.0, 0.3};
  SeparableLogisticParams init_b{0.0, 0.5, -2.0, 0.7};
  for (bool use_aux : {true, false}) {
    std::printf("\n%s the auxiliary variable z:\n",
                use_aux ? "WITH" : "WITHOUT");
    char which = 'A';
    for (const auto& init : {init_a, init_b}) {
      const auto fit =
          FitSeparableLogistic(samples, use_aux, init, 20000, 0.8);
      if (!fit.ok()) {
        std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
        return 1;
      }
      const auto& p = fit.value();
      std::printf(
          "  init %c -> alpha0=%+.3f alpha1=%+.3f beta1=%+.3f eta=%.3f "
          "(NLL %.5f)\n",
          which, p.alpha0, p.alpha1, p.beta1, p.eta,
          ObservedDataNll(p, samples, use_aux));
      ++which;
    }
  }
  std::printf(
      "\n-> with z both starts recover the truth; without z they reach\n"
      "   (near-)equal likelihood at incompatible parameters. This is\n"
      "   exactly why DT-IPS/DT-DR disentangle a z before learning the\n"
      "   MNAR propensity.\n");
  return 0;
}
