#ifndef DTREC_CORE_IDENTIFIABILITY_H_
#define DTREC_CORE_IDENTIFIABILITY_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace dtrec {

class Rng;

/// ---- Example 1 (Section IV-A) --------------------------------------
/// Two distinct (propensity, outcome) model pairs that generate the SAME
/// observed-data density — the constructive proof that the MNAR propensity
/// is unidentifiable without an auxiliary variable:
///   model (a): P(o=1|r) = σ(−4 + 2r),  r|x ~ N(1, 1)
///   model (b): P(o=1|r) = σ( 4 − 2r),  r|x ~ N(3, 1)
struct Example1Model {
  double selection_intercept;  ///< −4 or 4
  double selection_slope;      ///<  2 or −2
  double outcome_mean;         ///<  1 or 3
};

Example1Model Example1ModelA();
Example1Model Example1ModelB();

/// The MNAR propensity P(o=1 | r) of the model.
double Example1Propensity(const Example1Model& model, double r);

/// The outcome density P(r | x) = φ(r − mean).
double Example1OutcomeDensity(const Example1Model& model, double r);

/// Observed-data density P(o=1, r | x) = propensity × outcome density.
/// Example 1's punchline: equal for models (a) and (b) at every r.
double Example1ObservedDensity(const Example1Model& model, double r);

/// ---- Theorem 1: separable-logistic identification -------------------
/// World model with binary rating and scalar auxiliary variable z:
///   z ~ N(0, 1),  r ~ Bern(η),  P(o=1 | z, r) = σ(α₀ + α₁·z + β₁·r)
/// (no z·r interaction — the separable mechanism of Eq. 8).
struct SeparableLogisticParams {
  double alpha0 = 0.0;  ///< intercept
  double alpha1 = 0.0;  ///< auxiliary-variable coefficient
  double beta1 = 0.0;   ///< rating coefficient (the MNAR channel)
  double eta = 0.5;     ///< P(r = 1)
};

/// One simulated unit: the auxiliary variable is always observed; the
/// rating only when o = 1.
struct MnarSample {
  double z = 0.0;
  int rating = 0;  ///< meaningful only when observed
  bool observed = false;
};

/// Draws n samples from the separable-logistic world.
std::vector<MnarSample> SimulateSeparableLogistic(
    const SeparableLogisticParams& params, size_t n, Rng* rng);

/// Average negative observed-data log-likelihood of `params` on `samples`:
///   o=1: −log[ σ(α₀+α₁z+β₁r) · η^r (1−η)^{1−r} ]
///   o=0: −log[ Σ_{r∈{0,1}} (1−σ(α₀+α₁z+β₁r)) · P(r) ]
/// With `use_aux=false` the α₁·z term is dropped from the model — the
/// unidentifiable setting of Example 1.
double ObservedDataNll(const SeparableLogisticParams& params,
                       const std::vector<MnarSample>& samples, bool use_aux);

/// Fits (α₀, α₁, β₁, η) by gradient descent on the observed-data NLL.
/// With use_aux=true the fit is identifiable (Theorem 1) and recovers the
/// generating parameters; with use_aux=false distinct parameter vectors
/// achieve the same NLL and the fit depends on the starting point.
Result<SeparableLogisticParams> FitSeparableLogistic(
    const std::vector<MnarSample>& samples, bool use_aux,
    const SeparableLogisticParams& init, size_t iterations = 4000,
    double learning_rate = 0.05);

}  // namespace dtrec

#endif  // DTREC_CORE_IDENTIFIABILITY_H_
