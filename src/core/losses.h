#ifndef DTREC_CORE_LOSSES_H_
#define DTREC_CORE_LOSSES_H_

#include "autograd/ops.h"
#include "core/disentangled_embeddings.h"
#include "tensor/matrix.h"

namespace dtrec {

/// Disentangling loss of Section IV-B:
///   ‖P′ᵀP″‖_F² + ‖Q′ᵀQ″‖_F²
/// The outer product is used (rather than inner product / cosine) because
/// the two blocks have different widths when A ≠ K/2; driving every
/// cross-element product to zero enforces independence of the primary and
/// auxiliary representations (Assumption 1(i)).
ag::Var DisentangleLoss(const DisentangledGraph& graph);

/// Regularization loss of Section IV-B:
///   ‖P′Q′ᵀ‖_F² + ‖P″Q″ᵀ‖_F²
/// computed with the Gram identity ‖ABᵀ‖_F² = tr((AᵀA)(BᵀB)) so the
/// |U|×|I| product is never materialized (see GramFrobeniusSq).
ag::Var RegularizationLoss(const DisentangledGraph& graph);

/// Value-only naive evaluation of the regularization loss that DOES
/// materialize the |U|×|I| products — the paper's costly formulation,
/// kept for the efficiency ablation benchmark (Table VI discussion).
double RegularizationLossNaive(const DisentangledEmbeddings& emb);

/// Value-only Gram-trick evaluation (must equal the naive one).
double RegularizationLossGram(const DisentangledEmbeddings& emb);

}  // namespace dtrec

#endif  // DTREC_CORE_LOSSES_H_
