#ifndef DTREC_CORE_DT_DR_H_
#define DTREC_CORE_DT_DR_H_

#include <string>

#include "core/dt_ips.h"
#include "models/mf_model.h"

namespace dtrec {

/// DT-DR — the paper's proposed method, doubly-robust flavor.
///
/// Replaces DT-IPS's L_IPS by the DR pair of Section IV-B:
///   L_DR^err on (P′,Q′; θ_r):  mean[ ê + o·(e−ê)/p̂ ]
///   L_DR^imp on (U,V; θ_e):    mean[ o·(e−ê)²/p̂ ]
/// with the same propensity/disentangling/regularization terms as DT-IPS
/// and a *separate* MF imputation model (U, V) — the 2× embedding cost
/// the paper reports in Table II.
class DtDrTrainer : public DtIpsTrainer {
 public:
  explicit DtDrTrainer(const TrainConfig& config) : DtIpsTrainer(config) {}

  std::string name() const override { return "DT-DR"; }

  size_t NumParameters() const override;
  ParamBudget Budget() const override;

 protected:
  Status Setup(const RatingDataset& dataset) override;
  void TrainStep(const Batch& batch) override;
  std::vector<CheckpointGroup> CheckpointGroups() override;
  void OnLearningRate(double lr) override {
    DtIpsTrainer::OnLearningRate(lr);
    if (imp_opt_ != nullptr) imp_opt_->set_learning_rate(lr);
  }

 protected:
  /// Weight of the squared imputation residual for a cell with observation
  /// indicator `o` and clipped propensity `p`. DT-DR default: o/p̂ (the
  /// paper's L_DR^imp). DT-MRDR overrides with the variance-reduced form.
  virtual double ImputationWeight(double o, double p) const { return o / p; }

 private:
  void ImputationStep(const Batch& batch, const Matrix& clipped_p);

  MfModel imp_;
  std::unique_ptr<Optimizer> imp_opt_;
};

/// Extension (DESIGN.md §5): DT with MRDR's variance-targeting imputation
/// weight o·(1−p̂)/p̂² — the paper's disentangled MNAR propensity combined
/// with Guo et al.'s variance reduction. Not part of the paper's tables;
/// exposed to show the framework composes.
class DtMrdrTrainer : public DtDrTrainer {
 public:
  explicit DtMrdrTrainer(const TrainConfig& config) : DtDrTrainer(config) {}

  std::string name() const override { return "DT-MRDR"; }

 protected:
  double ImputationWeight(double o, double p) const override {
    return o * (1.0 - p) / (p * p);
  }
};

}  // namespace dtrec

#endif  // DTREC_CORE_DT_DR_H_
