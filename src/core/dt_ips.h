#ifndef DTREC_CORE_DT_IPS_H_
#define DTREC_CORE_DT_IPS_H_

#include <string>
#include <vector>

#include "baselines/trainer_base.h"
#include "core/disentangled_embeddings.h"
#include "models/mlp.h"

namespace dtrec {

/// DT-IPS — the paper's proposed method (Section IV-B), IPS flavor.
///
/// Minimizes, jointly over the disentangled embeddings and the propensity
/// head,
///   L = L_IPS(P′,Q′; θ_r)                       (rating, primary block)
///     + α·L_O(P,Q; θ_o)                         (propensity, full space)
///     + β·(‖P′ᵀP″‖_F² + ‖Q′ᵀQ″‖_F²)             (disentangling)
///     + γ·(‖P′Q′ᵀ‖_F² + ‖P″Q″ᵀ‖_F²)             (regularization)
/// where L_IPS reweights observed squared errors by the *learned MNAR
/// propensity* p̂ = σ(θ_o over [x, z]) (stop-gradient in the weights).
/// α/β/γ/A map to TrainConfig::{alpha, beta, gamma, disentangle_dim}.
///
/// Unlike every IPS/DR baseline, the propensity here conditions on the
/// auxiliary block z, which Lemma 3 / Theorem 1 show makes the MNAR
/// propensity identifiable once z ⟂ r | x is enforced by the
/// disentangling term.
class DtIpsTrainer : public MfJointTrainerBase {
 public:
  explicit DtIpsTrainer(const TrainConfig& config)
      : MfJointTrainerBase(config) {}

  std::string name() const override { return "DT-IPS"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;
    inv.disentangle_loss = true;
    return inv;
  }

  double Predict(size_t user, size_t item) const override;
  size_t NumParameters() const override;
  ParamBudget Budget() const override;

  /// Learned MNAR propensity p̂(u,i) (diagnostics and oracle comparisons).
  double PropensityEstimate(size_t user, size_t item) const;

  /// Disentangling-loss value recorded at the end of each epoch
  /// (regenerates Figure 4(c)/(d)).
  const std::vector<double>& disentangle_history() const {
    return disentangle_history_;
  }

  /// Scale-invariant orthogonality per epoch (see
  /// DisentangledEmbeddings::NormalizedDisentangleValue).
  const std::vector<double>& normalized_disentangle_history() const {
    return normalized_history_;
  }

  const DisentangledEmbeddings& embeddings() const { return emb_; }

 protected:
  Status Setup(const RatingDataset& dataset) override;
  void TrainStep(const Batch& batch) override;
  void EpochEnd(size_t epoch) override;
  std::vector<CheckpointGroup> CheckpointGroups() override;

  /// Builds graph + the three shared loss terms, returning the total loss
  /// to which the subclass adds its estimator-specific term.
  ag::Var SharedLossTerms(ag::Tape* tape, const Batch& batch,
                          DisentangledGraph* graph);

  size_t primary_dim() const {
    // Default split A = 3K/4: the auxiliary block only needs enough width
    // to absorb the observation-specific signal, while the rating head
    // keeps most of the capacity (A is the paper's tuned hyper-parameter).
    return config_.disentangle_dim > 0 ? config_.disentangle_dim
                                       : (3 * config_.embedding_dim) / 4;
  }

  /// Builds the per-batch graph, swapping in the MLP propensity head when
  /// configured (the per-dimension GLM head is the ablation fallback).
  DisentangledGraph BuildGraph(ag::Tape* tape, const Batch& batch,
                               std::vector<ag::Var>* extra_leaves,
                               std::vector<Matrix*>* extra_params);

  DisentangledEmbeddings emb_;
  MlpHead prop_tower_;  // used iff config_.dt_mlp_propensity
  std::vector<double> disentangle_history_;
  std::vector<double> normalized_history_;
};

}  // namespace dtrec

#endif  // DTREC_CORE_DT_IPS_H_
