#ifndef DTREC_CORE_CHECKPOINT_H_
#define DTREC_CORE_CHECKPOINT_H_

#include <string>

#include "core/disentangled_embeddings.h"
#include "models/mf_model.h"
#include "util/status.h"

namespace dtrec {

/// Checkpointing for trained models: a single binary file holding the
/// parameter matrices in a fixed order (tensor/serialization format per
/// matrix). Lets a downstream service train once and serve predictions
/// without the training stack.

/// Saves / restores all parameter matrices of a DisentangledEmbeddings.
/// Load requires `emb` to be pre-constructed with the same shapes (use
/// DisentangledEmbeddings::Create with the original config); shapes are
/// verified and mismatches rejected.
Status SaveDisentangledEmbeddings(const DisentangledEmbeddings& emb,
                                  const std::string& path);
Status LoadDisentangledEmbeddings(const std::string& path,
                                  DisentangledEmbeddings* emb);

/// Saves / restores an MfModel's parameters (same shape contract).
Status SaveMfModel(const MfModel& model, const std::string& path);
Status LoadMfModel(const std::string& path, MfModel* model);

}  // namespace dtrec

#endif  // DTREC_CORE_CHECKPOINT_H_
