#include "core/disentangled_embeddings.h"

#include "tensor/ops.h"
#include "util/random.h"

namespace dtrec {

DisentangledEmbeddings DisentangledEmbeddings::Create(
    size_t num_users, size_t num_items, size_t total_dim, size_t primary_dim,
    double init_scale, double bias_init, Rng* rng, bool use_rating_bias) {
  DTREC_CHECK(rng != nullptr);
  DTREC_CHECK_GT(primary_dim, 0u);
  DTREC_CHECK_LT(primary_dim, total_dim);
  const size_t aux_dim = total_dim - primary_dim;
  DisentangledEmbeddings emb;
  emb.p_primary =
      Matrix::RandomNormal(num_users, primary_dim, init_scale, rng);
  emb.p_auxiliary =
      Matrix::RandomNormal(num_users, aux_dim, init_scale, rng);
  emb.q_primary =
      Matrix::RandomNormal(num_items, primary_dim, init_scale, rng);
  emb.q_auxiliary =
      Matrix::RandomNormal(num_items, aux_dim, init_scale, rng);
  emb.prop_weights = Matrix::Ones(1, total_dim);
  emb.prop_bias = Matrix(1, 1, bias_init);
  if (use_rating_bias) {
    emb.user_bias = Matrix(num_users, 1);
    emb.item_bias = Matrix(num_items, 1);
  }
  return emb;
}

double DisentangledEmbeddings::RatingLogit(size_t user, size_t item) const {
  double logit = RowDot(p_primary, user, q_primary, item);
  if (has_rating_bias()) {
    logit += user_bias(user, 0) + item_bias(item, 0);
  }
  return logit;
}

double DisentangledEmbeddings::PropensityLogit(size_t user,
                                               size_t item) const {
  const size_t a = primary_dim();
  double logit = prop_bias(0, 0);
  const double* pu = p_primary.row(user);
  const double* qi = q_primary.row(item);
  for (size_t k = 0; k < a; ++k) logit += prop_weights(0, k) * pu[k] * qi[k];
  const double* pu2 = p_auxiliary.row(user);
  const double* qi2 = q_auxiliary.row(item);
  for (size_t k = 0; k < auxiliary_dim(); ++k) {
    logit += prop_weights(0, a + k) * pu2[k] * qi2[k];
  }
  return logit;
}

std::vector<Matrix*> DisentangledEmbeddings::Params() {
  std::vector<Matrix*> params{&p_primary, &p_auxiliary, &q_primary,
                              &q_auxiliary, &prop_weights, &prop_bias};
  if (has_rating_bias()) {
    params.push_back(&user_bias);
    params.push_back(&item_bias);
  }
  return params;
}

std::vector<const Matrix*> DisentangledEmbeddings::Params() const {
  std::vector<const Matrix*> params{&p_primary, &p_auxiliary, &q_primary,
                                    &q_auxiliary, &prop_weights,
                                    &prop_bias};
  if (has_rating_bias()) {
    params.push_back(&user_bias);
    params.push_back(&item_bias);
  }
  return params;
}

size_t DisentangledEmbeddings::NumParameters() const {
  return p_primary.size() + p_auxiliary.size() + q_primary.size() +
         q_auxiliary.size() + prop_weights.size() + prop_bias.size() +
         user_bias.size() + item_bias.size();
}

double DisentangledEmbeddings::DisentangleLossValue() const {
  return MatMulTransA(p_primary, p_auxiliary).FrobeniusNormSquared() +
         MatMulTransA(q_primary, q_auxiliary).FrobeniusNormSquared();
}

double DisentangledEmbeddings::NormalizedDisentangleValue() const {
  auto normalized = [](const Matrix& a, const Matrix& b) {
    const double cross = MatMulTransA(a, b).FrobeniusNormSquared();
    const double scale =
        a.FrobeniusNormSquared() * b.FrobeniusNormSquared();
    return scale > 0.0 ? cross / scale : 0.0;
  };
  return normalized(p_primary, p_auxiliary) +
         normalized(q_primary, q_auxiliary);
}

DisentangledGraph BuildDisentangledGraph(ag::Tape* tape,
                                         const DisentangledEmbeddings& emb,
                                         const std::vector<size_t>& users,
                                         const std::vector<size_t>& items) {
  DTREC_CHECK(tape != nullptr);
  DisentangledGraph graph;
  graph.p_primary = tape->Leaf(emb.p_primary);
  graph.p_auxiliary = tape->Leaf(emb.p_auxiliary);
  graph.q_primary = tape->Leaf(emb.q_primary);
  graph.q_auxiliary = tape->Leaf(emb.q_auxiliary);
  graph.prop_weights = tape->Leaf(emb.prop_weights);
  graph.prop_bias = tape->Leaf(emb.prop_bias);

  graph.pu_primary = ag::GatherRows(graph.p_primary, users);
  graph.pu_auxiliary = ag::GatherRows(graph.p_auxiliary, users);
  graph.qi_primary = ag::GatherRows(graph.q_primary, items);
  graph.qi_auxiliary = ag::GatherRows(graph.q_auxiliary, items);

  // Rating head: primary block only (x_{u,i} → r).
  graph.rating_logits = ag::RowwiseDot(graph.pu_primary, graph.qi_primary);
  if (emb.has_rating_bias()) {
    graph.user_bias = tape->Leaf(emb.user_bias);
    graph.item_bias = tape->Leaf(emb.item_bias);
    graph.rating_logits =
        ag::Add(graph.rating_logits,
                ag::Add(ag::GatherRows(graph.user_bias, users),
                        ag::GatherRows(graph.item_bias, items)));
  }

  // Propensity head: full embedding [x, z] → o, per-dimension weighted.
  ag::Var pu_full = ag::HConcat(graph.pu_primary, graph.pu_auxiliary);
  ag::Var qi_full = ag::HConcat(graph.qi_primary, graph.qi_auxiliary);
  ag::Var interactions = ag::Mul(pu_full, qi_full);  // B×K
  graph.prop_logits = ag::AddRowBroadcast(
      ag::MatMul(interactions, ag::Transpose(graph.prop_weights)),
      graph.prop_bias);
  return graph;
}

void CollectDisentangledParams(DisentangledGraph* graph,
                               DisentangledEmbeddings* emb,
                               std::vector<ag::Var>* leaves,
                               std::vector<Matrix*>* params) {
  DTREC_CHECK(graph != nullptr && emb != nullptr);
  DTREC_CHECK(leaves != nullptr && params != nullptr);
  leaves->assign({graph->p_primary, graph->p_auxiliary, graph->q_primary,
                  graph->q_auxiliary, graph->prop_weights,
                  graph->prop_bias});
  if (emb->has_rating_bias()) {
    leaves->push_back(graph->user_bias);
    leaves->push_back(graph->item_bias);
  }
  *params = emb->Params();
}

}  // namespace dtrec
