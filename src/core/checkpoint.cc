#include "core/checkpoint.h"

#include <fstream>
#include <sstream>

#include "tensor/serialization.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace dtrec {
namespace {

Status SaveParams(const std::vector<const Matrix*>& params,
                  const std::string& path) {
  // Serialize everything in memory, then commit via WriteFileAtomic: a
  // crash mid-save can no longer corrupt the previous checkpoint in place.
  std::ostringstream out;
  for (const Matrix* param : params) {
    DTREC_RETURN_IF_ERROR(SaveMatrix(*param, &out));
  }
  DTREC_FAILPOINT("checkpoint/before_commit");
  return WriteFileAtomic(path, std::move(out).str());
}

Status LoadParams(const std::string& path,
                  const std::vector<Matrix*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  for (size_t i = 0; i < params.size(); ++i) {
    auto loaded = LoadMatrix(&in);
    if (!loaded.ok()) return loaded.status();
    const Matrix& m = loaded.value();
    if (m.rows() != params[i]->rows() || m.cols() != params[i]->cols()) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint matrix %zu is %zux%zu but the model expects %zux%zu",
          i, m.rows(), m.cols(), params[i]->rows(), params[i]->cols()));
    }
    *params[i] = m;
  }
  // A well-formed checkpoint has no trailing bytes.
  char extra = 0;
  in.read(&extra, 1);
  if (in.gcount() != 0) {
    return Status::InvalidArgument("trailing bytes in checkpoint");
  }
  return Status::OK();
}

}  // namespace

Status SaveDisentangledEmbeddings(const DisentangledEmbeddings& emb,
                                  const std::string& path) {
  return SaveParams(emb.Params(), path);
}

Status LoadDisentangledEmbeddings(const std::string& path,
                                  DisentangledEmbeddings* emb) {
  if (emb == nullptr) return Status::InvalidArgument("null embeddings");
  return LoadParams(path, emb->Params());
}

Status SaveMfModel(const MfModel& model, const std::string& path) {
  return SaveParams(model.Params(), path);
}

Status LoadMfModel(const std::string& path, MfModel* model) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  return LoadParams(path, model->Params());
}

}  // namespace dtrec
