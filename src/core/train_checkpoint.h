#ifndef DTREC_CORE_TRAIN_CHECKPOINT_H_
#define DTREC_CORE_TRAIN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "optim/optimizer.h"
#include "tensor/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace dtrec {

/// Full-state training checkpoint: everything the epoch loop mutates, so a
/// killed run resumed from the last checkpoint replays the exact trajectory
/// of an uninterrupted one (bit-identical final parameters).
///
/// The resume protocol deliberately snapshots *only* loop-mutated state:
/// on resume the trainer re-runs its deterministic preamble (model
/// construction, Setup(), sampler creation — all seeded from
/// TrainConfig::seed), then overwrites parameters, optimizer slots, and RNG
/// streams from the checkpoint and continues at `next_epoch`. Anything the
/// preamble rebuilds identically (frozen pre-fit propensities, dataset
/// lookups) stays out of the file.
///
/// File format, version 1 (written crash-atomically via WriteFileAtomic):
///
///   magic "DTCK" · u32 version ·
///   u64 len + method name ·
///   u64 next_epoch ·
///   trainer RNG state · sampler RNG state   (each 4×u64 · u8 · f64) ·
///   u64 num_groups ·
///   per group:  u64 len + optimizer name ·
///               u64 num_params · matrix records (tensor/serialization) ·
///               u64 len + optimizer slot blob (Optimizer::SaveSlots) ·
///   u32 CRC-32 over every preceding byte
///
/// Load verifies the CRC before parsing a single field, then checks method
/// name, optimizer names, parameter counts, and shapes — a checkpoint from
/// a different method/config is rejected with FailedPrecondition, a torn or
/// bit-flipped file with InvalidArgument.

/// One (parameters, optimizer) unit: the matrices stepped together and the
/// optimizer holding their slot state. `opt` may be null for parameter
/// groups trained without slot state.
struct CheckpointGroup {
  std::vector<Matrix*> params;
  Optimizer* opt = nullptr;
};

/// Loop-cursor state saved alongside the parameter groups.
struct TrainState {
  std::string method;      ///< RecommenderTrainer::name() — identity check
  uint64_t next_epoch = 0; ///< first epoch the resumed run should execute
  Rng::State trainer_rng;
  Rng::State sampler_rng;
};

/// Serializes `state` + `groups` and commits the file crash-atomically.
/// Failpoint sites: "checkpoint/after_header" (between serializing the
/// header and the parameter groups), then the atomic_file/* sites.
Status SaveTrainCheckpoint(const std::string& path, const TrainState& state,
                           const std::vector<CheckpointGroup>& groups);

/// Restores a checkpoint written by SaveTrainCheckpoint into the live
/// `groups` (matrices overwritten in place, slots re-installed) and fills
/// `*state`. `groups` must have the same structure the save side used.
/// NotFound when no file exists at `path` (cold start for retry loops).
Status LoadTrainCheckpoint(const std::string& path, TrainState* state,
                           const std::vector<CheckpointGroup>& groups);

}  // namespace dtrec

#endif  // DTREC_CORE_TRAIN_CHECKPOINT_H_
