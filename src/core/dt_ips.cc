#include "core/dt_ips.h"

#include "core/losses.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

Status DtIpsTrainer::Setup(const RatingDataset& dataset) {
  const size_t a = primary_dim();
  if (a == 0 || a >= config_.embedding_dim) {
    return Status::InvalidArgument(
        "DT methods need 0 < disentangle_dim < embedding_dim");
  }
  Rng init_rng(rng_.NextUint64());
  const double rate = Clamp(dataset.TrainDensity(), 1e-6, 1.0 - 1e-6);
  emb_ = DisentangledEmbeddings::Create(
      dataset.num_users(), dataset.num_items(), config_.embedding_dim, a,
      config_.init_scale, Logit(rate), &init_rng, config_.use_bias);
  if (config_.dt_mlp_propensity) {
    // Propensity head over [p_u, q_i, p_u∘q_i] (full embedding incl. the
    // auxiliary block — Figure 1(d)'s z → o edge). The paper's Table II
    // charges DT-IPS one hidden layer; this is it. Set
    // TrainConfig::dt_mlp_propensity=false for the GLM-head ablation.
    prop_tower_ = MlpHead(3 * config_.embedding_dim, config_.mlp_hidden,
                          config_.init_scale, &init_rng);
  }
  disentangle_history_.clear();
  normalized_history_.clear();
  return Status::OK();
}

double DtIpsTrainer::Predict(size_t user, size_t item) const {
  return Sigmoid(emb_.RatingLogit(user, item));
}

double DtIpsTrainer::PropensityEstimate(size_t user, size_t item) const {
  if (!config_.dt_mlp_propensity) {
    return Sigmoid(emb_.PropensityLogit(user, item));
  }
  const Matrix pu = HConcat(emb_.p_primary.RowCopy(user),
                            emb_.p_auxiliary.RowCopy(user));
  const Matrix qi = HConcat(emb_.q_primary.RowCopy(item),
                            emb_.q_auxiliary.RowCopy(item));
  const Matrix features = HConcat(HConcat(pu, qi), Hadamard(pu, qi));
  return Sigmoid(prop_tower_.Forward(features));
}

size_t DtIpsTrainer::NumParameters() const {
  size_t n = emb_.NumParameters();
  if (config_.dt_mlp_propensity) n += prop_tower_.NumParameters();
  return n;
}

ParamBudget DtIpsTrainer::Budget() const {
  ParamBudget budget;
  budget.embedding_params = emb_.p_primary.size() + emb_.p_auxiliary.size() +
                            emb_.q_primary.size() + emb_.q_auxiliary.size();
  budget.other_params = emb_.NumParameters() - budget.embedding_params;
  if (config_.dt_mlp_propensity) {
    budget.hidden_params = prop_tower_.NumParameters();
  }
  return budget;
}

DisentangledGraph DtIpsTrainer::BuildGraph(
    ag::Tape* tape, const Batch& batch, std::vector<ag::Var>* extra_leaves,
    std::vector<Matrix*>* extra_params) {
  DisentangledGraph graph =
      BuildDisentangledGraph(tape, emb_, batch.users, batch.items);
  if (config_.dt_mlp_propensity) {
    ag::Var pu_full = ag::HConcat(graph.pu_primary, graph.pu_auxiliary);
    ag::Var qi_full = ag::HConcat(graph.qi_primary, graph.qi_auxiliary);
    ag::Var features = ag::HConcat(ag::HConcat(pu_full, qi_full),
                                   ag::Mul(pu_full, qi_full));
    std::vector<ag::Var> tower_leaves = prop_tower_.MakeLeaves(tape);
    graph.prop_logits = prop_tower_.Forward(tower_leaves, features);
    const std::vector<Matrix*> tower_params = prop_tower_.Params();
    for (size_t i = 0; i < tower_leaves.size(); ++i) {
      extra_leaves->push_back(tower_leaves[i]);
      extra_params->push_back(tower_params[i]);
    }
  }
  return graph;
}

ag::Var DtIpsTrainer::SharedLossTerms(ag::Tape* tape, const Batch& batch,
                                      DisentangledGraph* graph) {
  // Propensity loss L_O: cross entropy of o over the sampled slice of the
  // entire space (stable logit-space form).
  ag::Var shared;
  {
    DTREC_TRACE_SPAN("propensity_bce");
    const Matrix bce_weights(batch.size(), 1,
                             1.0 / static_cast<double>(batch.size()));
    ag::Var prop_loss = ag::SigmoidBceSum(graph->prop_logits, batch.observed,
                                          bce_weights);
    shared = ag::Scale(prop_loss, config_.alpha);
    if (collect_epoch_stats_) {
      RecordEpochLoss("propensity_bce", shared.value()(0, 0));
    }
  }
  if (config_.beta != 0.0) {
    DTREC_TRACE_SPAN("disentangle_loss");
    ag::Var term = ag::Scale(DisentangleLoss(*graph), config_.beta);
    if (collect_epoch_stats_) {
      RecordEpochLoss("disentangle", term.value()(0, 0));
    }
    shared = ag::Add(shared, term);
  }
  if (config_.gamma != 0.0) {
    DTREC_TRACE_SPAN("reg_loss");
    ag::Var term = ag::Scale(RegularizationLoss(*graph), config_.gamma);
    if (collect_epoch_stats_) {
      RecordEpochLoss("regularization", term.value()(0, 0));
    }
    shared = ag::Add(shared, term);
  }
  (void)tape;
  return shared;
}

void DtIpsTrainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  std::vector<ag::Var> extra_leaves;
  std::vector<Matrix*> extra_params;
  ag::Var ips_loss;
  DisentangledGraph graph;
  {
    DTREC_TRACE_SPAN("forward");
    graph = BuildGraph(&tape, batch, &extra_leaves, &extra_params);

    // IPS term with the learned MNAR propensity (stop-gradient weights:
    // the propensity is trained by L_O, not by the reweighted rating
    // loss).
    Matrix w(batch.size(), 1);
    const double inv_b = 1.0 / static_cast<double>(batch.size());
    const Matrix& prop_logits = graph.prop_logits.value();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.observed(i, 0) == 0.0) continue;
      const double p = ClipPropensity(Sigmoid(prop_logits(i, 0)),
                                      config_.propensity_clip);
      DTREC_ASSERT_PROPENSITY(p);
      w(i, 0) = inv_b / p;
    }
    DTREC_ASSERT_FINITE(w, "DtIpsTrainer IPS weights");
    ag::Var e =
        SquaredErrorVsLabels(&tape, graph.rating_logits, batch.ratings);
    ips_loss = ag::WeightedSumElems(e, w);
  }
  if (collect_epoch_stats_) RecordEpochLoss("ips", ips_loss.value()(0, 0));

  ag::Var loss = ag::Add(ips_loss, SharedLossTerms(&tape, batch, &graph));

  std::vector<ag::Var> leaves;
  std::vector<Matrix*> params;
  CollectDisentangledParams(&graph, &emb_, &leaves, &params);
  leaves.insert(leaves.end(), extra_leaves.begin(), extra_leaves.end());
  params.insert(params.end(), extra_params.begin(), extra_params.end());
  BackwardAndStep(&tape, loss, leaves, params);
}

void DtIpsTrainer::EpochEnd(size_t epoch) {
  (void)epoch;
  disentangle_history_.push_back(emb_.DisentangleLossValue());
  normalized_history_.push_back(emb_.NormalizedDisentangleValue());
}

std::vector<CheckpointGroup> DtIpsTrainer::CheckpointGroups() {
  // The epoch loop steps the disentangled embeddings and (when configured)
  // the MLP propensity head; the base pred_ model stays at its
  // deterministic init but is cheap to include and keeps group 0 uniform.
  auto groups = MfJointTrainerBase::CheckpointGroups();
  for (Matrix* param : emb_.Params()) groups[0].params.push_back(param);
  if (config_.dt_mlp_propensity) {
    for (Matrix* param : prop_tower_.Params()) {
      groups[0].params.push_back(param);
    }
  }
  return groups;
}

}  // namespace dtrec
