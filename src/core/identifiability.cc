#include "core/identifiability.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dtrec {

Example1Model Example1ModelA() { return {-4.0, 2.0, 1.0}; }
Example1Model Example1ModelB() { return {4.0, -2.0, 3.0}; }

double Example1Propensity(const Example1Model& model, double r) {
  return Sigmoid(model.selection_intercept + model.selection_slope * r);
}

double Example1OutcomeDensity(const Example1Model& model, double r) {
  return NormalPdf(r - model.outcome_mean);
}

double Example1ObservedDensity(const Example1Model& model, double r) {
  return Example1Propensity(model, r) * Example1OutcomeDensity(model, r);
}

std::vector<MnarSample> SimulateSeparableLogistic(
    const SeparableLogisticParams& params, size_t n, Rng* rng) {
  DTREC_CHECK(rng != nullptr);
  std::vector<MnarSample> samples;
  samples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    MnarSample s;
    s.z = rng->Normal();
    s.rating = rng->Bernoulli(params.eta) ? 1 : 0;
    const double logit = params.alpha0 + params.alpha1 * s.z +
                         params.beta1 * static_cast<double>(s.rating);
    s.observed = rng->Bernoulli(Sigmoid(logit));
    samples.push_back(s);
  }
  return samples;
}

double ObservedDataNll(const SeparableLogisticParams& params,
                       const std::vector<MnarSample>& samples,
                       bool use_aux) {
  DTREC_CHECK(!samples.empty());
  const double eta = Clamp(params.eta, 1e-9, 1.0 - 1e-9);
  double nll = 0.0;
  for (const auto& s : samples) {
    const double aux = use_aux ? params.alpha1 * s.z : 0.0;
    if (s.observed) {
      const double logit =
          params.alpha0 + aux + params.beta1 * static_cast<double>(s.rating);
      nll += Log1pExp(-logit);  // −log σ(logit)
      nll -= s.rating == 1 ? std::log(eta) : std::log(1.0 - eta);
    } else {
      const double miss0 = 1.0 - Sigmoid(params.alpha0 + aux);
      const double miss1 =
          1.0 - Sigmoid(params.alpha0 + aux + params.beta1);
      const double lik = miss0 * (1.0 - eta) + miss1 * eta;
      nll -= std::log(Clamp(lik, 1e-300, 1.0));
    }
  }
  return nll / static_cast<double>(samples.size());
}

Result<SeparableLogisticParams> FitSeparableLogistic(
    const std::vector<MnarSample>& samples, bool use_aux,
    const SeparableLogisticParams& init, size_t iterations,
    double learning_rate) {
  if (samples.empty()) {
    return Status::InvalidArgument("no samples to fit");
  }
  if (init.eta <= 0.0 || init.eta >= 1.0) {
    return Status::InvalidArgument("init.eta must lie in (0, 1)");
  }
  double alpha0 = init.alpha0;
  double alpha1 = init.alpha1;
  double beta1 = init.beta1;
  double eta_logit = Logit(init.eta);
  const double inv_n = 1.0 / static_cast<double>(samples.size());

  for (size_t iter = 0; iter < iterations; ++iter) {
    double g_a0 = 0.0, g_a1 = 0.0, g_b1 = 0.0, g_eta = 0.0;
    const double eta = Sigmoid(eta_logit);
    for (const auto& s : samples) {
      const double aux = use_aux ? alpha1 * s.z : 0.0;
      if (s.observed) {
        const double r = static_cast<double>(s.rating);
        const double sel = Sigmoid(alpha0 + aux + beta1 * r);
        const double d_logit = -(1.0 - sel);  // d(−logσ)/d logit
        g_a0 += d_logit;
        if (use_aux) g_a1 += d_logit * s.z;
        g_b1 += d_logit * r;
        g_eta += -(r - eta);  // via logit parameterization
      } else {
        const double p0 = Sigmoid(alpha0 + aux);
        const double p1 = Sigmoid(alpha0 + aux + beta1);
        const double lik =
            Clamp((1.0 - p0) * (1.0 - eta) + (1.0 - p1) * eta, 1e-12, 1.0);
        const double d0 = p0 * (1.0 - p0);
        const double d1 = p1 * (1.0 - p1);
        // d(−log lik)/dα₀ etc.
        g_a0 += (d0 * (1.0 - eta) + d1 * eta) / lik;
        if (use_aux) g_a1 += (d0 * (1.0 - eta) + d1 * eta) * s.z / lik;
        g_b1 += d1 * eta / lik;
        g_eta += -((p0 - p1) / lik) * eta * (1.0 - eta);
      }
    }
    const double lr =
        learning_rate / (1.0 + 2.0 * static_cast<double>(iter) /
                                   static_cast<double>(iterations));
    alpha0 -= lr * g_a0 * inv_n;
    if (use_aux) alpha1 -= lr * g_a1 * inv_n;
    beta1 -= lr * g_b1 * inv_n;
    eta_logit -= lr * g_eta * inv_n;
  }

  SeparableLogisticParams out;
  out.alpha0 = alpha0;
  out.alpha1 = use_aux ? alpha1 : 0.0;
  out.beta1 = beta1;
  out.eta = Sigmoid(eta_logit);
  return out;
}

}  // namespace dtrec
