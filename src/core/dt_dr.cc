#include "core/dt_dr.h"

#include "obs/trace.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

Status DtDrTrainer::Setup(const RatingDataset& dataset) {
  DTREC_RETURN_IF_ERROR(DtIpsTrainer::Setup(dataset));
  imp_ = MfModel(PredModelConfig(dataset, rng_.NextUint64()));
  imp_opt_ = MakeOptimizer(config_.optimizer, config_.learning_rate,
                           config_.weight_decay);
  return Status::OK();
}

size_t DtDrTrainer::NumParameters() const {
  return DtIpsTrainer::NumParameters() + imp_.NumParameters();
}

std::vector<CheckpointGroup> DtDrTrainer::CheckpointGroups() {
  auto groups = DtIpsTrainer::CheckpointGroups();
  groups.push_back(CheckpointGroup{imp_.Params(), imp_opt_.get()});
  return groups;
}

ParamBudget DtDrTrainer::Budget() const {
  ParamBudget budget = DtIpsTrainer::Budget();
  budget.embedding_params += imp_.NumParameters();
  return budget;
}

void DtDrTrainer::TrainStep(const Batch& batch) {
  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);

  ag::Tape tape;
  std::vector<ag::Var> extra_leaves;
  std::vector<Matrix*> extra_params;
  ag::Var dr_loss;
  DisentangledGraph graph;
  Matrix clipped_p(b, 1);
  {
    DTREC_TRACE_SPAN("forward");
    graph = BuildGraph(&tape, batch, &extra_leaves, &extra_params);

    // Constants of the prediction step: clipped learned MNAR propensities
    // and the imputation model's pseudo-labels.
    Matrix pseudo(b, 1);
    Matrix w_imputed(b, 1), w_observed(b, 1);
    const Matrix& prop_logits = graph.prop_logits.value();
    for (size_t i = 0; i < b; ++i) {
      clipped_p(i, 0) = ClipPropensity(Sigmoid(prop_logits(i, 0)),
                                       config_.propensity_clip);
      DTREC_ASSERT_PROPENSITY(clipped_p(i, 0));
      pseudo(i, 0) = imp_.PredictProbability(batch.users[i], batch.items[i]);
      const double o_over_p = batch.observed(i, 0) / clipped_p(i, 0);
      w_imputed(i, 0) = (1.0 - o_over_p) * inv_b;
      w_observed(i, 0) = o_over_p * inv_b;
    }
    DTREC_ASSERT_FINITE(w_observed, "DtDrTrainer DR weights");

    ag::Var probs = ag::Sigmoid(graph.rating_logits);
    ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), probs));
    ag::Var e_hat = ag::Square(ag::Sub(tape.Constant(pseudo), probs));
    dr_loss = ag::Add(ag::WeightedSumElems(e_hat, w_imputed),
                      ag::WeightedSumElems(e, w_observed));
  }
  if (collect_epoch_stats_) RecordEpochLoss("dr", dr_loss.value()(0, 0));

  ag::Var loss = ag::Add(dr_loss, SharedLossTerms(&tape, batch, &graph));

  std::vector<ag::Var> leaves;
  std::vector<Matrix*> params;
  CollectDisentangledParams(&graph, &emb_, &leaves, &params);
  leaves.insert(leaves.end(), extra_leaves.begin(), extra_leaves.end());
  params.insert(params.end(), extra_params.begin(), extra_params.end());
  BackwardAndStep(&tape, loss, leaves, params);

  ImputationStep(batch, clipped_p);
}

void DtDrTrainer::ImputationStep(const Batch& batch,
                                 const Matrix& clipped_p) {
  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);
  Matrix pred_probs(b, 1), target_e(b, 1), w(b, 1);
  double total = 0.0;
  for (size_t i = 0; i < b; ++i) {
    const double prob = Predict(batch.users[i], batch.items[i]);
    pred_probs(i, 0) = prob;
    const double diff = batch.ratings(i, 0) - prob;
    target_e(i, 0) = diff * diff;
    w(i, 0) = ImputationWeight(batch.observed(i, 0), clipped_p(i, 0)) *
              inv_b;
    total += w(i, 0);
  }
  if (total == 0.0) return;

  DTREC_TRACE_SPAN("imputation");
  ag::Tape tape;
  std::vector<ag::Var> leaves = imp_.MakeLeaves(&tape);
  ag::Var logits = imp_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var pseudo = ag::Sigmoid(logits);
  ag::Var e_hat = ag::Square(ag::Sub(pseudo, tape.Constant(pred_probs)));
  ag::Var loss = ag::WeightedSumElems(
      ag::Square(ag::Sub(tape.Constant(target_e), e_hat)), w);
  if (collect_epoch_stats_) RecordEpochLoss("imputation", loss.value()(0, 0));
  tape.Backward(loss);
  for (size_t i = 0; i < leaves.size(); ++i) {
    imp_opt_->Step(imp_.Params()[i], tape.GradOf(leaves[i]));
  }
}

}  // namespace dtrec
