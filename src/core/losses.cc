#include "core/losses.h"

#include "tensor/ops.h"
#include "util/numeric_guard.h"

namespace dtrec {

ag::Var DisentangleLoss(const DisentangledGraph& graph) {
  DTREC_ASSERT_FINITE(graph.p_primary.value(), "DisentangleLoss input P'");
  DTREC_ASSERT_FINITE(graph.q_primary.value(), "DisentangleLoss input Q'");
  // Normalized by the table heights so the β weight is dataset-size
  // independent: the raw ‖P′ᵀP″‖_F² grows linearly with |U| at fixed
  // embedding statistics, which would make any fixed β either inert on
  // small datasets or crushing on large ones (the paper re-tunes β per
  // dataset; we normalize instead — see DESIGN.md §5).
  const double inv_users =
      1.0 / static_cast<double>(graph.p_primary.value().rows());
  const double inv_items =
      1.0 / static_cast<double>(graph.q_primary.value().rows());
  ag::Var user_term = ag::FrobeniusSq(
      ag::MatMul(ag::Transpose(graph.p_primary), graph.p_auxiliary));
  ag::Var item_term = ag::FrobeniusSq(
      ag::MatMul(ag::Transpose(graph.q_primary), graph.q_auxiliary));
  return ag::Add(ag::Scale(user_term, inv_users),
                 ag::Scale(item_term, inv_items));
}

ag::Var RegularizationLoss(const DisentangledGraph& graph) {
  // ‖P′Q′ᵀ‖_F² / (|U|·|I|) is the mean squared rating logit over the full
  // matrix — normalization keeps γ scale-free (same rationale as above).
  const double inv_cells =
      1.0 / (static_cast<double>(graph.p_primary.value().rows()) *
             static_cast<double>(graph.q_primary.value().rows()));
  ag::Var primary = ag::GramFrobeniusSq(graph.p_primary, graph.q_primary);
  ag::Var auxiliary =
      ag::GramFrobeniusSq(graph.p_auxiliary, graph.q_auxiliary);
  return ag::Scale(ag::Add(primary, auxiliary), inv_cells);
}

double RegularizationLossNaive(const DisentangledEmbeddings& emb) {
  return MatMulTransB(emb.p_primary, emb.q_primary).FrobeniusNormSquared() +
         MatMulTransB(emb.p_auxiliary, emb.q_auxiliary)
             .FrobeniusNormSquared();
}

double RegularizationLossGram(const DisentangledEmbeddings& emb) {
  auto gram_trace = [](const Matrix& a, const Matrix& b) {
    const Matrix ga = MatMulTransA(a, a);
    const Matrix gb = MatMulTransA(b, b);
    double trace = 0.0;
    for (size_t i = 0; i < ga.rows(); ++i) {
      for (size_t j = 0; j < ga.cols(); ++j) trace += ga(i, j) * gb(j, i);
    }
    return trace;
  };
  return gram_trace(emb.p_primary, emb.q_primary) +
         gram_trace(emb.p_auxiliary, emb.q_auxiliary);
}

}  // namespace dtrec
