#include "core/train_checkpoint.h"

#include <cstdint>
#include <cstring>
#include <sstream>

#include "obs/trace.h"
#include "tensor/serialization.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace dtrec {
namespace {

constexpr char kMagic[4] = {'D', 'T', 'C', 'K'};
constexpr uint32_t kFormatVersion = 1;
// Strings inside a checkpoint (method/optimizer names) are short
// identifiers; anything longer means we are parsing corrupt bytes.
constexpr uint64_t kMaxNameLen = 4096;

void WriteU32(std::ostream* out, uint32_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream* out, uint64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream* out, const std::string& s) {
  WriteU64(out, s.size());
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteRngState(std::ostream* out, const Rng::State& state) {
  for (int i = 0; i < 4; ++i) WriteU64(out, state.s[i]);
  const char cached = state.has_cached_normal ? 1 : 0;
  out->write(&cached, 1);
  out->write(reinterpret_cast<const char*>(&state.cached_normal),
             sizeof(state.cached_normal));
}

Status ReadU64(std::istream* in, uint64_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  if (in->gcount() != static_cast<std::streamsize>(sizeof(*v))) {
    return Status::InvalidArgument("truncated checkpoint field");
  }
  return Status::OK();
}

Status ReadString(std::istream* in, std::string* s) {
  uint64_t len = 0;
  DTREC_RETURN_IF_ERROR(ReadU64(in, &len));
  if (len > kMaxNameLen) {
    return Status::InvalidArgument("corrupt checkpoint string length");
  }
  s->resize(static_cast<size_t>(len));
  in->read(s->data(), static_cast<std::streamsize>(len));
  if (in->gcount() != static_cast<std::streamsize>(len)) {
    return Status::InvalidArgument("truncated checkpoint string");
  }
  return Status::OK();
}

Status ReadRngState(std::istream* in, Rng::State* state) {
  for (int i = 0; i < 4; ++i) DTREC_RETURN_IF_ERROR(ReadU64(in, &state->s[i]));
  char cached = 0;
  in->read(&cached, 1);
  if (in->gcount() != 1 || (cached != 0 && cached != 1)) {
    return Status::InvalidArgument("corrupt checkpoint rng state");
  }
  state->has_cached_normal = cached == 1;
  in->read(reinterpret_cast<char*>(&state->cached_normal),
           sizeof(state->cached_normal));
  if (in->gcount() != static_cast<std::streamsize>(
                          sizeof(state->cached_normal))) {
    return Status::InvalidArgument("truncated checkpoint rng state");
  }
  return Status::OK();
}

}  // namespace

Status SaveTrainCheckpoint(const std::string& path, const TrainState& state,
                           const std::vector<CheckpointGroup>& groups) {
  DTREC_TRACE_SPAN("checkpoint_save");
  std::ostringstream out;
  out.write(kMagic, sizeof(kMagic));
  WriteU32(&out, kFormatVersion);
  WriteString(&out, state.method);
  WriteU64(&out, state.next_epoch);
  WriteRngState(&out, state.trainer_rng);
  WriteRngState(&out, state.sampler_rng);

  DTREC_FAILPOINT("checkpoint/after_header");

  WriteU64(&out, groups.size());
  for (const CheckpointGroup& group : groups) {
    WriteString(&out, group.opt != nullptr ? group.opt->name() : "");
    WriteU64(&out, group.params.size());
    for (const Matrix* param : group.params) {
      DTREC_RETURN_IF_ERROR(SaveMatrix(*param, &out));
    }
    std::string slots;
    if (group.opt != nullptr) {
      std::ostringstream slot_out;
      std::vector<const Matrix*> const_params(group.params.begin(),
                                              group.params.end());
      DTREC_RETURN_IF_ERROR(group.opt->SaveSlots(const_params, &slot_out));
      slots = std::move(slot_out).str();
    }
    WriteString(&out, slots);
  }
  if (!out.good()) return Status::Internal("checkpoint serialization failed");

  std::string payload = std::move(out).str();
  const uint32_t crc = Crc32(payload);
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return WriteFileAtomic(path, std::move(payload));
}

Status LoadTrainCheckpoint(const std::string& path, TrainState* state,
                           const std::vector<CheckpointGroup>& groups) {
  DTREC_TRACE_SPAN("checkpoint_restore");
  if (state == nullptr) return Status::InvalidArgument("null state");
  std::string contents;
  DTREC_RETURN_IF_ERROR(ReadFile(path, &contents));
  if (contents.size() < sizeof(kMagic) + sizeof(uint32_t) * 2) {
    return Status::InvalidArgument("checkpoint too short: " + path);
  }
  // Integrity first: refuse to parse anything out of a torn or bit-flipped
  // file. The trailer CRC covers every byte before it.
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, contents.data() + contents.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  contents.resize(contents.size() - sizeof(stored_crc));
  if (Crc32(contents) != stored_crc) {
    return Status::InvalidArgument("checkpoint checksum mismatch (corrupt): " +
                                   path);
  }

  std::istringstream in(contents);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(version)) ||
      version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version in " + path);
  }
  DTREC_RETURN_IF_ERROR(ReadString(&in, &state->method));
  DTREC_RETURN_IF_ERROR(ReadU64(&in, &state->next_epoch));
  DTREC_RETURN_IF_ERROR(ReadRngState(&in, &state->trainer_rng));
  DTREC_RETURN_IF_ERROR(ReadRngState(&in, &state->sampler_rng));

  uint64_t num_groups = 0;
  DTREC_RETURN_IF_ERROR(ReadU64(&in, &num_groups));
  if (num_groups != groups.size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %llu parameter groups but the trainer expects %zu",
        static_cast<unsigned long long>(num_groups), groups.size()));
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    const CheckpointGroup& group = groups[g];
    std::string opt_name;
    DTREC_RETURN_IF_ERROR(ReadString(&in, &opt_name));
    const std::string expected =
        group.opt != nullptr ? group.opt->name() : "";
    if (opt_name != expected) {
      return Status::FailedPrecondition(
          "checkpoint group " + std::to_string(g) + " was trained with '" +
          opt_name + "' but the trainer uses '" + expected + "'");
    }
    uint64_t num_params = 0;
    DTREC_RETURN_IF_ERROR(ReadU64(&in, &num_params));
    if (num_params != group.params.size()) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint group %zu has %llu parameters but the trainer "
          "expects %zu",
          g, static_cast<unsigned long long>(num_params),
          group.params.size()));
    }
    for (size_t i = 0; i < group.params.size(); ++i) {
      auto loaded = LoadMatrix(&in);
      if (!loaded.ok()) return loaded.status();
      Matrix& m = loaded.value();
      if (m.rows() != group.params[i]->rows() ||
          m.cols() != group.params[i]->cols()) {
        return Status::FailedPrecondition(StrFormat(
            "checkpoint matrix %zu of group %zu is %zux%zu but the model "
            "expects %zux%zu",
            i, g, m.rows(), m.cols(), group.params[i]->rows(),
            group.params[i]->cols()));
      }
      *group.params[i] = std::move(m);
    }
    std::string slots;
    DTREC_RETURN_IF_ERROR([&]() -> Status {
      // Slot blobs hold whole matrices, so bypass kMaxNameLen: read the
      // length and take the rest of the stream as bounded by it.
      uint64_t len = 0;
      DTREC_RETURN_IF_ERROR(ReadU64(&in, &len));
      if (len > contents.size()) {
        return Status::InvalidArgument("corrupt checkpoint slot length");
      }
      slots.resize(static_cast<size_t>(len));
      in.read(slots.data(), static_cast<std::streamsize>(len));
      if (in.gcount() != static_cast<std::streamsize>(len)) {
        return Status::InvalidArgument("truncated checkpoint slot blob");
      }
      return Status::OK();
    }());
    if (group.opt != nullptr) {
      std::istringstream slot_in(slots);
      DTREC_RETURN_IF_ERROR(group.opt->LoadSlots(group.params, &slot_in));
      char extra = 0;
      slot_in.read(&extra, 1);
      if (slot_in.gcount() != 0) {
        return Status::InvalidArgument("trailing bytes in optimizer slots");
      }
    } else if (!slots.empty()) {
      return Status::FailedPrecondition(
          "checkpoint has optimizer slots for a slot-free group");
    }
  }
  char extra = 0;
  in.read(&extra, 1);
  if (in.gcount() != 0) {
    return Status::InvalidArgument("trailing bytes in checkpoint: " + path);
  }
  return Status::OK();
}

}  // namespace dtrec
