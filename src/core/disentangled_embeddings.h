#ifndef DTREC_CORE_DISENTANGLED_EMBEDDINGS_H_
#define DTREC_CORE_DISENTANGLED_EMBEDDINGS_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec {

class Rng;

/// The disentangled embedding parameterization of Section IV-B.
///
/// The full user embedding p_u = [p'_u, p''_u] and item embedding
/// q_i = [q'_i, q''_i] are split at dimension A:
///  - the *primary* part (p', q') realizes x_{u,i} and alone predicts the
///    rating:            r̂ = σ( p'_u · q'_i )
///  - the full embedding realizes [x_{u,i}, z_{u,i}] and predicts the
///    observation through a per-dimension-weighted CF head θ_o:
///        p̂ = σ( Σ_k w_k · p_{u,k} · q_{i,k} + b )
/// The auxiliary columns (p'', q'') are the learned auxiliary variable z
/// whose identifiability conditions (Assumption 1) the disentangling loss
/// enforces: z must carry no rating information (orthogonality to the
/// primary block) while the propensity head keeps z ⟂̸ o | x.
struct DisentangledEmbeddings {
  Matrix p_primary;    ///< |U|×A            (P′)
  Matrix p_auxiliary;  ///< |U|×(K−A)        (P″)
  Matrix q_primary;    ///< |I|×A            (Q′)
  Matrix q_auxiliary;  ///< |I|×(K−A)        (Q″)
  Matrix prop_weights; ///< 1×K   per-dimension propensity head weights
  Matrix prop_bias;    ///< 1×1
  Matrix user_bias;    ///< |U|×1 rating-head bias (empty when disabled)
  Matrix item_bias;    ///< |I|×1 rating-head bias (empty when disabled)

  /// Initializes all tables with N(0, init_scale); the propensity head
  /// starts at uniform weights 1 and bias `bias_init` (set it near the
  /// marginal observation log-odds for fast convergence).
  static DisentangledEmbeddings Create(size_t num_users, size_t num_items,
                                       size_t total_dim, size_t primary_dim,
                                       double init_scale, double bias_init,
                                       Rng* rng, bool use_rating_bias = false);

  bool has_rating_bias() const { return !user_bias.empty(); }

  size_t primary_dim() const { return p_primary.cols(); }
  size_t auxiliary_dim() const { return p_auxiliary.cols(); }
  size_t total_dim() const { return primary_dim() + auxiliary_dim(); }

  /// Rating logit p′_u · q′_i [+ bu_u + bi_i when biases are enabled].
  double RatingLogit(size_t user, size_t item) const;

  /// Propensity logit Σ_k w_k p_{u,k} q_{i,k} + b over the full embedding.
  double PropensityLogit(size_t user, size_t item) const;

  /// Parameter matrices in a stable order (for optimizers/leaves).
  std::vector<Matrix*> Params();
  std::vector<const Matrix*> Params() const;

  size_t NumParameters() const;

  /// Value of the disentangling loss ‖P′ᵀP″‖_F² + ‖Q′ᵀQ″‖_F² at the
  /// current tables (no autograd; for instrumentation — Figure 4c/4d).
  double DisentangleLossValue() const;

  /// Scale-invariant orthogonality between the blocks:
  ///   ‖P′ᵀP″‖_F²/(‖P′‖_F²·‖P″‖_F²) + same for Q — a normalized cosine
  /// that isolates the *direction* of the blocks from their growing
  /// magnitude during training. 0 = perfectly disentangled.
  double NormalizedDisentangleValue() const;
};

/// Leaves + gathered per-batch Vars for one training step.
struct DisentangledGraph {
  ag::Var p_primary, p_auxiliary, q_primary, q_auxiliary;
  ag::Var prop_weights, prop_bias;
  ag::Var user_bias, item_bias;  // valid iff the embeddings carry biases
  ag::Var pu_primary, pu_auxiliary, qi_primary, qi_auxiliary;  // gathered
  ag::Var rating_logits;  // B×1
  ag::Var prop_logits;    // B×1
};

/// Builds the full forward graph for `users`/`items` on `tape`.
DisentangledGraph BuildDisentangledGraph(ag::Tape* tape,
                                         const DisentangledEmbeddings& emb,
                                         const std::vector<size_t>& users,
                                         const std::vector<size_t>& items);

/// (leaf, parameter) pairs of the graph, for the optimizer step.
void CollectDisentangledParams(DisentangledGraph* graph,
                               DisentangledEmbeddings* emb,
                               std::vector<ag::Var>* leaves,
                               std::vector<Matrix*>* params);

}  // namespace dtrec

#endif  // DTREC_CORE_DISENTANGLED_EMBEDDINGS_H_
