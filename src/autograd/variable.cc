#include "autograd/tape.h"
#include "util/logging.h"

namespace dtrec::ag {

const Matrix& Var::value() const {
  DTREC_CHECK(valid());
  return tape_->ValueOf(*this);
}

const Matrix& Var::grad() const {
  DTREC_CHECK(valid());
  return tape_->GradOf(*this);
}

}  // namespace dtrec::ag
