#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec::ag {
namespace {

Tape* CheckSameTape(Var a, Var b) {
  DTREC_CHECK(a.valid() && b.valid());
  DTREC_CHECK(a.tape() == b.tape()) << "operands on different tapes";
  return a.tape();
}

void CheckSameShape(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.rows(), b.rows());
  DTREC_CHECK_EQ(a.cols(), b.cols());
}

/// Pass-through that pins a non-finite forward value to the autograd op
/// that produced it (active only under DTREC_NUMERIC_CHECKS).
Matrix Checked(Matrix m, const char* op) {
  DTREC_ASSERT_FINITE(m, op);
  return m;
}

}  // namespace

Var Add(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  CheckSameShape(a.value(), b.value());
  const size_t pa = a.id(), pb = b.id();
  return tape->MakeNode(
      dtrec::Add(a.value(), b.value()), {pa, pb},
      [pa, pb](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        AddScaledInPlace(t->MutableGrad(pa), g, 1.0);
        AddScaledInPlace(t->MutableGrad(pb), g, 1.0);
      });
}

Var Sub(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  CheckSameShape(a.value(), b.value());
  const size_t pa = a.id(), pb = b.id();
  return tape->MakeNode(
      dtrec::Sub(a.value(), b.value()), {pa, pb},
      [pa, pb](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        AddScaledInPlace(t->MutableGrad(pa), g, 1.0);
        AddScaledInPlace(t->MutableGrad(pb), g, -1.0);
      });
}

Var Mul(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  CheckSameShape(a.value(), b.value());
  const size_t pa = a.id(), pb = b.id();
  return tape->MakeNode(
      Hadamard(a.value(), b.value()), {pa, pb},
      [pa, pb](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        Matrix* ga = t->MutableGrad(pa);
        Matrix* gb = t->MutableGrad(pb);
        const Matrix& va = t->ValueAt(pa);
        const Matrix& vb = t->ValueAt(pb);
        for (size_t i = 0; i < g.size(); ++i) {
          ga->at_flat(i) += g.at_flat(i) * vb.at_flat(i);
          gb->at_flat(i) += g.at_flat(i) * va.at_flat(i);
        }
      });
}

Var Div(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  CheckSameShape(a.value(), b.value());
  const size_t pa = a.id(), pb = b.id();
  return tape->MakeNode(
      Checked(Divide(a.value(), b.value()), "ag::Div"), {pa, pb},
      [pa, pb](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        const Matrix& out = t->ValueAt(self);  // a/b
        Matrix* ga = t->MutableGrad(pa);
        Matrix* gb = t->MutableGrad(pb);
        const Matrix& vb = t->ValueAt(pb);
        for (size_t i = 0; i < g.size(); ++i) {
          const double inv_b = 1.0 / vb.at_flat(i);
          ga->at_flat(i) += g.at_flat(i) * inv_b;
          gb->at_flat(i) -= g.at_flat(i) * out.at_flat(i) * inv_b;
        }
      });
}

Var DivScalar(Var a, Var s) {
  Tape* tape = CheckSameTape(a, s);
  DTREC_CHECK_EQ(s.value().rows(), 1u);
  DTREC_CHECK_EQ(s.value().cols(), 1u);
  const size_t pa = a.id(), ps = s.id();
  const double sv = s.value()(0, 0);
  return tape->MakeNode(
      Checked(dtrec::Scale(a.value(), 1.0 / sv), "ag::DivScalar"),
      {pa, ps},
      [pa, ps](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        const Matrix& out = t->ValueAt(self);  // a/s
        const double sv = t->ValueAt(ps)(0, 0);
        Matrix* ga = t->MutableGrad(pa);
        Matrix* gs = t->MutableGrad(ps);
        double gs_accum = 0.0;
        for (size_t i = 0; i < g.size(); ++i) {
          ga->at_flat(i) += g.at_flat(i) / sv;
          gs_accum -= g.at_flat(i) * out.at_flat(i) / sv;
        }
        (*gs)(0, 0) += gs_accum;
      });
}

Var MatMul(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  const size_t pa = a.id(), pb = b.id();
  return tape->MakeNode(
      dtrec::MatMul(a.value(), b.value()), {pa, pb},
      [pa, pb](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        // dA = g·Bᵀ ; dB = Aᵀ·g
        AddScaledInPlace(t->MutableGrad(pa), MatMulTransB(g, t->ValueAt(pb)),
                         1.0);
        AddScaledInPlace(t->MutableGrad(pb), MatMulTransA(t->ValueAt(pa), g),
                         1.0);
      });
}

Var Transpose(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(a.value().Transposed(), {pa},
                        [pa](Tape* t, size_t self) {
                          AddScaledInPlace(t->MutableGrad(pa),
                                           t->MutableGrad(self)->Transposed(),
                                           1.0);
                        });
}

Var Scale(Var a, double alpha) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(dtrec::Scale(a.value(), alpha), {pa},
                        [pa, alpha](Tape* t, size_t self) {
                          AddScaledInPlace(t->MutableGrad(pa),
                                           *t->MutableGrad(self), alpha);
                        });
}

Var AddScalar(Var a, double alpha) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  Matrix value = a.value();
  for (size_t i = 0; i < value.size(); ++i) value.at_flat(i) += alpha;
  return tape->MakeNode(std::move(value), {pa}, [pa](Tape* t, size_t self) {
    AddScaledInPlace(t->MutableGrad(pa), *t->MutableGrad(self), 1.0);
  });
}

Var Sigmoid(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(
      SigmoidMat(a.value()), {pa}, [pa](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        const Matrix& s = t->ValueAt(self);
        Matrix* ga = t->MutableGrad(pa);
        for (size_t i = 0; i < g.size(); ++i) {
          const double si = s.at_flat(i);
          ga->at_flat(i) += g.at_flat(i) * si * (1.0 - si);
        }
      });
}

Var Exp(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(
      Checked(Map(a.value(), [](double x) { return std::exp(x); }),
              "ag::Exp"),
      {pa},
      [pa](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        const Matrix& out = t->ValueAt(self);
        Matrix* ga = t->MutableGrad(pa);
        for (size_t i = 0; i < g.size(); ++i) {
          ga->at_flat(i) += g.at_flat(i) * out.at_flat(i);
        }
      });
}

Var Log(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(
      Checked(Map(a.value(), [](double x) { return std::log(x); }),
              "ag::Log"),
      {pa},
      [pa](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        const Matrix& in = t->ValueAt(pa);
        Matrix* ga = t->MutableGrad(pa);
        for (size_t i = 0; i < g.size(); ++i) {
          ga->at_flat(i) += g.at_flat(i) / in.at_flat(i);
        }
      });
}

Var Square(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(
      Map(a.value(), [](double x) { return x * x; }), {pa},
      [pa](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        const Matrix& in = t->ValueAt(pa);
        Matrix* ga = t->MutableGrad(pa);
        for (size_t i = 0; i < g.size(); ++i) {
          ga->at_flat(i) += 2.0 * g.at_flat(i) * in.at_flat(i);
        }
      });
}

Var Sum(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  Matrix value(1, 1);
  value(0, 0) = a.value().Sum();
  return tape->MakeNode(std::move(value), {pa}, [pa](Tape* t, size_t self) {
    const double g = (*t->MutableGrad(self))(0, 0);
    Matrix* ga = t->MutableGrad(pa);
    for (size_t i = 0; i < ga->size(); ++i) ga->at_flat(i) += g;
  });
}

Var Mean(Var a) {
  DTREC_CHECK(a.valid());
  const double n = static_cast<double>(a.value().size());
  DTREC_CHECK_GT(n, 0.0);
  return Scale(Sum(a), 1.0 / n);
}

Var FrobeniusSq(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  Matrix value(1, 1);
  value(0, 0) = a.value().FrobeniusNormSquared();
  return tape->MakeNode(std::move(value), {pa}, [pa](Tape* t, size_t self) {
    const double g = (*t->MutableGrad(self))(0, 0);
    const Matrix& in = t->ValueAt(pa);
    Matrix* ga = t->MutableGrad(pa);
    for (size_t i = 0; i < ga->size(); ++i) {
      ga->at_flat(i) += 2.0 * g * in.at_flat(i);
    }
  });
}

Var GatherRows(Var a, std::vector<size_t> rows) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  Matrix value = dtrec::GatherRows(a.value(), rows);
  return tape->MakeNode(
      std::move(value), {pa},
      [pa, rows = std::move(rows)](Tape* t, size_t self) {
        ScatterAddRows(t->MutableGrad(pa), rows, *t->MutableGrad(self));
      });
}

Var HConcat(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  DTREC_CHECK_EQ(a.value().rows(), b.value().rows());
  const size_t pa = a.id(), pb = b.id();
  const size_t a_cols = a.value().cols();
  return tape->MakeNode(
      dtrec::HConcat(a.value(), b.value()), {pa, pb},
      [pa, pb, a_cols](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        Matrix* ga = t->MutableGrad(pa);
        Matrix* gb = t->MutableGrad(pb);
        for (size_t r = 0; r < g.rows(); ++r) {
          const double* grow = g.row(r);
          double* garow = ga->row(r);
          double* gbrow = gb->row(r);
          for (size_t c = 0; c < a_cols; ++c) garow[c] += grow[c];
          for (size_t c = a_cols; c < g.cols(); ++c) {
            gbrow[c - a_cols] += grow[c];
          }
        }
      });
}

Var RowwiseDot(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  CheckSameShape(a.value(), b.value());
  const size_t pa = a.id(), pb = b.id();
  // Batched kernel with one whole-matrix finiteness check, instead of a
  // per-row RowDot each carrying its own guard.
  Matrix value = dtrec::RowwiseDot(a.value(), b.value());
  return tape->MakeNode(
      std::move(value), {pa, pb}, [pa, pb](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);  // B×1
        const Matrix& va = t->ValueAt(pa);
        const Matrix& vb = t->ValueAt(pb);
        Matrix* ga = t->MutableGrad(pa);
        Matrix* gb = t->MutableGrad(pb);
        for (size_t r = 0; r < va.rows(); ++r) {
          const double gr = g(r, 0);
          const double* arow = va.row(r);
          const double* brow = vb.row(r);
          double* garow = ga->row(r);
          double* gbrow = gb->row(r);
          for (size_t c = 0; c < va.cols(); ++c) {
            garow[c] += gr * brow[c];
            gbrow[c] += gr * arow[c];
          }
        }
      });
}

Var MulConst(Var a, const Matrix& m) {
  DTREC_CHECK(a.valid());
  CheckSameShape(a.value(), m);
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(Hadamard(a.value(), m), {pa},
                        [pa, m](Tape* t, size_t self) {
                          const Matrix& g = *t->MutableGrad(self);
                          Matrix* ga = t->MutableGrad(pa);
                          for (size_t i = 0; i < g.size(); ++i) {
                            ga->at_flat(i) += g.at_flat(i) * m.at_flat(i);
                          }
                        });
}

Var WeightedSumElems(Var a, const Matrix& w) {
  DTREC_CHECK(a.valid());
  CheckSameShape(a.value(), w);
  Tape* tape = a.tape();
  const size_t pa = a.id();
  Matrix value(1, 1);
  value(0, 0) = FlatDot(a.value(), w);
  return tape->MakeNode(std::move(value), {pa},
                        [pa, w](Tape* t, size_t self) {
                          const double g = (*t->MutableGrad(self))(0, 0);
                          Matrix* ga = t->MutableGrad(pa);
                          for (size_t i = 0; i < ga->size(); ++i) {
                            ga->at_flat(i) += g * w.at_flat(i);
                          }
                        });
}

Var Detach(Var a) {
  DTREC_CHECK(a.valid());
  return a.tape()->Constant(a.value());
}

Var AddRowBroadcast(Var a, Var row) {
  Tape* tape = CheckSameTape(a, row);
  DTREC_CHECK_EQ(row.value().rows(), 1u);
  DTREC_CHECK_EQ(row.value().cols(), a.value().cols());
  const size_t pa = a.id(), pr = row.id();
  Matrix value = a.value();
  for (size_t r = 0; r < value.rows(); ++r) {
    double* vrow = value.row(r);
    const double* bias = row.value().row(0);
    for (size_t c = 0; c < value.cols(); ++c) vrow[c] += bias[c];
  }
  return tape->MakeNode(
      std::move(value), {pa, pr}, [pa, pr](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        AddScaledInPlace(t->MutableGrad(pa), g, 1.0);
        Matrix* gr = t->MutableGrad(pr);
        for (size_t r = 0; r < g.rows(); ++r) {
          const double* grow = g.row(r);
          double* brow = gr->row(0);
          for (size_t c = 0; c < g.cols(); ++c) brow[c] += grow[c];
        }
      });
}

Var Relu(Var a) {
  DTREC_CHECK(a.valid());
  Tape* tape = a.tape();
  const size_t pa = a.id();
  return tape->MakeNode(
      Map(a.value(), [](double x) { return x > 0.0 ? x : 0.0; }), {pa},
      [pa](Tape* t, size_t self) {
        const Matrix& g = *t->MutableGrad(self);
        const Matrix& in = t->ValueAt(pa);
        Matrix* ga = t->MutableGrad(pa);
        for (size_t i = 0; i < g.size(); ++i) {
          if (in.at_flat(i) > 0.0) ga->at_flat(i) += g.at_flat(i);
        }
      });
}

Var GramFrobeniusSq(Var a, Var b) {
  Tape* tape = CheckSameTape(a, b);
  DTREC_CHECK_EQ(a.value().cols(), b.value().cols());
  const size_t pa = a.id(), pb = b.id();
  const Matrix gram_a = MatMulTransA(a.value(), a.value());  // C×C
  const Matrix gram_b = MatMulTransA(b.value(), b.value());  // C×C
  double trace = 0.0;
  for (size_t i = 0; i < gram_a.rows(); ++i) {
    for (size_t j = 0; j < gram_a.cols(); ++j) {
      trace += gram_a(i, j) * gram_b(j, i);
    }
  }
  Matrix value(1, 1);
  value(0, 0) = trace;
  return tape->MakeNode(
      std::move(value), {pa, pb},
      [pa, pb, gram_a, gram_b](Tape* t, size_t self) {
        const double g = (*t->MutableGrad(self))(0, 0);
        AddScaledInPlace(t->MutableGrad(pa),
                         dtrec::MatMul(t->ValueAt(pa), gram_b), 2.0 * g);
        AddScaledInPlace(t->MutableGrad(pb),
                         dtrec::MatMul(t->ValueAt(pb), gram_a), 2.0 * g);
      });
}

Var SigmoidBceSum(Var logits, const Matrix& targets, const Matrix& weights) {
  DTREC_CHECK(logits.valid());
  CheckSameShape(logits.value(), targets);
  CheckSameShape(logits.value(), weights);
  Tape* tape = logits.tape();
  const size_t pl = logits.id();
  const Matrix& l = logits.value();
  Matrix value(1, 1);
  double total = 0.0;
  for (size_t i = 0; i < l.size(); ++i) {
    total += weights.at_flat(i) *
             (dtrec::Log1pExp(l.at_flat(i)) -
              targets.at_flat(i) * l.at_flat(i));
  }
  value(0, 0) = total;
  return tape->MakeNode(
      std::move(value), {pl}, [pl, targets, weights](Tape* t, size_t self) {
        const double g = (*t->MutableGrad(self))(0, 0);
        const Matrix& l = t->ValueAt(pl);
        Matrix* gl = t->MutableGrad(pl);
        for (size_t i = 0; i < l.size(); ++i) {
          gl->at_flat(i) += g * weights.at_flat(i) *
                            (dtrec::Sigmoid(l.at_flat(i)) -
                             targets.at_flat(i));
        }
      });
}

}  // namespace dtrec::ag
