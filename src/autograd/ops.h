#ifndef DTREC_AUTOGRAD_OPS_H_
#define DTREC_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/tape.h"

namespace dtrec::ag {

// Differentiable ops over tape Vars. Each records a node whose backward fn
// accumulates into its parents. Shapes are validated eagerly. Both operands
// must live on the same tape.

/// c = a + b (element-wise; shapes must match).
Var Add(Var a, Var b);

/// c = a - b.
Var Sub(Var a, Var b);

/// c = a ∘ b (Hadamard).
Var Mul(Var a, Var b);

/// c = a ./ b. Caller guarantees b is bounded away from zero.
Var Div(Var a, Var b);

/// c = a / s where s is a 1×1 scalar Var broadcast over a. Caller
/// guarantees s is bounded away from zero.
Var DivScalar(Var a, Var s);

/// c = A·B (matrix product).
Var MatMul(Var a, Var b);

/// c = Aᵀ.
Var Transpose(Var a);

/// c = alpha * a.
Var Scale(Var a, double alpha);

/// c = a + alpha (element-wise scalar shift).
Var AddScalar(Var a, double alpha);

/// c = sigmoid(a), numerically stable.
Var Sigmoid(Var a);

/// c = exp(a).
Var Exp(Var a);

/// c = log(a). Caller guarantees positivity.
Var Log(Var a);

/// c = a² element-wise.
Var Square(Var a);

/// 1×1 sum of all entries.
Var Sum(Var a);

/// 1×1 mean of all entries.
Var Mean(Var a);

/// 1×1 squared Frobenius norm: Σ a_ij².
Var FrobeniusSq(Var a);

/// Gathers the listed rows; duplicates allowed. Backward scatter-adds.
Var GatherRows(Var a, std::vector<size_t> rows);

/// Horizontal concatenation [A | B].
Var HConcat(Var a, Var b);

/// Per-row dot product of two equal-shape B×K inputs -> B×1. This is the
/// matrix-factorization scoring primitive: batch of user rows · batch of
/// item rows.
Var RowwiseDot(Var a, Var b);

/// c = a ∘ m where m is a constant weight matrix (no gradient to m).
Var MulConst(Var a, const Matrix& m);

/// 1×1 Σ_ij w_ij·a_ij with constant weights w (shape of a).
Var WeightedSumElems(Var a, const Matrix& w);

/// Stops gradient: returns a constant node holding a's current value.
Var Detach(Var a);

/// c = a + 1⊗row: adds a 1×C row vector to every row of the B×C input
/// (bias broadcast for MLP layers).
Var AddRowBroadcast(Var a, Var row);

/// c = max(a, 0) element-wise; subgradient 0 at 0.
Var Relu(Var a);

/// 1×1 ‖A·Bᵀ‖_F² computed WITHOUT materializing the R_a×R_b product, via
/// the Gram identity ‖ABᵀ‖_F² = trace((AᵀA)(BᵀB)). A is R_a×C, B is
/// R_b×C (same C). Gradients: dA = 2·g·A(BᵀB), dB = 2·g·B(AᵀA).
///
/// This is the kernel behind the paper's regularization loss
/// ‖P'Q'ᵀ‖_F² + ‖P''Q''ᵀ‖_F² — the naive product is |U|×|I| and dominates
/// training time (paper Table VI); the Gram form is O((|U|+|I|)·A²).
Var GramFrobeniusSq(Var a, Var b);

/// Numerically stable weighted binary-cross-entropy on logits:
///   out = Σ_i w_i · [ log(1+e^{l_i}) − y_i·l_i ]        (1×1)
/// which equals Σ w·BCE(σ(l), y). Gradient w.r.t. logits: w·(σ(l) − y).
/// `targets` and `weights` are constants with a's shape.
Var SigmoidBceSum(Var logits, const Matrix& targets, const Matrix& weights);

}  // namespace dtrec::ag

#endif  // DTREC_AUTOGRAD_OPS_H_
