#ifndef DTREC_AUTOGRAD_GRAD_CHECK_H_
#define DTREC_AUTOGRAD_GRAD_CHECK_H_

#include <functional>

#include "tensor/matrix.h"

namespace dtrec::ag {

/// Central finite-difference gradient of a scalar function with respect to
/// `param`. `loss_fn` must recompute the loss from the *current* contents
/// of `param` each time it is called (the checker perturbs entries in
/// place and restores them).
///
/// This is the verification tool behind the autograd test-suite: every op
/// and every composite training loss is validated against it.
Matrix NumericalGradient(const std::function<double()>& loss_fn,
                         Matrix* param, double eps = 1e-5);

/// Largest absolute entry-wise difference between two gradients of equal
/// shape (∞-norm of the error).
double MaxAbsDifference(const Matrix& a, const Matrix& b);

/// Relative gradient error max_i |a_i−b_i| / max(1, max_i |b_i|); robust
/// when gradients are large.
double RelativeGradError(const Matrix& analytic, const Matrix& numeric);

}  // namespace dtrec::ag

#endif  // DTREC_AUTOGRAD_GRAD_CHECK_H_
