#ifndef DTREC_AUTOGRAD_TAPE_H_
#define DTREC_AUTOGRAD_TAPE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "tensor/matrix.h"

namespace dtrec::ag {

class Tape;

/// Lightweight handle to a node on a Tape. Copyable; valid only while the
/// owning Tape is alive and not Reset().
class Var {
 public:
  Var() = default;

  Tape* tape() const { return tape_; }
  size_t id() const { return id_; }
  bool valid() const { return tape_ != nullptr; }

  /// Value / gradient of the underlying node (convenience forwarding).
  const Matrix& value() const;
  const Matrix& grad() const;

 private:
  friend class Tape;
  Var(Tape* tape, size_t id) : tape_(tape), id_(id) {}

  Tape* tape_ = nullptr;
  size_t id_ = 0;
};

/// Records a dynamic computation graph and runs reverse-mode
/// differentiation over it.
///
/// Usage per training step:
///   Tape tape;
///   Var p = tape.Leaf(params.p);            // copies the current value in
///   Var loss = ...ops over p...;            // see autograd/ops.h
///   tape.Backward(loss);                    // fills gradients
///   optimizer.Step(&params.p, tape.GradOf(p));
///
/// Nodes are stored in creation order, which is a valid topological order
/// for a tape (every op's inputs precede it), so Backward is a single
/// reverse sweep. The Tape owns all values and gradients; Vars are indices.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Creates a leaf holding a copy of `value`. Leaves accumulate gradients
  /// like any other node; the caller reads them back after Backward().
  Var Leaf(Matrix value);

  /// Creates a constant leaf: participates in forward values but receives
  /// no gradient storage writes (its gradient stays zero and is never
  /// propagated past).
  Var Constant(Matrix value);

  /// Internal: creates an op node. `backward` is invoked during the reverse
  /// sweep with the node's accumulated output gradient available via
  /// GradOf(); it must add into the parents' gradients via MutableGrad().
  Var MakeNode(Matrix value, std::vector<size_t> parents,
               std::function<void(Tape*, size_t)> backward);

  /// Runs the reverse sweep from `loss`, which must be a 1×1 node. Seeds
  /// d(loss)/d(loss) = 1. Gradients of all reachable nodes are accumulated;
  /// call GradOf on the leaves you care about afterwards.
  void Backward(Var loss);

  const Matrix& ValueOf(Var v) const;
  const Matrix& GradOf(Var v) const;

  /// Mutable gradient buffer for node `id` (op implementations only).
  Matrix* MutableGrad(size_t id);
  const Matrix& ValueAt(size_t id) const;

  /// Number of nodes currently on the tape.
  size_t num_nodes() const { return nodes_.size(); }

  /// Drops all nodes; Vars become invalid.
  void Reset();

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // same shape as value, lazily zero-initialized
    std::vector<size_t> parents;
    std::function<void(Tape*, size_t)> backward;  // null for leaves/constants
    bool is_constant = false;
  };

  std::vector<Node> nodes_;
};

}  // namespace dtrec::ag

#endif  // DTREC_AUTOGRAD_TAPE_H_
