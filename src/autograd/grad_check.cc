#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dtrec::ag {

Matrix NumericalGradient(const std::function<double()>& loss_fn,
                         Matrix* param, double eps) {
  DTREC_CHECK(param != nullptr);
  DTREC_CHECK_GT(eps, 0.0);
  Matrix grad(param->rows(), param->cols());
  for (size_t i = 0; i < param->size(); ++i) {
    const double saved = param->at_flat(i);
    param->at_flat(i) = saved + eps;
    const double up = loss_fn();
    param->at_flat(i) = saved - eps;
    const double down = loss_fn();
    param->at_flat(i) = saved;
    grad.at_flat(i) = (up - down) / (2.0 * eps);
  }
  return grad;
}

double MaxAbsDifference(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.rows(), b.rows());
  DTREC_CHECK_EQ(a.cols(), b.cols());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.at_flat(i) - b.at_flat(i)));
  }
  return max_diff;
}

double RelativeGradError(const Matrix& analytic, const Matrix& numeric) {
  double scale = 1.0;
  for (size_t i = 0; i < numeric.size(); ++i) {
    scale = std::max(scale, std::fabs(numeric.at_flat(i)));
  }
  return MaxAbsDifference(analytic, numeric) / scale;
}

}  // namespace dtrec::ag
