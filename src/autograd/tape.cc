#include "autograd/tape.h"

#include <utility>

#include "util/logging.h"
#include "util/numeric_guard.h"

namespace dtrec::ag {

Var Tape::Leaf(Matrix value) {
  Node node;
  node.grad = Matrix(value.rows(), value.cols());
  node.value = std::move(value);
  nodes_.push_back(std::move(node));
  return Var(this, nodes_.size() - 1);
}

Var Tape::Constant(Matrix value) {
  Node node;
  node.grad = Matrix(value.rows(), value.cols());
  node.value = std::move(value);
  node.is_constant = true;
  nodes_.push_back(std::move(node));
  return Var(this, nodes_.size() - 1);
}

Var Tape::MakeNode(Matrix value, std::vector<size_t> parents,
                   std::function<void(Tape*, size_t)> backward) {
  for (size_t p : parents) DTREC_CHECK_LT(p, nodes_.size());
  Node node;
  node.grad = Matrix(value.rows(), value.cols());
  node.value = std::move(value);
  node.parents = std::move(parents);
  node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var(this, nodes_.size() - 1);
}

void Tape::Backward(Var loss) {
  DTREC_CHECK(loss.valid() && loss.tape() == this);
  DTREC_CHECK_EQ(ValueOf(loss).rows(), 1u);
  DTREC_CHECK_EQ(ValueOf(loss).cols(), 1u);

  // Mark nodes reachable from the loss so unrelated graph segments (e.g. a
  // second head built on the same tape) do not run their backward fns.
  std::vector<bool> reachable(nodes_.size(), false);
  reachable[loss.id()] = true;
  for (size_t i = loss.id() + 1; i-- > 0;) {
    if (!reachable[i]) continue;
    for (size_t p : nodes_[i].parents) reachable[p] = true;
  }

  nodes_[loss.id()].grad(0, 0) = 1.0;
  for (size_t i = loss.id() + 1; i-- > 0;) {
    Node& node = nodes_[i];
    if (!reachable[i] || node.is_constant || !node.backward) continue;
    node.backward(this, i);
    // Under numeric checks, catch a gradient going non-finite at the node
    // whose backward fn produced it rather than at the optimizer step.
    if constexpr (kNumericChecksEnabled) {
      for (size_t p : node.parents) {
        if (nodes_[p].is_constant) continue;
        DTREC_ASSERT_FINITE(nodes_[p].grad, "Tape::Backward gradient");
      }
    }
  }
}

const Matrix& Tape::ValueOf(Var v) const {
  DTREC_CHECK(v.valid() && v.tape() == this);
  DTREC_CHECK_LT(v.id(), nodes_.size());
  return nodes_[v.id()].value;
}

const Matrix& Tape::GradOf(Var v) const {
  DTREC_CHECK(v.valid() && v.tape() == this);
  DTREC_CHECK_LT(v.id(), nodes_.size());
  return nodes_[v.id()].grad;
}

Matrix* Tape::MutableGrad(size_t id) {
  DTREC_CHECK_LT(id, nodes_.size());
  return &nodes_[id].grad;
}

const Matrix& Tape::ValueAt(size_t id) const {
  DTREC_CHECK_LT(id, nodes_.size());
  return nodes_[id].value;
}

void Tape::Reset() { nodes_.clear(); }

}  // namespace dtrec::ag
