#include "synth/mnar_generator.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/math_util.h"

namespace dtrec {

const char* MissingMechanismName(MissingMechanism mechanism) {
  switch (mechanism) {
    case MissingMechanism::kMcar:
      return "MCAR";
    case MissingMechanism::kMar:
      return "MAR";
    case MissingMechanism::kMnar:
      return "MNAR";
  }
  return "?";
}

namespace {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double StarProbability(double score, int star, double noise) {
  DTREC_CHECK_GE(star, 1);
  DTREC_CHECK_LE(star, 5);
  DTREC_CHECK_GT(noise, 0.0);
  // r = clamp(round(score + eps), 1, 5): the rounding bin for star k is
  // (k-0.5, k+0.5]; stars 1 and 5 absorb the clamped tails.
  const double upper =
      star == 5 ? 1.0 : NormalCdf((star + 0.5 - score) / noise);
  const double lower =
      star == 1 ? 0.0 : NormalCdf((star - 0.5 - score) / noise);
  return upper - lower;
}

MnarGenerator::MnarGenerator(const MnarGeneratorConfig& config)
    : config_(config) {}

Status MnarGenerator::ValidateConfig() const {
  if (config_.num_users == 0 || config_.num_items == 0) {
    return Status::InvalidArgument("num_users/num_items must be positive");
  }
  if (config_.latent_dim == 0) {
    return Status::InvalidArgument("latent_dim must be positive");
  }
  if (config_.rating_noise <= 0.0) {
    return Status::InvalidArgument("rating_noise must be positive");
  }
  if (config_.test_per_user > config_.num_items) {
    return Status::InvalidArgument(
        "test_per_user cannot exceed num_items");
  }
  if (config_.binarize_threshold < 1.0 || config_.binarize_threshold > 5.0) {
    return Status::InvalidArgument(
        "binarize_threshold must lie in [1, 5]");
  }
  return Status::OK();
}

SimulatedData MnarGenerator::Generate() const {
  DTREC_CHECK(ValidateConfig().ok()) << ValidateConfig().ToString();
  const size_t m = config_.num_users;
  const size_t n = config_.num_items;
  Rng rng(config_.seed);

  // Latent world: preference factors (feature channel) and independent
  // auxiliary factors (Assumption 1's z channel).
  Matrix theta =
      Matrix::RandomNormal(m, config_.latent_dim, config_.latent_scale, &rng);
  Matrix phi =
      Matrix::RandomNormal(n, config_.latent_dim, config_.latent_scale, &rng);
  Matrix a = Matrix::RandomNormal(m, 1, config_.aux_latent_scale, &rng);
  Matrix b = Matrix::RandomNormal(n, 1, config_.aux_latent_scale, &rng);

  MnarOracle oracle;
  oracle.star_score = MatMulTransB(theta, phi);
  for (size_t i = 0; i < oracle.star_score.size(); ++i) {
    oracle.star_score.at_flat(i) += config_.rating_mean;
  }
  oracle.aux_score = MatMulTransB(a, b);

  // Realize every star rating (the simulator knows the full matrix).
  oracle.star_rating = Matrix(m, n);
  oracle.label = Matrix(m, n);
  oracle.positive_prob = Matrix(m, n);
  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      const double s = oracle.star_score(u, i);
      double noisy = s + rng.Normal(0.0, config_.rating_noise);
      double star = std::round(noisy);
      star = Clamp(star, 1.0, 5.0);
      oracle.star_rating(u, i) = star;
      oracle.label(u, i) = star >= config_.binarize_threshold ? 1.0 : 0.0;
      double pos = 0.0;
      for (int k = 1; k <= 5; ++k) {
        if (static_cast<double>(k) >= config_.binarize_threshold) {
          pos += StarProbability(s, k, config_.rating_noise);
        }
      }
      oracle.positive_prob(u, i) = pos;
    }
  }

  // Selection model: separable logistic (Theorem 1). The MNAR propensity
  // plugs in the realized rating; the MAR propensity marginalizes the
  // rating out under P(r | x).
  oracle.mnar_propensity = Matrix(m, n);
  oracle.mar_propensity = Matrix(m, n);
  const bool use_features = config_.mechanism != MissingMechanism::kMcar;
  const bool use_rating = config_.mechanism == MissingMechanism::kMnar;
  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      double base = config_.base_logit;
      if (use_features) {
        base += config_.feature_coef *
                    (oracle.star_score(u, i) - config_.rating_mean) +
                config_.aux_coef * oracle.aux_score(u, i);
      }
      if (use_rating) {
        oracle.mnar_propensity(u, i) = Sigmoid(
            base + config_.rating_coef * (oracle.star_rating(u, i) - 3.0));
        double marginal = 0.0;
        for (int k = 1; k <= 5; ++k) {
          marginal +=
              StarProbability(oracle.star_score(u, i), k,
                              config_.rating_noise) *
              Sigmoid(base + config_.rating_coef * (k - 3.0));
        }
        oracle.mar_propensity(u, i) = marginal;
      } else {
        const double p = Sigmoid(base);
        oracle.mnar_propensity(u, i) = p;
        oracle.mar_propensity(u, i) = p;
      }
    }
  }
  oracle.mcar_propensity = oracle.mar_propensity.Mean();

  // Realize the training observations and the MCAR test slice.
  SimulatedData out;
  out.dataset = RatingDataset(m, n);
  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(oracle.mnar_propensity(u, i))) {
        out.dataset.AddTrain(static_cast<uint32_t>(u),
                             static_cast<uint32_t>(i), oracle.label(u, i));
      }
    }
    for (size_t idx :
         rng.SampleWithoutReplacement(n, config_.test_per_user)) {
      out.dataset.AddTest(static_cast<uint32_t>(u),
                          static_cast<uint32_t>(idx),
                          oracle.label(u, idx));
    }
  }

  if (config_.keep_oracle) out.oracle = std::move(oracle);
  return out;
}

Matrix SampleObservationMask(const Matrix& propensity, Rng* rng) {
  DTREC_CHECK(rng != nullptr);
  Matrix mask(propensity.rows(), propensity.cols());
  for (size_t i = 0; i < propensity.size(); ++i) {
    mask.at_flat(i) = rng->Bernoulli(propensity.at_flat(i)) ? 1.0 : 0.0;
  }
  return mask;
}

}  // namespace dtrec
