#ifndef DTREC_SYNTH_COAT_LIKE_H_
#define DTREC_SYNTH_COAT_LIKE_H_

#include <cstdint>

#include "synth/mnar_generator.h"

namespace dtrec {

/// Coat-shaped simulated dataset: 290 users × 300 items, ~24 MNAR training
/// ratings per user and 16 MCAR test ratings per user, 5-star ratings
/// binarized at 3 — the shape/protocol of the real Coat shopping dataset
/// the paper evaluates on.
///
/// `seed` controls the world and the realization; `keep_oracle` retains
/// ground-truth propensities for oracle experiments.
SimulatedData MakeCoatLike(uint64_t seed, bool keep_oracle = false);

/// The exact generator config used by MakeCoatLike; exposed so experiments
/// can perturb single knobs (e.g. sparsity sweeps in Figure 5).
MnarGeneratorConfig CoatLikeConfig(uint64_t seed);

}  // namespace dtrec

#endif  // DTREC_SYNTH_COAT_LIKE_H_
