#include "synth/movielens_like.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dtrec {

double StandardizeToEta(double gamma, double gamma_min, double gamma_max,
                        double epsilon) {
  DTREC_CHECK_GT(gamma_max, gamma_min);
  const double normalized = (gamma - gamma_min) / (gamma_max - gamma_min);
  return epsilon + (1.0 - epsilon) * normalized;
}

MovieLensLikeGenerator::MovieLensLikeGenerator(
    const SemiSyntheticConfig& config)
    : config_(config) {}

Status MovieLensLikeGenerator::ValidateConfig() const {
  if (config_.num_users == 0 || config_.num_items == 0) {
    return Status::InvalidArgument("num_users/num_items must be positive");
  }
  if (config_.epsilon < 0.0 || config_.epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must lie in [0, 1]");
  }
  if (config_.rho <= 0.0) {
    return Status::InvalidArgument("rho must be positive");
  }
  if (config_.latent_dim == 0) {
    return Status::InvalidArgument("latent_dim must be positive");
  }
  return Status::OK();
}

namespace {

/// Paper Step 1 (optional): fit a plain MF teacher to an observed MNAR
/// slice of the world by SGD on squared loss, then score every pair.
/// Self-contained so synth/ has no dependency on the trainer stack.
Matrix FitTeacherScores(const Matrix& true_scores,
                        const SemiSyntheticConfig& config, Rng* rng) {
  const size_t m = true_scores.rows();
  const size_t n = true_scores.cols();
  const size_t dim = config.latent_dim;

  // Sample the observed slice with popularity-skewed noise so the teacher
  // sees an ML-100K-like MNAR subset.
  struct Entry {
    size_t u, i;
    double r;
  };
  std::vector<Entry> observed;
  observed.reserve(config.teacher_observed);
  const size_t total = m * n;
  for (size_t k = 0; k < config.teacher_observed; ++k) {
    const size_t cell = rng->UniformIndex(total);
    const size_t u = cell / n;
    const size_t i = cell % n;
    // Keep higher-rated cells more often (self-selection).
    const double star = Clamp(
        std::round(true_scores(u, i) + rng->Normal(0.0, 0.7)), 1.0, 5.0);
    if (!rng->Bernoulli(Sigmoid(-1.0 + 0.8 * (star - 3.0)))) continue;
    observed.push_back({u, i, star});
  }

  Matrix p = Matrix::RandomNormal(m, dim, 0.1, rng);
  Matrix q = Matrix::RandomNormal(n, dim, 0.1, rng);
  double mu = 3.0;
  for (size_t epoch = 0; epoch < config.teacher_epochs; ++epoch) {
    for (const auto& e : observed) {
      const double pred = mu + RowDot(p, e.u, q, e.i);
      const double err = pred - e.r;
      double* pu = p.row(e.u);
      double* qi = q.row(e.i);
      for (size_t d = 0; d < dim; ++d) {
        const double pu_d = pu[d];
        pu[d] -= config.teacher_lr * (err * qi[d] + 1e-4 * pu_d);
        qi[d] -= config.teacher_lr * (err * pu_d + 1e-4 * qi[d]);
      }
      mu -= 0.1 * config.teacher_lr * err;
    }
  }

  Matrix scores = MatMulTransB(p, q);
  for (size_t i = 0; i < scores.size(); ++i) scores.at_flat(i) += mu;
  return scores;
}

}  // namespace

SemiSyntheticData MovieLensLikeGenerator::Generate() const {
  DTREC_CHECK(ValidateConfig().ok()) << ValidateConfig().ToString();
  const size_t m = config_.num_users;
  const size_t n = config_.num_items;
  Rng rng(config_.seed);

  // Ground-truth preference scores in star units.
  Matrix theta =
      Matrix::RandomNormal(m, config_.latent_dim, config_.latent_scale, &rng);
  Matrix phi =
      Matrix::RandomNormal(n, config_.latent_dim, config_.latent_scale, &rng);
  Matrix gamma = MatMulTransB(theta, phi);
  for (size_t i = 0; i < gamma.size(); ++i) {
    gamma.at_flat(i) = Clamp(gamma.at_flat(i) + 3.0, 0.0, 5.0);
  }

  if (config_.fit_teacher) {
    gamma = FitTeacherScores(gamma, config_, &rng);
    for (size_t i = 0; i < gamma.size(); ++i) {
      gamma.at_flat(i) = Clamp(gamma.at_flat(i), 0.0, 5.0);
    }
  }

  const double gamma_min = gamma.Min();
  const double gamma_max = gamma.Max();
  DTREC_CHECK_GT(gamma_max, gamma_min);

  SemiSyntheticData out;
  out.eta = Matrix(m, n);
  out.propensity = Matrix(m, n);
  out.conversion = Matrix(m, n);
  out.observation = Matrix(m, n);
  out.dataset = RatingDataset(m, n);

  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      // Step 1 (Eq. 11): conversion probability.
      const double eta =
          StandardizeToEta(gamma(u, i), gamma_min, gamma_max,
                           config_.epsilon);
      out.eta(u, i) = eta;
      // Step 2: observation probability — deterministic function of η, so
      // o and r are strongly correlated through the conversion channel.
      const double p = std::pow(std::exp2(eta) - 1.0, config_.rho);
      out.propensity(u, i) = Clamp(p, 0.0, 1.0);
      // Step 3: realize r and o.
      const double r = rng.Bernoulli(eta) ? 1.0 : 0.0;
      const double o = rng.Bernoulli(out.propensity(u, i)) ? 1.0 : 0.0;
      out.conversion(u, i) = r;
      out.observation(u, i) = o;
      if (o == 1.0) {
        out.dataset.AddTrain(static_cast<uint32_t>(u),
                             static_cast<uint32_t>(i), r);
      }
    }
  }

  // Test split: realized conversions over the full matrix would be huge to
  // rank, so keep every item for a deterministic subset of users (enough
  // for NDCG@50 with tight error bars) — the pointwise metrics in the
  // harness use the dense matrices directly.
  const size_t test_users = std::min<size_t>(m, 200);
  for (size_t u = 0; u < test_users; ++u) {
    for (size_t i = 0; i < n; ++i) {
      out.dataset.AddTest(static_cast<uint32_t>(u), static_cast<uint32_t>(i),
                          out.conversion(u, i));
    }
  }
  return out;
}

}  // namespace dtrec
