#ifndef DTREC_SYNTH_YAHOO_LIKE_H_
#define DTREC_SYNTH_YAHOO_LIKE_H_

#include <cstdint>

#include "synth/mnar_generator.h"

namespace dtrec {

/// Yahoo! R3-shaped simulated dataset. The real dataset has 15,400 users ×
/// 1,000 items with ~312k MNAR train ratings (2% density) and 54k MCAR
/// test ratings. `scale` shrinks the user axis (scale=1.0 is full size;
/// the default 0.1 gives 1,540 users, preserving density and protocol) so
/// the full benchmark suite stays laptop-fast.
SimulatedData MakeYahooLike(uint64_t seed, double scale = 0.1,
                            bool keep_oracle = false);

MnarGeneratorConfig YahooLikeConfig(uint64_t seed, double scale = 0.1);

}  // namespace dtrec

#endif  // DTREC_SYNTH_YAHOO_LIKE_H_
