#include "synth/kuairec_like.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dtrec {

Status ValidateKuaiRecConfig(const KuaiRecLikeConfig& config) {
  if (config.scale <= 0.0 || config.scale > 1.0) {
    return Status::InvalidArgument("scale must lie in (0, 1]");
  }
  if (config.latent_dim == 0) {
    return Status::InvalidArgument("latent_dim must be positive");
  }
  if (config.ratio_noise <= 0.0) {
    return Status::InvalidArgument("ratio_noise must be positive");
  }
  if (config.test_user_fraction <= 0.0 || config.test_user_fraction > 1.0 ||
      config.test_item_fraction <= 0.0 || config.test_item_fraction > 1.0) {
    return Status::InvalidArgument("test fractions must lie in (0, 1]");
  }
  return Status::OK();
}

KuaiRecLikeData MakeKuaiRecLike(const KuaiRecLikeConfig& config) {
  const Status st = ValidateKuaiRecConfig(config);
  DTREC_CHECK(st.ok()) << st.ToString();
  const size_t m = std::max<size_t>(
      60, static_cast<size_t>(7176.0 * config.scale));
  const size_t n = std::max<size_t>(
      80, static_cast<size_t>(10728.0 * config.scale));
  Rng rng(config.seed);

  Matrix theta = Matrix::RandomNormal(m, config.latent_dim, 0.35, &rng);
  Matrix phi = Matrix::RandomNormal(n, config.latent_dim, 0.35, &rng);
  Matrix a = Matrix::RandomNormal(m, 1, 0.6, &rng);
  Matrix b = Matrix::RandomNormal(n, 1, 0.6, &rng);
  Matrix score = MatMulTransB(theta, phi);
  Matrix aux = MatMulTransB(a, b);

  KuaiRecLikeData out;
  out.dataset = RatingDataset(m, n);
  if (config.keep_oracle) {
    out.watch_ratio = Matrix(m, n);
    out.mnar_propensity = Matrix(m, n);
    out.positive_prob = Matrix(m, n);
  }

  // Fully-observed unbiased test block: a contiguous slab of users/items,
  // mirroring KuaiRec's exhaustively-labeled small matrix.
  const size_t test_users = std::max<size_t>(
      1, static_cast<size_t>(config.test_user_fraction *
                             static_cast<double>(m)));
  const size_t test_items = std::max<size_t>(
      1, static_cast<size_t>(config.test_item_fraction *
                             static_cast<double>(n)));

  for (size_t u = 0; u < m; ++u) {
    for (size_t i = 0; i < n; ++i) {
      // Watch ratio: lognormal-style around the preference score, centered
      // so the median cell sits a bit below ratio 1.0 (most videos are not
      // watched to completion).
      const double mu = 0.65 * score(u, i) - 0.25;
      const double ratio =
          std::exp(mu + rng.Normal(0.0, config.ratio_noise));
      const double label = ratio >= 1.0 ? 1.0 : 0.0;

      const double logit = config.base_logit +
                           config.feature_coef * score(u, i) +
                           config.aux_coef * aux(u, i) +
                           config.ratio_coef * (std::min(ratio, 3.0) - 1.0);
      const double p = Sigmoid(logit);

      if (config.keep_oracle) {
        out.watch_ratio(u, i) = ratio;
        out.mnar_propensity(u, i) = p;
        // P(label=1 | x) = P(exp(mu + noise) >= 1) = Φ(mu / noise).
        out.positive_prob(u, i) =
            0.5 * std::erfc(-(mu / config.ratio_noise) / std::sqrt(2.0));
      }

      if (rng.Bernoulli(p)) {
        out.dataset.AddTrain(static_cast<uint32_t>(u),
                             static_cast<uint32_t>(i), label);
      }
      if (u < test_users && i < test_items) {
        out.dataset.AddTest(static_cast<uint32_t>(u),
                            static_cast<uint32_t>(i), label);
      }
    }
  }
  return out;
}

KuaiRecLikeData MakeKuaiRecLike(uint64_t seed, double scale,
                                bool keep_oracle) {
  KuaiRecLikeConfig config;
  config.seed = seed;
  config.scale = scale;
  config.keep_oracle = keep_oracle;
  return MakeKuaiRecLike(config);
}

}  // namespace dtrec
