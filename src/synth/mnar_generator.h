#ifndef DTREC_SYNTH_MNAR_GENERATOR_H_
#define DTREC_SYNTH_MNAR_GENERATOR_H_

#include <cstdint>

#include "data/rating_dataset.h"
#include "tensor/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace dtrec {

/// The three missing-data mechanisms formalized in the paper (Section III).
enum class MissingMechanism {
  kMcar,  ///< P(o=1) constant: o ⟂ (x, r)
  kMar,   ///< P(o=1|x): depends on features only
  kMnar,  ///< P(o=1|x, r): depends on features and the realized rating
};

const char* MissingMechanismName(MissingMechanism mechanism);

/// Configuration of the low-rank MNAR world model.
///
/// The generator materializes a complete ground-truth world:
///   star score  s_ui = rating_mean + θ_u·φ_i            (feature channel x)
///   aux score   z_ui = a_u·b_i                          (auxiliary channel z)
///   star rating r_ui = clamp(round(s_ui + ε), 1, 5),    ε ~ N(0, rating_noise)
///   selection   P(o=1|·) = σ(base_logit
///                            + feature_coef·s̃_ui        [MAR, MNAR]
///                            + aux_coef·z_ui             [MAR, MNAR]
///                            + rating_coef·(r_ui−3))     [MNAR only]
/// with s̃ the score centered at rating_mean. The auxiliary channel z is a
/// deterministic function of the user/item identities (not of the realized
/// rating), so it satisfies the paper's Assumption 1: z ⟂ r | x and
/// z ⟂̸ o | x. The selection model is exactly the separable-logistic
/// mechanism of Theorem 1 (no z·r interaction), hence identifiable.
struct MnarGeneratorConfig {
  size_t num_users = 290;
  size_t num_items = 300;
  size_t latent_dim = 8;
  double latent_scale = 0.55;      ///< stddev of latent factor entries
  double aux_latent_scale = 0.6;   ///< stddev of auxiliary latent entries
  double rating_mean = 2.4;
  double rating_noise = 0.8;

  MissingMechanism mechanism = MissingMechanism::kMnar;
  double base_logit = -2.2;
  double feature_coef = 0.6;
  double aux_coef = 0.8;
  double rating_coef = 0.8;

  size_t test_per_user = 16;        ///< MCAR test ratings per user
  double binarize_threshold = 3.0;  ///< stars >= threshold -> label 1
  bool keep_oracle = true;
  uint64_t seed = 42;
};

/// Ground-truth quantities the simulator knows but a recommender never
/// observes. Used by the oracle experiments (Table I, Lemma 1/2 property
/// tests) and for computing ideal-loss references.
struct MnarOracle {
  Matrix star_score;       ///< s_ui
  Matrix aux_score;        ///< z_ui
  Matrix star_rating;      ///< realized r_ui ∈ {1..5}, every cell
  Matrix label;            ///< binarized realized rating, every cell
  Matrix positive_prob;    ///< P(label=1 | x) per cell
  Matrix mnar_propensity;  ///< P(o=1 | x, z, realized r) per cell
  Matrix mar_propensity;   ///< P(o=1 | x, z) = E_r[MNAR propensity | x]
  double mcar_propensity = 0.0;  ///< P(o=1) marginal

  bool has_data() const { return !star_score.empty(); }
};

/// A simulated dataset plus (optionally) its oracle.
struct SimulatedData {
  RatingDataset dataset;
  MnarOracle oracle;
};

/// Low-rank world simulator with a switchable missing mechanism.
class MnarGenerator {
 public:
  explicit MnarGenerator(const MnarGeneratorConfig& config);

  /// Validates the configuration (dimensions, probabilities, noise > 0).
  Status ValidateConfig() const;

  /// Builds the full world and samples one train/test realization.
  /// The dataset's train split holds *binarized* labels of observed cells;
  /// the test split holds binarized labels of `test_per_user` MCAR cells
  /// per user (disjointness from train is not required — test ratings come
  /// from the separate unbiased collection, as with Coat/Yahoo).
  SimulatedData Generate() const;

  const MnarGeneratorConfig& config() const { return config_; }

 private:
  MnarGeneratorConfig config_;
};

/// P(star = k | score s) for k in 1..5 under the rounding+clamping noise
/// model above. Exposed for tests and for the oracle MAR propensity.
double StarProbability(double score, int star, double noise);

/// Samples a fresh observation mask o_ui ~ Bern(propensity_ui); used by the
/// Table I bias experiment to average over observation realizations while
/// holding the ratings fixed.
Matrix SampleObservationMask(const Matrix& propensity, Rng* rng);

}  // namespace dtrec

#endif  // DTREC_SYNTH_MNAR_GENERATOR_H_
