#ifndef DTREC_SYNTH_KUAIREC_LIKE_H_
#define DTREC_SYNTH_KUAIREC_LIKE_H_

#include <cstdint>

#include "data/rating_dataset.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec {

/// Configuration of the KuaiRec-shaped industrial-scale simulation.
///
/// KuaiRec records *watch ratios* (play duration / video duration) of
/// 7,176 users × 10,728 short videos, ~16% dense and MNAR (the platform
/// and the users decide what gets watched); a fully-observed small block
/// serves as the unbiased test set. Ratios < 1 are clipped to 0, else 1
/// (paper Section VI). `scale` shrinks both axes; 1.0 is full size.
struct KuaiRecLikeConfig {
  double scale = 0.1;
  size_t latent_dim = 8;
  double ratio_noise = 0.35;    ///< lognormal-ish watch-ratio noise
  double base_logit = -1.9;     ///< tunes the ~16% observed density
  double feature_coef = 0.7;
  double aux_coef = 0.8;
  double ratio_coef = 1.1;      ///< MNAR: realized watch ratio drives o
  double test_user_fraction = 0.2;  ///< fully-observed test block (users)
  double test_item_fraction = 0.3;  ///< fully-observed test block (items)
  bool keep_oracle = false;
  uint64_t seed = 11;
};

/// KuaiRec-shaped output. `watch_ratio` is the full realized matrix (kept
/// only with keep_oracle); the dataset carries binarized labels.
struct KuaiRecLikeData {
  RatingDataset dataset;
  Matrix watch_ratio;       ///< realized ratio per cell (oracle only)
  Matrix mnar_propensity;   ///< P(o=1 | x, realized ratio) (oracle only)
  Matrix positive_prob;     ///< P(label=1 | x) (oracle only)
};

Status ValidateKuaiRecConfig(const KuaiRecLikeConfig& config);

KuaiRecLikeData MakeKuaiRecLike(const KuaiRecLikeConfig& config);

/// Convenience: default config at `scale` with the given seed.
KuaiRecLikeData MakeKuaiRecLike(uint64_t seed, double scale = 0.1,
                                bool keep_oracle = false);

}  // namespace dtrec

#endif  // DTREC_SYNTH_KUAIREC_LIKE_H_
