#include "synth/yahoo_like.h"

#include <algorithm>

#include "util/logging.h"

namespace dtrec {

MnarGeneratorConfig YahooLikeConfig(uint64_t seed, double scale) {
  DTREC_CHECK_GT(scale, 0.0);
  DTREC_CHECK_LE(scale, 1.0);
  MnarGeneratorConfig config;
  config.num_users = std::max<size_t>(
      50, static_cast<size_t>(15400.0 * scale));
  config.num_items = 1000;
  config.latent_dim = 8;
  config.latent_scale = 0.55;
  config.mechanism = MissingMechanism::kMnar;
  // ~2% observed density (312k of 15.4M cells in the real data).
  config.base_logit = -4.1;
  config.feature_coef = 0.6;
  config.aux_coef = 0.9;
  config.rating_coef = 0.9;
  // 54k test ratings over 15.4k users ≈ 3.5 per user; we keep a richer 10
  // per user so NDCG@5 / Recall@5 rank a non-trivial candidate list.
  config.test_per_user = 10;
  config.binarize_threshold = 3.0;
  config.seed = seed;
  return config;
}

SimulatedData MakeYahooLike(uint64_t seed, double scale, bool keep_oracle) {
  MnarGeneratorConfig config = YahooLikeConfig(seed, scale);
  config.keep_oracle = keep_oracle;
  return MnarGenerator(config).Generate();
}

}  // namespace dtrec
