#include "synth/coat_like.h"

namespace dtrec {

MnarGeneratorConfig CoatLikeConfig(uint64_t seed) {
  MnarGeneratorConfig config;
  config.num_users = 290;
  config.num_items = 300;
  config.latent_dim = 8;
  config.latent_scale = 0.55;
  config.mechanism = MissingMechanism::kMnar;
  // base_logit tuned so the expected observed count per user is ~24 of 300
  // (8% density), matching Coat's 6,960 MNAR ratings.
  config.base_logit = -2.6;
  config.feature_coef = 0.5;
  config.aux_coef = 0.8;
  config.rating_coef = 0.8;
  config.test_per_user = 16;  // Coat's 4,640 MAR ratings = 16 per user
  config.binarize_threshold = 3.0;
  config.seed = seed;
  return config;
}

SimulatedData MakeCoatLike(uint64_t seed, bool keep_oracle) {
  MnarGeneratorConfig config = CoatLikeConfig(seed);
  config.keep_oracle = keep_oracle;
  return MnarGenerator(config).Generate();
}

}  // namespace dtrec
