#ifndef DTREC_SYNTH_MOVIELENS_LIKE_H_
#define DTREC_SYNTH_MOVIELENS_LIKE_H_

#include <cstdint>

#include "data/rating_dataset.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec {

/// Configuration of the semi-synthetic ML-100K pipeline (paper Section V).
///
/// The paper seeds the pipeline with an MF model fit to the MovieLens-100K
/// ratings and then *discards the data*, keeping only the generated scores
/// γ_ui. We reproduce the pipeline from Step 1's output onwards:
///
///   Step 1. γ_ui ∈ [0,5]: either ground-truth low-rank scores (default,
///           deterministic) or an MF teacher fit to a sampled MNAR slice
///           of the world (fit_teacher = true, closer to the paper's
///           setup). η_ui = ε + (1−ε)·(γ−γmin)/(γmax−γmin)   (Eq. 11)
///   Step 2. p_ui = (2^{η_ui} − 1)^ρ
///   Step 3. r_ui ~ Bern(η_ui), o_ui ~ Bern(p_ui)
///
/// ρ controls sparsity and the strength of the r→o channel (MNAR-ness);
/// ε controls heterogeneity noise. Both are the paper's sweep axes
/// (Table III over ρ, Figure 3 over ε).
struct SemiSyntheticConfig {
  size_t num_users = 943;   ///< ML-100K shape
  size_t num_items = 1682;  ///< ML-100K shape
  size_t latent_dim = 8;
  double latent_scale = 0.4;
  double epsilon = 0.3;  ///< noise hyper-parameter of Eq. (11)
  double rho = 1.0;      ///< sparsity/correlation hyper-parameter of Step 2

  bool fit_teacher = false;   ///< run the paper's Step 1 MF fit
  size_t teacher_observed = 100000;  ///< size of the sampled MNAR slice
  size_t teacher_epochs = 15;
  double teacher_lr = 0.05;

  uint64_t seed = 7;
};

/// Full semi-synthetic world: the trainers see only `dataset`; the
/// evaluation (Table III / Figure 3) scores predictions against the true
/// conversion probabilities `eta` and realized conversions `conversion`.
struct SemiSyntheticData {
  RatingDataset dataset;  ///< train: observed binary conversions; test: all
                          ///< cells of a sampled user subset (for NDCG)
  Matrix eta;             ///< η: P(r=1 | x) per cell
  Matrix propensity;      ///< p = (2^η − 1)^ρ per cell
  Matrix conversion;      ///< realized r per cell
  Matrix observation;     ///< realized o mask per cell
};

/// Generator for the semi-synthetic ML-100K experiment.
class MovieLensLikeGenerator {
 public:
  explicit MovieLensLikeGenerator(const SemiSyntheticConfig& config);

  Status ValidateConfig() const;

  SemiSyntheticData Generate() const;

  const SemiSyntheticConfig& config() const { return config_; }

 private:
  SemiSyntheticConfig config_;
};

/// Eq. (11): standardizes clipped scores into conversion probabilities.
/// Exposed for unit tests. Requires gamma_max > gamma_min.
double StandardizeToEta(double gamma, double gamma_min, double gamma_max,
                        double epsilon);

}  // namespace dtrec

#endif  // DTREC_SYNTH_MOVIELENS_LIKE_H_
