#ifndef DTREC_DIAGNOSTICS_MNAR_DIAGNOSTICS_H_
#define DTREC_DIAGNOSTICS_MNAR_DIAGNOSTICS_H_

#include <string>

#include "data/rating_dataset.h"
#include "util/status.h"

namespace dtrec {

/// Two-proportion z-test: H0: p1 == p2 against a two-sided alternative,
/// with pooled variance. Inputs are success counts and sample sizes.
struct TwoProportionResult {
  double p1 = 0.0;
  double p2 = 0.0;
  double z = 0.0;
  double p_value = 1.0;  ///< two-sided
};

Result<TwoProportionResult> TwoProportionZTest(double successes1, double n1,
                                               double successes2, double n2);

/// Data-driven MNAR diagnosis (Section III's practical question: "is my
/// logged data MNAR?").
///
/// Compares the positive-rating rate among *observed* (biased train)
/// interactions against the rate in the *unbiased* (MCAR test) slice. If
/// observation were independent of the rating given nothing (MCAR) — or
/// if the user/item features driving observation were uninformative about
/// the rating — the two rates would match; a significant gap is direct
/// evidence that the selection mechanism is coupled to the rating, i.e.
/// the MAR propensity is insufficient and methods like DT-IPS/DT-DR are
/// warranted. Requires binarized ratings and a non-empty test slice.
struct MnarDiagnosis {
  double observed_positive_rate = 0.0;   ///< P(r=1 | o=1), train
  double unbiased_positive_rate = 0.0;   ///< P(r=1), MCAR slice
  double z = 0.0;
  double p_value = 1.0;
  bool selection_bias_detected = false;  ///< p <= alpha

  /// Human-readable verdict, e.g. "SELECTION BIAS: observed positives
  /// 62.1% vs unbiased 40.3% (z=21.4, p<0.001)".
  std::string Summary() const;
};

Result<MnarDiagnosis> DiagnoseSelectionBias(const RatingDataset& dataset,
                                            double alpha = 0.05);

}  // namespace dtrec

#endif  // DTREC_DIAGNOSTICS_MNAR_DIAGNOSTICS_H_
