#include "diagnostics/mnar_diagnostics.h"

#include <cmath>

#include "util/string_util.h"

namespace dtrec {
namespace {

double StdNormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

Result<TwoProportionResult> TwoProportionZTest(double successes1, double n1,
                                               double successes2,
                                               double n2) {
  if (n1 <= 0.0 || n2 <= 0.0) {
    return Status::InvalidArgument("sample sizes must be positive");
  }
  if (successes1 < 0.0 || successes1 > n1 || successes2 < 0.0 ||
      successes2 > n2) {
    return Status::InvalidArgument("success counts out of range");
  }
  TwoProportionResult result;
  result.p1 = successes1 / n1;
  result.p2 = successes2 / n2;
  const double pooled = (successes1 + successes2) / (n1 + n2);
  const double variance = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
  if (variance <= 0.0) {
    return Status::FailedPrecondition(
        "degenerate pooled proportion (all successes or all failures)");
  }
  result.z = (result.p1 - result.p2) / std::sqrt(variance);
  result.p_value = 2.0 * (1.0 - StdNormalCdf(std::fabs(result.z)));
  return result;
}

std::string MnarDiagnosis::Summary() const {
  const char* verdict =
      selection_bias_detected ? "SELECTION BIAS" : "no significant bias";
  return StrFormat(
      "%s: observed positives %.1f%% vs unbiased %.1f%% (z=%.2f, p=%.4g)",
      verdict, 100.0 * observed_positive_rate,
      100.0 * unbiased_positive_rate, z, p_value);
}

Result<MnarDiagnosis> DiagnoseSelectionBias(const RatingDataset& dataset,
                                            double alpha) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.test().empty()) {
    return Status::FailedPrecondition(
        "diagnosis needs an unbiased test slice");
  }
  for (const auto& t : dataset.train()) {
    if (t.rating != 0.0 && t.rating != 1.0) {
      return Status::InvalidArgument(
          "diagnosis requires binarized ratings");
    }
  }
  double train_pos = 0.0;
  for (const auto& t : dataset.train()) train_pos += t.rating;
  double test_pos = 0.0;
  for (const auto& t : dataset.test()) test_pos += t.rating >= 0.5 ? 1 : 0;

  auto test = TwoProportionZTest(
      train_pos, static_cast<double>(dataset.train().size()), test_pos,
      static_cast<double>(dataset.test().size()));
  if (!test.ok()) return test.status();

  MnarDiagnosis diagnosis;
  diagnosis.observed_positive_rate = test.value().p1;
  diagnosis.unbiased_positive_rate = test.value().p2;
  diagnosis.z = test.value().z;
  diagnosis.p_value = test.value().p_value;
  diagnosis.selection_bias_detected = test.value().p_value <= alpha;
  return diagnosis;
}

}  // namespace dtrec
