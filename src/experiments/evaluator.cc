#include "experiments/evaluator.h"

#include <algorithm>

#include "metrics/pointwise.h"
#include "util/stopwatch.h"

namespace dtrec {

RankingMetrics EvaluateRanking(const RecommenderTrainer& trainer,
                               const RatingDataset& dataset, size_t k,
                               double positive_threshold) {
  const std::vector<double> predictions =
      trainer.PredictMany(dataset.test());
  return ComputeRankingMetrics(dataset.test(), predictions, k,
                               positive_threshold);
}

SemiSyntheticMetrics EvaluateSemiSynthetic(const RecommenderTrainer& trainer,
                                           const SemiSyntheticData& data) {
  SemiSyntheticMetrics out;
  const Matrix predictions = trainer.PredictFullMatrix(
      data.eta.rows(), data.eta.cols());
  out.mse = MeanSquaredError(predictions, data.eta);
  out.mae = MeanAbsoluteError(predictions, data.eta);

  const std::vector<double> test_predictions =
      trainer.PredictMany(data.dataset.test());
  // Semi-synthetic conversions are realized Bernoulli draws in {0, 1}.
  const RankingMetrics ranking = ComputeRankingMetrics(
      data.dataset.test(), test_predictions, 50, /*positive_threshold=*/0.5);
  out.ndcg_at_50 = ranking.ndcg_at_k;
  return out;
}

double MeasureInferenceMillisPerSample(const RecommenderTrainer& trainer,
                                       const RatingDataset& dataset,
                                       size_t max_samples) {
  const size_t n = std::min(dataset.test().size(), max_samples);
  if (n == 0) return 0.0;
  Stopwatch watch;
  double checksum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const RatingTriple& t = dataset.test()[i];
    checksum += trainer.Predict(t.user, t.item);
  }
  const double elapsed_ms = watch.ElapsedMillis();
  // Keep the loop from being optimized out.
  if (checksum < -1.0) return -1.0;
  return elapsed_ms / static_cast<double>(n);
}

}  // namespace dtrec
