#include "experiments/runner.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>

#include "baselines/registry.h"
#include "metrics/ttest.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace dtrec {
namespace {

/// Best-effort mkdir -p limited to the two levels the sweep layout needs.
void EnsureDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    ::mkdir(path.substr(0, slash).c_str(), 0755);
  }
  ::mkdir(path.c_str(), 0755);
}

/// Directory-safe method slug ("DT-IPS" stays, '/' would break paths).
std::string MethodSlug(const std::string& method) {
  std::string slug = method;
  for (char& c : slug) {
    if (c == '/' || c == ' ') c = '_';
  }
  return slug;
}

/// One training run with crash-retry: a FailpointAbort (the simulated
/// SIGKILL) is caught and the run restarted with resume=true, picking up
/// at the last checkpointed epoch. Real crashes obviously cannot be caught
/// here — for those the *next process* passes resume=true via the CLI.
Status FitWithRetry(RecommenderTrainer* trainer, const RatingDataset& dataset,
                    const ComparisonOptions& options,
                    const std::string& run_dir) {
  FitOptions fit_options;
  fit_options.checkpoint_dir = run_dir;
  fit_options.checkpoint_every = options.checkpoint_every;
  fit_options.resume = true;  // a missing checkpoint is a cold start
  if (run_dir.empty()) return trainer->Fit(dataset);
  size_t attempts = 0;
  while (true) {
    try {
      return trainer->Fit(dataset, fit_options);
    } catch (const failpoint::FailpointAbort& abort) {
      if (attempts >= options.max_retries) throw;
      ++attempts;
      if (!options.quiet) {
        DTREC_LOG(WARNING) << trainer->name() << ": " << abort.what()
                           << "; resuming from " << run_dir << " (attempt "
                           << attempts << "/" << options.max_retries << ")";
      }
    }
  }
}

}  // namespace

std::vector<MethodResult> RunComparison(
    const std::vector<std::string>& methods, const DatasetFactory& factory,
    const DatasetProfile& profile, const std::vector<uint64_t>& seeds,
    bool quiet) {
  ComparisonOptions options;
  options.quiet = quiet;
  return RunComparison(methods, factory, profile, seeds, options);
}

std::vector<MethodResult> RunComparison(
    const std::vector<std::string>& methods, const DatasetFactory& factory,
    const DatasetProfile& profile, const std::vector<uint64_t>& seeds,
    const ComparisonOptions& options) {
  DTREC_TRACE_SPAN("run_comparison");
  const bool quiet = options.quiet;
  DTREC_CHECK(!seeds.empty());

  // Materialize one dataset per seed up front so every method sees the
  // exact same realizations (required for paired t-tests).
  std::vector<RatingDataset> datasets;
  datasets.reserve(seeds.size());
  for (uint64_t seed : seeds) datasets.push_back(factory(seed));

  std::vector<MethodResult> results;
  for (const std::string& method : methods) {
    MethodResult res;
    res.method = method;
    std::vector<double> aucs, ndcgs, recalls, train_times, infer_times;
    for (size_t s = 0; s < seeds.size(); ++s) {
      TrainConfig tc = TuneForMethod(method, profile.train);
      tc.seed = seeds[s] * 7919 + 13;
      auto trainer_or = MakeTrainer(method, tc);
      DTREC_CHECK(trainer_or.ok()) << trainer_or.status();
      auto trainer = std::move(trainer_or).value();

      std::string run_dir;
      if (!options.checkpoint_root.empty()) {
        run_dir = options.checkpoint_root + "/" + MethodSlug(method) +
                  "_seed" + StrFormat("%llu",
                                      static_cast<unsigned long long>(
                                          seeds[s]));
        EnsureDir(run_dir);
      }
      Stopwatch watch;
      Status st;
      {
        DTREC_TRACE_SPAN("fit");
        st = FitWithRetry(trainer.get(), datasets[s], options, run_dir);
      }
      DTREC_CHECK(st.ok()) << method << ": " << st.ToString();
      train_times.push_back(watch.ElapsedSeconds());

      DTREC_TRACE_SPAN("evaluate");
      const RankingMetrics metrics =
          EvaluateRanking(*trainer, datasets[s], profile.ranking_k,
                          profile.positive_threshold);
      aucs.push_back(metrics.auc);
      ndcgs.push_back(metrics.ndcg_at_k);
      recalls.push_back(metrics.recall_at_k);
      infer_times.push_back(
          MeasureInferenceMillisPerSample(*trainer, datasets[s]));
      res.parameters = trainer->NumParameters();
      if (!quiet) {
        DTREC_LOG(INFO) << method << " seed " << seeds[s]
                        << " auc=" << FormatDouble(metrics.auc, 4)
                        << " n@k=" << FormatDouble(metrics.ndcg_at_k, 4);
      }
    }
    res.auc = ComputeMeanStd(aucs);
    res.ndcg = ComputeMeanStd(ndcgs);
    res.recall = ComputeMeanStd(recalls);
    res.auc_samples = aucs;
    res.train_seconds = ComputeMeanStd(train_times).mean;
    res.inference_ms = ComputeMeanStd(infer_times).mean;
    results.push_back(std::move(res));
  }

  // Paired t-test of each proposed method against the best baseline AUC.
  const MethodResult* best_baseline = nullptr;
  for (const auto& res : results) {
    if (StartsWith(res.method, "DT-")) continue;
    if (best_baseline == nullptr ||
        res.auc.mean > best_baseline->auc.mean) {
      best_baseline = &res;
    }
  }
  if (best_baseline != nullptr && seeds.size() >= 2) {
    for (auto& res : results) {
      if (!StartsWith(res.method, "DT-")) continue;
      auto test =
          PairedTTest(res.auc_samples, best_baseline->auc_samples);
      if (test.ok()) {
        res.significant_vs_best_baseline =
            test.value().significant() &&
            res.auc.mean > best_baseline->auc.mean;
      }
    }
  }
  return results;
}

TableWriter MakeComparisonTable(const std::string& title, size_t ranking_k,
                                const std::vector<MethodResult>& results) {
  TableWriter table(title);
  table.SetHeader({"Method", "AUC",
                   StrFormat("N@%zu", ranking_k),
                   StrFormat("R@%zu", ranking_k), "Params",
                   "Train(s)", "Infer(ms)"});
  for (const auto& res : results) {
    std::string method = res.method;
    if (res.significant_vs_best_baseline) method += "*";
    table.AddRow({method, res.auc.ToString(), res.ndcg.ToString(),
                  res.recall.ToString(), StrFormat("%zu", res.parameters),
                  FormatDouble(res.train_seconds, 2),
                  FormatDouble(res.inference_ms, 4)});
  }
  return table;
}

}  // namespace dtrec
