#ifndef DTREC_EXPERIMENTS_RUNNER_H_
#define DTREC_EXPERIMENTS_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "experiments/config.h"
#include "experiments/evaluator.h"
#include "metrics/stats.h"
#include "util/table_writer.h"

namespace dtrec {

/// Aggregated result of one method across seeds on one dataset.
struct MethodResult {
  std::string method;
  MeanStd auc, ndcg, recall;
  std::vector<double> auc_samples;  ///< per-seed values (paired t-tests)
  double train_seconds = 0.0;       ///< mean wall-clock training time
  double inference_ms = 0.0;        ///< mean per-sample inference latency
  size_t parameters = 0;
  bool significant_vs_best_baseline = false;
};

/// Builds a fresh dataset realization for a given seed (each seed gets an
/// independent world + observation realization, so the ± std in the tables
/// covers both data and training noise, like the paper's repeated runs).
using DatasetFactory = std::function<RatingDataset(uint64_t seed)>;

/// Fault-tolerance knobs for a multi-seed sweep. With a `checkpoint_root`,
/// each (method, seed) run checkpoints into its own subdirectory and a run
/// that dies at a failpoint (failpoint::FailpointAbort) is retried with
/// resume=true up to `max_retries` times, continuing at the exact epoch
/// the crash interrupted — the sweep-scale behavior the crash-equivalence
/// test verifies end to end.
struct ComparisonOptions {
  bool quiet = false;
  std::string checkpoint_root;  ///< empty = no checkpointing, no retry
  size_t checkpoint_every = 1;  ///< epochs between checkpoint saves
  size_t max_retries = 0;       ///< resume attempts per (method, seed) run
};

/// Trains and evaluates `methods` over `seeds`, computing the paired
/// t-test of each proposed method ("DT-*") against the best baseline by
/// AUC. `quiet` suppresses per-run progress logging.
std::vector<MethodResult> RunComparison(
    const std::vector<std::string>& methods, const DatasetFactory& factory,
    const DatasetProfile& profile, const std::vector<uint64_t>& seeds,
    bool quiet = false);

/// Fault-tolerant variant; the `quiet`-only overload above forwards here
/// with default options.
std::vector<MethodResult> RunComparison(
    const std::vector<std::string>& methods, const DatasetFactory& factory,
    const DatasetProfile& profile, const std::vector<uint64_t>& seeds,
    const ComparisonOptions& options);

/// Renders comparison rows in the paper's Table IV layout.
TableWriter MakeComparisonTable(const std::string& title, size_t ranking_k,
                                const std::vector<MethodResult>& results);

}  // namespace dtrec

#endif  // DTREC_EXPERIMENTS_RUNNER_H_
