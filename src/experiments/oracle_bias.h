#ifndef DTREC_EXPERIMENTS_ORACLE_BIAS_H_
#define DTREC_EXPERIMENTS_ORACLE_BIAS_H_

#include <cstdint>

#include "tensor/matrix.h"

namespace dtrec {

class Rng;

/// Numeric machinery behind the paper's Table I and Lemmas 1–2: evaluates
/// the Naive / IPS / DR estimators against the ideal loss on a fully-known
/// world, with *oracle* propensities, so the remaining error is exactly
/// the estimator's structural bias.

/// Ideal loss (Eq. 1): mean of errors over every cell.
double IdealLoss(const Matrix& errors);

/// Naive estimator (Eq. 2): mean of errors over observed cells. Returns 0
/// when nothing is observed.
double NaiveEstimate(const Matrix& errors, const Matrix& observed);

/// Propensity floor applied by the estimators below. The oracle
/// propensities driving Table I are bounded well away from zero, so the
/// clip never binds in the paper's exactness experiments — it only bounds
/// the inverse weight when a caller feeds a degenerate p ≈ 0.
inline constexpr double kEstimatorPropensityFloor = 1e-6;

/// IPS estimator (Eq. 3) with per-cell propensities, clipped from below at
/// kEstimatorPropensityFloor.
double IpsEstimate(const Matrix& errors, const Matrix& observed,
                   const Matrix& propensity);

/// DR estimator (Eq. 4) with per-cell propensities (clipped as above) and
/// imputed errors.
double DrEstimate(const Matrix& errors, const Matrix& imputed,
                  const Matrix& observed, const Matrix& propensity);

/// Monte-Carlo bias of an estimator: draws `trials` observation masks from
/// `true_propensity`, averages the estimates, subtracts the ideal loss.
struct BiasReport {
  double mean_estimate = 0.0;
  double ideal = 0.0;
  double bias = 0.0;          ///< mean_estimate − ideal
  double std_error = 0.0;     ///< of the mean estimate
};

enum class EstimatorKind { kNaive, kIps, kDr };

BiasReport MonteCarloBias(EstimatorKind kind, const Matrix& errors,
                          const Matrix& imputed,
                          const Matrix& true_propensity,
                          const Matrix& weighting_propensity, size_t trials,
                          Rng* rng);

}  // namespace dtrec

#endif  // DTREC_EXPERIMENTS_ORACLE_BIAS_H_
