#ifndef DTREC_EXPERIMENTS_EVALUATOR_H_
#define DTREC_EXPERIMENTS_EVALUATOR_H_

#include "baselines/trainer_base.h"
#include "metrics/ranking.h"
#include "synth/movielens_like.h"

namespace dtrec {

/// Ranking evaluation on the unbiased test split (paper Table IV
/// protocol): AUC global, NDCG@K and Recall@K per user. The default
/// `positive_threshold` of 0.5 matches the simulated pipelines, whose
/// labels are pre-binarized to {0, 1}; feed raw 5-star ratings with the
/// threshold from DatasetProfile::positive_threshold (e.g. 4.0) instead.
RankingMetrics EvaluateRanking(const RecommenderTrainer& trainer,
                               const RatingDataset& dataset, size_t k,
                               double positive_threshold = 0.5);

/// Pointwise + ranking evaluation for the semi-synthetic pipeline
/// (Table III / Figure 3): MSE and MAE of the predicted conversion
/// probabilities against the true η over all cells, NDCG@50 on the test
/// users' realized conversions.
struct SemiSyntheticMetrics {
  double mse = 0.0;
  double mae = 0.0;
  double ndcg_at_50 = 0.0;
};

SemiSyntheticMetrics EvaluateSemiSynthetic(const RecommenderTrainer& trainer,
                                           const SemiSyntheticData& data);

/// Average per-sample inference latency over the test split, in
/// milliseconds (paper Table VI's inference column).
double MeasureInferenceMillisPerSample(const RecommenderTrainer& trainer,
                                       const RatingDataset& dataset,
                                       size_t max_samples = 20000);

}  // namespace dtrec

#endif  // DTREC_EXPERIMENTS_EVALUATOR_H_
