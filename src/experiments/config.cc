#include "experiments/config.h"

#include <cstdlib>

#include "util/string_util.h"

namespace dtrec {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCoat:
      return "Coat";
    case DatasetKind::kYahoo:
      return "Yahoo";
    case DatasetKind::kKuaiRec:
      return "KuaiRec";
  }
  return "?";
}

DatasetProfile DefaultProfile(DatasetKind kind) {
  DatasetProfile profile;
  TrainConfig& tc = profile.train;
  switch (kind) {
    case DatasetKind::kCoat:
      tc.epochs = 20;
      tc.batch_size = 1024;
      tc.learning_rate = 0.05;
      tc.embedding_dim = 16;
      tc.max_steps_per_epoch = 70;
      profile.ranking_k = 5;
      break;
    case DatasetKind::kYahoo:
      tc.epochs = 15;
      tc.batch_size = 2048;
      tc.learning_rate = 0.05;
      tc.embedding_dim = 8;
      tc.max_steps_per_epoch = 150;
      profile.ranking_k = 5;
      profile.dataset_scale = 0.05;
      break;
    case DatasetKind::kKuaiRec:
      tc.epochs = 15;
      tc.batch_size = 2048;
      tc.learning_rate = 0.05;
      tc.embedding_dim = 8;
      tc.max_steps_per_epoch = 150;
      profile.ranking_k = 50;
      profile.dataset_scale = 0.08;
      break;
  }
  return profile;
}

TrainConfig TuneForMethod(const std::string& method, TrainConfig base) {
  if (StartsWith(method, "DT-")) {
    base.alpha = 1.0;
    base.beta = 1e-2;   // weights are for the size-normalized F-norms
    base.gamma = 2e-3;  // calibrated so large logits (high-eta regimes)
                        // are not over-penalized
  } else if (StartsWith(method, "ESCM2")) {
    base.lambda1 = 0.5;
    base.lambda2 = 0.5;
  } else if (method == "CVIB") {
    base.alpha = 0.1;
    base.lambda2 = 0.01;
  } else if (method == "DIB") {
    base.alpha = 0.5;
    base.beta = 1e-2;  // size-normalized orthogonality term
  } else if (method == "IPS-V2" || method == "DR-V2") {
    base.alpha = 1.0;
    base.lambda2 = 0.5;
  } else if (method == "DR-MSE") {
    base.lambda1 = 0.5;
  }
  return base;
}

Status ApplyOverride(const std::string& key, const std::string& value,
                     DatasetProfile* profile) {
  if (profile == nullptr) {
    return Status::InvalidArgument("profile must not be null");
  }
  char* end = nullptr;
  const double num = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("override value is not numeric: " +
                                   value);
  }
  if (key == "epochs") {
    profile->train.epochs = static_cast<size_t>(num);
  } else if (key == "batch_size") {
    profile->train.batch_size = static_cast<size_t>(num);
  } else if (key == "lr") {
    profile->train.learning_rate = num;
  } else if (key == "dim") {
    profile->train.embedding_dim = static_cast<size_t>(num);
  } else if (key == "scale") {
    profile->dataset_scale = num;
  } else if (key == "k") {
    profile->ranking_k = static_cast<size_t>(num);
  } else if (key == "positive_threshold") {
    profile->positive_threshold = num;
  } else if (key == "steps") {
    profile->train.max_steps_per_epoch = static_cast<size_t>(num);
  } else {
    return Status::InvalidArgument("unknown override key: " + key);
  }
  return Status::OK();
}

}  // namespace dtrec
