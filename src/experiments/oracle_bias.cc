#include "experiments/oracle_bias.h"

#include <cmath>

#include "metrics/stats.h"
#include "propensity/propensity.h"
#include "synth/mnar_generator.h"
#include "util/logging.h"
#include "util/numeric_guard.h"
#include "util/random.h"

namespace dtrec {

double IdealLoss(const Matrix& errors) {
  DTREC_CHECK(!errors.empty());
  return errors.Mean();
}

double NaiveEstimate(const Matrix& errors, const Matrix& observed) {
  DTREC_CHECK_EQ(errors.size(), observed.size());
  double total = 0.0, count = 0.0;
  for (size_t i = 0; i < errors.size(); ++i) {
    if (observed.at_flat(i) != 0.0) {
      total += errors.at_flat(i);
      count += 1.0;
    }
  }
  return count > 0.0 ? total / count : 0.0;
}

double IpsEstimate(const Matrix& errors, const Matrix& observed,
                   const Matrix& propensity) {
  DTREC_CHECK_EQ(errors.size(), observed.size());
  DTREC_CHECK_EQ(errors.size(), propensity.size());
  double total = 0.0;
  for (size_t i = 0; i < errors.size(); ++i) {
    if (observed.at_flat(i) != 0.0) {
      const double p = ClipPropensity(propensity.at_flat(i),
                                      kEstimatorPropensityFloor);
      DTREC_ASSERT_PROPENSITY(p);
      total += errors.at_flat(i) / p;
    }
  }
  DTREC_ASSERT_FINITE_VAL(total, "IpsEstimate");
  return total / static_cast<double>(errors.size());
}

double DrEstimate(const Matrix& errors, const Matrix& imputed,
                  const Matrix& observed, const Matrix& propensity) {
  DTREC_CHECK_EQ(errors.size(), imputed.size());
  DTREC_CHECK_EQ(errors.size(), observed.size());
  DTREC_CHECK_EQ(errors.size(), propensity.size());
  double total = 0.0;
  for (size_t i = 0; i < errors.size(); ++i) {
    total += imputed.at_flat(i);
    if (observed.at_flat(i) != 0.0) {
      const double p = ClipPropensity(propensity.at_flat(i),
                                      kEstimatorPropensityFloor);
      DTREC_ASSERT_PROPENSITY(p);
      total += (errors.at_flat(i) - imputed.at_flat(i)) / p;
    }
  }
  DTREC_ASSERT_FINITE_VAL(total, "DrEstimate");
  return total / static_cast<double>(errors.size());
}

BiasReport MonteCarloBias(EstimatorKind kind, const Matrix& errors,
                          const Matrix& imputed,
                          const Matrix& true_propensity,
                          const Matrix& weighting_propensity, size_t trials,
                          Rng* rng) {
  DTREC_CHECK(rng != nullptr);
  DTREC_CHECK_GT(trials, 0u);
  RunningStat stat;
  for (size_t t = 0; t < trials; ++t) {
    const Matrix mask = SampleObservationMask(true_propensity, rng);
    double estimate = 0.0;
    switch (kind) {
      case EstimatorKind::kNaive:
        estimate = NaiveEstimate(errors, mask);
        break;
      case EstimatorKind::kIps:
        estimate = IpsEstimate(errors, mask, weighting_propensity);
        break;
      case EstimatorKind::kDr:
        estimate = DrEstimate(errors, imputed, mask, weighting_propensity);
        break;
    }
    stat.Add(estimate);
  }
  BiasReport report;
  report.mean_estimate = stat.mean();
  report.ideal = IdealLoss(errors);
  report.bias = report.mean_estimate - report.ideal;
  report.std_error =
      stat.stddev() / std::sqrt(static_cast<double>(trials));
  return report;
}

}  // namespace dtrec
