#ifndef DTREC_EXPERIMENTS_CONFIG_H_
#define DTREC_EXPERIMENTS_CONFIG_H_

#include <map>
#include <string>

#include "baselines/trainer_base.h"
#include "util/status.h"

namespace dtrec {

/// The simulated dataset families of the real-world experiments.
enum class DatasetKind { kCoat, kYahoo, kKuaiRec };

const char* DatasetKindName(DatasetKind kind);

/// Per-dataset tuned defaults (learning rate, batch size, embedding dim,
/// epochs, ranking cutoff K) mirroring the paper's tuning grids: small
/// batches for Coat, large batches for Yahoo/KuaiRec, K=5 vs K=50.
struct DatasetProfile {
  TrainConfig train;
  size_t ranking_k = 5;
  double dataset_scale = 0.1;  ///< Yahoo/KuaiRec size knob
  /// Relevance cut for ranking metrics (rating >= threshold is positive).
  /// The simulated Coat/Yahoo/KuaiRec pipelines binarize labels to {0, 1}
  /// at generation time, so 0.5 is correct here; a raw 5-star feed should
  /// override to 4.0 (4–5 stars relevant, the paper's preprocessing).
  double positive_threshold = 0.5;
};

DatasetProfile DefaultProfile(DatasetKind kind);

/// Method-specific tweak of a base config (e.g. DT's β/γ defaults, ESCM²'s
/// λ weights). Keeps every benchmark binary using one tuning source.
TrainConfig TuneForMethod(const std::string& method, TrainConfig base);

/// Parses "key=value" command-line overrides into a profile. Recognized
/// keys: epochs, batch_size, lr, dim, seeds (ignored here but validated),
/// scale, k, positive_threshold, steps. Unknown keys yield
/// InvalidArgument.
Status ApplyOverride(const std::string& key, const std::string& value,
                     DatasetProfile* profile);

}  // namespace dtrec

#endif  // DTREC_EXPERIMENTS_CONFIG_H_
