#ifndef DTREC_MODELS_PARAM_COUNT_H_
#define DTREC_MODELS_PARAM_COUNT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dtrec {

/// Itemized parameter budget of a method, used to regenerate the paper's
/// Table II (relative embedding / hidden sizes) and the parameter column
/// of Table VI.
struct ParamBudget {
  size_t embedding_params = 0;  ///< embedding-table entries
  size_t hidden_params = 0;     ///< MLP/tower weights
  size_t other_params = 0;      ///< biases, scalars

  size_t total() const {
    return embedding_params + hidden_params + other_params;
  }
};

/// One row of the loss-inventory side of Table II.
struct LossInventory {
  bool propensity_loss = false;
  bool ctcvr_loss = false;
  bool disentangle_loss = false;
};

/// Formats a budget relative to a reference ("1x", "2x", ...), matching
/// Table II's presentation. Returns e.g. "2x" when size ≈ 2·reference
/// (rounded to the nearest 0.5).
std::string RelativeSize(size_t size, size_t reference);

}  // namespace dtrec

#endif  // DTREC_MODELS_PARAM_COUNT_H_
