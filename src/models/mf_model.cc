#include "models/mf_model.h"

#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/random.h"

namespace dtrec {

MfModel::MfModel(const MfModelConfig& config) : config_(config) {
  DTREC_CHECK_GT(config.num_users, 0u);
  DTREC_CHECK_GT(config.num_items, 0u);
  DTREC_CHECK_GT(config.dim, 0u);
  Rng rng(config.seed);
  p_ = EmbeddingTable::Create(config.num_users, config.dim,
                              config.init_scale, &rng);
  q_ = EmbeddingTable::Create(config.num_items, config.dim,
                              config.init_scale, &rng);
  if (config.use_bias) {
    user_bias_ = Matrix(config.num_users, 1);
    item_bias_ = Matrix(config.num_items, 1);
  }
}

double MfModel::Score(size_t user, size_t item) const {
  double s = RowDot(p_.weights(), user, q_.weights(), item);
  if (config_.use_bias) {
    s += user_bias_(user, 0) + item_bias_(item, 0);
  }
  return s;
}

double MfModel::PredictProbability(size_t user, size_t item) const {
  return Sigmoid(Score(user, item));
}

Matrix MfModel::FullProbabilityMatrix() const {
  Matrix scores = MatMulTransB(p_.weights(), q_.weights());
  for (size_t u = 0; u < scores.rows(); ++u) {
    for (size_t i = 0; i < scores.cols(); ++i) {
      double s = scores(u, i);
      if (config_.use_bias) s += user_bias_(u, 0) + item_bias_(i, 0);
      scores(u, i) = Sigmoid(s);
    }
  }
  return scores;
}

std::vector<ag::Var> MfModel::MakeLeaves(ag::Tape* tape) const {
  DTREC_CHECK(tape != nullptr);
  std::vector<ag::Var> leaves;
  leaves.push_back(tape->Leaf(p_.weights()));
  leaves.push_back(tape->Leaf(q_.weights()));
  if (config_.use_bias) {
    leaves.push_back(tape->Leaf(user_bias_));
    leaves.push_back(tape->Leaf(item_bias_));
  }
  return leaves;
}

ag::Var MfModel::BatchLogits(ag::Tape* tape,
                             const std::vector<ag::Var>& leaves,
                             const std::vector<size_t>& users,
                             const std::vector<size_t>& items) const {
  DTREC_CHECK(tape != nullptr);
  DTREC_CHECK_EQ(leaves.size(), config_.use_bias ? 4u : 2u);
  ag::Var pu = ag::GatherRows(leaves[0], users);
  ag::Var qi = ag::GatherRows(leaves[1], items);
  ag::Var logits = ag::RowwiseDot(pu, qi);
  if (config_.use_bias) {
    logits = ag::Add(logits, ag::GatherRows(leaves[2], users));
    logits = ag::Add(logits, ag::GatherRows(leaves[3], items));
  }
  return logits;
}

std::vector<Matrix*> MfModel::Params() {
  std::vector<Matrix*> params{&p_.weights(), &q_.weights()};
  if (config_.use_bias) {
    params.push_back(&user_bias_);
    params.push_back(&item_bias_);
  }
  return params;
}

std::vector<const Matrix*> MfModel::Params() const {
  std::vector<const Matrix*> params{&p_.weights(), &q_.weights()};
  if (config_.use_bias) {
    params.push_back(&user_bias_);
    params.push_back(&item_bias_);
  }
  return params;
}

size_t MfModel::NumParameters() const {
  size_t n = p_.num_parameters() + q_.num_parameters();
  if (config_.use_bias) n += user_bias_.size() + item_bias_.size();
  return n;
}

}  // namespace dtrec
