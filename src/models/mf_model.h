#ifndef DTREC_MODELS_MF_MODEL_H_
#define DTREC_MODELS_MF_MODEL_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "models/embedding_table.h"
#include "tensor/matrix.h"

namespace dtrec {

/// Configuration of a matrix-factorization scoring model.
struct MfModelConfig {
  size_t num_users = 0;
  size_t num_items = 0;
  size_t dim = 8;
  bool use_bias = true;       ///< per-user/per-item bias terms
  double init_scale = 0.1;
  uint64_t seed = 17;
};

/// Matrix factorization with optional bias terms:
///   score(u, i) = p_u · q_i [+ bu_u + bi_i]
/// The paper's base model for prediction, propensity, and imputation heads
/// alike. Binary tasks squash the score through a sigmoid.
class MfModel {
 public:
  MfModel() = default;
  explicit MfModel(const MfModelConfig& config);

  /// Raw score (logit).
  double Score(size_t user, size_t item) const;

  /// σ(score): probability of a positive label.
  double PredictProbability(size_t user, size_t item) const;

  /// Dense score matrix σ applied optionally; rows=users, cols=items.
  Matrix FullProbabilityMatrix() const;

  /// --- Autograd integration -------------------------------------------
  /// Puts all parameters on `tape` as leaves (order: P, Q[, bu, bi]).
  /// The returned handles pair with Params() for the optimizer step.
  std::vector<ag::Var> MakeLeaves(ag::Tape* tape) const;

  /// Batch logits (B×1) from leaves created by MakeLeaves.
  ag::Var BatchLogits(ag::Tape* tape, const std::vector<ag::Var>& leaves,
                      const std::vector<size_t>& users,
                      const std::vector<size_t>& items) const;

  /// Parameter matrices in MakeLeaves order (stable addresses).
  std::vector<Matrix*> Params();
  std::vector<const Matrix*> Params() const;

  size_t NumParameters() const;

  Matrix& p() { return p_.weights(); }
  Matrix& q() { return q_.weights(); }
  const Matrix& p() const { return p_.weights(); }
  const Matrix& q() const { return q_.weights(); }
  const MfModelConfig& config() const { return config_; }

 private:
  MfModelConfig config_;
  EmbeddingTable p_;   // users × dim
  EmbeddingTable q_;   // items × dim
  Matrix user_bias_;   // users × 1 (when use_bias)
  Matrix item_bias_;   // items × 1
};

}  // namespace dtrec

#endif  // DTREC_MODELS_MF_MODEL_H_
