#ifndef DTREC_MODELS_EMBEDDING_TABLE_H_
#define DTREC_MODELS_EMBEDDING_TABLE_H_

#include <cstdint>

#include "tensor/matrix.h"

namespace dtrec {

class Rng;

/// A learnable rows×dim embedding lookup table (users or items).
///
/// Thin wrapper over Matrix that fixes the initialization convention
/// (Gaussian with tuned scale) and provides parameter accounting. Trainers
/// put `weights` on the tape as a leaf and gather the batch's rows.
class EmbeddingTable {
 public:
  EmbeddingTable() = default;

  /// rows×dim table with N(0, init_scale) entries.
  static EmbeddingTable Create(size_t rows, size_t dim, double init_scale,
                               Rng* rng);

  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }

  size_t rows() const { return weights_.rows(); }
  size_t dim() const { return weights_.cols(); }
  size_t num_parameters() const { return weights_.size(); }

 private:
  explicit EmbeddingTable(Matrix weights) : weights_(std::move(weights)) {}
  Matrix weights_;
};

}  // namespace dtrec

#endif  // DTREC_MODELS_EMBEDDING_TABLE_H_
