#include "models/mlp.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/random.h"

namespace dtrec {

MlpHead::MlpHead(size_t input_dim, size_t hidden_dim, double init_scale,
                 Rng* rng) {
  DTREC_CHECK_GT(input_dim, 0u);
  DTREC_CHECK_GT(hidden_dim, 0u);
  DTREC_CHECK(rng != nullptr);
  w1_ = Matrix::RandomNormal(input_dim, hidden_dim, init_scale, rng);
  b1_ = Matrix(1, hidden_dim);
  w2_ = Matrix::RandomNormal(hidden_dim, 1, init_scale, rng);
  b2_ = Matrix(1, 1);
}

std::vector<ag::Var> MlpHead::MakeLeaves(ag::Tape* tape) const {
  DTREC_CHECK(tape != nullptr);
  return {tape->Leaf(w1_), tape->Leaf(b1_), tape->Leaf(w2_),
          tape->Leaf(b2_)};
}

ag::Var MlpHead::Forward(const std::vector<ag::Var>& leaves,
                         ag::Var input) const {
  DTREC_CHECK_EQ(leaves.size(), 4u);
  ag::Var hidden = ag::Relu(
      ag::AddRowBroadcast(ag::MatMul(input, leaves[0]), leaves[1]));
  return ag::AddRowBroadcast(ag::MatMul(hidden, leaves[2]), leaves[3]);
}

double MlpHead::Forward(const Matrix& input_row) const {
  DTREC_CHECK_EQ(input_row.rows(), 1u);
  DTREC_CHECK_EQ(input_row.cols(), w1_.rows());
  Matrix hidden = MatMul(input_row, w1_);
  for (size_t j = 0; j < hidden.cols(); ++j) {
    double h = hidden(0, j) + b1_(0, j);
    hidden(0, j) = h > 0.0 ? h : 0.0;
  }
  double out = b2_(0, 0);
  for (size_t j = 0; j < hidden.cols(); ++j) {
    out += hidden(0, j) * w2_(j, 0);
  }
  return out;
}

std::vector<Matrix*> MlpHead::Params() { return {&w1_, &b1_, &w2_, &b2_}; }

size_t MlpHead::NumParameters() const {
  return w1_.size() + b1_.size() + w2_.size() + b2_.size();
}

}  // namespace dtrec
