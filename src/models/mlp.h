#ifndef DTREC_MODELS_MLP_H_
#define DTREC_MODELS_MLP_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "tensor/matrix.h"

namespace dtrec {

class Rng;

/// Small fully-connected head mapping a B×in batch to B×1 logits through
/// one ReLU hidden layer:
///   h = relu(X·W1 + b1);  logit = h·W2 + b2
///
/// This is the "shallow MLP after the embedding layer" the paper uses to
/// realize the shared-embedding multi-task baselines (Multi-IPS/DR, ESMM,
/// ESCM², IPS-V2/DR-V2) when MF alone would make the towers identical
/// (Section VI-D).
class MlpHead {
 public:
  MlpHead() = default;
  MlpHead(size_t input_dim, size_t hidden_dim, double init_scale, Rng* rng);

  /// Leaves in order W1, b1, W2, b2.
  std::vector<ag::Var> MakeLeaves(ag::Tape* tape) const;

  /// B×1 logits from a B×input batch Var.
  ag::Var Forward(const std::vector<ag::Var>& leaves, ag::Var input) const;

  /// Plain (non-autograd) forward for inference.
  double Forward(const Matrix& input_row) const;

  std::vector<Matrix*> Params();
  size_t NumParameters() const;

  size_t input_dim() const { return w1_.rows(); }
  size_t hidden_dim() const { return w1_.cols(); }

 private:
  Matrix w1_;  // in×hidden
  Matrix b1_;  // 1×hidden
  Matrix w2_;  // hidden×1
  Matrix b2_;  // 1×1
};

}  // namespace dtrec

#endif  // DTREC_MODELS_MLP_H_
