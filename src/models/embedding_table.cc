#include "models/embedding_table.h"

#include "util/random.h"

namespace dtrec {

EmbeddingTable EmbeddingTable::Create(size_t rows, size_t dim,
                                      double init_scale, Rng* rng) {
  return EmbeddingTable(Matrix::RandomNormal(rows, dim, init_scale, rng));
}

}  // namespace dtrec
