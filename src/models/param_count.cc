#include "models/param_count.h"

#include <cmath>

#include "util/string_util.h"

namespace dtrec {

std::string RelativeSize(size_t size, size_t reference) {
  if (reference == 0) return "n/a";
  const double ratio =
      static_cast<double>(size) / static_cast<double>(reference);
  const double rounded = std::round(ratio * 2.0) / 2.0;
  if (rounded == std::floor(rounded)) {
    return StrFormat("%.0fx", rounded);
  }
  return StrFormat("%.1fx", rounded);
}

}  // namespace dtrec
