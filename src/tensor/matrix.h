#ifndef DTREC_TENSOR_MATRIX_H_
#define DTREC_TENSOR_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"

namespace dtrec {

class Rng;

/// Dense row-major matrix of doubles.
///
/// This is the single numeric container used across dtrec: embedding
/// tables, mini-batch activations, gradients, and the full user-item rating
/// matrices of the synthetic datasets. Double precision is deliberate — it
/// makes the finite-difference gradient checks in autograd/ meaningful.
///
/// A 1×N or N×1 Matrix doubles as a vector; helpers that need vectors take
/// Matrix and assert the shape.
class Matrix {
 public:
  /// Empty 0×0 matrix.
  Matrix() = default;

  /// rows×cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// From nested initializer list; all rows must have equal arity.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// All-zeros / all-ones / constant factories.
  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0);
  }
  static Matrix Constant(size_t rows, size_t cols, double v) {
    return Matrix(rows, cols, v);
  }

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Entries iid Normal(0, stddev).
  static Matrix RandomNormal(size_t rows, size_t cols, double stddev,
                             Rng* rng);

  /// Entries iid Uniform[lo, hi).
  static Matrix RandomUniform(size_t rows, size_t cols, double lo, double hi,
                              Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    DTREC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    DTREC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Flat element access (row-major order); used by optimizers that treat
  /// parameters as one contiguous vector.
  double& at_flat(size_t i) {
    DTREC_DCHECK(i < data_.size());
    return data_[i];
  }
  double at_flat(size_t i) const {
    DTREC_DCHECK(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  double* row(size_t r) {
    DTREC_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row(size_t r) const {
    DTREC_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Sets every entry to v.
  void Fill(double v);

  /// Sets every entry to 0.
  void SetZero() { Fill(0.0); }

  /// Returns a new matrix that is the transpose of this one.
  Matrix Transposed() const;

  /// Copies row r into a 1×cols matrix.
  Matrix RowCopy(size_t r) const;

  /// Extracts the column block [col_begin, col_end) as a new matrix.
  Matrix ColBlock(size_t col_begin, size_t col_end) const;

  /// Writes `block` (rows()×(col_end-col_begin)) into columns
  /// [col_begin, col_end).
  void SetColBlock(size_t col_begin, const Matrix& block);

  /// True iff shapes match and all entries are within atol+rtol*|other|.
  bool AllClose(const Matrix& other, double atol = 1e-9,
                double rtol = 1e-7) const;

  /// True if any entry is NaN or infinite.
  bool HasNonFinite() const;

  /// Sum of all entries.
  double Sum() const;

  /// Mean of all entries. Requires non-empty.
  double Mean() const;

  /// Minimum / maximum entry. Requires non-empty.
  double Min() const;
  double Max() const;

  /// Squared Frobenius norm: sum of squared entries.
  double FrobeniusNormSquared() const;

  /// Compact debug rendering ("2x3 [[1, 2, 3], [4, 5, 6]]"), truncated for
  /// large matrices.
  std::string DebugString(size_t max_rows = 6, size_t max_cols = 8) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Exact element-wise equality (mostly for tests).
bool operator==(const Matrix& a, const Matrix& b);

}  // namespace dtrec

#endif  // DTREC_TENSOR_MATRIX_H_
