#include "tensor/kernels.h"

#include <algorithm>
#include <vector>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define DTREC_KERNEL_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define DTREC_KERNEL_SSE2 1
#endif

#if defined(__GNUC__) || defined(__clang__)
#define DTREC_RESTRICT __restrict__
#else
#define DTREC_RESTRICT
#endif

namespace dtrec::kernels {
namespace {

inline size_t RoundUp(size_t x, size_t to) { return (x + to - 1) / to * to; }

/// Packs an mc×kc block of A into kMr-row micro-panels, zero-padding the
/// ragged last strip. Element (i, p) of the logical block is read at
/// a[i*rs + p*cs], so the same routine packs A (rs=lda, cs=1) and Aᵀ
/// (rs=1, cs=lda). Panel layout: strip ir holds kc columns of kMr
/// contiguous row entries each — exactly the order the micro-kernel
/// consumes, one sequential read per iteration.
void PackA(size_t mc, size_t kc, const double* a, size_t rs, size_t cs,
           double* pack) {
  for (size_t ir = 0; ir < mc; ir += kMr) {
    const size_t mr = std::min(kMr, mc - ir);
    double* dst = pack + ir * kc;
    for (size_t p = 0; p < kc; ++p) {
      for (size_t r = 0; r < mr; ++r) dst[p * kMr + r] = a[(ir + r) * rs + p * cs];
      for (size_t r = mr; r < kMr; ++r) dst[p * kMr + r] = 0.0;
    }
  }
}

/// Packs a kc×nc block of B into kNr-column micro-panels (element (p, j)
/// read at b[p*rs + j*cs]; rs=1, cs=ldb packs Bᵀ).
void PackB(size_t kc, size_t nc, const double* b, size_t rs, size_t cs,
           double* pack) {
  for (size_t jr = 0; jr < nc; jr += kNr) {
    const size_t nr = std::min(kNr, nc - jr);
    double* dst = pack + jr * kc;
    for (size_t p = 0; p < kc; ++p) {
      for (size_t j = 0; j < nr; ++j) dst[p * kNr + j] = b[p * rs + (jr + j) * cs];
      for (size_t j = nr; j < kNr; ++j) dst[p * kNr + j] = 0.0;
    }
  }
}

/// kMr×kNr micro-kernel: rank-1 updates from one packed A strip and one
/// packed B strip. `acc` must be zero-initialized by the caller; the
/// kernel fills it with the kMr×kNr product tile. Three implementations
/// selected at compile time: AVX2+FMA when the build enables those ISA
/// flags, plain SSE2 on any x86-64 (part of the base ABI, so the default
/// -O2 build gets vector code without -march), scalar otherwise.
#if defined(DTREC_KERNEL_AVX2)

inline void MicroKernel(size_t kc, const double* DTREC_RESTRICT pa,
                        const double* DTREC_RESTRICT pb,
                        double* DTREC_RESTRICT acc) {
  static_assert(kMr == 4 && kNr == 8, "micro-kernel is tiled for 4x8");
  // 4 rows × (2 × 4-double ymm) accumulators = 8 registers, plus 2 for
  // the B row and 1 broadcast — comfortably inside the 16-ymm budget.
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(pb + p * kNr);
    const __m256d b1 = _mm256_loadu_pd(pb + p * kNr + 4);
    const double* ap = pa + p * kMr;
    __m256d a = _mm256_broadcast_sd(ap);
    c00 = _mm256_fmadd_pd(a, b0, c00);
    c01 = _mm256_fmadd_pd(a, b1, c01);
    a = _mm256_broadcast_sd(ap + 1);
    c10 = _mm256_fmadd_pd(a, b0, c10);
    c11 = _mm256_fmadd_pd(a, b1, c11);
    a = _mm256_broadcast_sd(ap + 2);
    c20 = _mm256_fmadd_pd(a, b0, c20);
    c21 = _mm256_fmadd_pd(a, b1, c21);
    a = _mm256_broadcast_sd(ap + 3);
    c30 = _mm256_fmadd_pd(a, b0, c30);
    c31 = _mm256_fmadd_pd(a, b1, c31);
  }
  _mm256_storeu_pd(acc + 0 * kNr, c00);
  _mm256_storeu_pd(acc + 0 * kNr + 4, c01);
  _mm256_storeu_pd(acc + 1 * kNr, c10);
  _mm256_storeu_pd(acc + 1 * kNr + 4, c11);
  _mm256_storeu_pd(acc + 2 * kNr, c20);
  _mm256_storeu_pd(acc + 2 * kNr + 4, c21);
  _mm256_storeu_pd(acc + 3 * kNr, c30);
  _mm256_storeu_pd(acc + 3 * kNr + 4, c31);
}

#elif defined(DTREC_KERNEL_SSE2)

inline void MicroKernel(size_t kc, const double* DTREC_RESTRICT pa,
                        const double* DTREC_RESTRICT pb,
                        double* DTREC_RESTRICT acc) {
  static_assert(kMr == 4 && kNr == 8, "micro-kernel is tiled for 4x8");
  // The 4×8 tile is processed as two independent 4×4 half-tiles so each
  // pass needs 8 accumulator xmm registers + 2 B registers + 1 broadcast,
  // fitting the 16-xmm budget without spills (a single 4×8 pass would
  // need 16 accumulators alone).
  for (size_t half = 0; half < kNr; half += 4) {
    const double* b = pb + half;
    __m128d c00 = _mm_setzero_pd(), c01 = _mm_setzero_pd();
    __m128d c10 = _mm_setzero_pd(), c11 = _mm_setzero_pd();
    __m128d c20 = _mm_setzero_pd(), c21 = _mm_setzero_pd();
    __m128d c30 = _mm_setzero_pd(), c31 = _mm_setzero_pd();
    for (size_t p = 0; p < kc; ++p) {
      const __m128d b0 = _mm_loadu_pd(b + p * kNr);
      const __m128d b1 = _mm_loadu_pd(b + p * kNr + 2);
      const double* ap = pa + p * kMr;
      __m128d a = _mm_set1_pd(ap[0]);
      c00 = _mm_add_pd(c00, _mm_mul_pd(a, b0));
      c01 = _mm_add_pd(c01, _mm_mul_pd(a, b1));
      a = _mm_set1_pd(ap[1]);
      c10 = _mm_add_pd(c10, _mm_mul_pd(a, b0));
      c11 = _mm_add_pd(c11, _mm_mul_pd(a, b1));
      a = _mm_set1_pd(ap[2]);
      c20 = _mm_add_pd(c20, _mm_mul_pd(a, b0));
      c21 = _mm_add_pd(c21, _mm_mul_pd(a, b1));
      a = _mm_set1_pd(ap[3]);
      c30 = _mm_add_pd(c30, _mm_mul_pd(a, b0));
      c31 = _mm_add_pd(c31, _mm_mul_pd(a, b1));
    }
    double* out = acc + half;
    _mm_storeu_pd(out + 0 * kNr, c00);
    _mm_storeu_pd(out + 0 * kNr + 2, c01);
    _mm_storeu_pd(out + 1 * kNr, c10);
    _mm_storeu_pd(out + 1 * kNr + 2, c11);
    _mm_storeu_pd(out + 2 * kNr, c20);
    _mm_storeu_pd(out + 2 * kNr + 2, c21);
    _mm_storeu_pd(out + 3 * kNr, c30);
    _mm_storeu_pd(out + 3 * kNr + 2, c31);
  }
}

#else  // portable scalar fallback

inline void MicroKernel(size_t kc, const double* DTREC_RESTRICT pa,
                        const double* DTREC_RESTRICT pb,
                        double* DTREC_RESTRICT acc) {
  for (size_t p = 0; p < kc; ++p) {
    const double* a = pa + p * kMr;
    const double* b = pb + p * kNr;
    for (size_t r = 0; r < kMr; ++r) {
      const double ar = a[r];
      double* accr = acc + r * kNr;
      for (size_t j = 0; j < kNr; ++j) accr[j] += ar * b[j];
    }
  }
}

#endif

/// Shared blocked core: C += op(A)·op(B) with the operand transposes
/// expressed as (row, col) strides for the packing routines.
void GemmStrided(size_t m, size_t n, size_t k, const double* a, size_t ars,
                 size_t acs, const double* b, size_t brs, size_t bcs,
                 double* c, size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  // Pack buffers sized to the problem, not the maximum panel, so the many
  // small matmuls in training (batch×dim shapes) don't pay for 1 MB of
  // zeroed scratch per call.
  std::vector<double> packa(RoundUp(std::min(m, kMc), kMr) * std::min(k, kKc));
  std::vector<double> packb(RoundUp(std::min(n, kNc), kNr) * std::min(k, kKc));
  for (size_t jc = 0; jc < n; jc += kNc) {
    const size_t nc = std::min(kNc, n - jc);
    for (size_t pc = 0; pc < k; pc += kKc) {
      const size_t kc = std::min(kKc, k - pc);
      PackB(kc, nc, b + pc * brs + jc * bcs, brs, bcs, packb.data());
      for (size_t ic = 0; ic < m; ic += kMc) {
        const size_t mc = std::min(kMc, m - ic);
        PackA(mc, kc, a + ic * ars + pc * acs, ars, acs, packa.data());
        for (size_t jr = 0; jr < nc; jr += kNr) {
          const size_t nr = std::min(kNr, nc - jr);
          for (size_t ir = 0; ir < mc; ir += kMr) {
            const size_t mr = std::min(kMr, mc - ir);
            double acc[kMr * kNr] = {0.0};
            MicroKernel(kc, packa.data() + ir * kc, packb.data() + jr * kc,
                        acc);
            double* ctile = c + (ic + ir) * ldc + jc + jr;
            for (size_t r = 0; r < mr; ++r) {
              for (size_t j = 0; j < nr; ++j) {
                ctile[r * ldc + j] += acc[r * kNr + j];
              }
            }
          }
        }
      }
    }
  }
}

/// One int8·int8 → int32 row dot. The SIMD variants widen to int16 lanes
/// and use pmaddwd (multiply-add adjacent pairs), which is exact here:
/// each int16 product of two int8 values is ≤ 2^14, so the pairwise adds
/// and the int32 lane accumulation cannot overflow for any realistic k.
#if defined(DTREC_KERNEL_AVX2)

inline int32_t QuantizedRowDotOne(size_t k, const int8_t* DTREC_RESTRICT a,
                                  const int8_t* DTREC_RESTRICT b) {
  __m256i acc = _mm256_setzero_si256();
  size_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t s = _mm_cvtsi128_si32(sum);
  for (; p < k; ++p) {
    s += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return s;
}

#elif defined(DTREC_KERNEL_SSE2)

inline int32_t QuantizedRowDotOne(size_t k, const int8_t* DTREC_RESTRICT a,
                                  const int8_t* DTREC_RESTRICT b) {
  __m128i acc = _mm_setzero_si128();
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    __m128i av = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + p));
    __m128i bv = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + p));
    // Sign-extend 8 int8 lanes to int16: duplicate each byte into both
    // halves of a word, then arithmetic-shift the high copy down.
    av = _mm_srai_epi16(_mm_unpacklo_epi8(av, av), 8);
    bv = _mm_srai_epi16(_mm_unpacklo_epi8(bv, bv), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(av, bv));
  }
  alignas(16) int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int32_t s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; p < k; ++p) {
    s += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return s;
}

#else  // portable scalar fallback

inline int32_t QuantizedRowDotOne(size_t k, const int8_t* DTREC_RESTRICT a,
                                  const int8_t* DTREC_RESTRICT b) {
  int32_t s = 0;
  for (size_t p = 0; p < k; ++p) {
    s += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return s;
}

#endif

}  // namespace

void Gemm(size_t m, size_t n, size_t k, const double* a, size_t lda,
          const double* b, size_t ldb, double* c, size_t ldc) {
  GemmStrided(m, n, k, a, lda, 1, b, ldb, 1, c, ldc);
}

void GemmTransA(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc) {
  GemmStrided(m, n, k, a, 1, lda, b, ldb, 1, c, ldc);
}

void GemmTransB(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc) {
  GemmStrided(m, n, k, a, lda, 1, b, 1, ldb, c, ldc);
}

void BatchedRowDot(size_t m, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* y) {
  // Four rows per pass share the b-row loads; four independent partial
  // sums per row break the add dependency chain so the k loop pipelines.
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a + i * lda;
    const double* a1 = a0 + lda;
    const double* a2 = a1 + lda;
    const double* a3 = a2 + lda;
    const double* br = b + i * ldb;  // ldb == 0 broadcasts row 0
    const double* b0 = br;
    const double* b1 = br + ldb;
    const double* b2 = b1 + ldb;
    const double* b3 = b2 + ldb;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t p = 0; p < k; ++p) {
      s0 += a0[p] * b0[p];
      s1 += a1[p] * b1[p];
      s2 += a2[p] * b2[p];
      s3 += a3[p] * b3[p];
    }
    y[i] = s0;
    y[i + 1] = s1;
    y[i + 2] = s2;
    y[i + 3] = s3;
  }
  for (; i < m; ++i) {
    const double* ar = a + i * lda;
    const double* br = b + i * ldb;
    double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
    size_t p = 0;
    for (; p + 4 <= k; p += 4) {
      t0 += ar[p] * br[p];
      t1 += ar[p + 1] * br[p + 1];
      t2 += ar[p + 2] * br[p + 2];
      t3 += ar[p + 3] * br[p + 3];
    }
    double s = (t0 + t1) + (t2 + t3);
    for (; p < k; ++p) s += ar[p] * br[p];
    y[i] = s;
  }
}

void QuantizedRowDot(size_t m, size_t k, const int8_t* a, size_t lda,
                     const int8_t* b, int32_t* y) {
  for (size_t i = 0; i < m; ++i) y[i] = QuantizedRowDotOne(k, a + i * lda, b);
}

namespace naive {

void Gemm(size_t m, size_t n, size_t k, const double* a, size_t lda,
          const double* b, size_t ldb, double* c, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (size_t p = 0; p < k; ++p) {
      const double aip = arow[p];
      const double* brow = b + p * ldb;
      for (size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void GemmTransA(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc) {
  for (size_t p = 0; p < k; ++p) {
    const double* arow = a + p * lda;
    const double* brow = b + p * ldb;
    for (size_t i = 0; i < m; ++i) {
      const double api = arow[i];
      double* crow = c + i * ldc;
      for (size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

void GemmTransB(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b + j * ldb;
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] += s;
    }
  }
}

void BatchedRowDot(size_t m, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* y) {
  for (size_t i = 0; i < m; ++i) {
    const double* ar = a + i * lda;
    const double* br = b + i * ldb;
    double s = 0.0;
    for (size_t p = 0; p < k; ++p) s += ar[p] * br[p];
    y[i] = s;
  }
}

void QuantizedRowDot(size_t m, size_t k, const int8_t* a, size_t lda,
                     const int8_t* b, int32_t* y) {
  for (size_t i = 0; i < m; ++i) {
    const int8_t* ar = a + i * lda;
    int32_t s = 0;
    for (size_t p = 0; p < k; ++p) {
      s += static_cast<int32_t>(ar[p]) * static_cast<int32_t>(b[p]);
    }
    y[i] = s;
  }
}

}  // namespace naive
}  // namespace dtrec::kernels
