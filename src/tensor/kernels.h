#ifndef DTREC_TENSOR_KERNELS_H_
#define DTREC_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace dtrec::kernels {

// Cache-tiled, register-blocked double-precision GEMM layer.
//
// This is the single place every dense matmul in dtrec lands: the
// tensor-level MatMul/MatMulTransA/MatMulTransB free functions, the
// autograd matmul forward/backward, and serving's ScoreAllItems all route
// here. Future SIMD/threading work plugs into this file and nothing else.
//
// Layout follows the classic BLIS/GotoBLAS decomposition: the operand
// panels are packed into contiguous micro-panel-major buffers (A in
// kMr-row strips, B in kNr-column strips, both zero-padded to full
// strips), and an MR×NR register-accumulator micro-kernel streams through
// one packed A strip and one packed B strip per (ir, jr) tile. Packing
// takes strided element accessors, so the transposed variants reuse the
// same core instead of materializing Aᵀ/Bᵀ.
//
// All entry points *accumulate* into C (callers zero-initialize), operate
// on raw row-major buffers with explicit leading dimensions, and do no
// numeric checking of their own — the tensor/ops.cc wrappers run one
// whole-matrix DTREC_ASSERT_FINITE on the finished result instead of
// per-element (or per-row) guards inside hot loops.

/// Micro-tile geometry, exposed so the equivalence tests can probe exact
/// tile boundaries (kMr·kNr accumulators live in registers during the
/// inner loop; kMc/kKc/kNc size the packed cache panels).
inline constexpr size_t kMr = 4;
inline constexpr size_t kNr = 8;
inline constexpr size_t kMc = 64;
inline constexpr size_t kKc = 256;
inline constexpr size_t kNc = 512;

/// C += A·B. A is m×k (leading dim lda), B is k×n (ldb), C is m×n (ldc).
void Gemm(size_t m, size_t n, size_t k, const double* a, size_t lda,
          const double* b, size_t ldb, double* c, size_t ldc);

/// C += Aᵀ·B. A is stored k×m row-major (lda), producing an m×n C; avoids
/// materializing Aᵀ by packing A with swapped strides.
void GemmTransA(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc);

/// C += A·Bᵀ. B is stored n×k row-major (ldb), producing an m×n C.
void GemmTransB(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc);

/// Batched row-dot: y[i] = A.row(i) · B.row(i) for i in [0, m), rows of
/// length k. Pass ldb = 0 to broadcast B's row 0 against every row of A
/// (the serving ScoreAllItems case: one user vector against all items).
/// Overwrites y.
void BatchedRowDot(size_t m, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* y);

/// Int8 batched row-dot for the quantized scoring sweep: y[i] =
/// Σ_p a[i·lda + p]·b[p] with int32 accumulation, one shared b row
/// (the quantized user vector) against m item rows. AVX2 (vpmaddwd over
/// sign-extended lanes), SSE2, and scalar variants. `k` must stay below
/// ~2^16 so the worst-case |Σ| < 2^14·k cannot overflow int32 —
/// embedding dims are orders of magnitude smaller. Overwrites y.
void QuantizedRowDot(size_t m, size_t k, const int8_t* a, size_t lda,
                     const int8_t* b, int32_t* y);

// Bit-identity contract of BatchedRowDot, relied on by the sub-linear
// serving sweeps (ServingModel::SweepScore): a body row's result (i <
// m − m%4) depends only on that row's data — not on m, not on which of
// the four group lanes it occupies — and a ragged-tail row's result is
// exactly what a 1-row call produces. Re-scoring an item therefore goes
// through BatchedRowDot itself (a 4-row call over the item's aligned
// group, or a 1-row call for tail items) rather than a source-level copy
// of the loop, which the compiler is free to contract/vectorize
// differently. KernelsTest.BatchedRowDotLanesArePositionIndependent pins
// this contract.

// Naive reference kernels: the seed's triple loops, minus the data-
// dependent `aik == 0` sparsity skip (which silently turned 0·NaN into 0).
// Kept as the ground truth for the kernel-equivalence test suite and as
// the baseline the perf-regression bench compares against. Same
// accumulate-into-C contract as the blocked kernels.
namespace naive {

void Gemm(size_t m, size_t n, size_t k, const double* a, size_t lda,
          const double* b, size_t ldb, double* c, size_t ldc);
void GemmTransA(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc);
void GemmTransB(size_t m, size_t n, size_t k, const double* a, size_t lda,
                const double* b, size_t ldb, double* c, size_t ldc);
void BatchedRowDot(size_t m, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* y);
void QuantizedRowDot(size_t m, size_t k, const int8_t* a, size_t lda,
                     const int8_t* b, int32_t* y);

}  // namespace naive

}  // namespace dtrec::kernels

#endif  // DTREC_TENSOR_KERNELS_H_
