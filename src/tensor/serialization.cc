#include "tensor/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace dtrec {
namespace {

constexpr char kMagic[4] = {'D', 'T', 'R', 'M'};
// Version history: 1 = magic + dims + payload (no integrity check);
// 2 = current, adds the u32 version field and the CRC-32 trailer. v1 files
// predate the crash-safety work and are not readable anymore — regenerate.
constexpr uint32_t kFormatVersion = 2;
// Sanity bound: 1e9 entries is an 8 GB matrix — far above anything dtrec
// produces, so larger dimensions indicate a corrupt stream.
constexpr uint64_t kMaxEntries = 1000000000ULL;

}  // namespace

Status SaveMatrix(const Matrix& matrix, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  const uint64_t rows = matrix.rows();
  const uint64_t cols = matrix.cols();
  const size_t payload_bytes = matrix.size() * sizeof(double);

  uint32_t crc = 0;
  crc = Crc32Update(crc, kMagic, sizeof(kMagic));
  crc = Crc32Update(crc, &kFormatVersion, sizeof(kFormatVersion));
  crc = Crc32Update(crc, &rows, sizeof(rows));
  crc = Crc32Update(crc, &cols, sizeof(cols));
  crc = Crc32Update(crc, matrix.data(), payload_bytes);

  out->write(kMagic, sizeof(kMagic));
  out->write(reinterpret_cast<const char*>(&kFormatVersion),
             sizeof(kFormatVersion));
  out->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out->write(reinterpret_cast<const char*>(matrix.data()),
             static_cast<std::streamsize>(payload_bytes));
  out->write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!out->good()) return Status::Internal("matrix write failed");
  return Status::OK();
}

Result<Matrix> LoadMatrix(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad matrix magic");
  }
  uint32_t version = 0;
  in->read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in->good()) return Status::InvalidArgument("truncated matrix header");
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported matrix format version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kFormatVersion) + ")");
  }
  uint64_t rows = 0, cols = 0;
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in->good()) return Status::InvalidArgument("truncated matrix header");
  // Overflow-safe dimension check: rows*cols could wrap u64 on a corrupt
  // header, so bound via division instead of the product.
  if (rows > kMaxEntries || cols > kMaxEntries ||
      (cols != 0 && rows > kMaxEntries / cols)) {
    return Status::InvalidArgument("unreasonable matrix dimensions");
  }
  Matrix matrix(static_cast<size_t>(rows), static_cast<size_t>(cols));
  const std::streamsize payload_bytes =
      static_cast<std::streamsize>(matrix.size() * sizeof(double));
  in->read(reinterpret_cast<char*>(matrix.data()), payload_bytes);
  if (in->gcount() != payload_bytes) {
    return Status::InvalidArgument("truncated matrix payload");
  }
  uint32_t stored_crc = 0;
  in->read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  if (in->gcount() != static_cast<std::streamsize>(sizeof(stored_crc))) {
    return Status::InvalidArgument("truncated matrix trailer");
  }
  uint32_t crc = 0;
  crc = Crc32Update(crc, kMagic, sizeof(kMagic));
  crc = Crc32Update(crc, &version, sizeof(version));
  crc = Crc32Update(crc, &rows, sizeof(rows));
  crc = Crc32Update(crc, &cols, sizeof(cols));
  crc = Crc32Update(crc, matrix.data(),
                    static_cast<size_t>(payload_bytes));
  if (crc != stored_crc) {
    return Status::InvalidArgument("matrix checksum mismatch (corrupt file)");
  }
  return matrix;
}

Status SaveMatrixFile(const Matrix& matrix, const std::string& path) {
  std::ostringstream buf;
  DTREC_RETURN_IF_ERROR(SaveMatrix(matrix, &buf));
  return WriteFileAtomic(path, std::move(buf).str());
}

Result<Matrix> LoadMatrixFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  return LoadMatrix(&in);
}

}  // namespace dtrec
