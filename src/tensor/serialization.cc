#include "tensor/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace dtrec {
namespace {

constexpr char kMagic[4] = {'D', 'T', 'R', 'M'};
// Sanity bound: 1e9 entries is an 8 GB matrix — far above anything dtrec
// produces, so larger dimensions indicate a corrupt stream.
constexpr uint64_t kMaxEntries = 1000000000ULL;

}  // namespace

Status SaveMatrix(const Matrix& matrix, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  out->write(kMagic, sizeof(kMagic));
  const uint64_t rows = matrix.rows();
  const uint64_t cols = matrix.cols();
  out->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out->write(reinterpret_cast<const char*>(matrix.data()),
             static_cast<std::streamsize>(matrix.size() * sizeof(double)));
  if (!out->good()) return Status::Internal("matrix write failed");
  return Status::OK();
}

Result<Matrix> LoadMatrix(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad matrix magic");
  }
  uint64_t rows = 0, cols = 0;
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in->good()) return Status::InvalidArgument("truncated matrix header");
  if (rows * cols > kMaxEntries) {
    return Status::InvalidArgument("unreasonable matrix dimensions");
  }
  Matrix matrix(static_cast<size_t>(rows), static_cast<size_t>(cols));
  in->read(reinterpret_cast<char*>(matrix.data()),
           static_cast<std::streamsize>(matrix.size() * sizeof(double)));
  if (in->gcount() !=
      static_cast<std::streamsize>(matrix.size() * sizeof(double))) {
    return Status::InvalidArgument("truncated matrix payload");
  }
  return matrix;
}

Status SaveMatrixFile(const Matrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return SaveMatrix(matrix, &out);
}

Result<Matrix> LoadMatrixFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  return LoadMatrix(&in);
}

}  // namespace dtrec
