#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/random.h"

namespace dtrec {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    DTREC_CHECK_EQ(r.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, double stddev,
                            Rng* rng) {
  DTREC_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, double lo, double hi,
                             Rng* rng) {
  DTREC_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Uniform(lo, hi);
  return m;
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = row(r);
    for (size_t c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

Matrix Matrix::RowCopy(size_t r) const {
  DTREC_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  std::copy(row(r), row(r) + cols_, out.data());
  return out;
}

Matrix Matrix::ColBlock(size_t col_begin, size_t col_end) const {
  DTREC_CHECK_LE(col_begin, col_end);
  DTREC_CHECK_LE(col_end, cols_);
  Matrix out(rows_, col_end - col_begin);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(row(r) + col_begin, row(r) + col_end, out.row(r));
  }
  return out;
}

void Matrix::SetColBlock(size_t col_begin, const Matrix& block) {
  DTREC_CHECK_EQ(block.rows(), rows_);
  DTREC_CHECK_LE(col_begin + block.cols(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(block.row(r), block.row(r) + block.cols(), row(r) + col_begin);
  }
}

bool Matrix::AllClose(const Matrix& other, double atol, double rtol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double diff = std::fabs(data_[i] - other.data_[i]);
    if (diff > atol + rtol * std::fabs(other.data_[i])) return false;
  }
  return true;
}

bool Matrix::HasNonFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Mean() const {
  DTREC_CHECK(!empty());
  return Sum() / static_cast<double>(data_.size());
}

double Matrix::Min() const {
  DTREC_CHECK(!empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::Max() const {
  DTREC_CHECK(!empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::FrobeniusNormSquared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

std::string Matrix::DebugString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  const size_t show_rows = std::min(rows_, max_rows);
  for (size_t r = 0; r < show_rows; ++r) {
    os << (r == 0 ? "[" : ", [");
    const size_t show_cols = std::min(cols_, max_cols);
    for (size_t c = 0; c < show_cols; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    if (show_cols < cols_) os << ", ...";
    os << "]";
  }
  if (show_rows < rows_) os << ", ...";
  os << "]";
  return os.str();
}

bool operator==(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.at_flat(i) != b.at_flat(i)) return false;
  }
  return true;
}

}  // namespace dtrec
