#ifndef DTREC_TENSOR_SERIALIZATION_H_
#define DTREC_TENSOR_SERIALIZATION_H_

#include <istream>
#include <ostream>
#include <string>

#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec {

/// Binary Matrix serialization: magic "DTRM", u64 rows, u64 cols, then
/// rows·cols little-endian doubles. Host byte order is assumed (the
/// format is a local checkpoint, not a wire format).
Status SaveMatrix(const Matrix& matrix, std::ostream* out);

/// Reads one matrix written by SaveMatrix; fails on bad magic, truncated
/// payload, or absurd dimensions.
Result<Matrix> LoadMatrix(std::istream* in);

/// Whole-file convenience wrappers.
Status SaveMatrixFile(const Matrix& matrix, const std::string& path);
Result<Matrix> LoadMatrixFile(const std::string& path);

}  // namespace dtrec

#endif  // DTREC_TENSOR_SERIALIZATION_H_
