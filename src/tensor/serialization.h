#ifndef DTREC_TENSOR_SERIALIZATION_H_
#define DTREC_TENSOR_SERIALIZATION_H_

#include <istream>
#include <ostream>
#include <string>

#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec {

/// Binary Matrix record, format version 2:
///
///   magic "DTRM" · u32 version (= 2) · u64 rows · u64 cols ·
///   rows·cols little-endian doubles · u32 CRC-32
///
/// The trailing CRC covers every preceding byte of the record (magic
/// included), so a torn or bit-flipped file is rejected at load with a
/// clean Status instead of deserializing garbage. Host byte order is
/// assumed (the format is a local checkpoint, not a wire format). Records
/// are self-delimiting: multi-matrix files simply concatenate them.
Status SaveMatrix(const Matrix& matrix, std::ostream* out);

/// Reads one matrix written by SaveMatrix; fails with a non-OK Status on
/// bad magic, unsupported version, absurd dimensions, truncation, or CRC
/// mismatch. Never crashes on corrupt input.
Result<Matrix> LoadMatrix(std::istream* in);

/// Whole-file convenience wrappers. SaveMatrixFile goes through
/// WriteFileAtomic, so the file at `path` is replaced crash-atomically.
Status SaveMatrixFile(const Matrix& matrix, const std::string& path);
Result<Matrix> LoadMatrixFile(const std::string& path);

}  // namespace dtrec

#endif  // DTREC_TENSOR_SERIALIZATION_H_
