#include "tensor/ops.h"

#include "tensor/kernels.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

// The three matmuls route through the blocked kernel layer
// (tensor/kernels.h). No data-dependent skips here: the seed's
// `aik == 0.0` shortcut changed IEEE semantics (0·NaN became 0, hiding a
// NaN/Inf in the other operand from the post-hoc finiteness check) and
// put an unpredictable branch in the dense hot loop.

Matrix MatMul(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  kernels::Gemm(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), b.data(),
                b.cols(), c.data(), c.cols());
  DTREC_ASSERT_FINITE(c, "MatMul");
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  kernels::GemmTransA(a.cols(), b.cols(), a.rows(), a.data(), a.cols(),
                      b.data(), b.cols(), c.data(), c.cols());
  DTREC_ASSERT_FINITE(c, "MatMulTransA");
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  kernels::GemmTransB(a.rows(), b.rows(), a.cols(), a.data(), a.cols(),
                      b.data(), b.cols(), c.data(), c.cols());
  DTREC_ASSERT_FINITE(c, "MatMulTransB");
  return c;
}

Matrix RowwiseDot(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.rows(), b.rows());
  DTREC_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), 1);
  kernels::BatchedRowDot(a.rows(), a.cols(), a.data(), a.cols(), b.data(),
                         b.cols(), c.data());
  DTREC_ASSERT_FINITE(c, "RowwiseDot");
  return c;
}

namespace {

Matrix Zip(const Matrix& a, const Matrix& b, double (*f)(double, double),
           const char* op) {
  DTREC_CHECK_EQ(a.rows(), b.rows());
  DTREC_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    c.at_flat(i) = f(a.at_flat(i), b.at_flat(i));
  }
  DTREC_ASSERT_FINITE(c, op);
  return c;
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x + y; }, "Add");
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x - y; }, "Sub");
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x * y; }, "Hadamard");
}

Matrix Divide(const Matrix& a, const Matrix& b) {
  return Zip(a, b, [](double x, double y) { return x / y; }, "Divide");
}

Matrix Scale(const Matrix& a, double alpha) {
  Matrix c = a;
  ScaleInPlace(&c, alpha);
  DTREC_ASSERT_FINITE(c, "Scale");
  return c;
}

void AddScaledInPlace(Matrix* a, const Matrix& b, double alpha) {
  DTREC_CHECK(a != nullptr);
  DTREC_CHECK_EQ(a->rows(), b.rows());
  DTREC_CHECK_EQ(a->cols(), b.cols());
  for (size_t i = 0; i < a->size(); ++i) {
    a->at_flat(i) += alpha * b.at_flat(i);
  }
  DTREC_ASSERT_FINITE(*a, "AddScaledInPlace");
}

void ScaleInPlace(Matrix* a, double alpha) {
  DTREC_CHECK(a != nullptr);
  for (size_t i = 0; i < a->size(); ++i) a->at_flat(i) *= alpha;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c.at_flat(i) = f(a.at_flat(i));
  DTREC_ASSERT_FINITE(c, "Map");
  return c;
}

Matrix SigmoidMat(const Matrix& a) {
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c.at_flat(i) = Sigmoid(a.at_flat(i));
  DTREC_ASSERT_FINITE(c, "SigmoidMat");
  return c;
}

double RowDot(const Matrix& a, size_t r, const Matrix& b, size_t r2) {
  DTREC_CHECK_EQ(a.cols(), b.cols());
  DTREC_CHECK_LT(r, a.rows());
  DTREC_CHECK_LT(r2, b.rows());
  const double* x = a.row(r);
  const double* y = b.row(r2);
  double s = 0.0;
  for (size_t k = 0; k < a.cols(); ++k) s += x[k] * y[k];
  DTREC_ASSERT_FINITE_VAL(s, "RowDot");
  return s;
}

double FlatDot(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a.at_flat(i) * b.at_flat(i);
  DTREC_ASSERT_FINITE_VAL(s, "FlatDot");
  return s;
}

Matrix ColSums(const Matrix& a) {
  Matrix c(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.row(r);
    for (size_t j = 0; j < a.cols(); ++j) c(0, j) += arow[j];
  }
  return c;
}

Matrix RowSums(const Matrix& a) {
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.row(r);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += arow[j];
    c(r, 0) = s;
  }
  return c;
}

Matrix HConcat(const Matrix& a, const Matrix& b) {
  DTREC_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  c.SetColBlock(0, a);
  c.SetColBlock(a.cols(), b);
  return c;
}

Matrix GatherRows(const Matrix& a, const std::vector<size_t>& rows) {
  Matrix c(rows.size(), a.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    DTREC_CHECK_LT(rows[i], a.rows());
    std::copy(a.row(rows[i]), a.row(rows[i]) + a.cols(), c.row(i));
  }
  return c;
}

void ScatterAddRows(Matrix* accum, const std::vector<size_t>& rows,
                    const Matrix& grad) {
  DTREC_CHECK(accum != nullptr);
  DTREC_CHECK_EQ(rows.size(), grad.rows());
  DTREC_CHECK_EQ(accum->cols(), grad.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    DTREC_CHECK_LT(rows[i], accum->rows());
    double* dst = accum->row(rows[i]);
    const double* src = grad.row(i);
    for (size_t j = 0; j < grad.cols(); ++j) dst[j] += src[j];
  }
}

}  // namespace dtrec
