#ifndef DTREC_TENSOR_OPS_H_
#define DTREC_TENSOR_OPS_H_

#include <functional>

#include "tensor/matrix.h"

namespace dtrec {

// Free-function kernels over Matrix. All functions check shapes with
// DTREC_CHECK and return freshly allocated results unless the name says
// InPlace. These are the primitives the autograd ops and the analytic
// trainers are written against.

/// C = A * B. Requires A.cols() == B.rows().
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = Aᵀ * B. Requires A.rows() == B.rows(). Avoids materializing Aᵀ.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * Bᵀ. Requires A.cols() == B.cols(). Avoids materializing Bᵀ.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Row-wise dot products: C(r, 0) = A.row(r) · B.row(r). Shapes must
/// match. Batched through the kernel layer so the finiteness guard runs
/// once on the whole result instead of per row.
Matrix RowwiseDot(const Matrix& a, const Matrix& b);

/// Element-wise sum / difference / product (Hadamard). Shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Element-wise division a ./ b; caller guarantees b has no zeros.
Matrix Divide(const Matrix& a, const Matrix& b);

/// alpha * A.
Matrix Scale(const Matrix& a, double alpha);

/// A += alpha * B (axpy). Shapes must match.
void AddScaledInPlace(Matrix* a, const Matrix& b, double alpha);

/// A *= alpha.
void ScaleInPlace(Matrix* a, double alpha);

/// Applies f to every entry, returning a new matrix.
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

/// Element-wise logistic sigmoid (numerically stable).
Matrix SigmoidMat(const Matrix& a);

/// Row r of `a` dotted with row r2 of `b`; rows must have equal length.
double RowDot(const Matrix& a, size_t r, const Matrix& b, size_t r2);

/// Dot product treating both matrices as flat vectors; shapes must match in
/// total size.
double FlatDot(const Matrix& a, const Matrix& b);

/// Sum over rows -> 1×cols matrix.
Matrix ColSums(const Matrix& a);

/// Sum over columns -> rows×1 matrix.
Matrix RowSums(const Matrix& a);

/// Horizontal concatenation [A | B]. Row counts must match.
Matrix HConcat(const Matrix& a, const Matrix& b);

/// Gathers the listed rows of `a` into a new matrix (one output row per
/// index, duplicates allowed).
Matrix GatherRows(const Matrix& a, const std::vector<size_t>& rows);

/// Adds each row of `grad` into row `rows[i]` of `accum` (scatter-add, the
/// adjoint of GatherRows).
void ScatterAddRows(Matrix* accum, const std::vector<size_t>& rows,
                    const Matrix& grad);

}  // namespace dtrec

#endif  // DTREC_TENSOR_OPS_H_
