#include "optim/adagrad.h"

#include <cmath>

#include "util/logging.h"

namespace dtrec {

AdaGrad::AdaGrad(double learning_rate, double epsilon, double weight_decay)
    : Optimizer(learning_rate),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  DTREC_CHECK_GT(epsilon, 0.0);
}

void AdaGrad::Step(Matrix* param, const Matrix& grad) {
  DTREC_CHECK(param != nullptr);
  DTREC_CHECK_EQ(param->rows(), grad.rows());
  DTREC_CHECK_EQ(param->cols(), grad.cols());

  auto [it, inserted] =
      accum_.try_emplace(param, Matrix(param->rows(), param->cols()));
  Matrix& acc = it->second;
  (void)inserted;
  for (size_t i = 0; i < param->size(); ++i) {
    const double g = grad.at_flat(i) + weight_decay_ * param->at_flat(i);
    acc.at_flat(i) += g * g;
    param->at_flat(i) -= lr_ * g / (std::sqrt(acc.at_flat(i)) + epsilon_);
  }
}

void AdaGrad::Reset() { accum_.clear(); }

}  // namespace dtrec
