#include "optim/adagrad.h"

#include <cmath>

#include "tensor/serialization.h"
#include "util/logging.h"

namespace dtrec {

AdaGrad::AdaGrad(double learning_rate, double epsilon, double weight_decay)
    : Optimizer(learning_rate),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  DTREC_CHECK_GT(epsilon, 0.0);
}

void AdaGrad::Step(Matrix* param, const Matrix& grad) {
  DTREC_CHECK(param != nullptr);
  DTREC_CHECK_EQ(param->rows(), grad.rows());
  DTREC_CHECK_EQ(param->cols(), grad.cols());

  auto [it, inserted] =
      accum_.try_emplace(param, Matrix(param->rows(), param->cols()));
  Matrix& acc = it->second;
  (void)inserted;
  for (size_t i = 0; i < param->size(); ++i) {
    const double g = grad.at_flat(i) + weight_decay_ * param->at_flat(i);
    acc.at_flat(i) += g * g;
    param->at_flat(i) -= lr_ * g / (std::sqrt(acc.at_flat(i)) + epsilon_);
  }
}

void AdaGrad::Reset() { accum_.clear(); }

Status AdaGrad::SaveSlots(const std::vector<const Matrix*>& params,
                          std::ostream* out) const {
  for (const Matrix* param : params) {
    const auto it = accum_.find(param);
    DTREC_RETURN_IF_ERROR(
        optim_internal::WriteSlotFlag(it != accum_.end(), out));
    if (it != accum_.end()) {
      DTREC_RETURN_IF_ERROR(SaveMatrix(it->second, out));
    }
  }
  return Status::OK();
}

Status AdaGrad::LoadSlots(const std::vector<Matrix*>& params,
                          std::istream* in) {
  accum_.clear();
  for (Matrix* param : params) {
    auto present = optim_internal::ReadSlotFlag(in);
    if (!present.ok()) return present.status();
    if (!present.value()) continue;
    Matrix acc;
    DTREC_RETURN_IF_ERROR(optim_internal::LoadSlotMatrix(in, *param, &acc));
    accum_.emplace(param, std::move(acc));
  }
  return Status::OK();
}

}  // namespace dtrec
