#include "optim/sgd.h"

#include "tensor/serialization.h"
#include "util/logging.h"

namespace dtrec {

Sgd::Sgd(double learning_rate, double momentum, double weight_decay)
    : Optimizer(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  DTREC_CHECK_GE(momentum, 0.0);
  DTREC_CHECK_LT(momentum, 1.0);
}

void Sgd::Step(Matrix* param, const Matrix& grad) {
  DTREC_CHECK(param != nullptr);
  DTREC_CHECK_EQ(param->rows(), grad.rows());
  DTREC_CHECK_EQ(param->cols(), grad.cols());

  if (momentum_ == 0.0) {
    for (size_t i = 0; i < param->size(); ++i) {
      const double g = grad.at_flat(i) + weight_decay_ * param->at_flat(i);
      param->at_flat(i) -= lr_ * g;
    }
    return;
  }

  auto [it, inserted] = velocity_.try_emplace(
      param, Matrix(param->rows(), param->cols()));
  Matrix& v = it->second;
  if (!inserted) {
    DTREC_CHECK_EQ(v.rows(), param->rows());
    DTREC_CHECK_EQ(v.cols(), param->cols());
  }
  for (size_t i = 0; i < param->size(); ++i) {
    const double g = grad.at_flat(i) + weight_decay_ * param->at_flat(i);
    v.at_flat(i) = momentum_ * v.at_flat(i) + g;
    param->at_flat(i) -= lr_ * v.at_flat(i);
  }
}

void Sgd::Reset() { velocity_.clear(); }

Status Sgd::SaveSlots(const std::vector<const Matrix*>& params,
                      std::ostream* out) const {
  for (const Matrix* param : params) {
    const auto it = velocity_.find(param);
    DTREC_RETURN_IF_ERROR(
        optim_internal::WriteSlotFlag(it != velocity_.end(), out));
    if (it != velocity_.end()) {
      DTREC_RETURN_IF_ERROR(SaveMatrix(it->second, out));
    }
  }
  return Status::OK();
}

Status Sgd::LoadSlots(const std::vector<Matrix*>& params, std::istream* in) {
  velocity_.clear();
  for (Matrix* param : params) {
    auto present = optim_internal::ReadSlotFlag(in);
    if (!present.ok()) return present.status();
    if (!present.value()) continue;
    Matrix v;
    DTREC_RETURN_IF_ERROR(optim_internal::LoadSlotMatrix(in, *param, &v));
    velocity_.emplace(param, std::move(v));
  }
  return Status::OK();
}

}  // namespace dtrec
