#include "optim/lr_schedule.h"

#include <cmath>

#include "util/logging.h"

namespace dtrec {

ExponentialDecayLr::ExponentialDecayLr(double base, double decay,
                                       int64_t decay_steps)
    : base_(base), decay_(decay), decay_steps_(decay_steps) {
  DTREC_CHECK_GT(decay, 0.0);
  DTREC_CHECK_GT(decay_steps, 0);
}

double ExponentialDecayLr::LearningRate(int64_t step) const {
  const double exponent =
      static_cast<double>(step) / static_cast<double>(decay_steps_);
  return base_ * std::pow(decay_, exponent);
}

}  // namespace dtrec
