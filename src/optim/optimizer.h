#ifndef DTREC_OPTIM_OPTIMIZER_H_
#define DTREC_OPTIM_OPTIMIZER_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec {

/// First-order optimizer interface.
///
/// Trainers own their parameter matrices; the optimizer keeps per-parameter
/// slot state (momenta etc.) keyed by the parameter's address, so a
/// parameter must live at a stable address for the lifetime of training.
class Optimizer {
 public:
  explicit Optimizer(double learning_rate) : lr_(learning_rate) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one in-place update to `param` given its gradient.
  virtual void Step(Matrix* param, const Matrix& grad) = 0;

  /// Drops all accumulated slot state (e.g. between folds).
  virtual void Reset() = 0;

  /// Human-readable name, e.g. "adam".
  virtual std::string name() const = 0;

  /// Serializes the per-parameter slot state (momenta, accumulators, step
  /// counters) for each matrix in `params`, positionally. Slots are keyed
  /// by parameter address in memory, which means nothing on disk — so the
  /// caller fixes an ordering (the trainer's checkpoint param list) and the
  /// optimizer emits, per parameter: a u8 presence flag, then its
  /// optimizer-specific payload (matrices in tensor/serialization format).
  /// Parameters the optimizer has never stepped get flag 0.
  virtual Status SaveSlots(const std::vector<const Matrix*>& params,
                           std::ostream* out) const = 0;

  /// Restores slot state written by SaveSlots against the same parameter
  /// list (now the live, mutable matrices). Drops all existing slots first;
  /// rejects shape mismatches with FailedPrecondition.
  virtual Status LoadSlots(const std::vector<Matrix*>& params,
                           std::istream* in) = 0;

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  double lr_;
};

/// Supported optimizer kinds for config-driven construction.
enum class OptimizerKind { kSgd, kAdam, kAdaGrad };

/// Factory used by the experiment configs. `weight_decay` is decoupled
/// (applied as L2 on the gradient) for all kinds.
std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate,
                                         double weight_decay = 0.0);

/// Scales the gradients in place so their joint L2 norm is at most
/// `max_norm`; returns the pre-clip norm. No-op when already within bound.
double ClipGradNorm(const std::vector<Matrix*>& grads, double max_norm);

// Shared plumbing for the SaveSlots/LoadSlots implementations.
namespace optim_internal {

/// u8 presence flag (0 or 1).
Status WriteSlotFlag(bool present, std::ostream* out);
Result<bool> ReadSlotFlag(std::istream* in);

/// Loads one matrix and verifies it matches `like`'s shape.
Status LoadSlotMatrix(std::istream* in, const Matrix& like, Matrix* out);

}  // namespace optim_internal

}  // namespace dtrec

#endif  // DTREC_OPTIM_OPTIMIZER_H_
