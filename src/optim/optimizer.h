#ifndef DTREC_OPTIM_OPTIMIZER_H_
#define DTREC_OPTIM_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace dtrec {

/// First-order optimizer interface.
///
/// Trainers own their parameter matrices; the optimizer keeps per-parameter
/// slot state (momenta etc.) keyed by the parameter's address, so a
/// parameter must live at a stable address for the lifetime of training.
class Optimizer {
 public:
  explicit Optimizer(double learning_rate) : lr_(learning_rate) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one in-place update to `param` given its gradient.
  virtual void Step(Matrix* param, const Matrix& grad) = 0;

  /// Drops all accumulated slot state (e.g. between folds).
  virtual void Reset() = 0;

  /// Human-readable name, e.g. "adam".
  virtual std::string name() const = 0;

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  double lr_;
};

/// Supported optimizer kinds for config-driven construction.
enum class OptimizerKind { kSgd, kAdam, kAdaGrad };

/// Factory used by the experiment configs. `weight_decay` is decoupled
/// (applied as L2 on the gradient) for all kinds.
std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate,
                                         double weight_decay = 0.0);

/// Scales the gradients in place so their joint L2 norm is at most
/// `max_norm`; returns the pre-clip norm. No-op when already within bound.
double ClipGradNorm(const std::vector<Matrix*>& grads, double max_norm);

}  // namespace dtrec

#endif  // DTREC_OPTIM_OPTIMIZER_H_
