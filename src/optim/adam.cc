#include "optim/adam.h"

#include <cmath>

#include "tensor/serialization.h"
#include "util/logging.h"

namespace dtrec {

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon,
           double weight_decay)
    : Optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  DTREC_CHECK_GT(beta1, 0.0);
  DTREC_CHECK_LT(beta1, 1.0);
  DTREC_CHECK_GT(beta2, 0.0);
  DTREC_CHECK_LT(beta2, 1.0);
  DTREC_CHECK_GT(epsilon, 0.0);
}

void Adam::Step(Matrix* param, const Matrix& grad) {
  DTREC_CHECK(param != nullptr);
  DTREC_CHECK_EQ(param->rows(), grad.rows());
  DTREC_CHECK_EQ(param->cols(), grad.cols());

  auto [it, inserted] = slots_.try_emplace(param);
  Slot& slot = it->second;
  if (inserted) {
    slot.m = Matrix(param->rows(), param->cols());
    slot.v = Matrix(param->rows(), param->cols());
  }
  slot.t += 1;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(slot.t));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(slot.t));

  for (size_t i = 0; i < param->size(); ++i) {
    const double g = grad.at_flat(i) + weight_decay_ * param->at_flat(i);
    slot.m.at_flat(i) = beta1_ * slot.m.at_flat(i) + (1.0 - beta1_) * g;
    slot.v.at_flat(i) = beta2_ * slot.v.at_flat(i) + (1.0 - beta2_) * g * g;
    const double m_hat = slot.m.at_flat(i) / bc1;
    const double v_hat = slot.v.at_flat(i) / bc2;
    param->at_flat(i) -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void Adam::Reset() { slots_.clear(); }

Status Adam::SaveSlots(const std::vector<const Matrix*>& params,
                       std::ostream* out) const {
  for (const Matrix* param : params) {
    const auto it = slots_.find(param);
    DTREC_RETURN_IF_ERROR(
        optim_internal::WriteSlotFlag(it != slots_.end(), out));
    if (it == slots_.end()) continue;
    const Slot& slot = it->second;
    DTREC_RETURN_IF_ERROR(SaveMatrix(slot.m, out));
    DTREC_RETURN_IF_ERROR(SaveMatrix(slot.v, out));
    out->write(reinterpret_cast<const char*>(&slot.t), sizeof(slot.t));
    if (!out->good()) return Status::Internal("adam slot write failed");
  }
  return Status::OK();
}

Status Adam::LoadSlots(const std::vector<Matrix*>& params, std::istream* in) {
  slots_.clear();
  for (Matrix* param : params) {
    auto present = optim_internal::ReadSlotFlag(in);
    if (!present.ok()) return present.status();
    if (!present.value()) continue;
    Slot slot;
    DTREC_RETURN_IF_ERROR(optim_internal::LoadSlotMatrix(in, *param, &slot.m));
    DTREC_RETURN_IF_ERROR(optim_internal::LoadSlotMatrix(in, *param, &slot.v));
    in->read(reinterpret_cast<char*>(&slot.t), sizeof(slot.t));
    if (in->gcount() != static_cast<std::streamsize>(sizeof(slot.t)) ||
        slot.t < 0) {
      return Status::InvalidArgument("truncated or corrupt adam step counter");
    }
    slots_.emplace(param, std::move(slot));
  }
  return Status::OK();
}

}  // namespace dtrec
