#ifndef DTREC_OPTIM_ADAM_H_
#define DTREC_OPTIM_ADAM_H_

#include <string>
#include <unordered_map>

#include "optim/optimizer.h"

namespace dtrec {

/// Adam (Kingma & Ba, 2015) with bias correction and optional L2 weight
/// decay folded into the gradient — matching the paper's training setup
/// ("implemented on PyTorch with Adam as the optimizer").
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8,
                double weight_decay = 0.0);

  void Step(Matrix* param, const Matrix& grad) override;
  void Reset() override;
  std::string name() const override { return "adam"; }

  /// Slot payload per present parameter: first moment m, second moment v,
  /// then the i64 step counter t (bias correction depends on it).
  Status SaveSlots(const std::vector<const Matrix*>& params,
                   std::ostream* out) const override;
  Status LoadSlots(const std::vector<Matrix*>& params,
                   std::istream* in) override;

 private:
  struct Slot {
    Matrix m;  // first moment
    Matrix v;  // second moment
    int64_t t = 0;
  };

  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  std::unordered_map<const Matrix*, Slot> slots_;
};

}  // namespace dtrec

#endif  // DTREC_OPTIM_ADAM_H_
