#ifndef DTREC_OPTIM_LR_SCHEDULE_H_
#define DTREC_OPTIM_LR_SCHEDULE_H_

#include <cstdint>
#include <memory>

namespace dtrec {

/// Learning-rate schedule: maps a 0-based step index to a learning rate.
/// Trainers call lr(step) and forward it to Optimizer::set_learning_rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double LearningRate(int64_t step) const = 0;
};

/// lr(t) = base.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double base) : base_(base) {}
  double LearningRate(int64_t) const override { return base_; }

 private:
  double base_;
};

/// lr(t) = base · decay^(t / decay_steps), continuous exponential decay.
class ExponentialDecayLr : public LrSchedule {
 public:
  ExponentialDecayLr(double base, double decay, int64_t decay_steps);
  double LearningRate(int64_t step) const override;

 private:
  double base_;
  double decay_;
  int64_t decay_steps_;
};

/// lr(t) = base / (1 + rate·t): classic inverse-time decay, the standard
/// Robbins–Monro-compatible choice for SGD convergence.
class InverseTimeDecayLr : public LrSchedule {
 public:
  InverseTimeDecayLr(double base, double rate) : base_(base), rate_(rate) {}
  double LearningRate(int64_t step) const override {
    return base_ / (1.0 + rate_ * static_cast<double>(step));
  }

 private:
  double base_;
  double rate_;
};

}  // namespace dtrec

#endif  // DTREC_OPTIM_LR_SCHEDULE_H_
