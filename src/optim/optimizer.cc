#include "optim/optimizer.h"

#include <cmath>

#include "optim/adagrad.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "tensor/serialization.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dtrec {
namespace optim_internal {

Status WriteSlotFlag(bool present, std::ostream* out) {
  const char flag = present ? 1 : 0;
  out->write(&flag, 1);
  if (!out->good()) return Status::Internal("slot flag write failed");
  return Status::OK();
}

Result<bool> ReadSlotFlag(std::istream* in) {
  char flag = 0;
  in->read(&flag, 1);
  if (in->gcount() != 1) {
    return Status::InvalidArgument("truncated optimizer slot flag");
  }
  if (flag != 0 && flag != 1) {
    return Status::InvalidArgument("corrupt optimizer slot flag");
  }
  return flag == 1;
}

Status LoadSlotMatrix(std::istream* in, const Matrix& like, Matrix* out) {
  auto loaded = LoadMatrix(in);
  if (!loaded.ok()) return loaded.status();
  Matrix& m = loaded.value();
  if (m.rows() != like.rows() || m.cols() != like.cols()) {
    return Status::FailedPrecondition(StrFormat(
        "optimizer slot is %zux%zu but its parameter is %zux%zu", m.rows(),
        m.cols(), like.rows(), like.cols()));
  }
  *out = std::move(m);
  return Status::OK();
}

}  // namespace optim_internal

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate,
                                         double weight_decay) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<Sgd>(learning_rate, /*momentum=*/0.0,
                                   weight_decay);
    case OptimizerKind::kAdam:
      return std::make_unique<Adam>(learning_rate, 0.9, 0.999, 1e-8,
                                    weight_decay);
    case OptimizerKind::kAdaGrad:
      return std::make_unique<AdaGrad>(learning_rate, 1e-10, weight_decay);
  }
  DTREC_CHECK(false) << "unknown optimizer kind";
  return nullptr;
}

double ClipGradNorm(const std::vector<Matrix*>& grads, double max_norm) {
  DTREC_CHECK_GT(max_norm, 0.0);
  double total_sq = 0.0;
  for (const Matrix* g : grads) {
    DTREC_CHECK(g != nullptr);
    total_sq += g->FrobeniusNormSquared();
  }
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Matrix* g : grads) {
      for (size_t i = 0; i < g->size(); ++i) g->at_flat(i) *= scale;
    }
  }
  return norm;
}

}  // namespace dtrec
