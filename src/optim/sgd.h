#ifndef DTREC_OPTIM_SGD_H_
#define DTREC_OPTIM_SGD_H_

#include <string>
#include <unordered_map>

#include "optim/optimizer.h"

namespace dtrec {

/// Stochastic gradient descent with optional classical momentum and
/// decoupled L2 weight decay:
///   v ← μ·v + (g + wd·θ);  θ ← θ − lr·v
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0,
               double weight_decay = 0.0);

  void Step(Matrix* param, const Matrix& grad) override;
  void Reset() override;
  std::string name() const override { return "sgd"; }

  /// Slot payload per present parameter: the velocity matrix. Momentum-free
  /// SGD keeps no slots, so every flag is 0.
  Status SaveSlots(const std::vector<const Matrix*>& params,
                   std::ostream* out) const override;
  Status LoadSlots(const std::vector<Matrix*>& params,
                   std::istream* in) override;

 private:
  double momentum_;
  double weight_decay_;
  std::unordered_map<const Matrix*, Matrix> velocity_;
};

}  // namespace dtrec

#endif  // DTREC_OPTIM_SGD_H_
