#ifndef DTREC_OPTIM_ADAGRAD_H_
#define DTREC_OPTIM_ADAGRAD_H_

#include <string>
#include <unordered_map>

#include "optim/optimizer.h"

namespace dtrec {

/// AdaGrad (Duchi et al., 2011): per-coordinate learning rates that shrink
/// with accumulated squared gradients. Useful for the sparse embedding
/// updates of observed-only samplers.
class AdaGrad : public Optimizer {
 public:
  explicit AdaGrad(double learning_rate, double epsilon = 1e-10,
                   double weight_decay = 0.0);

  void Step(Matrix* param, const Matrix& grad) override;
  void Reset() override;
  std::string name() const override { return "adagrad"; }

  /// Slot payload per present parameter: the squared-gradient accumulator.
  Status SaveSlots(const std::vector<const Matrix*>& params,
                   std::ostream* out) const override;
  Status LoadSlots(const std::vector<Matrix*>& params,
                   std::istream* in) override;

 private:
  double epsilon_;
  double weight_decay_;
  std::unordered_map<const Matrix*, Matrix> accum_;
};

}  // namespace dtrec

#endif  // DTREC_OPTIM_ADAGRAD_H_
