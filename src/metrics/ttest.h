#ifndef DTREC_METRICS_TTEST_H_
#define DTREC_METRICS_TTEST_H_

#include <vector>

#include "util/status.h"

namespace dtrec {

/// Outcome of a paired t-test between two matched samples.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_two_sided = 1.0;
  double p_one_sided = 1.0;  ///< H1: mean(a) > mean(b)

  /// The paper marks results with * when p <= 0.05 (two-sided).
  bool significant(double alpha = 0.05) const {
    return p_two_sided <= alpha;
  }
};

/// Paired t-test on matched samples `a` and `b` (e.g. metric values of two
/// methods across the same seeds). Fails when sizes differ, n < 2, or the
/// paired differences are constant-zero (t undefined).
Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b);

/// CDF of Student's t distribution with `dof` degrees of freedom,
/// evaluated via the regularized incomplete beta function.
double StudentTCdf(double t, double dof);

/// Regularized incomplete beta function I_x(a, b) by continued fraction
/// (Numerical-Recipes-style Lentz algorithm). Domain: x∈[0,1], a,b > 0.
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace dtrec

#endif  // DTREC_METRICS_TTEST_H_
