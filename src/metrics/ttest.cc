#include "metrics/ttest.h"

#include <cmath>

#include "util/logging.h"

namespace dtrec {
namespace {

/// Continued-fraction evaluation of the incomplete beta (Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  DTREC_CHECK_GT(a, 0.0);
  DTREC_CHECK_GT(b, 0.0);
  DTREC_CHECK_GE(x, 0.0);
  DTREC_CHECK_LE(x, 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction fast-converging.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double dof) {
  DTREC_CHECK_GT(dof, 0.0);
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired samples must have equal size");
  }
  const size_t n = a.size();
  if (n < 2) {
    return Status::FailedPrecondition("paired t-test needs n >= 2");
  }
  double mean_diff = 0.0;
  for (size_t i = 0; i < n; ++i) mean_diff += a[i] - b[i];
  mean_diff /= static_cast<double>(n);
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i] - mean_diff;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);
  if (var == 0.0) {
    if (mean_diff == 0.0) {
      return Status::FailedPrecondition(
          "all paired differences are identical and zero; t undefined");
    }
    // Constant non-zero difference: infinitely significant.
    TTestResult result;
    result.t_statistic = mean_diff > 0 ? 1e30 : -1e30;
    result.degrees_of_freedom = static_cast<double>(n - 1);
    result.p_two_sided = 0.0;
    result.p_one_sided = mean_diff > 0 ? 0.0 : 1.0;
    return result;
  }
  TTestResult result;
  result.degrees_of_freedom = static_cast<double>(n - 1);
  result.t_statistic =
      mean_diff / std::sqrt(var / static_cast<double>(n));
  const double cdf = StudentTCdf(result.t_statistic,
                                 result.degrees_of_freedom);
  result.p_one_sided = 1.0 - cdf;
  result.p_two_sided = 2.0 * std::min(cdf, 1.0 - cdf);
  return result;
}

}  // namespace dtrec
