#ifndef DTREC_METRICS_RANKING_H_
#define DTREC_METRICS_RANKING_H_

#include <cstddef>
#include <vector>

#include "data/rating_dataset.h"

namespace dtrec {

/// Ranking quality of predictions on a test split with binary relevance.
struct RankingMetrics {
  double auc = 0.0;        ///< global AUC; NaN when the split is degenerate
  double ndcg_at_k = 0.0;  ///< per-user NDCG@K, averaged over scored users
  double recall_at_k = 0.0;  ///< per-user Recall@K, averaged
  size_t users_scored = 0;   ///< users contributing to NDCG/Recall
  size_t users_skipped = 0;  ///< users with no positive item (no signal)
};

/// Global AUC: P(score(positive) > score(negative)) over all label-1 vs
/// label-0 pairs, ties counted half. Computed in O(n log n) via ranks.
/// All-positive or all-negative input defines no pairwise ranking and
/// returns NaN (callers skip-and-count; a degenerate split must not abort
/// a whole comparison sweep).
double GlobalAuc(const std::vector<double>& score,
                 const std::vector<double>& label);

/// NDCG@K for one user's test items: items ranked by score descending;
/// DCG = Σ_{ranked j, label=1, j<=K} 1/log2(j+1); IDCG = best possible.
/// Returns 0 when the user has no positive item.
double NdcgAtK(const std::vector<double>& score,
               const std::vector<double>& label, size_t k);

/// Recall@K for one user: (#positives ranked in top K) / min(K, #pos).
/// Returns 0 when the user has no positive item.
double RecallAtK(const std::vector<double>& score,
                 const std::vector<double>& label, size_t k);

/// Average precision at K for one user: mean over relevant ranks of
/// precision@rank, normalized by min(K, #positives). 0 if no positives.
double AveragePrecisionAtK(const std::vector<double>& score,
                           const std::vector<double>& label, size_t k);

/// Reciprocal rank of the first relevant item (0 if none).
double ReciprocalRank(const std::vector<double>& score,
                      const std::vector<double>& label);

/// Catalog coverage: fraction of distinct items appearing in any user's
/// top-K list, over the total item count. `test` supplies the candidate
/// lists (grouped per user); item identity comes from the triples.
double CatalogCoverageAtK(const std::vector<RatingTriple>& test,
                          const std::vector<double>& predictions, size_t k,
                          size_t num_items);

/// Full evaluation protocol of the paper's Tables III/IV: `predictions[i]`
/// scores `test[i]`; triples with rating >= `positive_threshold` are the
/// relevant items; items are grouped and ranked per user; users whose test
/// slice has no positive item are skipped for NDCG/Recall (they carry no
/// ranking signal, `users_skipped` counts them) but still feed the global
/// AUC. The default threshold of 4 matches raw 5-star data (4–5 stars are
/// relevant); pipelines whose labels are already binarized to {0, 1} must
/// pass 0.5 — thread it from DatasetProfile::positive_threshold rather
/// than relying on the default.
RankingMetrics ComputeRankingMetrics(const std::vector<RatingTriple>& test,
                                     const std::vector<double>& predictions,
                                     size_t k, double positive_threshold = 4.0);

}  // namespace dtrec

#endif  // DTREC_METRICS_RANKING_H_
