#ifndef DTREC_METRICS_STATS_H_
#define DTREC_METRICS_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dtrec {

/// Summary of repeated measurements (metric values over seeds).
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;  ///< sample standard deviation (n-1), 0 when n < 2
  size_t n = 0;

  /// "0.715±0.003" with the given precision — the paper's table format.
  std::string ToString(int precision = 3) const;
};

/// Computes mean and sample standard deviation of `values`.
MeanStd ComputeMeanStd(const std::vector<double>& values);

/// Streaming mean/variance accumulator (Welford), for long runs where
/// storing every sample is wasteful.
class RunningStat {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); 0 when count < 2.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dtrec

#endif  // DTREC_METRICS_STATS_H_
