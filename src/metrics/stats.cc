#include "metrics/stats.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace dtrec {

std::string MeanStd::ToString(int precision) const {
  return StrFormat("%.*f±%.*f", precision, mean, precision, std);
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  out.n = values.size();
  if (values.empty()) return out;
  RunningStat stat;
  for (double v : values) stat.Add(v);
  out.mean = stat.mean();
  out.std = stat.stddev();
  return out;
}

void RunningStat::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace dtrec
