#include "metrics/pointwise.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace dtrec {

double MeanSquaredError(const Matrix& prediction, const Matrix& target) {
  DTREC_CHECK_EQ(prediction.rows(), target.rows());
  DTREC_CHECK_EQ(prediction.cols(), target.cols());
  DTREC_CHECK(!prediction.empty());
  double total = 0.0;
  for (size_t i = 0; i < prediction.size(); ++i) {
    const double d = prediction.at_flat(i) - target.at_flat(i);
    total += d * d;
  }
  return total / static_cast<double>(prediction.size());
}

double MeanAbsoluteError(const Matrix& prediction, const Matrix& target) {
  DTREC_CHECK_EQ(prediction.rows(), target.rows());
  DTREC_CHECK_EQ(prediction.cols(), target.cols());
  DTREC_CHECK(!prediction.empty());
  double total = 0.0;
  for (size_t i = 0; i < prediction.size(); ++i) {
    total += std::fabs(prediction.at_flat(i) - target.at_flat(i));
  }
  return total / static_cast<double>(prediction.size());
}

double MaskedMeanSquaredError(const Matrix& prediction, const Matrix& target,
                              const Matrix& mask) {
  DTREC_CHECK_EQ(prediction.size(), target.size());
  DTREC_CHECK_EQ(prediction.size(), mask.size());
  double total = 0.0;
  double count = 0.0;
  for (size_t i = 0; i < prediction.size(); ++i) {
    if (mask.at_flat(i) == 0.0) continue;
    const double d = prediction.at_flat(i) - target.at_flat(i);
    total += d * d;
    count += 1.0;
  }
  DTREC_CHECK_GT(count, 0.0) << "mask selects no cells";
  return total / count;
}

double MeanSquaredError(const std::vector<double>& prediction,
                        const std::vector<double>& target) {
  DTREC_CHECK_EQ(prediction.size(), target.size());
  DTREC_CHECK(!prediction.empty());
  double total = 0.0;
  for (size_t i = 0; i < prediction.size(); ++i) {
    const double d = prediction[i] - target[i];
    total += d * d;
  }
  return total / static_cast<double>(prediction.size());
}

double MeanAbsoluteError(const std::vector<double>& prediction,
                         const std::vector<double>& target) {
  DTREC_CHECK_EQ(prediction.size(), target.size());
  DTREC_CHECK(!prediction.empty());
  double total = 0.0;
  for (size_t i = 0; i < prediction.size(); ++i) {
    total += std::fabs(prediction[i] - target[i]);
  }
  return total / static_cast<double>(prediction.size());
}

double MeanBinaryCrossEntropy(const std::vector<double>& probability,
                              const std::vector<double>& label) {
  DTREC_CHECK_EQ(probability.size(), label.size());
  DTREC_CHECK(!probability.empty());
  double total = 0.0;
  for (size_t i = 0; i < probability.size(); ++i) {
    total += BinaryCrossEntropy(label[i], probability[i]);
  }
  return total / static_cast<double>(probability.size());
}

double ExpectedCalibrationError(const std::vector<double>& probability,
                                const std::vector<double>& label,
                                size_t bins) {
  DTREC_CHECK_EQ(probability.size(), label.size());
  DTREC_CHECK(!probability.empty());
  DTREC_CHECK_GT(bins, 0u);
  std::vector<double> bin_conf(bins, 0.0), bin_acc(bins, 0.0);
  std::vector<size_t> bin_count(bins, 0);
  for (size_t i = 0; i < probability.size(); ++i) {
    const double p = Clamp(probability[i], 0.0, 1.0);
    size_t b = static_cast<size_t>(p * static_cast<double>(bins));
    if (b == bins) b = bins - 1;  // p == 1.0 lands in the last bin
    bin_conf[b] += p;
    bin_acc[b] += label[i];
    ++bin_count[b];
  }
  double ece = 0.0;
  const double n = static_cast<double>(probability.size());
  for (size_t b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) continue;
    const double count = static_cast<double>(bin_count[b]);
    ece += (count / n) *
           std::fabs(bin_acc[b] / count - bin_conf[b] / count);
  }
  return ece;
}

}  // namespace dtrec
