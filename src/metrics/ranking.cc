#include "metrics/ranking.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "util/logging.h"

namespace dtrec {

double GlobalAuc(const std::vector<double>& score,
                 const std::vector<double>& label) {
  DTREC_CHECK_EQ(score.size(), label.size());
  const size_t n = score.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return score[a] < score[b]; });

  // Average rank per tie group, then the Mann–Whitney U statistic.
  double rank_sum_pos = 0.0;
  size_t positives = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && score[order[j]] == score[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) /
                            2.0;  // 1-based ranks i+1..j
    for (size_t t = i; t < j; ++t) {
      if (label[order[t]] > 0.5) {
        rank_sum_pos += avg_rank;
        ++positives;
      }
    }
    i = j;
  }
  const size_t negatives = n - positives;
  // All-positive / all-negative input defines no pairwise ranking — NaN,
  // not a CHECK-abort: one degenerate test split must not kill a whole
  // RunComparison sweep. Callers skip-and-count NaN.
  if (positives == 0 || negatives == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double u = rank_sum_pos -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) *
              static_cast<double>(negatives));
}

namespace {

/// Indices of items sorted by score descending (stable for determinism).
std::vector<size_t> RankOrder(const std::vector<double>& score) {
  std::vector<size_t> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return score[a] > score[b];
  });
  return order;
}

}  // namespace

double NdcgAtK(const std::vector<double>& score,
               const std::vector<double>& label, size_t k) {
  DTREC_CHECK_EQ(score.size(), label.size());
  size_t positives = 0;
  for (double l : label) positives += l > 0.5 ? 1 : 0;
  if (positives == 0) return 0.0;

  const std::vector<size_t> order = RankOrder(score);
  double dcg = 0.0;
  const size_t depth = std::min(k, order.size());
  for (size_t rank = 0; rank < depth; ++rank) {
    if (label[order[rank]] > 0.5) {
      dcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
    }
  }
  double idcg = 0.0;
  const size_t ideal_depth = std::min(k, positives);
  for (size_t rank = 0; rank < ideal_depth; ++rank) {
    idcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
  }
  return dcg / idcg;
}

double RecallAtK(const std::vector<double>& score,
                 const std::vector<double>& label, size_t k) {
  DTREC_CHECK_EQ(score.size(), label.size());
  size_t positives = 0;
  for (double l : label) positives += l > 0.5 ? 1 : 0;
  if (positives == 0) return 0.0;

  const std::vector<size_t> order = RankOrder(score);
  size_t hits = 0;
  const size_t depth = std::min(k, order.size());
  for (size_t rank = 0; rank < depth; ++rank) {
    if (label[order[rank]] > 0.5) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(std::min(k, positives));
}

double AveragePrecisionAtK(const std::vector<double>& score,
                           const std::vector<double>& label, size_t k) {
  DTREC_CHECK_EQ(score.size(), label.size());
  size_t positives = 0;
  for (double l : label) positives += l > 0.5 ? 1 : 0;
  if (positives == 0) return 0.0;

  const std::vector<size_t> order = RankOrder(score);
  const size_t depth = std::min(k, order.size());
  double hits = 0.0, precision_sum = 0.0;
  for (size_t rank = 0; rank < depth; ++rank) {
    if (label[order[rank]] > 0.5) {
      hits += 1.0;
      precision_sum += hits / static_cast<double>(rank + 1);
    }
  }
  return precision_sum / static_cast<double>(std::min(k, positives));
}

double ReciprocalRank(const std::vector<double>& score,
                      const std::vector<double>& label) {
  DTREC_CHECK_EQ(score.size(), label.size());
  const std::vector<size_t> order = RankOrder(score);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (label[order[rank]] > 0.5) {
      return 1.0 / static_cast<double>(rank + 1);
    }
  }
  return 0.0;
}

double CatalogCoverageAtK(const std::vector<RatingTriple>& test,
                          const std::vector<double>& predictions, size_t k,
                          size_t num_items) {
  DTREC_CHECK_EQ(test.size(), predictions.size());
  DTREC_CHECK_GT(num_items, 0u);
  std::map<uint32_t, std::vector<std::pair<double, uint32_t>>> by_user;
  for (size_t i = 0; i < test.size(); ++i) {
    by_user[test[i].user].emplace_back(predictions[i], test[i].item);
  }
  std::set<uint32_t> recommended;
  for (auto& [user, scored] : by_user) {
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    const size_t depth = std::min(k, scored.size());
    for (size_t rank = 0; rank < depth; ++rank) {
      recommended.insert(scored[rank].second);
    }
  }
  return static_cast<double>(recommended.size()) /
         static_cast<double>(num_items);
}

RankingMetrics ComputeRankingMetrics(const std::vector<RatingTriple>& test,
                                     const std::vector<double>& predictions,
                                     size_t k, double positive_threshold) {
  DTREC_CHECK_EQ(test.size(), predictions.size());
  DTREC_CHECK(!test.empty());

  // Binarize once, up front, with the caller's relevance threshold. The
  // seed pushed raw ratings straight into the `> 0.5` binary-label
  // helpers, which on 1–5 star data makes every triple "positive" and
  // degenerates the AUC.
  std::vector<double> all_scores;
  std::vector<double> all_labels;
  all_scores.reserve(test.size());
  all_labels.reserve(test.size());

  std::map<uint32_t, std::pair<std::vector<double>, std::vector<double>>>
      by_user;
  for (size_t i = 0; i < test.size(); ++i) {
    const double label = test[i].rating >= positive_threshold ? 1.0 : 0.0;
    all_scores.push_back(predictions[i]);
    all_labels.push_back(label);
    auto& [scores, labels] = by_user[test[i].user];
    scores.push_back(predictions[i]);
    labels.push_back(label);
  }

  RankingMetrics out;
  out.auc = GlobalAuc(all_scores, all_labels);  // NaN if degenerate
  double ndcg_total = 0.0, recall_total = 0.0;
  for (const auto& [user, sl] : by_user) {
    const auto& [scores, labels] = sl;
    size_t positives = 0;
    for (double l : labels) positives += l > 0.5 ? 1 : 0;
    if (positives == 0) {
      ++out.users_skipped;
      continue;
    }
    ndcg_total += NdcgAtK(scores, labels, k);
    recall_total += RecallAtK(scores, labels, k);
    ++out.users_scored;
  }
  if (out.users_scored > 0) {
    out.ndcg_at_k = ndcg_total / static_cast<double>(out.users_scored);
    out.recall_at_k = recall_total / static_cast<double>(out.users_scored);
  }
  return out;
}

}  // namespace dtrec
