#ifndef DTREC_METRICS_POINTWISE_H_
#define DTREC_METRICS_POINTWISE_H_

#include <vector>

#include "tensor/matrix.h"

namespace dtrec {

/// Mean squared error between equal-shape matrices (e.g. predicted
/// conversion probabilities vs ground-truth η in the semi-synthetic
/// evaluation of Table III).
double MeanSquaredError(const Matrix& prediction, const Matrix& target);

/// Mean absolute error between equal-shape matrices.
double MeanAbsoluteError(const Matrix& prediction, const Matrix& target);

/// MSE restricted to the cells where mask != 0.
double MaskedMeanSquaredError(const Matrix& prediction, const Matrix& target,
                              const Matrix& mask);

/// MSE / MAE over aligned vectors.
double MeanSquaredError(const std::vector<double>& prediction,
                        const std::vector<double>& target);
double MeanAbsoluteError(const std::vector<double>& prediction,
                         const std::vector<double>& target);

/// Mean binary cross entropy of probabilities vs {0,1} labels.
double MeanBinaryCrossEntropy(const std::vector<double>& probability,
                              const std::vector<double>& label);

/// Expected calibration error with `bins` equal-width probability bins:
/// Σ_b (n_b/n)·|acc_b − conf_b|. Probes whether learned propensities are
/// honest probabilities (supports the identifiability experiments).
double ExpectedCalibrationError(const std::vector<double>& probability,
                                const std::vector<double>& label,
                                size_t bins = 10);

}  // namespace dtrec

#endif  // DTREC_METRICS_POINTWISE_H_
