#ifndef DTREC_DATA_SPLITS_H_
#define DTREC_DATA_SPLITS_H_

#include <utility>
#include <vector>

#include "data/rating_dataset.h"
#include "util/status.h"

namespace dtrec {

class Rng;

/// Randomly partitions `triples` into (first, second) with `first_fraction`
/// of the entries going to the first part. Deterministic given `rng`.
std::pair<std::vector<RatingTriple>, std::vector<RatingTriple>> RandomSplit(
    const std::vector<RatingTriple>& triples, double first_fraction,
    Rng* rng);

/// Holds out `holdout_per_user` interactions of each user from `triples`
/// into the second part (users with fewer interactions contribute all of
/// them to the first part). Used for per-user validation splits.
std::pair<std::vector<RatingTriple>, std::vector<RatingTriple>>
PerUserHoldout(const std::vector<RatingTriple>& triples, size_t num_users,
               size_t holdout_per_user, Rng* rng);

/// Carves a validation set out of `dataset.train()` (never touching the
/// unbiased test split), returning a new dataset whose test() is the
/// validation part. Fails if the train split is too small to cut.
Result<RatingDataset> MakeValidationSplit(const RatingDataset& dataset,
                                          double validation_fraction,
                                          Rng* rng);

}  // namespace dtrec

#endif  // DTREC_DATA_SPLITS_H_
