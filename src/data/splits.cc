#include "data/splits.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace dtrec {

std::pair<std::vector<RatingTriple>, std::vector<RatingTriple>> RandomSplit(
    const std::vector<RatingTriple>& triples, double first_fraction,
    Rng* rng) {
  DTREC_CHECK(rng != nullptr);
  DTREC_CHECK_GE(first_fraction, 0.0);
  DTREC_CHECK_LE(first_fraction, 1.0);
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  const size_t first_count = static_cast<size_t>(
      first_fraction * static_cast<double>(triples.size()));
  std::vector<RatingTriple> first, second;
  first.reserve(first_count);
  second.reserve(triples.size() - first_count);
  for (size_t i = 0; i < order.size(); ++i) {
    (i < first_count ? first : second).push_back(triples[order[i]]);
  }
  return {std::move(first), std::move(second)};
}

std::pair<std::vector<RatingTriple>, std::vector<RatingTriple>>
PerUserHoldout(const std::vector<RatingTriple>& triples, size_t num_users,
               size_t holdout_per_user, Rng* rng) {
  DTREC_CHECK(rng != nullptr);
  // Bucket interaction indices by user.
  std::vector<std::vector<size_t>> by_user(num_users);
  for (size_t i = 0; i < triples.size(); ++i) {
    DTREC_CHECK_LT(triples[i].user, num_users);
    by_user[triples[i].user].push_back(i);
  }
  std::vector<RatingTriple> kept, held;
  kept.reserve(triples.size());
  for (auto& indices : by_user) {
    if (indices.size() > holdout_per_user) {
      rng->Shuffle(&indices);
      for (size_t i = 0; i < indices.size(); ++i) {
        (i < holdout_per_user ? held : kept).push_back(triples[indices[i]]);
      }
    } else {
      for (size_t idx : indices) kept.push_back(triples[idx]);
    }
  }
  return {std::move(kept), std::move(held)};
}

Result<RatingDataset> MakeValidationSplit(const RatingDataset& dataset,
                                          double validation_fraction,
                                          Rng* rng) {
  if (validation_fraction <= 0.0 || validation_fraction >= 1.0) {
    return Status::InvalidArgument(
        "validation_fraction must be strictly inside (0, 1)");
  }
  if (dataset.train().size() < 10) {
    return Status::FailedPrecondition(
        "train split too small to carve a validation set");
  }
  auto [train_part, valid_part] =
      RandomSplit(dataset.train(), 1.0 - validation_fraction, rng);
  if (valid_part.empty()) {
    return Status::FailedPrecondition("validation split came out empty");
  }
  RatingDataset out(dataset.num_users(), dataset.num_items());
  *out.mutable_train() = std::move(train_part);
  *out.mutable_test() = std::move(valid_part);
  return out;
}

}  // namespace dtrec
