#ifndef DTREC_DATA_RATING_DATASET_H_
#define DTREC_DATA_RATING_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dtrec {

/// One (user, item, rating) interaction. Ratings are doubles so the same
/// struct carries 5-star ratings, binarized conversions, and watch ratios.
struct RatingTriple {
  uint32_t user = 0;
  uint32_t item = 0;
  double rating = 0.0;
};

/// A rating-prediction dataset under selection bias.
///
/// `train` holds the *observed* (o=1) interactions, which are MNAR in every
/// simulated real-world dataset; `test` holds unbiased (MCAR) interactions
/// used only for evaluation — mirroring Coat/Yahoo/KuaiRec, where a random
/// or exhaustive slice exists purely for testing.
class RatingDataset {
 public:
  RatingDataset() = default;
  RatingDataset(size_t num_users, size_t num_items)
      : num_users_(num_users), num_items_(num_items) {}

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }

  const std::vector<RatingTriple>& train() const { return train_; }
  const std::vector<RatingTriple>& test() const { return test_; }
  std::vector<RatingTriple>* mutable_train() { return &train_; }
  std::vector<RatingTriple>* mutable_test() { return &test_; }

  void AddTrain(uint32_t user, uint32_t item, double rating) {
    train_.push_back({user, item, rating});
  }
  void AddTest(uint32_t user, uint32_t item, double rating) {
    test_.push_back({user, item, rating});
  }

  /// Fraction of the full user-item matrix that is observed in train.
  double TrainDensity() const;

  /// Number of train interactions per user / per item (index = id).
  std::vector<size_t> UserCounts() const;
  std::vector<size_t> ItemCounts() const;

  /// Clips ratings to {0,1}: rating >= threshold -> 1 else 0, applied to
  /// both splits — the paper's preprocessing for Coat/Yahoo (threshold 3)
  /// and KuaiRec (threshold 1).
  void BinarizeRatings(double threshold);

  /// Structural validation: ids in range, non-empty splits, finite ratings.
  Status Validate() const;

  /// e.g. "RatingDataset(users=290, items=300, train=6960, test=4640)".
  std::string DebugString() const;

 private:
  size_t num_users_ = 0;
  size_t num_items_ = 0;
  std::vector<RatingTriple> train_;
  std::vector<RatingTriple> test_;
};

}  // namespace dtrec

#endif  // DTREC_DATA_RATING_DATASET_H_
