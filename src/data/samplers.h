#ifndef DTREC_DATA_SAMPLERS_H_
#define DTREC_DATA_SAMPLERS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/rating_dataset.h"
#include "tensor/matrix.h"
#include "util/random.h"

namespace dtrec {

/// One training mini-batch of user-item cells.
///
/// `ratings` holds the observed rating for cells with observed=1 and 0 for
/// unobserved cells (whose true rating is, by definition of the MNAR
/// problem, unknown to the trainer).
struct Batch {
  std::vector<size_t> users;
  std::vector<size_t> items;
  Matrix ratings;   // B×1
  Matrix observed;  // B×1, entries in {0,1}

  size_t size() const { return users.size(); }
};

/// Epoch-based shuffled mini-batches over the observed training triples.
/// Every batch has observed == 1 everywhere. Used by observed-only
/// objectives (naive MF) and by the error-imputation heads.
class ObservedBatchSampler {
 public:
  /// Keeps a reference to `dataset`; it must outlive the sampler.
  ObservedBatchSampler(const RatingDataset& dataset, size_t batch_size,
                       uint64_t seed);

  /// Fills `batch` with the next mini-batch of the current epoch; returns
  /// false (leaving `batch` empty) when the epoch is exhausted.
  bool NextBatch(Batch* batch);

  /// Reshuffles and restarts iteration.
  void NewEpoch();

  size_t batches_per_epoch() const;

 private:
  const RatingDataset& dataset_;
  size_t batch_size_;
  Rng rng_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
};

/// Uniform sampling of cells from the full matrix D = U×I, with observed
/// ratings looked up from the train split. This materializes the paper's
/// "1/|D| Σ_{(u,i)∈D}" losses stochastically: the mean over a uniform
/// batch is an unbiased estimate of the mean over D.
class FullMatrixBatchSampler {
 public:
  FullMatrixBatchSampler(const RatingDataset& dataset, uint64_t seed);

  /// Draws `batch_size` cells uniformly with replacement.
  Batch Sample(size_t batch_size);

  /// True observed-rating lookup; returns false for unobserved cells.
  bool Lookup(size_t user, size_t item, double* rating) const;

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }

  /// Direct access to the sampling stream, so training resume can restore
  /// the generator to its mid-run state (util/random.h Rng::State).
  Rng* mutable_rng() { return &rng_; }

 private:
  size_t num_users_;
  size_t num_items_;
  Rng rng_;
  std::unordered_map<uint64_t, double> observed_;
};

/// Builds one batch containing every observed training triple (small
/// datasets only) — used by full-batch trainers and tests.
Batch MakeFullObservedBatch(const RatingDataset& dataset);

}  // namespace dtrec

#endif  // DTREC_DATA_SAMPLERS_H_
