#ifndef DTREC_DATA_IO_H_
#define DTREC_DATA_IO_H_

#include <string>
#include <vector>

#include "data/rating_dataset.h"
#include "util/status.h"

namespace dtrec {

/// Persists rating triples as CSV with a "user,item,rating" header.
Status WriteRatingsCsv(const std::vector<RatingTriple>& triples,
                       const std::string& path);

/// Parses a ratings CSV produced by WriteRatingsCsv (or hand-made with the
/// same header). Rejects malformed rows with a line-numbered error.
Result<std::vector<RatingTriple>> ReadRatingsCsv(const std::string& path);

/// Saves a dataset as three files: <prefix>.meta (dimensions),
/// <prefix>.train.csv, <prefix>.test.csv. This is the interchange format
/// for plugging real data (Coat/Yahoo/KuaiRec exports) into the trainers —
/// convert the raw download to these CSVs and call LoadDataset.
Status SaveDataset(const RatingDataset& dataset, const std::string& prefix);

/// Loads a dataset saved by SaveDataset and validates it.
Result<RatingDataset> LoadDataset(const std::string& prefix);

}  // namespace dtrec

#endif  // DTREC_DATA_IO_H_
