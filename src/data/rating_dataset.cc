#include "data/rating_dataset.h"

#include <cmath>

#include "util/string_util.h"

namespace dtrec {

double RatingDataset::TrainDensity() const {
  if (num_users_ == 0 || num_items_ == 0) return 0.0;
  return static_cast<double>(train_.size()) /
         (static_cast<double>(num_users_) * static_cast<double>(num_items_));
}

std::vector<size_t> RatingDataset::UserCounts() const {
  std::vector<size_t> counts(num_users_, 0);
  for (const auto& t : train_) {
    if (t.user < num_users_) ++counts[t.user];
  }
  return counts;
}

std::vector<size_t> RatingDataset::ItemCounts() const {
  std::vector<size_t> counts(num_items_, 0);
  for (const auto& t : train_) {
    if (t.item < num_items_) ++counts[t.item];
  }
  return counts;
}

void RatingDataset::BinarizeRatings(double threshold) {
  for (auto& t : train_) t.rating = t.rating >= threshold ? 1.0 : 0.0;
  for (auto& t : test_) t.rating = t.rating >= threshold ? 1.0 : 0.0;
}

Status RatingDataset::Validate() const {
  if (num_users_ == 0 || num_items_ == 0) {
    return Status::InvalidArgument("dataset has zero users or items");
  }
  if (train_.empty()) {
    return Status::FailedPrecondition("dataset has no training interactions");
  }
  auto check = [&](const std::vector<RatingTriple>& split,
                   const char* name) -> Status {
    for (const auto& t : split) {
      if (t.user >= num_users_) {
        return Status::OutOfRange(StrFormat("%s user id %u >= num_users %zu",
                                            name, t.user, num_users_));
      }
      if (t.item >= num_items_) {
        return Status::OutOfRange(StrFormat("%s item id %u >= num_items %zu",
                                            name, t.item, num_items_));
      }
      if (!std::isfinite(t.rating)) {
        return Status::InvalidArgument(StrFormat(
            "%s rating for (%u,%u) is not finite", name, t.user, t.item));
      }
    }
    return Status::OK();
  };
  DTREC_RETURN_IF_ERROR(check(train_, "train"));
  DTREC_RETURN_IF_ERROR(check(test_, "test"));
  return Status::OK();
}

std::string RatingDataset::DebugString() const {
  return StrFormat("RatingDataset(users=%zu, items=%zu, train=%zu, test=%zu)",
                   num_users_, num_items_, train_.size(), test_.size());
}

}  // namespace dtrec
