#include "data/io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/string_util.h"

namespace dtrec {
namespace {

Status ParseRow(const std::string& line, size_t line_number,
                RatingTriple* out) {
  const std::vector<std::string> fields = Split(line, ',');
  if (fields.size() != 3) {
    return Status::InvalidArgument(
        StrFormat("line %zu: expected 3 fields, got %zu", line_number,
                  fields.size()));
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long user = std::strtoul(fields[0].c_str(), &end, 10);
  if (end == fields[0].c_str() || *end != '\0' || errno != 0) {
    return Status::InvalidArgument(
        StrFormat("line %zu: bad user id '%s'", line_number,
                  fields[0].c_str()));
  }
  errno = 0;
  const unsigned long item = std::strtoul(fields[1].c_str(), &end, 10);
  if (end == fields[1].c_str() || *end != '\0' || errno != 0) {
    return Status::InvalidArgument(
        StrFormat("line %zu: bad item id '%s'", line_number,
                  fields[1].c_str()));
  }
  const double rating = std::strtod(fields[2].c_str(), &end);
  if (end == fields[2].c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("line %zu: bad rating '%s'", line_number,
                  fields[2].c_str()));
  }
  out->user = static_cast<uint32_t>(user);
  out->item = static_cast<uint32_t>(item);
  out->rating = rating;
  return Status::OK();
}

}  // namespace

Status WriteRatingsCsv(const std::vector<RatingTriple>& triples,
                       const std::string& path) {
  std::ostringstream out;
  out << "user,item,rating\n";
  for (const auto& t : triples) {
    out << t.user << ',' << t.item << ',' << StrFormat("%.17g", t.rating)
        << '\n';
  }
  return WriteFileAtomic(path, std::move(out).str());
}

Result<std::vector<RatingTriple>> ReadRatingsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string line;
  if (!std::getline(in, line) ||
      StripWhitespace(line) != "user,item,rating") {
    return Status::InvalidArgument(
        "missing 'user,item,rating' header in " + path);
  }
  std::vector<RatingTriple> triples;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    RatingTriple triple;
    DTREC_RETURN_IF_ERROR(ParseRow(line, line_number, &triple));
    triples.push_back(triple);
  }
  return triples;
}

Status SaveDataset(const RatingDataset& dataset, const std::string& prefix) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  {
    std::ostringstream meta;
    meta << dataset.num_users() << ',' << dataset.num_items() << '\n';
    DTREC_RETURN_IF_ERROR(
        WriteFileAtomic(prefix + ".meta", std::move(meta).str()));
  }
  DTREC_RETURN_IF_ERROR(
      WriteRatingsCsv(dataset.train(), prefix + ".train.csv"));
  return WriteRatingsCsv(dataset.test(), prefix + ".test.csv");
}

Result<RatingDataset> LoadDataset(const std::string& prefix) {
  std::ifstream meta(prefix + ".meta");
  if (!meta.is_open()) {
    return Status::NotFound("cannot open: " + prefix + ".meta");
  }
  std::string line;
  if (!std::getline(meta, line)) {
    return Status::InvalidArgument("empty meta file");
  }
  const std::vector<std::string> dims = Split(std::string(
      StripWhitespace(line)), ',');
  if (dims.size() != 2) {
    return Status::InvalidArgument("meta must be 'num_users,num_items'");
  }
  const size_t num_users = std::strtoul(dims[0].c_str(), nullptr, 10);
  const size_t num_items = std::strtoul(dims[1].c_str(), nullptr, 10);

  auto train = ReadRatingsCsv(prefix + ".train.csv");
  if (!train.ok()) return train.status();
  auto test = ReadRatingsCsv(prefix + ".test.csv");
  if (!test.ok()) return test.status();

  RatingDataset dataset(num_users, num_items);
  *dataset.mutable_train() = std::move(train).value();
  *dataset.mutable_test() = std::move(test).value();
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace dtrec
