#include "data/samplers.h"

#include <algorithm>

#include "util/logging.h"

namespace dtrec {
namespace {

uint64_t CellKey(size_t user, size_t item, size_t num_items) {
  return static_cast<uint64_t>(user) * static_cast<uint64_t>(num_items) +
         static_cast<uint64_t>(item);
}

}  // namespace

ObservedBatchSampler::ObservedBatchSampler(const RatingDataset& dataset,
                                           size_t batch_size, uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), rng_(seed) {
  DTREC_CHECK_GT(batch_size, 0u);
  order_.resize(dataset.train().size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  NewEpoch();
}

bool ObservedBatchSampler::NextBatch(Batch* batch) {
  DTREC_CHECK(batch != nullptr);
  batch->users.clear();
  batch->items.clear();
  if (cursor_ >= order_.size()) return false;
  const size_t count = std::min(batch_size_, order_.size() - cursor_);
  batch->users.reserve(count);
  batch->items.reserve(count);
  batch->ratings = Matrix(count, 1);
  batch->observed = Matrix(count, 1, 1.0);
  for (size_t i = 0; i < count; ++i) {
    const RatingTriple& t = dataset_.train()[order_[cursor_ + i]];
    batch->users.push_back(t.user);
    batch->items.push_back(t.item);
    batch->ratings(i, 0) = t.rating;
  }
  cursor_ += count;
  return true;
}

void ObservedBatchSampler::NewEpoch() {
  rng_.Shuffle(&order_);
  cursor_ = 0;
}

size_t ObservedBatchSampler::batches_per_epoch() const {
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

FullMatrixBatchSampler::FullMatrixBatchSampler(const RatingDataset& dataset,
                                               uint64_t seed)
    : num_users_(dataset.num_users()),
      num_items_(dataset.num_items()),
      rng_(seed) {
  DTREC_CHECK_GT(num_users_, 0u);
  DTREC_CHECK_GT(num_items_, 0u);
  observed_.reserve(dataset.train().size() * 2);
  for (const auto& t : dataset.train()) {
    observed_[CellKey(t.user, t.item, num_items_)] = t.rating;
  }
}

Batch FullMatrixBatchSampler::Sample(size_t batch_size) {
  Batch batch;
  batch.users.reserve(batch_size);
  batch.items.reserve(batch_size);
  batch.ratings = Matrix(batch_size, 1);
  batch.observed = Matrix(batch_size, 1);
  for (size_t i = 0; i < batch_size; ++i) {
    const size_t u = rng_.UniformIndex(num_users_);
    const size_t it = rng_.UniformIndex(num_items_);
    batch.users.push_back(u);
    batch.items.push_back(it);
    double rating = 0.0;
    if (Lookup(u, it, &rating)) {
      batch.ratings(i, 0) = rating;
      batch.observed(i, 0) = 1.0;
    }
  }
  return batch;
}

bool FullMatrixBatchSampler::Lookup(size_t user, size_t item,
                                    double* rating) const {
  auto it = observed_.find(CellKey(user, item, num_items_));
  if (it == observed_.end()) return false;
  if (rating != nullptr) *rating = it->second;
  return true;
}

Batch MakeFullObservedBatch(const RatingDataset& dataset) {
  Batch batch;
  const size_t n = dataset.train().size();
  batch.users.reserve(n);
  batch.items.reserve(n);
  batch.ratings = Matrix(n, 1);
  batch.observed = Matrix(n, 1, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const RatingTriple& t = dataset.train()[i];
    batch.users.push_back(t.user);
    batch.items.push_back(t.item);
    batch.ratings(i, 0) = t.rating;
  }
  return batch;
}

}  // namespace dtrec
