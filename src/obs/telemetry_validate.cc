#include "obs/telemetry_validate.h"

#include <cstdlib>
#include <vector>

namespace dtrec::obs {
namespace {

/// Minimal recursive-descent JSON checker (same shape as the one in
/// bench/bench_common.h, which src/ cannot include): verifies
/// well-formedness and lets the schema validators walk the document.
struct JsonCursor {
  const std::string& s;
  size_t i = 0;
  bool ok = true;

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
  bool AtEnd() {
    SkipWs();
    return i >= s.size();
  }
  std::string ParseString() {
    if (!Eat('"')) return "";
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out += s[i++];
    }
    if (!Eat('"')) ok = false;
    return out;
  }
  double ParseNumber() {
    SkipWs();
    char* end = nullptr;
    const double v = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) {
      ok = false;
      return 0.0;
    }
    i = static_cast<size_t>(end - s.c_str());
    return v;
  }
  void SkipValue();  // forward-declared, mutually recursive

  template <typename Fn>
  void ParseObject(Fn&& fn) {
    if (!Eat('{')) return;
    if (Peek('}')) {
      Eat('}');
      return;
    }
    while (ok) {
      const std::string key = ParseString();
      if (!Eat(':')) return;
      fn(key);
      if (Peek(',')) {
        Eat(',');
        continue;
      }
      Eat('}');
      return;
    }
  }
};

void JsonCursor::SkipValue() {
  SkipWs();
  if (i >= s.size()) {
    ok = false;
    return;
  }
  const char c = s[i];
  if (c == '"') {
    ParseString();
  } else if (c == '{') {
    ParseObject([this](const std::string&) { SkipValue(); });
  } else if (c == '[') {
    Eat('[');
    if (Peek(']')) {
      Eat(']');
      return;
    }
    while (ok) {
      SkipValue();
      if (Peek(',')) {
        Eat(',');
        continue;
      }
      Eat(']');
      return;
    }
  } else if (s.compare(i, 4, "true") == 0) {
    i += 4;
  } else if (s.compare(i, 5, "false") == 0) {
    i += 5;
  } else if (s.compare(i, 4, "null") == 0) {
    i += 4;
  } else {
    ParseNumber();
  }
}

std::vector<std::string> SplitNonEmptyLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      if (!cur.empty()) lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

}  // namespace

Status ValidateTraceJson(const std::string& content, size_t* num_events,
                         std::set<std::string>* span_names,
                         std::map<std::string, size_t>* trace_id_events) {
  JsonCursor cur{content};
  bool saw_events_array = false;
  size_t events = 0;
  std::string error;
  std::set<std::string> names;
  std::map<std::string, size_t> id_events;

  cur.ParseObject([&](const std::string& key) {
    if (key != "traceEvents") {
      cur.SkipValue();
      return;
    }
    saw_events_array = true;
    if (!cur.Eat('[')) return;
    if (cur.Peek(']')) {
      cur.Eat(']');
      return;
    }
    while (cur.ok) {
      std::string name, ph;
      bool has_ts = false, has_dur = false, has_pid = false, has_tid = false;
      double ts = -1.0, dur = -1.0;
      cur.ParseObject([&](const std::string& ek) {
        if (ek == "name") {
          name = cur.ParseString();
        } else if (ek == "ph") {
          ph = cur.ParseString();
        } else if (ek == "ts") {
          ts = cur.ParseNumber();
          has_ts = true;
        } else if (ek == "dur") {
          dur = cur.ParseNumber();
          has_dur = true;
        } else if (ek == "pid") {
          cur.ParseNumber();
          has_pid = true;
        } else if (ek == "tid") {
          cur.ParseNumber();
          has_tid = true;
        } else if (ek == "args") {
          cur.ParseObject([&](const std::string& ak) {
            if (ak == "trace_id") {
              ++id_events[cur.ParseString()];
            } else {
              cur.SkipValue();
            }
          });
        } else {
          cur.SkipValue();
        }
      });
      if (error.empty()) {
        if (name.empty()) {
          error = "traceEvents[" + std::to_string(events) + "] has no name";
        } else if (ph != "X") {
          error = "traceEvents[" + std::to_string(events) + "] ('" + name +
                  "') ph is '" + ph + "', expected complete event 'X'";
        } else if (!has_ts || !has_dur || ts < 0.0 || dur < 0.0) {
          error = "traceEvents[" + std::to_string(events) + "] ('" + name +
                  "') needs non-negative ts and dur";
        } else if (!has_pid || !has_tid) {
          error = "traceEvents[" + std::to_string(events) + "] ('" + name +
                  "') needs pid and tid";
        }
      }
      names.insert(name);
      ++events;
      if (cur.Peek(',')) {
        cur.Eat(',');
        continue;
      }
      cur.Eat(']');
      return;
    }
  });

  if (!cur.ok || !cur.AtEnd()) {
    return Status::InvalidArgument("malformed trace JSON");
  }
  if (!saw_events_array) {
    return Status::InvalidArgument("trace JSON has no traceEvents array");
  }
  if (!error.empty()) return Status::InvalidArgument(error);
  if (num_events != nullptr) *num_events = events;
  if (span_names != nullptr) *span_names = names;
  if (trace_id_events != nullptr) *trace_id_events = id_events;
  return Status::OK();
}

Status ValidateAlertsJsonl(const std::string& content, size_t* num_records,
                           std::set<std::string>* rule_names,
                           std::set<std::string>* contexts) {
  const std::vector<std::string> lines = SplitNonEmptyLines(content);
  std::set<std::string> rules;
  std::set<std::string> ctxs;
  for (size_t ln = 0; ln < lines.size(); ++ln) {
    JsonCursor cur{lines[ln]};
    std::string schema, rule, expr, direction, context;
    bool saw_context = false, has_baseline = false;
    bool has_value = false, has_threshold = false, has_window = false,
         has_at = false;

    cur.ParseObject([&](const std::string& key) {
      if (key == "schema") {
        schema = cur.ParseString();
      } else if (key == "rule") {
        rule = cur.ParseString();
      } else if (key == "expr") {
        expr = cur.ParseString();
      } else if (key == "context") {
        context = cur.ParseString();
        saw_context = true;
      } else if (key == "direction") {
        direction = cur.ParseString();
      } else if (key == "value") {
        cur.ParseNumber();
        has_value = true;
      } else if (key == "threshold") {
        cur.ParseNumber();
        has_threshold = true;
      } else if (key == "window_s") {
        has_window = cur.ParseNumber() > 0.0;
      } else if (key == "at_s") {
        cur.ParseNumber();
        has_at = true;
      } else if (key == "baseline") {
        cur.SkipValue();  // number or null, both fine
        has_baseline = true;
      } else {
        cur.SkipValue();
      }
    });

    const std::string where = "line " + std::to_string(ln + 1);
    if (!cur.ok || !cur.AtEnd()) {
      return Status::InvalidArgument(where + ": malformed alert record");
    }
    if (schema != "dtrec-alerts-v1") {
      return Status::InvalidArgument(where + ": schema tag is '" + schema +
                                     "', expected 'dtrec-alerts-v1'");
    }
    if (rule.empty() || expr.empty()) {
      return Status::InvalidArgument(where + ": missing rule or expr");
    }
    if (direction != "above" && direction != "below") {
      return Status::InvalidArgument(
          where + ": direction must be 'above' or 'below'");
    }
    if (!has_value || !has_threshold || !has_window || !has_at) {
      return Status::InvalidArgument(
          where + ": needs numeric value/threshold, positive window_s, "
                  "and at_s");
    }
    if (!saw_context || !has_baseline) {
      return Status::InvalidArgument(where +
                                     ": needs context and baseline keys");
    }
    rules.insert(rule);
    ctxs.insert(context);
  }
  if (num_records != nullptr) *num_records = lines.size();
  if (rule_names != nullptr) *rule_names = rules;
  if (contexts != nullptr) *contexts = ctxs;
  return Status::OK();
}

Status ValidateProfileJson(const std::string& content, size_t* num_samples,
                           std::set<std::string>* frame_names) {
  JsonCursor cur{content};
  std::string schema;
  bool has_interval = false, has_samples = false, has_dropped = false;
  bool saw_stacks = false;
  double samples = 0.0;
  size_t stack_index = 0;
  std::set<std::string> frames_seen;
  std::string error;

  cur.ParseObject([&](const std::string& key) {
    if (key == "schema") {
      schema = cur.ParseString();
    } else if (key == "interval_us") {
      has_interval = cur.ParseNumber() >= 0.0;
    } else if (key == "samples") {
      samples = cur.ParseNumber();
      has_samples = samples >= 0.0;
    } else if (key == "dropped") {
      has_dropped = cur.ParseNumber() >= 0.0;
    } else if (key == "stacks") {
      saw_stacks = true;
      if (!cur.Eat('[')) return;
      if (cur.Peek(']')) {
        cur.Eat(']');
        return;
      }
      while (cur.ok) {
        size_t num_frames = 0;
        bool frames_ok = true;
        double count = 0.0;
        cur.ParseObject([&](const std::string& sk) {
          if (sk == "frames") {
            if (!cur.Eat('[')) return;
            if (cur.Peek(']')) {
              cur.Eat(']');
              return;
            }
            while (cur.ok) {
              const std::string frame = cur.ParseString();
              if (frame.empty()) frames_ok = false;
              frames_seen.insert(frame);
              ++num_frames;
              if (cur.Peek(',')) {
                cur.Eat(',');
                continue;
              }
              cur.Eat(']');
              return;
            }
          } else if (sk == "count") {
            count = cur.ParseNumber();
          } else {
            cur.SkipValue();
          }
        });
        if (error.empty() && !(num_frames > 0 && frames_ok && count >= 1.0)) {
          error = "stacks[" + std::to_string(stack_index) +
                  "] needs non-empty string frames and count >= 1";
        }
        ++stack_index;
        if (cur.Peek(',')) {
          cur.Eat(',');
          continue;
        }
        cur.Eat(']');
        return;
      }
    } else {
      cur.SkipValue();
    }
  });

  if (!cur.ok || !cur.AtEnd()) {
    return Status::InvalidArgument("malformed profile JSON");
  }
  if (schema != "dtrec-profile-v1") {
    return Status::InvalidArgument("schema tag is '" + schema +
                                   "', expected 'dtrec-profile-v1'");
  }
  if (!has_interval || !has_samples || !has_dropped || !saw_stacks) {
    return Status::InvalidArgument(
        "profile JSON needs interval_us/samples/dropped and a stacks array");
  }
  if (!error.empty()) return Status::InvalidArgument(error);
  if (num_samples != nullptr) *num_samples = static_cast<size_t>(samples);
  if (frame_names != nullptr) *frame_names = frames_seen;
  return Status::OK();
}

Status ValidateTrainEventsJsonl(const std::string& content,
                                size_t* num_records,
                                std::set<std::string>* loss_keys) {
  const std::vector<std::string> lines = SplitNonEmptyLines(content);
  if (lines.empty()) {
    return Status::InvalidArgument("event stream is empty");
  }
  std::set<std::string> keys;
  for (size_t ln = 0; ln < lines.size(); ++ln) {
    JsonCursor cur{lines[ln]};
    std::string schema, method;
    bool has_epoch = false, has_steps = false, has_losses = false;
    bool has_grad_norm = false, has_cursor = false;
    double wall_s = -1.0;
    bool clip_total = false, clip_fired = false, clip_rate = false;
    bool saw_clip = false;

    cur.ParseObject([&](const std::string& key) {
      if (key == "schema") {
        schema = cur.ParseString();
      } else if (key == "method") {
        method = cur.ParseString();
      } else if (key == "epoch") {
        has_epoch = cur.ParseNumber() >= 0.0;
      } else if (key == "steps") {
        has_steps = cur.ParseNumber() >= 0.0;
      } else if (key == "wall_s") {
        wall_s = cur.ParseNumber();
      } else if (key == "grad_norm") {
        cur.ParseNumber();
        has_grad_norm = true;
      } else if (key == "losses") {
        has_losses = true;
        cur.ParseObject([&](const std::string& lk) {
          keys.insert(lk);
          cur.ParseNumber();
        });
      } else if (key == "propensity_clip") {
        saw_clip = true;
        cur.ParseObject([&](const std::string& ck) {
          if (ck == "total") clip_total = true;
          if (ck == "fired") clip_fired = true;
          if (ck == "rate") clip_rate = true;
          cur.ParseNumber();
        });
      } else if (key == "rng_cursor") {
        has_cursor = !cur.ParseString().empty();
      } else {
        cur.SkipValue();
      }
    });

    const std::string where = "line " + std::to_string(ln + 1);
    if (!cur.ok || !cur.AtEnd()) {
      return Status::InvalidArgument(where + ": malformed JSON record");
    }
    if (schema != "dtrec-train-events-v1") {
      return Status::InvalidArgument(where + ": schema tag is '" + schema +
                                     "', expected 'dtrec-train-events-v1'");
    }
    if (method.empty()) {
      return Status::InvalidArgument(where + ": missing method");
    }
    if (!has_epoch || !has_steps || wall_s < 0.0 || !has_grad_norm) {
      return Status::InvalidArgument(
          where + ": needs numeric epoch/steps/wall_s/grad_norm");
    }
    if (!has_losses) {
      return Status::InvalidArgument(where + ": missing losses object");
    }
    if (!saw_clip || !clip_total || !clip_fired || !clip_rate) {
      return Status::InvalidArgument(
          where + ": propensity_clip needs total/fired/rate");
    }
    if (!has_cursor) {
      return Status::InvalidArgument(where + ": missing rng_cursor");
    }
  }
  if (num_records != nullptr) *num_records = lines.size();
  if (loss_keys != nullptr) *loss_keys = keys;
  return Status::OK();
}

Status ValidateMetricsJson(const std::string& content) {
  JsonCursor cur{content};
  std::string schema;
  bool saw_counters = false, saw_gauges = false, saw_histograms = false;
  std::string error;

  cur.ParseObject([&](const std::string& key) {
    if (key == "schema") {
      schema = cur.ParseString();
    } else if (key == "counters") {
      saw_counters = true;
      cur.ParseObject([&](const std::string&) { cur.ParseNumber(); });
    } else if (key == "gauges") {
      saw_gauges = true;
      cur.ParseObject([&](const std::string&) { cur.ParseNumber(); });
    } else if (key == "histograms") {
      saw_histograms = true;
      cur.ParseObject([&](const std::string& hist_name) {
        bool count = false, mean = false, p50 = false, p95 = false,
             p99 = false, max = false;
        cur.ParseObject([&](const std::string& hk) {
          if (hk == "count") count = true;
          if (hk == "mean") mean = true;
          if (hk == "p50") p50 = true;
          if (hk == "p95") p95 = true;
          if (hk == "p99") p99 = true;
          if (hk == "max") max = true;
          cur.ParseNumber();
        });
        if (error.empty() &&
            !(count && mean && p50 && p95 && p99 && max)) {
          error = "histogram '" + hist_name +
                  "' needs count/mean/p50/p95/p99/max";
        }
      });
    } else {
      cur.SkipValue();
    }
  });

  if (!cur.ok || !cur.AtEnd()) {
    return Status::InvalidArgument("malformed metrics JSON");
  }
  if (schema != "dtrec-metrics-v1") {
    return Status::InvalidArgument("schema tag is '" + schema +
                                   "', expected 'dtrec-metrics-v1'");
  }
  if (!saw_counters || !saw_gauges || !saw_histograms) {
    return Status::InvalidArgument(
        "metrics JSON needs counters/gauges/histograms objects");
  }
  if (!error.empty()) return Status::InvalidArgument(error);
  return Status::OK();
}

Status ValidateServingBenchJson(const std::string& content,
                                ServingBenchGateInputs* gate) {
  JsonCursor cur{content};
  std::string schema;
  bool saw_build = false, saw_config = false, saw_summary = false;
  bool build_type = false, sanitizers = false, numeric_checks = false,
       failpoints = false;
  ServingBenchGateInputs parsed;
  std::string error;

  cur.ParseObject([&](const std::string& key) {
    if (key == "schema") {
      schema = cur.ParseString();
    } else if (key == "build") {
      saw_build = true;
      cur.ParseObject([&](const std::string& bk) {
        if (bk == "build_type") {
          build_type = true;
          parsed.build_type = cur.ParseString();
        } else if (bk == "sanitizers") {
          sanitizers = true;
          parsed.sanitizers = cur.ParseString();
        } else if (bk == "numeric_checks") {
          numeric_checks = true;
          cur.SkipValue();
        } else if (bk == "failpoints") {
          failpoints = true;
          cur.SkipWs();
          const size_t at = cur.i;
          cur.SkipValue();
          parsed.failpoints = content.compare(at, 4, "true") == 0;
        } else {
          cur.SkipValue();
        }
      });
    } else if (key == "config") {
      saw_config = true;
      cur.ParseObject([&](const std::string& ck) {
        if (ck == "slo_ms") {
          parsed.slo_ms = cur.ParseNumber();
        } else {
          cur.SkipValue();
        }
      });
    } else if (key == "phases") {
      if (!cur.Eat('[')) return;
      if (cur.Peek(']')) {
        cur.Eat(']');
        return;
      }
      while (cur.ok) {
        std::string name;
        bool requests = false, elapsed = false;
        int percentiles = 0, rates = 0;
        double p99_us = 0.0, shed_rate = -1.0;
        cur.ParseObject([&](const std::string& pk) {
          if (pk == "phase") {
            name = cur.ParseString();
          } else if (pk == "requests") {
            requests = cur.ParseNumber() >= 0.0;
          } else if (pk == "elapsed_s") {
            elapsed = cur.ParseNumber() >= 0.0;
          } else if (pk == "p50_us" || pk == "p999_us") {
            if (cur.ParseNumber() >= 0.0) ++percentiles;
          } else if (pk == "p99_us") {
            p99_us = cur.ParseNumber();
            if (p99_us >= 0.0) ++percentiles;
          } else if (pk == "shed_rate") {
            shed_rate = cur.ParseNumber();
            if (shed_rate >= 0.0 && shed_rate <= 1.0) ++rates;
          } else if (pk == "degraded_rate" || pk == "cache_hit_rate") {
            const double v = cur.ParseNumber();
            if (v >= 0.0 && v <= 1.0) ++rates;
          } else {
            cur.SkipValue();
          }
        });
        if (error.empty() &&
            !(!name.empty() && requests && elapsed && percentiles == 3 &&
              rates == 3)) {
          error = "phases[" + std::to_string(parsed.num_phases) +
                  "] missing phase/requests/elapsed_s, a latency "
                  "percentile, or a rate outside [0, 1]";
        }
        if (name == "capacity") parsed.capacity_p99_us = p99_us;
        if (name == "saturation_flood") parsed.saturation_shed_rate = shed_rate;
        ++parsed.num_phases;
        if (cur.Peek(',')) {
          cur.Eat(',');
          continue;
        }
        cur.Eat(']');
        return;
      }
    } else if (key == "summary") {
      saw_summary = true;
      cur.ParseObject([&](const std::string& sk) {
        if (sk == "per_core_users_per_sec_at_slo") {
          parsed.per_core_users_per_sec_at_slo = cur.ParseNumber();
        } else if (sk == "breaker_open_transitions") {
          parsed.breaker_open_transitions = cur.ParseNumber();
        } else {
          cur.SkipValue();
        }
      });
    } else {
      cur.SkipValue();
    }
  });

  if (!cur.ok || !cur.AtEnd()) {
    return Status::InvalidArgument("malformed serving bench JSON");
  }
  if (schema != "dtrec-bench-serving-v1") {
    return Status::InvalidArgument("schema tag is '" + schema +
                                   "', expected 'dtrec-bench-serving-v1'");
  }
  if (!saw_build || !build_type || !sanitizers || !numeric_checks ||
      !failpoints) {
    return Status::InvalidArgument(
        "build stamp needs build_type/sanitizers/numeric_checks/failpoints");
  }
  if (!saw_config) return Status::InvalidArgument("missing config object");
  if (parsed.num_phases == 0) {
    return Status::InvalidArgument("phases array is empty");
  }
  if (!error.empty()) return Status::InvalidArgument(error);
  if (!saw_summary) return Status::InvalidArgument("missing summary object");
  if (gate != nullptr) *gate = parsed;
  return Status::OK();
}

namespace {

/// Serving rows: per-phase closed-loop throughput (requests / elapsed_s,
/// higher better) and p99 (lower better), plus the summary's per-core SLO
/// throughput.
void ExtractServingRows(JsonCursor* cur, std::vector<BenchDiffRow>* rows) {
  cur->ParseObject([&](const std::string& key) {
    if (key == "phases") {
      if (!cur->Eat('[')) return;
      if (cur->Peek(']')) {
        cur->Eat(']');
        return;
      }
      while (cur->ok) {
        std::string name;
        double requests = 0.0, elapsed = 0.0, p99 = -1.0;
        cur->ParseObject([&](const std::string& pk) {
          if (pk == "phase") {
            name = cur->ParseString();
          } else if (pk == "requests") {
            requests = cur->ParseNumber();
          } else if (pk == "elapsed_s") {
            elapsed = cur->ParseNumber();
          } else if (pk == "p99_us") {
            p99 = cur->ParseNumber();
          } else {
            cur->SkipValue();
          }
        });
        if (!name.empty() && elapsed > 0.0) {
          rows->push_back(
              {name + ".requests_per_sec", requests / elapsed, true});
        }
        if (!name.empty() && p99 >= 0.0) {
          rows->push_back({name + ".p99_us", p99, false});
        }
        if (cur->Peek(',')) {
          cur->Eat(',');
          continue;
        }
        cur->Eat(']');
        return;
      }
    } else if (key == "summary") {
      cur->ParseObject([&](const std::string& sk) {
        if (sk == "per_core_users_per_sec_at_slo") {
          rows->push_back(
              {"summary.per_core_users_per_sec_at_slo", cur->ParseNumber(),
               true});
        } else {
          cur->SkipValue();
        }
      });
    } else {
      cur->SkipValue();
    }
  });
}

/// Kernel rows: gflops per kernel/variant/shape (higher better); rows
/// without a positive gflops (the recall sweeps) fall back to ns_per_op
/// (lower better).
void ExtractKernelRows(JsonCursor* cur, std::vector<BenchDiffRow>* rows) {
  cur->ParseObject([&](const std::string& key) {
    if (key != "results") {
      cur->SkipValue();
      return;
    }
    if (!cur->Eat('[')) return;
    if (cur->Peek(']')) {
      cur->Eat(']');
      return;
    }
    while (cur->ok) {
      std::string kernel, variant;
      double m = 0.0, k = 0.0, n = 0.0, gflops = 0.0, ns_per_op = 0.0;
      cur->ParseObject([&](const std::string& rk) {
        if (rk == "kernel") {
          kernel = cur->ParseString();
        } else if (rk == "variant") {
          variant = cur->ParseString();
        } else if (rk == "m") {
          m = cur->ParseNumber();
        } else if (rk == "k") {
          k = cur->ParseNumber();
        } else if (rk == "n") {
          n = cur->ParseNumber();
        } else if (rk == "gflops") {
          gflops = cur->ParseNumber();
        } else if (rk == "ns_per_op") {
          ns_per_op = cur->ParseNumber();
        } else {
          cur->SkipValue();
        }
      });
      if (!kernel.empty()) {
        const std::string shape = std::to_string(static_cast<long long>(m)) +
                                  "x" +
                                  std::to_string(static_cast<long long>(k)) +
                                  "x" +
                                  std::to_string(static_cast<long long>(n));
        const std::string base = kernel + "/" + variant + "/" + shape;
        if (gflops > 0.0) {
          rows->push_back({base + ".gflops", gflops, true});
        } else if (ns_per_op > 0.0) {
          rows->push_back({base + ".ns_per_op", ns_per_op, false});
        }
      }
      if (cur->Peek(',')) {
        cur->Eat(',');
        continue;
      }
      cur->Eat(']');
      return;
    }
  });
}

}  // namespace

Status ExtractBenchRows(const std::string& content, std::string* schema,
                        std::vector<BenchDiffRow>* rows) {
  // First pass: just the schema tag.
  std::string tag;
  {
    JsonCursor cur{content};
    cur.ParseObject([&](const std::string& key) {
      if (key == "schema") {
        tag = cur.ParseString();
      } else {
        cur.SkipValue();
      }
    });
    if (!cur.ok || !cur.AtEnd()) {
      return Status::InvalidArgument("malformed bench JSON");
    }
  }
  rows->clear();
  JsonCursor cur{content};
  if (tag == "dtrec-bench-serving-v1") {
    ExtractServingRows(&cur, rows);
  } else if (tag == "dtrec-bench-kernels-v2") {
    ExtractKernelRows(&cur, rows);
  } else {
    return Status::InvalidArgument("unsupported bench schema '" + tag + "'");
  }
  if (!cur.ok) return Status::InvalidArgument("malformed bench JSON");
  if (rows->empty()) {
    return Status::InvalidArgument("bench JSON has no comparable rows");
  }
  if (schema != nullptr) *schema = tag;
  return Status::OK();
}

}  // namespace dtrec::obs
