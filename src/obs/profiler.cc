#include "obs/profiler.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "util/string_util.h"

// Sanitizer guard (documented in profiler.h): TSan and ASan intercept
// sigaction/backtrace and run their own unwinders inside signal handlers;
// rather than chase a handler that is clean under every interceptor, the
// profiler compiles down to "unavailable" stubs on those builds. The CI
// TSan leg runs the watchdog/obs labels against the stubs.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DTREC_PROFILER_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DTREC_PROFILER_SANITIZED 1
#endif
#if defined(__linux__) && !defined(DTREC_PROFILER_SANITIZED)
#define DTREC_PROFILER_SUPPORTED 1
#endif

#if defined(DTREC_PROFILER_SUPPORTED)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#endif

namespace dtrec::obs {

#if defined(DTREC_PROFILER_SUPPORTED)

namespace {

constexpr size_t kMaxDepthCap = 64;

struct Sample {
  std::atomic<uint32_t> ready{0};
  uint32_t depth = 0;
  void* frames[kMaxDepthCap];
};

struct ProfilerState {
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> cursor{0};
  std::atomic<uint64_t> dropped{0};
  size_t max_samples = 0;
  size_t max_depth = 0;
  uint64_t interval_us = 0;
  std::vector<Sample> ring;
  struct sigaction old_action = {};
  bool running = false;
};

/// Function-local static: StartProfiler touches it before installing the
/// handler, so by the time a signal can arrive the guard is a plain
/// acquire load (signal-safe).
ProfilerState& State() {
  static ProfilerState state;
  return state;
}

// dtrec-signal-safe-region-begin
// The sampling path. Rules (see profiler.h): errno save/restore, relaxed
// atomics on preallocated slots, backtrace() only — the warm-up call in
// StartProfiler already forced its lazy libgcc load.
void ProfSignalHandler(int, siginfo_t*, void*) {
  ProfilerState& state = State();
  const int saved_errno = errno;
  if (state.armed.load(std::memory_order_relaxed)) {
    const uint64_t idx = state.cursor.fetch_add(1, std::memory_order_relaxed);
    if (idx < state.max_samples) {
      Sample& slot = state.ring[idx];
      const int depth =
          backtrace(slot.frames, static_cast<int>(state.max_depth));
      slot.depth = depth > 0 ? static_cast<uint32_t>(depth) : 0;
      slot.ready.store(1, std::memory_order_release);
    } else {
      state.dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}
// dtrec-signal-safe-region-end

/// dladdr + demangle, trimmed at the argument list (keeps collapsed
/// stacks readable); hex address when the symbol is invisible (static
/// binary without -rdynamic, or a leaf in an anonymous mapping).
std::string Symbolize(void* addr) {
  Dl_info info;
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    std::string name = info.dli_sname;
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) name = demangled;
    std::free(demangled);
    const size_t paren = name.find('(');
    if (paren != std::string::npos && paren >= 1 &&
        !(paren >= 8 && name.compare(paren - 8, 8, "operator") == 0)) {
      name.resize(paren);
    }
    return name;
  }
  return StrFormat("0x%zx", reinterpret_cast<size_t>(addr));
}

}  // namespace

bool ProfilerAvailable() { return true; }

bool ProfilerRunning() { return State().running; }

Status StartProfiler(const ProfilerOptions& options) {
  ProfilerState& state = State();
  if (state.running) {
    return Status::FailedPrecondition("profiler already running");
  }
  if (options.interval_us == 0 || options.max_samples == 0) {
    return Status::InvalidArgument(
        "profiler needs a positive interval and sample capacity");
  }
  state.max_samples = options.max_samples;
  state.max_depth = std::min(options.max_depth, kMaxDepthCap);
  if (state.max_depth == 0) state.max_depth = kMaxDepthCap;
  state.interval_us = options.interval_us;
  state.ring = std::vector<Sample>(state.max_samples);
  state.cursor.store(0, std::memory_order_relaxed);
  state.dropped.store(0, std::memory_order_relaxed);

  // Warm the unwinder before any signal can arrive: backtrace()'s first
  // call may lazily load libgcc (dlopen + malloc), which must not happen
  // inside the handler.
  void* warm[4];
  backtrace(warm, 4);

  struct sigaction action = {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART | SA_SIGINFO;
  action.sa_sigaction = &ProfSignalHandler;
  if (sigaction(SIGPROF, &action, &state.old_action) != 0) {
    return Status::Internal("sigaction(SIGPROF) failed");
  }
  state.armed.store(true, std::memory_order_release);

  itimerval timer = {};
  timer.it_interval.tv_sec =
      static_cast<time_t>(state.interval_us / 1000000);
  timer.it_interval.tv_usec =
      static_cast<suseconds_t>(state.interval_us % 1000000);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    state.armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &state.old_action, nullptr);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  state.running = true;
  return Status::OK();
}

Status StopProfiler() {
  ProfilerState& state = State();
  if (!state.running) return Status::OK();
  itimerval off = {};
  setitimer(ITIMER_PROF, &off, nullptr);
  state.armed.store(false, std::memory_order_release);
  sigaction(SIGPROF, &state.old_action, nullptr);
  state.running = false;
  return Status::OK();
}

ProfileReport CollectProfile() {
  ProfilerState& state = State();
  ProfileReport report;
  report.interval_us = state.interval_us;
  report.dropped = state.dropped.load(std::memory_order_relaxed);
  const uint64_t taken = state.cursor.load(std::memory_order_relaxed);
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(taken, state.max_samples));

  std::map<void*, std::string> symbol_cache;
  std::map<std::vector<std::string>, uint64_t> aggregated;
  for (size_t s = 0; s < n; ++s) {
    const Sample& sample = state.ring[s];
    if (sample.ready.load(std::memory_order_acquire) == 0) {
      ++report.dropped;  // signal landed mid-write at stop time
      continue;
    }
    // Leaf-first from backtrace(); flip to root-first and strip the
    // handler prelude (everything through ProfSignalHandler plus the
    // kernel signal trampoline above it).
    std::vector<std::string> frames;
    frames.reserve(sample.depth);
    size_t begin = 0;
    for (size_t d = 0; d < sample.depth; ++d) {
      auto [it, inserted] = symbol_cache.emplace(sample.frames[d], "");
      if (inserted) it->second = Symbolize(sample.frames[d]);
      if (it->second.find("ProfSignalHandler") != std::string::npos) {
        begin = d + 2;  // handler frame + signal trampoline
      }
    }
    for (size_t d = sample.depth; d-- > begin;) {
      frames.push_back(symbol_cache[sample.frames[d]]);
    }
    if (frames.empty()) continue;
    ++aggregated[frames];
    ++report.samples;
  }

  report.stacks.reserve(aggregated.size());
  for (auto& [frames, count] : aggregated) {
    report.stacks.push_back({frames, count});
  }
  std::stable_sort(report.stacks.begin(), report.stacks.end(),
                   [](const ProfileStack& a, const ProfileStack& b) {
                     return a.count > b.count;
                   });
  return report;
}

#else  // !DTREC_PROFILER_SUPPORTED

bool ProfilerAvailable() { return false; }
bool ProfilerRunning() { return false; }

Status StartProfiler(const ProfilerOptions&) {
  return Status::NotSupported(
      "profiler compiled out (sanitizer build or unsupported platform)");
}

Status StopProfiler() { return Status::OK(); }

ProfileReport CollectProfile() { return {}; }

#endif  // DTREC_PROFILER_SUPPORTED

namespace {

std::string ProfileJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string CollapsedStacks(const ProfileReport& report) {
  std::ostringstream os;
  for (const ProfileStack& stack : report.stacks) {
    if (stack.frames.empty()) continue;
    for (size_t i = 0; i < stack.frames.size(); ++i) {
      if (i != 0) os << ";";
      os << stack.frames[i];
    }
    os << " " << stack.count << "\n";
  }
  return os.str();
}

std::string ProfileJson(const ProfileReport& report) {
  std::ostringstream os;
  os << "{\"schema\": \"dtrec-profile-v1\", \"interval_us\": "
     << report.interval_us << ", \"samples\": " << report.samples
     << ", \"dropped\": " << report.dropped << ", \"stacks\": [";
  bool first_stack = true;
  for (const ProfileStack& stack : report.stacks) {
    if (!first_stack) os << ",";
    first_stack = false;
    os << "\n{\"frames\": [";
    bool first_frame = true;
    for (const std::string& frame : stack.frames) {
      if (!first_frame) os << ", ";
      first_frame = false;
      os << "\"" << ProfileJsonEscape(frame) << "\"";
    }
    os << "], \"count\": " << stack.count << "}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace dtrec::obs
