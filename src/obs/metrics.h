#ifndef DTREC_OBS_METRICS_H_
#define DTREC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/histogram.h"
#include "util/thread_annotations.h"

namespace dtrec::obs {

/// Monotonic event counter. Increment() is one relaxed fetch_add — safe
/// and cheap on every hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the value (for mirroring an externally-maintained counter
  /// into the registry, e.g. the process-wide propensity clip totals).
  void Set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, generation, …).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Named metric registry: the single export path for serving and training
/// telemetry.
///
/// Get*() registers on first use and returns a pointer that stays valid
/// for the registry's lifetime (std::map nodes are stable), so callers
/// resolve a metric once and then touch only its relaxed atomics —
/// the registration mutex is never on a hot path. Metric names are
/// dot-separated, prefix first: "serve.requests", "train.epochs".
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Human-readable dump, one "name value" / histogram-summary line per
  /// metric, sorted by name.
  std::string DumpText() const;

  /// Machine-readable exposition:
  ///   {"schema": "dtrec-metrics-v1",
  ///    "counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count","mean","p50","p95","p99","max"}}}
  std::string DumpJson() const;

  /// Prometheus text exposition (format 0.0.4). Metric names are
  /// sanitized to [a-zA-Z0-9_:] (dots → underscores; a leading digit gets
  /// a '_' prefix) and the original name is preserved in the HELP line
  /// (with '\' and newline escaped per the format). Counters and gauges
  /// are single samples; each histogram expands to cumulative
  /// `_bucket{le="..."}` samples (trailing all-zero buckets elided), the
  /// mandatory `le="+Inf"` bucket, and `_sum` / `_count`.
  std::string DumpPrometheus() const;

  /// Zeroes every registered counter and histogram (gauges keep their
  /// last value). Registration is preserved: outstanding pointers remain
  /// valid.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_ DTREC_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ DTREC_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ DTREC_GUARDED_BY(mu_);
};

/// The process-wide registry (serving stats, CLI exports).
MetricsRegistry& GlobalMetrics();

/// Mirrors the process-wide propensity-clip counters (obs/prop_stats.h)
/// into `registry` as "propensity.clip.total" / "propensity.clip.fired".
/// Call before DumpText/DumpJson so exports include the clip rate.
void PublishPropensityClipStats(MetricsRegistry* registry);

}  // namespace dtrec::obs

#endif  // DTREC_OBS_METRICS_H_
