#include "obs/watchdog.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/string_util.h"

namespace dtrec::obs {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string> SplitTrimmed(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(Trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(Trim(cur));
  return parts;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && std::isfinite(*out);
}

bool IsHistogramStat(const std::string& stat) {
  return stat == "p50" || stat == "p95" || stat == "p99" || stat == "p999" ||
         stat == "max" || stat == "mean";
}

Status ParseExpr(const std::string& raw, WatchRule* rule) {
  std::string expr = raw;
  if (expr.rfind("drift:", 0) == 0) {
    rule->drift = true;
    expr = Trim(expr.substr(6));
  }
  rule->expr = expr;
  const size_t colon = expr.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= expr.size()) {
    return Status::InvalidArgument("metric expression needs '<kind>:<name>'");
  }
  const std::string head = expr.substr(0, colon);
  const std::string body = Trim(expr.substr(colon + 1));
  if (IsHistogramStat(head)) {
    rule->kind = WatchRule::Kind::kHistogramStat;
    rule->stat = head;
    rule->metric_a = body;
  } else if (head == "rate") {
    rule->kind = WatchRule::Kind::kCounterRate;
    const size_t slash = body.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= body.size()) {
      return Status::InvalidArgument(
          "rate: needs '<counter_a>/<counter_b>'");
    }
    rule->metric_a = Trim(body.substr(0, slash));
    rule->metric_b = Trim(body.substr(slash + 1));
  } else if (head == "delta") {
    rule->kind = WatchRule::Kind::kCounterDelta;
    rule->metric_a = body;
  } else if (head == "value") {
    rule->kind = WatchRule::Kind::kGaugeValue;
    rule->metric_a = body;
  } else {
    return Status::InvalidArgument(
        "unknown metric kind '" + head +
        "' (want p50/p95/p99/p999/max/mean/rate/delta/value)");
  }
  if (rule->metric_a.empty()) {
    return Status::InvalidArgument("empty metric name");
  }
  return Status::OK();
}

}  // namespace

Status ParseWatchdogRules(const std::string& text,
                          std::vector<WatchRule>* rules) {
  rules->clear();
  size_t line_no = 0;
  std::string line;
  std::istringstream is(text);
  while (std::getline(is, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const auto fail = [&](const std::string& why) {
      return Status::InvalidArgument(
          StrFormat("watchdog rules line %zu: %s", line_no, why.c_str()));
    };

    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail("missing '<name>:' prefix");
    }
    WatchRule rule;
    rule.name = Trim(line.substr(0, colon));
    const std::vector<std::string> parts =
        SplitTrimmed(line.substr(colon + 1), ',');
    if (parts.size() != 4) {
      return fail("want '<name>: <metric>, <window_s>, <threshold>, "
                  "<above|below>'");
    }
    if (Status st = ParseExpr(parts[0], &rule); !st.ok()) {
      return fail(st.message());
    }
    if (!ParseDouble(parts[1], &rule.window_s) || rule.window_s <= 0.0) {
      return fail("window_s must be a positive number");
    }
    if (!ParseDouble(parts[2], &rule.threshold)) {
      return fail("threshold must be a number");
    }
    if (parts[3] == "above") {
      rule.direction = WatchRule::Direction::kAbove;
    } else if (parts[3] == "below") {
      rule.direction = WatchRule::Direction::kBelow;
    } else {
      return fail("direction must be 'above' or 'below'");
    }
    rules->push_back(std::move(rule));
  }
  return Status::OK();
}

std::string AlertJsonLine(const AlertEvent& event) {
  std::ostringstream os;
  os << "{\"schema\": \"dtrec-alerts-v1\", \"rule\": \"" << event.rule
     << "\", \"expr\": \"" << event.expr << "\", \"context\": \""
     << event.context << "\", \"value\": " << StrFormat("%.6g", event.value)
     << ", \"threshold\": " << StrFormat("%.6g", event.threshold)
     << ", \"direction\": \"" << event.direction
     << "\", \"window_s\": " << StrFormat("%.6g", event.window_s)
     << ", \"baseline\": "
     << (event.has_baseline ? StrFormat("%.6g", event.baseline) : "null")
     << ", \"at_s\": " << StrFormat("%.6g", event.at_s) << "}";
  return os.str();
}

Watchdog::Watchdog(MetricsRegistry* registry, std::vector<WatchRule> rules)
    : Watchdog(registry, std::move(rules), Options()) {}

Watchdog::Watchdog(MetricsRegistry* registry, std::vector<WatchRule> rules,
                   Options options)
    : registry_(registry), options_(std::move(options)) {
  clock_ = options_.clock;
  if (!clock_) {
    clock_ = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.alerts_path.empty()) {
    // Truncate up front: an alert-free run must leave an (empty, valid)
    // artifact rather than no file.
    sink_.open(options_.alerts_path, std::ios::trunc);
  }
  states_.reserve(rules.size());
  for (WatchRule& rule : rules) {
    RuleState state;
    switch (rule.kind) {
      case WatchRule::Kind::kHistogramStat:
        state.hist = registry_->GetHistogram(rule.metric_a);
        break;
      case WatchRule::Kind::kCounterRate:
        state.counter_a = registry_->GetCounter(rule.metric_a);
        state.counter_b = registry_->GetCounter(rule.metric_b);
        break;
      case WatchRule::Kind::kCounterDelta:
        state.counter_a = registry_->GetCounter(rule.metric_a);
        break;
      case WatchRule::Kind::kGaugeValue:
        state.gauge = registry_->GetGauge(rule.metric_a);
        break;
    }
    state.rule = std::move(rule);
    states_.push_back(std::move(state));
  }
}

Watchdog::~Watchdog() { Stop(); }

Status Watchdog::Start(double period_s) {
  if (period_s <= 0.0) {
    return Status::InvalidArgument("watchdog period must be positive");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return Status::FailedPrecondition("watchdog already started");
    }
    started_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this, period_s] { PeriodicLoop(period_s); });
  return Status::OK();
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void Watchdog::PeriodicLoop(double period_s) {
  const auto period = std::chrono::duration<double>(period_s);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    Poll();
    lock.lock();
  }
}

void Watchdog::SetContext(const std::string& context) {
  std::lock_guard<std::mutex> lock(mu_);
  context_ = context;
}

size_t Watchdog::Poll() { return Evaluate(/*force=*/false, clock_()); }

size_t Watchdog::ForceEvaluate() { return Evaluate(/*force=*/true, clock_()); }

bool Watchdog::ComputeValue(RuleState* state, double* value) {
  switch (state->rule.kind) {
    case WatchRule::Kind::kHistogramStat: {
      const Histogram::Snapshot snap = state->hist->TakeSnapshot();
      if (snap.count < state->last_hist.count) {
        // Histogram was Reset() mid-window: re-prime rather than produce
        // a wrapped delta.
        state->last_hist = snap;
        return false;
      }
      const Histogram::Snapshot delta = snap.DeltaSince(state->last_hist);
      state->last_hist = snap;
      if (delta.count == 0) return false;
      const Histogram::Summary s = Histogram::Summarize(delta);
      if (state->rule.stat == "p50") {
        *value = s.p50_us;
      } else if (state->rule.stat == "p95") {
        *value = s.p95_us;
      } else if (state->rule.stat == "p99") {
        *value = s.p99_us;
      } else if (state->rule.stat == "p999") {
        *value = s.p999_us;
      } else if (state->rule.stat == "max") {
        *value = s.max_us;
      } else {
        *value = s.mean_us;
      }
      return true;
    }
    case WatchRule::Kind::kCounterRate: {
      const uint64_t a = state->counter_a->Value();
      const uint64_t b = state->counter_b->Value();
      if (a < state->last_a || b < state->last_b) {
        state->last_a = a;
        state->last_b = b;
        return false;  // counter Reset() mid-window
      }
      const uint64_t da = a - state->last_a;
      const uint64_t db = b - state->last_b;
      state->last_a = a;
      state->last_b = b;
      if (db == 0) return false;
      *value = static_cast<double>(da) / static_cast<double>(db);
      return true;
    }
    case WatchRule::Kind::kCounterDelta: {
      const uint64_t a = state->counter_a->Value();
      if (a < state->last_a) {
        state->last_a = a;
        return false;
      }
      *value = static_cast<double>(a - state->last_a);
      state->last_a = a;
      return true;
    }
    case WatchRule::Kind::kGaugeValue:
      *value = state->gauge->Value();
      return true;
  }
  return false;
}

size_t Watchdog::Evaluate(bool force, double now) {
  // Clip counters live in process-wide atomics (obs/prop_stats.h); mirror
  // them in so clip-drift rules see live values without every caller
  // remembering to publish.
  PublishPropensityClipStats(registry_);

  std::lock_guard<std::mutex> lock(mu_);
  size_t fired = 0;
  for (RuleState& state : states_) {
    if (!state.primed) {
      // First pass marks the window start; deltas measured from process
      // zero would alert on history, not on what just happened.
      double ignored = 0.0;
      ComputeValue(&state, &ignored);
      state.primed = true;
      state.last_eval_s = now;
      continue;
    }
    if (!force && now - state.last_eval_s < state.rule.window_s) continue;
    state.last_eval_s = now;

    double value = 0.0;
    if (!ComputeValue(&state, &value)) continue;

    double compared = value;
    bool has_baseline = false;
    double baseline = 0.0;
    if (state.rule.drift) {
      if (!state.baseline.empty()) {
        for (const double v : state.baseline) baseline += v;
        baseline /= static_cast<double>(state.baseline.size());
        has_baseline = true;
        compared = value - baseline;
      }
      state.baseline.push_back(value);
      while (state.baseline.size() > options_.baseline_windows) {
        state.baseline.pop_front();
      }
      if (!has_baseline) continue;  // first window: baseline only
    }

    const bool above = state.rule.direction == WatchRule::Direction::kAbove;
    if (above ? compared <= state.rule.threshold
              : compared >= state.rule.threshold) {
      continue;
    }

    AlertEvent event;
    event.rule = state.rule.name;
    event.expr = (state.rule.drift ? "drift:" : "") + state.rule.expr;
    event.context = context_;
    event.direction = above ? "above" : "below";
    event.value = compared;
    event.threshold = state.rule.threshold;
    event.window_s = state.rule.window_s;
    event.baseline = baseline;
    event.has_baseline = has_baseline;
    event.at_s = now;
    if (sink_.is_open()) {
      sink_ << AlertJsonLine(event) << "\n";
      sink_.flush();
    }
    alerts_.push_back(std::move(event));
    ++fired;
  }
  return fired;
}

std::vector<AlertEvent> Watchdog::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

size_t Watchdog::fired_count(const std::string& rule_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (rule_name.empty()) return alerts_.size();
  size_t n = 0;
  for (const AlertEvent& event : alerts_) {
    if (event.rule == rule_name) ++n;
  }
  return n;
}

}  // namespace dtrec::obs
