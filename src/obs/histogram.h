#ifndef DTREC_OBS_HISTOGRAM_H_
#define DTREC_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace dtrec::obs {

/// Lock-free geometric histogram for non-negative samples.
///
/// Fixed geometric buckets (factor 1.25 starting at 1, 96 of them — covers
/// 1 to ~2e9 at ≤12.5% relative error per bucket, which is plenty for
/// p50/p95/p99 reporting). Record() is a couple of relaxed atomic
/// increments, safe to call from every worker concurrently; Summarize()
/// reads a consistent-enough snapshot for monitoring.
///
/// The histogram is unit-agnostic; the serving subsystem records
/// microseconds, which is where the `_us` suffixes in Summary come from
/// (kept for source compatibility with the original
/// serve::LatencyHistogram).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 96;

  Histogram();

  /// A bucket's link back to the request that produced its worst recent
  /// sample: the trace id threaded through the serving path (see
  /// obs::TraceContext), so a p99 bucket resolves to the full span tree
  /// of an actual slow request in the flushed trace JSON.
  struct Exemplar {
    uint64_t trace_id = 0;     ///< 0 = no exemplar captured
    uint64_t value_milli = 0;  ///< sample value × 1e3

    bool valid() const { return trace_id != 0; }
    double value() const { return static_cast<double>(value_milli) / 1e3; }
  };

  /// Records one observation of `value` (clamped to [0, last bucket]).
  /// A non-zero `exemplar_trace_id` additionally offers (value, id) as the
  /// containing bucket's exemplar; it is kept when `value` ties or beats
  /// the bucket's current exemplar (worst-recent-sample semantics). The
  /// exemplar fast path is one extra relaxed load — the slow path (a
  /// mutex) is taken only when a new per-bucket maximum is observed.
  void Record(double value, uint64_t exemplar_trace_id = 0);

  /// A point-in-time copy of every atomic, loaded once. Plain data: safe
  /// to copy, diff against an earlier snapshot, or summarize without
  /// re-reading the live atomics (so count and sum can never tear against
  /// each other mid-computation).
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    std::array<Exemplar, kNumBuckets> exemplars{};
    uint64_t count = 0;
    uint64_t sum_milli = 0;  ///< Σ value × 1e3, integral (no FP atomics)
    uint64_t max_milli = 0;

    /// Counter-wise difference vs. an `earlier` snapshot of the same
    /// histogram (no Reset in between). `max_milli` is not diffable from
    /// counts alone, so the later snapshot's max is kept as an upper
    /// bound on the interval max. Exemplars follow the same convention:
    /// a bucket whose count moved in the interval keeps the later
    /// snapshot's exemplar; an untouched bucket's (necessarily stale)
    /// exemplar is dropped.
    Snapshot DeltaSince(const Snapshot& earlier) const;
  };

  struct Summary {
    uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double max_us = 0.0;
  };

  Snapshot TakeSnapshot() const;

  /// Percentiles are interpolated within the containing bucket.
  static Summary Summarize(const Snapshot& snapshot);
  Summary Summarize() const { return Summarize(TakeSnapshot()); }

  /// The exemplar for the bucket containing percentile `p` (0 < p < 1) of
  /// `snapshot`. If that bucket carries none, nearby buckets are tried —
  /// higher (worse) ones first, since the tail is what an exemplar is
  /// for. Invalid exemplar when the snapshot is empty or nothing at or
  /// around the percentile was recorded with a trace id.
  static Exemplar ExemplarNear(const Snapshot& snapshot, double p);

  /// Inclusive upper bound of bucket i: 1.25^i (bucket 0 also absorbs
  /// everything ≤ 1). Exposed for exposition formats that name buckets,
  /// e.g. DumpPrometheus's `le` labels.
  static double BucketUpperBound(size_t i) { return BucketUpper(i); }

  /// Folds every count of `other` into this histogram (relaxed adds; both
  /// sides may keep recording concurrently). Used to aggregate per-shard
  /// or per-thread histograms into one export.
  void Merge(const Histogram& other);

  void Reset();

 private:
  /// Upper bound of bucket i: 1.25^i.
  static double BucketUpper(size_t i);
  static size_t BucketIndex(double value);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_milli_{0};
  std::atomic<uint64_t> max_milli_{0};

  /// Exemplar slots. The per-bucket value lives in an atomic so Record()
  /// can reject non-improving samples with a single relaxed load; the
  /// paired trace id is guarded by exemplar_mu_ (also held for the value
  /// store), so a snapshot can never pair one sample's id with another's
  /// value.
  mutable std::mutex exemplar_mu_;
  std::array<std::atomic<uint64_t>, kNumBuckets> exemplar_value_milli_;
  std::array<uint64_t, kNumBuckets> exemplar_trace_id_
      DTREC_GUARDED_BY(exemplar_mu_);
};

}  // namespace dtrec::obs

#endif  // DTREC_OBS_HISTOGRAM_H_
