#ifndef DTREC_OBS_HISTOGRAM_H_
#define DTREC_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace dtrec::obs {

/// Lock-free geometric histogram for non-negative samples.
///
/// Fixed geometric buckets (factor 1.25 starting at 1, 96 of them — covers
/// 1 to ~2e9 at ≤12.5% relative error per bucket, which is plenty for
/// p50/p95/p99 reporting). Record() is a couple of relaxed atomic
/// increments, safe to call from every worker concurrently; Summarize()
/// reads a consistent-enough snapshot for monitoring.
///
/// The histogram is unit-agnostic; the serving subsystem records
/// microseconds, which is where the `_us` suffixes in Summary come from
/// (kept for source compatibility with the original
/// serve::LatencyHistogram).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 96;

  Histogram();

  /// Records one observation of `value` (clamped to [0, last bucket]).
  void Record(double value);

  /// A point-in-time copy of every atomic, loaded once. Plain data: safe
  /// to copy, diff against an earlier snapshot, or summarize without
  /// re-reading the live atomics (so count and sum can never tear against
  /// each other mid-computation).
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum_milli = 0;  ///< Σ value × 1e3, integral (no FP atomics)
    uint64_t max_milli = 0;

    /// Counter-wise difference vs. an `earlier` snapshot of the same
    /// histogram (no Reset in between). `max_milli` is not diffable from
    /// counts alone, so the later snapshot's max is kept as an upper
    /// bound on the interval max.
    Snapshot DeltaSince(const Snapshot& earlier) const;
  };

  struct Summary {
    uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double max_us = 0.0;
  };

  Snapshot TakeSnapshot() const;

  /// Percentiles are interpolated within the containing bucket.
  static Summary Summarize(const Snapshot& snapshot);
  Summary Summarize() const { return Summarize(TakeSnapshot()); }

  /// Folds every count of `other` into this histogram (relaxed adds; both
  /// sides may keep recording concurrently). Used to aggregate per-shard
  /// or per-thread histograms into one export.
  void Merge(const Histogram& other);

  void Reset();

 private:
  /// Upper bound of bucket i: 1.25^i.
  static double BucketUpper(size_t i);
  static size_t BucketIndex(double value);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_milli_{0};
  std::atomic<uint64_t> max_milli_{0};
};

}  // namespace dtrec::obs

#endif  // DTREC_OBS_HISTOGRAM_H_
