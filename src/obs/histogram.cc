#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace dtrec::obs {

Histogram::Histogram() { Reset(); }

double Histogram::BucketUpper(size_t i) {
  return std::pow(1.25, static_cast<double>(i));
}

size_t Histogram::BucketIndex(double value) {
  if (value <= 1.0) return 0;
  // i = ceil(log_1.25(value)), clamped to the table.
  const size_t i =
      static_cast<size_t>(std::ceil(std::log(value) / std::log(1.25)));
  return std::min(i, kNumBuckets - 1);
}

void Histogram::Record(double value, uint64_t exemplar_trace_id) {
  value = std::max(value, 0.0);
  const size_t bucket = BucketIndex(value);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t milli = static_cast<uint64_t>(value * 1e3);
  sum_milli_.fetch_add(milli, std::memory_order_relaxed);
  uint64_t seen = max_milli_.load(std::memory_order_relaxed);
  while (milli > seen && !max_milli_.compare_exchange_weak(
                             seen, milli, std::memory_order_relaxed)) {
  }
  if (exemplar_trace_id != 0 &&
      milli >= exemplar_value_milli_[bucket].load(std::memory_order_relaxed)) {
    // Ties admit the newer sample: "worst *recent*", so a long-lived
    // histogram still points at a request whose spans survive the trace
    // ring. Re-check under the lock — another thread may have published a
    // worse sample since the relaxed gate.
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    if (milli >= exemplar_value_milli_[bucket].load(std::memory_order_relaxed)) {
      exemplar_value_milli_[bucket].store(milli, std::memory_order_relaxed);
      exemplar_trace_id_[bucket] = exemplar_trace_id;
    }
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum_milli = sum_milli_.load(std::memory_order_relaxed);
  snapshot.max_milli = max_milli_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snapshot.exemplars[i] = {
          exemplar_trace_id_[i],
          exemplar_value_milli_[i].load(std::memory_order_relaxed)};
    }
  }
  return snapshot;
}

Histogram::Snapshot Histogram::Snapshot::DeltaSince(
    const Snapshot& earlier) const {
  Snapshot delta;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    delta.buckets[i] = buckets[i] - earlier.buckets[i];
    if (delta.buckets[i] != 0) delta.exemplars[i] = exemplars[i];
  }
  delta.count = count - earlier.count;
  delta.sum_milli = sum_milli - earlier.sum_milli;
  delta.max_milli = max_milli;
  return delta;
}

Histogram::Summary Histogram::Summarize(const Snapshot& snapshot) {
  Summary summary;
  summary.count = snapshot.count;
  if (summary.count == 0) return summary;
  summary.mean_us = static_cast<double>(snapshot.sum_milli) / 1e3 /
                    static_cast<double>(summary.count);
  summary.max_us = static_cast<double>(snapshot.max_milli) / 1e3;

  uint64_t total = 0;
  for (const uint64_t c : snapshot.buckets) total += c;
  const auto percentile = [&snapshot, total](double p) {
    const double target = p * static_cast<double>(total);
    uint64_t cum = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (snapshot.buckets[i] == 0) continue;
      const double before = static_cast<double>(cum);
      cum += snapshot.buckets[i];
      if (static_cast<double>(cum) >= target) {
        const double lower = i == 0 ? 0.0 : BucketUpper(i - 1);
        const double upper = BucketUpper(i);
        const double frac = std::clamp(
            (target - before) / static_cast<double>(snapshot.buckets[i]), 0.0,
            1.0);
        return lower + frac * (upper - lower);
      }
    }
    return BucketUpper(kNumBuckets - 1);
  };
  summary.p50_us = percentile(0.50);
  summary.p95_us = percentile(0.95);
  summary.p99_us = percentile(0.99);
  summary.p999_us = percentile(0.999);
  return summary;
}

void Histogram::Merge(const Histogram& other) {
  const Snapshot snapshot = other.TakeSnapshot();
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (snapshot.buckets[i] != 0) {
      buckets_[i].fetch_add(snapshot.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_milli_.fetch_add(snapshot.sum_milli, std::memory_order_relaxed);
  uint64_t seen = max_milli_.load(std::memory_order_relaxed);
  while (snapshot.max_milli > seen &&
         !max_milli_.compare_exchange_weak(seen, snapshot.max_milli,
                                           std::memory_order_relaxed)) {
  }
  {
    // Per bucket, the worse of the two exemplars wins (ties keep ours —
    // no recency signal across histograms).
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    for (size_t i = 0; i < kNumBuckets; ++i) {
      const Exemplar& theirs = snapshot.exemplars[i];
      if (theirs.valid() &&
          theirs.value_milli >
              exemplar_value_milli_[i].load(std::memory_order_relaxed)) {
        exemplar_value_milli_[i].store(theirs.value_milli,
                                       std::memory_order_relaxed);
        exemplar_trace_id_[i] = theirs.trace_id;
      } else if (theirs.valid() && exemplar_trace_id_[i] == 0) {
        exemplar_value_milli_[i].store(theirs.value_milli,
                                       std::memory_order_relaxed);
        exemplar_trace_id_[i] = theirs.trace_id;
      }
    }
  }
}

Histogram::Exemplar Histogram::ExemplarNear(const Snapshot& snapshot,
                                            double p) {
  uint64_t total = 0;
  for (const uint64_t c : snapshot.buckets) total += c;
  if (total == 0) return {};
  const double target = p * static_cast<double>(total);
  size_t at = kNumBuckets - 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += snapshot.buckets[i];
    if (static_cast<double>(cum) >= target) {
      at = i;
      break;
    }
  }
  for (size_t i = at; i < kNumBuckets; ++i) {
    if (snapshot.exemplars[i].valid()) return snapshot.exemplars[i];
  }
  for (size_t i = at; i-- > 0;) {
    if (snapshot.exemplars[i].valid()) return snapshot.exemplars[i];
  }
  return {};
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_milli_.store(0, std::memory_order_relaxed);
  max_milli_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    exemplar_value_milli_[i].store(0, std::memory_order_relaxed);
    exemplar_trace_id_[i] = 0;
  }
}

}  // namespace dtrec::obs
