#ifndef DTREC_OBS_WATCHDOG_H_
#define DTREC_OBS_WATCHDOG_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

// Declarative telemetry watchdog: a handful of text rules evaluated on a
// periodic thread over windowed metric deltas (Histogram::DeltaSince /
// counter differences), emitting dtrec-alerts-v1 JSONL. This is the
// drift-aware layer the paper's failure mode needs — a clip-rate that
// creeps or a p99 that burns shows up as an alert stream, not as a number
// someone has to diff by hand.
//
// Rule grammar (one rule per line, '#' comments and blank lines ignored):
//
//   <name>: <metric-expr>, <window_s>, <threshold>, <above|below>
//
// metric-expr:
//   p50:|p95:|p99:|p999:|max:|mean:<histogram>   stat over the window's
//                                                DeltaSince snapshot
//   rate:<counter_a>/<counter_b>                 Δa / Δb over the window
//   delta:<counter>                              raw increase over the window
//   value:<gauge>                                instantaneous gauge value
//
// Any expression may be prefixed with `drift:` — the windowed value is
// compared against the trailing mean of up to `baseline_windows` previous
// windows, and the threshold applies to the deviation (value − baseline).
//
// Examples:
//
//   p99_slo_burn: p99:serve.total_us, 1, 5000, above
//   shed_spike:   rate:serve.rung_shed/serve.requests, 1, 0.25, above
//   clip_drift:   drift:rate:propensity.clip.fired/propensity.clip.total, 1, 0.05, above
//   traffic_dry:  delta:serve.requests, 5, 1, below
//
// Windows with no signal are skipped, not alerted: a histogram rule whose
// window saw zero samples, or a rate rule whose denominator did not move,
// has nothing to say (so "below" rules do not fire on idle processes —
// use delta:...,below to detect silence explicitly). A counter or
// histogram that was Reset() mid-window re-primes instead of producing a
// wrapped delta.

namespace dtrec::obs {

struct WatchRule {
  enum class Kind { kHistogramStat, kCounterRate, kCounterDelta, kGaugeValue };
  enum class Direction { kAbove, kBelow };

  std::string name;
  std::string expr;      ///< metric expression as written (sans drift:)
  Kind kind = Kind::kCounterDelta;
  std::string stat;      ///< histogram stat: p50/p95/p99/p999/max/mean
  std::string metric_a;  ///< histogram / counter / gauge name
  std::string metric_b;  ///< rate denominator counter ("" otherwise)
  bool drift = false;
  double window_s = 1.0;
  double threshold = 0.0;
  Direction direction = Direction::kAbove;
};

/// Parses rule text in the grammar above; the error names the first
/// malformed line. An empty rule set is valid (the watchdog just idles).
Status ParseWatchdogRules(const std::string& text,
                          std::vector<WatchRule>* rules);

struct AlertEvent {
  std::string rule;
  std::string expr;
  std::string context;    ///< SetContext tag, e.g. the bench phase
  std::string direction;  ///< "above" | "below"
  double value = 0.0;
  double threshold = 0.0;
  double window_s = 0.0;
  double baseline = 0.0;  ///< meaningful only when has_baseline
  bool has_baseline = false;
  double at_s = 0.0;  ///< watchdog-clock seconds
};

/// One dtrec-alerts-v1 JSONL record (no trailing newline):
///   {"schema": "dtrec-alerts-v1", "rule": ..., "expr": ..., "context":
///    ..., "value": ..., "threshold": ..., "direction": ..., "window_s":
///    ..., "baseline": <number|null>, "at_s": ...}
std::string AlertJsonLine(const AlertEvent& event);

/// Evaluates a rule set against a MetricsRegistry. Resolve-once metric
/// pointers, windowed deltas, optional JSONL sink, optional background
/// thread. Thread-safe; Poll/ForceEvaluate may race the periodic thread.
class Watchdog {
 public:
  using ClockFn = std::function<double()>;  ///< monotonic seconds

  struct Options {
    /// Streaming dtrec-alerts-v1 sink. Created (truncated) immediately,
    /// so an alert-free run still leaves a valid empty artifact. "" = in
    /// memory only.
    std::string alerts_path;
    /// Injectable clock for deterministic tests; default steady_clock.
    ClockFn clock;
    /// Trailing windows kept per drift: rule.
    size_t baseline_windows = 8;
  };

  Watchdog(MetricsRegistry* registry, std::vector<WatchRule> rules);
  Watchdog(MetricsRegistry* registry, std::vector<WatchRule> rules,
           Options options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Launches the periodic thread: every `period_s` it Poll()s. One
  /// thread per watchdog; Start after Start is FailedPrecondition.
  Status Start(double period_s);
  void Stop();

  /// Tags subsequent alerts (bench phase, deployment stage, ...).
  void SetContext(const std::string& context);

  /// Evaluates every rule whose window has elapsed; returns alerts fired.
  size_t Poll();

  /// Evaluates every rule *now* regardless of window age (deterministic
  /// phase-boundary checks in benches/tests); returns alerts fired.
  size_t ForceEvaluate();

  std::vector<AlertEvent> alerts() const;

  /// Alerts fired so far, optionally filtered by rule name.
  size_t fired_count(const std::string& rule_name = "") const;

 private:
  struct RuleState {
    WatchRule rule;
    Histogram* hist = nullptr;
    Counter* counter_a = nullptr;
    Counter* counter_b = nullptr;
    Gauge* gauge = nullptr;
    Histogram::Snapshot last_hist;
    uint64_t last_a = 0;
    uint64_t last_b = 0;
    double last_eval_s = 0.0;
    bool primed = false;  ///< first pass only records the window start
    std::deque<double> baseline;
  };

  size_t Evaluate(bool force, double now);
  /// False when the window carried no signal (or the rule just primed).
  bool ComputeValue(RuleState* state, double* value) DTREC_REQUIRES(mu_);
  void PeriodicLoop(double period_s);

  MetricsRegistry* const registry_;
  const Options options_;
  ClockFn clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RuleState> states_ DTREC_GUARDED_BY(mu_);
  std::vector<AlertEvent> alerts_ DTREC_GUARDED_BY(mu_);
  std::string context_ DTREC_GUARDED_BY(mu_);
  // Streaming JSONL sink: deliberately non-atomic — alerts must hit disk
  // as they fire, not in one post-crash commit.
  // dtrec-lint: allow(raw-ofstream-write)
  std::ofstream sink_ DTREC_GUARDED_BY(mu_);
  bool stop_ DTREC_GUARDED_BY(mu_) = false;
  bool started_ DTREC_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace dtrec::obs

#endif  // DTREC_OBS_WATCHDOG_H_
