#ifndef DTREC_OBS_EVENT_LOG_H_
#define DTREC_OBS_EVENT_LOG_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dtrec::obs {

/// Everything worth knowing about one completed training epoch. Serialized
/// as one JSON object per line (JSONL), schema "dtrec-train-events-v1":
///
///   {"schema": "dtrec-train-events-v1", "method": "DT-DR", "epoch": 3,
///    "steps": 43, "wall_s": 0.812, "lr": 0.05,
///    "losses": {"total": 0.48, "propensity_bce": 0.21, ...},
///    "grad_norm": 1.94,
///    "propensity_clip": {"total": 88064, "fired": 12, "rate": 1.36e-4},
///    "rng_cursor": "0x9e3779b97f4a7c15"}
///
/// `losses` holds per-step means of whatever components the trainer
/// recorded (RecordEpochLoss); `propensity_clip` is the epoch-local delta
/// of the process-wide clip counters; `rng_cursor` fingerprints the
/// trainer RNG state after the epoch, so two runs can be diffed for
/// divergence epoch by epoch.
struct TrainEvent {
  std::string method;
  uint64_t epoch = 0;
  uint64_t steps = 0;
  double wall_seconds = 0.0;
  double learning_rate = 0.0;
  std::vector<std::pair<std::string, double>> losses;
  double grad_norm = 0.0;
  uint64_t clip_total = 0;
  uint64_t clip_fired = 0;
  double clip_rate = 0.0;
  uint64_t rng_cursor = 0;
};

/// One JSONL line (newline-terminated) for `event`.
std::string TrainEventToJsonLine(const TrainEvent& event);

/// Append-only JSONL sink for TrainEvents. Each Append writes and flushes
/// one line, so a crashed run keeps every completed epoch's record — the
/// stream is diagnostic output, deliberately not crash-atomic (a torn
/// final line is tolerated by the validator's line-wise parse).
class TrainEventLog {
 public:
  /// Opens `path` for writing; `append` continues an existing stream
  /// (resume) instead of truncating it.
  Status Open(const std::string& path, bool append);

  Status Append(const TrainEvent& event);

  bool is_open() const { return out_.is_open(); }

 private:
  std::string path_;
  std::ofstream out_;  // dtrec-lint: allow(raw-ofstream-write)
};

}  // namespace dtrec::obs

#endif  // DTREC_OBS_EVENT_LOG_H_
