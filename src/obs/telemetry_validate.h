#ifndef DTREC_OBS_TELEMETRY_VALIDATE_H_
#define DTREC_OBS_TELEMETRY_VALIDATE_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

// Structural validators for the telemetry artifacts (trace JSON, training
// event JSONL, metrics JSON, alerts JSONL, profile JSON, bench JSONs).
// Same recursive-descent-checker idiom as bench_common.h's kernel-bench
// validator: verify shape and required keys, not values. Wired into CI
// through `dtrec_cli validate` so an emitted artifact that
// chrome://tracing or a JSONL consumer would choke on fails the pipeline
// instead of shipping.

namespace dtrec::obs {

/// Chrome trace_event JSON: top-level object with a "traceEvents" array
/// whose entries carry a non-empty "name", "ph": "X", and numeric
/// ts/dur/pid/tid. Outputs (optional, may be null): the event count, the
/// set of distinct span names — callers assert on required stages — and
/// the per-trace-id event counts (events carrying "args": {"trace_id":
/// ...}), keyed by the id string as emitted, so an exemplar's id can be
/// resolved back to its span tree.
Status ValidateTraceJson(
    const std::string& content, size_t* num_events = nullptr,
    std::set<std::string>* span_names = nullptr,
    std::map<std::string, size_t>* trace_id_events = nullptr);

/// dtrec-alerts-v1 JSONL: zero or more lines (an alert-free run leaves an
/// empty file — that is valid), each a record with non-empty rule/expr,
/// direction "above"|"below", numeric value/threshold/window_s/at_s, and
/// a baseline that is a number or null. Outputs (optional): record count,
/// distinct rule names, distinct contexts.
Status ValidateAlertsJsonl(const std::string& content,
                           size_t* num_records = nullptr,
                           std::set<std::string>* rule_names = nullptr,
                           std::set<std::string>* contexts = nullptr);

/// dtrec-profile-v1 JSON: numeric interval_us/samples/dropped and a
/// stacks array whose entries carry a non-empty frames array of strings
/// and a count ≥ 1. Outputs (optional): total samples and the set of
/// distinct frame names (for asserting the hot kernel shows up).
Status ValidateProfileJson(const std::string& content,
                           size_t* num_samples = nullptr,
                           std::set<std::string>* frame_names = nullptr);

/// Training event stream: ≥1 JSONL line, each a "dtrec-train-events-v1"
/// record with a non-empty method, numeric epoch/steps/wall_s/grad_norm,
/// a "losses" object, a "propensity_clip" object carrying
/// total/fired/rate, and an "rng_cursor". A torn final line (crashed
/// writer) is rejected. Outputs (optional): record count and the union
/// of loss-component names seen.
Status ValidateTrainEventsJsonl(const std::string& content,
                                size_t* num_records = nullptr,
                                std::set<std::string>* loss_keys = nullptr);

/// Metrics exposition: "dtrec-metrics-v1" with counters/gauges/histograms
/// objects; every histogram entry carries count/mean/p50/p95/p99/max.
Status ValidateMetricsJson(const std::string& content);

/// Gate-relevant fields parsed out of a serving-bench JSON by
/// ValidateServingBenchJson. The CI throughput gate reads the build stamp
/// from the document itself so a sanitized or Debug run is never held to
/// the Release floor.
struct ServingBenchGateInputs {
  std::string build_type;  ///< e.g. "Release"
  std::string sanitizers;  ///< "none" on an unsanitized build
  bool failpoints = false;
  size_t num_phases = 0;
  double slo_ms = 0.0;
  /// Closed-loop capacity phase throughput, normalized per worker core,
  /// counted only while the p99 met the SLO (0 when the SLO was missed).
  double per_core_users_per_sec_at_slo = 0.0;
  double capacity_p99_us = 0.0;
  double saturation_shed_rate = -1.0;  ///< -1 = no saturation phase
  double breaker_open_transitions = 0.0;
};

/// Serving traffic-replay bench JSON: "dtrec-bench-serving-v1" with a
/// build stamp (build_type/sanitizers/numeric_checks/failpoints), a
/// config object, a non-empty phases array — every phase carrying a
/// non-empty name, request/latency fields (requests, elapsed_s, p50_us,
/// p99_us, p999_us) and the rate triple (shed_rate, degraded_rate,
/// cache_hit_rate) — and a summary object with the per-core SLO
/// throughput. Outputs (optional): the fields the CI gate enforces.
Status ValidateServingBenchJson(const std::string& content,
                                ServingBenchGateInputs* gate = nullptr);

/// One comparable perf row extracted from a bench JSON for bench-diff.
struct BenchDiffRow {
  std::string name;  ///< e.g. "capacity.users_per_sec", "gemm/blocked/….gflops"
  double value = 0.0;
  bool higher_is_better = true;
};

/// Extracts comparable rows from a dtrec-bench-serving-v1 JSON (per-phase
/// users_per_sec and p99_us, plus the summary per-core SLO throughput) or
/// a dtrec-bench-kernels-v2 JSON (per kernel/variant/shape gflops).
/// `schema` (optional) receives the detected tag so callers can refuse to
/// diff across schemas.
Status ExtractBenchRows(const std::string& content, std::string* schema,
                        std::vector<BenchDiffRow>* rows);

}  // namespace dtrec::obs

#endif  // DTREC_OBS_TELEMETRY_VALIDATE_H_
