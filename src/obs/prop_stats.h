#ifndef DTREC_OBS_PROP_STATS_H_
#define DTREC_OBS_PROP_STATS_H_

#include <atomic>
#include <cstdint>

// Process-wide propensity-clip counters. The clip rate is the project's
// canonical early-warning signal for the extreme inverse-propensity
// variance failure mode: a debiased estimator whose clip rate creeps up is
// quietly trading variance for bias. ClipPropensity() and SafeInverse()
// feed these counters on every call; they are exported through
// obs::MetricsRegistry::DumpJson (via PublishPropensityClipStats in
// obs/metrics.h) and per-epoch through the training event stream.
//
// This header is included from the hottest numeric paths, so it depends on
// nothing but <atomic>/<cstdint> and costs one or two relaxed fetch_adds
// per call.

namespace dtrec::obs {

namespace internal {
extern std::atomic<uint64_t> g_propensity_clip_total;
extern std::atomic<uint64_t> g_propensity_clip_fired;
}  // namespace internal

/// Counts one propensity clip/inversion; `fired` means the input was below
/// the floor and actually got clipped (upper clamps toward 1 are benign
/// and do not count as fired).
inline void RecordPropensityClip(bool fired) {
  internal::g_propensity_clip_total.fetch_add(1, std::memory_order_relaxed);
  if (fired) {
    internal::g_propensity_clip_fired.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Point-in-time copy of the clip counters; plain data, diffable.
struct PropensityClipSnapshot {
  uint64_t total = 0;  ///< clip/inversion sites evaluated
  uint64_t fired = 0;  ///< inputs below the floor (actually clipped)

  double rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(fired) / static_cast<double>(total);
  }

  PropensityClipSnapshot DeltaSince(const PropensityClipSnapshot& earlier)
      const {
    return {total - earlier.total, fired - earlier.fired};
  }
};

inline PropensityClipSnapshot GetPropensityClipSnapshot() {
  PropensityClipSnapshot snapshot;
  snapshot.total =
      internal::g_propensity_clip_total.load(std::memory_order_relaxed);
  snapshot.fired =
      internal::g_propensity_clip_fired.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace dtrec::obs

#endif  // DTREC_OBS_PROP_STATS_H_
