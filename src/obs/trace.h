#ifndef DTREC_OBS_TRACE_H_
#define DTREC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

// Scoped trace spans, flushed as Chrome trace_event JSON.
//
// Usage — one macro at the top of the scope to time:
//
//   void TrainStep(...) {
//     DTREC_TRACE_SPAN("train_step");
//     ...
//   }
//
// Spans record (name, begin, duration) into per-thread ring buffers;
// FlushTraceJson()/WriteTraceJson() render every buffered span as a
// complete event ("ph":"X") in the Chrome trace_event format, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Cost model: recording is OFF by default — an unarmed span site is one
// relaxed atomic load. EnableTracing() arms every site process-wide
// (dtrec_cli/dtrec_serve arm it when --trace-out is passed); an armed site
// pays two steady-clock reads plus an uncontended mutexed ring write. Hot
// request paths that cannot afford that per call head-sample instead: a
// TraceSampleScope constructed with sampled=false suppresses recording on
// the thread for its lifetime, so only every Nth request pays the armed
// cost (see RecommendServer's trace_sample_every). Building with
// -DDTREC_TRACING=OFF compiles every span site to nothing at all, for
// benchmark builds whose numbers are reported.

namespace dtrec::obs {

namespace internal {
extern std::atomic<bool> g_tracing_enabled;

/// Thread-local head-sampling verdict (see TraceSampleScope). Checked
/// after the global arm flag, so disabled tracing still costs exactly one
/// relaxed load per span site.
extern thread_local bool t_trace_suppressed;

/// Nanoseconds on the steady clock since process start.
uint64_t MonotonicNanos();

/// Appends one complete span to the calling thread's ring buffer, tagged
/// with the thread's current trace id (see TraceContext). The `name`
/// pointer must stay valid until the next flush/clear — span names are
/// string literals by convention.
void RecordSpan(const char* name, uint64_t begin_ns, uint64_t duration_ns);
}  // namespace internal

/// A process-unique, never-zero 64-bit trace id (a mixed atomic counter —
/// deterministic across runs, no clock or PRNG involved).
uint64_t NewTraceId();

/// The calling thread's current request trace id, 0 when no TraceContext
/// is live — or when a TraceSampleScope has sampled the request out (an
/// exemplar must never name a trace that recorded no spans). Spans and
/// exemplars recorded on this thread carry it.
uint64_t CurrentTraceId();

/// Canonical rendering of a trace id, as emitted in the trace JSON's
/// "args": {"trace_id": "0x..."} — use it to grep a flushed trace for a
/// specific request.
std::string FormatTraceId(uint64_t id);

/// Records a zero-duration annotation span ("rung_popularity",
/// "breaker_scorer_open", …) tagged with the calling thread's current
/// trace id. No-op while tracing is disabled.
void TraceNote(const char* name);

/// Scoped request identity: installs `id` as the calling thread's current
/// trace id for its lifetime (restoring the previous one on exit, so
/// nested contexts — e.g. a sync Recommend() inside an instrumented
/// caller — compose). Works whether or not span recording is compiled in:
/// exemplar capture keeps its ids even in DTREC_TRACING=OFF builds.
class TraceContext {
 public:
  TraceContext() : TraceContext(NewTraceId()) {}
  explicit TraceContext(uint64_t id);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  uint64_t id() const { return id_; }

 private:
  uint64_t id_ = 0;
  uint64_t prev_ = 0;
};

/// Scoped head-sampling verdict for one request. Constructed with
/// sampled=false it suppresses span/note recording *and* exemplar
/// identity (CurrentTraceId() reads 0) on the calling thread until it
/// exits — a sampled-out request costs two thread-local writes instead of
/// per-span clock reads, and can never plant a histogram exemplar whose
/// trace id resolves to an empty span tree. Restores the previous verdict
/// on exit, so nested scopes (a sampled sub-operation inside a sampled-out
/// request, or vice versa) compose like TraceContext.
class TraceSampleScope {
 public:
  explicit TraceSampleScope(bool sampled);
  ~TraceSampleScope();

  TraceSampleScope(const TraceSampleScope&) = delete;
  TraceSampleScope& operator=(const TraceSampleScope&) = delete;

 private:
  bool prev_ = false;
};

inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed) &&
         !internal::t_trace_suppressed;
}

void EnableTracing();
void DisableTracing();

/// Drops every buffered span (the buffers themselves stay registered).
void ClearTrace();

/// Renders every buffered span as Chrome trace_event JSON:
///   {"displayTimeUnit": "ms", "droppedEvents": N, "traceEvents": [
///     {"name": "...", "cat": "dtrec", "ph": "X",
///      "ts": <µs>, "dur": <µs>, "pid": 1, "tid": <n>,
///      "args": {"trace_id": "0x..."}}, ...]}
/// (`args` is present only on spans recorded inside a TraceContext.)
/// Safe to call while other threads keep recording.
std::string FlushTraceJson();

/// FlushTraceJson() committed crash-atomically to `path`.
Status WriteTraceJson(const std::string& path);

/// RAII recorder behind DTREC_TRACE_SPAN. A span constructed while tracing
/// is disabled stays inert even if tracing is enabled before it closes
/// (its begin timestamp was never taken).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      begin_ns_ = internal::MonotonicNanos();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, begin_ns_,
                           internal::MonotonicNanos() - begin_ns_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t begin_ns_ = 0;
};

}  // namespace dtrec::obs

#if defined(DTREC_TRACING_ENABLED)
#define DTREC_TRACE_SPAN_CONCAT_INNER(a, b) a##b
#define DTREC_TRACE_SPAN_CONCAT(a, b) DTREC_TRACE_SPAN_CONCAT_INNER(a, b)
#define DTREC_TRACE_SPAN(name)                                      \
  ::dtrec::obs::TraceSpan DTREC_TRACE_SPAN_CONCAT(dtrec_trace_span_, \
                                                  __LINE__)(name)
#else
#define DTREC_TRACE_SPAN(name) static_cast<void>(0)
#endif

#endif  // DTREC_OBS_TRACE_H_
