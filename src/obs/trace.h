#ifndef DTREC_OBS_TRACE_H_
#define DTREC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

// Scoped trace spans, flushed as Chrome trace_event JSON.
//
// Usage — one macro at the top of the scope to time:
//
//   void TrainStep(...) {
//     DTREC_TRACE_SPAN("train_step");
//     ...
//   }
//
// Spans record (name, begin, duration) into per-thread ring buffers;
// FlushTraceJson()/WriteTraceJson() render every buffered span as a
// complete event ("ph":"X") in the Chrome trace_event format, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Cost model: recording is OFF by default — an unarmed span site is one
// relaxed atomic load. EnableTracing() arms every site process-wide
// (dtrec_cli/dtrec_serve arm it when --trace-out is passed). Building with
// -DDTREC_TRACING=OFF compiles every span site to nothing at all, for
// benchmark builds whose numbers are reported.

namespace dtrec::obs {

namespace internal {
extern std::atomic<bool> g_tracing_enabled;

/// Nanoseconds on the steady clock since process start.
uint64_t MonotonicNanos();

/// Appends one complete span to the calling thread's ring buffer. The
/// `name` pointer must stay valid until the next flush/clear — span names
/// are string literals by convention.
void RecordSpan(const char* name, uint64_t begin_ns, uint64_t duration_ns);
}  // namespace internal

inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing();
void DisableTracing();

/// Drops every buffered span (the buffers themselves stay registered).
void ClearTrace();

/// Renders every buffered span as Chrome trace_event JSON:
///   {"displayTimeUnit": "ms", "droppedEvents": N, "traceEvents": [
///     {"name": "...", "cat": "dtrec", "ph": "X",
///      "ts": <µs>, "dur": <µs>, "pid": 1, "tid": <n>}, ...]}
/// Safe to call while other threads keep recording.
std::string FlushTraceJson();

/// FlushTraceJson() committed crash-atomically to `path`.
Status WriteTraceJson(const std::string& path);

/// RAII recorder behind DTREC_TRACE_SPAN. A span constructed while tracing
/// is disabled stays inert even if tracing is enabled before it closes
/// (its begin timestamp was never taken).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      begin_ns_ = internal::MonotonicNanos();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, begin_ns_,
                           internal::MonotonicNanos() - begin_ns_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t begin_ns_ = 0;
};

}  // namespace dtrec::obs

#if defined(DTREC_TRACING_ENABLED)
#define DTREC_TRACE_SPAN_CONCAT_INNER(a, b) a##b
#define DTREC_TRACE_SPAN_CONCAT(a, b) DTREC_TRACE_SPAN_CONCAT_INNER(a, b)
#define DTREC_TRACE_SPAN(name)                                      \
  ::dtrec::obs::TraceSpan DTREC_TRACE_SPAN_CONCAT(dtrec_trace_span_, \
                                                  __LINE__)(name)
#else
#define DTREC_TRACE_SPAN(name) static_cast<void>(0)
#endif

#endif  // DTREC_OBS_TRACE_H_
