#ifndef DTREC_OBS_PROFILER_H_
#define DTREC_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

// SIGPROF sampling profiler: a process-wide ITIMER_PROF timer fires on
// CPU time, and an async-signal-safe handler appends the interrupted
// stack (raw return addresses via backtrace()) to a preallocated sample
// array. Everything that is *not* signal-safe — symbolization (dladdr +
// demangling), aggregation, formatting — happens at CollectProfile()
// time, after the timer is disarmed.
//
// Signal-safety rules for the handler (the marked region in profiler.cc,
// enforced by the `signal-unsafe-in-handler` lint rule):
//   - no allocation (malloc/new/containers that may grow),
//   - no locks (a mutex held by the interrupted thread deadlocks),
//   - no stdio / iostreams (internal locks + buffering),
//   - only errno save/restore, relaxed/release atomics on preallocated
//     slots, and backtrace() — whose unwinder is warmed by a priming call
//     in StartProfiler *before* the handler is installed (the first
//     backtrace() call may lazily dlopen libgcc, which allocates).
//
// The profiler is compiled out under TSan/ASan builds (see the guard in
// profiler.cc): sanitizer runtimes wrap signal delivery and unwinding,
// and a handler that is clean under those interceptors is not worth the
// complexity. ProfilerAvailable() reports false there and Start/Stop are
// inert, so callers can attach unconditionally.

namespace dtrec::obs {

struct ProfilerOptions {
  uint64_t interval_us = 2000;   ///< CPU time between SIGPROF samples
  size_t max_samples = 1 << 14;  ///< sample capacity; overflow → dropped
  size_t max_depth = 48;         ///< frames kept per sample (capped at 64)
};

/// False when the profiler is compiled out (sanitizer build) or the
/// platform lacks SIGPROF/backtrace; StartProfiler then returns
/// NotSupported and CollectProfile returns an empty report.
bool ProfilerAvailable();

/// Arms the SIGPROF handler and the ITIMER_PROF timer. One profiler per
/// process; a second Start without a Stop is FailedPrecondition.
Status StartProfiler(const ProfilerOptions& options = {});

/// Disarms the timer and restores the previous SIGPROF disposition.
/// Samples stay buffered for CollectProfile().
Status StopProfiler();

bool ProfilerRunning();

struct ProfileStack {
  std::vector<std::string> frames;  ///< outermost (root) first
  uint64_t count = 0;               ///< samples that hit this exact stack
};

struct ProfileReport {
  uint64_t interval_us = 0;
  uint64_t samples = 0;  ///< samples aggregated into `stacks`
  uint64_t dropped = 0;  ///< signals that found the sample array full
  std::vector<ProfileStack> stacks;  ///< most frequent first
};

/// Symbolizes (dladdr + demangle; hex fallback for anonymous frames) and
/// aggregates the buffered samples. Call after StopProfiler(). Profiled
/// binaries should link with -rdynamic so dladdr can see their symbols.
ProfileReport CollectProfile();

/// Collapsed-stack text — one "root;caller;...;leaf count" line per
/// distinct stack — directly loadable by flamegraph.pl / inferno / speedscope.
std::string CollapsedStacks(const ProfileReport& report);

/// {"schema": "dtrec-profile-v1", "interval_us": ..., "samples": ...,
///  "dropped": ..., "stacks": [{"frames": ["root", ...], "count": n}, ...]}
std::string ProfileJson(const ProfileReport& report);

}  // namespace dtrec::obs

#endif  // DTREC_OBS_PROFILER_H_
