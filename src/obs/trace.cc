#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/string_util.h"

namespace dtrec::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* name = nullptr;
  uint64_t begin_ns = 0;
  uint64_t duration_ns = 0;
};

/// Bounds memory per thread; the ring keeps the newest spans (a stuck run
/// is diagnosed from its tail, not its preamble).
constexpr size_t kMaxEventsPerThread = 1 << 16;

/// One buffer per recording thread, each with its own mutex. Record()
/// takes an uncontended lock (only a concurrent flush ever competes for
/// it), which keeps recording cheap and the flush race TSan-clean.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  size_t next = 0;  ///< overwrite cursor once the ring is full
  uint64_t dropped = 0;
  uint32_t tid = 0;
};

struct TraceState {
  std::mutex mu;
  /// shared_ptrs keep buffers alive past thread exit, so spans recorded by
  /// a worker survive until the flush after its pool shuts down.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

TraceState& State() {
  static TraceState state;
  return state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    b->tid = state.next_tid++;
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

namespace internal {

uint64_t MonotonicNanos() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

void RecordSpan(const char* name, uint64_t begin_ns, uint64_t duration_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() < kMaxEventsPerThread) {
    buffer.events.push_back({name, begin_ns, duration_ns});
  } else {
    buffer.events[buffer.next] = {name, begin_ns, duration_ns};
    buffer.next = (buffer.next + 1) % kMaxEventsPerThread;
    ++buffer.dropped;
  }
}

}  // namespace internal

void EnableTracing() {
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

std::string FlushTraceJson() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }

  uint64_t dropped = 0;
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", ";
  std::ostringstream events;
  bool first = true;
  for (const auto& buffer : buffers) {
    std::vector<TraceEvent> copy;
    uint32_t tid = 0;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      tid = buffer->tid;
      dropped += buffer->dropped;
      copy.reserve(buffer->events.size());
      // Ring order: oldest surviving event first.
      for (size_t i = 0; i < buffer->events.size(); ++i) {
        copy.push_back(
            buffer->events[(buffer->next + i) % buffer->events.size()]);
      }
    }
    for (const TraceEvent& e : copy) {
      if (!first) events << ",\n";
      first = false;
      events << StrFormat(
          "{\"name\": \"%s\", \"cat\": \"dtrec\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
          e.name, static_cast<double>(e.begin_ns) / 1e3,
          static_cast<double>(e.duration_ns) / 1e3, tid);
    }
  }
  os << "\"droppedEvents\": " << dropped << ", \"traceEvents\": [\n"
     << events.str() << "\n]}\n";
  return os.str();
}

Status WriteTraceJson(const std::string& path) {
  return WriteFileAtomic(path, FlushTraceJson());
}

}  // namespace dtrec::obs
