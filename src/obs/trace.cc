#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace dtrec::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
thread_local bool t_trace_suppressed = false;
}  // namespace internal

namespace {

struct TraceEvent {
  const char* name = nullptr;
  uint64_t begin_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t trace_id = 0;  ///< 0 = recorded outside any TraceContext
};

thread_local uint64_t t_current_trace_id = 0;

/// Bounds memory per thread; the ring keeps the newest spans (a stuck run
/// is diagnosed from its tail, not its preamble).
constexpr size_t kMaxEventsPerThread = 1 << 16;

/// One buffer per recording thread, each with its own mutex. Record()
/// takes an uncontended lock (only a concurrent flush ever competes for
/// it), which keeps recording cheap and the flush race TSan-clean.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events DTREC_GUARDED_BY(mu);
  size_t next DTREC_GUARDED_BY(mu) = 0;  ///< overwrite cursor (ring full)
  uint64_t dropped DTREC_GUARDED_BY(mu) = 0;
  uint32_t tid DTREC_GUARDED_BY(mu) = 0;
};

struct TraceState {
  std::mutex mu;
  /// shared_ptrs keep buffers alive past thread exit, so spans recorded by
  /// a worker survive until the flush after its pool shuts down.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers DTREC_GUARDED_BY(mu);
  uint32_t next_tid DTREC_GUARDED_BY(mu) = 1;
};

TraceState& State() {
  static TraceState state;
  return state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    b->tid = state.next_tid++;
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

namespace internal {

uint64_t MonotonicNanos() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

void RecordSpan(const char* name, uint64_t begin_ns, uint64_t duration_ns) {
  const uint64_t trace_id = t_current_trace_id;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() < kMaxEventsPerThread) {
    buffer.events.push_back({name, begin_ns, duration_ns, trace_id});
  } else {
    buffer.events[buffer.next] = {name, begin_ns, duration_ns, trace_id};
    buffer.next = (buffer.next + 1) % kMaxEventsPerThread;
    ++buffer.dropped;
  }
}

}  // namespace internal

uint64_t NewTraceId() {
  // splitmix64 over a process-wide counter: ids are unique, well mixed
  // (nearby requests land in distant buckets of any hash) and reproducible
  // run to run. The finalizer is a bijection on non-zero inputs' domain
  // minus the single preimage of 0, which the +1 below can never hit at
  // the first 2^64 - 1 ids — more than any process records.
  static std::atomic<uint64_t> counter{0};
  uint64_t z = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;
}

uint64_t CurrentTraceId() {
  return internal::t_trace_suppressed ? 0 : t_current_trace_id;
}

std::string FormatTraceId(uint64_t id) {
  return StrFormat("0x%016llx", static_cast<unsigned long long>(id));
}

void TraceNote(const char* name) {
  if (!TracingEnabled()) return;
  internal::RecordSpan(name, internal::MonotonicNanos(), 0);
}

TraceContext::TraceContext(uint64_t id)
    : id_(id), prev_(t_current_trace_id) {
  t_current_trace_id = id_;
}

TraceContext::~TraceContext() { t_current_trace_id = prev_; }

TraceSampleScope::TraceSampleScope(bool sampled)
    : prev_(internal::t_trace_suppressed) {
  internal::t_trace_suppressed = !sampled;
}

TraceSampleScope::~TraceSampleScope() { internal::t_trace_suppressed = prev_; }

void EnableTracing() {
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  std::vector<std::shared_ptr<ThreadBuffer>> captured;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    captured = state.buffers;
  }
  for (const auto& buffer : captured) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

std::string FlushTraceJson() {
  std::vector<std::shared_ptr<ThreadBuffer>> captured;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    captured = state.buffers;
  }

  uint64_t total_dropped = 0;
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", ";
  std::ostringstream event_stream;
  bool first = true;
  for (const auto& buffer : captured) {
    std::vector<TraceEvent> copy;
    uint32_t buffer_tid = 0;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      buffer_tid = buffer->tid;
      total_dropped += buffer->dropped;
      copy.reserve(buffer->events.size());
      // Ring order: oldest surviving event first.
      for (size_t i = 0; i < buffer->events.size(); ++i) {
        copy.push_back(
            buffer->events[(buffer->next + i) % buffer->events.size()]);
      }
    }
    for (const TraceEvent& e : copy) {
      if (!first) event_stream << ",\n";
      first = false;
      event_stream << StrFormat(
          "{\"name\": \"%s\", \"cat\": \"dtrec\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
          e.name, static_cast<double>(e.begin_ns) / 1e3,
          static_cast<double>(e.duration_ns) / 1e3, buffer_tid);
      if (e.trace_id != 0) {
        event_stream << ", \"args\": {\"trace_id\": \""
                     << FormatTraceId(e.trace_id) << "\"}";
      }
      event_stream << "}";
    }
  }
  os << "\"droppedEvents\": " << total_dropped << ", \"traceEvents\": [\n"
     << event_stream.str() << "\n]}\n";
  return os.str();
}

Status WriteTraceJson(const std::string& path) {
  return WriteFileAtomic(path, FlushTraceJson());
}

}  // namespace dtrec::obs
