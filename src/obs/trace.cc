#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace dtrec::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* name = nullptr;
  uint64_t begin_ns = 0;
  uint64_t duration_ns = 0;
};

/// Bounds memory per thread; the ring keeps the newest spans (a stuck run
/// is diagnosed from its tail, not its preamble).
constexpr size_t kMaxEventsPerThread = 1 << 16;

/// One buffer per recording thread, each with its own mutex. Record()
/// takes an uncontended lock (only a concurrent flush ever competes for
/// it), which keeps recording cheap and the flush race TSan-clean.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events DTREC_GUARDED_BY(mu);
  size_t next DTREC_GUARDED_BY(mu) = 0;  ///< overwrite cursor (ring full)
  uint64_t dropped DTREC_GUARDED_BY(mu) = 0;
  uint32_t tid DTREC_GUARDED_BY(mu) = 0;
};

struct TraceState {
  std::mutex mu;
  /// shared_ptrs keep buffers alive past thread exit, so spans recorded by
  /// a worker survive until the flush after its pool shuts down.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers DTREC_GUARDED_BY(mu);
  uint32_t next_tid DTREC_GUARDED_BY(mu) = 1;
};

TraceState& State() {
  static TraceState state;
  return state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    b->tid = state.next_tid++;
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

namespace internal {

uint64_t MonotonicNanos() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

void RecordSpan(const char* name, uint64_t begin_ns, uint64_t duration_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() < kMaxEventsPerThread) {
    buffer.events.push_back({name, begin_ns, duration_ns});
  } else {
    buffer.events[buffer.next] = {name, begin_ns, duration_ns};
    buffer.next = (buffer.next + 1) % kMaxEventsPerThread;
    ++buffer.dropped;
  }
}

}  // namespace internal

void EnableTracing() {
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  std::vector<std::shared_ptr<ThreadBuffer>> captured;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    captured = state.buffers;
  }
  for (const auto& buffer : captured) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

std::string FlushTraceJson() {
  std::vector<std::shared_ptr<ThreadBuffer>> captured;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    captured = state.buffers;
  }

  uint64_t total_dropped = 0;
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", ";
  std::ostringstream event_stream;
  bool first = true;
  for (const auto& buffer : captured) {
    std::vector<TraceEvent> copy;
    uint32_t buffer_tid = 0;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      buffer_tid = buffer->tid;
      total_dropped += buffer->dropped;
      copy.reserve(buffer->events.size());
      // Ring order: oldest surviving event first.
      for (size_t i = 0; i < buffer->events.size(); ++i) {
        copy.push_back(
            buffer->events[(buffer->next + i) % buffer->events.size()]);
      }
    }
    for (const TraceEvent& e : copy) {
      if (!first) event_stream << ",\n";
      first = false;
      event_stream << StrFormat(
          "{\"name\": \"%s\", \"cat\": \"dtrec\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
          e.name, static_cast<double>(e.begin_ns) / 1e3,
          static_cast<double>(e.duration_ns) / 1e3, buffer_tid);
    }
  }
  os << "\"droppedEvents\": " << total_dropped << ", \"traceEvents\": [\n"
     << event_stream.str() << "\n]}\n";
  return os.str();
}

Status WriteTraceJson(const std::string& path) {
  return WriteFileAtomic(path, FlushTraceJson());
}

}  // namespace dtrec::obs
