#include "obs/event_log.h"

#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace dtrec::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  return StrFormat("%.17g", v);
}

}  // namespace

std::string TrainEventToJsonLine(const TrainEvent& event) {
  std::ostringstream os;
  os << "{\"schema\": \"dtrec-train-events-v1\""
     << ", \"method\": \"" << JsonEscape(event.method) << "\""
     << ", \"epoch\": " << event.epoch << ", \"steps\": " << event.steps
     << ", \"wall_s\": " << JsonNumber(event.wall_seconds)
     << ", \"lr\": " << JsonNumber(event.learning_rate) << ", \"losses\": {";
  bool first = true;
  for (const auto& [name, value] : event.losses) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << JsonNumber(value);
  }
  os << "}, \"grad_norm\": " << JsonNumber(event.grad_norm)
     << ", \"propensity_clip\": {\"total\": " << event.clip_total
     << ", \"fired\": " << event.clip_fired
     << ", \"rate\": " << JsonNumber(event.clip_rate) << "}"
     << StrFormat(", \"rng_cursor\": \"0x%016llx\"",
                  static_cast<unsigned long long>(event.rng_cursor))
     << "}\n";
  return os.str();
}

Status TrainEventLog::Open(const std::string& path, bool append) {
  path_ = path;
  out_.open(path, append ? std::ios::app : std::ios::trunc);
  if (!out_.is_open()) {
    return Status::InvalidArgument("cannot open event log '" + path + "'");
  }
  return Status::OK();
}

Status TrainEventLog::Append(const TrainEvent& event) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("event log is not open");
  }
  out_ << TrainEventToJsonLine(event);
  out_.flush();
  if (!out_.good()) {
    return Status::Internal("write to event log '" + path_ + "' failed");
  }
  return Status::OK();
}

}  // namespace dtrec::obs
