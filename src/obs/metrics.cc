#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "obs/prop_stats.h"
#include "util/string_util.h"

namespace dtrec::obs {

namespace internal {
std::atomic<uint64_t> g_propensity_clip_total{0};
std::atomic<uint64_t> g_propensity_clip_fired{0};
}  // namespace internal

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// JSON has no Inf/NaN literals; a gauge holding one would corrupt the
/// whole exposition, so non-finite values export as 0.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  return StrFormat("%.17g", v);
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; dtrec's
/// dot-separated names map onto that with '.' (and anything else exotic)
/// folded to '_'.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(keep ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

/// HELP-line escaping per the text format: '\' → "\\", newline → "\n".
std::string PromHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Prometheus, unlike JSON, has spellings for non-finite values.
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return StrFormat("%.17g", v);
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[name];
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " " << counter.Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << name << " " << FormatDouble(gauge.Value(), 6) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const Histogram::Summary s = hist.Summarize();
    os << name << " count=" << s.count
       << StrFormat(" mean=%.1f p50=%.1f p95=%.1f p99=%.1f p999=%.1f "
                    "max=%.1f",
                    s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.p999_us,
                    s.max_us)
       << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"schema\": \"dtrec-metrics-v1\", \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << counter.Value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << JsonNumber(gauge.Value());
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) os << ", ";
    first = false;
    const Histogram::Summary s = hist.Summarize();
    os << "\"" << JsonEscape(name) << "\": {\"count\": " << s.count
       << ", \"mean\": " << JsonNumber(s.mean_us)
       << ", \"p50\": " << JsonNumber(s.p50_us)
       << ", \"p95\": " << JsonNumber(s.p95_us)
       << ", \"p99\": " << JsonNumber(s.p99_us)
       << ", \"p999\": " << JsonNumber(s.p999_us)
       << ", \"max\": " << JsonNumber(s.max_us) << "}";
  }
  os << "}}\n";
  return os.str();
}

std::string MetricsRegistry::DumpPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    const std::string pn = PromName(name);
    os << "# HELP " << pn << " " << PromHelpEscape(name) << "\n";
    os << "# TYPE " << pn << " counter\n";
    os << pn << " " << counter.Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string pn = PromName(name);
    os << "# HELP " << pn << " " << PromHelpEscape(name) << "\n";
    os << "# TYPE " << pn << " gauge\n";
    os << pn << " " << PromNumber(gauge.Value()) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const Histogram::Snapshot snap = hist.TakeSnapshot();
    const std::string pn = PromName(name);
    os << "# HELP " << pn << " " << PromHelpEscape(name) << "\n";
    os << "# TYPE " << pn << " histogram\n";
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[i] != 0) last = i;
    }
    uint64_t cum = 0;
    for (size_t i = 0; i <= last && snap.count != 0; ++i) {
      cum += snap.buckets[i];
      os << pn << "_bucket{le=\""
         << StrFormat("%.6g", Histogram::BucketUpperBound(i)) << "\"} "
         << cum << "\n";
    }
    os << pn << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
    os << pn << "_sum " << PromNumber(static_cast<double>(snap.sum_milli) / 1e3)
       << "\n";
    os << pn << "_count " << snap.count << "\n";
  }
  return os.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) entry.second.Reset();
  for (auto& entry : histograms_) entry.second.Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

void PublishPropensityClipStats(MetricsRegistry* registry) {
  const PropensityClipSnapshot snapshot = GetPropensityClipSnapshot();
  registry->GetCounter("propensity.clip.total")->Set(snapshot.total);
  registry->GetCounter("propensity.clip.fired")->Set(snapshot.fired);
  registry->GetGauge("propensity.clip.rate")->Set(snapshot.rate());
}

}  // namespace dtrec::obs
