#ifndef DTREC_BASELINES_STABLE_DR_H_
#define DTREC_BASELINES_STABLE_DR_H_

#include <string>

#include "baselines/dr.h"

namespace dtrec {

/// StableDR (Li et al., ICLR 2023): self-normalizes the DR correction term
/// (divides by Σo/p̂ instead of |D|), giving bounded bias/variance even
/// with arbitrarily small propensities and a weaker reliance on
/// extrapolated imputations. Joint learning of the pseudo-label model.
class StableDrTrainer : public DrTrainerBase {
 public:
  explicit StableDrTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/true) {}

  std::string name() const override { return "Stable-DR"; }

 protected:
  bool SelfNormalized() const override { return true; }
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_STABLE_DR_H_
