#include "baselines/mrdr_jl.h"

// MrdrJlTrainer is header-defined atop DrTrainerBase; this TU anchors the
// target.
