#include "baselines/esmm.h"

namespace dtrec {

void EsmmTrainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  TowerGraph graph = BuildGraph(&tape, batch);
  ag::Var ctr_prob = ag::Sigmoid(graph.ctr_logits);
  ag::Var cvr_prob = ag::Sigmoid(graph.cvr_logits);
  ag::Var ctcvr_prob = ag::Mul(ctr_prob, cvr_prob);

  // Joint label o·r: observed-and-positive over the entire space.
  Matrix joint(batch.size(), 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    joint(i, 0) = batch.observed(i, 0) * batch.ratings(i, 0);
  }

  ag::Var ctr_loss = BceMean(&tape, ctr_prob, batch.observed);
  ag::Var ctcvr_loss = BceMean(&tape, ctcvr_prob, joint);
  ag::Var loss = ag::Add(ctr_loss, ctcvr_loss);
  StepAll(&tape, loss, &graph);
}

}  // namespace dtrec
