#ifndef DTREC_BASELINES_IPS_V2_H_
#define DTREC_BASELINES_IPS_V2_H_

#include <string>

#include "baselines/tower_base.h"

namespace dtrec {

/// IPS-V2 (Li et al., ICML 2023 "Propensity Matters"): learns *balancing*
/// propensities. In addition to the observation cross entropy, the
/// propensity tower minimizes the covariate-balancing discrepancy
///   ‖ (1/B)Σ o_i/p̂_i·φ_i − (1/B)Σ φ_i ‖²
/// over the (stop-gradient) cell features φ, which directly controls the
/// IPS estimator's variance-inflating imbalance. The prediction tower
/// trains on the IPS loss with the balanced propensities.
class IpsV2Trainer : public TowerTrainerBase {
 public:
  explicit IpsV2Trainer(const TrainConfig& config)
      : TowerTrainerBase(config, /*has_imputation=*/false) {}

  std::string name() const override { return "IPS-V2"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;
    return inv;
  }

 protected:
  /// For the DR variant, which adds an imputation tower.
  IpsV2Trainer(const TrainConfig& config, bool has_imputation)
      : TowerTrainerBase(config, has_imputation) {}

  void TrainStep(const Batch& batch) override;

  /// Differentiable soft clip p ↦ c + (1−c)·p keeping propensities in
  /// [c, 1] while preserving gradients (c = config.propensity_clip).
  ag::Var SoftClip(ag::Var prob) const;

  /// The balancing discrepancy described above (1×1 Var).
  ag::Var BalanceTerm(ag::Tape* tape, const Batch& batch, ag::Var prob,
                      ag::Var features) const;
};

/// DR-V2: IPS-V2's balanced propensities inside the DR estimator, with an
/// imputation tower trained on the weighted residual.
class DrV2Trainer : public IpsV2Trainer {
 public:
  explicit DrV2Trainer(const TrainConfig& config)
      : IpsV2Trainer(config, /*has_imputation=*/true) {}

  std::string name() const override { return "DR-V2"; }

 protected:
  void TrainStep(const Batch& batch) override;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_IPS_V2_H_
